GO ?= go

.PHONY: all build vet test race bench figures examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...

fuzz:
	$(GO) test ./internal/document/ -fuzz FuzzParse -fuzztime 30s

figures:
	$(GO) run ./cmd/sfj-experiments -figure all -scale full

figures-quick:
	$(GO) run ./cmd/sfj-experiments -figure all -scale quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/serverlogs
	$(GO) run ./examples/distributed
	$(GO) run ./examples/nobench
	$(GO) run ./examples/eventtime

clean:
	$(GO) clean ./...
