GO ?= go

.PHONY: all build vet test race bench bench-all figures examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the root benchmark suite once as JSON — the format the
# perf trajectory files (BENCH_issue*_{before,after}.json) are kept in.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -count 1 -json .

bench-all:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...

fuzz:
	$(GO) test ./internal/document/ -fuzz FuzzParse -fuzztime 30s

figures:
	$(GO) run ./cmd/sfj-experiments -figure all -scale full

figures-quick:
	$(GO) run ./cmd/sfj-experiments -figure all -scale quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/serverlogs
	$(GO) run ./examples/distributed
	$(GO) run ./examples/nobench
	$(GO) run ./examples/eventtime

clean:
	$(GO) clean ./...
