GO ?= go

.PHONY: all build vet test race chaos bench bench-all bench-guard serve-smoke figures examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the schedule-driven fault-injection parity suites under
# the race detector: seeded sever/delay/refuse schedules against the
# reliable transport (cluster level) and the full Fig. 2 pipeline with
# heartbeat failure detection and checkpoint recovery (core level).
# The seeds are fixed inside the tests, so a failure names the exact
# reproducible fault sequence. The cluster suites matrix every seed
# over both wire formats (wire=gob and wire=binary subtests), so the
# binary data plane's replay/dedup/dictionary-reset behaviour is
# covered by the same oracle checks as the gob path. The rescale
# matrix exercises elastic scale-out: grow + shrink mid-run with every
# data link severed during the shrink migration, asserting exact
# oracle parity, exactly-once results, and zero source replays.
# The spill suites drive the memory governor's disk leg through
# state.FaultStore chaos — ENOSPC, torn/short writes, read corruption —
# asserting spilled window state degrades (resident retry, forced
# tumble, 429 shed) instead of crashing or corrupting results.
chaos:
	$(GO) test -race -count 1 ./internal/cluster/ -run 'TestScheduledChaosParity|TestResendAfterSever|TestHungWorkerLeaseExpiry|TestRandomScheduleDeterministic' -v
	$(GO) test -race -count 1 ./internal/core/ -run 'TestClusterScheduledChaosParity|TestClusterHungWorkerRecovery|TestClusterSecondFailureMidRecovery' -v
	$(GO) test -race -count 1 ./internal/cluster/ -run 'TestElasticRescaleGrowShrink|TestRescaleShrinkRejectsPinned|TestStateFrameBinaryRoundTrip' -v
	$(GO) test -race -count 1 ./internal/core/ -run 'TestElasticRescaleChaosParity|TestRescalePolicyAutoGrow' -v
	$(GO) test -race -count 1 ./internal/join/ -run 'TestSlidingSpill|TestSlidingReloadCorruptionDegrades|TestSlidingPersistentENOSPCForceTumbles|TestMultiSpillParityAndDrain|TestGovernorSpillCompression' -v
	$(GO) test -race -count 1 ./internal/core/ -run 'TestJoinerPendingSpillParity|TestQuerySetSpillAndDrain|TestQuerySetShedsOverBudget' -v
	$(GO) test -race -count 1 ./internal/server/ -run 'TestServerSpillParity|TestServerSpillFaultsDegrade|TestServerShedsWith429' -v

# bench runs the root benchmark suite once as JSON — the format the
# perf trajectory files (BENCH_issue*_{before,after}.json) are kept in
# — followed by the wire-format codec benches (gob vs binary
# bytes/tuple and ns/op).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -count 1 -json .
	$(GO) test -run '^$$' -bench 'BenchmarkWireEncode|BenchmarkWireDecode|BenchmarkFrameBatch' -benchmem -benchtime 200000x -count 3 -json ./internal/cluster/

bench-all:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...

# bench-guard reruns the guarded hot-path benchmarks (the join engines
# the telemetry layer instruments, plus the telemetry on/off comparison)
# and fails if any guarded ns/op regressed more than 5% against the
# recorded baseline. The macro benches run few iterations because one
# op ingests thousands of documents; the micro benches sample heavily.
bench-guard:
	$(GO) test -run '^$$' -bench '^(BenchmarkFig11aFPJServerLog|BenchmarkFig11bFPJNoBench|BenchmarkTelemetryOverhead)$$' -benchtime 2x -count 2 -json . > bench_guard_current.json
	$(GO) test -run '^$$' -bench '^(BenchmarkFPTreeInsert|BenchmarkJoinableClassify)$$' -benchtime 2000x -count 2 -json . >> bench_guard_current.json
	$(GO) test -run '^$$' -bench '^BenchmarkParallelBatchProbe$$' -benchtime 2x -count 2 -json . >> bench_guard_current.json
	$(GO) test -run '^$$' -bench '^(BenchmarkWireEncode|BenchmarkWireDecode|BenchmarkFrameBatch)$$' -benchtime 200000x -count 3 -json ./internal/cluster/ >> bench_guard_current.json
	$(GO) run ./cmd/sfj-benchguard -baseline BENCH_issue10_after.json -current bench_guard_current.json

# serve-smoke runs the multi-tenant query service end to end: build
# sfj-serve, register two standing queries, stream a batch, assert both
# result streams deliver, and check SIGTERM drains gracefully.
serve-smoke:
	sh scripts/serve_smoke.sh

# go test accepts a single -fuzz pattern per invocation, so each fuzz
# target gets its own line.
fuzz:
	$(GO) test ./internal/document/ -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/fptree/ -fuzz FuzzSnapshotRestore -fuzztime 30s
	$(GO) test ./internal/fptree/ -fuzz FuzzFlatTreeParity -fuzztime 30s
	$(GO) test ./internal/cluster/ -fuzz FuzzFrameRoundTrip -fuzztime 30s

figures:
	$(GO) run ./cmd/sfj-experiments -figure all -scale full

figures-quick:
	$(GO) run ./cmd/sfj-experiments -figure all -scale quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/serverlogs
	$(GO) run ./examples/distributed
	$(GO) run ./examples/nobench
	$(GO) run ./examples/eventtime

clean:
	$(GO) clean ./...
	rm -f bench_guard_current.json
