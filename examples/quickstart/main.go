// Quickstart: schema-free natural joins over JSON documents in a few
// lines, using the single-process Pipeline façade.
//
// Two documents join when they share at least one attribute-value pair
// and have no conflicting value on any shared attribute — no join keys,
// no schema, no configuration.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	pipeline, err := core.NewPipeline("FPJ")
	if err != nil {
		log.Fatal(err)
	}

	// The documents of the paper's Fig. 1: a company's server logs.
	stream := []string{
		`{"User":"A","Severity":"Warning"}`,
		`{"User":"A","Severity":"Warning","MsgId":2}`,
		`{"User":"A","Severity":"Error"}`,
		`{"IP":"10.2.145.212","Severity":"Warning"}`,
		`{"User":"B","Severity":"Critical","MsgId":1}`,
		`{"User":"B","Severity":"Critical"}`,
		`{"User":"B","Severity":"Warning"}`,
	}

	for _, doc := range stream {
		results, err := pipeline.ProcessJSON([]byte(doc))
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			merged, _ := r.Merged.MarshalJSON()
			fmt.Printf("d%d ⋈ d%d  ->  %s\n", r.Left, r.Right, merged)
		}
	}

	docs, pairs := pipeline.Tumble()
	fmt.Printf("\nwindow closed: %d documents, %d join pairs\n", docs, pairs)
}
