// Nobench: attribute-value expansion in action (paper Sec. VI-B).
//
// The NoBench dataset carries a Boolean attribute in every document, so
// at most two useful partitions exist — the partitioning cannot scale
// past two machines. Expansion concatenates the Boolean with further
// attribute values until enough distinct synthetic values exist for all
// m machines; documents that cannot form the synthetic value are
// broadcast, preserving the exact join result.
//
// Run: go run ./examples/nobench
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

func main() {
	const m = 8
	gen := datagen.NewNoBench(11)
	sample := gen.Window(2000)

	// Without expansion: the Boolean connects everything, DS collapses
	// to two components and even AG cannot separate the documents that
	// only share the Boolean.
	components := partition.DisjointSets{}.Components(sample)
	tableOff, _ := core.PlanPartitions(sample, m, partition.DisjointSets{}, core.ExpansionOff)
	fmt.Printf("without expansion: %d disjoint-set components, %d/%d partitions usable\n",
		components, tableOff.NonEmpty(), m)

	// With expansion: the analysis finds the Boolean disabling
	// attribute and chains combining attributes until m partitions are
	// possible.
	tableOn, spec := core.PlanPartitions(sample, m, partition.DisjointSets{}, core.ExpansionAuto)
	if spec == nil {
		log.Fatal("expected the Boolean attribute to trigger expansion")
	}
	fmt.Printf("with expansion:    %s\n", spec)
	fmt.Printf("                   %d/%d partitions usable, expected replication %.2f (pna*m estimate)\n",
		tableOn.NonEmpty(), m, spec.ExpectedReplication(m))

	// End to end: the full topology on nbData with expansion enabled.
	report, err := core.NewRunner(core.Config{
		M:          m,
		WindowSize: 1000,
		Windows:    4,
		Expansion:  core.ExpansionAuto,
		Source:     datagen.NewNoBench(12),
	}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull run on nbData: %s\n", report)
	for i, w := range report.Run.Windows {
		fmt.Printf("  window %d: %s\n", i, w)
	}
}
