// Eventtime: joining documents by the timestamps they carry rather
// than by arrival order. The paper's windows are time-based; this
// example uses the library's event-time extension (join.EventTime) to
// correlate out-of-order server-log events that belong to the same
// 60-second window.
//
// Run: go run ./examples/eventtime
package main

import (
	"fmt"
	"log"

	"repro/internal/document"
	"repro/internal/join"
)

func main() {
	// 60-second windows, 30 seconds of allowed lateness, FP-tree join.
	et, err := join.NewEventTime(60, 30, join.TimestampAttr("epoch"), func() join.Engine {
		return join.NewFPJ()
	})
	if err != nil {
		log.Fatal(err)
	}
	// The epoch is transport metadata: window by it, don't join on it.
	et.StripTimestamp("epoch")

	// Events arrive out of order (network retries, buffered shippers);
	// epochs 100..159 share the [60,120) window... epoch is in seconds.
	stream := []string{
		`{"epoch":100,"User":"A","Status":"failed"}`,
		`{"epoch":130,"User":"B","Status":"ok"}`,
		`{"epoch":110,"User":"A","File":"/srv/payroll.db"}`, // out of order, still in the first window
		`{"epoch":170,"User":"A","Action":"delete"}`,        // next window
		`{"epoch":175,"User":"A","Severity":"Critical"}`,
	}

	var id uint64
	for _, raw := range stream {
		id++
		d, err := document.Parse(id, []byte(raw))
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range et.Process(d) {
			merged, _ := r.Merged.MarshalJSON()
			fmt.Printf("window join d%d ⋈ d%d: %s\n", r.Left, r.Right, merged)
		}
	}
	et.Flush()
	fmt.Printf("\nwindows closed: %d, documents dropped: %d\n", et.Closed(), et.Dropped())
}
