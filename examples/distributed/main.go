// Distributed: the same scale-out topology, but spread across multiple
// TCP-connected workers on this machine — every tuple between
// components placed on different workers crosses a real socket, the
// distributed equivalent of the paper's Apache Storm deployment.
//
// The example runs the identical stream twice, once in process and once
// over three workers, and shows that the distributed execution produces
// the exact same join result.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	mkCfg := func() core.Config {
		return core.Config{
			M:          4,
			Creators:   2,
			Assigners:  3,
			WindowSize: 600,
			Windows:    3,
			Source:     datagen.NewServerLog(7),
		}
	}

	local, err := core.NewRunner(mkCfg()).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-process :", local)

	clustered, err := core.NewRunner(mkCfg(), core.WithWorkers(3)).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 workers  :", clustered)

	if local.JoinPairs == clustered.JoinPairs {
		fmt.Printf("\nexact join result preserved across the cluster: %d pairs\n", local.JoinPairs)
	} else {
		log.Fatalf("result mismatch: %d (local) vs %d (cluster)", local.JoinPairs, clustered.JoinPairs)
	}
	fmt.Printf("tuples crossed the topology: %d emitted by assigners\n",
		clustered.Topology.Emitted["assigner"])
}
