// Serverlogs: the paper's motivating scenario (Sec. I) — analysing a
// company's server access logs for security signals by joining
// complementary documents, without knowing the join predicate upfront.
//
// The example streams synthetic server logs through the full scale-out
// topology (partition creators, merger, assigners, FP-tree joiners) and
// mines the join results for users whose events correlate with repeated
// failures: a failed login joining a file access on the same user links
// the two activities even though the documents share no schema.
//
// Run: go run ./examples/serverlogs
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/join"
)

func main() {
	var mu sync.Mutex
	suspicious := make(map[string]int) // user -> correlated failure events

	cfg := core.Config{
		M:          4,
		WindowSize: 800,
		Windows:    4,
		Source:     datagen.NewServerLog(2026),
		OnResult: func(r join.Result) {
			// A join result merges two complementary events. Flag
			// users whose merged activity combines a denied/failed
			// status with file access or elevated severity.
			user, ok := r.Merged.Lookup("User")
			if !ok {
				return
			}
			status, _ := r.Merged.Lookup("Status")
			severity, _ := r.Merged.Lookup("Severity")
			badStatus := status == "denied" || status == "failed"
			elevated := severity == "Critical" || severity == "Error"
			if badStatus && (elevated || r.Merged.HasAttr("File")) {
				mu.Lock()
				suspicious[user]++
				mu.Unlock()
			}
		},
	}

	report, err := core.NewRunner(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("stream processed:", report)
	fmt.Printf("total correlated event pairs: %d\n\n", report.JoinPairs)

	type entry struct {
		user  string
		count int
	}
	var ranked []entry
	mu.Lock()
	for u, c := range suspicious {
		ranked = append(ranked, entry{user: u, count: c})
	}
	mu.Unlock()
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].user < ranked[j].user
	})

	fmt.Println("users with correlated failure activity (top 10):")
	for i, e := range ranked {
		if i == 10 {
			break
		}
		fmt.Printf("  %-16s %4d correlated events\n", e.user, e.count)
	}
}
