// Package repro's root benchmark harness: one testing.B benchmark per
// evaluation figure of the paper, plus ablation benches for the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches exercise the same code paths as
// cmd/sfj-experiments, at a reduced size so a full -bench pass stays
// tractable; the printed experiment tables come from the command, the
// benches track the cost of regenerating them.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/experiments"
	"repro/internal/fptree"
	"repro/internal/join"
	"repro/internal/partition"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// benchScale keeps benchmark iterations affordable.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.FPJDocs = []int{2000}
	sc.BaselineDocs = []int{500}
	return sc
}

func benchFigure(b *testing.B, id string) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh seed per iteration defeats the experiment cache, so
		// every iteration regenerates the figure from scratch.
		sc.Seed = int64(1000 + i)
		if _, err := experiments.ByID(id, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 6a-6d: replication sweeps.
func BenchmarkFig6aReplicationPartitionsRW(b *testing.B) { benchFigure(b, "6a") }
func BenchmarkFig6bReplicationWindowRW(b *testing.B)     { benchFigure(b, "6b") }
func BenchmarkFig6cReplicationPartitionsNB(b *testing.B) { benchFigure(b, "6c") }
func BenchmarkFig6dReplicationWindowNB(b *testing.B)     { benchFigure(b, "6d") }

// Figures 7a-7d: load balance sweeps.
func BenchmarkFig7aLoadBalancePartitionsRW(b *testing.B) { benchFigure(b, "7a") }
func BenchmarkFig7bLoadBalanceWindowRW(b *testing.B)     { benchFigure(b, "7b") }
func BenchmarkFig7cLoadBalancePartitionsNB(b *testing.B) { benchFigure(b, "7c") }
func BenchmarkFig7dLoadBalanceWindowNB(b *testing.B)     { benchFigure(b, "7d") }

// Figures 8a-8d: maximal processing load sweeps.
func BenchmarkFig8aMaxLoadPartitionsRW(b *testing.B) { benchFigure(b, "8a") }
func BenchmarkFig8bMaxLoadWindowRW(b *testing.B)     { benchFigure(b, "8b") }
func BenchmarkFig8cMaxLoadPartitionsNB(b *testing.B) { benchFigure(b, "8c") }
func BenchmarkFig8dMaxLoadWindowNB(b *testing.B)     { benchFigure(b, "8d") }

// Figures 9a-9b: repartition threshold sweeps.
func BenchmarkFig9aRepartitionsRW(b *testing.B) { benchFigure(b, "9a") }
func BenchmarkFig9bRepartitionsNB(b *testing.B) { benchFigure(b, "9b") }

// Figures 10a-10c: ideal execution.
func BenchmarkFig10aIdealReplication(b *testing.B) { benchFigure(b, "10a") }
func BenchmarkFig10bIdealLoadBalance(b *testing.B) { benchFigure(b, "10b") }
func BenchmarkFig10cIdealMaxLoad(b *testing.B)     { benchFigure(b, "10c") }

// Figures 11a-11d: local join execution time. These benches measure
// the join engines directly, which is what the figure reports.
func benchJoinEngine(b *testing.B, dataset, engine string, n int) {
	gen, _ := datagen.ByName(dataset, 42)
	docs := gen.Window(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := join.New(engine)
		if err != nil {
			b.Fatal(err)
		}
		join.Batch(eng, docs)
	}
}

func BenchmarkFig11aFPJServerLog(b *testing.B) { benchJoinEngine(b, "rwData", "FPJ", 5000) }
func BenchmarkFig11bFPJNoBench(b *testing.B)   { benchJoinEngine(b, "nbData", "FPJ", 5000) }
func BenchmarkFig11cNLJServerLog(b *testing.B) { benchJoinEngine(b, "rwData", "NLJ", 1000) }
func BenchmarkFig11cHBJServerLog(b *testing.B) { benchJoinEngine(b, "rwData", "HBJ", 1000) }
func BenchmarkFig11dNLJNoBench(b *testing.B)   { benchJoinEngine(b, "nbData", "NLJ", 1000) }
func BenchmarkFig11dHBJNoBench(b *testing.B)   { benchJoinEngine(b, "nbData", "HBJ", 1000) }

// BenchmarkParallelBatchProbe measures the FPJ probe worker pool over
// the windowed batch path: documents stream through ProcessBatch in
// micro-batches of 64 with the pool at 1 (serial engine loop), 2, 4 and
// 8 workers. The probe phase is read-only and embarrassingly parallel,
// so on a multicore host the pooled variants approach linear scaling;
// on a single-core host the pool only adds goroutine handoff, which is
// exactly what this bench then quantifies.
func BenchmarkParallelBatchProbe(b *testing.B) {
	gen, _ := datagen.ByName("rwData", 42)
	docs := gen.Window(5000)
	for _, pool := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := join.NewFPJ()
				eng.SetProbeParallelism(pool)
				w := join.NewWindowed(eng)
				for start := 0; start < len(docs); start += 64 {
					end := start + 64
					if end > len(docs) {
						end = len(docs)
					}
					w.ProcessBatch(docs[start:end])
				}
			}
		})
	}
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationAttributeOrder compares the paper's global attribute
// ordering (document frequency descending, distinct values ascending)
// against an adversarial first-appearance ordering for FP-tree probes.
func BenchmarkAblationAttributeOrder(b *testing.B) {
	gen := datagen.NewServerLog(42)
	docs := gen.Window(3000)
	b.Run("paper-order", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree := fptree.Build(docs)
			for _, d := range docs {
				tree.JoinPartners(d)
			}
		}
	})
	b.Run("appearance-order", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree := fptree.New(fptree.EmptyOrder())
			for _, d := range docs {
				tree.Insert(d)
			}
			for _, d := range docs {
				tree.JoinPartners(d)
			}
		}
	})
}

// BenchmarkAblationFPJBatch compares probe-then-insert streaming
// execution against build-then-probe batch execution of the FP-tree
// join.
func BenchmarkAblationFPJBatch(b *testing.B) {
	docs := datagen.NewServerLog(42).Window(3000)
	b.Run("probe-then-insert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			join.Batch(join.NewFPJFromDocs(docs), docs)
		}
	})
	b.Run("build-then-probe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree := fptree.Build(docs)
			for _, d := range docs {
				tree.JoinPartners(d)
			}
		}
	})
}

// BenchmarkAblationExpansion measures the partitioning with and without
// attribute-value expansion on the Boolean-dominated NoBench data; the
// non-expanded variant cannot fill the partitions (correctness is
// covered by tests, the bench tracks the cost of the expansion pass).
func BenchmarkAblationExpansion(b *testing.B) {
	docs := datagen.NewNoBench(42).Window(2000)
	for _, mode := range []core.ExpansionMode{core.ExpansionOff, core.ExpansionAuto} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.PlanPartitions(docs, 8, partition.AssociationGroups{}, mode)
			}
		})
	}
}

// BenchmarkAblationPartitioners compares the three partitioning
// algorithms head to head on identical input.
func BenchmarkAblationPartitioners(b *testing.B) {
	docs := datagen.NewServerLog(42).Window(2000)
	for _, p := range []partition.Partitioner{
		partition.AssociationGroups{}, partition.SetCover{}, partition.DisjointSets{},
	} {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Partition(docs, 8)
			}
		})
	}
}

// BenchmarkJoinableClassify tracks the hot pair-comparison kernel.
func BenchmarkJoinableClassify(b *testing.B) {
	docs := datagen.NewServerLog(42).Window(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		document.Joinable(docs[i%256], docs[(i+37)%256])
	}
}

// BenchmarkSystemEndToEnd tracks the whole topology (the unit the
// paper's cluster runs per window set).
func BenchmarkSystemEndToEnd(b *testing.B) {
	for _, engine := range []string{"FPJ", "HBJ"} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{
					M: 4, Creators: 2, Assigners: 2,
					WindowSize: 300, Windows: 3, Engine: engine,
					Source: datagen.NewServerLog(int64(i)),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFPTreeInsert tracks raw insert throughput (one window's
// worth of documents per tree, matching the tumbling-window lifecycle).
func BenchmarkFPTreeInsert(b *testing.B) {
	docs := datagen.NewServerLog(42).Window(4096)
	order := fptree.NewOrderFromDocs(docs)
	tree := fptree.New(order)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			tree.Reset()
		}
		tree.Insert(docs[i%4096])
	}
}

var benchSink int

// BenchmarkDocumentParse tracks JSON-to-document decoding.
func BenchmarkDocumentParse(b *testing.B) {
	payload := []byte(`{"User":"A","Severity":"Warning","MsgId":2,"nested":{"x":1,"y":"z"}}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := document.Parse(uint64(i), payload)
		if err != nil {
			b.Fatal(err)
		}
		benchSink += d.Len()
	}
}

// BenchmarkAblationRouting compares the paper's partition-based routing
// against the hash-pairs baseline its related work dismisses: the whole
// topology runs under each policy on the same stream.
func BenchmarkAblationRouting(b *testing.B) {
	for _, routing := range []core.Routing{core.PartitionRouting, core.HashPairsRouting} {
		b.Run(routing.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{
					M: 4, Creators: 2, Assigners: 2,
					WindowSize: 300, Windows: 3, Routing: routing,
					Source: datagen.NewServerLog(int64(i)),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Telemetry overhead ----------------------------------------------

// BenchmarkTelemetryOverhead measures the cost the telemetry layer adds
// to the hottest document path: one windowed FPJ ingesting a window,
// once with instruments detached (the nil no-op path every uninstrumented
// run takes) and once with live counters, gauges and the probe-latency
// histogram attached. The "on" variant pays one clock pair per document;
// the delta between the two sub-benches is the per-document overhead the
// 5% bench-guard budget covers.
func BenchmarkTelemetryOverhead(b *testing.B) {
	docs := datagen.NewServerLog(42).Window(2000)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := join.New("FPJ")
				if err != nil {
					b.Fatal(err)
				}
				w := join.NewWindowed(eng)
				if mode == "on" {
					reg := telemetry.NewRegistry()
					w.SetInstruments(join.Instruments{
						ProbeSeconds: reg.Histogram("join_probe_seconds"),
						Results:      reg.Counter("join_results_total"),
						Duplicates:   reg.Counter("join_duplicates_total"),
						WindowDocs:   reg.Gauge("join_window_docs"),
						TreeNodes:    reg.Gauge("join_fptree_nodes"),
					})
				}
				for _, d := range docs {
					w.Process(d)
				}
			}
		})
	}
}

// BenchmarkTelemetrySystemEndToEnd tracks the instrumented whole-system
// run next to BenchmarkSystemEndToEnd's uninstrumented one.
func BenchmarkTelemetrySystemEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := core.NewRunner(core.Config{
			M: 4, Creators: 2, Assigners: 2,
			WindowSize: 300, Windows: 3,
			Source: datagen.NewServerLog(int64(i)),
		}, core.WithTelemetry(telemetry.NewRegistry())).Run()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpillReprobe measures the memory governor's disk leg: a
// sliding FPJ window streaming under a budget of a fifth of its
// steady-state footprint, so sealed panes continually spill to a
// filesystem store and reload for probing, against the same stream
// ungoverned. The gap between the two sub-benches is the price of
// bounding memory — spill encode + CRC envelope + fsync + reload.
func BenchmarkSpillReprobe(b *testing.B) {
	const (
		size  = 200
		slide = 20
		docs  = 600
	)
	gen := datagen.NewServerLog(11)
	stream := gen.Window(docs)
	mk := func() join.Engine { return join.NewFPJ() }

	run := func(b *testing.B, budget int64) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := join.NewSliding(size, slide, mk)
			if err != nil {
				b.Fatal(err)
			}
			if budget > 0 {
				st, err := state.NewFSStore(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				s.SetGovernor(join.NewGovernor(join.GovernorConfig{
					Budget: budget,
					Store:  st,
					Task:   "bench",
				}))
			}
			for _, d := range stream {
				s.Process(d)
			}
		}
	}

	// Size the budget from the ungoverned steady-state footprint once.
	probe, err := join.NewSliding(size, slide, mk)
	if err != nil {
		b.Fatal(err)
	}
	var peak int64
	for _, d := range stream {
		probe.Process(d)
		if m := probe.MemBytes(); m > peak {
			peak = m
		}
	}

	b.Run("ungoverned", func(b *testing.B) { run(b, 0) })
	b.Run("governed-half", func(b *testing.B) { run(b, peak/2) })
	b.Run("governed-fifth", func(b *testing.B) { run(b, peak/5) })
}
