#!/usr/bin/env sh
# serve_smoke.sh — end-to-end smoke test for the multi-tenant query
# service. Builds sfj-serve, starts it, registers two standing queries,
# streams a document batch, asserts both result streams are non-empty,
# and checks the server shuts down gracefully on SIGTERM.
#
# Deliberately dependency-free: explicit query ids and grep-based JSON
# probing, no jq.
set -eu

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
BIN="$TMP/sfj-serve"
trap 'kill $SERVE_PID 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$BIN" ./cmd/sfj-serve

echo "== start"
"$BIN" -addr "$ADDR" -window 0 -max-window-docs 100000 &
SERVE_PID=$!

# Wait for liveness.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "server never became healthy" >&2
    exit 1
  fi
  sleep 0.1
done

echo "== register two queries (identical windows -> shared tree)"
curl -sf -X POST "$BASE/queries" -d '{"id":"smoke-a","window":1000}' >/dev/null
curl -sf -X POST "$BASE/queries" -d '{"id":"smoke-b","window":1000}' >/dev/null

STATS="$(curl -sf "$BASE/stats")"
echo "   stats: $STATS"
case "$STATS" in
*'"shared_window_groups":1'*) ;;
*)
  echo "expected one shared window group in $STATS" >&2
  exit 1
  ;;
esac

echo "== ingest batch"
BATCH="$TMP/batch.ndjson"
: >"$BATCH"
i=0
while [ "$i" -lt 20 ]; do
  echo "{\"stream\":1,\"seq\":$i}" >>"$BATCH"
  echo "{\"stream\":1,\"other\":$i}" >>"$BATCH"
  i=$((i + 1))
done
curl -sf -X POST "$BASE/documents" --data-binary "@$BATCH" >/dev/null

echo "== both result streams non-empty"
for Q in smoke-a smoke-b; do
  RESULTS="$(curl -sf "$BASE/queries/$Q/results?wait=5&max=5")"
  case "$RESULTS" in
  *'"seq":1'*)
    echo "   $Q: ok"
    ;;
  *)
    echo "query $Q returned no results: $RESULTS" >&2
    exit 1
    ;;
  esac
done

echo "== graceful shutdown drains"
kill -TERM "$SERVE_PID"
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "server did not exit within 10s of SIGTERM" >&2
    exit 1
  fi
  sleep 0.1
done
wait "$SERVE_PID" 2>/dev/null || EXIT=$?
if [ "${EXIT:-0}" -ne 0 ]; then
  echo "server exited with status ${EXIT:-0}" >&2
  exit 1
fi
echo "== serve smoke passed"
