// Package symbol implements the dictionary-encoding layer the hot
// paths of the system share: attribute and value strings are interned
// into dense uint32 IDs once, and every subsequent hash, comparison and
// map lookup operates on integers instead of strings — the standard
// move of columnar engines (Abadi et al.) and of the FP-growth
// literature the paper builds on, where items are integer IDs.
//
// Two process-global tables (one for attributes, one for values) serve
// the document, fptree and partition layers. Lookups are lock-free
// (one atomic load plus a map access); interning a new string takes a
// mutex only on first sight. IDs are dense and assigned in first-use
// order, so slices indexed by ID stay small.
//
// # Epochs
//
// Symbol IDs are only meaningful relative to the table generation that
// produced them. Reset clears the global tables and bumps the global
// epoch; every Document records the epoch its symbols were interned
// under, and the consumers (Classify/Merge, the FP-tree, partition
// tables) fall back to string comparison or re-intern when epochs do
// not match. Reset is a quiesce-point operation: it must only be
// called when no FP-tree, partition table or wire dictionary built
// under the old epoch is still in use — the runtime itself never
// resets mid-run (the tumbling-window lifecycle evicts trees wholesale
// and the wire dictionaries are scoped per connection instead, see
// DESIGN.md "Symbol interning").
package symbol

import (
	"sync"
	"sync/atomic"
)

// ID is a dense symbol identifier, valid within one table epoch.
type ID uint32

// Pair packs an attribute symbol and a value symbol into one
// comparable word, so a full attribute-value pair hashes and compares
// as a single uint64.
type Pair uint64

// MakePair packs attribute and value IDs.
func MakePair(a, v ID) Pair { return Pair(uint64(a)<<32 | uint64(v)) }

// Attr unpacks the attribute ID.
func (p Pair) Attr() ID { return ID(p >> 32) }

// Val unpacks the value ID.
func (p Pair) Val() ID { return ID(p) }

// Table is one string interning dictionary: string -> dense ID and
// back. The zero value is not ready; use NewTable. Lookup, String and
// Len are safe for concurrent use with Intern; Reset requires external
// quiescence (see the package comment).
type Table struct {
	mu   sync.Mutex
	ids  atomic.Pointer[sync.Map] // string -> ID
	strs atomic.Pointer[[]string] // ID -> string
}

// NewTable creates an empty table.
func NewTable() *Table {
	t := &Table{}
	t.ids.Store(&sync.Map{})
	strs := make([]string, 0, 64)
	t.strs.Store(&strs)
	return t
}

// Intern returns the ID for s, assigning the next dense ID on first
// sight. Safe for concurrent use.
func (t *Table) Intern(s string) ID {
	if v, ok := t.ids.Load().Load(s); ok {
		return v.(ID)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := t.ids.Load()
	if v, ok := ids.Load(s); ok {
		return v.(ID)
	}
	strs := *t.strs.Load()
	id := ID(len(strs))
	// Appending may write into the shared backing array one slot past
	// every published length; readers never touch that slot until the
	// new header is atomically published below.
	ns := append(strs, s)
	t.strs.Store(&ns)
	ids.Store(s, id)
	return id
}

// Lookup returns the ID for s without interning it.
func (t *Table) Lookup(s string) (ID, bool) {
	if v, ok := t.ids.Load().Load(s); ok {
		return v.(ID), true
	}
	return 0, false
}

// String resolves an ID back to its string; unknown IDs resolve to "".
func (t *Table) String(id ID) string {
	strs := *t.strs.Load()
	if int(id) < len(strs) {
		return strs[id]
	}
	return ""
}

// Len reports the number of interned strings.
func (t *Table) Len() int { return len(*t.strs.Load()) }

// reset clears the table in place. Callers must guarantee quiescence.
func (t *Table) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ids.Store(&sync.Map{})
	strs := make([]string, 0, 64)
	t.strs.Store(&strs)
}

// Global tables and epoch. The attribute and value spaces are kept
// separate so both stay dense: slices indexed by attribute ID (probe
// scratch, attribute counts, order ranks) would otherwise be diluted
// by the much larger value space.
var (
	attrTable = NewTable()
	valTable  = NewTable()
	epoch     atomic.Uint64
)

// InternAttr interns an attribute name in the global attribute table.
func InternAttr(s string) ID { return attrTable.Intern(s) }

// InternVal interns a canonical value in the global value table.
func InternVal(s string) ID { return valTable.Intern(s) }

// LookupAttr resolves an attribute name without interning it.
func LookupAttr(s string) (ID, bool) { return attrTable.Lookup(s) }

// LookupVal resolves a canonical value without interning it.
func LookupVal(s string) (ID, bool) { return valTable.Lookup(s) }

// AttrString resolves an attribute ID; unknown IDs resolve to "".
func AttrString(id ID) string { return attrTable.String(id) }

// ValString resolves a value ID; unknown IDs resolve to "".
func ValString(id ID) string { return valTable.String(id) }

// AttrCount reports the number of distinct attributes interned — the
// upper bound for slices indexed by attribute ID.
func AttrCount() int { return attrTable.Len() }

// ValCount reports the number of distinct values interned.
func ValCount() int { return valTable.Len() }

// InternPair interns both halves of an attribute-value pair.
func InternPair(attr, val string) Pair {
	return MakePair(attrTable.Intern(attr), valTable.Intern(val))
}

// LookupPair resolves a pair without interning; ok is false when
// either half is unknown (the pair then cannot be in any interned
// structure).
func LookupPair(attr, val string) (Pair, bool) {
	a, ok := attrTable.Lookup(attr)
	if !ok {
		return 0, false
	}
	v, ok := valTable.Lookup(val)
	if !ok {
		return 0, false
	}
	return MakePair(a, v), true
}

// PairStrings resolves both halves of a pair.
func PairStrings(p Pair) (attr, val string) {
	return attrTable.String(p.Attr()), valTable.String(p.Val())
}

// Epoch returns the current global epoch. IDs obtained under an older
// epoch are invalid against the current tables.
func Epoch() uint64 { return epoch.Load() }

// Reset clears both global tables and bumps the epoch. It is a
// quiesce-point operation: no structure holding IDs of the old epoch
// may be used afterwards. The runtime never calls it mid-run; it
// exists for tests and for embedders that tear the whole pipeline down
// between streams.
func Reset() {
	// Bump the epoch before clearing: a racing reader that still sees
	// the old tables also still sees an epoch it can compare against,
	// and a reader that already sees the new tables observes a new
	// epoch. (Reset is documented quiesce-only; the ordering just keeps
	// misuse detectable instead of silently wrong.)
	epoch.Add(1)
	attrTable.reset()
	valTable.reset()
}
