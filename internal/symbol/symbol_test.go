package symbol

import (
	"fmt"
	"sync"
	"testing"
)

func TestTableInternRoundTrip(t *testing.T) {
	tb := NewTable()
	a := tb.Intern("alpha")
	b := tb.Intern("beta")
	if a == b {
		t.Fatalf("distinct strings got equal IDs: %d", a)
	}
	if got := tb.Intern("alpha"); got != a {
		t.Errorf("re-intern changed ID: %d != %d", got, a)
	}
	if got := tb.String(a); got != "alpha" {
		t.Errorf("String(%d) = %q, want alpha", a, got)
	}
	if id, ok := tb.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = %d,%v", id, ok)
	}
	if _, ok := tb.Lookup("missing"); ok {
		t.Error("Lookup of unseen string reported ok")
	}
	if tb.String(ID(999)) != "" {
		t.Error("unknown ID must resolve to empty string")
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
}

func TestTableDenseIDs(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 100; i++ {
		id := tb.Intern(fmt.Sprintf("s%03d", i))
		if int(id) != i {
			t.Fatalf("Intern #%d got ID %d; IDs must be dense in first-use order", i, id)
		}
	}
}

func TestPairPacking(t *testing.T) {
	p := MakePair(3, 0xDEADBEEF)
	if p.Attr() != 3 || p.Val() != 0xDEADBEEF {
		t.Fatalf("round trip: attr=%d val=%x", p.Attr(), p.Val())
	}
	if MakePair(1, 2) == MakePair(2, 1) {
		t.Fatal("attr/val must not be symmetric in the packing")
	}
}

func TestGlobalPairIntern(t *testing.T) {
	p1 := InternPair("attr-global-test", "sval-global-test")
	p2, ok := LookupPair("attr-global-test", "sval-global-test")
	if !ok || p1 != p2 {
		t.Fatalf("LookupPair = %v,%v want %v,true", p2, ok, p1)
	}
	a, v := PairStrings(p1)
	if a != "attr-global-test" || v != "sval-global-test" {
		t.Fatalf("PairStrings = %q,%q", a, v)
	}
	if _, ok := LookupPair("attr-global-test", "never-interned-val"); ok {
		t.Error("LookupPair with unknown value must miss")
	}
}

func TestConcurrentIntern(t *testing.T) {
	tb := NewTable()
	const workers, n = 8, 400
	var wg sync.WaitGroup
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		w := w
		ids[w] = make([]ID, n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ids[w][i] = tb.Intern(fmt.Sprintf("k%d", i))
				// Interleave lock-free readers with writers.
				_ = tb.String(ids[w][i])
				_, _ = tb.Lookup("k0")
			}
		}()
	}
	wg.Wait()
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < n; i++ {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got ID %d for k%d, worker 0 got %d", w, ids[w][i], i, ids[0][i])
			}
		}
	}
	for i := 0; i < n; i++ {
		if got := tb.String(ids[0][i]); got != fmt.Sprintf("k%d", i) {
			t.Fatalf("String(%d) = %q", ids[0][i], got)
		}
	}
}

func TestResetBumpsEpochAndClears(t *testing.T) {
	before := Epoch()
	InternAttr("epoch-test-attr")
	Reset()
	if Epoch() != before+1 {
		t.Fatalf("Epoch = %d, want %d", Epoch(), before+1)
	}
	if _, ok := LookupAttr("epoch-test-attr"); ok {
		t.Error("Reset must clear the attribute table")
	}
	// Interning after a reset restarts from dense ID 0.
	id := InternAttr("epoch-test-attr2")
	if id != 0 {
		t.Errorf("first post-reset ID = %d, want 0", id)
	}
}
