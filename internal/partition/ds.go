package partition

import (
	"sort"

	"repro/internal/document"
	"repro/internal/symbol"
)

// DisjointSets is the second competitor (Alvanaki & Michel): all
// attribute-value pairs co-occurring in a document are unioned into
// connected components ("disjoint sets"); every pair belongs to exactly
// one component and each component is assigned to exactly one
// partition, so a document is never replicated — at the price of load
// balance, and of not scaling when fewer components exist than
// machines (paper Secs. II, VII-A).
type DisjointSets struct{}

// Name implements Partitioner.
func (DisjointSets) Name() string { return "DS" }

// Partition implements Partitioner.
func (DisjointSets) Partition(docs []document.Document, m int) *Table {
	uf := newUnionFind()
	for _, d := range docs {
		syms := d.InternedPairs()
		if len(syms) == 0 {
			continue
		}
		first := uf.add(syms[0])
		for _, sp := range syms[1:] {
			uf.union(first, uf.add(sp))
		}
	}

	// Collect components and count their documents (each document lies
	// entirely inside one component).
	compPairs := make(map[int][]symbol.Pair)
	for sp, id := range uf.ids {
		root := uf.find(id)
		compPairs[root] = append(compPairs[root], sp)
	}
	compLoad := make(map[int]int)
	for _, d := range docs {
		if d.Len() == 0 {
			continue
		}
		root := uf.find(uf.ids[d.InternedPairs()[0]])
		compLoad[root]++
	}

	// Deterministic order: heaviest component first.
	roots := make([]int, 0, len(compPairs))
	for r := range compPairs {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		if compLoad[roots[i]] != compLoad[roots[j]] {
			return compLoad[roots[i]] > compLoad[roots[j]]
		}
		return roots[i] < roots[j]
	})

	parts := make([]PairSet, m)
	loads := make([]int, m)
	for i := range parts {
		parts[i] = NewPairSet()
	}
	for _, r := range roots {
		target := 0
		for k := 1; k < m; k++ {
			if loads[k] < loads[target] {
				target = k
			}
		}
		for _, sp := range compPairs[r] {
			parts[target].AddSym(sp)
		}
		loads[target] += compLoad[r]
	}
	return NewTable(parts)
}

// Components returns the number of disjoint sets the batch induces —
// the hard upper bound on how many machines DS can use.
func (DisjointSets) Components(docs []document.Document) int {
	uf := newUnionFind()
	for _, d := range docs {
		syms := d.InternedPairs()
		if len(syms) == 0 {
			continue
		}
		first := uf.add(syms[0])
		for _, sp := range syms[1:] {
			uf.union(first, uf.add(sp))
		}
	}
	roots := make(map[int]struct{})
	for _, id := range uf.ids {
		roots[uf.find(id)] = struct{}{}
	}
	return len(roots)
}

// unionFind is a standard weighted quick-union with path compression
// over interned attribute-value pairs.
type unionFind struct {
	ids    map[symbol.Pair]int
	parent []int
	size   []int
}

func newUnionFind() *unionFind {
	return &unionFind{ids: make(map[symbol.Pair]int)}
}

func (u *unionFind) add(sp symbol.Pair) int {
	if id, ok := u.ids[sp]; ok {
		return id
	}
	id := len(u.parent)
	u.ids[sp] = id
	u.parent = append(u.parent, id)
	u.size = append(u.size, 1)
	return id
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
