package partition

import (
	"bytes"
	"encoding/gob"

	"repro/internal/document"
)

// GobEncode implements gob.GobEncoder: the set travels as its sorted
// pair list (gob cannot encode the empty-struct map values directly).
func (s PairSet) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s.Sorted())
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *PairSet) GobDecode(data []byte) error {
	var pairs []document.Pair
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&pairs); err != nil {
		return err
	}
	*s = NewPairSet(pairs...)
	return nil
}
