package partition

import (
	"bytes"
	"encoding/gob"

	"repro/internal/document"
)

// gobTable is the wire form of a Table: the inverted pair index is
// rebuilt on decode rather than shipped.
type gobTable struct {
	Partitions [][]document.Pair
}

// GobEncode implements gob.GobEncoder for cluster transport.
func (t *Table) GobEncode() ([]byte, error) {
	g := gobTable{Partitions: make([][]document.Pair, len(t.Partitions))}
	for i, ps := range t.Partitions {
		g.Partitions[i] = ps.Sorted()
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(g)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (t *Table) GobDecode(data []byte) error {
	var g gobTable
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return err
	}
	parts := make([]PairSet, len(g.Partitions))
	for i, pairs := range g.Partitions {
		parts[i] = NewPairSet(pairs...)
	}
	*t = *NewTable(parts)
	return nil
}
