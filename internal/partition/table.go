// Package partition implements the data-partitioning algorithms of the
// paper: the Association Groups approach of Section IV (the
// contribution) and the two competitors from Alvanaki & Michel used in
// the evaluation, Set Cover (SC) and Disjoint Sets (DS).
//
// A partition is a set of attribute-value pairs assigned to one
// machine. A document matches a partition when the two share at least
// one attribute-value pair; matching documents are forwarded to that
// machine, and a document matching several partitions is replicated to
// all of them so the join result stays complete.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/document"
	"repro/internal/symbol"
)

// PairSet is a set of attribute-value pairs, keyed by their interned
// symbols (see internal/symbol): membership tests hash one uint64
// instead of two strings. The string-typed methods intern (Add) or
// look up (Has) transparently; Sorted resolves back to strings in the
// same deterministic lexicographic order as before interning.
//
// Like every symbol-keyed structure, a PairSet is bound to the symbol
// epoch it was built under; symbol.Reset is quiesce-only and must not
// run while a PairSet is live.
type PairSet map[symbol.Pair]struct{}

// NewPairSet builds a set from pairs, interning them.
func NewPairSet(pairs ...document.Pair) PairSet {
	s := make(PairSet, len(pairs))
	for _, p := range pairs {
		s.Add(p)
	}
	return s
}

// NewPairSetFromSyms builds a set from already-interned pair symbols —
// the allocation-free path for pairs coming out of a Document.
func NewPairSetFromSyms(syms []symbol.Pair) PairSet {
	s := make(PairSet, len(syms))
	for _, sp := range syms {
		s[sp] = struct{}{}
	}
	return s
}

// Add inserts a pair, interning it.
func (s PairSet) Add(p document.Pair) { s[symbol.InternPair(p.Attr, p.Val)] = struct{}{} }

// AddSym inserts an already-interned pair symbol.
func (s PairSet) AddSym(sp symbol.Pair) { s[sp] = struct{}{} }

// Has reports membership. A pair whose attribute or value was never
// interned cannot be in any set.
func (s PairSet) Has(p document.Pair) bool {
	sp, ok := symbol.LookupPair(p.Attr, p.Val)
	if !ok {
		return false
	}
	_, ok = s[sp]
	return ok
}

// HasSym reports membership of an already-interned pair symbol.
func (s PairSet) HasSym(sp symbol.Pair) bool { _, ok := s[sp]; return ok }

// AddAll inserts every pair of o.
func (s PairSet) AddAll(o PairSet) {
	for sp := range o {
		s[sp] = struct{}{}
	}
}

// SubsetOf reports whether every pair of s is in o.
func (s PairSet) SubsetOf(o PairSet) bool {
	if len(s) > len(o) {
		return false
	}
	for sp := range s {
		if _, ok := o[sp]; !ok {
			return false
		}
	}
	return true
}

// Sorted returns the pairs in deterministic (lexicographic) order.
func (s PairSet) Sorted() []document.Pair {
	out := make([]document.Pair, 0, len(s))
	for sp := range s {
		a, v := symbol.PairStrings(sp)
		out = append(out, document.Pair{Attr: a, Val: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		return out[i].Val < out[j].Val
	})
	return out
}

// sortedSyms returns the pair symbols ordered lexicographically by
// their resolved strings — the same order as Sorted.
func (s PairSet) sortedSyms() []symbol.Pair {
	type kv struct {
		sp   symbol.Pair
		a, v string
	}
	items := make([]kv, 0, len(s))
	for sp := range s {
		a, v := symbol.PairStrings(sp)
		items = append(items, kv{sp, a, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].a != items[j].a {
			return items[i].a < items[j].a
		}
		return items[i].v < items[j].v
	})
	out := make([]symbol.Pair, len(items))
	for i, it := range items {
		out[i] = it.sp
	}
	return out
}

// Table is a complete partitioning: m pair sets, one per machine, plus
// an inverted index for O(#pairs) document assignment. The index is
// keyed by interned pair symbols, so routing a document hashes one
// uint64 per pair.
type Table struct {
	M          int
	Partitions []PairSet

	index map[symbol.Pair][]int
}

// NewTable builds a table over the given partitions (len == m) and
// constructs the pair index.
func NewTable(parts []PairSet) *Table {
	t := &Table{
		M:          len(parts),
		Partitions: parts,
		index:      make(map[symbol.Pair][]int),
	}
	for i, ps := range parts {
		for sp := range ps {
			t.index[sp] = append(t.index[sp], i)
		}
	}
	return t
}

// Covers reports whether the pair belongs to any partition.
func (t *Table) Covers(p document.Pair) bool {
	sp, ok := symbol.LookupPair(p.Attr, p.Val)
	if !ok {
		return false
	}
	_, ok = t.index[sp]
	return ok
}

// coversSym reports whether an interned pair belongs to any partition.
func (t *Table) coversSym(sp symbol.Pair) bool {
	_, ok := t.index[sp]
	return ok
}

// Assign returns the sorted set of partition indexes whose pair sets
// share at least one attribute-value pair with d. An empty result means
// the document matches no partition and must be broadcast to all
// machines to guarantee join completeness.
func (t *Table) Assign(d document.Document) []int {
	var out []int
	for _, sp := range d.InternedPairs() {
		for _, idx := range t.index[sp] {
			dup := false
			for _, have := range out {
				if have == idx {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, idx)
			}
		}
	}
	sort.Ints(out)
	return out
}

// FullyCovered reports whether every pair of d belongs to some
// partition. A document with an uncovered (previously unseen) pair must
// be broadcast to all machines to guarantee join completeness: its
// uncovered pair could be the only link to a joinable partner (paper
// Sec. VI-A and VII-E.4).
func (t *Table) FullyCovered(d document.Document) bool {
	for _, sp := range d.InternedPairs() {
		if !t.coversSym(sp) {
			return false
		}
	}
	return true
}

// UncoveredPairs returns the pairs of d not present in any partition.
func (t *Table) UncoveredPairs(d document.Document) []document.Pair {
	var out []document.Pair
	pairs := d.Pairs()
	for i, sp := range d.InternedPairs() {
		if !t.coversSym(sp) {
			out = append(out, pairs[i])
		}
	}
	return out
}

// Route computes the machines a document is forwarded to under the
// Assigner policy: if every pair is covered, the matching partitions;
// otherwise a broadcast to all machines (broadcast=true).
func (t *Table) Route(d document.Document) (targets []int, broadcast bool) {
	if t.FullyCovered(d) {
		if targets = t.Assign(d); len(targets) > 0 {
			return targets, false
		}
	}
	targets = make([]int, t.M)
	for i := range targets {
		targets[i] = i
	}
	return targets, true
}

// AddPair extends partition idx with pair p (used by the Merger's
// δ-gated partition updates).
func (t *Table) AddPair(idx int, p document.Pair) {
	if idx < 0 || idx >= t.M {
		panic(fmt.Sprintf("partition: AddPair index %d out of range [0,%d)", idx, t.M))
	}
	sp := symbol.InternPair(p.Attr, p.Val)
	if t.Partitions[idx].HasSym(sp) {
		return
	}
	t.Partitions[idx].AddSym(sp)
	t.index[sp] = append(t.index[sp], idx)
}

// AddDocument adds every uncovered pair of d to the currently
// least-loaded partition (by pair count), implementing the paper's
// "updating the partitions is adding a single document to the already
// created partitions". If some pairs are covered, the uncovered pairs
// join the partition already holding most of d's pairs, keeping the
// document on one machine.
func (t *Table) AddDocument(d document.Document) {
	target := -1
	if matched := t.Assign(d); len(matched) > 0 {
		// Attach to the best matching partition.
		best, bestShared := -1, -1
		for _, idx := range matched {
			shared := 0
			for _, sp := range d.InternedPairs() {
				if t.Partitions[idx].HasSym(sp) {
					shared++
				}
			}
			if shared > bestShared {
				best, bestShared = idx, shared
			}
		}
		target = best
	} else {
		// Least-loaded partition by pair count.
		min := int(^uint(0) >> 1)
		for i, ps := range t.Partitions {
			if len(ps) < min {
				min = len(ps)
				target = i
			}
		}
	}
	pairs := d.Pairs()
	for i, sp := range d.InternedPairs() {
		if !t.coversSym(sp) {
			t.AddPair(target, pairs[i])
		}
	}
}

// Clone returns a deep copy of the table. The Merger mutates only
// clones so that previously broadcast tables stay immutable for the
// Assigners reading them concurrently.
func (t *Table) Clone() *Table {
	parts := make([]PairSet, len(t.Partitions))
	for i, ps := range t.Partitions {
		cp := make(PairSet, len(ps))
		cp.AddAll(ps)
		parts[i] = cp
	}
	return NewTable(parts)
}

// NonEmpty counts partitions holding at least one pair. Partitioners
// limited by low value variety (paper Sec. VI-B) produce fewer
// non-empty partitions than machines.
func (t *Table) NonEmpty() int {
	n := 0
	for _, ps := range t.Partitions {
		if len(ps) > 0 {
			n++
		}
	}
	return n
}

// String summarises partition sizes.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table m=%d sizes=[", t.M)
	for i, ps := range t.Partitions {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", len(ps))
	}
	b.WriteByte(']')
	return b.String()
}

// Partitioner turns a window of documents into a Table of m partitions.
type Partitioner interface {
	Name() string
	Partition(docs []document.Document, m int) *Table
}

// ByName returns the partitioner for a short algorithm name.
func ByName(name string) (Partitioner, error) {
	switch strings.ToUpper(name) {
	case "AG":
		return AssociationGroups{}, nil
	case "SC":
		return SetCover{}, nil
	case "DS":
		return DisjointSets{}, nil
	default:
		return nil, fmt.Errorf("partition: unknown partitioner %q", name)
	}
}
