package partition

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/document"
	"repro/internal/state"
	"repro/internal/symbol"
)

func snapshotTable() *Table {
	return NewTable([]PairSet{
		NewPairSet(intPair("a", 1), intPair("b", 2)),
		NewPairSet(intPair("a", 2), intPair("c", 3)),
		NewPairSet(intPair("d", 4)),
	})
}

func assertTablesEqual(t *testing.T, orig, restored *Table) {
	t.Helper()
	if restored.M != orig.M {
		t.Fatalf("M = %d, want %d", restored.M, orig.M)
	}
	for i := range orig.Partitions {
		if got, want := restored.Partitions[i].Sorted(), orig.Partitions[i].Sorted(); !reflect.DeepEqual(got, want) {
			t.Fatalf("partition %d: %v != %v", i, got, want)
		}
	}
	// The rebuilt index must route identically, including multi-target
	// assignment and the broadcast fallback.
	probes := []document.Document{
		document.New(1, []document.Pair{intPair("a", 1)}),
		document.New(2, []document.Pair{intPair("a", 1), intPair("c", 3)}),
		document.New(3, []document.Pair{intPair("z", 9)}),
	}
	for _, d := range probes {
		gotT, gotB := restored.Route(d)
		wantT, wantB := orig.Route(d)
		if gotB != wantB || !reflect.DeepEqual(gotT, wantT) {
			t.Fatalf("Route(%d) = %v,%v want %v,%v", d.ID, gotT, gotB, wantT, wantB)
		}
	}
}

func TestTableSnapshotRoundTrip(t *testing.T) {
	orig := snapshotTable()
	enc, err := state.Encode("table", orig)
	if err != nil {
		t.Fatal(err)
	}
	restored := &Table{}
	if err := state.Decode("table", enc, restored); err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, orig, restored)

	// Restored tables must keep absorbing δ updates.
	doc := document.New(9, []document.Pair{intPair("a", 1), intPair("e", 5)})
	orig.AddDocument(doc)
	restored.AddDocument(doc)
	assertTablesEqual(t, orig, restored)
}

// TestTableSnapshotGolden pins determinism: equal tables snapshot to
// identical bytes (partitions serialize sorted).
func TestTableSnapshotGolden(t *testing.T) {
	var a, b bytes.Buffer
	if err := snapshotTable().Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := snapshotTable().Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("table snapshot bytes are not deterministic")
	}
}

// TestTableSnapshotSurvivesEpochReset proves the snapshot re-interns
// its pairs: a table restored after symbol.Reset routes identically.
func TestTableSnapshotSurvivesEpochReset(t *testing.T) {
	orig := snapshotTable()
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	wantParts := make([][]document.Pair, len(orig.Partitions))
	for i, ps := range orig.Partitions {
		wantParts[i] = ps.Sorted()
	}

	symbol.Reset()

	restored := &Table{}
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore after epoch reset: %v", err)
	}
	for i := range wantParts {
		if got := restored.Partitions[i].Sorted(); !reflect.DeepEqual(got, wantParts[i]) {
			t.Fatalf("partition %d after epoch reset: %v != %v", i, got, wantParts[i])
		}
	}
	d := document.New(1, []document.Pair{intPair("a", 1)})
	targets, broadcast := restored.Route(d)
	if broadcast || len(targets) != 1 || targets[0] != 0 {
		t.Fatalf("Route after epoch reset = %v,%v", targets, broadcast)
	}
}

func TestTableRestoreRejectsGarbage(t *testing.T) {
	restored := &Table{}
	if err := restored.Restore(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage restore accepted")
	}
}
