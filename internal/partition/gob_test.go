package partition

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/document"
)

func TestTableGobRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	docs := randomBatch(r, 30)
	tbl := AssociationGroups{}.Partition(docs, 4)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tbl); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.M != tbl.M {
		t.Fatalf("M = %d, want %d", back.M, tbl.M)
	}
	// Same routing decisions after the round trip (index rebuilt).
	for _, d := range docs {
		want := tbl.Assign(d)
		got := back.Assign(d)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("routing changed for %v: %v vs %v", d, got, want)
		}
	}
}

func TestPairSetGobRoundTrip(t *testing.T) {
	s := NewPairSet(intPair("a", 1), intPair("b", 2))
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	var back PairSet
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !back.Has(intPair("a", 1)) || !back.Has(intPair("b", 2)) {
		t.Errorf("round trip = %v", back.Sorted())
	}
}

func TestGobDecodeGarbage(t *testing.T) {
	var tbl Table
	if err := tbl.GobDecode([]byte("junk")); err == nil {
		t.Error("garbage table must fail")
	}
	var ps PairSet
	if err := ps.GobDecode([]byte("junk")); err == nil {
		t.Error("garbage pair set must fail")
	}
}

// TestQuickTableGobPreservesCoverage: coverage of every pair survives
// serialisation for arbitrary tables.
func TestQuickTableGobPreservesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomBatch(r, 5+r.Intn(20))
		tbl := DisjointSets{}.Partition(docs, 3)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(tbl); err != nil {
			return false
		}
		var back Table
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			return false
		}
		for _, d := range docs {
			for _, p := range d.Pairs() {
				if tbl.Covers(p) != back.Covers(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsolation(t *testing.T) {
	tbl := NewTable([]PairSet{NewPairSet(intPair("a", 1)), NewPairSet()})
	cp := tbl.Clone()
	cp.AddPair(1, intPair("z", 9))
	if tbl.Covers(intPair("z", 9)) {
		t.Error("mutating the clone leaked into the original")
	}
	if !cp.Covers(intPair("a", 1)) {
		t.Error("clone lost original pairs")
	}
	d := document.New(1, []document.Pair{intPair("a", 1)})
	if got := cp.Assign(d); len(got) != 1 || got[0] != 0 {
		t.Errorf("clone routing = %v", got)
	}
}
