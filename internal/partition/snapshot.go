package partition

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Snapshot implements the operator-state contract
// (internal/state.Snapshotter) for the routing table. It reuses the
// table's symbol-aware gob form: partitions serialize as sorted string
// pairs and re-intern on decode, so a snapshot restores across
// processes and symbol epochs; the pair index is derived state and is
// rebuilt by the decoder.
func (t *Table) Snapshot(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// Restore implements state.Snapshotter, replacing the receiver's
// contents.
func (t *Table) Restore(r io.Reader) error {
	var decoded Table
	if err := gob.NewDecoder(r).Decode(&decoded); err != nil {
		return fmt.Errorf("partition: restore table: %w", err)
	}
	*t = decoded
	return nil
}
