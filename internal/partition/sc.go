package partition

import (
	"sort"

	"repro/internal/document"
)

// SetCover is the set-cover-based competitor (Alvanaki & Michel),
// "tuned for low communication overhead" as described in the paper's
// Sec. VII-A: each document's pair set is a candidate set; the initial
// m partitions are seeded by repeatedly picking the set with the most
// uncovered and fewest covered attribute-value pairs, and the remaining
// sets are attached, fewest-pairs/most-uncovered first, to the
// least-loaded partition sharing the most pairs with them.
type SetCover struct{}

// Name implements Partitioner.
func (SetCover) Name() string { return "SC" }

// scSet is one distinct document pair-set with its multiplicity.
type scSet struct {
	pairs []document.Pair
	count int // number of documents with exactly this pair set
}

// Partition implements Partitioner.
func (SetCover) Partition(docs []document.Document, m int) *Table {
	sets := distinctSets(docs)
	covered := NewPairSet()
	parts := make([]PairSet, m)
	loads := make([]int, m)
	for i := range parts {
		parts[i] = NewPairSet()
	}
	used := make([]bool, len(sets))

	// Seed the m initial partitions.
	for p := 0; p < m; p++ {
		best := -1
		bestUncov, bestCov := -1, 0
		for i, s := range sets {
			if used[i] {
				continue
			}
			uncov, cov := coverSplit(s.pairs, covered)
			if uncov > bestUncov || (uncov == bestUncov && cov < bestCov) {
				best, bestUncov, bestCov = i, uncov, cov
			}
		}
		if best < 0 {
			break // fewer distinct sets than partitions
		}
		used[best] = true
		for _, pr := range sets[best].pairs {
			parts[p].Add(pr)
			covered.Add(pr)
		}
		loads[p] += sets[best].count
	}

	// Attach the remaining sets: in every iteration the set with the
	// least number of pairs and the most uncovered pairs is selected.
	for {
		best := -1
		bestLen, bestUncov := int(^uint(0)>>1), -1
		for i, s := range sets {
			if used[i] {
				continue
			}
			uncov, _ := coverSplit(s.pairs, covered)
			if len(s.pairs) < bestLen || (len(s.pairs) == bestLen && uncov > bestUncov) {
				best, bestLen, bestUncov = i, len(s.pairs), uncov
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		s := sets[best]
		// Partition with the least load; ties broken by the most
		// attribute-value pairs in common with the selected set.
		target := 0
		targetShared := sharedCount(s.pairs, parts[0])
		for k := 1; k < m; k++ {
			shared := sharedCount(s.pairs, parts[k])
			if loads[k] < loads[target] || (loads[k] == loads[target] && shared > targetShared) {
				target, targetShared = k, shared
			}
		}
		for _, pr := range s.pairs {
			parts[target].Add(pr)
			covered.Add(pr)
		}
		loads[target] += s.count
	}
	return NewTable(parts)
}

// distinctSets deduplicates document pair-sets, tracking multiplicity,
// in deterministic order.
func distinctSets(docs []document.Document) []scSet {
	type entry struct {
		set *scSet
	}
	byKey := make(map[string]*scSet)
	var order []string
	for _, d := range docs {
		key := ""
		for _, p := range d.Pairs() {
			key += p.Key() + "\x00"
		}
		if s, ok := byKey[key]; ok {
			s.count++
			continue
		}
		pairs := make([]document.Pair, len(d.Pairs()))
		copy(pairs, d.Pairs())
		byKey[key] = &scSet{pairs: pairs, count: 1}
		order = append(order, key)
	}
	sort.Strings(order)
	out := make([]scSet, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

func coverSplit(pairs []document.Pair, covered PairSet) (uncov, cov int) {
	for _, p := range pairs {
		if covered.Has(p) {
			cov++
		} else {
			uncov++
		}
	}
	return uncov, cov
}

func sharedCount(pairs []document.Pair, ps PairSet) int {
	n := 0
	for _, p := range pairs {
		if ps.Has(p) {
			n++
		}
	}
	return n
}
