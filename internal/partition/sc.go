package partition

import (
	"sort"
	"strings"

	"repro/internal/document"
	"repro/internal/symbol"
)

// SetCover is the set-cover-based competitor (Alvanaki & Michel),
// "tuned for low communication overhead" as described in the paper's
// Sec. VII-A: each document's pair set is a candidate set; the initial
// m partitions are seeded by repeatedly picking the set with the most
// uncovered and fewest covered attribute-value pairs, and the remaining
// sets are attached, fewest-pairs/most-uncovered first, to the
// least-loaded partition sharing the most pairs with them.
type SetCover struct{}

// Name implements Partitioner.
func (SetCover) Name() string { return "SC" }

// scSet is one distinct document pair-set with its multiplicity.
type scSet struct {
	pairs []document.Pair
	syms  []symbol.Pair // parallel to pairs
	count int           // number of documents with exactly this pair set
}

// Partition implements Partitioner.
func (SetCover) Partition(docs []document.Document, m int) *Table {
	sets := distinctSets(docs)
	covered := NewPairSet()
	parts := make([]PairSet, m)
	loads := make([]int, m)
	for i := range parts {
		parts[i] = NewPairSet()
	}
	used := make([]bool, len(sets))

	// Seed the m initial partitions.
	for p := 0; p < m; p++ {
		best := -1
		bestUncov, bestCov := -1, 0
		for i, s := range sets {
			if used[i] {
				continue
			}
			uncov, cov := coverSplit(s.syms, covered)
			if uncov > bestUncov || (uncov == bestUncov && cov < bestCov) {
				best, bestUncov, bestCov = i, uncov, cov
			}
		}
		if best < 0 {
			break // fewer distinct sets than partitions
		}
		used[best] = true
		for _, sp := range sets[best].syms {
			parts[p].AddSym(sp)
			covered.AddSym(sp)
		}
		loads[p] += sets[best].count
	}

	// Attach the remaining sets: in every iteration the set with the
	// least number of pairs and the most uncovered pairs is selected.
	for {
		best := -1
		bestLen, bestUncov := int(^uint(0)>>1), -1
		for i, s := range sets {
			if used[i] {
				continue
			}
			uncov, _ := coverSplit(s.syms, covered)
			if len(s.pairs) < bestLen || (len(s.pairs) == bestLen && uncov > bestUncov) {
				best, bestLen, bestUncov = i, len(s.pairs), uncov
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		s := sets[best]
		// Partition with the least load; ties broken by the most
		// attribute-value pairs in common with the selected set.
		target := 0
		targetShared := sharedCount(s.syms, parts[0])
		for k := 1; k < m; k++ {
			shared := sharedCount(s.syms, parts[k])
			if loads[k] < loads[target] || (loads[k] == loads[target] && shared > targetShared) {
				target, targetShared = k, shared
			}
		}
		for _, sp := range s.syms {
			parts[target].AddSym(sp)
			covered.AddSym(sp)
		}
		loads[target] += s.count
	}
	return NewTable(parts)
}

// distinctSets deduplicates document pair-sets, tracking multiplicity,
// in deterministic order.
func distinctSets(docs []document.Document) []scSet {
	byKey := make(map[string]*scSet)
	var order []string
	var kb strings.Builder
	for _, d := range docs {
		kb.Reset()
		for _, p := range d.Pairs() {
			kb.WriteString(p.Key())
			kb.WriteByte(0)
		}
		key := kb.String()
		if s, ok := byKey[key]; ok {
			s.count++
			continue
		}
		pairs := make([]document.Pair, len(d.Pairs()))
		copy(pairs, d.Pairs())
		syms := make([]symbol.Pair, len(pairs))
		copy(syms, d.InternedPairs())
		byKey[key] = &scSet{pairs: pairs, syms: syms, count: 1}
		order = append(order, key)
	}
	sort.Strings(order)
	out := make([]scSet, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

func coverSplit(syms []symbol.Pair, covered PairSet) (uncov, cov int) {
	for _, sp := range syms {
		if covered.HasSym(sp) {
			cov++
		} else {
			uncov++
		}
	}
	return uncov, cov
}

func sharedCount(syms []symbol.Pair, ps PairSet) int {
	n := 0
	for _, sp := range syms {
		if ps.HasSym(sp) {
			n++
		}
	}
	return n
}
