package partition

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/document"
	"repro/internal/symbol"
)

// AssocGroup is one association group: a set of attribute-value pairs
// that the association analysis decided belong together, plus the
// documents it was derived from and the resulting load (number of
// documents containing at least one of the group's pairs).
type AssocGroup struct {
	Pairs PairSet
	Docs  []uint64 // sorted, union over constituent equivalence groups
	Load  int
}

// AssociationGroups is the paper's partitioning algorithm (Sec. IV):
// equivalence groups are found by grouping the attribute-value pairs
// that occur in exactly the same set of documents, the implies relation
// merges equivalence groups into association groups (Algorithm 1), and
// the groups are packed into m partitions largest-load-first.
type AssociationGroups struct{}

// Name implements Partitioner.
func (AssociationGroups) Name() string { return "AG" }

// Partition implements Partitioner.
func (ag AssociationGroups) Partition(docs []document.Document, m int) *Table {
	groups := ag.Groups(docs)
	return AssignGroups(groups, m)
}

// equivalence group: pairs sharing one exact document set.
type eqGroup struct {
	pairs PairSet
	docs  []uint64 // sorted
}

// Groups runs Algorithm 1: it computes the association groups for a
// document batch. The returned groups have pairwise-disjoint pair sets.
func (AssociationGroups) Groups(docs []document.Document) []AssocGroup {
	egs := equivalenceGroups(docs)

	// Sort ascending by document count (Algorithm 1 line 3); ties are
	// broken by the docset signature, then by the first pair, for
	// determinism across runs. Sort keys are computed once per group
	// rather than inside the comparator.
	type egItem struct {
		eg     eqGroup
		sig    string
		sorted []document.Pair
	}
	items := make([]egItem, len(egs))
	for i, eg := range egs {
		items[i] = egItem{eg: eg, sig: docsSignature(eg.docs), sorted: eg.pairs.Sorted()}
	}
	sort.Slice(items, func(i, j int) bool {
		if len(items[i].eg.docs) != len(items[j].eg.docs) {
			return len(items[i].eg.docs) < len(items[j].eg.docs)
		}
		if items[i].sig != items[j].sig {
			return items[i].sig < items[j].sig
		}
		return lessSortedPairs(items[i].sorted, items[j].sorted)
	})
	for i := range items {
		egs[i] = items[i].eg
	}

	alive := make([]bool, len(egs))
	for i := range alive {
		alive[i] = true
	}
	var out []AssocGroup
	for i := range egs {
		if !alive[i] {
			continue
		}
		group := AssocGroup{Pairs: NewPairSet(), Docs: append([]uint64(nil), egs[i].docs...)}
		group.Pairs.AddAll(egs[i].pairs)
		for j := i + 1; j < len(egs); j++ {
			if !alive[j] {
				continue
			}
			// EG[i] implies EG[j] iff EG[j] appears in every document
			// EG[i] appears in (and beyond): docs(i) ⊂ docs(j). The
			// equivalence step already merged equal docsets, so a
			// subset here is automatically proper.
			if subsetIDs(egs[i].docs, egs[j].docs) {
				group.Pairs.AddAll(egs[j].pairs)
				group.Docs = unionIDs(group.Docs, egs[j].docs)
				alive[j] = false
			}
		}
		group.Load = len(group.Docs)
		out = append(out, group)
	}
	return out
}

// equivalenceGroups groups the attribute-value pairs occurring in
// exactly the same set of documents (Definition 1).
func equivalenceGroups(docs []document.Document) []eqGroup {
	avInD := make(map[symbol.Pair][]uint64)
	for _, d := range docs {
		for _, sp := range d.InternedPairs() {
			avInD[sp] = append(avInD[sp], d.ID)
		}
	}
	bySig := make(map[string]*eqGroup)
	for sp, ids := range avInD {
		sortIDs(ids)
		ids = dedupIDs(ids)
		sig := docsSignature(ids)
		g, ok := bySig[sig]
		if !ok {
			g = &eqGroup{pairs: NewPairSet(), docs: ids}
			bySig[sig] = g
		}
		g.pairs.AddSym(sp)
	}
	out := make([]eqGroup, 0, len(bySig))
	for _, g := range bySig {
		out = append(out, *g)
	}
	return out
}

// AssignGroups packs association groups into m partitions: the m
// highest-load groups seed the partitions, then each remaining group
// (largest first) goes to the partition with the least accumulated
// load — the assignment scheme of Alvanaki & Michel reused by the
// paper.
func AssignGroups(groups []AssocGroup, m int) *Table {
	type agItem struct {
		g      AssocGroup
		sorted []document.Pair
	}
	items := make([]agItem, len(groups))
	for i, g := range groups {
		items[i] = agItem{g: g, sorted: g.Pairs.Sorted()}
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].g.Load != items[j].g.Load {
			return items[i].g.Load > items[j].g.Load
		}
		return lessSortedPairs(items[i].sorted, items[j].sorted)
	})
	sorted := make([]AssocGroup, len(items))
	for i := range items {
		sorted[i] = items[i].g
	}
	parts := make([]PairSet, m)
	loads := make([]int, m)
	for i := range parts {
		parts[i] = NewPairSet()
	}
	for i, g := range sorted {
		target := i
		if i >= m {
			target = 0
			for k := 1; k < m; k++ {
				if loads[k] < loads[target] {
					target = k
				}
			}
		}
		parts[target].AddAll(g.Pairs)
		loads[target] += g.Load
	}
	return NewTable(parts)
}

// Consolidate merges the local association groups produced by multiple
// PartitionCreators into one consistent global set (paper Sec. IV-A,
// Merger): groups whose pair set is a subset of another group's are
// folded into the superset, and a pair appearing in two groups is
// removed from the group with more elements.
func Consolidate(local [][]AssocGroup) []AssocGroup {
	var all []AssocGroup
	for _, groups := range local {
		for _, g := range groups {
			cp := AssocGroup{Pairs: NewPairSet(), Docs: append([]uint64(nil), g.Docs...), Load: g.Load}
			cp.Pairs.AddAll(g.Pairs)
			all = append(all, cp)
		}
	}
	// Deterministic processing order: larger pair sets first so subsets
	// fold into the largest available superset. Sort keys are computed
	// once per group rather than inside the comparator.
	sortKeys := make([][]document.Pair, len(all))
	for i := range all {
		sortKeys[i] = all[i].Pairs.Sorted()
	}
	idxs := make([]int, len(all))
	for i := range idxs {
		idxs[i] = i
	}
	sort.SliceStable(idxs, func(x, y int) bool {
		i, j := idxs[x], idxs[y]
		if len(all[i].Pairs) != len(all[j].Pairs) {
			return len(all[i].Pairs) > len(all[j].Pairs)
		}
		return lessSortedPairs(sortKeys[i], sortKeys[j])
	})
	reordered := make([]AssocGroup, len(all))
	for x, i := range idxs {
		reordered[x] = all[i]
	}
	all = reordered
	alive := make([]bool, len(all))
	for i := range alive {
		alive[i] = true
	}
	// Fold subsets into supersets. Loads add up: the creators saw
	// disjoint samples, so their document counts are additive.
	for i := 0; i < len(all); i++ {
		if !alive[i] {
			continue
		}
		for j := i + 1; j < len(all); j++ {
			if !alive[j] {
				continue
			}
			if all[j].Pairs.SubsetOf(all[i].Pairs) {
				all[i].Load += all[j].Load
				all[i].Docs = unionIDs(all[i].Docs, all[j].Docs)
				alive[j] = false
			}
		}
	}
	var merged []AssocGroup
	for i, g := range all {
		if alive[i] {
			merged = append(merged, g)
		}
	}
	// Remove duplicated pairs from the larger of any two overlapping
	// groups so the final groups are pairwise disjoint.
	owner := make(map[symbol.Pair]int)
	for idx, g := range merged {
		for _, sp := range g.Pairs.sortedSyms() {
			prev, dup := owner[sp]
			if !dup {
				owner[sp] = idx
				continue
			}
			if len(merged[prev].Pairs) >= len(merged[idx].Pairs) {
				delete(merged[prev].Pairs, sp)
				owner[sp] = idx
			} else {
				delete(merged[idx].Pairs, sp)
			}
		}
	}
	// Drop groups emptied by de-duplication.
	out := merged[:0]
	for _, g := range merged {
		if len(g.Pairs) > 0 {
			out = append(out, g)
		}
	}
	return out
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func dedupIDs(ids []uint64) []uint64 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			out = append(out, id)
		}
	}
	return out
}

// subsetIDs reports a ⊆ b for sorted id slices.
func subsetIDs(a, b []uint64) bool {
	if len(a) > len(b) {
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// unionIDs merges two sorted id slices.
func unionIDs(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func docsSignature(ids []uint64) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(id, 36))
	}
	return b.String()
}

// lessSortedPairs compares two lexicographically sorted pair slices
// (the output of PairSet.Sorted) lexicographically.
func lessSortedPairs(as, bs []document.Pair) bool {
	for i := 0; i < len(as) && i < len(bs); i++ {
		if as[i] != bs[i] {
			if as[i].Attr != bs[i].Attr {
				return as[i].Attr < bs[i].Attr
			}
			return as[i].Val < bs[i].Val
		}
	}
	return len(as) < len(bs)
}
