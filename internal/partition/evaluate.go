package partition

import (
	"repro/internal/document"
	"repro/internal/metrics"
)

// Evaluate routes a document batch through the table under the Assigner
// policy (Table.Route) and collects the paper's routing statistics.
func Evaluate(t *Table, docs []document.Document) *metrics.WindowStats {
	w := metrics.NewWindowStats(t.M)
	for _, d := range docs {
		targets, broadcast := t.Route(d)
		w.RecordDelivery(targets, broadcast)
	}
	return w
}

// VerifyCompleteness checks the core correctness invariant of any
// partitioning: every joinable pair of documents must end up together
// on at least one machine under the routing policy (matching partitions
// for fully-covered documents, broadcast otherwise). It returns the
// first violating pair, or ok=true.
func VerifyCompleteness(t *Table, docs []document.Document) (a, b document.Document, ok bool) {
	targets := make([][]int, len(docs))
	for i, d := range docs {
		targets[i], _ = t.Route(d)
	}
	for i := 0; i < len(docs); i++ {
		for j := i + 1; j < len(docs); j++ {
			if !document.Joinable(docs[i], docs[j]) {
				continue
			}
			if !intersects(targets[i], targets[j]) {
				return docs[i], docs[j], false
			}
		}
	}
	return document.Document{}, document.Document{}, true
}

// intersects reports whether two sorted int slices share an element.
func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
