package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/document"
	"repro/internal/symbol"
)

func intPair(a string, v int) document.Pair {
	return document.Pair{Attr: a, Val: document.EncodeInt(int64(v))}
}

// fig3Docs builds the paper's Fig. 3 input documents.
func fig3Docs() []document.Document {
	return []document.Document{
		document.New(1, []document.Pair{intPair("A", 2), intPair("B", 3), intPair("C", 7)}),
		document.New(2, []document.Pair{intPair("A", 7), intPair("B", 3), intPair("C", 4)}),
		document.New(3, []document.Pair{intPair("D", 13)}),
		document.New(4, []document.Pair{intPair("A", 7), intPair("C", 4)}),
	}
}

// TestPaperFigure3AssociationGroups reproduces the worked example of
// Fig. 3: ag1={A:2,C:7,B:3}, ag2={A:7,C:4}, ag3={D:13}.
func TestPaperFigure3AssociationGroups(t *testing.T) {
	groups := AssociationGroups{}.Groups(fig3Docs())
	if len(groups) != 3 {
		t.Fatalf("got %d association groups, want 3: %+v", len(groups), groups)
	}
	want := []PairSet{
		NewPairSet(intPair("A", 2), intPair("C", 7), intPair("B", 3)),
		NewPairSet(intPair("A", 7), intPair("C", 4)),
		NewPairSet(intPair("D", 13)),
	}
	for _, w := range want {
		found := false
		for _, g := range groups {
			if len(g.Pairs) == len(w) && w.SubsetOf(g.Pairs) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("association group %v not produced; got %+v", w.Sorted(), groups)
		}
	}
}

func TestFigure3GroupLoads(t *testing.T) {
	groups := AssociationGroups{}.Groups(fig3Docs())
	loads := map[int]int{} // group size -> load
	for _, g := range groups {
		loads[len(g.Pairs)] = g.Load
	}
	// ag1 {A:2,C:7,B:3} spans docs 1,2 -> load 2.
	if loads[3] != 2 {
		t.Errorf("ag1 load = %d, want 2", loads[3])
	}
	// ag2 {A:7,C:4} spans docs 2,4 -> load 2.
	if loads[2] != 2 {
		t.Errorf("ag2 load = %d, want 2", loads[2])
	}
	// ag3 {D:13} spans doc 3 -> load 1.
	if loads[1] != 1 {
		t.Errorf("ag3 load = %d, want 1", loads[1])
	}
}

func TestAGGroupsDisjoint(t *testing.T) {
	groups := AssociationGroups{}.Groups(fig3Docs())
	seen := NewPairSet()
	for _, g := range groups {
		for sp := range g.Pairs {
			if seen.HasSym(sp) {
				t.Fatalf("pair %v appears in two association groups", sp)
			}
			seen.AddSym(sp)
		}
	}
}

func TestAssignGroupsBalancesLoad(t *testing.T) {
	groups := []AssocGroup{
		{Pairs: NewPairSet(intPair("a", 1)), Load: 10},
		{Pairs: NewPairSet(intPair("b", 1)), Load: 9},
		{Pairs: NewPairSet(intPair("c", 1)), Load: 5},
		{Pairs: NewPairSet(intPair("d", 1)), Load: 4},
	}
	tbl := AssignGroups(groups, 2)
	// Seeds: loads 10 and 9. Then 5 -> partition 1 (load 9<10), then
	// 4 -> partition 0 (10 < 14).
	p0 := tbl.Partitions[0]
	p1 := tbl.Partitions[1]
	if !(p0.Has(intPair("a", 1)) && p0.Has(intPair("d", 1))) {
		t.Errorf("partition 0 = %v", p0.Sorted())
	}
	if !(p1.Has(intPair("b", 1)) && p1.Has(intPair("c", 1))) {
		t.Errorf("partition 1 = %v", p1.Sorted())
	}
}

func randomBatch(r *rand.Rand, n int) []document.Document {
	attrs := []string{"a", "b", "c", "d", "e", "f", "g"}
	docs := make([]document.Document, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(4)
		perm := r.Perm(len(attrs))
		var ps []document.Pair
		for j := 0; j < k; j++ {
			ps = append(ps, intPair(attrs[perm[j]], r.Intn(4)))
		}
		docs = append(docs, document.New(uint64(i+1), ps))
	}
	return docs
}

// TestQuickCompletenessAllPartitioners is the central routing
// invariant: for any batch, any m, and any of the three partitioners,
// every joinable document pair shares at least one machine.
func TestQuickCompletenessAllPartitioners(t *testing.T) {
	partitioners := []Partitioner{AssociationGroups{}, SetCover{}, DisjointSets{}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomBatch(r, 2+r.Intn(30))
		m := 2 + r.Intn(6)
		for _, p := range partitioners {
			tbl := p.Partition(docs, m)
			if len(tbl.Partitions) != m {
				return false
			}
			if _, _, ok := VerifyCompleteness(tbl, docs); !ok {
				t.Logf("%s violated completeness (seed %d, m=%d)", p.Name(), seed, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompletenessUnseenDocs routes documents NOT in the
// partitioning batch: the broadcast fallback must preserve
// completeness.
func TestQuickCompletenessUnseenDocs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomBatch(r, 5+r.Intn(20))
		future := randomBatch(r, 10)
		for i := range future {
			future[i].ID = uint64(100 + i)
		}
		tbl := AssociationGroups{}.Partition(docs, 4)
		_, _, ok := VerifyCompleteness(tbl, append(append([]document.Document{}, docs...), future...))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDSNoReplication: under DS every document in the partitioning
// batch maps to exactly one machine (perfect replication of 1).
func TestDSNoReplication(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	docs := randomBatch(r, 50)
	tbl := DisjointSets{}.Partition(docs, 4)
	for _, d := range docs {
		targets, broadcast := tbl.Route(d)
		if broadcast || len(targets) != 1 {
			t.Fatalf("doc %v routed to %v (broadcast=%v); DS must map to exactly one machine", d, targets, broadcast)
		}
	}
	st := Evaluate(tbl, docs)
	if st.Replication() != 1 {
		t.Errorf("DS replication = %g, want 1", st.Replication())
	}
}

func TestDSComponents(t *testing.T) {
	docs := fig3Docs()
	// Components: {A:2,B:3,C:7,A:7,C:4} all connected through doc1/doc2
	// (B:3 links them); {D:13} separate -> 2 components.
	if n := (DisjointSets{}).Components(docs); n != 2 {
		t.Errorf("Components = %d, want 2", n)
	}
}

func TestDSFewerComponentsThanMachines(t *testing.T) {
	docs := fig3Docs()
	tbl := DisjointSets{}.Partition(docs, 8)
	if ne := tbl.NonEmpty(); ne != 2 {
		t.Errorf("NonEmpty = %d, want 2 (DS cannot scale beyond its components)", ne)
	}
}

func TestSCCoversAllPairs(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	docs := randomBatch(r, 40)
	tbl := SetCover{}.Partition(docs, 4)
	for _, d := range docs {
		for _, p := range d.Pairs() {
			if !tbl.Covers(p) {
				t.Fatalf("pair %v uncovered by SC", p)
			}
		}
	}
}

func TestAGCoversAllPairs(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	docs := randomBatch(r, 40)
	tbl := AssociationGroups{}.Partition(docs, 4)
	for _, d := range docs {
		if !tbl.FullyCovered(d) {
			t.Fatalf("doc %v not fully covered by AG table", d)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"AG", "SC", "DS", "ag", "sc", "ds"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("zz"); err == nil {
		t.Error("ByName(zz) must fail")
	}
}

func TestTableAssignSorted(t *testing.T) {
	parts := []PairSet{
		NewPairSet(intPair("a", 1)),
		NewPairSet(intPair("b", 2)),
		NewPairSet(intPair("c", 3)),
	}
	tbl := NewTable(parts)
	d := document.New(1, []document.Pair{intPair("c", 3), intPair("a", 1)})
	got := tbl.Assign(d)
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Assign = %v, want [0 2]", got)
	}
}

func TestTableRouteBroadcastOnUncovered(t *testing.T) {
	tbl := NewTable([]PairSet{NewPairSet(intPair("a", 1)), NewPairSet(intPair("b", 2))})
	// Document has a covered pair AND an uncovered pair -> broadcast.
	d := document.New(1, []document.Pair{intPair("a", 1), intPair("z", 9)})
	targets, broadcast := tbl.Route(d)
	if !broadcast || len(targets) != 2 {
		t.Errorf("Route = %v,%v; want broadcast to all", targets, broadcast)
	}
	if got := tbl.UncoveredPairs(d); len(got) != 1 || got[0] != intPair("z", 9) {
		t.Errorf("UncoveredPairs = %v", got)
	}
}

func TestTableAddPair(t *testing.T) {
	tbl := NewTable([]PairSet{NewPairSet(intPair("a", 1)), NewPairSet()})
	tbl.AddPair(1, intPair("z", 9))
	if !tbl.Covers(intPair("z", 9)) {
		t.Error("AddPair did not index the pair")
	}
	// Idempotent.
	tbl.AddPair(1, intPair("z", 9))
	sp, ok := symbol.LookupPair(intPair("z", 9).Attr, intPair("z", 9).Val)
	if !ok {
		t.Fatal("AddPair did not intern the pair")
	}
	if n := len(tbl.index[sp]); n != 1 {
		t.Errorf("duplicate index entries: %d", n)
	}
}

func TestTableAddPairPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddPair out of range did not panic")
		}
	}()
	NewTable([]PairSet{NewPairSet()}).AddPair(5, intPair("a", 1))
}

func TestTableAddDocument(t *testing.T) {
	tbl := NewTable([]PairSet{NewPairSet(intPair("a", 1)), NewPairSet(intPair("b", 2))})
	// Doc matches partition 0 via a:1; its new pair z:9 must join
	// partition 0.
	d := document.New(1, []document.Pair{intPair("a", 1), intPair("z", 9)})
	tbl.AddDocument(d)
	if !tbl.Partitions[0].Has(intPair("z", 9)) {
		t.Errorf("new pair not added to matching partition: %v", tbl.Partitions[0].Sorted())
	}
	// A fully-new doc goes to the least-loaded partition (1).
	d2 := document.New(2, []document.Pair{intPair("q", 7)})
	tbl.AddDocument(d2)
	if !tbl.Partitions[1].Has(intPair("q", 7)) {
		t.Errorf("new doc not added to least-loaded partition")
	}
	// After the update both docs route without broadcast.
	for _, d := range []document.Document{d, d2} {
		if _, broadcast := tbl.Route(d); broadcast {
			t.Errorf("doc %v still broadcast after AddDocument", d)
		}
	}
}

func TestConsolidateFoldsSubsets(t *testing.T) {
	g1 := AssocGroup{Pairs: NewPairSet(intPair("a", 1), intPair("b", 2)), Load: 3}
	g2 := AssocGroup{Pairs: NewPairSet(intPair("a", 1)), Load: 2} // subset of g1
	g3 := AssocGroup{Pairs: NewPairSet(intPair("c", 3)), Load: 1}
	out := Consolidate([][]AssocGroup{{g1}, {g2, g3}})
	if len(out) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(out), out)
	}
	for _, g := range out {
		if g.Pairs.Has(intPair("a", 1)) && g.Load != 5 {
			t.Errorf("folded load = %d, want 5", g.Load)
		}
	}
}

func TestConsolidateRemovesDuplicatePairs(t *testing.T) {
	// a:1 appears in two non-subset groups; it must be removed from the
	// larger one.
	g1 := AssocGroup{Pairs: NewPairSet(intPair("a", 1), intPair("b", 2), intPair("c", 3)), Load: 1}
	g2 := AssocGroup{Pairs: NewPairSet(intPair("a", 1), intPair("d", 4)), Load: 1}
	out := Consolidate([][]AssocGroup{{g1}, {g2}})
	count := 0
	for _, g := range out {
		if g.Pairs.Has(intPair("a", 1)) {
			count++
			if len(g.Pairs) != 2 { // must be the smaller group
				t.Errorf("a:1 kept in the larger group: %v", g.Pairs.Sorted())
			}
		}
	}
	if count != 1 {
		t.Errorf("pair a:1 owned by %d groups, want 1", count)
	}
}

// TestQuickConsolidateDisjoint: consolidated groups are always pairwise
// disjoint, whatever the local inputs.
func TestQuickConsolidateDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var local [][]AssocGroup
		for c := 0; c < 1+r.Intn(3); c++ {
			docs := randomBatch(r, 3+r.Intn(15))
			local = append(local, AssociationGroups{}.Groups(docs))
		}
		out := Consolidate(local)
		seen := NewPairSet()
		for _, g := range out {
			if len(g.Pairs) == 0 {
				return false
			}
			for sp := range g.Pairs {
				if seen.HasSym(sp) {
					return false
				}
				seen.AddSym(sp)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickConsolidatedEqualsDirect: partitioning via consolidated
// local groups must still cover every pair of the combined batch.
func TestQuickConsolidatedCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch1 := randomBatch(r, 10)
		batch2 := randomBatch(r, 10)
		for i := range batch2 {
			batch2[i].ID = uint64(100 + i)
		}
		local := [][]AssocGroup{
			AssociationGroups{}.Groups(batch1),
			AssociationGroups{}.Groups(batch2),
		}
		tbl := AssignGroups(Consolidate(local), 4)
		for _, d := range append(append([]document.Document{}, batch1...), batch2...) {
			if !tbl.FullyCovered(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateStats(t *testing.T) {
	docs := fig3Docs()
	tbl := AssociationGroups{}.Partition(docs, 2)
	st := Evaluate(tbl, docs)
	if st.Documents != 4 {
		t.Errorf("Documents = %d", st.Documents)
	}
	if r := st.Replication(); r < 1 || r > 2 {
		t.Errorf("Replication = %g out of [1,2]", r)
	}
}

func TestPairSetOps(t *testing.T) {
	s := NewPairSet(intPair("a", 1))
	o := NewPairSet(intPair("a", 1), intPair("b", 2))
	if !s.SubsetOf(o) || o.SubsetOf(s) {
		t.Error("SubsetOf wrong")
	}
	s.AddAll(o)
	if len(s) != 2 {
		t.Errorf("AddAll: len=%d", len(s))
	}
	sorted := o.Sorted()
	if sorted[0].Attr != "a" || sorted[1].Attr != "b" {
		t.Errorf("Sorted = %v", sorted)
	}
}

func TestTableString(t *testing.T) {
	tbl := NewTable([]PairSet{NewPairSet(intPair("a", 1)), NewPairSet()})
	if s := tbl.String(); s == "" {
		t.Error("empty String")
	}
}

// TestEmptyDocsAllPartitioners: partitioners must tolerate empty input.
func TestEmptyDocsAllPartitioners(t *testing.T) {
	for _, p := range []Partitioner{AssociationGroups{}, SetCover{}, DisjointSets{}} {
		tbl := p.Partition(nil, 3)
		if tbl.M != 3 {
			t.Errorf("%s: M = %d", p.Name(), tbl.M)
		}
	}
}
