package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/document"
	"repro/internal/join"
)

// querySpecJSON is the request body of POST /queries.
type querySpecJSON struct {
	// ID is optional; the server assigns q1, q2, ... when absent.
	ID string `json:"id"`
	// Engine is the join engine ("FPJ" default, "NLJ", "HBJ").
	Engine string `json:"engine"`
	// Window > 0 tumbles automatically after that many documents; 0
	// gives the query a private window tumbled via its tumble endpoint.
	Window int `json:"window"`
	// Theta in [0,1] is the minimum shared-pair fraction of the smaller
	// input a result must reach; 0 keeps the plain natural join.
	Theta float64 `json:"theta"`
	// Filters restricts results to those whose merged document contains
	// every listed attribute-value pair.
	Filters map[string]any `json:"filters"`
}

// queryJSON is one query in responses.
type queryJSON struct {
	ID            string          `json:"id"`
	Engine        string          `json:"engine"`
	Window        int             `json:"window"`
	Theta         float64         `json:"theta,omitempty"`
	Filters       json.RawMessage `json:"filters,omitempty"`
	Group         string          `json:"group"`
	SharedWith    int             `json:"shared_with"`
	DocsMatched   int64           `json:"docs_matched"`
	Results       int64           `json:"results"`
	WindowDocs    int             `json:"current_window_docs"`
	Windows       int             `json:"windows"`
	BufferDepth   int             `json:"buffer_depth"`
	BufferDropped int64           `json:"buffer_dropped"`
	LastSeq       uint64          `json:"last_seq"`
}

// handleCreateQuery registers a standing query.
func (s *Server) handleCreateQuery(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.set.maxBody)
	dec := json.NewDecoder(body)
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var req querySpecJSON
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad query spec: %v", err), http.StatusBadRequest)
		return
	}
	spec := join.QuerySpec{Engine: req.Engine, WindowDocs: req.Window, Theta: req.Theta}
	// Canonicalise filter values exactly as document parsing would, so
	// a filter spelled 2 matches an attribute parsed from 2.0.
	for attr, v := range req.Filters {
		enc, err := document.EncodeJSONValue(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("filter %q: %v", attr, err), http.StatusBadRequest)
			return
		}
		spec.Filters = append(spec.Filters, document.Pair{Attr: attr, Val: enc})
	}
	if err := spec.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	id := req.ID
	if id == "" {
		s.mu.Lock()
		s.nextID++
		id = "q" + strconv.Itoa(s.nextID)
		s.mu.Unlock()
	} else if id == DefaultQueryID {
		http.Error(w, fmt.Sprintf("query id %q is reserved", DefaultQueryID), http.StatusConflict)
		return
	}
	if err := s.registerQuery(id, spec); err != nil {
		switch {
		case errors.Is(err, core.ErrTooManyQueries):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case isDuplicate(err):
			http.Error(w, err.Error(), http.StatusConflict)
		default:
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	st, _ := s.qs.Status(id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, s.queryJSON(st))
}

// isDuplicate recognises the query set's duplicate-id error without a
// sentinel (the id is part of the message).
func isDuplicate(err error) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte("already registered"))
}

func (s *Server) handleListQueries(w http.ResponseWriter, _ *http.Request) {
	all := s.qs.Queries()
	out := make([]queryJSON, 0, len(all))
	for _, st := range all {
		out = append(out, s.queryJSON(st))
	}
	writeJSON(w, map[string]any{"queries": out})
}

func (s *Server) handleGetQuery(w http.ResponseWriter, r *http.Request) {
	st, ok := s.qs.Status(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, s.queryJSON(st))
}

func (s *Server) handleDeleteQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == DefaultQueryID {
		http.Error(w, "the default query cannot be deleted", http.StatusForbidden)
		return
	}
	if !s.removeQuery(id) {
		http.NotFound(w, r)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleQueryTumble closes the window of the group hosting the query.
// For a shared group every co-resident query observes the eviction —
// which is why only manual (window 0) queries, which are never shared,
// normally use this.
func (s *Server) handleQueryTumble(w http.ResponseWriter, r *http.Request) {
	docs, pairs, err := s.tumble(r.PathValue("id"))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	s.syncWindows()
	writeJSON(w, map[string]any{"documents": docs, "pairs": pairs})
}

// handleQueryResults long-polls the query's result buffer:
//
//	after  return only results with seq > after (default 0)
//	max    at most this many results (default 100)
//	wait   seconds to block when nothing is buffered (default 0)
func (s *Server) handleQueryResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	buf := s.buffers[id]
	s.mu.Unlock()
	if buf == nil {
		http.NotFound(w, r)
		return
	}
	after, err := parseUint(r.URL.Query().Get("after"), 0)
	if err != nil {
		http.Error(w, "bad after cursor", http.StatusBadRequest)
		return
	}
	max, err := parseInt(r.URL.Query().Get("max"), 100)
	if err != nil || max <= 0 {
		http.Error(w, "bad max", http.StatusBadRequest)
		return
	}
	waitSec, err := parseInt(r.URL.Query().Get("wait"), 0)
	if err != nil || waitSec < 0 {
		http.Error(w, "bad wait", http.StatusBadRequest)
		return
	}
	const maxWait = 60
	if waitSec > maxWait {
		waitSec = maxWait
	}
	var deadline <-chan time.Time
	if waitSec > 0 {
		timer := time.NewTimer(time.Duration(waitSec) * time.Second)
		defer timer.Stop()
		deadline = timer.C
	}
	for {
		items, wake, closed := buf.after(after, max)
		if len(items) > 0 || closed || waitSec == 0 {
			_, dropped, _ := buf.stats()
			if items == nil {
				items = []bufferedResult{}
			}
			writeJSON(w, map[string]any{"results": items, "dropped": dropped})
			return
		}
		select {
		case <-wake:
		case <-deadline:
			writeJSON(w, map[string]any{"results": []bufferedResult{}, "dropped": int64(0)})
			return
		case <-s.done:
			writeJSON(w, map[string]any{"results": []bufferedResult{}, "dropped": int64(0)})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleQueryStream streams the query's results as server-sent events.
// Each event carries the result seq as its SSE id, so a reconnecting
// client resumes with Last-Event-ID (or ?after=). A deleted query or a
// shutting-down server ends the stream with an "end" event after the
// final drain.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	buf := s.buffers[id]
	s.mu.Unlock()
	if buf == nil {
		http.NotFound(w, r)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	cursor := r.URL.Query().Get("after")
	if cursor == "" {
		cursor = r.Header.Get("Last-Event-ID")
	}
	after, err := parseUint(cursor, 0)
	if err != nil {
		http.Error(w, "bad after cursor", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		items, wake, closed := buf.after(after, 0)
		for _, it := range items {
			data, err := json.Marshal(it)
			if err != nil {
				continue // unreachable: bufferedResult always marshals
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", it.Seq, data)
			after = it.Seq
		}
		if len(items) > 0 {
			flusher.Flush()
		}
		if closed {
			fmt.Fprint(w, "event: end\ndata: {}\n\n")
			flusher.Flush()
			return
		}
		select {
		case <-wake:
		case <-s.done:
			// Final drain happens on the next loop pass: Close() closed
			// the buffers, so the closed branch above fires after it.
		case <-r.Context().Done():
			return
		}
	}
}

// queryJSON renders one query status plus its buffer state.
func (s *Server) queryJSON(st join.QueryStatus) queryJSON {
	out := queryJSON{
		ID:          st.ID,
		Engine:      st.Spec.Engine,
		Window:      st.Spec.WindowDocs,
		Theta:       st.Spec.Theta,
		Group:       st.Group,
		SharedWith:  st.SharedWith,
		DocsMatched: st.DocsMatched,
		Results:     st.Results,
		WindowDocs:  st.WindowDocs,
		Windows:     st.Windows,
	}
	if len(st.Spec.Filters) > 0 {
		out.Filters = filtersJSON(st.Spec.Filters)
	}
	s.mu.Lock()
	buf := s.buffers[st.ID]
	s.mu.Unlock()
	if buf != nil {
		out.BufferDepth, out.BufferDropped, out.LastSeq = buf.stats()
	}
	return out
}

// filtersJSON renders canonical filter pairs back as a JSON object.
func filtersJSON(filters []document.Pair) json.RawMessage {
	sorted := append([]document.Pair(nil), filters...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Attr < sorted[j].Attr })
	var b bytes.Buffer
	b.WriteByte('{')
	for i, f := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		key, err := json.Marshal(f.Attr)
		if err != nil {
			continue // unreachable: strings always marshal
		}
		b.Write(key)
		b.WriteByte(':')
		b.WriteString(document.ValueJSON(f.Val))
	}
	b.WriteByte('}')
	return json.RawMessage(b.Bytes())
}

func parseUint(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

func parseInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
