package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// TestConcurrentQueryLifecycle exercises the multi-tenant registry
// under concurrency (run with -race): goroutines register and tear down
// queries while documents stream in. Two long-lived queries with
// identical window configs must share one tree, observe identical
// result multisets and lose nothing to the churn; deleted queries must
// never serve results after their DELETE returns (no ghosts).
func TestConcurrentQueryLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts := newTestServer(t, WithTelemetry(reg))
	createQuery(t, ts.URL, `{"id":"stable-a","window":1000}`)
	createQuery(t, ts.URL, `{"id":"stable-b","window":1000}`)
	if g := reg.Snapshot().Gauge("queryset_shared_window_groups"); g != 1 {
		t.Fatalf("shared groups gauge = %g, want 1 (stable-a/b must share)", g)
	}

	const (
		churners     = 4
		churnRounds  = 25
		ingesters    = 4
		docsPerInges = 30
	)
	var wg sync.WaitGroup
	var ghosts atomic.Int64

	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < churnRounds; i++ {
				id := fmt.Sprintf("churn-%d-%d", g, i)
				spec := fmt.Sprintf(`{"id":%q,"window":1000}`, id)
				resp, err := http.Post(ts.URL+"/queries", "application/json", strings.NewReader(spec))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					t.Errorf("churn create = %d", resp.StatusCode)
					return
				}
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/"+id, nil)
				dresp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				dresp.Body.Close()
				// After DELETE returns, the query must be gone: its
				// results endpoint answering anything but 404 would be a
				// ghost.
				gresp, err := http.Get(ts.URL + "/queries/" + id + "/results")
				if err != nil {
					t.Error(err)
					return
				}
				gresp.Body.Close()
				if gresp.StatusCode != http.StatusNotFound {
					ghosts.Add(1)
				}
			}
		}(g)
	}
	// Ingesters stream documents concurrently; disjoint key spaces per
	// ingester keep the expected result count exact: each ingester's
	// docs all share one attribute pair, so its n docs contribute
	// C(n,2) pairs and never join another ingester's.
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < docsPerInges; i++ {
				doc := fmt.Sprintf(`{"stream%d":1}`, g)
				resp, err := http.Post(ts.URL+"/documents", "application/json", strings.NewReader(doc))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()

	if n := ghosts.Load(); n != 0 {
		t.Errorf("%d ghost responses from deleted queries", n)
	}
	// C(30,2) per ingester stream.
	want := ingesters * (docsPerInges * (docsPerInges - 1) / 2)
	counts := map[string][][2]uint64{}
	for _, id := range []string{"stable-a", "stable-b"} {
		after := uint64(0)
		for {
			rr := getResults(t, ts.URL, id, fmt.Sprintf("?after=%d&max=1000", after))
			if rr.Dropped != 0 {
				t.Fatalf("%s dropped %d results; raise the buffer for this test", id, rr.Dropped)
			}
			if len(rr.Results) == 0 {
				break
			}
			for _, r := range rr.Results {
				counts[id] = append(counts[id], pairKey(r.Left, r.Right))
			}
			after = rr.Results[len(rr.Results)-1].Seq
		}
		if len(counts[id]) != want {
			t.Errorf("%s got %d results, want %d (lost results)", id, len(counts[id]), want)
		}
	}
	if !samePairs(counts["stable-a"], counts["stable-b"]) {
		t.Error("co-resident stable queries diverge")
	}
	// The churn left no residue: the shared group plus default remain.
	var stats struct {
		Queries      int `json:"queries"`
		WindowGroups int `json:"window_groups"`
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Queries != 3 || stats.WindowGroups != 2 {
		t.Errorf("post-churn stats = %+v, want 3 queries / 2 groups", stats)
	}
}
