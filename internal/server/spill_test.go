package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/document"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// spillDocs builds n joinable JSON documents plus the byte total their
// parsed forms account for, so tests can calibrate a memory budget
// against the stream they are about to send.
func spillDocs(t *testing.T, n int) (lines []string, totalBytes int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		// g<i%5> is shared by a fifth of the stream (joinable, never
		// ubiquitous); the payload attribute is unique per document so
		// it adds bytes without adding join pairs.
		js := fmt.Sprintf(`{"g%d":"shared","pay%d":"%s"}`, i%5, i, strings.Repeat("x", 80))
		d, err := document.Parse(uint64(i+1), []byte(js))
		if err != nil {
			t.Fatal(err)
		}
		totalBytes += d.MemBytes()
		lines = append(lines, js)
	}
	return lines, totalBytes
}

// runSpillStream posts each line to /documents, closes the window with
// /tumble, and returns the default query's cumulative result count —
// the only tally that also covers results a spilled group replays on
// reload (those dispatch to result buffers, not the ingest response).
// It tolerates 429 by retrying only when allowShed is set; otherwise
// 429 fails the test.
func runSpillStream(t *testing.T, base string, lines []string, allowShed bool) int {
	t.Helper()
	for _, line := range lines {
		for attempt := 0; ; attempt++ {
			resp, body := post(t, base+"/documents", line)
			if resp.StatusCode == http.StatusOK {
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests && allowShed && attempt < 5 {
				if resp.Header.Get("Retry-After") == "" {
					t.Fatal("429 without Retry-After header")
				}
				continue // the server sheds until pressure subsides on its own
			}
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	resp, body := post(t, base+"/tumble", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tumble status %d: %s", resp.StatusCode, body)
	}
	r2, err := http.Get(base + "/queries/" + DefaultQueryID)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var qst struct {
		Results int `json:"results"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&qst); err != nil {
		t.Fatal(err)
	}
	return qst.Results
}

// TestServerShedsWith429 drives the ladder to rung 4: a one-byte
// budget with no spill store leaves shedding as the only relief, and
// /documents answers 429 with a Retry-After hint.
func TestServerShedsWith429(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts := newTestServer(t, WithTelemetry(reg), WithMemoryBudget(1))
	lines, _ := spillDocs(t, 10)
	var shed bool
	for _, line := range lines {
		resp, _ := post(t, ts.URL+"/documents", line)
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After header")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !shed {
		t.Fatal("server never answered 429 despite a 1-byte budget")
	}
	if reg.Snapshot().Counter("state_shed_total") == 0 {
		t.Error("state_shed_total stayed zero")
	}
	// The server remains healthy while shedding: rung 4 is load
	// shedding, not an outage.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after shedding: %v / %v", resp, err)
	}
	resp.Body.Close()
}

// TestServerSpillParity runs the same stream through a governed server
// (budget = half the stream's accounted bytes, filesystem spill store)
// and an ungoverned twin: every result the ungoverned server delivers
// must arrive from the governed one too — spilling delays results, it
// never loses them.
func TestServerSpillParity(t *testing.T) {
	lines, totalBytes := spillDocs(t, 40)

	ref := newTestServer(t)
	want := runSpillStream(t, ref.URL, lines, false)
	if want == 0 {
		t.Fatal("reference produced no results; test vacuous")
	}

	reg := telemetry.NewRegistry()
	ts := newTestServer(t,
		WithTelemetry(reg),
		WithMemoryBudget(totalBytes/2),
		WithSpillDir(t.TempDir()),
	)
	got := runSpillStream(t, ts.URL, lines, false)
	if got != want {
		t.Errorf("governed server delivered %d results, want %d", got, want)
	}
	snap := reg.Snapshot()
	if snap.Counter("state_spill_panes_total") == 0 {
		t.Error("no window groups spilled despite the tight budget")
	}
	if snap.Counter("state_spill_reloads_total") == 0 {
		t.Error("no spilled groups reloaded")
	}
	if snap.Counter("state_shed_total") != 0 {
		t.Errorf("budget calibrated to avoid shedding, yet shed %d ingests",
			int(snap.Counter("state_shed_total")))
	}
}

// TestServerSpillFaultsDegrade points the governed server at a spill
// store that fails writes with ENOSPC and corrupts one read: the
// ladder degrades (failed spills keep state resident, escalating to
// forced tumbles) but the server never crashes, never 5xxes, and never
// delivers results the ungoverned reference would not.
func TestServerSpillFaultsDegrade(t *testing.T) {
	lines, totalBytes := spillDocs(t, 40)

	ref := newTestServer(t)
	want := runSpillStream(t, ref.URL, lines, false)

	faulty := state.NewFaultStore(state.NewMemStore(), []state.FaultEvent{
		{Kind: state.FaultENOSPC, After: 0, Count: 2},
		{Kind: state.FaultReadCorrupt, After: 1, Count: 1},
		{Kind: state.FaultTornWrite, After: 4, Count: 1},
	})
	reg := telemetry.NewRegistry()
	ts := newTestServer(t,
		WithTelemetry(reg),
		WithMemoryBudget(totalBytes/2),
		WithSpillStore(faulty),
	)
	got := runSpillStream(t, ts.URL, lines, true)
	if got > want {
		t.Errorf("faulty spill path delivered %d results, more than the %d possible", got, want)
	}
	snap := reg.Snapshot()
	if faulty.Injected() == 0 {
		t.Fatal("no faults injected; chaos test vacuous")
	}
	if snap.Counter("state_spill_failures_total") == 0 {
		t.Error("state_spill_failures_total stayed zero despite injected faults")
	}
	// Functional after the chaos: a fresh joinable pair still joins.
	resp, body := post(t, ts.URL+"/documents", `{"User":"z","A":1}`)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-chaos ingest status %d: %s", resp.StatusCode, body)
	}
}
