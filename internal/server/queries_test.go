package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

type resultsResponse struct {
	Results []struct {
		Seq    uint64          `json:"seq"`
		Left   uint64          `json:"left"`
		Right  uint64          `json:"right"`
		Merged json.RawMessage `json:"merged"`
	} `json:"results"`
	Dropped int64 `json:"dropped"`
}

func createQuery(t *testing.T, base, spec string) queryJSON {
	t.Helper()
	resp, body := post(t, base+"/queries", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create query: status %d: %s", resp.StatusCode, body)
	}
	var q queryJSON
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	return q
}

func getResults(t *testing.T, base, id, params string) resultsResponse {
	t.Helper()
	resp, err := http.Get(base + "/queries/" + id + "/results" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("results status %d", resp.StatusCode)
	}
	var rr resultsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

func TestQueryLifecycle(t *testing.T) {
	ts := newTestServer(t)
	q := createQuery(t, ts.URL, `{"id":"mine","window":100}`)
	if q.ID != "mine" || q.Engine != "FPJ" || q.Window != 100 {
		t.Errorf("created = %+v", q)
	}

	// Listing includes the default query and the new one.
	r2, err := http.Get(ts.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, r2)
	r2.Body.Close()
	var list struct {
		Queries []queryJSON `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Queries) != 2 {
		t.Fatalf("listed %d queries, want 2: %s", len(list.Queries), body)
	}
	if list.Queries[0].ID != "default" || list.Queries[1].ID != "mine" {
		t.Errorf("list order: %q, %q", list.Queries[0].ID, list.Queries[1].ID)
	}

	// GET by id.
	r3, err := http.Get(ts.URL + "/queries/mine")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != 200 {
		t.Errorf("get query = %d", r3.StatusCode)
	}

	// Duplicate id conflicts; reserved id conflicts; bad specs 400.
	if resp, _ := post(t, ts.URL+"/queries", `{"id":"mine"}`); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate = %d, want 409", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/queries", `{"id":"default"}`); resp.StatusCode != http.StatusConflict {
		t.Errorf("reserved = %d, want 409", resp.StatusCode)
	}
	for _, bad := range []string{
		`{"engine":"nope"}`, `{"theta":2}`, `{"window":-1}`, `{"nonsense":1}`,
		`{"filters":{"a":{"nested":1}}}`,
	} {
		if resp, _ := post(t, ts.URL+"/queries", bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s = %d, want 400", bad, resp.StatusCode)
		}
	}

	// DELETE removes it; default is protected.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/mine", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("delete = %d, want 204", dresp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/queries/mine", nil)
	dresp, _ = http.DefaultClient.Do(req)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("re-delete = %d, want 404", dresp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/queries/default", nil)
	dresp, _ = http.DefaultClient.Do(req)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusForbidden {
		t.Errorf("delete default = %d, want 403", dresp.StatusCode)
	}

	// Server-assigned ids when omitted.
	q2 := createQuery(t, ts.URL, `{"window":10}`)
	if !strings.HasPrefix(q2.ID, "q") {
		t.Errorf("assigned id = %q", q2.ID)
	}
}

func TestQueryAdmissionCap(t *testing.T) {
	ts := newTestServer(t, WithMaxQueries(2))
	createQuery(t, ts.URL, `{"window":10}`)
	createQuery(t, ts.URL, `{"window":20}`)
	resp, _ := post(t, ts.URL+"/queries", `{"window":30}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over cap = %d, want 429", resp.StatusCode)
	}
}

// TestSharedTreeAcceptance is the PR's acceptance criterion: two
// concurrent queries with identical window configs share one FP-tree
// (asserted via the shared-tree gauge) and their result multisets equal
// an isolated single-query run's; a third query with a different window
// keeps private state and stays correct.
func TestSharedTreeAcceptance(t *testing.T) {
	docs := make([]string, 0, 60)
	for i := 0; i < 60; i++ {
		switch i % 3 {
		case 0:
			docs = append(docs, fmt.Sprintf(`{"user":"u%d","a":1}`, i%5))
		case 1:
			docs = append(docs, fmt.Sprintf(`{"user":"u%d","b":2}`, i%5))
		default:
			docs = append(docs, fmt.Sprintf(`{"shard":%d,"b":2}`, (i/3)%3))
		}
	}
	batch := strings.Join(docs, "\n")

	reg := telemetry.NewRegistry()
	ts := newTestServer(t, WithTelemetry(reg))
	createQuery(t, ts.URL, `{"id":"one","window":20}`)
	createQuery(t, ts.URL, `{"id":"two","window":20}`)
	createQuery(t, ts.URL, `{"id":"other","window":30}`)

	// The gauge proves one/two share a tree and other does not.
	snap := reg.Snapshot()
	if g := snap.Gauge("queryset_shared_window_groups"); g != 1 {
		t.Fatalf("shared groups gauge = %g, want 1", g)
	}
	// default (manual) + w20 (shared) + w30 = 3 groups.
	if g := snap.Gauge("queryset_window_groups"); g != 3 {
		t.Fatalf("window groups gauge = %g, want 3", g)
	}

	post(t, ts.URL+"/documents", batch)
	shared := map[string][][2]uint64{}
	for _, id := range []string{"one", "two", "other"} {
		rr := getResults(t, ts.URL, id, "?max=10000")
		for _, r := range rr.Results {
			shared[id] = append(shared[id], pairKey(r.Left, r.Right))
		}
	}
	if len(shared["one"]) == 0 {
		t.Fatal("acceptance test vacuous: no results")
	}

	// Isolated single-query runs, one server each.
	for _, q := range []struct{ id, spec string }{
		{"one", `{"id":"solo","window":20}`},
		{"other", `{"id":"solo","window":30}`},
	} {
		iso := newTestServer(t)
		createQuery(t, iso.URL, q.spec)
		post(t, iso.URL+"/documents", batch)
		rr := getResults(t, iso.URL, "solo", "?max=10000")
		var want [][2]uint64
		for _, r := range rr.Results {
			want = append(want, pairKey(r.Left, r.Right))
		}
		if !samePairs(shared[q.id], want) {
			t.Errorf("query %s: shared run %d pairs, isolated run %d pairs", q.id, len(shared[q.id]), len(want))
		}
	}
	if !samePairs(shared["one"], shared["two"]) {
		t.Error("co-resident queries one and two diverge")
	}
}

func pairKey(l, r uint64) [2]uint64 {
	if l > r {
		l, r = r, l
	}
	return [2]uint64{l, r}
}

func samePairs(a, b [][2]uint64) bool {
	a, b = append([][2]uint64(nil), a...), append([][2]uint64(nil), b...)
	less := func(s [][2]uint64) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i][0] != s[j][0] {
				return s[i][0] < s[j][0]
			}
			return s[i][1] < s[j][1]
		}
	}
	sort.Slice(a, less(a))
	sort.Slice(b, less(b))
	return reflect.DeepEqual(a, b)
}

func TestQueryFiltersAndTheta(t *testing.T) {
	ts := newTestServer(t)
	createQuery(t, ts.URL, `{"id":"all","window":100}`)
	createQuery(t, ts.URL, `{"id":"warn","window":100,"filters":{"sev":"W"}}`)
	createQuery(t, ts.URL, `{"id":"tight","window":100,"theta":1}`)
	post(t, ts.URL+"/documents",
		`{"k":1,"sev":"W"}`+"\n"+`{"k":1,"x":2}`+"\n"+`{"k":1,"sev":"E"}`)
	all := getResults(t, ts.URL, "all", "")
	warn := getResults(t, ts.URL, "warn", "")
	tight := getResults(t, ts.URL, "tight", "")
	// d1-d2 and d2-d3 join (d1-d3 conflicts on sev): 2 results.
	if len(all.Results) != 2 {
		t.Fatalf("all = %d results, want 2", len(all.Results))
	}
	// Only d1-d2 carries sev:W in the merged document.
	if len(warn.Results) != 1 {
		t.Errorf("warn = %d results, want 1", len(warn.Results))
	}
	// No pair shares every attribute of the smaller input.
	if len(tight.Results) != 0 {
		t.Errorf("tight = %d results, want 0", len(tight.Results))
	}
	// Numeric filters canonicalise: 2.0 matches a document's 2.
	createQuery(t, ts.URL, `{"id":"num","window":100,"filters":{"x":2.0}}`)
	post(t, ts.URL+"/documents", `{"k":1,"x":2,"fresh":1}`)
	num := getResults(t, ts.URL, "num", "")
	if len(num.Results) == 0 {
		t.Error("numeric filter 2.0 failed to match x:2 results")
	}
}

func TestLongPollResults(t *testing.T) {
	ts := newTestServer(t)
	createQuery(t, ts.URL, `{"id":"lp","window":100}`)
	post(t, ts.URL+"/documents", `{"a":1}`+"\n"+`{"a":1,"b":2}`+"\n"+`{"a":1,"c":3}`)

	rr := getResults(t, ts.URL, "lp", "?max=2")
	if len(rr.Results) != 2 || rr.Results[0].Seq != 1 || rr.Results[1].Seq != 2 {
		t.Fatalf("page 1 = %+v", rr.Results)
	}
	rr = getResults(t, ts.URL, "lp", fmt.Sprintf("?after=%d", rr.Results[1].Seq))
	if len(rr.Results) != 1 || rr.Results[0].Seq != 3 {
		t.Fatalf("page 2 = %+v", rr.Results)
	}

	// A waiting poll is woken by a later ingest.
	done := make(chan resultsResponse, 1)
	go func() {
		done <- getResults(t, ts.URL, "lp", "?after=3&wait=30")
	}()
	time.Sleep(50 * time.Millisecond)
	post(t, ts.URL+"/documents", `{"a":1,"d":4}`)
	select {
	case rr = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke")
	}
	if len(rr.Results) != 3 {
		t.Errorf("woken poll = %d results, want 3 (new doc joins all three)", len(rr.Results))
	}

	// Unknown query 404s; bad cursor 400s.
	resp, err := http.Get(ts.URL + "/queries/ghost/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ghost results = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/queries/lp/results?after=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cursor = %d", resp.StatusCode)
	}
}

func TestResultBufferOverflow(t *testing.T) {
	ts := newTestServer(t, WithResultBuffer(4))
	createQuery(t, ts.URL, `{"id":"small","window":100}`)
	// 5 docs sharing k:1 produce C(5,2) = 10 results; buffer keeps 4.
	docs := make([]string, 5)
	for i := range docs {
		docs[i] = `{"k":1}`
	}
	post(t, ts.URL+"/documents", strings.Join(docs, "\n"))
	rr := getResults(t, ts.URL, "small", "?max=100")
	if len(rr.Results) != 4 {
		t.Errorf("buffered = %d, want 4", len(rr.Results))
	}
	if rr.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", rr.Dropped)
	}
	// Seqs are the last four of 1..10 — the client can see the gap.
	if rr.Results[0].Seq != 7 || rr.Results[3].Seq != 10 {
		t.Errorf("seq range = %d..%d, want 7..10", rr.Results[0].Seq, rr.Results[3].Seq)
	}
}

func TestSSEStream(t *testing.T) {
	ts := newTestServer(t)
	createQuery(t, ts.URL, `{"id":"sse","window":100}`)
	post(t, ts.URL+"/documents", `{"a":1}`+"\n"+`{"a":1,"b":2}`)

	resp, err := http.Get(ts.URL + "/queries/sse/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	reader := bufio.NewReader(resp.Body)
	events := make(chan string, 16)
	go func() {
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				close(events)
				return
			}
			events <- strings.TrimRight(line, "\n")
		}
	}()
	wantLine := func(want string) {
		t.Helper()
		for {
			select {
			case line, ok := <-events:
				if !ok {
					t.Fatalf("stream ended waiting for %q", want)
				}
				if line == "" {
					continue
				}
				if line != want && !strings.HasPrefix(line, "data: ") {
					t.Fatalf("line = %q, want %q", line, want)
				}
				if line == want {
					return
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("timeout waiting for %q", want)
			}
		}
	}
	// The buffered result arrives first.
	wantLine("id: 1")
	// A new ingest streams live.
	post(t, ts.URL+"/documents", `{"a":1,"c":3}`)
	wantLine("id: 2")
	wantLine("id: 3")
	// Deleting the query ends the stream.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/sse", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	wantLine("event: end")
}

func TestMaxWindowDocsGuard(t *testing.T) {
	// A manual-window server with the guard set force-tumbles instead
	// of growing without bound.
	ts := newTestServer(t, WithMaxWindowDocs(3))
	for i := 0; i < 7; i++ {
		post(t, ts.URL+"/documents", `{"k":1}`)
	}
	st := getStats(t, ts.URL)
	if st.Windows != 2 {
		t.Errorf("forced windows = %d, want 2", st.Windows)
	}
	if st.CurrentWindowDocs != 1 {
		t.Errorf("open window fill = %d, want 1", st.CurrentWindowDocs)
	}
	// Results reflect the eviction: doc 7 only joins the window-mate
	// survivors, not all six predecessors.
	_, body := post(t, ts.URL+"/documents", `{"k":1}`)
	var dr docsResponse
	json.Unmarshal(body, &dr)
	if len(dr.Results) != 1 {
		t.Errorf("doc 8 joined %d docs, want 1 (window was force-tumbled)", len(dr.Results))
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	createQuery(t, ts.URL, `{"id":"q","window":100}`)
	post(t, ts.URL+"/documents", `{"a":1}`+"\n"+`{"a":1,"b":2}`)

	// A long-poll waiting past the buffered results returns promptly on
	// Close instead of hanging until its wait expires.
	done := make(chan resultsResponse, 1)
	go func() {
		done <- getResults(t, ts.URL, "q", "?after=1&wait=60")
	}()
	time.Sleep(50 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll hung through Close")
	}
	// Buffered results stay drainable after Close; new ingests 503.
	rr := getResults(t, ts.URL, "q", "")
	if len(rr.Results) != 1 {
		t.Errorf("post-close drain = %d results, want 1", len(rr.Results))
	}
	resp, _ := post(t, ts.URL+"/documents", `{"a":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest after close = %d, want 503", resp.StatusCode)
	}
}
