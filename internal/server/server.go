// Package server exposes the schema-free stream join as an HTTP
// service: clients POST JSON documents and receive the join results the
// document completes; windows tumble on demand or automatically every
// N documents. The service wraps core.Pipeline and serialises access,
// so it is safe for concurrent clients.
//
// Endpoints:
//
//	POST /documents   one JSON object, or NDJSON for a batch
//	POST /tumble      close the current window
//	GET  /stats       processing counters
//	GET  /metrics     Prometheus text exposition (when telemetry is on)
//	GET  /debug/stats JSON telemetry snapshot (when telemetry is on)
//	GET  /healthz     liveness
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/telemetry"
)

// Config parameterises the service.
type Config struct {
	// Engine is the local join engine ("FPJ" default).
	Engine string
	// WindowSize > 0 tumbles the window automatically after that many
	// documents; 0 means windows tumble only via POST /tumble.
	WindowSize int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Telemetry, when non-nil, receives the service counters and the
	// pipeline's join instruments, and Handler additionally mounts the
	// registry's /metrics and /debug/stats scrape routes.
	Telemetry *telemetry.Registry
}

// Server is the HTTP handler set.
type Server struct {
	cfg Config

	mu       sync.Mutex
	pipeline *core.Pipeline
	inWindow int
	stats    Stats

	// Live instruments mirroring Stats (nil-safe no-ops when telemetry
	// is off).
	tel struct {
		documents   *telemetry.Counter
		pairs       *telemetry.Counter
		windows     *telemetry.Counter
		parseErrors *telemetry.Counter
	}
}

// Stats are the service counters returned by GET /stats.
type Stats struct {
	Documents   int `json:"documents"`
	JoinPairs   int `json:"join_pairs"`
	Windows     int `json:"windows"`
	ParseErrors int `json:"parse_errors"`
	// CurrentWindowDocs is the fill level of the open window.
	CurrentWindowDocs int `json:"current_window_docs"`
}

// resultJSON is one join result in responses.
type resultJSON struct {
	Left   uint64          `json:"left"`
	Right  uint64          `json:"right"`
	Merged json.RawMessage `json:"merged"`
}

// New builds the service.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	p, err := core.NewPipeline(cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, pipeline: p}
	if reg := cfg.Telemetry; reg != nil {
		p.Instrument(reg)
		s.tel.documents = reg.Counter("server_documents_total")
		s.tel.pairs = reg.Counter("server_join_pairs_total")
		s.tel.windows = reg.Counter("server_windows_total")
		s.tel.parseErrors = reg.Counter("server_parse_errors_total")
	}
	return s, nil
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /documents", s.handleDocuments)
	mux.HandleFunc("POST /tumble", s.handleTumble)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if reg := s.cfg.Telemetry; reg != nil {
		scrape := reg.Handler()
		mux.Handle("GET /metrics", scrape)
		mux.Handle("GET /debug/stats", scrape)
	}
	return mux
}

// handleDocuments ingests one document or an NDJSON batch and answers
// with the join results the ingested documents produced.
func (s *Server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	scanner := bufio.NewScanner(body)
	scanner.Buffer(make([]byte, 0, 64*1024), int(s.cfg.MaxBodyBytes))

	var results []resultJSON
	ingested := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for scanner.Scan() {
		line := bytes.TrimSpace(scanner.Bytes())
		if len(line) == 0 {
			continue
		}
		rs, err := s.pipeline.ProcessJSON(line)
		if err != nil {
			s.stats.ParseErrors++
			s.tel.parseErrors.Inc()
			http.Error(w, fmt.Sprintf("document %d: %v", ingested+1, err), http.StatusBadRequest)
			return
		}
		ingested++
		s.stats.Documents++
		s.tel.documents.Inc()
		s.inWindow++
		results = append(results, encodeResults(rs)...)
		s.stats.JoinPairs += len(rs)
		s.tel.pairs.Add(int64(len(rs)))
		if s.cfg.WindowSize > 0 && s.inWindow >= s.cfg.WindowSize {
			s.tumbleLocked()
		}
	}
	if err := scanner.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{
		"ingested": ingested,
		"results":  emptyIfNil(results),
	})
}

func (s *Server) handleTumble(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	docs, pairs := s.tumbleLocked()
	s.mu.Unlock()
	writeJSON(w, map[string]any{"documents": docs, "pairs": pairs})
}

// tumbleLocked closes the window; callers hold s.mu.
func (s *Server) tumbleLocked() (docs, pairs int) {
	docs, pairs = s.pipeline.Tumble()
	s.stats.Windows++
	s.tel.windows.Inc()
	s.inWindow = 0
	return docs, pairs
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := s.stats
	st.CurrentWindowDocs = s.inWindow
	s.mu.Unlock()
	writeJSON(w, st)
}

func encodeResults(rs []join.Result) []resultJSON {
	out := make([]resultJSON, 0, len(rs))
	for _, r := range rs {
		merged, err := r.Merged.MarshalJSON()
		if err != nil {
			continue // unreachable for valid documents
		}
		out = append(out, resultJSON{Left: r.Left, Right: r.Right, Merged: merged})
	}
	return out
}

func emptyIfNil(rs []resultJSON) []resultJSON {
	if rs == nil {
		return []resultJSON{}
	}
	return rs
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
