// Package server exposes the schema-free stream join as a multi-tenant
// HTTP service. Clients register standing queries — each an (engine,
// window, θ, filters) specification — and stream JSON documents in;
// every ingested document is classified once and probed against window
// state that is shared across all queries whose (engine, window)
// configurations align, with per-query state only where they diverge.
// Results demux to each query through its own predicates and are
// buffered for retrieval by long-poll or server-sent events.
//
// Endpoints:
//
//	POST   /documents             one JSON object, or NDJSON for a batch
//	POST   /tumble                close the default query's window
//	GET    /stats                 legacy processing counters
//	POST   /queries               register a standing query
//	GET    /queries               list standing queries
//	GET    /queries/{id}          one query's status
//	DELETE /queries/{id}          remove a query
//	POST   /queries/{id}/tumble   close the query's window (shared!)
//	GET    /queries/{id}/results  long-poll buffered results
//	GET    /queries/{id}/stream   server-sent events result stream
//	GET    /metrics               Prometheus text (when telemetry is on)
//	GET    /debug/stats           JSON telemetry snapshot (ditto)
//	GET    /healthz               liveness
//
// A built-in query with id "default" is always registered from the
// construction options, so the pre-multi-tenant endpoints (POST
// /documents result echo, /tumble, /stats) keep their old semantics as
// views onto that query.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// DefaultQueryID is the always-registered query that the legacy
// single-tenant endpoints operate on. It cannot be deleted.
const DefaultQueryID = "default"

// Server is the HTTP handler set.
type Server struct {
	set settings
	qs  *core.QuerySet

	// mu guards the result-buffer registry, the legacy stats and the
	// id generator. Lock ordering: the query set's internal lock is
	// always taken first (its deliver callbacks never run under mu),
	// so no method may call into qs while holding mu.
	mu          sync.Mutex
	buffers     map[string]*resultBuffer
	stats       Stats
	lastWindows int // default query's tumble count at last sync
	nextID      int
	closed      bool

	done chan struct{} // closed by Close; unblocks long-poll and SSE

	tel struct {
		documents   *telemetry.Counter
		pairs       *telemetry.Counter
		windows     *telemetry.Counter
		parseErrors *telemetry.Counter
	}
}

// Stats are the legacy service counters returned by GET /stats; the
// join-related fields are views onto the default query.
type Stats struct {
	Documents   int `json:"documents"`
	JoinPairs   int `json:"join_pairs"`
	Windows     int `json:"windows"`
	ParseErrors int `json:"parse_errors"`
	// CurrentWindowDocs is the fill level of the default query's open
	// window.
	CurrentWindowDocs int `json:"current_window_docs"`
	// Queries is the number of registered standing queries (including
	// the default one); WindowGroups / SharedWindowGroups expose how
	// much state they share.
	Queries            int `json:"queries"`
	WindowGroups       int `json:"window_groups"`
	SharedWindowGroups int `json:"shared_window_groups"`
}

// New builds the service.
func New(opts ...Option) (*Server, error) {
	set := defaultSettings()
	for _, opt := range opts {
		opt(&set)
	}
	s := &Server{
		set:     set,
		buffers: make(map[string]*resultBuffer),
		done:    make(chan struct{}),
	}
	spill := set.spillStore
	if spill == nil && set.spillDir != "" {
		fs, err := state.NewFSStore(set.spillDir)
		if err != nil {
			return nil, fmt.Errorf("server: spill dir: %w", err)
		}
		spill = fs
	}
	// The default query occupies one slot beyond the user-facing cap.
	s.qs = core.NewQuerySet(core.QuerySetConfig{
		MaxQueries:    set.maxQueries + 1,
		MaxWindowDocs: set.maxWindowDocs,
		Telemetry:     set.telemetry,
		MemoryBudget:  set.memoryBudget,
		SpillStore:    spill,
	})
	if reg := set.telemetry; reg != nil {
		s.tel.documents = reg.Counter("server_documents_total")
		s.tel.pairs = reg.Counter("server_join_pairs_total")
		s.tel.windows = reg.Counter("server_windows_total")
		s.tel.parseErrors = reg.Counter("server_parse_errors_total")
	}
	spec := join.QuerySpec{Engine: set.engine, WindowDocs: set.window}
	if err := s.registerQuery(DefaultQueryID, spec); err != nil {
		return nil, err
	}
	return s, nil
}

// Close shuts the service down for graceful drain: spilled window
// groups flush their backlogged results into the query buffers,
// in-flight long-polls and SSE streams return with whatever is
// buffered, new ingests are rejected with 503. Safe to call more than
// once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Drain outside the server lock (dispatch takes it) but before the
	// buffers close, so the delayed results reach their final drain.
	var collected []delivery
	s.qs.DrainSpilled(func(qid string, r join.Result) {
		collected = append(collected, delivery{qid, r})
	})
	if len(collected) > 0 {
		s.dispatch(collected, map[string]int{}, nil)
	}
	s.mu.Lock()
	close(s.done)
	for _, b := range s.buffers {
		b.close()
	}
	s.mu.Unlock()
}

// registerQuery creates the result buffer first and then registers the
// query, so a result delivered the instant registration lands always
// finds its buffer (no lost results); on failure the buffer is removed.
func (s *Server) registerQuery(id string, spec join.QuerySpec) error {
	reg := s.set.telemetry
	buf := newResultBuffer(s.set.resultBuffer,
		reg.Gauge(telemetry.Name("server_query_result_buffer", "query", id)),
		reg.Counter(telemetry.Name("server_query_results_dropped_total", "query", id)))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: shutting down")
	}
	if _, dup := s.buffers[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("join: query %q already registered", id)
	}
	s.buffers[id] = buf
	s.mu.Unlock()

	if err := s.qs.Register(id, spec); err != nil {
		s.mu.Lock()
		delete(s.buffers, id)
		s.mu.Unlock()
		s.dropBufferSeries(id)
		return err
	}
	return nil
}

// removeQuery unregisters the query and retires its buffer. Once the
// query set unregister returns, no new results can be collected for the
// id, so closing the buffer afterwards guarantees no ghost deliveries.
func (s *Server) removeQuery(id string) bool {
	if !s.qs.Unregister(id) {
		return false
	}
	s.mu.Lock()
	buf := s.buffers[id]
	delete(s.buffers, id)
	s.mu.Unlock()
	if buf != nil {
		buf.close()
	}
	s.dropBufferSeries(id)
	return true
}

// dropBufferSeries retires a query's buffer telemetry series.
func (s *Server) dropBufferSeries(id string) {
	s.set.telemetry.Drop(
		telemetry.Name("server_query_result_buffer", "query", id),
		telemetry.Name("server_query_results_dropped_total", "query", id),
	)
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /documents", s.handleDocuments)
	mux.HandleFunc("POST /tumble", s.handleTumble)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /queries", s.handleCreateQuery)
	mux.HandleFunc("GET /queries", s.handleListQueries)
	mux.HandleFunc("GET /queries/{id}", s.handleGetQuery)
	mux.HandleFunc("DELETE /queries/{id}", s.handleDeleteQuery)
	mux.HandleFunc("POST /queries/{id}/tumble", s.handleQueryTumble)
	mux.HandleFunc("GET /queries/{id}/results", s.handleQueryResults)
	mux.HandleFunc("GET /queries/{id}/stream", s.handleQueryStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if reg := s.set.telemetry; reg != nil {
		scrape := reg.Handler()
		mux.Handle("GET /metrics", scrape)
		mux.Handle("GET /debug/stats", scrape)
	}
	return mux
}

// handleDocuments ingests one document or an NDJSON batch. Every
// registered query's window state sees each document; the response
// echoes the default query's results (legacy contract) plus the
// per-query match counts, and all results land in the queries' buffers
// for asynchronous retrieval.
func (s *Server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	s.mu.Unlock()

	body := http.MaxBytesReader(w, r.Body, s.set.maxBody)
	scanner := bufio.NewScanner(body)
	scanner.Buffer(make([]byte, 0, 64*1024), int(s.set.maxBody))

	var defaults []bufferedResult
	counts := map[string]int{}
	ingested := 0
	// collected holds one ingest's deliveries; the deliver callback
	// runs under the query set's lock, so it only appends here and the
	// buffer pushes happen afterwards.
	var collected []delivery
	for scanner.Scan() {
		line := bytes.TrimSpace(scanner.Bytes())
		if len(line) == 0 {
			continue
		}
		collected = collected[:0]
		err := s.qs.IngestJSON(line, func(id string, r join.Result) {
			collected = append(collected, delivery{id, r})
		})
		if errors.Is(err, core.ErrOverloaded) {
			// Rung 4 of the memory governor's ladder: refuse admission.
			// Documents before this line in the batch were ingested;
			// reporting the count lets the client resume at the cut.
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("overloaded after %d documents: %v", ingested, err),
				http.StatusTooManyRequests)
			return
		}
		if err != nil {
			s.mu.Lock()
			s.stats.ParseErrors++
			s.mu.Unlock()
			s.tel.parseErrors.Inc()
			http.Error(w, fmt.Sprintf("document %d: %v", ingested+1, err), http.StatusBadRequest)
			return
		}
		ingested++
		s.tel.documents.Inc()
		defaults = s.dispatch(collected, counts, defaults)
	}
	if err := scanner.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.stats.Documents += ingested
	s.stats.JoinPairs += len(defaults)
	s.mu.Unlock()
	s.tel.pairs.Add(int64(len(defaults)))
	s.syncWindows()
	if defaults == nil {
		defaults = []bufferedResult{}
	}
	writeJSON(w, map[string]any{
		"ingested": ingested,
		"results":  defaults,
		"queries":  counts,
	})
}

// delivery is one (query, result) pair collected during an ingest.
type delivery struct {
	id string
	r  join.Result
}

// dispatch pushes collected deliveries into the query buffers and
// returns the default query's results extended with this round's. A
// query deleted between collection and dispatch simply has no buffer
// any more — its results are discarded, never misdelivered.
func (s *Server) dispatch(collected []delivery, counts map[string]int, defaults []bufferedResult) []bufferedResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range collected {
		merged, err := d.r.Merged.MarshalJSON()
		if err != nil {
			continue // unreachable for valid documents
		}
		counts[d.id]++
		if buf := s.buffers[d.id]; buf != nil {
			buf.push(d.r.Left, d.r.Right, merged)
		}
		if d.id == DefaultQueryID {
			n := uint64(len(defaults)) + 1
			defaults = append(defaults, bufferedResult{Seq: n, Left: d.r.Left, Right: d.r.Right, Merged: merged})
		}
	}
	return defaults
}

// syncWindows folds the default query's tumble count into the legacy
// stats and telemetry (windows can also advance inside ingest via
// auto- or forced tumbles, so the count is read back, not tracked).
func (s *Server) syncWindows() {
	st, ok := s.qs.Status(DefaultQueryID)
	if !ok {
		return
	}
	s.mu.Lock()
	delta := st.Windows - s.lastWindows
	s.lastWindows = st.Windows
	s.stats.Windows = st.Windows
	s.mu.Unlock()
	if delta > 0 {
		s.tel.windows.Add(int64(delta))
	}
}

func (s *Server) handleTumble(w http.ResponseWriter, _ *http.Request) {
	docs, pairs, err := s.tumble(DefaultQueryID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.syncWindows()
	writeJSON(w, map[string]any{"documents": docs, "pairs": pairs})
}

// tumble closes the query's window, dispatching any results a spilled
// group replays on its way back into memory.
func (s *Server) tumble(id string) (docs, pairs int, err error) {
	var collected []delivery
	docs, pairs, err = s.qs.Tumble(id, func(qid string, r join.Result) {
		collected = append(collected, delivery{qid, r})
	})
	if err == nil && len(collected) > 0 {
		s.dispatch(collected, map[string]int{}, nil)
	}
	return docs, pairs, err
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st, _ := s.qs.Status(DefaultQueryID)
	total, shared := s.qs.Groups()
	n := s.qs.Len()
	s.mu.Lock()
	out := s.stats
	s.mu.Unlock()
	out.Windows = st.Windows
	out.CurrentWindowDocs = st.WindowDocs
	out.Queries = n
	out.WindowGroups = total
	out.SharedWindowGroups = shared
	writeJSON(w, out)
}
