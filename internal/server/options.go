package server

import (
	"repro/internal/state"
	"repro/internal/telemetry"
)

// settings is the resolved construction parameter set.
type settings struct {
	engine        string
	window        int
	maxBody       int64
	maxQueries    int
	resultBuffer  int
	maxWindowDocs int
	memoryBudget  int64
	spillStore    state.Store
	spillDir      string
	telemetry     *telemetry.Registry
}

func defaultSettings() settings {
	return settings{
		maxBody:      8 << 20,
		maxQueries:   1024,
		resultBuffer: 4096,
	}
}

// Option configures New, mirroring core.NewRunner's functional options.
type Option func(*settings)

// WithEngine sets the join engine of the built-in default query ("FPJ"
// default, "NLJ", "HBJ"). Standing queries registered over the API pick
// their own engine per query.
func WithEngine(engine string) Option {
	return func(s *settings) { s.engine = engine }
}

// WithWindow sets the default query's tumbling-window size in
// documents; 0 (the default) means its window tumbles only via
// POST /tumble.
func WithWindow(docs int) Option {
	return func(s *settings) { s.window = docs }
}

// WithTelemetry wires a registry: the service counters, the query set's
// shared-state gauges and per-query labelled series land in it, and
// Handler mounts its /metrics and /debug/stats scrape routes.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *settings) { s.telemetry = reg }
}

// WithMaxBodyBytes caps request bodies (default 8 MiB).
func WithMaxBodyBytes(n int64) Option {
	return func(s *settings) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithMaxQueries caps the number of concurrently registered standing
// queries (default 1024); POST /queries answers 429 beyond it. The
// built-in default query does not count against the cap.
func WithMaxQueries(n int) Option {
	return func(s *settings) {
		if n > 0 {
			s.maxQueries = n
		}
	}
}

// WithResultBuffer sets each query's result-buffer capacity (default
// 4096). When a client falls behind, the oldest buffered results are
// dropped and counted.
func WithResultBuffer(n int) Option {
	return func(s *settings) {
		if n > 0 {
			s.resultBuffer = n
		}
	}
}

// WithMaxWindowDocs force-tumbles any window reaching that many
// documents — the guard that keeps a manual window (window 0) that
// nobody tumbles from growing without bound. 0 (default) disables the
// guard.
func WithMaxWindowDocs(n int) Option {
	return func(s *settings) {
		if n > 0 {
			s.maxWindowDocs = n
		}
	}
}

// WithMemoryBudget bounds the accounted bytes of all window state
// (default 0, ungoverned). Over the budget the degradation ladder
// fires: spill to the spill store, compressed spill, forced tumble of
// the largest window group, and finally POST /documents answering 429
// until pressure subsides.
func WithMemoryBudget(n int64) Option {
	return func(s *settings) {
		if n > 0 {
			s.memoryBudget = n
		}
	}
}

// WithSpillStore supplies the state store that receives spilled window
// groups. Without one (and without WithSpillDir), a memory budget
// starts the ladder at forced tumbling.
func WithSpillStore(st state.Store) Option {
	return func(s *settings) { s.spillStore = st }
}

// WithSpillDir is WithSpillStore over a filesystem store rooted at the
// given directory, created on New. Ignored when WithSpillStore is also
// given.
func WithSpillDir(dir string) Option {
	return func(s *settings) { s.spillDir = dir }
}

// Config is the legacy construction parameter set.
//
// Deprecated: use New with functional options (WithEngine, WithWindow,
// WithTelemetry, WithMaxBodyBytes). Config remains as a shim for
// existing callers; Options converts it.
type Config struct {
	// Engine is the local join engine ("FPJ" default).
	Engine string
	// WindowSize > 0 tumbles the window automatically after that many
	// documents; 0 means windows tumble only via POST /tumble.
	WindowSize int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Telemetry, when non-nil, receives the service counters and join
	// instruments, and Handler additionally mounts the registry's
	// /metrics and /debug/stats scrape routes.
	Telemetry *telemetry.Registry
}

// Options converts the legacy Config to the equivalent option list.
func (c Config) Options() []Option {
	return []Option{
		WithEngine(c.Engine),
		WithWindow(c.WindowSize),
		WithMaxBodyBytes(c.MaxBodyBytes),
		WithTelemetry(c.Telemetry),
	}
}

// NewFromConfig builds the service from the legacy Config.
//
// Deprecated: use New with functional options.
func NewFromConfig(c Config) (*Server, error) {
	return New(c.Options()...)
}
