package server

import (
	"encoding/json"
	"sync"

	"repro/internal/telemetry"
)

// bufferedResult is one join result held for asynchronous delivery.
// Seq numbers are per query, start at 1 and never repeat, so a client
// can resume a long-poll or SSE stream from the last sequence it saw
// and detect gaps introduced by overflow drops.
type bufferedResult struct {
	Seq    uint64          `json:"seq"`
	Left   uint64          `json:"left"`
	Right  uint64          `json:"right"`
	Merged json.RawMessage `json:"merged"`
}

// resultBuffer is one query's bounded result queue. Producers push
// under the server's ingest path; consumers drain via long-poll or SSE.
// On overflow the oldest results are dropped (the stream is a tap, not
// a ledger — a slow client must not stall ingest or other tenants) and
// the drop count is surfaced so the client can tell.
type resultBuffer struct {
	mu      sync.Mutex
	base    uint64 // seq of items[0]; base+len(items) is the last seq
	items   []bufferedResult
	cap     int
	dropped int64
	wake    chan struct{} // closed on push/close, then replaced
	closed  bool

	depth    *telemetry.Gauge   // live fill level
	droppedC *telemetry.Counter // overflow drops
}

func newResultBuffer(capacity int, depth *telemetry.Gauge, dropped *telemetry.Counter) *resultBuffer {
	return &resultBuffer{
		cap:      capacity,
		wake:     make(chan struct{}),
		depth:    depth,
		droppedC: dropped,
	}
}

// push appends one result, evicting the oldest on overflow, and wakes
// every waiting consumer.
func (b *resultBuffer) push(left, right uint64, merged json.RawMessage) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if len(b.items) >= b.cap {
		drop := len(b.items) - b.cap + 1
		b.items = b.items[drop:]
		b.base += uint64(drop)
		b.dropped += int64(drop)
		b.droppedC.Add(int64(drop))
	}
	seq := b.base + uint64(len(b.items)) + 1
	b.items = append(b.items, bufferedResult{Seq: seq, Left: left, Right: right, Merged: merged})
	b.depth.SetInt(len(b.items))
	close(b.wake)
	b.wake = make(chan struct{})
	b.mu.Unlock()
}

// after returns up to max results with Seq > after, plus the channel a
// consumer can wait on when the slice is empty and whether the buffer
// was closed. max <= 0 means no limit.
func (b *resultBuffer) after(after uint64, max int) (out []bufferedResult, wake <-chan struct{}, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	start := 0
	if after > b.base {
		start = int(after - b.base)
	}
	if start < len(b.items) {
		out = b.items[start:]
		if max > 0 && len(out) > max {
			out = out[:max]
		}
		out = append([]bufferedResult(nil), out...)
	}
	return out, b.wake, b.closed
}

// stats reports the fill level, total drops and the last assigned seq.
func (b *resultBuffer) stats() (depth int, dropped int64, lastSeq uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items), b.dropped, b.base + uint64(len(b.items))
}

// close wakes all consumers and rejects further pushes; buffered
// results stay readable so a final drain can complete.
func (b *resultBuffer) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.wake)
		b.wake = make(chan struct{})
	}
	b.mu.Unlock()
}
