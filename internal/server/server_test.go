package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func newTestServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return ts
}

type docsResponse struct {
	Ingested int `json:"ingested"`
	Results  []struct {
		Seq    uint64          `json:"seq"`
		Left   uint64          `json:"left"`
		Right  uint64          `json:"right"`
		Merged json.RawMessage `json:"merged"`
	} `json:"results"`
	Queries map[string]int `json:"queries"`
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := buf.WriteString(readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		sb.Write(b[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestIngestSingleAndJoin(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/documents", `{"User":"A","Severity":"Warning"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp2, body := post(t, ts.URL+"/documents", `{"User":"A","MsgId":2}`)
	if resp2.StatusCode != 200 {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	var dr docsResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if dr.Ingested != 1 || len(dr.Results) != 1 {
		t.Fatalf("response = %+v", dr)
	}
	var merged map[string]any
	if err := json.Unmarshal(dr.Results[0].Merged, &merged); err != nil {
		t.Fatal(err)
	}
	if merged["Severity"] != "Warning" || merged["MsgId"] != float64(2) {
		t.Errorf("merged = %v", merged)
	}
	if dr.Queries[DefaultQueryID] != 1 {
		t.Errorf("queries = %v, want default: 1", dr.Queries)
	}
}

func TestIngestNDJSONBatch(t *testing.T) {
	ts := newTestServer(t)
	batch := `{"a":1}` + "\n" + `{"a":1,"b":2}` + "\n\n" + `{"a":1,"c":3}` + "\n"
	resp, body := post(t, ts.URL+"/documents", batch)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var dr docsResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Ingested != 3 {
		t.Errorf("ingested = %d", dr.Ingested)
	}
	// d2 joins d1; d3 joins d1 and d2.
	if len(dr.Results) != 3 {
		t.Errorf("results = %d, want 3", len(dr.Results))
	}
}

func TestMalformedDocumentRejected(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/documents", `{"broken`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	// Stats record the parse error.
	st := getStats(t, ts.URL)
	if st.ParseErrors != 1 {
		t.Errorf("ParseErrors = %d", st.ParseErrors)
	}
}

func getStats(t *testing.T, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestManualTumble(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/documents", `{"a":1}`)
	post(t, ts.URL+"/documents", `{"a":1}`)
	resp, body := post(t, ts.URL+"/tumble", "")
	if resp.StatusCode != 200 {
		t.Fatalf("tumble status %d", resp.StatusCode)
	}
	var out map[string]int
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["documents"] != 2 || out["pairs"] != 1 {
		t.Errorf("tumble = %v", out)
	}
	// After the tumble, the same content joins nothing.
	_, body2 := post(t, ts.URL+"/documents", `{"a":1}`)
	var dr docsResponse
	json.Unmarshal(body2, &dr)
	if len(dr.Results) != 0 {
		t.Errorf("window leaked across tumble: %v", dr.Results)
	}
}

func TestAutoTumble(t *testing.T) {
	ts := newTestServer(t, WithWindow(2))
	post(t, ts.URL+"/documents", `{"a":1}`)
	post(t, ts.URL+"/documents", `{"a":1}`)
	// Window tumbled automatically after 2 docs.
	st := getStats(t, ts.URL)
	if st.Windows != 1 {
		t.Errorf("Windows = %d, want 1", st.Windows)
	}
	if st.CurrentWindowDocs != 0 {
		t.Errorf("CurrentWindowDocs = %d", st.CurrentWindowDocs)
	}
	_, body := post(t, ts.URL+"/documents", `{"a":1}`)
	var dr docsResponse
	json.Unmarshal(body, &dr)
	if len(dr.Results) != 0 {
		t.Errorf("joined across auto-tumble: %v", dr.Results)
	}
}

func TestStatsCounts(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/documents", `{"a":1}`+"\n"+`{"a":1}`)
	st := getStats(t, ts.URL)
	if st.Documents != 2 || st.JoinPairs != 1 || st.CurrentWindowDocs != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Queries != 1 || st.WindowGroups != 1 {
		t.Errorf("stats query fields = %+v", st)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/documents")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /documents = %d, want 405", resp.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				doc := fmt.Sprintf(`{"user":"u%d","seq":%d}`, i, j)
				resp, err := http.Post(ts.URL+"/documents", "application/json", strings.NewReader(doc))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	st := getStats(t, ts.URL)
	if st.Documents != 160 {
		t.Errorf("Documents = %d, want 160", st.Documents)
	}
}

func TestBadEngine(t *testing.T) {
	if _, err := New(WithEngine("nope")); err == nil {
		t.Error("bad engine must fail")
	}
}

func TestBodyLimit(t *testing.T) {
	ts := newTestServer(t, WithMaxBodyBytes(64))
	big := `{"a":"` + strings.Repeat("x", 200) + `"}`
	resp, _ := post(t, ts.URL+"/documents", big)
	if resp.StatusCode == http.StatusOK {
		t.Error("oversized body accepted")
	}
}

func TestTelemetryEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts := newTestServer(t, WithTelemetry(reg))
	post(t, ts.URL+"/documents", `{"a":1}`+"\n"+`{"a":1,"b":2}`+"\n")
	post(t, ts.URL+"/tumble", "")
	post(t, ts.URL+"/documents", `{"broken`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"server_documents_total 2",
		"server_join_pairs_total 1",
		"server_windows_total 1",
		"server_parse_errors_total 1",
		"# TYPE join_probe_seconds histogram",
		"queryset_window_groups 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%.600s", want, body)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(readAll(t, resp)), &snap); err != nil {
		t.Fatal(err)
	}
	// The join series is labelled by window group now; sum over labels.
	if n := snap.SumCounter("join_results_total"); n != 1 {
		t.Errorf("debug snapshot join_results_total = %d, want 1", n)
	}
}

// TestTelemetryOffNoEndpoints: without a registry the scrape routes
// stay unrouted.
func TestTelemetryOffNoEndpoints(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /metrics without telemetry = %d, want 404", resp.StatusCode)
	}
}

// TestConfigShimEquivalence: a server built through the deprecated
// Config shim behaves identically to one built with the equivalent
// functional options.
func TestConfigShimEquivalence(t *testing.T) {
	regA, regB := telemetry.NewRegistry(), telemetry.NewRegistry()
	a, err := NewFromConfig(Config{Engine: "NLJ", WindowSize: 2, MaxBodyBytes: 1 << 20, Telemetry: regA})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithEngine("NLJ"), WithWindow(2), WithMaxBodyBytes(1<<20), WithTelemetry(regB))
	if err != nil {
		t.Fatal(err)
	}
	tsA, tsB := httptest.NewServer(a.Handler()), httptest.NewServer(b.Handler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)

	batch := `{"a":1}` + "\n" + `{"a":1,"b":2}` + "\n" + `{"a":1,"c":3}` + "\n"
	_, bodyA := post(t, tsA.URL+"/documents", batch)
	_, bodyB := post(t, tsB.URL+"/documents", batch)
	if string(bodyA) != string(bodyB) {
		t.Errorf("ingest responses diverge:\n%s\n%s", bodyA, bodyB)
	}
	stA, stB := getStats(t, tsA.URL), getStats(t, tsB.URL)
	if stA != stB {
		t.Errorf("stats diverge: %+v vs %+v", stA, stB)
	}
	cA, cB := regA.Snapshot().Counters, regB.Snapshot().Counters
	if len(cA) != len(cB) {
		t.Errorf("telemetry series diverge: %d vs %d", len(cA), len(cB))
	}
	for name, v := range cA {
		if cB[name] != v {
			t.Errorf("counter %s: %d vs %d", name, v, cB[name])
		}
	}
}
