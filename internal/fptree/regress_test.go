package fptree

import (
	"fmt"
	"reflect"
	"runtime/debug"
	"testing"

	"repro/internal/document"
	"repro/internal/symbol"
)

// TestJoinPartnersSurvivesNextProbe pins the probe-result ownership
// contract: the slice JoinPartners returns belongs to the caller and
// must not be clobbered by later probes. The seed implementation
// recycled one internal buffer across calls, so retaining a result and
// probing again silently rewrote the retained slice.
func TestJoinPartnersSurvivesNextProbe(t *testing.T) {
	docs := tableIDocs()
	tree := Build(docs)

	first := tree.JoinPartners(docs[0]) // d1 joins only d3
	want := append([]uint64(nil), first...)
	if !reflect.DeepEqual(want, []uint64{3}) {
		t.Fatalf("JoinPartners(d1) = %v, want [3]", want)
	}

	// Subsequent probes produce different partner sets; with a shared
	// buffer they would overwrite `first` in place.
	for i := 0; i < 3; i++ {
		for _, d := range docs {
			tree.JoinPartners(d)
		}
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("retained result mutated by later probes: %v, want %v", first, want)
	}
}

// TestResetReleasesOversizedProbeScratch pins the scratch-retention
// bound: probe scratch is indexed by attribute symbol ID, so one probe
// over a huge symbol space used to pin megabytes for the lifetime of
// the joiner. Reset must shed scratch past maxRetainedProbeScratch.
func TestResetReleasesOversizedProbeScratch(t *testing.T) {
	tree := New(nil)
	tree.Insert(document.New(1, []document.Pair{
		{Attr: "seed", Val: document.EncodeInt(1)},
	}))

	// Push the attribute ID space beyond the retention bound, then probe
	// with an attribute from the far end so the stamped scratch grows to
	// cover it.
	last := ""
	for i := 0; i <= maxRetainedProbeScratch+64; i++ {
		last = fmt.Sprintf("scratch-bloat-%d", i)
		symbol.InternAttr(last)
	}
	probe := document.New(2, []document.Pair{
		{Attr: last, Val: document.EncodeInt(1)},
	})
	tree.JoinPartners(probe)
	if c := tree.prober.scratchCap(); c <= maxRetainedProbeScratch {
		t.Fatalf("probe scratch cap = %d, expected > %d after wide probe", c, maxRetainedProbeScratch)
	}

	tree.Reset()
	if c := tree.prober.scratchCap(); c != 0 {
		t.Fatalf("probe scratch cap = %d after Reset, want 0 (released)", c)
	}

	// A modest probe after release must still answer correctly.
	tree.Insert(document.New(3, []document.Pair{
		{Attr: "seed", Val: document.EncodeInt(1)},
	}))
	got := tree.JoinPartners(document.New(4, []document.Pair{
		{Attr: "seed", Val: document.EncodeInt(1)},
	}))
	if !reflect.DeepEqual(got, []uint64{3}) {
		t.Fatalf("post-release probe = %v, want [3]", got)
	}
}

// TestDeepChainTraversalIterative pins the explicit-stack traversal: a
// degenerate chain-shaped tree ~100k nodes deep must be probeable
// without growing the goroutine stack. The seed's recursive traverse
// needed one stack frame per level and died with "goroutine stack
// exceeds limit" once the runtime cap was in the way; the arena walk
// keeps its frames on the heap.
func TestDeepChainTraversalIterative(t *testing.T) {
	const depth = 100_000
	pairs := make([]document.Pair, depth)
	for i := range pairs {
		pairs[i] = document.Pair{Attr: fmt.Sprintf("chain%06d", i), Val: document.EncodeInt(1)}
	}
	tree := New(nil)
	tree.Insert(document.New(1, pairs))
	if tree.MaxDepth() != depth {
		t.Fatalf("MaxDepth = %d, want %d", tree.MaxDepth(), depth)
	}

	// The probe carries only the last pair of the chain: it lacks the
	// first-ranked attribute, so the ubiquitous fast path bails out
	// immediately and the traversal must walk all 100k levels.
	probe := document.New(2, []document.Pair{pairs[depth-1]})

	// Cap goroutine stacks at 1 MiB — far below the ~depth recursion
	// frames the seed needed — and probe from a fresh goroutine so the
	// walk starts on a small stack.
	old := debug.SetMaxStack(1 << 20)
	defer debug.SetMaxStack(old)

	done := make(chan []uint64, 1)
	go func() {
		done <- tree.JoinPartners(probe)
	}()
	got := <-done
	if !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("deep-chain partners = %v, want [1]", got)
	}
}
