package fptree

import (
	"repro/internal/document"
	"repro/internal/symbol"
)

// Scratch buffers are reused across probes but released once they grow
// past these bounds, so a long-lived joiner that once saw a huge window
// (or a wide symbol space) does not pin that memory across tumbles.
const (
	// maxRetainedProbeScratch bounds the stamped probe scratch, which
	// is indexed by attribute symbol ID and so grows to the largest
	// attribute ID ever probed.
	maxRetainedProbeScratch = 4096
	// maxRetainedStack bounds the traversal frame stack.
	maxRetainedStack = 4096
	// maxRetainedScratch bounds the tree's JoinPartners copy scratch.
	maxRetainedScratch = 4096
)

// frame is one pending subtree of the iterative traversal: the node to
// visit and the number of attribute-value pairs its branch shares with
// the probing document.
type frame struct {
	node   int32
	shared int32
}

// Prober is one probe context over a Tree: the stamped probe scratch
// (val[a] is the probing document's value ID for attribute a iff
// mark[a] holds the current stamp) plus the explicit traversal stack.
// Each Prober owns its scratch, so several Probers may probe the same
// tree concurrently — the probe path only reads tree state — provided
// Tree.PrepareProbes ran first and no mutation (Insert/Reset/Restore)
// overlaps. Obtain extra Probers with Tree.NewProber; the tree itself
// embeds one backing the serial JoinPartners API.
type Prober struct {
	t     *Tree
	epoch uint64

	val   []symbol.ID
	mark  []uint32
	stamp uint32

	stack []frame
}

// NewProber returns an independent probe context for concurrent
// read-only probing of t. See Tree.PrepareProbes for the protocol.
func (t *Tree) NewProber() *Prober {
	return &Prober{t: t, epoch: t.symEpoch}
}

// Reattach re-syncs the Prober to the tree's current symbol epoch,
// discarding scratch if it moved (the attribute-ID indexing is void
// across epochs). Call serially — e.g. at a batch boundary, after
// Tree.PrepareProbes — never while other probes are in flight.
func (p *Prober) Reattach() {
	if p.epoch != p.t.symEpoch {
		p.dropScratch()
		p.epoch = p.t.symEpoch
	}
}

// JoinPartnersAppend probes the tree through this Prober's private
// scratch, appending d's join partners to dst. It never mutates the
// tree; the caller must have run Tree.PrepareProbes since the last
// mutation.
func (p *Prober) JoinPartnersAppend(dst []uint64, d document.Document) []uint64 {
	t := p.t
	if t.docCount == 0 {
		return dst
	}
	if e := symbol.Epoch(); e != p.epoch || e != t.symEpoch {
		panic("fptree: prober used across a symbol epoch change")
	}
	return p.joinPartners(dst, d.ID, d.InternedPairs())
}

// joinPartners runs FPTreeJoin (Algorithm 2) over the arena: the
// ubiquitous prefix is descended via exact-label lookups, then the
// remaining subtree is walked iteratively (Algorithm 3), pruning
// conflicting children and collecting document ids once the branch
// shares at least one pair with the probe. Visit order is the same
// pre-order the recursive pointer-tree traversal produced, so results
// are byte-identical.
func (p *Prober) joinPartners(dst []uint64, excludeID uint64, syms []symbol.Pair) []uint64 {
	t := p.t
	p.stampProbe(syms)
	num := t.NumUbiquitous()
	cur := int32(0)
	shared := int32(0)
	for j := 0; j < num; j++ {
		a := t.order.idAt(j)
		if int(a) >= len(p.mark) || p.mark[a] != p.stamp {
			// The probing document lacks this (tree-)ubiquitous
			// attribute: no conflict is possible on it, but all
			// children must be explored; fall back to the general
			// traversal from the current node.
			break
		}
		child := t.child(cur, symbol.MakePair(a, p.val[a]))
		if child < 0 {
			// Every stored document carries this attribute with some
			// other value: all of them conflict with d.
			return dst
		}
		cur = child
		shared++
		dst = appendExcluding(dst, t.docs[cur], excludeID)
	}

	// Iterative depth-first walk. Children are pushed in reverse so
	// they pop in tree order; a popped frame appends its node's docs
	// and then pushes its own (pruned) children on top, which is
	// exactly the recursive pre-order.
	stack := p.pushKids(p.stack[:0], cur, shared)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.shared > 0 {
			dst = appendExcluding(dst, t.docs[f.node], excludeID)
		}
		stack = p.pushKids(stack, f.node, f.shared)
	}
	p.stack = stack
	return dst
}

// pushKids pushes n's surviving children onto the stack in reverse
// order. A child whose attribute the probe carries survives only when
// the values agree (every differently-valued sibling conflicts, paper
// Algorithm 3) and deepens the shared count; a child whose attribute
// the probe lacks cannot conflict and keeps it. Edges carry their
// label symbol inline, so the pruning scan touches one contiguous span
// and never dereferences a pruned child.
func (p *Prober) pushKids(stack []frame, n int32, shared int32) []frame {
	ks := p.t.kids[n]
	for i := len(ks) - 1; i >= 0; i-- {
		s := ks[i].sym
		if a := int(s.Attr()); a < len(p.mark) && p.mark[a] == p.stamp {
			if s.Val() == p.val[a] {
				stack = append(stack, frame{ks[i].id, shared + 1})
			}
			continue
		}
		stack = append(stack, frame{ks[i].id, shared})
	}
	return stack
}

// stampProbe loads the probing document into the stamped scratch:
// val[a] holds the probe's value ID for attribute a iff mark[a] equals
// the (freshly bumped) stamp. No clearing is needed between probes; on
// stamp wrap-around the marks are zeroed once.
func (p *Prober) stampProbe(syms []symbol.Pair) {
	p.stamp++
	if p.stamp == 0 {
		for i := range p.mark {
			p.mark[i] = 0
		}
		p.stamp = 1
	}
	for _, s := range syms {
		a := int(s.Attr())
		if a >= len(p.mark) {
			p.mark = growUint32s(p.mark, a+1)
			p.val = growIDs(p.val, a+1)
		}
		p.mark[a] = p.stamp
		p.val[a] = s.Val()
	}
}

func growUint32s(s []uint32, n int) []uint32 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

func growIDs(s []symbol.ID, n int) []symbol.ID {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// releaseOversized frees scratch that grew past the retention bounds
// (called from Tree.Reset so window tumbles shed peak-sized scratch).
func (p *Prober) releaseOversized() {
	if cap(p.val) > maxRetainedProbeScratch {
		p.val, p.mark, p.stamp = nil, nil, 0
	}
	if cap(p.stack) > maxRetainedStack {
		p.stack = nil
	}
}

// dropScratch discards all scratch unconditionally (epoch changes
// invalidate the attribute-ID indexing outright).
func (p *Prober) dropScratch() {
	p.val, p.mark, p.stamp = nil, nil, 0
	p.stack = nil
}

// scratchCap reports the probe scratch capacity (tests).
func (p *Prober) scratchCap() int { return cap(p.val) }
