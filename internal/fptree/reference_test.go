package fptree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/document"
	"repro/internal/symbol"
)

// This file carries a test-only port of the original pointer-linked
// FP-tree (the layout the flat arena replaced) as an executable
// specification: FuzzFlatTreeParity requires the arena to return
// byte-identical JoinPartners output — same ids, same traversal order —
// for arbitrary interleavings of inserts and probes.

// refNode is the pointer-tree node: children grouped by attribute,
// document ids at the terminal node, header chain via next.
type refNode struct {
	sym    symbol.Pair
	groups []*refAttrGroup
	docs   []uint64
	next   *refNode
	depth  int
}

// refAttrGroup holds all children of one node sharing an attribute.
type refAttrGroup struct {
	attr  symbol.ID
	byVal map[symbol.ID]*refNode
	all   []*refNode
}

func (n *refNode) group(attr symbol.ID) *refAttrGroup {
	for _, g := range n.groups {
		if g.attr == attr {
			return g
		}
	}
	return nil
}

func (n *refNode) child(s symbol.Pair) *refNode {
	if g := n.group(s.Attr()); g != nil {
		return g.byVal[s.Val()]
	}
	return nil
}

func (n *refNode) addChild(s symbol.Pair, c *refNode) {
	g := n.group(s.Attr())
	if g == nil {
		g = &refAttrGroup{attr: s.Attr(), byVal: make(map[symbol.ID]*refNode)}
		n.groups = append(n.groups, g)
	}
	g.byVal[s.Val()] = c
	g.all = append(g.all, c)
}

// refTree is the pointer-tree join index with the original recursive
// traversal.
type refTree struct {
	order      *Order
	root       *refNode
	header     map[symbol.Pair]*refNode
	docCount   int
	attrCounts []int
	maxDepth   int

	numUbiq   int
	ubiqValid bool

	probeVal   []symbol.ID
	probeMark  []uint32
	probeStamp uint32

	arr refArrangeBuf
}

// refArrangeBuf sorts a document's pairs by global-order rank, exactly
// like the seed's reflection-based sort did.
type refArrangeBuf struct {
	pairs []document.Pair
	syms  []symbol.Pair
	ranks []int32
}

func (b *refArrangeBuf) Len() int           { return len(b.pairs) }
func (b *refArrangeBuf) Less(i, j int) bool { return b.ranks[i] < b.ranks[j] }
func (b *refArrangeBuf) Swap(i, j int) {
	b.pairs[i], b.pairs[j] = b.pairs[j], b.pairs[i]
	b.syms[i], b.syms[j] = b.syms[j], b.syms[i]
	b.ranks[i], b.ranks[j] = b.ranks[j], b.ranks[i]
}

func newRefTree(order *Order) *refTree {
	if order == nil {
		order = EmptyOrder()
	}
	return &refTree{
		order:  order,
		root:   &refNode{},
		header: make(map[symbol.Pair]*refNode),
	}
}

func (t *refTree) arrange(d document.Document, syms []symbol.Pair) {
	b := &t.arr
	b.pairs = append(b.pairs[:0], d.Pairs()...)
	b.syms = append(b.syms[:0], syms...)
	b.ranks = b.ranks[:0]
	for k := range b.pairs {
		b.ranks = append(b.ranks, int32(t.order.rankOfSym(b.syms[k].Attr(), b.pairs[k].Attr)))
	}
	sort.Sort(b)
}

func (t *refTree) Insert(d document.Document) {
	t.order.sync()
	syms := d.InternedPairs()
	t.arrange(d, syms)
	cur := t.root
	for k := range t.arr.pairs {
		s := t.arr.syms[k]
		child := cur.child(s)
		if child == nil {
			child = &refNode{sym: s, depth: cur.depth + 1}
			cur.addChild(s, child)
			child.next = t.header[s]
			t.header[s] = child
			if child.depth > t.maxDepth {
				t.maxDepth = child.depth
			}
		}
		cur = child
	}
	cur.docs = append(cur.docs, d.ID)
	t.docCount++
	for _, s := range t.arr.syms {
		a := s.Attr()
		if int(a) >= len(t.attrCounts) {
			t.attrCounts = growInts(t.attrCounts, int(a)+1)
		}
		t.attrCounts[a]++
	}
	t.ubiqValid = false
}

func (t *refTree) NumUbiquitous() int {
	if t.ubiqValid {
		return t.numUbiq
	}
	n := 0
	if t.docCount > 0 {
		t.order.sync()
		for j := 0; j < t.order.Len(); j++ {
			a := t.order.idAt(j)
			if int(a) >= len(t.attrCounts) || t.attrCounts[a] != t.docCount {
				break
			}
			n++
		}
	}
	t.numUbiq, t.ubiqValid = n, true
	return n
}

func (t *refTree) JoinPartnersAppend(dst []uint64, d document.Document) []uint64 {
	if t.docCount == 0 {
		return dst
	}
	t.order.sync()
	syms := d.InternedPairs()
	t.stampProbe(syms)
	num := t.NumUbiquitous()
	cur := t.root
	shared := 0
	for j := 0; j < num; j++ {
		a := t.order.idAt(j)
		if int(a) >= len(t.probeMark) || t.probeMark[a] != t.probeStamp {
			break
		}
		child := cur.child(symbol.MakePair(a, t.probeVal[a]))
		if child == nil {
			return dst
		}
		cur = child
		shared++
		dst = appendExcluding(dst, cur.docs, d.ID)
	}
	return t.traverse(cur, d.ID, shared, dst)
}

func (t *refTree) stampProbe(syms []symbol.Pair) {
	t.probeStamp++
	if t.probeStamp == 0 {
		for i := range t.probeMark {
			t.probeMark[i] = 0
		}
		t.probeStamp = 1
	}
	for _, s := range syms {
		a := int(s.Attr())
		if a >= len(t.probeMark) {
			t.probeMark = growUint32s(t.probeMark, a+1)
			t.probeVal = growIDs(t.probeVal, a+1)
		}
		t.probeMark[a] = t.probeStamp
		t.probeVal[a] = s.Val()
	}
}

// traverse is the seed's recursive Algorithm 3.
func (t *refTree) traverse(n *refNode, excludeID uint64, shared int, result []uint64) []uint64 {
	for _, g := range n.groups {
		if a := int(g.attr); a < len(t.probeMark) && t.probeMark[a] == t.probeStamp {
			if child := g.byVal[t.probeVal[a]]; child != nil {
				result = t.collectChild(child, excludeID, shared+1, result)
			}
			continue
		}
		for _, child := range g.all {
			result = t.collectChild(child, excludeID, shared, result)
		}
	}
	return result
}

func (t *refTree) collectChild(child *refNode, excludeID uint64, shared int, result []uint64) []uint64 {
	if shared > 0 {
		result = appendExcluding(result, child.docs, excludeID)
	}
	return t.traverse(child, excludeID, shared, result)
}

// parityDocs builds a randomized document stream over a space small
// enough that shared prefixes, header chains, ubiquitous attributes and
// value conflicts all occur frequently.
func parityDocs(r *rand.Rand, n int) []document.Document {
	attrs := []string{"pa", "pb", "pc", "pd", "pe", "pf", "pg"}
	docs := make([]document.Document, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(len(attrs)-1)
		perm := r.Perm(len(attrs))
		var ps []document.Pair
		for j := 0; j < k; j++ {
			ps = append(ps, document.Pair{
				Attr: attrs[perm[j]],
				Val:  document.EncodeInt(int64(r.Intn(4))),
			})
		}
		docs = append(docs, document.New(uint64(i+1), ps))
	}
	return docs
}

// checkFlatTreeParity interleaves probes and inserts over both layouts
// and requires byte-identical probe output at every step.
func checkFlatTreeParity(t *testing.T, seed int64, n int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	docs := parityDocs(r, n)

	// One shared order keeps attribute ranks identical by construction;
	// both layouts mutate it only through the same registration path.
	order := NewOrderFromDocs(docs)
	flat := New(order)
	ref := newRefTree(order)

	probeBoth := func(p document.Document) {
		want := ref.JoinPartnersAppend(nil, p)
		got := flat.JoinPartners(p)
		if len(want) == 0 && len(got) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed=%d n=%d: probe doc %d: flat=%v ref=%v", seed, n, p.ID, got, want)
		}
	}

	for _, d := range docs {
		probeBoth(d) // probe-then-insert, like the windowed joiner
		flat.Insert(d)
		ref.Insert(d)
		if flat.NumUbiquitous() != ref.NumUbiquitous() {
			t.Fatalf("seed=%d n=%d: NumUbiquitous flat=%d ref=%d",
				seed, n, flat.NumUbiquitous(), ref.NumUbiquitous())
		}
		if flat.MaxDepth() != ref.maxDepth {
			t.Fatalf("seed=%d n=%d: MaxDepth flat=%d ref=%d", seed, n, flat.MaxDepth(), ref.maxDepth)
		}
	}
	// A final sweep of fresh probes against the full trees.
	for _, p := range parityDocs(r, 16) {
		probeBoth(p)
	}
}

// TestFlatTreeParity runs the parity check over fixed seeds in every
// ordinary `go test` run.
func TestFlatTreeParity(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		checkFlatTreeParity(t, seed, 3+int(seed)*5)
	}
}

// FuzzFlatTreeParity drives the flat arena against the pointer-tree
// reference with fuzzed insert/probe interleavings.
func FuzzFlatTreeParity(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(42), uint8(31))
	f.Add(int64(7), uint8(97))
	f.Add(int64(-3), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		checkFlatTreeParity(t, seed, int(n)%128)
	})
}
