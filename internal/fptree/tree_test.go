package fptree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/document"
)

// tableIDocs builds the paper's Table I document set.
func tableIDocs() []document.Document {
	mk := func(id uint64, kv ...any) document.Document {
		var ps []document.Pair
		for i := 0; i < len(kv); i += 2 {
			ps = append(ps, document.Pair{Attr: kv[i].(string), Val: document.EncodeInt(int64(kv[i+1].(int)))})
		}
		return document.New(id, ps)
	}
	return []document.Document{
		mk(1, "a", 3, "b", 7, "c", 1),
		mk(2, "a", 3, "b", 8),
		mk(3, "a", 3, "b", 7),
		mk(4, "b", 8, "c", 2),
	}
}

// TestPaperTableIExample checks the global ordering, tree shape and the
// FPTreeJoin result of the paper's running example (Table I, Figs. 4-5).
func TestPaperTableIExample(t *testing.T) {
	docs := tableIDocs()
	tree := Build(docs)

	// Global order must be b -> a -> c.
	wantOrder := []string{"b", "a", "c"}
	if got := tree.Order().Attrs(); !reflect.DeepEqual(got[:3], wantOrder) {
		t.Fatalf("order = %v, want %v", got, wantOrder)
	}

	// The tree of Fig. 4 has 6 nodes: b:7, b:8, a:3 (twice), c:1, c:2.
	if tree.NodeCount() != 6 {
		t.Errorf("NodeCount = %d, want 6", tree.NodeCount())
	}
	// Attribute b is ubiquitous; a and c are not.
	if n := tree.NumUbiquitous(); n != 1 {
		t.Errorf("NumUbiquitous = %d, want 1", n)
	}
	// a:3 labels two nodes -> header chain length 2.
	a3 := document.Pair{Attr: "a", Val: document.EncodeInt(3)}
	if n := tree.HeaderChainLen(a3); n != 2 {
		t.Errorf("header chain for a:3 = %d, want 2", n)
	}

	// Fig. 5: FPTreeJoin(d1) finds only d3.
	partners := tree.JoinPartners(docs[0])
	sortIDs(partners)
	if !reflect.DeepEqual(partners, []uint64{3}) {
		t.Errorf("JoinPartners(d1) = %v, want [3]", partners)
	}

	// d2 {a:3,b:8}: shares b:8 with d4 but conflicts? d4={b:8,c:2} —
	// share b:8, no conflicting attr -> joinable. d1,d3 conflict on b.
	partners = tree.JoinPartners(docs[1])
	sortIDs(partners)
	if !reflect.DeepEqual(partners, []uint64{4}) {
		t.Errorf("JoinPartners(d2) = %v, want [4]", partners)
	}
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func TestDocPathMatchesOrdering(t *testing.T) {
	docs := tableIDocs()
	tree := Build(docs)
	path := tree.DocPath(1)
	want := []document.Pair{
		{Attr: "b", Val: document.EncodeInt(7)},
		{Attr: "a", Val: document.EncodeInt(3)},
		{Attr: "c", Val: document.EncodeInt(1)},
	}
	if !reflect.DeepEqual(path, want) {
		t.Errorf("DocPath(1) = %v, want %v", path, want)
	}
	if tree.DocPath(999) != nil {
		t.Error("DocPath of unknown id must be nil")
	}
}

func TestInsertSharesPrefixes(t *testing.T) {
	docs := tableIDocs()
	tree := Build(docs)
	// d1 and d3 share prefix b:7 -> a:3; total nodes 6, not 10.
	if tree.DocCount() != 4 {
		t.Errorf("DocCount = %d", tree.DocCount())
	}
	if tree.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d, want 3", tree.MaxDepth())
	}
}

func TestReset(t *testing.T) {
	tree := Build(tableIDocs())
	tree.Reset()
	if tree.DocCount() != 0 || tree.NodeCount() != 0 || tree.NumUbiquitous() != 0 {
		t.Error("Reset did not clear tree")
	}
	// Order survives the reset.
	if tree.Order().Len() == 0 {
		t.Error("Reset cleared the attribute order")
	}
	// Tree remains usable.
	tree.Insert(document.MustParse(9, `{"b":7}`))
	if tree.DocCount() != 1 {
		t.Error("insert after Reset failed")
	}
}

func TestJoinPartnersEmptyTree(t *testing.T) {
	tree := New(EmptyOrder())
	d := document.MustParse(1, `{"a":1}`)
	if p := tree.JoinPartners(d); len(p) != 0 {
		t.Errorf("empty tree returned partners %v", p)
	}
}

func TestJoinPartnersExcludesSelf(t *testing.T) {
	d := document.MustParse(1, `{"a":1,"b":2}`)
	tree := Build([]document.Document{d})
	if p := tree.JoinPartners(d); len(p) != 0 {
		t.Errorf("self returned as partner: %v", p)
	}
}

func TestDuplicateDocumentsShareNode(t *testing.T) {
	d1 := document.MustParse(1, `{"a":1}`)
	d2 := document.MustParse(2, `{"a":1}`)
	tree := Build([]document.Document{d1, d2})
	if tree.NodeCount() != 1 {
		t.Errorf("NodeCount = %d, want 1 (identical docs share the branch)", tree.NodeCount())
	}
	p := tree.JoinPartners(d1)
	if !reflect.DeepEqual(p, []uint64{2}) {
		t.Errorf("partners = %v, want [2]", p)
	}
}

// TestBooleanFastPath reproduces the motivating case of Sec. V-B: a
// Boolean attribute present in every document sits at the first level,
// and probing prunes half the tree.
func TestBooleanFastPath(t *testing.T) {
	var docs []document.Document
	for i := 0; i < 40; i++ {
		b := document.EncodeBool(i%2 == 0)
		// Alternate the second attribute so only bool is ubiquitous.
		second := "x"
		if i%2 == 1 {
			second = "y"
		}
		docs = append(docs, document.New(uint64(i+1), []document.Pair{
			{Attr: "bool", Val: b},
			{Attr: second, Val: document.EncodeInt(int64(i))},
		}))
	}
	tree := Build(docs)
	if n := tree.NumUbiquitous(); n != 1 {
		t.Fatalf("NumUbiquitous = %d, want 1", n)
	}
	// A probe with bool:true and a fresh attribute joins every
	// bool:true document (no other attribute can conflict).
	probe := document.New(999, []document.Pair{
		{Attr: "bool", Val: document.EncodeBool(true)},
		{Attr: "z", Val: document.EncodeInt(10000)},
	})
	partners := tree.JoinPartners(probe)
	if len(partners) != 20 {
		t.Errorf("got %d partners, want 20", len(partners))
	}
	// A probe conflicting on a sparse attribute joins only the
	// bool-true documents that lack that attribute.
	probe2 := document.New(998, []document.Pair{
		{Attr: "bool", Val: document.EncodeBool(true)},
		{Attr: "x", Val: document.EncodeInt(10000)},
	})
	partners2 := tree.JoinPartners(probe2)
	if len(partners2) != 0 {
		t.Errorf("conflicting probe got %d partners, want 0", len(partners2))
	}
}

// TestProbeLacksUbiquitousAttr exercises the fallback when the probing
// document does not carry an attribute that is ubiquitous in the tree.
func TestProbeLacksUbiquitousAttr(t *testing.T) {
	docs := []document.Document{
		document.MustParse(1, `{"u":1,"x":5}`),
		document.MustParse(2, `{"u":2,"x":5}`),
		document.MustParse(3, `{"u":3,"y":9}`),
	}
	tree := Build(docs)
	if tree.NumUbiquitous() != 1 {
		t.Fatalf("NumUbiquitous = %d, want 1 (u)", tree.NumUbiquitous())
	}
	probe := document.MustParse(4, `{"x":5}`)
	partners := tree.JoinPartners(probe)
	sortIDs(partners)
	if !reflect.DeepEqual(partners, []uint64{1, 2}) {
		t.Errorf("partners = %v, want [1 2]", partners)
	}
}

// naivePartners is the reference oracle: brute-force scan.
func naivePartners(docs []document.Document, probe document.Document) []uint64 {
	var out []uint64
	for _, d := range docs {
		if d.ID != probe.ID && document.Joinable(d, probe) {
			out = append(out, d.ID)
		}
	}
	sortIDs(out)
	return out
}

func randomDocSet(r *rand.Rand, n int) []document.Document {
	attrs := []string{"a", "b", "c", "d", "e"}
	docs := make([]document.Document, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(4)
		perm := r.Perm(len(attrs))
		var ps []document.Pair
		for j := 0; j < k; j++ {
			ps = append(ps, document.Pair{
				Attr: attrs[perm[j]],
				Val:  document.EncodeInt(int64(r.Intn(3))),
			})
		}
		docs = append(docs, document.New(uint64(i+1), ps))
	}
	return docs
}

// TestQuickJoinPartnersMatchesNaive is the central correctness property:
// FPTreeJoin must return exactly the brute-force join partner set for
// arbitrary document batches.
func TestQuickJoinPartnersMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocSet(r, 2+r.Intn(30))
		tree := Build(docs)
		for _, probe := range docs {
			got := tree.JoinPartners(probe)
			sortIDs(got)
			want := naivePartners(docs, probe)
			if len(want) == 0 {
				want = got[:0]
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickExternalProbe probes with documents NOT in the tree.
func TestQuickExternalProbe(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocSet(r, 2+r.Intn(20))
		tree := Build(docs)
		probes := randomDocSet(r, 5)
		for i, probe := range probes {
			probe.ID = uint64(1000 + i)
			got := tree.JoinPartners(probe)
			sortIDs(got)
			want := naivePartners(docs, probe)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDocCountConservation: sum of stored ids over all nodes
// equals the number of inserts.
func TestQuickDocCountConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocSet(r, 1+r.Intn(40))
		tree := Build(docs)
		if tree.DocCount() != len(docs) {
			return false
		}
		// Every document's path must be recoverable and match its
		// arranged pair sequence.
		for _, d := range docs {
			path := tree.DocPath(d.ID)
			arranged := tree.Order().Arrange(d)
			if !reflect.DeepEqual(path, arranged) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOrderArrangeDeterministic(t *testing.T) {
	docs := tableIDocs()
	o := NewOrderFromDocs(docs)
	a1 := o.Arrange(docs[0])
	a2 := o.Arrange(docs[0])
	if !reflect.DeepEqual(a1, a2) {
		t.Error("Arrange not deterministic")
	}
}

func TestOrderRegistersUnseenAttrs(t *testing.T) {
	o := NewOrderFromDocs(tableIDocs())
	base := o.Len()
	d := document.MustParse(9, `{"zz":1,"b":7}`)
	arranged := o.Arrange(d)
	if o.Len() != base+1 {
		t.Errorf("unseen attr not registered: len=%d", o.Len())
	}
	// Known attr b must come before the appended zz.
	if arranged[0].Attr != "b" || arranged[1].Attr != "zz" {
		t.Errorf("arranged = %v", arranged)
	}
}

func TestDumpContainsNodes(t *testing.T) {
	tree := Build(tableIDocs())
	dump := tree.Dump()
	if len(dump) < 10 {
		t.Errorf("Dump too short: %q", dump)
	}
}

func TestTreeStats(t *testing.T) {
	tree := Build(tableIDocs())
	s := tree.Stats()
	if s.Documents != 4 || s.Nodes != 6 {
		t.Errorf("stats = %+v", s)
	}
	// 9 pairs (3+2+2+2) over 6 nodes.
	if s.Pairs != 9 {
		t.Errorf("Pairs = %d, want 9", s.Pairs)
	}
	if s.SharingFactor < 1.49 || s.SharingFactor > 1.51 {
		t.Errorf("SharingFactor = %g, want 9/6", s.SharingFactor)
	}
	if s.MaxDepth != 3 || len(s.DepthHistogram) != 3 {
		t.Errorf("depth stats = %+v", s)
	}
	// Depth histogram sums to node count.
	total := 0
	for _, n := range s.DepthHistogram {
		total += n
	}
	if total != s.Nodes {
		t.Errorf("histogram total = %d, nodes = %d", total, s.Nodes)
	}
	if s.UbiquitousAttrs != 1 {
		t.Errorf("UbiquitousAttrs = %d", s.UbiquitousAttrs)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestTreeStatsEmpty(t *testing.T) {
	s := New(EmptyOrder()).Stats()
	if s.Documents != 0 || s.Nodes != 0 || s.SharingFactor != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

// TestQuickSharingFactorAtLeastOne: every node represents at least one
// inserted pair.
func TestQuickSharingFactorAtLeastOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocSet(r, 1+r.Intn(40))
		s := Build(docs).Stats()
		return s.SharingFactor >= 1.0-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
