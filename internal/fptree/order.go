// Package fptree implements the FP-tree–based storage and join
// algorithm of the paper's Section V: an extended prefix tree storing
// documents compactly, a global attribute ordering (document frequency
// descending, distinct-value count ascending on ties), and the
// FPTreeJoin algorithm (Algorithms 2 and 3) with its fast path over
// ubiquitous attributes.
package fptree

import (
	"sort"

	"repro/internal/document"
)

// Order is the fixed global attribute ordering imposed on documents
// before FP-tree insertion. Attributes are ranked by descending
// document frequency; ties are broken by ascending number of distinct
// values, then lexicographically (paper Sec. V-A).
//
// Attributes not present when the Order was computed are appended on
// first use, so an Order stays total over a stream whose schema
// evolves; their relative order is their order of first appearance,
// which is applied consistently to inserts and probes.
type Order struct {
	rank  map[string]int
	attrs []string
}

// NewOrder derives the ordering from batch statistics.
func NewOrder(stats *document.AttrStats) *Order {
	o := &Order{rank: make(map[string]int)}
	for _, a := range stats.Order() {
		o.rank[a] = len(o.attrs)
		o.attrs = append(o.attrs, a)
	}
	return o
}

// NewOrderFromDocs is a convenience constructor for batch joins.
func NewOrderFromDocs(docs []document.Document) *Order {
	return NewOrder(document.CollectAttrStats(docs))
}

// EmptyOrder returns an ordering with no precomputed ranks; attributes
// rank in order of first appearance.
func EmptyOrder() *Order { return &Order{rank: make(map[string]int)} }

// Rank returns the position of attr in the ordering, registering it at
// the end if unseen.
func (o *Order) Rank(attr string) int {
	if r, ok := o.rank[attr]; ok {
		return r
	}
	r := len(o.attrs)
	o.rank[attr] = r
	o.attrs = append(o.attrs, attr)
	return r
}

// Attrs lists all known attributes in rank order. The returned slice
// is shared; callers must not modify it.
func (o *Order) Attrs() []string { return o.attrs }

// Len reports the number of known attributes.
func (o *Order) Len() int { return len(o.attrs) }

// Arrange returns the document's pairs sorted by the global ordering.
// The result is freshly allocated.
func (o *Order) Arrange(d document.Document) []document.Pair {
	ps := d.Pairs()
	out := make([]document.Pair, len(ps))
	copy(out, ps)
	// Register all attrs first so ranks are stable during the sort.
	for _, p := range out {
		o.Rank(p.Attr)
	}
	sort.Slice(out, func(i, j int) bool {
		return o.rank[out[i].Attr] < o.rank[out[j].Attr]
	})
	return out
}
