// Package fptree implements the FP-tree–based storage and join
// algorithm of the paper's Section V: an extended prefix tree storing
// documents compactly, a global attribute ordering (document frequency
// descending, distinct-value count ascending on ties), and the
// FPTreeJoin algorithm (Algorithms 2 and 3) with its fast path over
// ubiquitous attributes.
package fptree

import (
	"sort"

	"repro/internal/document"
	"repro/internal/symbol"
)

// Order is the fixed global attribute ordering imposed on documents
// before FP-tree insertion. Attributes are ranked by descending
// document frequency; ties are broken by ascending number of distinct
// values, then lexicographically (paper Sec. V-A).
//
// Attributes not present when the Order was computed are appended on
// first use, so an Order stays total over a stream whose schema
// evolves; their relative order is their order of first appearance,
// which is applied consistently to inserts and probes.
//
// Besides the string ranks, the order maintains the interned symbol ID
// of every attribute (see internal/symbol) plus the inverse mapping
// ID -> rank, so the tree's hot paths rank attributes by array index
// instead of string-map lookup. The ID side is rebuilt lazily when the
// global symbol epoch changes.
type Order struct {
	rank  map[string]int
	attrs []string

	ids      []symbol.ID // parallel to attrs: interned attribute IDs
	rankByID []int32     // indexed by symbol.ID; -1 = not in the order
	epoch    uint64      // symbol epoch ids/rankByID were built under
}

// NewOrder derives the ordering from batch statistics.
func NewOrder(stats *document.AttrStats) *Order {
	o := EmptyOrder()
	for _, a := range stats.Order() {
		o.register(a)
	}
	return o
}

// NewOrderFromDocs is a convenience constructor for batch joins.
func NewOrderFromDocs(docs []document.Document) *Order {
	return NewOrder(document.CollectAttrStats(docs))
}

// EmptyOrder returns an ordering with no precomputed ranks; attributes
// rank in order of first appearance.
func EmptyOrder() *Order {
	return &Order{rank: make(map[string]int), epoch: symbol.Epoch()}
}

// register appends attr at the next rank and indexes its symbol ID.
func (o *Order) register(attr string) int {
	r := len(o.attrs)
	o.rank[attr] = r
	o.attrs = append(o.attrs, attr)
	id := symbol.InternAttr(attr)
	o.ids = append(o.ids, id)
	o.noteID(id, r)
	return r
}

func (o *Order) noteID(id symbol.ID, r int) {
	for int(id) >= len(o.rankByID) {
		o.rankByID = append(o.rankByID, -1)
	}
	o.rankByID[id] = int32(r)
}

// sync rebuilds the ID-side indexes when the global symbol epoch moved
// (possible only after an explicit symbol.Reset). The string ranks are
// the source of truth and survive unchanged.
func (o *Order) sync() {
	e := symbol.Epoch()
	if e == o.epoch {
		return
	}
	o.epoch = e
	o.ids = o.ids[:0]
	o.rankByID = o.rankByID[:0]
	for r, a := range o.attrs {
		id := symbol.InternAttr(a)
		o.ids = append(o.ids, id)
		o.noteID(id, r)
	}
}

// Rank returns the position of attr in the ordering, registering it at
// the end if unseen.
func (o *Order) Rank(attr string) int {
	o.sync()
	if r, ok := o.rank[attr]; ok {
		return r
	}
	return o.register(attr)
}

// rankOfSym ranks an attribute by its symbol ID, falling back to (and
// indexing) the string path for attributes the ID index has not seen.
// Callers must have invoked sync for the current epoch.
func (o *Order) rankOfSym(id symbol.ID, attr string) int {
	if int(id) < len(o.rankByID) {
		if r := o.rankByID[id]; r >= 0 {
			return int(r)
		}
	}
	r, ok := o.rank[attr]
	if !ok {
		return o.register(attr)
	}
	o.noteID(id, r)
	return r
}

// idAt returns the symbol ID of the attribute at the given rank.
// Callers must have invoked sync for the current epoch.
func (o *Order) idAt(rank int) symbol.ID { return o.ids[rank] }

// Attrs lists all known attributes in rank order. The returned slice
// is shared; callers must not modify it.
func (o *Order) Attrs() []string { return o.attrs }

// Len reports the number of known attributes.
func (o *Order) Len() int { return len(o.attrs) }

// Arrange returns the document's pairs sorted by the global ordering.
// The result is freshly allocated.
func (o *Order) Arrange(d document.Document) []document.Pair {
	ps := d.Pairs()
	out := make([]document.Pair, len(ps))
	copy(out, ps)
	// Register all attrs first so ranks are stable during the sort.
	for _, p := range out {
		o.Rank(p.Attr)
	}
	sort.Slice(out, func(i, j int) bool {
		return o.rank[out[i].Attr] < o.rank[out[j].Attr]
	})
	return out
}
