package fptree

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/symbol"
)

// Snapshot / Restore implement the operator-state contract
// (internal/state.Snapshotter) for the FP-tree. The serialized form is
// symbol-aware: node labels and the attribute order travel as strings
// and are re-interned on restore, so a snapshot taken in one process
// (or symbol epoch) rebuilds an equivalent tree in another. The wire
// format predates the flat arena layout and is unchanged by it:
// snapshots written by the pointer tree restore into the arena and
// vice versa.
//
// The encoding preserves everything JoinPartners' traversal order
// depends on — attribute-group order, child order within a group, the
// per-node document id order, and branch ids (whose ascending order
// reconstructs the header chains) — so a restored tree yields
// byte-identical JoinPartners results.

// treeGob is the wire form of a Tree.
type treeGob struct {
	Attrs      []string  // global attribute order, rank order
	Nodes      []nodeGob // pre-order: parents precede children, sibling order preserved
	DocCount   int
	MaxDepth   int
	AttrCounts []attrCountGob // sorted by attribute name
}

// nodeGob is the wire form of one tree node.
type nodeGob struct {
	Parent   int // index into Nodes; -1 = child of the root
	Attr     string
	Val      string
	BranchID int
	Docs     []uint64
}

type attrCountGob struct {
	Attr  string
	Count int
}

// Snapshot writes the tree's complete state to w. The pre-order walk
// is iterative (explicit stack), like every other arena traversal.
func (t *Tree) Snapshot(w io.Writer) error {
	g := treeGob{
		Attrs:    append([]string(nil), t.order.Attrs()...),
		DocCount: t.docCount,
		MaxDepth: t.maxDepth,
	}
	g.Nodes = make([]nodeGob, 0, t.NodeCount())
	type sframe struct {
		node      int32
		parentIdx int
	}
	var stack []sframe
	ks := t.kids[0]
	for i := len(ks) - 1; i >= 0; i-- {
		stack = append(stack, sframe{ks[i].id, -1})
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := len(g.Nodes)
		attr, val := symbol.PairStrings(t.syms[f.node])
		g.Nodes = append(g.Nodes, nodeGob{
			Parent:   f.parentIdx,
			Attr:     attr,
			Val:      val,
			BranchID: int(t.branch[f.node]),
			Docs:     t.docs[f.node],
		})
		ks := t.kids[f.node]
		for i := len(ks) - 1; i >= 0; i-- {
			stack = append(stack, sframe{ks[i].id, idx})
		}
	}
	// Attribute counts keyed by name (IDs are epoch-local), sorted so
	// the snapshot bytes are deterministic.
	for id, cnt := range t.attrCounts {
		if cnt != 0 {
			g.AttrCounts = append(g.AttrCounts, attrCountGob{Attr: symbol.AttrString(symbol.ID(id)), Count: cnt})
		}
	}
	sort.Slice(g.AttrCounts, func(i, j int) bool { return g.AttrCounts[i].Attr < g.AttrCounts[j].Attr })
	return gob.NewEncoder(w).Encode(g)
}

// Restore rebuilds the tree from a Snapshot stream, replacing all
// current contents. Symbols are re-interned under the current epoch.
func (t *Tree) Restore(r io.Reader) error {
	var g treeGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return fmt.Errorf("fptree: decode snapshot: %w", err)
	}
	order := EmptyOrder()
	for _, a := range g.Attrs {
		order.register(a)
	}
	nt := New(order)
	// Nodes arrive in pre-order, so a parent's children are appended in
	// their original sibling order and newNode's grouped splice rebuilds
	// each child span exactly. File index i becomes arena node i+1.
	for i, ng := range g.Nodes {
		parent := int32(0)
		if ng.Parent >= 0 {
			if ng.Parent >= i {
				return fmt.Errorf("fptree: snapshot node %d references later parent %d", i, ng.Parent)
			}
			parent = int32(ng.Parent + 1)
		}
		s := symbol.InternPair(ng.Attr, ng.Val)
		id := nt.newNode(parent, s, int32(ng.BranchID))
		nt.docs[id] = ng.Docs
		if ng.BranchID > nt.nextBranch {
			nt.nextBranch = ng.BranchID
		}
	}
	// Header chains are push-front in creation order, so the head is
	// the newest node: replaying pushes in ascending branch id rebuilds
	// every chain exactly.
	byBranch := make([]int32, 0, nt.NodeCount())
	for id := int32(1); id < int32(len(nt.syms)); id++ {
		byBranch = append(byBranch, id)
	}
	sort.Slice(byBranch, func(i, j int) bool { return nt.branch[byBranch[i]] < nt.branch[byBranch[j]] })
	for _, id := range byBranch {
		s := nt.syms[id]
		if head, ok := nt.header[s]; ok {
			nt.hnext[id] = head
		}
		nt.header[s] = id
	}
	nt.docCount = g.DocCount
	nt.maxDepth = g.MaxDepth
	for _, ac := range g.AttrCounts {
		id := symbol.InternAttr(ac.Attr)
		if int(id) >= len(nt.attrCounts) {
			nt.attrCounts = growInts(nt.attrCounts, int(id)+1)
		}
		nt.attrCounts[id] = ac.Count
	}
	*t = *nt
	t.prober.t = t
	return nil
}
