package fptree

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/document"
	"repro/internal/symbol"
)

// Snapshot / Restore implement the operator-state contract
// (internal/state.Snapshotter) for the FP-tree. The serialized form is
// symbol-aware: node labels and the attribute order travel as strings
// and are re-interned on restore, so a snapshot taken in one process
// (or symbol epoch) rebuilds an equivalent tree in another.
//
// The encoding preserves everything JoinPartners' traversal order
// depends on — attribute-group order, child order within a group, the
// per-node document id order, and branch ids (whose ascending order
// reconstructs the header chains) — so a restored tree yields
// byte-identical JoinPartners results.

// treeGob is the wire form of a Tree.
type treeGob struct {
	Attrs      []string  // global attribute order, rank order
	Nodes      []nodeGob // pre-order: parents precede children, sibling order preserved
	DocCount   int
	MaxDepth   int
	AttrCounts []attrCountGob // sorted by attribute name
}

// nodeGob is the wire form of one tree node.
type nodeGob struct {
	Parent   int // index into Nodes; -1 = child of the root
	Attr     string
	Val      string
	BranchID int
	Docs     []uint64
}

type attrCountGob struct {
	Attr  string
	Count int
}

// Snapshot writes the tree's complete state to w.
func (t *Tree) Snapshot(w io.Writer) error {
	g := treeGob{
		Attrs:    append([]string(nil), t.order.Attrs()...),
		DocCount: t.docCount,
		MaxDepth: t.maxDepth,
	}
	g.Nodes = make([]nodeGob, 0, t.nodeCount)
	var walk func(n *node, parentIdx int)
	walk = func(n *node, parentIdx int) {
		idx := len(g.Nodes)
		g.Nodes = append(g.Nodes, nodeGob{
			Parent:   parentIdx,
			Attr:     n.pair.Attr,
			Val:      n.pair.Val,
			BranchID: n.branchID,
			Docs:     n.docs,
		})
		for _, grp := range n.groups {
			for _, c := range grp.all {
				walk(c, idx)
			}
		}
	}
	for _, grp := range t.root.groups {
		for _, c := range grp.all {
			walk(c, -1)
		}
	}
	// Attribute counts keyed by name (IDs are epoch-local), sorted so
	// the snapshot bytes are deterministic.
	for id, cnt := range t.attrCounts {
		if cnt != 0 {
			g.AttrCounts = append(g.AttrCounts, attrCountGob{Attr: symbol.AttrString(symbol.ID(id)), Count: cnt})
		}
	}
	sort.Slice(g.AttrCounts, func(i, j int) bool { return g.AttrCounts[i].Attr < g.AttrCounts[j].Attr })
	return gob.NewEncoder(w).Encode(g)
}

// Restore rebuilds the tree from a Snapshot stream, replacing all
// current contents. Symbols are re-interned under the current epoch.
func (t *Tree) Restore(r io.Reader) error {
	var g treeGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return fmt.Errorf("fptree: decode snapshot: %w", err)
	}
	order := EmptyOrder()
	for _, a := range g.Attrs {
		order.register(a)
	}
	*t = Tree{
		order:    order,
		root:     &node{},
		header:   make(map[symbol.Pair]*node),
		symEpoch: symbol.Epoch(),
		docCount: g.DocCount,
		maxDepth: g.MaxDepth,
	}
	nodes := make([]*node, len(g.Nodes))
	for i, ng := range g.Nodes {
		parent := t.root
		if ng.Parent >= 0 {
			if ng.Parent >= i {
				return fmt.Errorf("fptree: snapshot node %d references later parent %d", i, ng.Parent)
			}
			parent = nodes[ng.Parent]
		}
		s := symbol.InternPair(ng.Attr, ng.Val)
		n := &node{
			pair:     document.Pair{Attr: ng.Attr, Val: ng.Val},
			sym:      s,
			parent:   parent,
			depth:    parent.depth + 1,
			branchID: ng.BranchID,
			docs:     ng.Docs,
		}
		parent.addChild(s, n)
		nodes[i] = n
		t.nodeCount++
		if n.branchID > t.nextBranch {
			t.nextBranch = n.branchID
		}
	}
	// Header chains are push-front in creation order, so the head is
	// the newest node: replaying pushes in ascending branch id rebuilds
	// every chain exactly.
	byBranch := append([]*node(nil), nodes...)
	sort.Slice(byBranch, func(i, j int) bool { return byBranch[i].branchID < byBranch[j].branchID })
	for _, n := range byBranch {
		n.next = t.header[n.sym]
		t.header[n.sym] = n
	}
	for _, ac := range g.AttrCounts {
		id := symbol.InternAttr(ac.Attr)
		if int(id) >= len(t.attrCounts) {
			t.attrCounts = growInts(t.attrCounts, int(id)+1)
		}
		t.attrCounts[id] = ac.Count
	}
	return nil
}
