package fptree

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"repro/internal/document"
	"repro/internal/state"
	"repro/internal/symbol"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the testdata golden snapshots")

// snapshotRoundTrip snapshots src and restores it into a fresh tree.
func snapshotRoundTrip(t *testing.T, src *Tree) *Tree {
	t.Helper()
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	dst := New(nil)
	if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	return dst
}

// assertTreesEquivalent checks that two trees agree on every
// observable: structural stats, the attribute order, header chains,
// the rendered dump, and — most importantly — byte-identical
// JoinPartners results for every probe document.
func assertTreesEquivalent(t *testing.T, orig, restored *Tree, probes []document.Document) {
	t.Helper()
	if orig.DocCount() != restored.DocCount() {
		t.Fatalf("DocCount %d != %d", restored.DocCount(), orig.DocCount())
	}
	if orig.NodeCount() != restored.NodeCount() {
		t.Fatalf("NodeCount %d != %d", restored.NodeCount(), orig.NodeCount())
	}
	if orig.MaxDepth() != restored.MaxDepth() {
		t.Fatalf("MaxDepth %d != %d", restored.MaxDepth(), orig.MaxDepth())
	}
	if orig.NumUbiquitous() != restored.NumUbiquitous() {
		t.Fatalf("NumUbiquitous %d != %d", restored.NumUbiquitous(), orig.NumUbiquitous())
	}
	if got, want := restored.Order().Attrs(), orig.Order().Attrs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("order %v != %v", got, want)
	}
	if got, want := restored.Dump(), orig.Dump(); got != want {
		t.Fatalf("dump mismatch:\n--- restored\n%s\n--- original\n%s", got, want)
	}
	for _, p := range probes {
		want := append([]uint64(nil), orig.JoinPartners(p)...)
		got := restored.JoinPartners(p)
		// Order matters: the restored traversal must be byte-identical,
		// not merely set-equal.
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("JoinPartners(doc %d) = %v, want %v", p.ID, got, want)
		}
	}
}

func TestTreeSnapshotRoundTrip(t *testing.T) {
	docs := tableIDocs()
	tree := Build(docs)
	restored := snapshotRoundTrip(t, tree)
	assertTreesEquivalent(t, tree, restored, docs)

	// The restored tree must keep absorbing inserts with consistent
	// branch ids and header chains.
	extra := document.New(99, []document.Pair{
		{Attr: "b", Val: document.EncodeInt(7)},
		{Attr: "c", Val: document.EncodeInt(9)},
	})
	tree.Insert(extra)
	restored.Insert(extra)
	assertTreesEquivalent(t, tree, restored, append(docs, extra))
}

func TestTreeSnapshotEmpty(t *testing.T) {
	tree := New(nil)
	restored := snapshotRoundTrip(t, tree)
	assertTreesEquivalent(t, tree, restored, tableIDocs())
}

// TestTreeSnapshotGolden pins the snapshot to a deterministic byte
// encoding: two snapshots of equal trees are identical, and the
// envelope helper round-trips through the state contract.
func TestTreeSnapshotGolden(t *testing.T) {
	build := func() *Tree { return Build(tableIDocs()) }
	var a, b bytes.Buffer
	if err := build().Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot bytes are not deterministic for identical trees")
	}

	enc, err := state.Encode("fptree", build())
	if err != nil {
		t.Fatal(err)
	}
	restored := New(nil)
	if err := state.Decode("fptree", enc, restored); err != nil {
		t.Fatal(err)
	}
	assertTreesEquivalent(t, build(), restored, tableIDocs())
}

// TestTreeSnapshotGoldenFile pins the on-disk snapshot bytes across
// layout changes: the committed golden was written by the pre-arena
// pointer tree, so this test proves old checkpoints restore into the
// flat layout — and that the arena still emits the identical byte
// stream. Regenerate with `go test -run GoldenFile -update-golden`.
func TestTreeSnapshotGoldenFile(t *testing.T) {
	const path = "testdata/tableI.fptree.snapshot"
	tree := Build(tableIDocs())
	var buf bytes.Buffer
	if err := tree.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("snapshot bytes drifted from golden (%d vs %d bytes); rerun with -update-golden only if the format change is intentional",
			buf.Len(), len(golden))
	}
	restored := New(nil)
	if err := restored.Restore(bytes.NewReader(golden)); err != nil {
		t.Fatalf("restore golden: %v", err)
	}
	assertTreesEquivalent(t, tree, restored, tableIDocs())
}

// TestTreeSnapshotSurvivesEpochReset proves the snapshot is
// symbol-aware: restoring after a global symbol.Reset re-interns every
// label under the new epoch and still answers probes identically.
func TestTreeSnapshotSurvivesEpochReset(t *testing.T) {
	docs := tableIDocs()
	tree := Build(docs)
	var buf bytes.Buffer
	if err := tree.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	wantDump := tree.Dump()
	var wantPartners [][]uint64
	for _, d := range docs {
		wantPartners = append(wantPartners, append([]uint64(nil), tree.JoinPartners(d)...))
	}

	symbol.Reset()

	restored := New(nil)
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore after epoch reset: %v", err)
	}
	if got := restored.Dump(); got != wantDump {
		t.Fatalf("dump after epoch reset:\n%s\nwant:\n%s", got, wantDump)
	}
	// Probes must be rebuilt after Reset: their interned symbols are
	// stale. Re-parsing through document.New re-interns them.
	for i, d := range docs {
		fresh := document.New(d.ID, d.Pairs())
		got := restored.JoinPartners(fresh)
		if !reflect.DeepEqual(got, wantPartners[i]) && !(len(got) == 0 && len(wantPartners[i]) == 0) {
			t.Fatalf("JoinPartners(doc %d) after epoch reset = %v, want %v", d.ID, got, wantPartners[i])
		}
	}
}

func TestTreeRestoreRejectsGarbage(t *testing.T) {
	tree := New(nil)
	if err := tree.Restore(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage restore accepted")
	}
}

// randomDocs builds n random documents over a small attribute/value
// space so prefix sharing, header chains and ubiquitous attributes all
// occur.
func randomDocs(rng *rand.Rand, n int) []document.Document {
	attrs := []string{"a", "b", "c", "d", "e", "f"}
	docs := make([]document.Document, 0, n)
	for i := 0; i < n; i++ {
		var ps []document.Pair
		for _, a := range attrs {
			if rng.Intn(3) > 0 {
				ps = append(ps, document.Pair{Attr: a, Val: document.EncodeInt(int64(rng.Intn(4)))})
			}
		}
		docs = append(docs, document.New(uint64(i+1), ps))
	}
	return docs
}

// FuzzSnapshotRestore feeds randomized document batches through a
// snapshot → restore cycle and requires byte-identical JoinPartners
// output from the restored tree for every probe.
func FuzzSnapshotRestore(f *testing.F) {
	f.Add(int64(1), uint8(8))
	f.Add(int64(42), uint8(20))
	f.Add(int64(7), uint8(1))
	f.Add(int64(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		rng := rand.New(rand.NewSource(seed))
		docs := randomDocs(rng, int(n)%48)
		tree := Build(docs)
		var buf bytes.Buffer
		if err := tree.Snapshot(&buf); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		restored := New(nil)
		if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("restore: %v", err)
		}
		probes := append(append([]document.Document(nil), docs...), randomDocs(rng, 8)...)
		for _, p := range probes {
			want := append([]uint64(nil), tree.JoinPartners(p)...)
			got := restored.JoinPartners(p)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d n=%d: JoinPartners(%d) = %v, want %v", seed, n, p.ID, got, want)
			}
		}
	})
}
