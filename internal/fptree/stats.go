package fptree

import (
	"fmt"
	"strings"
)

// TreeStats quantifies the compactness the paper attributes to the
// FP-tree ("compactly storing the documents", Sec. V): how much prefix
// sharing the global attribute ordering achieved and how the tree is
// shaped.
type TreeStats struct {
	// Documents and Nodes sizes.
	Documents int
	Nodes     int
	// Pairs is the total number of attribute-value pairs inserted
	// (document sizes summed).
	Pairs int
	// SharingFactor is Pairs / Nodes: how many inserted pairs each
	// tree node represents on average. 1.0 means no sharing at all;
	// higher is more compact.
	SharingFactor float64
	// MaxDepth is the longest root-to-leaf path.
	MaxDepth int
	// AvgBranching is the mean child count over internal nodes.
	AvgBranching float64
	// DepthHistogram counts nodes per depth (index 0 = depth 1).
	DepthHistogram []int
	// UbiquitousAttrs is the fast-path prefix length (paper's num).
	UbiquitousAttrs int
}

// Stats summarises the tree's shape. The flat arena makes this a
// single linear pass over the node arrays — no walk at all.
func (t *Tree) Stats() TreeStats {
	s := TreeStats{
		Documents:       t.docCount,
		Nodes:           t.NodeCount(),
		MaxDepth:        t.maxDepth,
		UbiquitousAttrs: t.NumUbiquitous(),
	}
	for _, c := range t.attrCounts {
		s.Pairs += c
	}
	if s.Nodes > 0 {
		s.SharingFactor = float64(s.Pairs) / float64(s.Nodes)
	}
	if t.maxDepth > 0 {
		s.DepthHistogram = make([]int, t.maxDepth)
	}
	internal, children := 0, 0
	for n := range t.kids {
		if k := len(t.kids[n]); k > 0 {
			internal++
			children += k
		}
		if d := t.depths[n]; d > 0 {
			s.DepthHistogram[d-1]++
		}
	}
	if internal > 0 {
		s.AvgBranching = float64(children) / float64(internal)
	}
	return s
}

// String renders the stats for diagnostics.
func (s TreeStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "docs=%d pairs=%d nodes=%d sharing=%.2fx depth=%d branching=%.2f ubiquitous=%d",
		s.Documents, s.Pairs, s.Nodes, s.SharingFactor, s.MaxDepth, s.AvgBranching, s.UbiquitousAttrs)
	return b.String()
}
