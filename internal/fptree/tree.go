package fptree

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/document"
	"repro/internal/symbol"
)

// The FP-tree is stored as a flat, slice-backed arena instead of a
// pointer-linked node graph (ROADMAP item 2; Shahvarani & Jacobsen's
// multicore index-join is the blueprint). Node fields live in parallel
// structs-of-arrays indexed by a dense node ID (0 is the root), so a
// probe walks contiguous memory instead of chasing heap pointers:
//
//	syms[id]    the node's attribute-value symbol (packed uint64)
//	parents[id] parent node ID (-1 for the root)
//	depths[id]  root distance
//	branch[id]  unique branch id (creation order; survives snapshots)
//	docs[id]    document ids whose reordered pair sequence ends here
//	kids[id]    child edges, each carrying the child's label symbol
//	            inline next to its node ID so pruning scans one
//	            contiguous span without touching the child nodes.
//	            Edges are grouped by attribute: children sharing an
//	            attribute form one contiguous run, runs ordered by
//	            first appearance — the same grouping the pointer tree
//	            kept in its attrGroup lists
//	hnext[id]   header-table chain of equally labeled nodes (-1 ends)
//
// Node labels are stored only as interned symbols; the canonical
// strings (for Dump, DocPath and snapshots) are resolved back through
// the symbol tables on demand instead of being duplicated per node.
//
// Exact-label child lookup scans the span when the fanout is small and
// otherwise goes through one tree-wide hash map keyed by
// (parent, symbol.Pair) — the already-dense packed pair — replacing the
// per-node group scan plus per-group value map of the pointer layout.
// Traversal no longer recurses: Prober walks an explicit frame stack,
// so degenerate chain-shaped trees cannot grow the goroutine stack.
type Tree struct {
	order *Order

	// Flat node arena; index 0 is the root.
	syms    []symbol.Pair
	parents []int32
	depths  []int32
	branch  []int32
	docs    [][]uint64
	kids    [][]edge
	hnext   []int32

	childIdx map[childKey]int32
	header   map[symbol.Pair]int32

	docCount   int
	attrCounts []int // documents containing each attribute, indexed by attribute symbol ID
	nextBranch int
	maxDepth   int

	// symEpoch is the symbol-table epoch the tree's IDs belong to. A
	// symbol.Reset under a live tree would silently re-key everything,
	// so the tree recaptures the epoch only while empty and panics
	// otherwise (Reset is documented quiesce-only).
	symEpoch uint64

	// Cached NumUbiquitous; invalidated by Insert and Reset.
	numUbiq   int
	ubiqValid bool

	// prober is the tree-owned probe context backing the serial
	// JoinPartners API; concurrent probers come from NewProber.
	prober Prober

	// Insert scratch: packed (rank, position) sort keys, reused.
	arrKeys []uint64

	// Scratch backing JoinPartners' caller-owned copies.
	scratch []uint64
}

// edge is one child link: the child's label symbol stored inline so
// span scans never dereference the child, plus the child's node ID.
type edge struct {
	sym symbol.Pair
	id  int32
}

// childKey addresses one edge of the tree: the parent's dense node ID
// plus the child's packed label symbol.
type childKey struct {
	parent int32
	sym    symbol.Pair
}

// spanScanMax is the fanout up to which exact-child lookup scans the
// contiguous edge span instead of hashing into the tree-wide child
// index; small spans fit in one or two cache lines.
const spanScanMax = 8

// New creates an empty FP-tree using the given global attribute order.
func New(order *Order) *Tree {
	if order == nil {
		order = EmptyOrder()
	}
	t := &Tree{
		order:    order,
		childIdx: make(map[childKey]int32),
		header:   make(map[symbol.Pair]int32),
		symEpoch: symbol.Epoch(),
	}
	t.initRoot()
	t.prober.t = t
	t.prober.epoch = t.symEpoch
	return t
}

// initRoot seeds the arena with the root node at index 0, reusing any
// capacity the slices already hold.
func (t *Tree) initRoot() {
	t.syms = append(t.syms[:0], 0)
	t.parents = append(t.parents[:0], -1)
	t.depths = append(t.depths[:0], 0)
	t.branch = append(t.branch[:0], 0)
	t.docs = append(t.docs[:0], nil)
	t.kids = append(t.kids[:0], nil)
	t.hnext = append(t.hnext[:0], -1)
}

// Build constructs a tree over a whole batch, deriving the attribute
// ordering from the batch itself (paper Table I / Fig. 4 procedure).
func Build(docs []document.Document) *Tree {
	t := New(NewOrderFromDocs(docs))
	for _, d := range docs {
		t.Insert(d)
	}
	return t
}

// Order exposes the tree's attribute ordering.
func (t *Tree) Order() *Order { return t.order }

// DocCount reports the number of inserted documents.
func (t *Tree) DocCount() int { return t.docCount }

// NodeCount reports the number of nodes excluding the root.
func (t *Tree) NodeCount() int { return len(t.syms) - 1 }

// MaxDepth reports the longest root-to-leaf path length.
func (t *Tree) MaxDepth() int { return t.maxDepth }

// MemBytes estimates the tree's resident heap footprint in O(1) from
// the arena counters: every node costs its arena slots (label symbol,
// parent/depth/branch/hnext int32s, docs and kids slice headers), one
// incoming edge in its parent's span, and one child-index map entry;
// each stored document ID costs one uint64 at its terminal node; the
// header table costs one map entry per distinct label. The constants
// approximate Go's 64-bit layout — the memory governor needs a stable
// estimate it can read on every admission, not allocator truth.
func (t *Tree) MemBytes() int64 {
	const (
		nodeBytes   = 8 + 4 + 4 + 4 + 4 + 24 + 24 // syms+parents+depths+branch+hnext+docs hdr+kids hdr
		edgeBytes   = 16                          // one edge in the parent's span (sym + id, padded)
		childIdxEnt = 48                          // childKey + int32 value + map bucket overhead
		headerEnt   = 40                          // symbol.Pair key + int32 value + bucket overhead
		docIDBytes  = 8
	)
	nodes := int64(len(t.syms)) // root included: it owns arena slots too
	n := nodes * (nodeBytes + edgeBytes + childIdxEnt)
	n += int64(t.docCount) * docIDBytes
	n += int64(len(t.header)) * headerEnt
	n += int64(len(t.attrCounts)) * 8
	return n
}

// pairOf resolves a node's canonical string pair from its symbol.
func (t *Tree) pairOf(n int32) document.Pair {
	a, v := symbol.PairStrings(t.syms[n])
	return document.Pair{Attr: a, Val: v}
}

// docSyms returns d's pair symbols under the current epoch, verifying
// that the tree's own indexes are not stale. The epoch can legally move
// only while the tree is empty (symbol.Reset is quiesce-only); all
// per-ID state is restarted then.
func (t *Tree) docSyms(d document.Document) []symbol.Pair {
	if e := symbol.Epoch(); e != t.symEpoch {
		if t.docCount != 0 || t.NodeCount() != 0 {
			panic("fptree: symbol epoch changed under a live tree (symbol.Reset is quiesce-only)")
		}
		t.symEpoch = e
		t.attrCounts = nil
		t.prober.dropScratch()
		t.prober.epoch = e
	}
	t.order.sync()
	return d.InternedPairs()
}

// arrange fills t.arrKeys with packed (rank<<32 | position) sort keys
// for d's pairs and sorts them, yielding the global-order arrangement
// as a permutation over the document's own pair slice — no physical
// reordering, no reflection in the sort. Ranks are unique per
// attribute, so the trailing position bits never decide the order
// between distinct attributes.
func (t *Tree) arrange(syms []symbol.Pair, pairs []document.Pair) {
	t.arrKeys = t.arrKeys[:0]
	for k := range syms {
		rank := uint64(uint32(t.order.rankOfSym(syms[k].Attr(), pairs[k].Attr)))
		t.arrKeys = append(t.arrKeys, rank<<32|uint64(k))
	}
	slices.Sort(t.arrKeys)
}

// child returns the node labeled s under parent, or -1. Small spans
// are scanned in place; larger ones hit the tree-wide child index.
func (t *Tree) child(parent int32, s symbol.Pair) int32 {
	ks := t.kids[parent]
	if len(ks) <= spanScanMax {
		for i := range ks {
			if ks[i].sym == s {
				return ks[i].id
			}
		}
		return -1
	}
	if id, ok := t.childIdx[childKey{parent, s}]; ok {
		return id
	}
	return -1
}

// addChild appends a fresh node labeled s under parent with the next
// branch id and chains it into the header table (push-front, so the
// head is always the newest equally-labeled node).
func (t *Tree) addChild(parent int32, s symbol.Pair) int32 {
	t.nextBranch++
	id := t.newNode(parent, s, int32(t.nextBranch))
	if head, ok := t.header[s]; ok {
		t.hnext[id] = head
	}
	t.header[s] = id
	return id
}

// newNode appends a node to the arena, keeping the parent's edge span
// grouped by attribute: the new child lands at the end of its
// attribute's run when one exists, or opens a new run at the end
// (first-appearance group order, insertion order within). The header
// chain is left to the caller (Insert chains in creation order; Restore
// replays chains by branch id).
func (t *Tree) newNode(parent int32, s symbol.Pair, branchID int32) int32 {
	id := int32(len(t.syms))
	t.syms = append(t.syms, s)
	t.parents = append(t.parents, parent)
	depth := t.depths[parent] + 1
	t.depths = append(t.depths, depth)
	t.branch = append(t.branch, branchID)
	t.docs = append(t.docs, nil)
	t.kids = append(t.kids, nil)
	t.hnext = append(t.hnext, -1)
	t.childIdx[childKey{parent, s}] = id

	// Splice into the parent's grouped edge span. Scanning from the
	// back finds the run end cheaply in the common case where the
	// node's largest group is also its newest.
	ks := t.kids[parent]
	attr := s.Attr()
	insertAt := -1
	for i := len(ks) - 1; i >= 0; i-- {
		if ks[i].sym.Attr() == attr {
			insertAt = i + 1
			break
		}
	}
	e := edge{sym: s, id: id}
	if insertAt < 0 || insertAt == len(ks) {
		ks = append(ks, e)
	} else {
		ks = append(ks, edge{})
		copy(ks[insertAt+1:], ks[insertAt:])
		ks[insertAt] = e
	}
	t.kids[parent] = ks

	if int(depth) > t.maxDepth {
		t.maxDepth = int(depth)
	}
	return id
}

// Insert adds a document to the tree: its pairs are arranged by the
// global ordering, the shared prefix path is reused, new nodes extend
// it, and the document id is recorded at the terminal node.
func (t *Tree) Insert(d document.Document) {
	syms := t.docSyms(d)
	t.arrange(syms, d.Pairs())
	cur := int32(0)
	for _, key := range t.arrKeys {
		s := syms[uint32(key)]
		child := t.child(cur, s)
		if child < 0 {
			child = t.addChild(cur, s)
		}
		cur = child
	}
	t.docs[cur] = append(t.docs[cur], d.ID)
	t.docCount++
	for _, s := range syms {
		a := s.Attr()
		if int(a) >= len(t.attrCounts) {
			t.attrCounts = growInts(t.attrCounts, int(a)+1)
		}
		t.attrCounts[a]++
	}
	t.ubiqValid = false
}

func growInts(s []int, n int) []int {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// NumUbiquitous returns the number of leading attributes of the global
// order that are present in every document currently stored. These
// occupy the first levels of the tree and enable the FPTreeJoin fast
// path (paper Sec. V-B). The count is cached between inserts.
func (t *Tree) NumUbiquitous() int {
	if t.ubiqValid {
		return t.numUbiq
	}
	n := 0
	if t.docCount > 0 {
		t.order.sync()
		for j := 0; j < t.order.Len(); j++ {
			a := t.order.idAt(j)
			if int(a) >= len(t.attrCounts) || t.attrCounts[a] != t.docCount {
				break
			}
			n++
		}
	}
	t.numUbiq, t.ubiqValid = n, true
	return n
}

// PrepareProbes readies the tree for concurrent read-only probing: it
// verifies the symbol epoch, syncs the attribute order's ID indexes and
// fills the NumUbiquitous cache — every lazily computed piece of state
// a probe would otherwise write. After PrepareProbes, any number of
// Probers (see NewProber) may call JoinPartnersAppend concurrently, as
// long as no Insert, Reset or Restore runs until they finish.
func (t *Tree) PrepareProbes() {
	if e := symbol.Epoch(); e != t.symEpoch {
		if t.docCount != 0 || t.NodeCount() != 0 {
			panic("fptree: symbol epoch changed under a live tree (symbol.Reset is quiesce-only)")
		}
		t.symEpoch = e
		t.attrCounts = nil
		t.prober.dropScratch()
		t.prober.epoch = e
	}
	t.order.sync()
	t.NumUbiquitous()
}

// JoinPartners implements FPTreeJoin (Algorithm 2): it returns the ids
// of every stored document joinable with d. The first NumUbiquitous
// levels are navigated directly via the equally-labeled child — all
// sibling branches conflict with d on a shared attribute and are pruned
// wholesale — after which the traversal (Algorithm 3) walks the
// remaining subtree, pruning on conflicts and collecting document ids
// once at least one attribute-value pair is shared.
//
// The returned slice is freshly allocated and owned by the caller; it
// survives subsequent probes. Hot paths that reuse a buffer call
// JoinPartnersAppend instead.
func (t *Tree) JoinPartners(d document.Document) []uint64 {
	t.scratch = t.JoinPartnersAppend(t.scratch[:0], d)
	if len(t.scratch) == 0 {
		return nil
	}
	return append([]uint64(nil), t.scratch...)
}

// JoinPartnersAppend is JoinPartners appending into dst, for callers
// that manage their own result buffers. It probes through the tree's
// own serial Prober; concurrent callers use NewProber.
func (t *Tree) JoinPartnersAppend(dst []uint64, d document.Document) []uint64 {
	if t.docCount == 0 {
		return dst
	}
	syms := t.docSyms(d)
	return t.prober.joinPartners(dst, d.ID, syms)
}

func appendExcluding(dst []uint64, src []uint64, exclude uint64) []uint64 {
	if need := len(dst) + len(src); need > cap(dst) {
		grown := make([]uint64, len(dst), need+need/2)
		copy(grown, dst)
		dst = grown
	}
	for _, id := range src {
		if id != exclude {
			dst = append(dst, id)
		}
	}
	return dst
}

// HeaderChainLen returns the number of nodes labeled with p, following
// the header-table chain (used by tests and diagnostics).
func (t *Tree) HeaderChainLen(p document.Pair) int {
	s, ok := symbol.LookupPair(p.Attr, p.Val)
	if !ok {
		return 0
	}
	n := 0
	cur, ok := t.header[s]
	if !ok {
		return 0
	}
	for ; cur >= 0; cur = t.hnext[cur] {
		n++
	}
	return n
}

// DocPath returns the reordered pair sequence of the branch holding
// document id, or nil if the id is not stored (diagnostic; linear in
// tree size). The arena makes the search a flat scan — no walk at all.
func (t *Tree) DocPath(id uint64) []document.Pair {
	found := int32(-1)
	for n := 1; n < len(t.docs) && found < 0; n++ {
		for _, d := range t.docs[n] {
			if d == id {
				found = int32(n)
				break
			}
		}
	}
	if found < 0 {
		return nil
	}
	path := make([]document.Pair, 0, t.depths[found])
	for cur := found; cur > 0; cur = t.parents[cur] {
		path = append(path, t.pairOf(cur))
	}
	// Reverse to root-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Dump renders the tree structure for debugging, one node per line.
// The walk is iterative; output is identical to the pointer layout's
// recursive dump.
func (t *Tree) Dump() string {
	var b strings.Builder
	b.WriteString("root\n")
	type frame struct {
		node   int32
		indent int
	}
	var stack []frame
	ks := t.kids[0]
	for i := len(ks) - 1; i >= 0; i-- {
		stack = append(stack, frame{ks[i].id, 1})
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b.WriteString(strings.Repeat("  ", f.indent))
		fmt.Fprintf(&b, "%s docs=%v branch=%d\n", t.pairOf(f.node), t.docs[f.node], t.branch[f.node])
		ks := t.kids[f.node]
		for i := len(ks) - 1; i >= 0; i-- {
			stack = append(stack, frame{ks[i].id, f.indent + 1})
		}
	}
	return b.String()
}

// Reset evicts the entire tree, matching the paper's tumbling-window
// semantics ("evict the entire tree once the window tumbles"), while
// keeping the attribute ordering — and bounded scratch buffers — in
// place. Arena slices are truncated but keep their capacity (bounded by
// the largest window seen); oversized probe scratch is released so a
// long-lived joiner does not leak scratch across windows and symbol
// epochs.
func (t *Tree) Reset() {
	t.initRoot()
	clear(t.childIdx)
	clear(t.header)
	// Truncate rather than zero: the slice is indexed by global
	// attribute symbol ID, so its length tracks the whole process's
	// symbol space, not this window. Keeping it full-length would give
	// an empty tree a permanent MemBytes floor the memory governor can
	// never spill or tumble away. Entries regrow on demand at insert.
	t.attrCounts = t.attrCounts[:0]
	t.docCount = 0
	t.nextBranch = 0
	t.maxDepth = 0
	t.ubiqValid = false
	t.prober.releaseOversized()
	if cap(t.scratch) > maxRetainedScratch {
		t.scratch = nil
	}
	// Stale probe marks cannot collide after the tree refills: a mark
	// only matches the current stamp, which is bumped on every probe.
}
