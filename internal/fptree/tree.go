package fptree

import (
	"fmt"
	"strings"

	"repro/internal/document"
)

// node is a single FP-tree node: an attribute-value pair label, the
// children grouped by attribute, the ids of the documents whose full
// (reordered) pair sequence terminates at this node, and the header
// chain link connecting equally-labeled nodes (paper Sec. V-A).
//
// Children are grouped by attribute because that is how FPTreeJoin
// prunes: when the probing document carries a child's attribute, every
// sibling with a different value of that attribute conflicts and the
// single equally-labeled child is the only survivor — an O(1) lookup
// instead of a scan. Only the children whose attribute is absent from
// the probe must all be explored. This generalises the paper's
// ubiquitous-attribute fast path (Sec. V-B) to every level of the tree.
type node struct {
	pair     document.Pair
	parent   *node
	groups   []*attrGroup
	docs     []uint64
	next     *node // header-table chain of equally labeled nodes
	branchID int   // unique id of the root-to-node branch
	depth    int
}

// attrGroup holds all children of one node sharing an attribute.
type attrGroup struct {
	attr  string
	byVal map[string]*node
	all   []*node
}

func (n *node) group(attr string) *attrGroup {
	for _, g := range n.groups {
		if g.attr == attr {
			return g
		}
	}
	return nil
}

// child returns the child labeled with p, or nil.
func (n *node) child(p document.Pair) *node {
	if g := n.group(p.Attr); g != nil {
		return g.byVal[p.Val]
	}
	return nil
}

// addChild links a new child labeled p.
func (n *node) addChild(p document.Pair, c *node) {
	g := n.group(p.Attr)
	if g == nil {
		g = &attrGroup{attr: p.Attr, byVal: make(map[string]*node)}
		n.groups = append(n.groups, g)
	}
	g.byVal[p.Val] = c
	g.all = append(g.all, c)
}

// Tree is the FP-tree used for local join computation. It is not safe
// for concurrent use; each Joiner task owns one tree per window.
type Tree struct {
	order  *Order
	root   *node
	header map[document.Pair]*node

	docCount   int
	nodeCount  int
	attrCounts map[string]int // documents containing each attribute
	nextBranch int
	maxDepth   int
}

// New creates an empty FP-tree using the given global attribute order.
func New(order *Order) *Tree {
	if order == nil {
		order = EmptyOrder()
	}
	return &Tree{
		order:      order,
		root:       &node{},
		header:     make(map[document.Pair]*node),
		attrCounts: make(map[string]int),
	}
}

// Build constructs a tree over a whole batch, deriving the attribute
// ordering from the batch itself (paper Table I / Fig. 4 procedure).
func Build(docs []document.Document) *Tree {
	t := New(NewOrderFromDocs(docs))
	for _, d := range docs {
		t.Insert(d)
	}
	return t
}

// Order exposes the tree's attribute ordering.
func (t *Tree) Order() *Order { return t.order }

// DocCount reports the number of inserted documents.
func (t *Tree) DocCount() int { return t.docCount }

// NodeCount reports the number of nodes excluding the root.
func (t *Tree) NodeCount() int { return t.nodeCount }

// MaxDepth reports the longest root-to-leaf path length.
func (t *Tree) MaxDepth() int { return t.maxDepth }

// Insert adds a document to the tree: its pairs are arranged by the
// global ordering, the shared prefix path is reused, new nodes extend
// it, and the document id is recorded at the terminal node.
func (t *Tree) Insert(d document.Document) {
	arranged := t.order.Arrange(d)
	cur := t.root
	for _, p := range arranged {
		child := cur.child(p)
		if child == nil {
			child = &node{
				pair:   p,
				parent: cur,
				depth:  cur.depth + 1,
			}
			t.nextBranch++
			child.branchID = t.nextBranch
			cur.addChild(p, child)
			t.nodeCount++
			// Chain into the header table.
			child.next = t.header[p]
			t.header[p] = child
			if child.depth > t.maxDepth {
				t.maxDepth = child.depth
			}
		}
		cur = child
	}
	cur.docs = append(cur.docs, d.ID)
	t.docCount++
	for _, p := range arranged {
		t.attrCounts[p.Attr]++
	}
}

// NumUbiquitous returns the number of leading attributes of the global
// order that are present in every document currently stored. These
// occupy the first levels of the tree and enable the FPTreeJoin fast
// path (paper Sec. V-B).
func (t *Tree) NumUbiquitous() int {
	if t.docCount == 0 {
		return 0
	}
	n := 0
	for _, a := range t.order.Attrs() {
		if t.attrCounts[a] != t.docCount {
			break
		}
		n++
	}
	return n
}

// JoinPartners implements FPTreeJoin (Algorithm 2): it returns the ids
// of every stored document joinable with d. The first NumUbiquitous
// levels are navigated directly via the equally-labeled child — all
// sibling branches conflict with d on a shared attribute and are pruned
// wholesale — after which the traversal (Algorithm 3) walks the
// remaining subtree, pruning on conflicts and collecting document ids
// once at least one attribute-value pair is shared.
func (t *Tree) JoinPartners(d document.Document) []uint64 {
	var result []uint64
	num := t.NumUbiquitous()
	cur := t.root
	shared := 0
	attrs := t.order.Attrs()
	for j := 0; j < num; j++ {
		v, ok := d.Get(attrs[j])
		if !ok {
			// The probing document lacks this (tree-)ubiquitous
			// attribute: no conflict is possible on it, but all
			// children must be explored; fall back to the general
			// traversal from the current node.
			break
		}
		child := cur.child(document.Pair{Attr: attrs[j], Val: v})
		if child == nil {
			// Every stored document carries this attribute with some
			// other value: all of them conflict with d.
			return result
		}
		cur = child
		shared++
		result = appendExcluding(result, cur.docs, d.ID)
	}
	// Probe lookups below are by attribute; a flat map beats repeated
	// binary searches over the document's sorted pairs.
	probe := make(map[string]string, d.Len())
	for _, p := range d.Pairs() {
		probe[p.Attr] = p.Val
	}
	result = t.traverse(cur, probe, d.ID, shared, result)
	return result
}

// traverse is Algorithm 3: depth-first navigation that prunes a child
// (and its whole subtree) when the child's attribute is present in the
// probe with a different value, and collects document ids stored at
// nodes whose branch shares at least one pair with the probe. Grouping
// children by attribute turns the pruning into a direct lookup of the
// single non-conflicting child.
func (t *Tree) traverse(n *node, probe map[string]string, excludeID uint64, shared int, result []uint64) []uint64 {
	for _, g := range n.groups {
		if v, ok := probe[g.attr]; ok {
			// All children of this group with a different value
			// conflict; only the equally-labeled child survives.
			if child := g.byVal[v]; child != nil {
				result = t.collectChild(child, probe, excludeID, shared+1, result)
			}
			continue
		}
		// Attribute absent from the probe: no conflict possible,
		// every child must be explored.
		for _, child := range g.all {
			result = t.collectChild(child, probe, excludeID, shared, result)
		}
	}
	return result
}

func (t *Tree) collectChild(child *node, probe map[string]string, excludeID uint64, shared int, result []uint64) []uint64 {
	if shared > 0 {
		result = appendExcluding(result, child.docs, excludeID)
	}
	return t.traverse(child, probe, excludeID, shared, result)
}

func appendExcluding(dst []uint64, src []uint64, exclude uint64) []uint64 {
	for _, id := range src {
		if id != exclude {
			dst = append(dst, id)
		}
	}
	return dst
}

// HeaderChainLen returns the number of nodes labeled with p, following
// the header-table chain (used by tests and diagnostics).
func (t *Tree) HeaderChainLen(p document.Pair) int {
	n := 0
	for cur := t.header[p]; cur != nil; cur = cur.next {
		n++
	}
	return n
}

// DocPath returns the reordered pair sequence of the branch holding
// document id, or nil if the id is not stored (diagnostic; linear in
// tree size).
func (t *Tree) DocPath(id uint64) []document.Pair {
	var found *node
	var walk func(n *node) bool
	walk = func(n *node) bool {
		for _, d := range n.docs {
			if d == id {
				found = n
				return true
			}
		}
		for _, g := range n.groups {
			for _, c := range g.all {
				if walk(c) {
					return true
				}
			}
		}
		return false
	}
	if !walk(t.root) {
		return nil
	}
	var path []document.Pair
	for cur := found; cur != nil && cur.parent != nil; cur = cur.parent {
		path = append(path, cur.pair)
	}
	// Reverse to root-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Dump renders the tree structure for debugging, one node per line.
func (t *Tree) Dump() string {
	var b strings.Builder
	var walk func(n *node, indent int)
	walk = func(n *node, indent int) {
		if n != t.root {
			b.WriteString(strings.Repeat("  ", indent))
			fmt.Fprintf(&b, "%s docs=%v branch=%d\n", n.pair, n.docs, n.branchID)
		}
		for _, g := range n.groups {
			for _, c := range g.all {
				walk(c, indent+1)
			}
		}
	}
	b.WriteString("root\n")
	walk(t.root, 0)
	return b.String()
}

// Reset evicts the entire tree, matching the paper's tumbling-window
// semantics ("evict the entire tree once the window tumbles"), while
// keeping the attribute ordering in place.
func (t *Tree) Reset() {
	t.root = &node{}
	t.header = make(map[document.Pair]*node)
	t.attrCounts = make(map[string]int)
	t.docCount = 0
	t.nodeCount = 0
	t.nextBranch = 0
	t.maxDepth = 0
}
