package fptree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/document"
	"repro/internal/symbol"
)

// node is a single FP-tree node: an attribute-value pair label, the
// children grouped by attribute, the ids of the documents whose full
// (reordered) pair sequence terminates at this node, and the header
// chain link connecting equally-labeled nodes (paper Sec. V-A).
//
// Children are grouped by attribute because that is how FPTreeJoin
// prunes: when the probing document carries a child's attribute, every
// sibling with a different value of that attribute conflicts and the
// single equally-labeled child is the only survivor — an O(1) lookup
// instead of a scan. Only the children whose attribute is absent from
// the probe must all be explored. This generalises the paper's
// ubiquitous-attribute fast path (Sec. V-B) to every level of the tree.
//
// Labels are stored twice: the canonical string pair for display and
// diagnostics, and the interned symbol pair the hot paths key on.
type node struct {
	pair     document.Pair
	sym      symbol.Pair
	parent   *node
	groups   []*attrGroup
	docs     []uint64
	next     *node // header-table chain of equally labeled nodes
	branchID int   // unique id of the root-to-node branch
	depth    int
}

// attrGroup holds all children of one node sharing an attribute.
type attrGroup struct {
	attr  symbol.ID
	byVal map[symbol.ID]*node
	all   []*node
}

func (n *node) group(attr symbol.ID) *attrGroup {
	for _, g := range n.groups {
		if g.attr == attr {
			return g
		}
	}
	return nil
}

// child returns the child labeled with the symbol pair s, or nil.
func (n *node) child(s symbol.Pair) *node {
	if g := n.group(s.Attr()); g != nil {
		return g.byVal[s.Val()]
	}
	return nil
}

// addChild links a new child labeled with p / its symbol s.
func (n *node) addChild(s symbol.Pair, c *node) {
	g := n.group(s.Attr())
	if g == nil {
		g = &attrGroup{attr: s.Attr(), byVal: make(map[symbol.ID]*node)}
		n.groups = append(n.groups, g)
	}
	g.byVal[s.Val()] = c
	g.all = append(g.all, c)
}

// Tree is the FP-tree used for local join computation. It is not safe
// for concurrent use; each Joiner task owns one tree per window.
//
// All internal indexes are keyed by interned symbols (dense uint32
// attribute/value IDs, see internal/symbol): the header table and
// child maps hash one uint64 instead of two strings, the per-attribute
// document counts live in an ID-indexed slice, and the probe scratch is
// a stamped slice reused across JoinPartners calls so a probe performs
// zero allocations of its own.
type Tree struct {
	order  *Order
	root   *node
	header map[symbol.Pair]*node

	docCount   int
	nodeCount  int
	attrCounts []int // documents containing each attribute, indexed by attribute symbol ID
	nextBranch int
	maxDepth   int

	// symEpoch is the symbol-table epoch the tree's IDs belong to. A
	// symbol.Reset under a live tree would silently re-key everything,
	// so the tree recaptures the epoch only while empty and panics
	// otherwise (Reset is documented quiesce-only).
	symEpoch uint64

	// Cached NumUbiquitous (satellite fix: previously recomputed on
	// every probe); invalidated by Insert and Reset.
	numUbiq   int
	ubiqValid bool

	// Probe scratch: probeVal[a] is the probing document's value ID for
	// attribute a when probeMark[a] holds the current stamp. Stamping
	// makes clearing O(1) between probes.
	probeVal   []symbol.ID
	probeMark  []uint32
	probeStamp uint32

	// Insert scratch: the arranged pair sequence, reused across inserts.
	arr arrangeBuf

	// Probe result buffer backing JoinPartners (satellite fix: results
	// previously grew element-wise from nil on every call).
	result []uint64
}

// arrangeBuf sorts a document's pairs and symbols by global-order rank
// without allocating. Ranks are unique per attribute, so the sort needs
// no stability.
type arrangeBuf struct {
	pairs []document.Pair
	syms  []symbol.Pair
	ranks []int32
}

func (b *arrangeBuf) Len() int           { return len(b.pairs) }
func (b *arrangeBuf) Less(i, j int) bool { return b.ranks[i] < b.ranks[j] }
func (b *arrangeBuf) Swap(i, j int) {
	b.pairs[i], b.pairs[j] = b.pairs[j], b.pairs[i]
	b.syms[i], b.syms[j] = b.syms[j], b.syms[i]
	b.ranks[i], b.ranks[j] = b.ranks[j], b.ranks[i]
}

// New creates an empty FP-tree using the given global attribute order.
func New(order *Order) *Tree {
	if order == nil {
		order = EmptyOrder()
	}
	return &Tree{
		order:    order,
		root:     &node{},
		header:   make(map[symbol.Pair]*node),
		symEpoch: symbol.Epoch(),
	}
}

// Build constructs a tree over a whole batch, deriving the attribute
// ordering from the batch itself (paper Table I / Fig. 4 procedure).
func Build(docs []document.Document) *Tree {
	t := New(NewOrderFromDocs(docs))
	for _, d := range docs {
		t.Insert(d)
	}
	return t
}

// Order exposes the tree's attribute ordering.
func (t *Tree) Order() *Order { return t.order }

// DocCount reports the number of inserted documents.
func (t *Tree) DocCount() int { return t.docCount }

// NodeCount reports the number of nodes excluding the root.
func (t *Tree) NodeCount() int { return t.nodeCount }

// MaxDepth reports the longest root-to-leaf path length.
func (t *Tree) MaxDepth() int { return t.maxDepth }

// docSyms returns d's pair symbols under the current epoch, verifying
// that the tree's own indexes are not stale. The epoch can legally move
// only while the tree is empty (symbol.Reset is quiesce-only); all
// per-ID state is restarted then.
func (t *Tree) docSyms(d document.Document) []symbol.Pair {
	if e := symbol.Epoch(); e != t.symEpoch {
		if t.docCount != 0 || t.nodeCount != 0 {
			panic("fptree: symbol epoch changed under a live tree (symbol.Reset is quiesce-only)")
		}
		t.symEpoch = e
		t.attrCounts = nil
		t.probeVal = nil
		t.probeMark = nil
		t.probeStamp = 0
	}
	t.order.sync()
	return d.InternedPairs()
}

// arrange fills t.arr with d's pairs and symbols sorted by the global
// attribute order.
func (t *Tree) arrange(d document.Document, syms []symbol.Pair) {
	b := &t.arr
	b.pairs = append(b.pairs[:0], d.Pairs()...)
	b.syms = append(b.syms[:0], syms...)
	b.ranks = b.ranks[:0]
	for k := range b.pairs {
		b.ranks = append(b.ranks, int32(t.order.rankOfSym(b.syms[k].Attr(), b.pairs[k].Attr)))
	}
	sort.Sort(b)
}

// Insert adds a document to the tree: its pairs are arranged by the
// global ordering, the shared prefix path is reused, new nodes extend
// it, and the document id is recorded at the terminal node.
func (t *Tree) Insert(d document.Document) {
	syms := t.docSyms(d)
	t.arrange(d, syms)
	cur := t.root
	for k := range t.arr.pairs {
		s := t.arr.syms[k]
		child := cur.child(s)
		if child == nil {
			child = &node{
				pair:   t.arr.pairs[k],
				sym:    s,
				parent: cur,
				depth:  cur.depth + 1,
			}
			t.nextBranch++
			child.branchID = t.nextBranch
			cur.addChild(s, child)
			t.nodeCount++
			// Chain into the header table.
			child.next = t.header[s]
			t.header[s] = child
			if child.depth > t.maxDepth {
				t.maxDepth = child.depth
			}
		}
		cur = child
	}
	cur.docs = append(cur.docs, d.ID)
	t.docCount++
	for _, s := range t.arr.syms {
		a := s.Attr()
		if int(a) >= len(t.attrCounts) {
			t.attrCounts = growInts(t.attrCounts, int(a)+1)
		}
		t.attrCounts[a]++
	}
	t.ubiqValid = false
}

func growInts(s []int, n int) []int {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// NumUbiquitous returns the number of leading attributes of the global
// order that are present in every document currently stored. These
// occupy the first levels of the tree and enable the FPTreeJoin fast
// path (paper Sec. V-B). The count is cached between inserts.
func (t *Tree) NumUbiquitous() int {
	if t.ubiqValid {
		return t.numUbiq
	}
	n := 0
	if t.docCount > 0 {
		t.order.sync()
		for j := 0; j < t.order.Len(); j++ {
			a := t.order.idAt(j)
			if int(a) >= len(t.attrCounts) || t.attrCounts[a] != t.docCount {
				break
			}
			n++
		}
	}
	t.numUbiq, t.ubiqValid = n, true
	return n
}

// JoinPartners implements FPTreeJoin (Algorithm 2): it returns the ids
// of every stored document joinable with d. The first NumUbiquitous
// levels are navigated directly via the equally-labeled child — all
// sibling branches conflict with d on a shared attribute and are pruned
// wholesale — after which the traversal (Algorithm 3) walks the
// remaining subtree, pruning on conflicts and collecting document ids
// once at least one attribute-value pair is shared.
//
// The returned slice is owned by the tree and valid only until the next
// JoinPartners call; callers that retain results must copy them or use
// JoinPartnersAppend with their own buffer.
func (t *Tree) JoinPartners(d document.Document) []uint64 {
	t.result = t.JoinPartnersAppend(t.result[:0], d)
	return t.result
}

// JoinPartnersAppend is JoinPartners appending into dst, for callers
// that manage their own result buffers.
func (t *Tree) JoinPartnersAppend(dst []uint64, d document.Document) []uint64 {
	if t.docCount == 0 {
		return dst
	}
	syms := t.docSyms(d)
	t.stampProbe(syms)
	num := t.NumUbiquitous()
	cur := t.root
	shared := 0
	for j := 0; j < num; j++ {
		a := t.order.idAt(j)
		if int(a) >= len(t.probeMark) || t.probeMark[a] != t.probeStamp {
			// The probing document lacks this (tree-)ubiquitous
			// attribute: no conflict is possible on it, but all
			// children must be explored; fall back to the general
			// traversal from the current node.
			break
		}
		child := cur.child(symbol.MakePair(a, t.probeVal[a]))
		if child == nil {
			// Every stored document carries this attribute with some
			// other value: all of them conflict with d.
			return dst
		}
		cur = child
		shared++
		dst = appendExcluding(dst, cur.docs, d.ID)
	}
	return t.traverse(cur, d.ID, shared, dst)
}

// stampProbe loads the probing document into the stamped scratch:
// probeVal[a] holds d's value ID for attribute a iff probeMark[a]
// equals the (freshly bumped) probeStamp. No clearing is needed between
// probes; on stamp wrap-around the marks are zeroed once.
func (t *Tree) stampProbe(syms []symbol.Pair) {
	t.probeStamp++
	if t.probeStamp == 0 {
		for i := range t.probeMark {
			t.probeMark[i] = 0
		}
		t.probeStamp = 1
	}
	for _, s := range syms {
		a := int(s.Attr())
		if a >= len(t.probeMark) {
			t.probeMark = growUint32s(t.probeMark, a+1)
			t.probeVal = growIDs(t.probeVal, a+1)
		}
		t.probeMark[a] = t.probeStamp
		t.probeVal[a] = s.Val()
	}
}

func growUint32s(s []uint32, n int) []uint32 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

func growIDs(s []symbol.ID, n int) []symbol.ID {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// traverse is Algorithm 3: depth-first navigation that prunes a child
// (and its whole subtree) when the child's attribute is present in the
// probe with a different value, and collects document ids stored at
// nodes whose branch shares at least one pair with the probe. Grouping
// children by attribute turns the pruning into a direct lookup of the
// single non-conflicting child.
func (t *Tree) traverse(n *node, excludeID uint64, shared int, result []uint64) []uint64 {
	for _, g := range n.groups {
		if a := int(g.attr); a < len(t.probeMark) && t.probeMark[a] == t.probeStamp {
			// All children of this group with a different value
			// conflict; only the equally-labeled child survives.
			if child := g.byVal[t.probeVal[a]]; child != nil {
				result = t.collectChild(child, excludeID, shared+1, result)
			}
			continue
		}
		// Attribute absent from the probe: no conflict possible,
		// every child must be explored.
		for _, child := range g.all {
			result = t.collectChild(child, excludeID, shared, result)
		}
	}
	return result
}

func (t *Tree) collectChild(child *node, excludeID uint64, shared int, result []uint64) []uint64 {
	if shared > 0 {
		result = appendExcluding(result, child.docs, excludeID)
	}
	return t.traverse(child, excludeID, shared, result)
}

func appendExcluding(dst []uint64, src []uint64, exclude uint64) []uint64 {
	if need := len(dst) + len(src); need > cap(dst) {
		grown := make([]uint64, len(dst), need+need/2)
		copy(grown, dst)
		dst = grown
	}
	for _, id := range src {
		if id != exclude {
			dst = append(dst, id)
		}
	}
	return dst
}

// HeaderChainLen returns the number of nodes labeled with p, following
// the header-table chain (used by tests and diagnostics).
func (t *Tree) HeaderChainLen(p document.Pair) int {
	s, ok := symbol.LookupPair(p.Attr, p.Val)
	if !ok {
		return 0
	}
	n := 0
	for cur := t.header[s]; cur != nil; cur = cur.next {
		n++
	}
	return n
}

// DocPath returns the reordered pair sequence of the branch holding
// document id, or nil if the id is not stored (diagnostic; linear in
// tree size).
func (t *Tree) DocPath(id uint64) []document.Pair {
	var found *node
	var walk func(n *node) bool
	walk = func(n *node) bool {
		for _, d := range n.docs {
			if d == id {
				found = n
				return true
			}
		}
		for _, g := range n.groups {
			for _, c := range g.all {
				if walk(c) {
					return true
				}
			}
		}
		return false
	}
	if !walk(t.root) {
		return nil
	}
	var path []document.Pair
	for cur := found; cur != nil && cur.parent != nil; cur = cur.parent {
		path = append(path, cur.pair)
	}
	// Reverse to root-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Dump renders the tree structure for debugging, one node per line.
func (t *Tree) Dump() string {
	var b strings.Builder
	var walk func(n *node, indent int)
	walk = func(n *node, indent int) {
		if n != t.root {
			b.WriteString(strings.Repeat("  ", indent))
			fmt.Fprintf(&b, "%s docs=%v branch=%d\n", n.pair, n.docs, n.branchID)
		}
		for _, g := range n.groups {
			for _, c := range g.all {
				walk(c, indent+1)
			}
		}
	}
	b.WriteString("root\n")
	walk(t.root, 0)
	return b.String()
}

// Reset evicts the entire tree, matching the paper's tumbling-window
// semantics ("evict the entire tree once the window tumbles"), while
// keeping the attribute ordering — and the reusable scratch buffers —
// in place.
func (t *Tree) Reset() {
	t.root = &node{}
	t.header = make(map[symbol.Pair]*node)
	for i := range t.attrCounts {
		t.attrCounts[i] = 0
	}
	t.docCount = 0
	t.nodeCount = 0
	t.nextBranch = 0
	t.maxDepth = 0
	t.ubiqValid = false
	// Stale probe marks cannot collide after the tree refills: a mark
	// only matches the current stamp, which is bumped on every probe.
}
