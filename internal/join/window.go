package join

import (
	"time"

	"repro/internal/document"
	"repro/internal/telemetry"
)

// Result is one joined pair together with the merged output document
// (the natural-join tuple).
type Result struct {
	Left   uint64
	Right  uint64
	Merged document.Document
}

// Windowed wraps an Engine with tumbling-window semantics and join
// result materialisation. Incoming documents are matched against the
// documents already stored in the current window (probe-then-insert),
// so every joinable pair within one window is produced exactly once;
// when the window tumbles the entire state is evicted (paper Sec. V-A).
type Windowed struct {
	engine Engine
	store  map[uint64]document.Document
	nextID uint64

	// Deduplicate replicated deliveries: the partitioning may send the
	// same document to one Joiner more than once only across different
	// Joiners, but the broadcast fallback can overlap with a partition
	// match, so an id-based guard keeps the window exactly-once.
	seen map[uint64]struct{}

	pairsEmitted  int
	docsProcessed int
	duplicates    int

	ins Instruments
	// fpj caches the engine's concrete type when TreeNodes is attached,
	// so the per-document size refresh skips the type assertion.
	fpj *FPJ
}

// Instruments are the optional live metrics of a windowed joiner. Every
// field is nil-safe, so the zero value is a complete no-op; populate
// the fields from a telemetry.Registry and attach with SetInstruments.
type Instruments struct {
	// ProbeSeconds profiles each probe-then-insert against the engine.
	ProbeSeconds *telemetry.Histogram
	// Results counts join results produced by the engine.
	Results *telemetry.Counter
	// Duplicates counts suppressed duplicate deliveries.
	Duplicates *telemetry.Counter
	// WindowDocs tracks the number of documents stored in the current
	// window.
	WindowDocs *telemetry.Gauge
	// TreeNodes tracks the engine's FP-tree node count; it stays zero
	// for engines without a tree (NLJ, HBJ).
	TreeNodes *telemetry.Gauge
}

// SetInstruments attaches live metrics to the windowed joiner.
func (w *Windowed) SetInstruments(ins Instruments) {
	w.ins = ins
	w.fpj = nil
	if ins.TreeNodes != nil {
		w.fpj, _ = w.engine.(*FPJ)
	}
}

// updateSizes refreshes the window-size gauges after state changed.
func (w *Windowed) updateSizes() {
	w.ins.WindowDocs.SetInt(len(w.store))
	if w.fpj != nil {
		w.ins.TreeNodes.SetInt(w.fpj.Tree().NodeCount())
	}
}

// NewWindowed builds a windowed joiner on top of the given engine.
func NewWindowed(e Engine) *Windowed {
	return &Windowed{
		engine: e,
		store:  make(map[uint64]document.Document),
		seen:   make(map[uint64]struct{}),
		nextID: 1,
	}
}

// Engine exposes the wrapped engine.
func (w *Windowed) Engine() Engine { return w.engine }

// Process matches d against the current window and stores it. The
// returned results materialise the merged join documents. A document id
// already seen in this window is ignored (duplicate delivery).
func (w *Windowed) Process(d document.Document) []Result {
	if _, dup := w.seen[d.ID]; dup {
		w.duplicates++
		w.ins.Duplicates.Inc()
		return nil
	}
	w.seen[d.ID] = struct{}{}
	w.docsProcessed++
	// Only an attached histogram pays for the clock reads.
	var start time.Time
	if w.ins.ProbeSeconds != nil {
		start = time.Now()
	}
	partners := w.engine.ProbeInsert(d)
	if w.ins.ProbeSeconds != nil {
		w.ins.ProbeSeconds.Observe(time.Since(start))
	}
	if len(partners) == 0 {
		w.store[d.ID] = d
		w.updateSizes()
		return nil
	}
	results := make([]Result, 0, len(partners))
	for _, id := range partners {
		other, ok := w.store[id]
		if !ok {
			continue
		}
		merged := document.Merge(w.nextID, other, d)
		w.nextID++
		results = append(results, Result{Left: id, Right: d.ID, Merged: merged})
	}
	w.store[d.ID] = d
	w.pairsEmitted += len(results)
	w.ins.Results.Add(int64(len(results)))
	w.updateSizes()
	return results
}

// Tumble closes the current window: all state is evicted. It returns
// the number of documents and join pairs the window produced.
func (w *Windowed) Tumble() (docs, pairs int) {
	docs, pairs = w.docsProcessed, w.pairsEmitted
	w.engine.Reset()
	w.store = make(map[uint64]document.Document)
	w.seen = make(map[uint64]struct{})
	w.docsProcessed = 0
	w.pairsEmitted = 0
	w.duplicates = 0
	w.updateSizes()
	return docs, pairs
}

// Size reports the number of documents stored in the current window.
func (w *Windowed) Size() int { return len(w.store) }

// Duplicates reports how many duplicate deliveries were suppressed in
// the current window.
func (w *Windowed) Duplicates() int { return w.duplicates }
