package join

import (
	"repro/internal/document"
)

// Result is one joined pair together with the merged output document
// (the natural-join tuple).
type Result struct {
	Left   uint64
	Right  uint64
	Merged document.Document
}

// Windowed wraps an Engine with tumbling-window semantics and join
// result materialisation. Incoming documents are matched against the
// documents already stored in the current window (probe-then-insert),
// so every joinable pair within one window is produced exactly once;
// when the window tumbles the entire state is evicted (paper Sec. V-A).
type Windowed struct {
	engine Engine
	store  map[uint64]document.Document
	nextID uint64

	// Deduplicate replicated deliveries: the partitioning may send the
	// same document to one Joiner more than once only across different
	// Joiners, but the broadcast fallback can overlap with a partition
	// match, so an id-based guard keeps the window exactly-once.
	seen map[uint64]struct{}

	pairsEmitted  int
	docsProcessed int
	duplicates    int
}

// NewWindowed builds a windowed joiner on top of the given engine.
func NewWindowed(e Engine) *Windowed {
	return &Windowed{
		engine: e,
		store:  make(map[uint64]document.Document),
		seen:   make(map[uint64]struct{}),
		nextID: 1,
	}
}

// Engine exposes the wrapped engine.
func (w *Windowed) Engine() Engine { return w.engine }

// Process matches d against the current window and stores it. The
// returned results materialise the merged join documents. A document id
// already seen in this window is ignored (duplicate delivery).
func (w *Windowed) Process(d document.Document) []Result {
	if _, dup := w.seen[d.ID]; dup {
		w.duplicates++
		return nil
	}
	w.seen[d.ID] = struct{}{}
	w.docsProcessed++
	partners := w.engine.ProbeInsert(d)
	if len(partners) == 0 {
		w.store[d.ID] = d
		return nil
	}
	results := make([]Result, 0, len(partners))
	for _, id := range partners {
		other, ok := w.store[id]
		if !ok {
			continue
		}
		merged := document.Merge(w.nextID, other, d)
		w.nextID++
		results = append(results, Result{Left: id, Right: d.ID, Merged: merged})
	}
	w.store[d.ID] = d
	w.pairsEmitted += len(results)
	return results
}

// Tumble closes the current window: all state is evicted. It returns
// the number of documents and join pairs the window produced.
func (w *Windowed) Tumble() (docs, pairs int) {
	docs, pairs = w.docsProcessed, w.pairsEmitted
	w.engine.Reset()
	w.store = make(map[uint64]document.Document)
	w.seen = make(map[uint64]struct{})
	w.docsProcessed = 0
	w.pairsEmitted = 0
	w.duplicates = 0
	return docs, pairs
}

// Size reports the number of documents stored in the current window.
func (w *Windowed) Size() int { return len(w.store) }

// Duplicates reports how many duplicate deliveries were suppressed in
// the current window.
func (w *Windowed) Duplicates() int { return w.duplicates }
