package join

import (
	"time"

	"repro/internal/document"
	"repro/internal/telemetry"
)

// Result is one joined pair together with the merged output document
// (the natural-join tuple).
type Result struct {
	Left   uint64
	Right  uint64
	Merged document.Document
}

// Windowed wraps an Engine with tumbling-window semantics and join
// result materialisation. Incoming documents are matched against the
// documents already stored in the current window (probe-then-insert),
// so every joinable pair within one window is produced exactly once;
// when the window tumbles the entire state is evicted (paper Sec. V-A).
type Windowed struct {
	engine Engine
	store  map[uint64]document.Document
	nextID uint64

	// Deduplicate replicated deliveries: the partitioning may send the
	// same document to one Joiner more than once only across different
	// Joiners, but the broadcast fallback can overlap with a partition
	// match, so an id-based guard keeps the window exactly-once.
	seen map[uint64]struct{}

	pairsEmitted  int
	docsProcessed int
	duplicates    int

	// storeBytes tracks the accounted footprint of the window document
	// store incrementally, so MemBytes answers in O(1) on every
	// admission the memory governor meters.
	storeBytes int64

	ins Instruments
	// fpj caches the engine's concrete type when TreeNodes is attached,
	// so the per-document size refresh skips the type assertion.
	fpj *FPJ
}

// Instruments are the optional live metrics of a windowed joiner. Every
// field is nil-safe, so the zero value is a complete no-op; populate
// the fields from a telemetry.Registry and attach with SetInstruments.
type Instruments struct {
	// ProbeSeconds profiles each probe-then-insert against the engine.
	ProbeSeconds *telemetry.Histogram
	// Results counts join results produced by the engine.
	Results *telemetry.Counter
	// Duplicates counts suppressed duplicate deliveries.
	Duplicates *telemetry.Counter
	// WindowDocs tracks the number of documents stored in the current
	// window.
	WindowDocs *telemetry.Gauge
	// TreeNodes tracks the engine's FP-tree node count; it stays zero
	// for engines without a tree (NLJ, HBJ).
	TreeNodes *telemetry.Gauge
	// PoolDepth tracks the probe worker pool size in use for batch
	// probes (1 = serial engine path).
	PoolDepth *telemetry.Gauge
	// BatchDocs records the document count of each batch handed to
	// ProcessBatch (unit: documents, via ObserveNS).
	BatchDocs *telemetry.Histogram
}

// SetInstruments attaches live metrics to the windowed joiner.
func (w *Windowed) SetInstruments(ins Instruments) {
	w.ins = ins
	w.fpj = nil
	if ins.TreeNodes != nil {
		w.fpj, _ = w.engine.(*FPJ)
	}
}

// updateSizes refreshes the window-size gauges after state changed.
func (w *Windowed) updateSizes() {
	w.ins.WindowDocs.SetInt(len(w.store))
	if w.fpj != nil {
		w.ins.TreeNodes.SetInt(w.fpj.Tree().NodeCount())
	}
}

// NewWindowed builds a windowed joiner on top of the given engine.
func NewWindowed(e Engine) *Windowed {
	return &Windowed{
		engine: e,
		store:  make(map[uint64]document.Document),
		seen:   make(map[uint64]struct{}),
		nextID: 1,
	}
}

// Engine exposes the wrapped engine.
func (w *Windowed) Engine() Engine { return w.engine }

// Process matches d against the current window and stores it. The
// returned results materialise the merged join documents. A document id
// already seen in this window is ignored (duplicate delivery).
func (w *Windowed) Process(d document.Document) []Result {
	if _, dup := w.seen[d.ID]; dup {
		w.duplicates++
		w.ins.Duplicates.Inc()
		return nil
	}
	w.seen[d.ID] = struct{}{}
	w.docsProcessed++
	// Only an attached histogram pays for the clock reads.
	var start time.Time
	if w.ins.ProbeSeconds != nil {
		start = time.Now()
	}
	partners := w.engine.ProbeInsert(d)
	if w.ins.ProbeSeconds != nil {
		w.ins.ProbeSeconds.Observe(time.Since(start))
	}
	if len(partners) == 0 {
		w.storeDoc(d)
		w.updateSizes()
		return nil
	}
	results := make([]Result, 0, len(partners))
	for _, id := range partners {
		other, ok := w.store[id]
		if !ok {
			continue
		}
		merged := document.Merge(w.nextID, other, d)
		w.nextID++
		results = append(results, Result{Left: id, Right: d.ID, Merged: merged})
	}
	w.storeDoc(d)
	w.pairsEmitted += len(results)
	w.ins.Results.Add(int64(len(results)))
	w.updateSizes()
	return results
}

// storeDoc adds d to the window store, keeping the byte account in
// step. The per-entry constant covers the map bucket slot beyond the
// document's own footprint.
func (w *Windowed) storeDoc(d document.Document) {
	w.store[d.ID] = d
	w.storeBytes += d.MemBytes() + windowMapEntryBytes
}

const (
	// windowMapEntryBytes approximates one store map entry's overhead
	// (uint64 key + bucket share) beyond the Document value itself.
	windowMapEntryBytes = 16
	// seenEntryBytes approximates one dedup-guard map entry.
	seenEntryBytes = 24
)

// ProcessBatch runs a micro-batch of documents through the window,
// equivalent to calling Process for each document in order: duplicate
// deliveries are suppressed, every joinable pair is produced exactly
// once, and results are merged back in arrival order (first by
// document position, then by the engine's partner order), so OnResult
// ordering downstream stays deterministic. A BatchEngine may order the
// partners within one document's results differently than the serial
// walk (window-state partners before intra-batch partners) — the
// per-document multisets are identical either way. Engines implementing
// BatchEngine — FPJ with a probe worker pool — overlap the window-tree
// probes of the batch across their workers; other engines fall back to
// the serial loop.
func (w *Windowed) ProcessBatch(docs []document.Document) []Result {
	if len(docs) == 0 {
		return nil
	}
	if len(docs) == 1 {
		return w.Process(docs[0])
	}
	// Suppress duplicate deliveries up front, like Process would at
	// each position.
	fresh := docs[:0:0]
	for _, d := range docs {
		if _, dup := w.seen[d.ID]; dup {
			w.duplicates++
			w.ins.Duplicates.Inc()
			continue
		}
		w.seen[d.ID] = struct{}{}
		fresh = append(fresh, d)
	}
	if len(fresh) == 0 {
		return nil
	}
	w.docsProcessed += len(fresh)
	w.ins.BatchDocs.ObserveNS(int64(len(fresh)))

	be, ok := w.engine.(BatchEngine)
	if !ok {
		// Engine cannot batch: inline the serial probe-then-insert and
		// materialisation per document.
		var results []Result
		for _, d := range fresh {
			partners := w.engine.ProbeInsert(d)
			results = w.materialize(results, d, partners)
		}
		w.ins.Results.Add(int64(len(results)))
		w.updateSizes()
		return results
	}
	if w.ins.PoolDepth != nil {
		if fpj, isFPJ := w.engine.(*FPJ); isFPJ {
			w.ins.PoolDepth.SetInt(fpj.ProbeParallelism())
		}
	}
	lists := be.ProbeInsertBatch(fresh)
	var results []Result
	for i, d := range fresh {
		results = w.materialize(results, d, lists[i])
	}
	w.ins.Results.Add(int64(len(results)))
	w.updateSizes()
	return results
}

// materialize turns one document's partner ids into merged Results and
// stores the document, preserving the serial probe-then-insert
// bookkeeping: partners of d inserted earlier — including earlier
// documents of the same batch — are already in the store when d's
// results resolve.
func (w *Windowed) materialize(results []Result, d document.Document, partners []uint64) []Result {
	before := len(results)
	for _, id := range partners {
		other, ok := w.store[id]
		if !ok {
			continue
		}
		merged := document.Merge(w.nextID, other, d)
		w.nextID++
		results = append(results, Result{Left: id, Right: d.ID, Merged: merged})
	}
	w.storeDoc(d)
	w.pairsEmitted += len(results) - before
	return results
}
func (w *Windowed) Tumble() (docs, pairs int) {
	docs, pairs = w.docsProcessed, w.pairsEmitted
	w.engine.Reset()
	w.store = make(map[uint64]document.Document)
	w.seen = make(map[uint64]struct{})
	w.docsProcessed = 0
	w.pairsEmitted = 0
	w.duplicates = 0
	w.storeBytes = 0
	w.updateSizes()
	return docs, pairs
}

// MemBytes implements MemoryAccounter: the window document store, the
// dedup guard and the wrapped engine's own account. O(1) — the store
// bytes are tracked incrementally and engines account incrementally
// too.
func (w *Windowed) MemBytes() int64 {
	return w.storeBytes + int64(len(w.seen))*seenEntryBytes + EngineMemBytes(w.engine)
}

// Size reports the number of documents stored in the current window.
func (w *Windowed) Size() int { return len(w.store) }

// Doc returns the stored document with the given id, if it is in the
// current window. The multi-query demux uses it to recover a result's
// left-hand input for θ predicates.
func (w *Windowed) Doc(id uint64) (document.Document, bool) {
	d, ok := w.store[id]
	return d, ok
}

// Duplicates reports how many duplicate deliveries were suppressed in
// the current window.
func (w *Windowed) Duplicates() int { return w.duplicates }
