package join

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/document"
	"repro/internal/fptree"
	"repro/internal/telemetry"
)

// Parallel batch probing for the FPJ engine, following the two-phase
// pattern of Shahvarani & Jacobsen's multicore index join (PAPERS.md):
// a batch of incoming documents first probes the window's FP-tree
// concurrently — the probe path is read-only, so N workers with
// private stamp scratch and result buffers can share the tree — and is
// then folded into the tree serially. Intra-batch matches (document i
// joining document j < i of the same batch) are recovered during the
// serial phase via a small side tree holding only the batch, so each
// document ends up with exactly the partner multiset the serial
// probe-then-insert loop would have produced, merged back in arrival
// order. Within one document's list the window-state partners precede
// the intra-batch partners (see BatchEngine); everything is
// deterministic — worker scheduling never influences the output, since
// each worker writes only its claimed rows.

// maxRetainedResultBuf bounds the per-document result buffers kept
// across batches (entries, i.e. 8-byte ids).
const maxRetainedResultBuf = 4096

// BatchEngine is implemented by engines that can probe a batch of
// documents at once. ProbeInsertBatch behaves like calling ProbeInsert
// for each document in order: row i of the returned slice holds exactly
// the partner multiset ProbeInsert(docs[i]) would have returned at its
// position in the sequence, and the output is fully deterministic for a
// given input. The one latitude an implementation has is the order
// *within* a row: partners found in the pre-batch window state may be
// listed before partners from earlier documents of the same batch,
// where the serial walk would interleave them by tree position. Rows
// are engine-owned buffers, valid until the next batch.
type BatchEngine interface {
	Engine
	ProbeInsertBatch(docs []document.Document) [][]uint64
}

// probePool is the per-engine probe worker pool: one fptree.Prober
// (private stamp scratch + traversal stack) per worker, per-document
// result buffers reused across batches, and the side tree for
// intra-batch matches.
type probePool struct {
	workers int
	probers []*fptree.Prober
	bufs    [][]uint64
	side    *fptree.Tree

	// workerProbe, when attached, records per-probe latency per worker.
	workerProbe []*telemetry.Histogram
}

// SetProbeParallelism configures the engine's probe worker pool; n <= 1
// restores the serial path. Safe to call between batches only.
func (e *FPJ) SetProbeParallelism(n int) {
	if n <= 1 {
		e.pool = nil
		return
	}
	p := &probePool{workers: n}
	p.probers = make([]*fptree.Prober, n)
	for i := range p.probers {
		p.probers[i] = e.tree.NewProber()
	}
	// The side tree shares the main tree's attribute order, so batch
	// documents arrange identically in both.
	p.side = fptree.New(e.tree.Order())
	e.pool = p
}

// ProbeParallelism reports the configured pool size (1 = serial).
func (e *FPJ) ProbeParallelism() int {
	if e.pool == nil {
		return 1
	}
	return e.pool.workers
}

// SetWorkerProbeHistograms attaches per-worker probe latency
// histograms (index = worker); nil disables the timing entirely.
func (e *FPJ) SetWorkerProbeHistograms(h []*telemetry.Histogram) {
	if e.pool != nil {
		e.pool.workerProbe = h
	}
}

// ProbeInsertBatch implements BatchEngine. With a pool configured the
// window-tree probes of the batch run concurrently (phase 1) and the
// inserts plus intra-batch matches run serially in arrival order
// (phase 2); without one it degrades to the serial loop. Either way
// row i is exactly the partner multiset ProbeInsert(docs[i]) would
// have returned at its position in the sequence.
func (e *FPJ) ProbeInsertBatch(docs []document.Document) [][]uint64 {
	bufs := e.ensureBufs(len(docs))
	if e.pool == nil || len(docs) < 2 {
		for i, d := range docs {
			bufs[i] = e.tree.JoinPartnersAppend(bufs[i][:0], d)
			e.tree.Insert(d)
		}
		return bufs
	}
	p := e.pool

	// Phase 1: concurrent read-only probes of the window tree. All
	// lazily computed probe state (order sync, ubiquitous prefix) is
	// materialised up front; each worker claims documents off a shared
	// counter and writes only its own rows.
	e.tree.PrepareProbes()
	for _, pr := range p.probers {
		pr.Reattach()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := p.workers
	if workers > len(docs) {
		workers = len(docs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pr := p.probers[w]
			var hist *telemetry.Histogram
			if w < len(p.workerProbe) {
				hist = p.workerProbe[w]
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				if hist != nil {
					start := time.Now()
					bufs[i] = pr.JoinPartnersAppend(bufs[i][:0], docs[i])
					hist.Observe(time.Since(start))
				} else {
					bufs[i] = pr.JoinPartnersAppend(bufs[i][:0], docs[i])
				}
			}
		}(w)
	}
	wg.Wait()

	// Phase 2: serial, in arrival order. The side tree replays the
	// batch's own probe-then-insert sequence, so document i picks up
	// its partners among documents j < i of this batch; the main tree
	// absorbs the batch for subsequent batches and windows.
	p.side.Reset()
	for i, d := range docs {
		bufs[i] = p.side.JoinPartnersAppend(bufs[i], d)
		p.side.Insert(d)
		e.tree.Insert(d)
	}
	return bufs
}

// ensureBufs sizes the per-document result buffer table for n rows.
func (e *FPJ) ensureBufs(n int) [][]uint64 {
	if e.pool == nil {
		if cap(e.batchBufs) < n {
			e.batchBufs = make([][]uint64, n)
		}
		e.batchBufs = e.batchBufs[:n]
		return e.batchBufs
	}
	if cap(e.pool.bufs) < n {
		bufs := make([][]uint64, n)
		copy(bufs, e.pool.bufs)
		e.pool.bufs = bufs
	}
	e.pool.bufs = e.pool.bufs[:n]
	return e.pool.bufs
}

// releaseOversized sheds buffers that grew past the retention bounds
// (called on window tumbles via FPJ.Reset).
func (p *probePool) releaseOversized() {
	for i, b := range p.bufs {
		if cap(b) > maxRetainedResultBuf {
			p.bufs[i] = nil
		}
	}
}
