package join

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/document"
)

func tsDoc(id uint64, ts int64, kv string) document.Document {
	return document.MustParse(id, fmt.Sprintf(`{"ts":%d,%s}`, ts, kv))
}

func newET(t *testing.T, width, lateness int64) *EventTime {
	t.Helper()
	e, err := NewEventTime(width, lateness, TimestampAttr("ts"), func() Engine { return NewFPJ() })
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEventTimeValidation(t *testing.T) {
	mk := func() Engine { return NewFPJ() }
	if _, err := NewEventTime(0, 0, TimestampAttr("ts"), mk); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := NewEventTime(10, -1, TimestampAttr("ts"), mk); err == nil {
		t.Error("negative lateness must fail")
	}
	if _, err := NewEventTime(10, 0, nil, mk); err == nil {
		t.Error("nil extractor must fail")
	}
}

func TestEventTimeSameWindowJoins(t *testing.T) {
	e := newET(t, 10, 0)
	// ts 3 and 7 share window [0,10); note ts is itself a shared
	// attribute only when equal — these differ, so the join happens
	// via "a".
	if res := e.Process(tsDoc(1, 3, `"a":1`)); len(res) != 0 {
		t.Fatalf("unexpected results %v", res)
	}
	res := e.Process(tsDoc(2, 7, `"a":1,"b":2`))
	// d1={ts:3,a:1} d2={ts:7,a:1,b:2}: shared attr ts conflicts (3 vs
	// 7) -> NOT joinable despite same window.
	if len(res) != 0 {
		t.Fatalf("conflicting ts attribute must prevent the join: %v", res)
	}
	// A document with equal ts joins.
	res = e.Process(tsDoc(3, 7, `"a":1,"c":3`))
	if len(res) != 1 || res[0].Left != 2 {
		t.Fatalf("results = %v, want join with doc 2", res)
	}
}

func TestEventTimeDifferentWindowsDoNotJoin(t *testing.T) {
	e := newET(t, 10, 0)
	e.Process(tsDoc(1, 5, `"a":1`))
	res := e.Process(tsDoc(2, 15, `"a":1`))
	if len(res) != 0 {
		t.Fatalf("cross-window join: %v", res)
	}
	if len(e.OpenWindows()) != 1 {
		// Window [0,10) was evicted when the watermark reached 15.
		t.Errorf("open windows = %v", e.OpenWindows())
	}
}

func TestEventTimeOutOfOrderWithinLateness(t *testing.T) {
	e := newET(t, 10, 5)
	e.Process(tsDoc(1, 8, `"a":1`))
	e.Process(tsDoc(2, 12, `"b":2`)) // advances watermark to 12
	// ts 9 is late but within lateness 5; window [0,10) is still open.
	res := e.Process(tsDoc(3, 8, `"a":1,"c":3`))
	if len(res) != 1 {
		t.Fatalf("late-but-allowed doc did not join: %v", res)
	}
	if e.Dropped() != 0 {
		t.Errorf("dropped = %d", e.Dropped())
	}
}

func TestEventTimeTooLateDropped(t *testing.T) {
	e := newET(t, 10, 2)
	e.Process(tsDoc(1, 5, `"a":1`))
	e.Process(tsDoc(2, 30, `"b":2`)) // watermark 30, evicts [0,10)
	res := e.Process(tsDoc(3, 5, `"a":1`))
	if len(res) != 0 || e.Dropped() != 1 {
		t.Fatalf("too-late doc not dropped: res=%v dropped=%d", res, e.Dropped())
	}
	if e.Closed() == 0 {
		t.Error("no windows evicted")
	}
}

func TestEventTimeMissingTimestampDropped(t *testing.T) {
	e := newET(t, 10, 0)
	e.Process(document.MustParse(1, `{"a":1}`))
	if e.Dropped() != 1 {
		t.Errorf("dropped = %d", e.Dropped())
	}
	// Non-integer timestamps are also unusable.
	e.Process(document.MustParse(2, `{"ts":"abc"}`))
	if e.Dropped() != 2 {
		t.Errorf("dropped = %d", e.Dropped())
	}
}

func TestEventTimeFlush(t *testing.T) {
	e := newET(t, 10, 100)
	e.Process(tsDoc(1, 5, `"a":1`))
	e.Process(tsDoc(2, 15, `"b":1`))
	if n := len(e.OpenWindows()); n != 2 {
		t.Fatalf("open = %d", n)
	}
	e.Flush()
	if n := len(e.OpenWindows()); n != 0 {
		t.Errorf("open after flush = %d", n)
	}
	if e.Closed() != 2 {
		t.Errorf("closed = %d", e.Closed())
	}
}

func TestEventTimeNegativeTimestamps(t *testing.T) {
	e := newET(t, 10, 100)
	e.Process(tsDoc(1, -5, `"a":1`))
	res := e.Process(tsDoc(2, -5, `"a":1,"b":2`))
	if len(res) != 1 {
		t.Fatalf("negative-ts docs in the same window did not join: %v", res)
	}
	// -5 and 3 are in different windows ([-10,0) vs [0,10)).
	res = e.Process(tsDoc(3, 3, `"a":1`))
	if len(res) != 0 {
		t.Errorf("cross-window join across zero: %v", res)
	}
}

func TestFloorDiv(t *testing.T) {
	cases := [][3]int64{{7, 10, 0}, {10, 10, 1}, {-1, 10, -1}, {-10, 10, -1}, {-11, 10, -2}, {0, 10, 0}}
	for _, c := range cases {
		if got := floorDiv(c[0], c[1]); got != c[2] {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

// TestQuickEventTimeMatchesOracle: with unlimited lateness and a final
// flush, the event-time joiner produces exactly the per-window
// brute-force result.
func TestQuickEventTimeMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := int64(5 + r.Intn(10))
		n := 5 + r.Intn(30)
		docs := make([]document.Document, 0, n)
		for i := 0; i < n; i++ {
			ts := int64(r.Intn(50))
			kv := fmt.Sprintf(`"a":%d`, r.Intn(3))
			docs = append(docs, tsDoc(uint64(i+1), ts, kv))
		}
		e, err := NewEventTime(width, 1<<40, TimestampAttr("ts"), func() Engine { return NewFPJ() })
		if err != nil {
			return false
		}
		var got []Pair
		for _, d := range docs {
			for _, res := range e.Process(d) {
				p := Pair{LeftID: res.Left, RightID: res.Right}
				if p.LeftID > p.RightID {
					p.LeftID, p.RightID = p.RightID, p.LeftID
				}
				got = append(got, p)
			}
		}
		SortPairs(got)

		// Oracle: group documents by window key, brute-force each.
		byWindow := make(map[int64][]document.Document)
		ext := TimestampAttr("ts")
		for _, d := range docs {
			ts, _ := ext(d)
			byWindow[floorDiv(ts, width)] = append(byWindow[floorDiv(ts, width)], d)
		}
		var want []Pair
		for _, group := range byWindow {
			want = append(want, referencePairs(group)...)
		}
		SortPairs(want)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEventTimeStripTimestamp(t *testing.T) {
	e := newET(t, 60, 30).StripTimestamp("ts")
	e.Process(tsDoc(1, 100, `"u":"A"`))
	// Different timestamp, same window, shared content: joins because
	// the ts attribute was stripped.
	res := e.Process(tsDoc(2, 110, `"u":"A","x":1`))
	if len(res) != 1 {
		t.Fatalf("results = %v, want 1 (ts stripped)", res)
	}
	if res[0].Merged.HasAttr("ts") {
		t.Error("merged result still carries the stripped attribute")
	}
}
