package join

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"

	"repro/internal/state"
	"repro/internal/telemetry"
)

// PressureLevel is the memory governor's current rung on the
// graceful-degradation ladder. Levels are ordered: each rung implies
// everything below it.
type PressureLevel int

const (
	// PressureOK: accounted bytes are under budget; no action.
	PressureOK PressureLevel = iota
	// PressureSpill (accounted ≥ 1.0× budget): sealed panes and cold
	// groups move to the spill store.
	PressureSpill
	// PressureCompress (≥ 1.25×): spill files are DEFLATE-compressed —
	// slower writes for denser disk use.
	PressureCompress
	// PressureTumble (≥ 1.5×): the largest group is force-tumbled,
	// emitting its window early to reclaim memory now.
	PressureTumble
	// PressureShed (≥ 2.0×): new work is refused at admission —
	// sfj-serve answers 429, cluster spouts park on backpressure.
	PressureShed
)

// String names the rung.
func (p PressureLevel) String() string {
	switch p {
	case PressureOK:
		return "ok"
	case PressureSpill:
		return "spill"
	case PressureCompress:
		return "compress"
	case PressureTumble:
		return "force-tumble"
	case PressureShed:
		return "shed"
	default:
		return fmt.Sprintf("pressure(%d)", int(p))
	}
}

// Ladder thresholds, as multiples of the budget.
const (
	spillAt    = 1.0
	compressAt = 1.25
	tumbleAt   = 1.5
	shedAt     = 2.0
)

// GovernorInstruments are the governor's telemetry hooks. Every field
// is nil-safe; populate from a telemetry.Registry.
type GovernorInstruments struct {
	// SpillPanes counts state units (panes, groups) written to the
	// spill store — state_spill_panes_total.
	SpillPanes *telemetry.Counter
	// SpillBytes counts bytes written to the spill store —
	// state_spill_bytes_total.
	SpillBytes *telemetry.Counter
	// Reloads counts spilled units read back for probing —
	// state_spill_reloads_total.
	Reloads *telemetry.Counter
	// Failures counts spill writes or reloads that failed (I/O error,
	// CRC mismatch) and were degraded around — state_spill_failures_total.
	Failures *telemetry.Counter
	// ForcedTumbles counts rung-3 early tumbles —
	// state_forced_tumbles_total.
	ForcedTumbles *telemetry.Counter
	// Shed counts admissions refused at rung 4 — state_shed_total.
	Shed *telemetry.Counter
	// Pressure gauges the current ladder rung — state_pressure_level.
	Pressure *telemetry.Gauge
	// Accounted gauges the governor's view of resident window-state
	// bytes — state_accounted_bytes.
	Accounted *telemetry.Gauge
}

// GovernorConfig parameterises a memory governor.
type GovernorConfig struct {
	// Budget is the resident window-state byte budget; <= 0 disables
	// the governor entirely (every check reports PressureOK).
	Budget int64
	// Store receives spilled state, keyed (Task, unit sequence). Nil
	// disables rungs 1-2: the ladder then starts at force-tumble.
	Store state.Store
	// Task namespaces this governor's spill files within Store.
	Task string
	// MaxPinned caps how many spilled units may be resident
	// (reloaded) at once — the LRU pinned set. Default 1.
	MaxPinned int
	// Ins are the telemetry hooks.
	Ins GovernorInstruments
}

// Governor meters resident window-state bytes against a budget and
// walks the degradation ladder as pressure rises. It is the shared
// mechanism behind Sliding pane spill and Multi group spill: owners
// feed it their accounted bytes (Account) and use Spill/Reload/Drop
// for the disk legs.
//
// A Governor is not safe for concurrent use; each owner (a Sliding
// window, a Multi registry, a joiner task) owns its governor the same
// way it owns its engines. A nil *Governor is a valid no-op.
type Governor struct {
	cfg       GovernorConfig
	level     PressureLevel
	accounted int64
}

// NewGovernor builds a governor; returns nil (the no-op governor) when
// the budget is unset.
func NewGovernor(cfg GovernorConfig) *Governor {
	if cfg.Budget <= 0 {
		return nil
	}
	if cfg.MaxPinned <= 0 {
		cfg.MaxPinned = 1
	}
	return &Governor{cfg: cfg}
}

// Account feeds the governor the owner's current resident byte count
// and returns the resulting pressure level, publishing both gauges.
func (g *Governor) Account(bytes int64) PressureLevel {
	if g == nil {
		return PressureOK
	}
	g.accounted = bytes
	ratio := float64(bytes) / float64(g.cfg.Budget)
	level := PressureOK
	switch {
	case ratio >= shedAt:
		level = PressureShed
	case ratio >= tumbleAt:
		level = PressureTumble
	case ratio >= compressAt:
		level = PressureCompress
	case ratio >= spillAt:
		level = PressureSpill
	}
	// Rungs 1-2 need a spill store; without one the ladder's first
	// effective rung is force-tumble, so lower pressure stays "ok".
	if g.cfg.Store == nil && level > PressureOK && level < PressureTumble {
		level = PressureOK
	}
	g.level = level
	g.cfg.Ins.Pressure.SetInt(int(level))
	g.cfg.Ins.Accounted.Set(float64(bytes))
	return level
}

// Level reports the rung computed by the last Account.
func (g *Governor) Level() PressureLevel {
	if g == nil {
		return PressureOK
	}
	return g.level
}

// Accounted reports the bytes fed to the last Account.
func (g *Governor) Accounted() int64 {
	if g == nil {
		return 0
	}
	return g.accounted
}

// Budget reports the configured byte budget (0 for the nil governor).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.cfg.Budget
}

// MaxPinned reports the pinned-set capacity for reloaded units.
func (g *Governor) MaxPinned() int {
	if g == nil {
		return 1
	}
	return g.cfg.MaxPinned
}

// CanSpill reports whether the governor has a spill store at all.
func (g *Governor) CanSpill() bool { return g != nil && g.cfg.Store != nil }

// ShedOne records one refused admission and returns whether shedding
// is in force (callers gate on Level() >= PressureShed first).
func (g *Governor) ShedOne() {
	if g != nil {
		g.cfg.Ins.Shed.Inc()
	}
}

// ForcedTumble records one rung-3 early tumble.
func (g *Governor) ForcedTumble() {
	if g != nil {
		g.cfg.Ins.ForcedTumbles.Inc()
	}
}

// Spill-frame compression tags: one byte ahead of the state envelope.
const (
	spillRaw     byte = 0
	spillDeflate byte = 1
)

var errNoSpillStore = errors.New("join: governor has no spill store")

// Spill writes the snapshotter's state for the given unit sequence to
// the spill store and verifies it by reading it back through the full
// decode path (decompress + envelope CRC) before reporting success.
// Only after Spill returns nil may the owner release the resident
// copy — a torn or failed write therefore costs nothing but the
// failure counter: the state is still in memory and the owner carries
// on un-spilled. Files are DEFLATE-compressed from rung 2 up.
func (g *Governor) Spill(seq int, kind string, snap state.Snapshotter) (int64, error) {
	if g == nil || g.cfg.Store == nil {
		return 0, errNoSpillStore
	}
	payload, err := state.Encode(kind, snap)
	if err != nil {
		g.cfg.Ins.Failures.Inc()
		return 0, fmt.Errorf("join: spill encode %s/%d: %w", kind, seq, err)
	}
	framed, err := frameSpill(payload, g.level >= PressureCompress)
	if err != nil {
		g.cfg.Ins.Failures.Inc()
		return 0, fmt.Errorf("join: spill compress %s/%d: %w", kind, seq, err)
	}
	if err := g.cfg.Store.Save(g.cfg.Task, seq, framed); err != nil {
		g.cfg.Ins.Failures.Inc()
		g.cfg.Store.Remove(g.cfg.Task, seq) // a half-written file must not look valid later
		return 0, fmt.Errorf("join: spill write %s/%d: %w", kind, seq, err)
	}
	// Read-back verification: surface torn writes now, while the
	// resident copy still exists, so spill failures are always
	// correctness-neutral.
	back, err := g.cfg.Store.Load(g.cfg.Task, seq)
	if err == nil {
		_, err = unframeSpill(back, kind)
	}
	if err != nil {
		g.cfg.Ins.Failures.Inc()
		g.cfg.Store.Remove(g.cfg.Task, seq)
		return 0, fmt.Errorf("join: spill verify %s/%d: %w", kind, seq, err)
	}
	g.cfg.Ins.SpillPanes.Inc()
	g.cfg.Ins.SpillBytes.Add(int64(len(framed)))
	return int64(len(framed)), nil
}

// Reload reads a spilled unit back into the snapshotter. A failure
// (I/O, CRC, decode) increments the failure counter and removes the
// useless file; the caller decides how to degrade.
func (g *Governor) Reload(seq int, kind string, snap state.Snapshotter) error {
	if g == nil || g.cfg.Store == nil {
		return errNoSpillStore
	}
	data, err := g.cfg.Store.Load(g.cfg.Task, seq)
	if err == nil {
		// unframeSpill already verifies the envelope (magic, version,
		// kind, CRC) and hands back the inner snapshot payload.
		var payload []byte
		if payload, err = unframeSpill(data, kind); err == nil {
			if err = snap.Restore(bytes.NewReader(payload)); err != nil {
				err = fmt.Errorf("restore %s: %w", kind, err)
			}
		}
	}
	if err != nil {
		g.cfg.Ins.Failures.Inc()
		g.cfg.Store.Remove(g.cfg.Task, seq)
		return fmt.Errorf("join: spill reload %s/%d: %w", kind, seq, err)
	}
	g.cfg.Ins.Reloads.Inc()
	return nil
}

// Drop retires a spilled unit's file (the unit slid out of the window
// or was tumbled away).
func (g *Governor) Drop(seq int) {
	if g != nil && g.cfg.Store != nil {
		g.cfg.Store.Remove(g.cfg.Task, seq)
	}
}

// frameSpill prepends the compression tag, DEFLATE-compressing the
// envelope when asked (and when that actually shrinks it).
func frameSpill(payload []byte, compress bool) ([]byte, error) {
	if compress {
		var buf bytes.Buffer
		buf.WriteByte(spillDeflate)
		zw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := zw.Write(payload); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		if buf.Len() < len(payload)+1 {
			return buf.Bytes(), nil
		}
	}
	out := make([]byte, 0, len(payload)+1)
	out = append(out, spillRaw)
	return append(out, payload...), nil
}

// unframeSpill reverses frameSpill and verifies the envelope (magic,
// version, kind, CRC), returning the inner snapshot payload.
func unframeSpill(data []byte, kind string) ([]byte, error) {
	if len(data) == 0 {
		return nil, errors.New("empty spill frame")
	}
	envelope := data[1:]
	switch data[0] {
	case spillRaw:
	case spillDeflate:
		raw, err := io.ReadAll(flate.NewReader(bytes.NewReader(envelope)))
		if err != nil {
			return nil, fmt.Errorf("inflate: %w", err)
		}
		envelope = raw
	default:
		return nil, fmt.Errorf("unknown spill compression tag %d", data[0])
	}
	return state.ReadEnvelope(bytes.NewReader(envelope), kind)
}
