package join

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/document"
	"repro/internal/state"
)

func snapDocs() []document.Document {
	mk := func(id uint64, kv ...string) document.Document {
		var ps []document.Pair
		for i := 0; i < len(kv); i += 2 {
			ps = append(ps, document.Pair{Attr: kv[i], Val: document.EncodeString(kv[i+1])})
		}
		return document.New(id, ps)
	}
	return []document.Document{
		mk(1, "a", "x", "b", "y"),
		mk(2, "a", "x", "c", "z"),
		mk(3, "b", "y", "c", "z"),
		mk(4, "a", "q"),
		mk(5, "a", "x", "b", "y", "c", "z"),
	}
}

// TestEngineSnapshotRoundTrip proves every engine restores to a state
// that answers identical probes mid-window.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	docs := snapDocs()
	for _, name := range []string{"FPJ", "NLJ", "HBJ"} {
		t.Run(name, func(t *testing.T) {
			src, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range docs[:3] {
				src.Insert(d)
			}
			var buf bytes.Buffer
			if err := src.Snapshot(&buf); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			dst, _ := New(name)
			if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if dst.Size() != src.Size() {
				t.Fatalf("size %d != %d", dst.Size(), src.Size())
			}
			for _, probe := range docs {
				want := append([]uint64(nil), src.Probe(probe)...)
				got := append([]uint64(nil), dst.Probe(probe)...)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Probe(%d) = %v, want %v", probe.ID, got, want)
				}
			}
		})
	}
}

// TestWindowedSnapshotMidWindow snapshots a windowed joiner part-way
// through a window and checks that the restored joiner continues the
// window identically: same results for the remaining documents, same
// duplicate suppression, same tumble counters, same merged-doc ids.
func TestWindowedSnapshotMidWindow(t *testing.T) {
	docs := snapDocs()
	for _, name := range []string{"FPJ", "NLJ", "HBJ"} {
		t.Run(name, func(t *testing.T) {
			mkWindowed := func() *Windowed {
				e, err := New(name)
				if err != nil {
					t.Fatal(err)
				}
				return NewWindowed(e)
			}
			src := mkWindowed()
			for _, d := range docs[:3] {
				src.Process(d)
			}
			enc, err := state.Encode("windowed", src)
			if err != nil {
				t.Fatal(err)
			}
			dst := mkWindowed()
			if err := state.Decode("windowed", enc, dst); err != nil {
				t.Fatal(err)
			}
			if dst.Size() != src.Size() {
				t.Fatalf("size %d != %d", dst.Size(), src.Size())
			}

			// A duplicate delivery must stay suppressed after restore.
			if res := dst.Process(docs[1]); res != nil {
				t.Fatalf("restored joiner re-processed a seen document: %v", res)
			}
			src.Process(docs[1])

			// The remaining documents must produce identical results,
			// including the merged document ids (nextID continuation).
			for _, d := range docs[3:] {
				want := src.Process(d)
				got := dst.Process(d)
				if len(got) != len(want) {
					t.Fatalf("Process(%d): %d results, want %d", d.ID, len(got), len(want))
				}
				for i := range want {
					if got[i].Left != want[i].Left || got[i].Right != want[i].Right {
						t.Fatalf("Process(%d)[%d] = (%d,%d), want (%d,%d)",
							d.ID, i, got[i].Left, got[i].Right, want[i].Left, want[i].Right)
					}
					if got[i].Merged.ID != want[i].Merged.ID {
						t.Fatalf("Process(%d)[%d] merged id %d, want %d",
							d.ID, i, got[i].Merged.ID, want[i].Merged.ID)
					}
				}
			}

			wantDocs, wantPairs := src.Tumble()
			gotDocs, gotPairs := dst.Tumble()
			if gotDocs != wantDocs || gotPairs != wantPairs {
				t.Fatalf("Tumble = (%d,%d), want (%d,%d)", gotDocs, gotPairs, wantDocs, wantPairs)
			}
		})
	}
}

func TestWindowedSnapshotEngineMismatch(t *testing.T) {
	src := NewWindowed(NewNLJ())
	enc, err := state.Encode("windowed", src)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewWindowed(NewFPJ())
	if err := state.Decode("windowed", enc, dst); err == nil {
		t.Fatal("engine mismatch accepted")
	}
}
