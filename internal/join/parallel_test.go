package join

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/datagen"
	"repro/internal/document"
)

// The FPJ engine must satisfy the batch contract the windowed joiner
// dispatches on.
var _ BatchEngine = (*FPJ)(nil)

// resultSig is the comparable shape of one join result: the pair plus
// the merged document's id.
type resultSig struct {
	Left, Right, Merged uint64
}

func sigs(dst []resultSig, rs []Result) []resultSig {
	for _, r := range rs {
		dst = append(dst, resultSig{r.Left, r.Right, r.Merged.ID})
	}
	return dst
}

// canonicalize sorts the Left ids within each run of results belonging
// to one probing document (equal Right) and re-stamps the Merged ids by
// position. The batch contract fixes the arrival-order grouping, the
// per-document partner multiset and the merged-id sequence, but lets a
// BatchEngine order window-state partners before intra-batch partners
// within one document's list — canonical form erases exactly that
// latitude and nothing else.
func canonicalize(rs []resultSig) []resultSig {
	out := append([]resultSig(nil), rs...)
	for i := 0; i < len(out); {
		j := i
		for j < len(out) && out[j].Right == out[i].Right {
			j++
		}
		run := out[i:j]
		sort.Slice(run, func(a, b int) bool { return run[a].Left < run[b].Left })
		for k := range run {
			run[k].Merged = uint64(i + k)
		}
		i = j
	}
	return out
}

// processBatched feeds docs through ProcessBatch in chunks of batch.
func processBatched(w *Windowed, docs []document.Document, batch int) []resultSig {
	var out []resultSig
	for start := 0; start < len(docs); start += batch {
		end := start + batch
		if end > len(docs) {
			end = len(docs)
		}
		out = sigs(out, w.ProcessBatch(docs[start:end]))
	}
	return out
}

// materializeWindows pulls a fixed number of windows out of a stateful
// generator so every engine configuration replays identical documents.
func materializeWindows(gen datagen.Generator, windows, size int) [][]document.Document {
	out := make([][]document.Document, 0, windows)
	for i := 0; i < windows; i++ {
		out = append(out, gen.Window(size))
	}
	return out
}

// assertBatchParity compares a batched result stream against the serial
// oracle under the batch contract: identical length, identical merged-id
// sequence (positional), identical arrival-order grouping and identical
// per-document partner multisets. exact additionally requires the raw
// byte-for-byte order (the serial code paths must not deviate at all).
func assertBatchParity(t *testing.T, got, want []resultSig, exact bool, label string) {
	t.Helper()
	if exact {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: exact parity diverged: %s", label, firstDivergence(got, want))
		}
		return
	}
	cg, cw := canonicalize(got), canonicalize(want)
	if !reflect.DeepEqual(cg, cw) {
		t.Fatalf("%s: parity diverged: %s", label, firstDivergence(cg, cw))
	}
	if len(got) > 0 && got[0].Merged != want[0].Merged {
		t.Fatalf("%s: merged ids start at %d, want %d", label, got[0].Merged, want[0].Merged)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Merged != got[i-1].Merged+1 {
			t.Fatalf("%s: merged ids not sequential at %d: %v then %v", label, i, got[i-1], got[i])
		}
	}
}

func firstDivergence(got, want []resultSig) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return fmt.Sprintf("index %d: got %v, want %v", i, got[i], want[i])
		}
	}
	return fmt.Sprintf("length only (%d vs %d)", len(got), len(want))
}

// TestParallelBatchProbeParity is the central guarantee of the probe
// worker pool: for every pool size and batch size, ProcessBatch over
// the seeded nbData and rwData streams yields the result sequence of
// the serial per-document path — same pairs, same arrival-order
// grouping, same merged-document ids — across window tumbles, and the
// output is deterministic across repeated identical runs. Run under
// -race this also exercises the concurrent probe phase for data races.
func TestParallelBatchProbeParity(t *testing.T) {
	gens := []datagen.Generator{datagen.NewNoBench(1), datagen.NewServerLog(2)}
	for _, gen := range gens {
		t.Run(gen.Name(), func(t *testing.T) {
			windows := materializeWindows(gen, 3, 250)

			serial := NewWindowed(NewFPJ())
			want := make([][]resultSig, 0, len(windows))
			for _, w := range windows {
				var rs []resultSig
				for _, d := range w {
					rs = sigs(rs, serial.Process(d))
				}
				want = append(want, rs)
				serial.Tumble()
			}

			for _, pool := range []int{1, 4, 8} {
				for _, batch := range []int{3, 64} {
					t.Run(fmt.Sprintf("pool=%d/batch=%d", pool, batch), func(t *testing.T) {
						run := func() [][]resultSig {
							eng := NewFPJ()
							eng.SetProbeParallelism(pool)
							if got := eng.ProbeParallelism(); got != pool {
								t.Fatalf("ProbeParallelism = %d, want %d", got, pool)
							}
							ww := NewWindowed(eng)
							out := make([][]resultSig, 0, len(windows))
							for _, w := range windows {
								out = append(out, processBatched(ww, w, batch))
								ww.Tumble()
							}
							return out
						}
						got := run()
						// pool=1 routes through the serial loop inside
						// ProbeInsertBatch: byte-exact, not just
						// multiset-equal.
						exact := pool <= 1
						for wi := range windows {
							assertBatchParity(t, got[wi], want[wi], exact,
								fmt.Sprintf("window %d", wi))
						}
						// Determinism: an identical second run must be
						// byte-identical, worker scheduling and all.
						again := run()
						if !reflect.DeepEqual(again, got) {
							t.Fatal("repeated identical run diverged: batch probing is nondeterministic")
						}
					})
				}
			}
		})
	}
}

// TestParallelBatchDuplicateSuppression feeds duplicate deliveries both
// within one batch and across batches: the batched path must suppress
// them exactly like the serial path does.
func TestParallelBatchDuplicateSuppression(t *testing.T) {
	docs := datagen.NewNoBench(7).Window(120)
	// Interleave duplicates: every third document is delivered twice in
	// a row, and the first twenty are re-delivered at the end.
	var stream []document.Document
	for i, d := range docs {
		stream = append(stream, d)
		if i%3 == 0 {
			stream = append(stream, d)
		}
	}
	stream = append(stream, docs[:20]...)

	serial := NewWindowed(NewFPJ())
	var want []resultSig
	for _, d := range stream {
		want = sigs(want, serial.Process(d))
	}

	eng := NewFPJ()
	eng.SetProbeParallelism(4)
	ww := NewWindowed(eng)
	got := processBatched(ww, stream, 16)
	assertBatchParity(t, got, want, false, "duplicate stream")
	if ww.Duplicates() != serial.Duplicates() {
		t.Fatalf("duplicates = %d, want %d", ww.Duplicates(), serial.Duplicates())
	}
}

// TestProcessBatchSerialEngineFallback checks the non-BatchEngine path:
// engines without batch support still run correctly through
// ProcessBatch via the serial fallback loop, byte-for-byte.
func TestProcessBatchSerialEngineFallback(t *testing.T) {
	docs := datagen.NewServerLog(9).Window(150)

	serial := NewWindowed(NewNLJ())
	var want []resultSig
	for _, d := range docs {
		want = sigs(want, serial.Process(d))
	}

	ww := NewWindowed(NewNLJ())
	got := processBatched(ww, docs, 32)
	assertBatchParity(t, got, want, true, "NLJ fallback")
}

// TestSetProbeParallelismLifecycle pins pool reconfiguration: turning
// the pool on, resizing it, tumbling the window with a live pool and
// turning the pool back off must keep results on contract throughout.
func TestSetProbeParallelismLifecycle(t *testing.T) {
	docs := datagen.NewNoBench(11).Window(200)

	eng := NewFPJ()
	eng.SetProbeParallelism(8)
	eng.SetProbeParallelism(2) // resize down
	ww := NewWindowed(eng)
	got := processBatched(ww, docs[:100], 25)
	ww.Tumble()                // exercises FPJ.Reset with a live pool
	eng.SetProbeParallelism(0) // back to serial

	// The serial oracle tumbles at the same boundary; merged-document
	// ids keep counting across the tumble in both runs.
	serial := NewWindowed(NewFPJ())
	var want []resultSig
	for _, d := range docs[:100] {
		want = sigs(want, serial.Process(d))
	}
	assertBatchParity(t, got, want, false, "pooled half")
	serial.Tumble()
	want = want[:0]
	for _, d := range docs[100:] {
		want = sigs(want, serial.Process(d))
	}
	got = processBatched(ww, docs[100:], 25)
	// Pool off again: the serial batch loop must be byte-exact.
	assertBatchParity(t, got, want, true, "serial half")
}
