package join

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/document"
)

// Snapshot / Restore implement the operator-state contract
// (internal/state.Snapshotter) for the three join engines and the
// windowed wrapper. Documents serialize through their symbol-aware gob
// form (strings on the wire, re-interned on decode), so a snapshot
// restores correctly across processes and symbol epochs.

// Snapshot implements state.Snapshotter: the stored documents in
// insertion order.
func (e *NLJ) Snapshot(w io.Writer) error {
	return gob.NewEncoder(w).Encode(e.docs)
}

// Restore implements state.Snapshotter.
func (e *NLJ) Restore(r io.Reader) error {
	e.Reset()
	var docs []document.Document
	if err := gob.NewDecoder(r).Decode(&docs); err != nil {
		return fmt.Errorf("join: restore NLJ: %w", err)
	}
	e.docs = docs
	for _, d := range docs {
		e.memBytes += d.MemBytes()
	}
	return nil
}

// Snapshot implements state.Snapshotter: the stored documents in
// insertion order. The inverted index is derived state and is rebuilt
// on restore.
func (e *HBJ) Snapshot(w io.Writer) error {
	return gob.NewEncoder(w).Encode(e.docs)
}

// Restore implements state.Snapshotter: documents are re-inserted in
// their original order, rebuilding the posting lists (and their order)
// under the current symbol epoch.
func (e *HBJ) Restore(r io.Reader) error {
	var docs []document.Document
	if err := gob.NewDecoder(r).Decode(&docs); err != nil {
		return fmt.Errorf("join: restore HBJ: %w", err)
	}
	e.Reset()
	e.symEpoch = 0 // force docSyms to recapture the current epoch
	for _, d := range docs {
		e.Insert(d)
	}
	return nil
}

// Snapshot implements state.Snapshotter by delegating to the FP-tree's
// symbol-aware serialization.
func (e *FPJ) Snapshot(w io.Writer) error { return e.tree.Snapshot(w) }

// Restore implements state.Snapshotter.
func (e *FPJ) Restore(r io.Reader) error { return e.tree.Restore(r) }

// windowedGob is the wire form of a Windowed joiner. The engine's own
// state nests as an opaque payload so each engine controls its format.
type windowedGob struct {
	Engine        string
	NextID        uint64
	PairsEmitted  int
	DocsProcessed int
	Duplicates    int
	Store         []document.Document // sorted by ID for determinism
	Seen          []uint64            // sorted
	EngineState   []byte
}

// Snapshot implements state.Snapshotter for the windowed wrapper: the
// current window's stored documents, the dedup guard, the counters and
// the nested engine state.
func (w *Windowed) Snapshot(out io.Writer) error {
	g := windowedGob{
		Engine:        w.engine.Name(),
		NextID:        w.nextID,
		PairsEmitted:  w.pairsEmitted,
		DocsProcessed: w.docsProcessed,
		Duplicates:    w.duplicates,
	}
	for id := range w.store {
		g.Store = append(g.Store, w.store[id])
	}
	sort.Slice(g.Store, func(i, j int) bool { return g.Store[i].ID < g.Store[j].ID })
	for id := range w.seen {
		g.Seen = append(g.Seen, id)
	}
	sort.Slice(g.Seen, func(i, j int) bool { return g.Seen[i] < g.Seen[j] })
	var eng bytes.Buffer
	if err := w.engine.Snapshot(&eng); err != nil {
		return fmt.Errorf("join: snapshot %s engine: %w", g.Engine, err)
	}
	g.EngineState = eng.Bytes()
	return gob.NewEncoder(out).Encode(g)
}

// Restore implements state.Snapshotter. The receiver must wrap the
// same engine kind the snapshot was taken from.
func (w *Windowed) Restore(r io.Reader) error {
	var g windowedGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return fmt.Errorf("join: decode windowed snapshot: %w", err)
	}
	if name := w.engine.Name(); name != g.Engine {
		return fmt.Errorf("join: windowed snapshot is for engine %s, restoring into %s", g.Engine, name)
	}
	if err := w.engine.Restore(bytes.NewReader(g.EngineState)); err != nil {
		return fmt.Errorf("join: restore %s engine: %w", g.Engine, err)
	}
	w.nextID = g.NextID
	w.pairsEmitted = g.PairsEmitted
	w.docsProcessed = g.DocsProcessed
	w.duplicates = g.Duplicates
	w.store = make(map[uint64]document.Document, len(g.Store))
	w.storeBytes = 0
	for _, d := range g.Store {
		w.storeDoc(d)
	}
	w.seen = make(map[uint64]struct{}, len(g.Seen))
	for _, id := range g.Seen {
		w.seen[id] = struct{}{}
	}
	w.updateSizes()
	return nil
}
