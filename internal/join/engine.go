// Package join implements the local window-join engines compared in
// the paper's Section VII-E.5: the FP-tree join (FPJ, the paper's
// contribution), the Nested Loop Join (NLJ) and the Hash-Based Join
// (HBJ) baselines. All three compute the identical schema-free natural
// join result; they differ only in storage and probing strategy.
package join

import (
	"fmt"
	"slices"

	"repro/internal/document"
	"repro/internal/state"
)

// Pair is one joined document pair of the result, ordered so that
// LeftID < RightID; each joinable pair is reported exactly once.
type Pair struct {
	LeftID  uint64
	RightID uint64
}

// Engine is a window-local natural-join engine. Engines are not safe
// for concurrent use: each Joiner task owns its engines.
type Engine interface {
	// Name identifies the algorithm ("FPJ", "NLJ", "HBJ").
	Name() string
	// Insert stores a document for matching against later probes.
	Insert(d document.Document)
	// Probe returns the ids of all stored documents joinable with d,
	// excluding d itself. The order of ids is unspecified. The
	// returned slice may be a buffer owned by the engine, valid only
	// until the next Probe/ProbeInsert call; callers that retain it
	// must copy.
	Probe(d document.Document) []uint64
	// ProbeInsert probes first, then stores the document; the
	// streaming Joiner uses this so every joinable pair within a
	// window is reported exactly once. The result slice follows the
	// same ownership rule as Probe.
	ProbeInsert(d document.Document) []uint64
	// Size reports the number of stored documents.
	Size() int
	// Reset evicts all state when the tumbling window closes.
	Reset()
	// Engines implement the operator-state contract (see
	// internal/state): Snapshot serializes the engine's window state
	// symbol-awarely and Restore rebuilds it, re-interning under the
	// current symbol epoch.
	state.Snapshotter
}

// MemoryAccounter is implemented by components that can estimate their
// resident heap footprint cheaply (O(1) or amortised O(1) per update).
// The memory governor reads the estimate on every admission, so
// implementations must not scan their state to answer.
type MemoryAccounter interface {
	// MemBytes estimates resident bytes. Estimates, not allocator
	// truth: the governor compares them against a budget of the same
	// vintage, so only relative stability matters.
	MemBytes() int64
}

// EngineMemBytes estimates an engine's footprint, zero when the engine
// does not account.
func EngineMemBytes(e Engine) int64 {
	if a, ok := e.(MemoryAccounter); ok {
		return a.MemBytes()
	}
	return 0
}

// New constructs an engine by algorithm name.
func New(name string) (Engine, error) {
	switch name {
	case "FPJ", "fpj":
		return NewFPJ(), nil
	case "NLJ", "nlj":
		return NewNLJ(), nil
	case "HBJ", "hbj":
		return NewHBJ(), nil
	default:
		return nil, fmt.Errorf("join: unknown engine %q", name)
	}
}

// BatchResult carries the outcome of a batch join together with the
// phase split the paper's Fig. 11 reports (creation vs join time is
// measured by the caller around BuildPhase/ProbePhase).
type BatchResult struct {
	Pairs []Pair
}

// Batch runs the engine over a full window batch: all documents are
// probed and inserted in sequence, which reports every joinable pair
// exactly once. The result is sorted for determinism.
func Batch(e Engine, docs []document.Document) BatchResult {
	var out []Pair
	for _, d := range docs {
		for _, id := range e.ProbeInsert(d) {
			p := Pair{LeftID: id, RightID: d.ID}
			if p.LeftID > p.RightID {
				p.LeftID, p.RightID = p.RightID, p.LeftID
			}
			out = append(out, p)
		}
	}
	SortPairs(out)
	return BatchResult{Pairs: out}
}

// SortPairs orders pairs lexicographically. The generic sort avoids
// the reflection-based swapper of sort.Slice, which dominated the
// batch-join profile on large result sets.
func SortPairs(ps []Pair) {
	slices.SortFunc(ps, func(a, b Pair) int {
		if a.LeftID != b.LeftID {
			if a.LeftID < b.LeftID {
				return -1
			}
			return 1
		}
		switch {
		case a.RightID < b.RightID:
			return -1
		case a.RightID > b.RightID:
			return 1
		}
		return 0
	})
}
