package join

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/document"
)

func randomDocs(r *rand.Rand, n int) []document.Document {
	attrs := []string{"a", "b", "c", "d", "e"}
	docs := make([]document.Document, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(4)
		perm := r.Perm(len(attrs))
		var ps []document.Pair
		for j := 0; j < k; j++ {
			ps = append(ps, document.Pair{
				Attr: attrs[perm[j]],
				Val:  document.EncodeInt(int64(r.Intn(3))),
			})
		}
		docs = append(docs, document.New(uint64(i+1), ps))
	}
	return docs
}

// referencePairs computes the join result by brute force.
func referencePairs(docs []document.Document) []Pair {
	var out []Pair
	for i := 0; i < len(docs); i++ {
		for j := i + 1; j < len(docs); j++ {
			if document.Joinable(docs[i], docs[j]) {
				p := Pair{LeftID: docs[i].ID, RightID: docs[j].ID}
				if p.LeftID > p.RightID {
					p.LeftID, p.RightID = p.RightID, p.LeftID
				}
				out = append(out, p)
			}
		}
	}
	SortPairs(out)
	return out
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"FPJ", "NLJ", "HBJ", "fpj", "nlj", "hbj"} {
		e, err := New(name)
		if err != nil {
			t.Errorf("New(%s): %v", name, err)
			continue
		}
		if e == nil {
			t.Errorf("New(%s) returned nil", name)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("New(bogus) must fail")
	}
}

func TestEnginesAgreeOnFigure1(t *testing.T) {
	docs := []document.Document{
		document.MustParse(1, `{"User":"A","Severity":"Warning"}`),
		document.MustParse(2, `{"User":"A","Severity":"Warning","MsgId":2}`),
		document.MustParse(3, `{"User":"A","Severity":"Error"}`),
		document.MustParse(4, `{"IP":"10.2.145.212","Severity":"Warning"}`),
		document.MustParse(5, `{"User":"B","Severity":"Critical","MsgId":1}`),
		document.MustParse(6, `{"User":"B","Severity":"Critical"}`),
		document.MustParse(7, `{"User":"B","Severity":"Warning"}`),
	}
	want := referencePairs(docs)
	for _, mk := range []func() Engine{
		func() Engine { return NewFPJ() },
		func() Engine { return NewNLJ() },
		func() Engine { return NewHBJ() },
	} {
		e := mk()
		got := Batch(e, docs).Pairs
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: pairs = %v, want %v", e.Name(), got, want)
		}
	}
}

// TestQuickEnginesEquivalent is the cross-engine correctness property:
// FPJ, NLJ and HBJ must produce identical join results on arbitrary
// batches.
func TestQuickEnginesEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocs(r, 2+r.Intn(40))
		want := referencePairs(docs)
		for _, e := range []Engine{NewFPJ(), NewNLJ(), NewHBJ()} {
			got := Batch(e, docs).Pairs
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEngineResetAndSize(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	docs := randomDocs(r, 10)
	for _, e := range []Engine{NewFPJ(), NewNLJ(), NewHBJ()} {
		for _, d := range docs {
			e.Insert(d)
		}
		if e.Size() != 10 {
			t.Errorf("%s Size = %d, want 10", e.Name(), e.Size())
		}
		e.Reset()
		if e.Size() != 0 {
			t.Errorf("%s Size after Reset = %d", e.Name(), e.Size())
		}
		// Engine remains usable after Reset.
		out := Batch(e, docs).Pairs
		want := referencePairs(docs)
		if !reflect.DeepEqual(out, want) {
			t.Errorf("%s after Reset: pairs mismatch", e.Name())
		}
	}
}

func TestProbeDoesNotInsert(t *testing.T) {
	d := document.MustParse(1, `{"a":1}`)
	for _, e := range []Engine{NewFPJ(), NewNLJ(), NewHBJ()} {
		e.Probe(d)
		if e.Size() != 0 {
			t.Errorf("%s: Probe inserted", e.Name())
		}
	}
}

func TestHBJEpochWraparound(t *testing.T) {
	e := NewHBJ()
	e.Insert(document.MustParse(1, `{"a":1,"b":2}`))
	e.epoch = ^uint32(0) // force wrap on next probe
	got := e.Probe(document.MustParse(2, `{"a":1}`))
	if !reflect.DeepEqual(got, []uint64{1}) {
		t.Errorf("post-wrap probe = %v, want [1]", got)
	}
}

func TestHBJNoDuplicateCandidates(t *testing.T) {
	e := NewHBJ()
	// Stored doc shares two pairs with the probe; it must be returned
	// once, not twice.
	e.Insert(document.MustParse(1, `{"a":1,"b":2}`))
	got := e.Probe(document.MustParse(2, `{"a":1,"b":2,"c":3}`))
	if len(got) != 1 {
		t.Errorf("candidate duplicated: %v", got)
	}
}

func TestWindowedProcess(t *testing.T) {
	w := NewWindowed(NewFPJ())
	d1 := document.MustParse(1, `{"u":"A","s":"W"}`)
	d2 := document.MustParse(2, `{"u":"A","m":2}`)
	if res := w.Process(d1); len(res) != 0 {
		t.Errorf("first doc produced results: %v", res)
	}
	res := w.Process(d2)
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	if res[0].Left != 1 || res[0].Right != 2 {
		t.Errorf("pair = %d,%d", res[0].Left, res[0].Right)
	}
	merged := res[0].Merged
	for _, attr := range []string{"u", "s", "m"} {
		if !merged.HasAttr(attr) {
			t.Errorf("merged missing %s: %v", attr, merged)
		}
	}
}

func TestWindowedDuplicateDelivery(t *testing.T) {
	w := NewWindowed(NewFPJ())
	d := document.MustParse(1, `{"a":1}`)
	w.Process(d)
	if res := w.Process(d); res != nil {
		t.Errorf("duplicate delivery produced results: %v", res)
	}
	if w.Duplicates() != 1 {
		t.Errorf("Duplicates = %d", w.Duplicates())
	}
	if w.Size() != 1 {
		t.Errorf("Size = %d, want 1", w.Size())
	}
}

func TestWindowedTumble(t *testing.T) {
	w := NewWindowed(NewHBJ())
	w.Process(document.MustParse(1, `{"a":1}`))
	w.Process(document.MustParse(2, `{"a":1}`))
	docs, pairs := w.Tumble()
	if docs != 2 || pairs != 1 {
		t.Errorf("Tumble = %d docs, %d pairs; want 2,1", docs, pairs)
	}
	// After the tumble the window is empty: the same documents join
	// again from scratch.
	if res := w.Process(document.MustParse(3, `{"a":1}`)); len(res) != 0 {
		t.Errorf("state leaked across tumble: %v", res)
	}
}

// TestQuickWindowedMatchesBatch: feeding a stream through Windowed
// produces exactly the reference pair set.
func TestQuickWindowedMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocs(r, 2+r.Intn(25))
		w := NewWindowed(NewFPJ())
		var got []Pair
		for _, d := range docs {
			for _, res := range w.Process(d) {
				p := Pair{LeftID: res.Left, RightID: res.Right}
				if p.LeftID > p.RightID {
					p.LeftID, p.RightID = p.RightID, p.LeftID
				}
				got = append(got, p)
			}
		}
		SortPairs(got)
		want := referencePairs(docs)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSortPairs(t *testing.T) {
	ps := []Pair{{3, 4}, {1, 9}, {1, 2}}
	SortPairs(ps)
	want := []Pair{{1, 2}, {1, 9}, {3, 4}}
	if !reflect.DeepEqual(ps, want) {
		t.Errorf("SortPairs = %v", ps)
	}
	if !sort.SliceIsSorted(ps, func(i, j int) bool {
		return ps[i].LeftID < ps[j].LeftID || (ps[i].LeftID == ps[j].LeftID && ps[i].RightID < ps[j].RightID)
	}) {
		t.Error("not sorted")
	}
}
