package join

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/document"
)

// collectDeliver returns a deliver func appending (query, pair) keys
// into got.
func collectDeliver(got map[string][]Pair) func(string, Result) {
	return func(q string, r Result) {
		p := Pair{LeftID: r.Left, RightID: r.Right}
		if p.LeftID > p.RightID {
			p.LeftID, p.RightID = p.RightID, p.LeftID
		}
		got[q] = append(got[q], p)
	}
}

func mdoc(t testing.TB, id uint64, js string) document.Document {
	t.Helper()
	d, err := document.Parse(id, []byte(js))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMultiSharesGroupState: two queries with identical window configs
// share one group (one FP-tree); a third with a different window gets
// its own.
func TestMultiSharesGroupState(t *testing.T) {
	m := NewMulti()
	if err := m.Register("a", QuerySpec{WindowDocs: 100}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", QuerySpec{WindowDocs: 100}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("c", QuerySpec{WindowDocs: 50}); err != nil {
		t.Fatal(err)
	}
	total, shared := m.Groups()
	if total != 2 || shared != 1 {
		t.Fatalf("groups = %d shared = %d, want 2/1", total, shared)
	}
	sa, _ := m.Status("a")
	sb, _ := m.Status("b")
	sc, _ := m.Status("c")
	if sa.Group != sb.Group {
		t.Errorf("a and b on different groups: %q vs %q", sa.Group, sb.Group)
	}
	if sc.Group == sa.Group {
		t.Errorf("c shares a's group %q", sc.Group)
	}
	if sa.SharedWith != 1 || sc.SharedWith != 0 {
		t.Errorf("shared-with: a=%d c=%d", sa.SharedWith, sc.SharedWith)
	}

	// Removing b collapses the shared group back to private.
	if !m.Unregister("b") {
		t.Fatal("unregister b failed")
	}
	total, shared = m.Groups()
	if total != 2 || shared != 0 {
		t.Errorf("after unregister: groups = %d shared = %d, want 2/0", total, shared)
	}
	// Removing the last query of a group frees the group.
	m.Unregister("a")
	if total, _ := m.Groups(); total != 1 {
		t.Errorf("after unregister a: groups = %d, want 1", total)
	}
}

// TestMultiManualWindowsArePrivate: manual-window queries never share —
// one tenant's tumble must not evict another's window.
func TestMultiManualWindowsArePrivate(t *testing.T) {
	m := NewMulti()
	m.Register("a", QuerySpec{})
	m.Register("b", QuerySpec{})
	total, shared := m.Groups()
	if total != 2 || shared != 0 {
		t.Fatalf("groups = %d shared = %d, want 2/0", total, shared)
	}
	got := map[string][]Pair{}
	m.Ingest(mdoc(t, 1, `{"x":1}`), 0, collectDeliver(got))
	if _, _, ok := m.Tumble("a", 0, nil); !ok {
		t.Fatal("tumble a failed")
	}
	// b's window survived a's tumble.
	m.Ingest(mdoc(t, 2, `{"x":1}`), 0, collectDeliver(got))
	if len(got["a"]) != 0 {
		t.Errorf("a joined across its own tumble: %v", got["a"])
	}
	if len(got["b"]) != 1 {
		t.Errorf("b lost its window to a's tumble: %v", got["b"])
	}
}

// TestMultiParityWithIsolatedRun: a query in a shared group receives
// exactly the result multiset of its isolated single-query run.
func TestMultiParityWithIsolatedRun(t *testing.T) {
	// Heterogeneous schemas so documents actually join: users, events
	// and shard records overlap on single attributes.
	docs := make([]document.Document, 0, 60)
	for i := 0; i < 60; i++ {
		var js string
		switch i % 3 {
		case 0:
			js = fmt.Sprintf(`{"user":"u%d","a":1}`, i%5)
		case 1:
			js = fmt.Sprintf(`{"user":"u%d","b":2}`, i%5)
		default:
			js = fmt.Sprintf(`{"shard":%d,"b":2}`, (i/3)%3)
		}
		docs = append(docs, mdoc(t, uint64(i+1), js))
	}

	// Shared run: two plain queries plus a filtered one, same window.
	m := NewMulti()
	m.Register("plain", QuerySpec{WindowDocs: 20})
	m.Register("twin", QuerySpec{WindowDocs: 20})
	m.Register("filtered", QuerySpec{WindowDocs: 20, Filters: []document.Pair{{Attr: "shard", Val: document.EncodeInt(0)}}})
	if total, shared := m.Groups(); total != 1 || shared != 1 {
		t.Fatalf("groups = %d shared = %d, want 1/1", total, shared)
	}
	got := map[string][]Pair{}
	for _, d := range docs {
		m.Ingest(d, 0, collectDeliver(got))
	}

	// Isolated runs, one query each.
	for _, q := range []string{"plain", "twin", "filtered"} {
		iso := NewMulti()
		spec := QuerySpec{WindowDocs: 20}
		if q == "filtered" {
			spec.Filters = []document.Pair{{Attr: "shard", Val: document.EncodeInt(0)}}
		}
		iso.Register("solo", spec)
		want := map[string][]Pair{}
		for _, d := range docs {
			iso.Ingest(d, 0, collectDeliver(want))
		}
		a, b := append([]Pair(nil), got[q]...), append([]Pair(nil), want["solo"]...)
		SortPairs(a)
		SortPairs(b)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %s: shared run diverges from isolated run: %d vs %d pairs", q, len(a), len(b))
		}
		if q == "plain" && len(a) == 0 {
			t.Error("parity test vacuous: no pairs produced")
		}
	}

	// The filtered query got a strict, non-empty subset.
	if len(got["filtered"]) == 0 || len(got["filtered"]) >= len(got["plain"]) {
		t.Errorf("filtered = %d, plain = %d; want non-empty strict subset", len(got["filtered"]), len(got["plain"]))
	}
	if len(got["plain"]) != len(got["twin"]) {
		t.Errorf("plain (%d) and twin (%d) diverge on shared state", len(got["plain"]), len(got["twin"]))
	}
}

// TestMultiThetaPredicate: θ filters results by shared-pair strength
// without changing the stored window.
func TestMultiThetaPredicate(t *testing.T) {
	m := NewMulti()
	m.Register("weak", QuerySpec{WindowDocs: 10})
	m.Register("strong", QuerySpec{WindowDocs: 10, Theta: 1.0})
	got := map[string][]Pair{}
	deliver := collectDeliver(got)
	// d1 and d2 share 1 of min(3,3) pairs; d3 contains d1's pairs
	// entirely (3 of min(3,4)).
	m.Ingest(mdoc(t, 1, `{"a":1,"b":1,"c":1}`), 0, deliver)
	m.Ingest(mdoc(t, 2, `{"a":1,"x":2,"y":3}`), 0, deliver)
	m.Ingest(mdoc(t, 3, `{"a":1,"b":1,"c":1,"d":4}`), 0, deliver)
	// All three pairs are joinable (each shares a:1 with no conflicts).
	if len(got["weak"]) != 3 {
		t.Errorf("weak = %v, want 3 pairs", got["weak"])
	}
	want := []Pair{{LeftID: 1, RightID: 3}}
	SortPairs(got["strong"])
	if !reflect.DeepEqual(got["strong"], want) {
		t.Errorf("strong = %v, want %v (only the containment pair)", got["strong"], want)
	}
	sw, _ := m.Status("weak")
	ss, _ := m.Status("strong")
	if sw.WindowDocs != 3 || ss.WindowDocs != 3 {
		t.Errorf("window fill diverged: weak=%d strong=%d, want 3", sw.WindowDocs, ss.WindowDocs)
	}
}

// TestMultiForcedTumble: the max-window-docs guard evicts a manual
// window that nobody tumbles.
func TestMultiForcedTumble(t *testing.T) {
	m := NewMulti()
	m.Register("q", QuerySpec{})
	got := map[string][]Pair{}
	forced := 0
	for i := 1; i <= 7; i++ {
		forced += m.Ingest(mdoc(t, uint64(i), `{"k":1}`), 3, collectDeliver(got))
	}
	if forced != 2 {
		t.Errorf("forced = %d, want 2 (at docs 3 and 6)", forced)
	}
	st, _ := m.Status("q")
	if st.Windows != 2 {
		t.Errorf("windows = %d, want 2", st.Windows)
	}
	if st.WindowDocs != 1 {
		t.Errorf("window fill = %d, want 1", st.WindowDocs)
	}
	if m.ForcedTumbles() != 2 {
		t.Errorf("ForcedTumbles = %d", m.ForcedTumbles())
	}
}

// TestMultiAutoTumbleMatchesWindowed: a count-window group tumbles at
// the same boundaries a plain Windowed pipeline would.
func TestMultiAutoTumbleMatchesWindowed(t *testing.T) {
	m := NewMulti()
	m.Register("q", QuerySpec{WindowDocs: 4})
	got := map[string][]Pair{}
	for i := 1; i <= 12; i++ {
		m.Ingest(mdoc(t, uint64(i), `{"k":1}`), 0, collectDeliver(got))
	}
	// Each window of 4 identical-pair docs yields C(4,2)=6 pairs.
	if len(got["q"]) != 18 {
		t.Errorf("results = %d, want 18", len(got["q"]))
	}
	st, _ := m.Status("q")
	if st.Windows != 3 || st.WindowDocs != 0 {
		t.Errorf("status = %+v, want 3 windows, empty fill", st)
	}
}

// TestMultiDemuxExternal: external results reach only the matching
// group's queries, filtered per query.
func TestMultiDemuxExternal(t *testing.T) {
	m := NewMulti()
	m.Register("all", QuerySpec{WindowDocs: 1000})
	m.Register("warn", QuerySpec{WindowDocs: 1000, Filters: []document.Pair{{Attr: "sev", Val: document.EncodeString("W")}}})
	m.Register("other", QuerySpec{WindowDocs: 500})
	got := map[string][]Pair{}
	deliver := collectDeliver(got)
	m.Demux("FPJ", 1000, Result{Left: 1, Right: 2, Merged: mdoc(t, 9, `{"sev":"W","x":1}`)}, deliver)
	m.Demux("FPJ", 1000, Result{Left: 1, Right: 3, Merged: mdoc(t, 10, `{"sev":"E","x":1}`)}, deliver)
	if len(got["all"]) != 2 || len(got["warn"]) != 1 || len(got["other"]) != 0 {
		t.Errorf("demux: all=%d warn=%d other=%d", len(got["all"]), len(got["warn"]), len(got["other"]))
	}
}

// TestMultiValidation: bad specs and duplicate ids are rejected.
func TestMultiValidation(t *testing.T) {
	m := NewMulti()
	if err := m.Register("q", QuerySpec{Engine: "nope"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := m.Register("q", QuerySpec{Theta: 1.5}); err == nil {
		t.Error("theta > 1 accepted")
	}
	if err := m.Register("q", QuerySpec{WindowDocs: -1}); err == nil {
		t.Error("negative window accepted")
	}
	if err := m.Register("", QuerySpec{}); err == nil {
		t.Error("empty id accepted")
	}
	if err := m.Register("q", QuerySpec{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("q", QuerySpec{}); err == nil {
		t.Error("duplicate id accepted")
	}
	if m.Unregister("ghost") {
		t.Error("unregister of unknown id reported true")
	}
}

// TestMultiStatusSorted: All lists queries sorted by id.
func TestMultiStatusSorted(t *testing.T) {
	m := NewMulti()
	for _, id := range []string{"c", "a", "b"} {
		m.Register(id, QuerySpec{WindowDocs: 10})
	}
	all := m.All()
	ids := make([]string, len(all))
	for i, st := range all {
		ids[i] = st.ID
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("ids not sorted: %v", ids)
	}
}
