package join

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/document"
)

// slidingOracle computes the expected sliding-window join pairs by
// brute force: pair (i, j), i < j, is produced iff both documents lie
// within one window instance, which for pane semantics means document i
// is in one of the last size/slide panes when j arrives.
func slidingOracle(docs []document.Document, size, slide int) []Pair {
	var out []Pair
	panes := size / slide
	for j := 1; j < len(docs); j++ {
		paneJ := j / slide
		for i := 0; i < j; i++ {
			paneI := i / slide
			if paneJ-paneI >= panes {
				continue // i already evicted when j arrives
			}
			if document.Joinable(docs[i], docs[j]) {
				p := Pair{LeftID: docs[i].ID, RightID: docs[j].ID}
				if p.LeftID > p.RightID {
					p.LeftID, p.RightID = p.RightID, p.LeftID
				}
				out = append(out, p)
			}
		}
	}
	SortPairs(out)
	return out
}

func runSliding(t *testing.T, docs []document.Document, size, slide int, mk func() Engine) []Pair {
	t.Helper()
	s, err := NewSliding(size, slide, mk)
	if err != nil {
		t.Fatal(err)
	}
	var got []Pair
	for _, d := range docs {
		for _, r := range s.Process(d) {
			p := Pair{LeftID: r.Left, RightID: r.Right}
			if p.LeftID > p.RightID {
				p.LeftID, p.RightID = p.RightID, p.LeftID
			}
			got = append(got, p)
		}
	}
	SortPairs(got)
	return got
}

func TestSlidingValidation(t *testing.T) {
	mk := func() Engine { return NewFPJ() }
	for _, bad := range [][2]int{{0, 1}, {4, 0}, {10, 3}, {-4, 2}} {
		if _, err := NewSliding(bad[0], bad[1], mk); err == nil {
			t.Errorf("NewSliding(%d,%d) must fail", bad[0], bad[1])
		}
	}
	if _, err := NewSliding(12, 4, mk); err != nil {
		t.Errorf("NewSliding(12,4): %v", err)
	}
}

func TestSlidingEvictsOldDocuments(t *testing.T) {
	// Window of 4 sliding by 2: doc 1 and doc 5 never coexist.
	docs := []document.Document{
		document.MustParse(1, `{"a":1}`),
		document.MustParse(2, `{"b":9}`),
		document.MustParse(3, `{"c":9}`),
		document.MustParse(4, `{"d":9}`),
		document.MustParse(5, `{"a":1}`), // joinable with 1, but 1 evicted
	}
	got := runSliding(t, docs, 4, 2, func() Engine { return NewFPJ() })
	for _, p := range got {
		if p.LeftID == 1 && p.RightID == 5 {
			t.Error("pair (1,5) produced across eviction boundary")
		}
	}
	want := slidingOracle(docs, 4, 2)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSlidingKeepsRecentDocuments(t *testing.T) {
	// Window 4 slide 2: docs 3 and 5 coexist.
	docs := []document.Document{
		document.MustParse(1, `{"x":0}`),
		document.MustParse(2, `{"y":0}`),
		document.MustParse(3, `{"a":1}`),
		document.MustParse(4, `{"z":0}`),
		document.MustParse(5, `{"a":1}`),
	}
	got := runSliding(t, docs, 4, 2, func() Engine { return NewHBJ() })
	found := false
	for _, p := range got {
		if p.LeftID == 3 && p.RightID == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("pair (3,5) missing: %v", got)
	}
}

func TestSlidingPaneCountBounded(t *testing.T) {
	s, _ := NewSliding(6, 2, func() Engine { return NewNLJ() })
	for i := 0; i < 50; i++ {
		s.Process(document.MustParse(uint64(i+1), `{"k":1}`))
	}
	if s.Panes() > 3 {
		t.Errorf("panes = %d, want <= 3", s.Panes())
	}
	if s.Size() > 6 {
		t.Errorf("window size = %d, want <= 6", s.Size())
	}
}

// TestQuickSlidingMatchesOracle: pane-based sliding execution equals
// the brute-force oracle for all three engines.
func TestQuickSlidingMatchesOracle(t *testing.T) {
	engines := map[string]func() Engine{
		"FPJ": func() Engine { return NewFPJ() },
		"NLJ": func() Engine { return NewNLJ() },
		"HBJ": func() Engine { return NewHBJ() },
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocs(r, 5+r.Intn(40))
		slide := 1 + r.Intn(4)
		size := slide * (1 + r.Intn(4))
		want := slidingOracle(docs, size, slide)
		for name, mk := range engines {
			got := runSlidingQuiet(docs, size, slide, mk)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("%s mismatch seed=%d size=%d slide=%d", name, seed, size, slide)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func runSlidingQuiet(docs []document.Document, size, slide int, mk func() Engine) []Pair {
	s, _ := NewSliding(size, slide, mk)
	var got []Pair
	for _, d := range docs {
		for _, r := range s.Process(d) {
			p := Pair{LeftID: r.Left, RightID: r.Right}
			if p.LeftID > p.RightID {
				p.LeftID, p.RightID = p.RightID, p.LeftID
			}
			got = append(got, p)
		}
	}
	SortPairs(got)
	return got
}

func TestSlidingEqualsTumblingWhenSlideEqualsSize(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	docs := randomDocs(r, 30)
	got := runSlidingQuiet(docs, 10, 10, func() Engine { return NewFPJ() })
	// Tumbling reference: windows of 10.
	var want []Pair
	for start := 0; start < len(docs); start += 10 {
		end := start + 10
		if end > len(docs) {
			end = len(docs)
		}
		want = append(want, referencePairs(docs[start:end])...)
	}
	SortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("sliding(W,W) differs from tumbling(W)")
	}
}

func TestProbeOnlyDoesNotStore(t *testing.T) {
	w := NewWindowed(NewFPJ())
	w.Process(document.MustParse(1, `{"a":1}`))
	res := w.ProbeOnly(document.MustParse(2, `{"a":1}`))
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	if w.Size() != 1 {
		t.Errorf("ProbeOnly stored the document: size=%d", w.Size())
	}
}
