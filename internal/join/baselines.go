package join

import (
	"repro/internal/document"
	"repro/internal/symbol"
)

// NLJ is the Nested Loop Join baseline: every probe scans all stored
// documents and applies the join test (paper Sec. VII-A).
type NLJ struct {
	docs []document.Document

	// memBytes tracks the stored documents' accounted footprint
	// incrementally so MemBytes answers in O(1).
	memBytes int64
}

// NewNLJ creates an empty nested-loop engine.
func NewNLJ() *NLJ { return &NLJ{} }

// Name implements Engine.
func (e *NLJ) Name() string { return "NLJ" }

// Insert implements Engine.
func (e *NLJ) Insert(d document.Document) {
	e.docs = append(e.docs, d)
	e.memBytes += d.MemBytes()
}

// Probe implements Engine.
func (e *NLJ) Probe(d document.Document) []uint64 {
	var out []uint64
	for _, s := range e.docs {
		if s.ID != d.ID && document.Joinable(s, d) {
			out = append(out, s.ID)
		}
	}
	return out
}

// ProbeInsert implements Engine.
func (e *NLJ) ProbeInsert(d document.Document) []uint64 {
	out := e.Probe(d)
	e.Insert(d)
	return out
}

// Size implements Engine.
func (e *NLJ) Size() int { return len(e.docs) }

// Reset implements Engine.
func (e *NLJ) Reset() {
	e.docs = nil
	e.memBytes = 0
}

// MemBytes implements MemoryAccounter.
func (e *NLJ) MemBytes() int64 { return e.memBytes }

// HBJ is the Hash-Based Join baseline: an inverted index over the
// individual attribute-value pairs, "essentially resulting in some sort
// of inverted index over the contents of the documents" (paper
// Sec. VII-A). Probing walks the posting lists of the probe's pairs and
// verifies every occurrence with the full join test; only successful
// partners are de-duplicated. A document sharing several pairs with the
// probe is therefore verified once per shared pair — the cost behind
// the paper's observation that highly interconnected data produces
// "large document lists for a single hash value" and makes NLJ the
// faster baseline on the real-world logs, while diverse data with short
// posting lists lets HBJ overtake NLJ.
type HBJ struct {
	docs  []document.Document
	index map[symbol.Pair][]int // interned pair -> indexes into docs

	// symEpoch is the symbol-table epoch the index keys belong to; it
	// may only move while the engine is empty (symbol.Reset is
	// quiesce-only).
	symEpoch uint64

	// seen de-duplicates successful partners per probe without
	// reallocating: seen[i] == epoch marks doc i as already reported.
	seen  []uint32
	epoch uint32

	// memBytes tracks the accounted footprint (documents + posting-list
	// entries + dedup stamps) incrementally for O(1) MemBytes.
	memBytes int64
}

// NewHBJ creates an empty hash-based engine.
func NewHBJ() *HBJ {
	return &HBJ{index: make(map[symbol.Pair][]int), symEpoch: symbol.Epoch()}
}

// Name implements Engine.
func (e *HBJ) Name() string { return "HBJ" }

// docSyms returns d's pair symbols under the current epoch, guarding
// the index keys against a symbol.Reset under a live engine.
func (e *HBJ) docSyms(d document.Document) []symbol.Pair {
	if se := symbol.Epoch(); se != e.symEpoch {
		if len(e.docs) != 0 {
			panic("join: symbol epoch changed under a live HBJ engine (symbol.Reset is quiesce-only)")
		}
		e.symEpoch = se
	}
	return d.InternedPairs()
}

// Insert implements Engine.
func (e *HBJ) Insert(d document.Document) {
	syms := e.docSyms(d)
	idx := len(e.docs)
	e.docs = append(e.docs, d)
	e.seen = append(e.seen, 0)
	for _, s := range syms {
		e.index[s] = append(e.index[s], idx)
	}
	// 8 bytes per posting entry, 4 per dedup stamp.
	e.memBytes += d.MemBytes() + int64(len(syms))*8 + 4
}

// Probe implements Engine.
func (e *HBJ) Probe(d document.Document) []uint64 {
	syms := e.docSyms(d)
	e.epoch++
	if e.epoch == 0 { // wrapped: clear stamps
		for i := range e.seen {
			e.seen[i] = 0
		}
		e.epoch = 1
	}
	var out []uint64
	for _, s := range syms {
		for _, idx := range e.index[s] {
			if e.seen[idx] == e.epoch {
				continue // already verified through another pair
			}
			e.seen[idx] = e.epoch
			cand := e.docs[idx]
			if cand.ID != d.ID && document.Joinable(cand, d) {
				out = append(out, cand.ID)
			}
		}
	}
	return out
}

// ProbeInsert implements Engine.
func (e *HBJ) ProbeInsert(d document.Document) []uint64 {
	out := e.Probe(d)
	e.Insert(d)
	return out
}

// Size implements Engine.
func (e *HBJ) Size() int { return len(e.docs) }

// Reset implements Engine.
func (e *HBJ) Reset() {
	e.docs = nil
	e.index = make(map[symbol.Pair][]int)
	e.seen = nil
	e.epoch = 0
	e.memBytes = 0
}

// MemBytes implements MemoryAccounter.
func (e *HBJ) MemBytes() int64 { return e.memBytes }
