package join

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/document"
)

// EventTime implements event-time tumbling windows: the paper's windows
// are time-based ("two documents can only be joined if they belong to
// the same time (or count-based) window", Sec. I-A), and this variant
// joins documents by the timestamps they carry rather than by arrival
// order.
//
// A TimestampFunc extracts each document's event time (any int64
// clock: epoch seconds, millis, a logical counter). Documents whose
// timestamps fall into the same [k*width, (k+1)*width) interval join;
// multiple window instances stay open concurrently to absorb
// out-of-order arrivals, and an instance is evicted once the observed
// watermark (maximum event time seen) passes its end by more than the
// allowed lateness. Documents arriving later than that are dropped and
// counted.
type EventTime struct {
	extract   TimestampFunc
	width     int64
	lateness  int64
	strip     string
	mkEngine  func() Engine
	windows   map[int64]*Windowed // window key -> state
	watermark int64
	sawAny    bool

	dropped int
	closed  int
}

// TimestampFunc extracts a document's event time. ok=false documents
// are dropped (no usable timestamp).
type TimestampFunc func(d document.Document) (ts int64, ok bool)

// TimestampAttr builds a TimestampFunc reading an integer attribute.
func TimestampAttr(attr string) TimestampFunc {
	return func(d document.Document) (int64, bool) {
		v, ok := d.Get(attr)
		if !ok || len(v) < 2 || v[0] != 'i' {
			return 0, false
		}
		ts, err := strconv.ParseInt(v[1:], 10, 64)
		if err != nil {
			return 0, false
		}
		return ts, true
	}
}

// NewEventTime builds an event-time joiner with the given window width
// and allowed lateness (both in the extractor's time unit).
func NewEventTime(width, lateness int64, extract TimestampFunc, mk func() Engine) (*EventTime, error) {
	if width <= 0 {
		return nil, fmt.Errorf("join: event-time window width %d must be positive", width)
	}
	if lateness < 0 {
		return nil, fmt.Errorf("join: allowed lateness %d must be non-negative", lateness)
	}
	if extract == nil {
		return nil, fmt.Errorf("join: a timestamp extractor is required")
	}
	return &EventTime{
		extract:  extract,
		width:    width,
		lateness: lateness,
		mkEngine: mk,
		windows:  make(map[int64]*Windowed),
	}, nil
}

// StripTimestamp removes the named attribute from documents before
// joining. Event timestamps are usually transport metadata: two events
// about the same entity rarely carry the *identical* timestamp, so
// leaving the attribute in place makes almost every within-window pair
// conflict on it. Stripping it restores the intended semantics — join
// on content, window by time.
func (e *EventTime) StripTimestamp(attr string) *EventTime {
	e.strip = attr
	return e
}

// Process routes the document into its event-time window, returning the
// join results it completes there. Documents without a usable
// timestamp, or older than watermark - lateness, are dropped.
func (e *EventTime) Process(d document.Document) []Result {
	ts, ok := e.extract(d)
	if !ok {
		e.dropped++
		return nil
	}
	if e.sawAny && ts < e.watermark-e.lateness {
		e.dropped++
		return nil
	}
	if !e.sawAny || ts > e.watermark {
		e.watermark = ts
		e.sawAny = true
		e.evict()
	}
	key := floorDiv(ts, e.width)
	w := e.windows[key]
	if w == nil {
		w = NewWindowed(e.mkEngine())
		e.windows[key] = w
	}
	if e.strip != "" && d.HasAttr(e.strip) {
		pairs := make([]document.Pair, 0, d.Len()-1)
		for _, p := range d.Pairs() {
			if p.Attr != e.strip {
				pairs = append(pairs, p)
			}
		}
		d = document.New(d.ID, pairs)
	}
	return w.Process(d)
}

// evict closes window instances whose end passed the watermark by more
// than the allowed lateness.
func (e *EventTime) evict() {
	for key, w := range e.windows {
		end := (key + 1) * e.width
		if end+e.lateness <= e.watermark {
			w.Tumble()
			delete(e.windows, key)
			e.closed++
		}
	}
}

// Flush closes every open window instance (end of stream).
func (e *EventTime) Flush() {
	for key, w := range e.windows {
		w.Tumble()
		delete(e.windows, key)
		e.closed++
	}
}

// OpenWindows reports the currently open window keys, sorted.
func (e *EventTime) OpenWindows() []int64 {
	out := make([]int64, 0, len(e.windows))
	for k := range e.windows {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dropped counts documents rejected for missing timestamps or
// exceeding the allowed lateness.
func (e *EventTime) Dropped() int { return e.dropped }

// Closed counts evicted window instances.
func (e *EventTime) Closed() int { return e.closed }

// floorDiv is integer division rounding toward negative infinity, so
// negative timestamps window correctly.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
