package join

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/document"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// govForTest builds a governor over the given store with real counters
// so tests can assert on the ladder telemetry.
func govForTest(budget int64, st state.Store, maxPinned int) (*Governor, GovernorInstruments) {
	reg := telemetry.NewRegistry()
	ins := GovernorInstruments{
		SpillPanes:    reg.Counter("state_spill_panes_total"),
		SpillBytes:    reg.Counter("state_spill_bytes_total"),
		Reloads:       reg.Counter("state_spill_reloads_total"),
		Failures:      reg.Counter("state_spill_failures_total"),
		ForcedTumbles: reg.Counter("state_forced_tumbles_total"),
		Shed:          reg.Counter("state_shed_total"),
		Pressure:      reg.Gauge("state_pressure_level"),
		Accounted:     reg.Gauge("state_accounted_bytes"),
	}
	return NewGovernor(GovernorConfig{Budget: budget, Store: st, Task: "test", MaxPinned: maxPinned, Ins: ins}), ins
}

// paneBytes measures each slide-sized chunk of docs as its own
// Windowed engine — the exact per-pane resident cost the spill ladder
// works against — returning the per-pane maximum and the sum over the
// chunks a full window holds (the window's total state bytes).
func paneBytes(t *testing.T, docs []document.Document, size, slide int, mk func() Engine) (paneMax, windowTotal int64) {
	t.Helper()
	var chunks []int64
	for start := 0; start < len(docs); start += slide {
		end := start + slide
		if end > len(docs) {
			end = len(docs)
		}
		w := NewWindowed(mk())
		for _, d := range docs[start:end] {
			w.Process(d)
		}
		chunks = append(chunks, w.MemBytes())
	}
	for i, n := range chunks {
		if n > paneMax {
			paneMax = n
		}
		if i >= len(chunks)-size/slide {
			windowTotal += n
		}
	}
	return paneMax, windowTotal
}

// runSlidingGoverned streams docs through a governed sliding window and
// returns the normalized pairs plus the maximum post-govern accounted
// bytes observed.
func runSlidingGoverned(t *testing.T, s *Sliding, docs []document.Document) ([]Pair, int64) {
	t.Helper()
	var got []Pair
	var maxAccounted int64
	for _, d := range docs {
		for _, r := range s.Process(d) {
			p := Pair{LeftID: r.Left, RightID: r.Right}
			if p.LeftID > p.RightID {
				p.LeftID, p.RightID = p.RightID, p.LeftID
			}
			got = append(got, p)
		}
		if acc := s.Governor().Accounted(); acc > maxAccounted {
			maxAccounted = acc
		}
	}
	SortPairs(got)
	return got, maxAccounted
}

// TestSlidingSpillParity is the tentpole acceptance test: a sliding
// window whose total state is several times the memory budget spills
// panes to the store, reloads them on probe, and still produces the
// exact oracle result — windows larger than RAM work, with accounted
// bytes bounded by budget + one pane of slack.
func TestSlidingSpillParity(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	docs := randomDocs(r, 600)
	const size, slide = 200, 20
	mk := func() Engine { return NewFPJ() }

	paneMax, windowTotal := paneBytes(t, docs, size, slide, mk)
	budget := windowTotal / 5
	if windowTotal < 4*budget {
		t.Fatalf("calibration: window state %d < 4x budget %d", windowTotal, budget)
	}

	gov, ins := govForTest(budget, state.NewMemStore(), 1)
	s, err := NewSliding(size, slide, mk)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGovernor(gov)

	got, maxAccounted := runSlidingGoverned(t, s, docs)
	want := slidingOracle(docs, size, slide)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("governed sliding diverged from oracle: got %d pairs, want %d", len(got), len(want))
	}
	if ins.SpillPanes.Value() == 0 {
		t.Error("no panes spilled despite window state over budget")
	}
	if ins.Reloads.Value() == 0 {
		t.Error("no spilled panes reloaded despite probes")
	}
	if ins.SpillBytes.Value() == 0 {
		t.Error("spill bytes counter stayed zero")
	}
	if s.ForcedEvictions() != 0 {
		t.Errorf("clean run force-evicted %d panes", s.ForcedEvictions())
	}
	if s.DroppedPanes() != 0 {
		t.Errorf("clean run dropped %d panes", s.DroppedPanes())
	}
	if maxAccounted > budget+paneMax {
		t.Errorf("accounted bytes %d exceed budget %d + one pane %d", maxAccounted, budget, paneMax)
	}
}

// TestSlidingSpillParityAllEngines: the spill path is engine-agnostic —
// NLJ and HBJ panes snapshot, spill and reload with the same parity.
func TestSlidingSpillParityAllEngines(t *testing.T) {
	engines := map[string]func() Engine{
		"NLJ": func() Engine { return NewNLJ() },
		"HBJ": func() Engine { return NewHBJ() },
	}
	r := rand.New(rand.NewSource(11))
	docs := randomDocs(r, 200)
	const size, slide = 60, 10
	for name, mk := range engines {
		_, windowTotal := paneBytes(t, docs, size, slide, mk)
		gov, ins := govForTest(windowTotal/4, state.NewMemStore(), 1)
		s, err := NewSliding(size, slide, mk)
		if err != nil {
			t.Fatal(err)
		}
		s.SetGovernor(gov)
		got, _ := runSlidingGoverned(t, s, docs)
		want := slidingOracle(docs, size, slide)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: governed sliding diverged from oracle", name)
		}
		if ins.SpillPanes.Value() == 0 {
			t.Errorf("%s: no spills happened", name)
		}
	}
}

// TestSlidingSpillFSStoreParity runs the parity check against the real
// filesystem store — the production spill target — including the
// DEFLATE-compressed rung.
func TestSlidingSpillFSStoreParity(t *testing.T) {
	fsStore, err := state.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	docs := randomDocs(r, 300)
	const size, slide = 100, 20
	mk := func() Engine { return NewFPJ() }
	_, windowTotal := paneBytes(t, docs, size, slide, mk)
	// A tight budget pushes the ratio past the compress rung (1.25x)
	// while probing reloads, exercising both spill framings.
	gov, ins := govForTest(windowTotal/4, fsStore, 1)
	s, err := NewSliding(size, slide, mk)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGovernor(gov)
	got, _ := runSlidingGoverned(t, s, docs)
	want := slidingOracle(docs, size, slide)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("FS-store governed sliding diverged from oracle")
	}
	if ins.SpillPanes.Value() == 0 || ins.Reloads.Value() == 0 {
		t.Errorf("spills=%d reloads=%d, want both > 0", ins.SpillPanes.Value(), ins.Reloads.Value())
	}
}

// TestSlidingSpillWriteFaultsParity injects transient write faults
// (ENOSPC, torn writes, short writes) into the spill store. Spill
// failures are correctness-neutral by construction — the pane stays
// resident until a write-back-verified copy exists — so the result
// must still match the oracle exactly, with the failures counted.
func TestSlidingSpillWriteFaultsParity(t *testing.T) {
	events := []state.FaultEvent{
		{Kind: state.FaultENOSPC, After: 0, Count: 2},
		{Kind: state.FaultTornWrite, After: 3, Count: 2},
		{Kind: state.FaultShortWrite, After: 6, Count: 1},
		{Kind: state.FaultLatency, After: 8, Count: 1, Latency: time.Millisecond},
		{Kind: state.FaultENOSPC, After: 11, Count: 1},
	}
	faulty := state.NewFaultStore(state.NewMemStore(), events)

	r := rand.New(rand.NewSource(23))
	docs := randomDocs(r, 400)
	const size, slide = 120, 20
	mk := func() Engine { return NewFPJ() }
	_, windowTotal := paneBytes(t, docs, size, slide, mk)
	gov, ins := govForTest(windowTotal/4, faulty, 1)
	s, err := NewSliding(size, slide, mk)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGovernor(gov)

	got, _ := runSlidingGoverned(t, s, docs)
	want := slidingOracle(docs, size, slide)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("write faults broke parity: got %d pairs, want %d", len(got), len(want))
	}
	if faulty.Injected() == 0 {
		t.Fatal("fault script never fired; the test exercised nothing")
	}
	if ins.Failures.Value() == 0 {
		t.Error("injected write faults were not counted as spill failures")
	}
	if s.DroppedPanes() != 0 {
		t.Errorf("write faults must not lose panes, dropped %d", s.DroppedPanes())
	}
}

// TestSlidingReloadCorruptionDegrades corrupts a spilled pane's file
// at rest (after its write-time verification passed) and checks the
// degradation contract: the reload fails against the CRC, the pane is
// dropped and counted, every produced result is still oracle-correct,
// and nothing panics.
func TestSlidingReloadCorruptionDegrades(t *testing.T) {
	mem := state.NewMemStore()
	r := rand.New(rand.NewSource(41))
	docs := randomDocs(r, 400)
	const size, slide = 120, 20
	mk := func() Engine { return NewFPJ() }
	_, windowTotal := paneBytes(t, docs, size, slide, mk)
	budget := windowTotal / 4
	gov, ins := govForTest(budget, mem, 1)
	s, err := NewSliding(size, slide, mk)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGovernor(gov)

	var got []Pair
	corrupted := false
	for _, d := range docs {
		for _, res := range s.Process(d) {
			p := Pair{LeftID: res.Left, RightID: res.Right}
			if p.LeftID > p.RightID {
				p.LeftID, p.RightID = p.RightID, p.LeftID
			}
			got = append(got, p)
		}
		// As soon as the first spill file exists, corrupt every spilled
		// pane at rest, once: flip a byte in each stored payload.
		if !corrupted {
			for _, win := range mem.Windows("test") {
				data, err := mem.Load("test", win)
				if err != nil || len(data) == 0 {
					continue
				}
				data[len(data)/2] ^= 0xff
				if err := mem.Save("test", win, data); err != nil {
					t.Fatal(err)
				}
				corrupted = true
			}
		}
	}
	if !corrupted {
		t.Fatal("no spill file ever appeared to corrupt")
	}
	if s.DroppedPanes() == 0 {
		t.Fatal("corrupted pane was not dropped")
	}
	if ins.Failures.Value() == 0 {
		t.Error("corruption reload failure was not counted")
	}
	// Every emitted pair must be a true oracle pair (no corruption leaks
	// into results); completeness is necessarily reduced.
	SortPairs(got)
	oracle := map[Pair]bool{}
	for _, p := range slidingOracle(docs, size, slide) {
		oracle[p] = true
	}
	for _, p := range got {
		if !oracle[p] {
			t.Fatalf("degraded run produced non-oracle pair %v", p)
		}
	}
}

// TestSlidingPersistentENOSPCForceTumbles starves the spill store
// permanently: every Save fails with ENOSPC, so rung 1 never relieves
// pressure and the ladder must climb to rung 3 — force-evicting panes
// early. The stream completes, evictions are counted, and every result
// is still oracle-correct.
func TestSlidingPersistentENOSPCForceTumbles(t *testing.T) {
	faulty := state.NewFaultStore(state.NewMemStore(), []state.FaultEvent{
		{Kind: state.FaultENOSPC, After: 0, Count: 1 << 30},
	})
	r := rand.New(rand.NewSource(63))
	docs := randomDocs(r, 400)
	const size, slide = 120, 20
	mk := func() Engine { return NewFPJ() }
	_, windowTotal := paneBytes(t, docs, size, slide, mk)
	gov, ins := govForTest(windowTotal/6, faulty, 1)
	s, err := NewSliding(size, slide, mk)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGovernor(gov)

	got, _ := runSlidingGoverned(t, s, docs)
	if s.ForcedEvictions() == 0 {
		t.Fatal("persistent ENOSPC never climbed to forced eviction")
	}
	if ins.ForcedTumbles.Value() == 0 {
		t.Error("forced tumbles were not counted")
	}
	if ins.Failures.Value() == 0 {
		t.Error("failed spills were not counted")
	}
	oracle := map[Pair]bool{}
	for _, p := range slidingOracle(docs, size, slide) {
		oracle[p] = true
	}
	for _, p := range got {
		if !oracle[p] {
			t.Fatalf("degraded run produced non-oracle pair %v", p)
		}
	}
}

// TestSlidingEvictionReleasesPane is the regression test for the pane
// eviction leak: evicting the oldest pane must leave its Windowed
// engine unreachable (the slice slot is nilled before reslicing), so
// the garbage collector can reclaim the pane's FP-tree.
func TestSlidingEvictionReleasesPane(t *testing.T) {
	s, err := NewSliding(4, 2, func() Engine { return NewFPJ() })
	if err != nil {
		t.Fatal(err)
	}
	// Fill pane 0 and pane 1, then watch pane 0's engine.
	for i := 0; i < 4; i++ {
		s.Process(document.MustParse(uint64(i+1), `{"k":1}`))
	}
	collected := make(chan struct{})
	runtime.SetFinalizer(s.panes[0].win, func(*Windowed) { close(collected) })
	// The next slide evicts pane 0.
	for i := 4; i < 8; i++ {
		s.Process(document.MustParse(uint64(i+1), `{"k":1}`))
	}
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatal("evicted pane still reachable after 5s of GC: eviction leaks the pane")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestGovernorSpillCompression: from the compress rung up, spill files
// are DEFLATE-framed when that shrinks them, and reload remains
// transparent.
func TestGovernorSpillCompression(t *testing.T) {
	mem := state.NewMemStore()
	gov, _ := govForTest(1000, mem, 1)

	w := NewWindowed(NewFPJ())
	for i := 0; i < 60; i++ {
		w.Process(document.MustParse(uint64(i+1), `{"attr_one":"value","attr_two":"value","shared":1}`))
	}
	// Raw spill below the compress rung.
	gov.Account(gov.Budget())
	if gov.Level() >= PressureCompress {
		t.Fatal("calibration: already at compress rung")
	}
	rawBytes, err := gov.Spill(1, "unit", w)
	if err != nil {
		t.Fatal(err)
	}
	// Compressed spill at the compress rung.
	gov.Account(2 * gov.Budget())
	if gov.Level() < PressureCompress {
		t.Fatal("calibration: not at compress rung")
	}
	zBytes, err := gov.Spill(2, "unit", w)
	if err != nil {
		t.Fatal(err)
	}
	if zBytes >= rawBytes {
		t.Errorf("compressed spill %d >= raw spill %d on repetitive state", zBytes, rawBytes)
	}
	for _, seq := range []int{1, 2} {
		back := NewWindowed(NewFPJ())
		if err := gov.Reload(seq, "unit", back); err != nil {
			t.Fatalf("reload seq %d: %v", seq, err)
		}
		if back.Size() != w.Size() {
			t.Errorf("seq %d reloaded %d docs, want %d", seq, back.Size(), w.Size())
		}
	}
}

// TestMultiSpillParityAndDrain spills groups out of a Multi registry
// under a tight budget and checks that shared window state reloads
// transparently: per query, the delivered result sequence equals the
// ungoverned twin's exactly (a spilled group's results arrive later —
// its documents backlog until reload — but none are lost or wrong),
// and the end-of-stream drain flushes every backlog.
func TestMultiSpillParityAndDrain(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	docs := randomDocs(r, 300)

	collect := func(sink map[string][]Pair) func(string, Result) {
		return func(q string, res Result) {
			p := Pair{LeftID: res.Left, RightID: res.Right}
			if p.LeftID > p.RightID {
				p.LeftID, p.RightID = p.RightID, p.LeftID
			}
			sink[q] = append(sink[q], p)
		}
	}

	// Ungoverned reference.
	ref := NewMulti()
	if err := ref.Register("a", QuerySpec{WindowDocs: 50}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Register("b", QuerySpec{WindowDocs: 120}); err != nil {
		t.Fatal(err)
	}
	want := map[string][]Pair{}
	for _, d := range docs {
		ref.Ingest(d, 0, collect(want))
	}

	// Governed run with a budget forcing group spills.
	gov, ins := govForTest(ref.MemBytes()/4+1, state.NewMemStore(), 1)
	m := NewMulti()
	m.SetGovernor(gov)
	if err := m.Register("a", QuerySpec{WindowDocs: 50}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", QuerySpec{WindowDocs: 120}); err != nil {
		t.Fatal(err)
	}
	got := map[string][]Pair{}
	for _, d := range docs {
		m.Ingest(d, 0, collect(got))
	}
	m.DrainSpilled(0, collect(got))

	if !reflect.DeepEqual(got, want) {
		for q := range want {
			t.Logf("query %s: got %d deliveries, want %d", q, len(got[q]), len(want[q]))
		}
		t.Fatal("governed multi diverged from ungoverned reference")
	}
	if ins.SpillPanes.Value() == 0 {
		t.Error("no groups were spilled despite the tight budget")
	}
	if ins.Reloads.Value() == 0 {
		t.Error("no spilled groups were reloaded")
	}
	// Drain flushes every backlog (a second drain has nothing left to
	// deliver) and leaves pressure below the shed rung; groups may
	// legitimately re-spill if residency would still exceed the budget.
	extra := map[string][]Pair{}
	m.DrainSpilled(0, collect(extra))
	if len(extra) != 0 {
		t.Errorf("second drain delivered %d queries' worth of results, want none", len(extra))
	}
	if gov.Level() >= PressureShed {
		t.Errorf("pressure still at %v after drain", gov.Level())
	}
}
