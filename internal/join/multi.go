package join

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/document"
)

// This file implements the multi-query layer over the window engines:
// many standing queries evaluated against one ingested stream, sharing
// window state (for FPJ, one FP-tree) whenever their window
// configurations align. The sharing rule follows Dossinger & Michel's
// multi-query join optimization: the expensive operator state — the
// window store and its probe index — is keyed by (engine, window
// config) only, while the cheap per-query predicates (θ strength,
// attribute filters) are applied as a demultiplexing step over the
// shared probe's results. A document is therefore parsed once and
// probed once per distinct window configuration, not once per query.

// QuerySpec declares one standing query.
type QuerySpec struct {
	// Engine is the join engine of the query's window state ("FPJ"
	// default, "NLJ", "HBJ"). Queries with different engines never
	// share state.
	Engine string
	// WindowDocs > 0 tumbles the query's window automatically after
	// that many documents. 0 means the window only tumbles on an
	// explicit Tumble call (or a forced tumble at the max-window-docs
	// guard); such manual windows get private state — sharing them
	// would let one tenant's tumble evict another tenant's window.
	WindowDocs int
	// Theta in [0,1] is the query's join-strength predicate: a result
	// pair (L, R) sharing s attribute-value pairs is delivered only if
	// s >= ceil(Theta * min(|L|, |R|)). 0 keeps the paper's natural
	// join (any shared pair); 1 demands containment of the smaller
	// document's pair set. Theta never changes what is stored in the
	// window, only which shared-probe results the query receives, so
	// it composes with state sharing.
	Theta float64
	// Filters are canonical attribute-value pairs the merged result
	// document must contain for the query to receive it. Filters apply
	// to results, not to ingestion: the window state stays identical
	// across queries, which is what makes it shareable.
	Filters []document.Pair
}

// withDefaults normalises the spec.
func (s QuerySpec) withDefaults() QuerySpec {
	if s.Engine == "" {
		s.Engine = "FPJ"
	}
	out := s
	// Sort filters so equal filter sets compare equal in tests and
	// render deterministically.
	if len(s.Filters) > 0 {
		f := make([]document.Pair, len(s.Filters))
		copy(f, s.Filters)
		sort.Slice(f, func(i, j int) bool {
			if f[i].Attr != f[j].Attr {
				return f[i].Attr < f[j].Attr
			}
			return f[i].Val < f[j].Val
		})
		out.Filters = f
	}
	return out
}

// Validate rejects malformed specs.
func (s QuerySpec) Validate() error {
	if s.Engine != "" {
		if _, err := New(s.Engine); err != nil {
			return err
		}
	}
	if s.WindowDocs < 0 {
		return fmt.Errorf("join: negative window size %d", s.WindowDocs)
	}
	if s.Theta < 0 || s.Theta > 1 {
		return fmt.Errorf("join: theta %g outside [0,1]", s.Theta)
	}
	return nil
}

// GroupKey identifies the window state a query maps to. Queries whose
// keys are equal share one engine instance (for FPJ: one FP-tree).
type GroupKey struct {
	Engine     string
	WindowDocs int
	// owner is empty for shared groups; manual-window (WindowDocs 0)
	// queries carry their query id here so each gets private state.
	owner string
}

// String renders the key as a stable label, e.g. "FPJ/w1000" or
// "FPJ/manual/q3" for a private manual-window group.
func (k GroupKey) String() string {
	if k.owner != "" {
		return fmt.Sprintf("%s/manual/%s", k.Engine, k.owner)
	}
	return fmt.Sprintf("%s/w%d", k.Engine, k.WindowDocs)
}

// Shared reports whether the key denotes shareable state.
func (k GroupKey) Shared() bool { return k.owner == "" }

// groupKey derives the state key for a query.
func (s QuerySpec) groupKey(queryID string) GroupKey {
	if s.WindowDocs == 0 {
		return GroupKey{Engine: s.Engine, owner: queryID}
	}
	return GroupKey{Engine: s.Engine, WindowDocs: s.WindowDocs}
}

// standing is one registered query.
type standing struct {
	id    string
	spec  QuerySpec
	group *group

	docsMatched int64
	results     int64
}

// spillKindGroup tags multi-group spill envelopes in the state store.
const spillKindGroup = "multi-group"

// groupBacklogMax caps how many documents a spilled group buffers
// before it is forced back into memory: past this point the backlog
// itself starts costing what the spill saved.
const groupBacklogMax = 256

// group is one window state and the queries subscribed to it.
type group struct {
	key     GroupKey
	win     *Windowed
	queries map[string]*standing

	inWindow int
	windows  int
	forced   int

	// Spill state: while spilled, the window lives in the governor's
	// store and incoming documents buffer in backlog; they replay
	// through the normal ingest path at reload, so results are delayed,
	// never lost. seq is the group's stable spill-store key;
	// spilledBytes remembers the resident footprint at spill time so
	// the drain path can tell whether reloading fits the budget.
	spilled      bool
	seq          int
	spilledBytes int64
	backlog      []document.Document
	backlogBytes int64
}

// QueryStatus is the observable state of one standing query.
type QueryStatus struct {
	ID   string
	Spec QuerySpec
	// Group labels the window state the query runs on; SharedWith is
	// the number of other queries on the same state.
	Group      string
	SharedWith int
	// DocsMatched counts ingested documents that produced at least one
	// result for this query; Results counts delivered results.
	DocsMatched int64
	Results     int64
	// WindowDocs is the current fill of the group's open window;
	// Windows counts completed tumbles (including forced ones).
	WindowDocs int
	Windows    int
}

// Multi hosts many standing queries over shared window state. It is
// not safe for concurrent use — callers (core.QuerySet) serialise.
type Multi struct {
	groups  map[GroupKey]*group
	queries map[string]*standing
	// mkInstruments, when set, supplies per-group join instruments at
	// group creation (labelled by the group key).
	mkInstruments func(GroupKey) Instruments

	gov     *Governor
	nextSeq int // spill-store keys for groups
}

// NewMulti creates an empty multi-query joiner.
func NewMulti() *Multi {
	return &Multi{
		groups:  make(map[GroupKey]*group),
		queries: make(map[string]*standing),
	}
}

// InstrumentWith installs a per-group instrument factory, applied to
// groups created after the call.
func (m *Multi) InstrumentWith(f func(GroupKey) Instruments) { m.mkInstruments = f }

// SetGovernor attaches a memory governor (nil detaches): window groups
// then spill to the governor's store under pressure, with incoming
// documents backlogged and replayed at reload.
func (m *Multi) SetGovernor(g *Governor) { m.gov = g }

// Governor returns the attached governor (nil when none).
func (m *Multi) Governor() *Governor { return m.gov }

// Register adds a standing query under the given id. The query either
// joins the existing group for its (engine, window) key or creates a
// new one.
func (m *Multi) Register(id string, spec QuerySpec) error {
	if id == "" {
		return fmt.Errorf("join: empty query id")
	}
	if _, dup := m.queries[id]; dup {
		return fmt.Errorf("join: query %q already registered", id)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	spec = spec.withDefaults()
	key := spec.groupKey(id)
	g, ok := m.groups[key]
	if !ok {
		eng, err := New(spec.Engine)
		if err != nil {
			return err
		}
		g = &group{key: key, win: NewWindowed(eng), queries: make(map[string]*standing), seq: m.nextSeq}
		m.nextSeq++
		if m.mkInstruments != nil {
			g.win.SetInstruments(m.mkInstruments(key))
		}
		m.groups[key] = g
	}
	q := &standing{id: id, spec: spec, group: g}
	g.queries[id] = q
	m.queries[id] = q
	return nil
}

// Unregister removes a query; the group's window state is freed when
// its last query leaves. It reports whether the id was registered.
func (m *Multi) Unregister(id string) bool {
	q, ok := m.queries[id]
	if !ok {
		return false
	}
	delete(m.queries, id)
	delete(q.group.queries, id)
	if len(q.group.queries) == 0 {
		if q.group.spilled {
			m.gov.Drop(q.group.seq)
		}
		delete(m.groups, q.group.key)
	}
	return true
}

// Ingest feeds one document to every group: each group probes its
// shared window state exactly once, then demultiplexes the results to
// its queries through their θ/filter predicates via deliver. Spilled
// groups buffer the document instead and replay it at reload. The
// returned count is the number of forced tumbles fired, by the
// max-window-docs guard or by the memory governor's rung 3 (0 when
// both are off).
func (m *Multi) Ingest(d document.Document, maxWindowDocs int, deliver func(query string, r Result)) (forced int) {
	for _, g := range m.groups {
		if g.spilled {
			g.backlog = append(g.backlog, d)
			g.backlogBytes += d.MemBytes()
			if len(g.backlog) >= groupBacklogMax {
				forced += m.reloadGroup(g, maxWindowDocs, deliver)
			}
			continue
		}
		forced += g.ingest(d, maxWindowDocs, deliver)
	}
	forced += m.govern(maxWindowDocs, deliver)
	return forced
}

// govern walks the degradation ladder after each ingest: account
// resident bytes, spill the largest groups while over budget,
// force-tumble at rung 3, and drain spilled groups back in when
// pressure subsides.
func (m *Multi) govern(maxWindowDocs int, deliver func(string, Result)) (forced int) {
	if m.gov == nil {
		return 0
	}
	level := m.gov.Account(m.MemBytes())
	if level >= PressureSpill && m.gov.CanSpill() {
		// Spill largest-first: the biggest window state buys the most
		// relief per spill file.
		for m.gov.Accounted() > m.gov.Budget() {
			g := m.largestResident()
			if g == nil {
				break
			}
			bytes := g.win.MemBytes()
			if _, err := m.gov.Spill(g.seq, spillKindGroup, g.win); err != nil {
				break // counted by the governor; the group stays resident
			}
			g.spilled = true
			g.spilledBytes = bytes
			// Tumble releases the resident state; the snapshot on disk
			// carries the real window, so this evicts memory only.
			g.win.Tumble()
			m.gov.Account(m.MemBytes())
		}
		level = m.gov.Level()
	}
	if level >= PressureTumble {
		// Rung 3: emit the largest resident group's window early — the
		// PR-8 forced-tumble guard wielded for memory instead of doc
		// count.
		if g := m.largestResident(); g != nil && g.win.Size() > 0 {
			g.tumble()
			g.forced++
			forced++
			m.gov.ForcedTumble()
			m.gov.Account(m.MemBytes())
		}
	}
	if m.gov.Level() == PressureOK {
		// Pressure subsided: drain one spilled group back in per
		// ingest, but only when its remembered footprint actually fits
		// under the budget — otherwise spill/reload would ping-pong at
		// the threshold.
		for _, g := range m.groups {
			if g.spilled && m.gov.Accounted()+g.spilledBytes < m.gov.Budget() {
				forced += m.reloadGroup(g, maxWindowDocs, deliver)
				m.gov.Account(m.MemBytes())
				break
			}
		}
	}
	return forced
}

// largestResident picks the non-spilled group with the biggest
// accounted footprint (nil when every group is spilled or empty).
func (m *Multi) largestResident() *group {
	var best *group
	var bestBytes int64
	for _, g := range m.groups {
		if g.spilled {
			continue
		}
		if b := g.win.MemBytes(); b > bestBytes {
			best, bestBytes = g, b
		}
	}
	return best
}

// reloadGroup restores a spilled group's window and replays its
// backlog through the normal ingest path, delivering the delayed
// results. A reload failure (disk fault, CRC mismatch — already
// counted by the governor) degrades: the group restarts from an empty
// window and only the backlog replays, so the stream continues without
// the lost state instead of crashing.
func (m *Multi) reloadGroup(g *group, maxWindowDocs int, deliver func(string, Result)) (forced int) {
	if err := m.gov.Reload(g.seq, spillKindGroup, g.win); err != nil {
		// A failed restore may have left partial engine state behind;
		// clear to a known-empty window before replaying.
		g.win.Tumble()
	}
	g.spilled = false
	g.spilledBytes = 0
	backlog := g.backlog
	g.backlog, g.backlogBytes = nil, 0
	for _, d := range backlog {
		forced += g.ingest(d, maxWindowDocs, deliver)
	}
	return forced
}

// DrainSpilled reloads every spilled group regardless of pressure,
// replaying backlogs and delivering their delayed results — the final
// flush a caller runs at shutdown (or a test at end of stream) so no
// backlogged document's results are lost. Returns the number of forced
// tumbles fired during replay.
func (m *Multi) DrainSpilled(maxWindowDocs int, deliver func(string, Result)) (forced int) {
	for _, g := range m.groups {
		if g.spilled {
			forced += m.reloadGroup(g, maxWindowDocs, deliver)
		}
	}
	// Re-run the ladder rather than just re-accounting: the reloads may
	// have pushed residency back over budget, and leaving the level at
	// shed would refuse every later ingest for state a spill could
	// relieve right now.
	forced += m.govern(maxWindowDocs, deliver)
	return forced
}

// MemBytes implements MemoryAccounter: resident window state plus the
// backlogs of spilled groups.
func (m *Multi) MemBytes() int64 {
	var n int64
	for _, g := range m.groups {
		n += g.win.MemBytes() + g.backlogBytes
	}
	return n
}

// SpilledGroups reports how many groups are currently spilled
// (diagnostics and tests).
func (m *Multi) SpilledGroups() int {
	n := 0
	for _, g := range m.groups {
		if g.spilled {
			n++
		}
	}
	return n
}

// ingest runs one document through one group's window.
func (g *group) ingest(d document.Document, maxWindowDocs int, deliver func(string, Result)) (forced int) {
	results := g.win.Process(d)
	if len(results) > 0 {
		// shared[i] caches the shared-pair count of results[i], filled
		// lazily: only queries with θ > 0 pay for the Classify pass.
		shared := make([]int, 0)
		for _, q := range g.queries {
			matched := 0
			for i, r := range results {
				if q.spec.Theta > 0 {
					for len(shared) <= i {
						shared = append(shared, -1)
					}
					left, ok := g.win.Doc(r.Left)
					if !ok {
						continue
					}
					if shared[i] < 0 {
						_, shared[i] = document.Classify(left, d)
					}
					need := int(math.Ceil(q.spec.Theta * float64(min(left.Len(), d.Len()))))
					if shared[i] < need {
						continue
					}
				}
				if !matchFilters(q.spec.Filters, r.Merged) {
					continue
				}
				deliver(q.id, r)
				matched++
			}
			if matched > 0 {
				q.docsMatched++
				q.results += int64(matched)
			}
		}
	}
	g.inWindow++
	switch {
	case g.key.WindowDocs > 0 && g.inWindow >= g.key.WindowDocs:
		g.tumble()
	case maxWindowDocs > 0 && g.win.Size() >= maxWindowDocs:
		// The guard against a manual window nobody tumbles (or a
		// configured window larger than the cap): evict rather than
		// grow without bound.
		g.tumble()
		g.forced++
		forced = 1
	}
	return forced
}

// matchFilters reports whether the merged result carries every filter
// pair.
func matchFilters(filters []document.Pair, merged document.Document) bool {
	for _, f := range filters {
		if !merged.Has(f) {
			return false
		}
	}
	return true
}

func (g *group) tumble() (docs, pairs int) {
	docs, pairs = g.win.Tumble()
	g.windows++
	g.inWindow = 0
	return docs, pairs
}

// Tumble closes the window of the group hosting the given query. All
// queries sharing the group observe the eviction — shared state has
// shared window boundaries (manual-window queries are private for
// exactly this reason). A spilled group is reloaded first so the
// closing window's backlogged results still emit through deliver
// (deliver may be nil when the caller has no sink). It reports the
// closed window's document and pair counts.
func (m *Multi) Tumble(id string, maxWindowDocs int, deliver func(string, Result)) (docs, pairs int, ok bool) {
	q, found := m.queries[id]
	if !found {
		return 0, 0, false
	}
	if q.group.spilled {
		m.reloadGroup(q.group, maxWindowDocs, deliver)
	}
	docs, pairs = q.group.tumble()
	if m.gov != nil {
		m.gov.Account(m.MemBytes())
	}
	return docs, pairs, true
}

// Demux delivers an externally produced join result (e.g. from a
// scale-out cluster run whose Joiners own the window state) to every
// query of the shared group matching the external run's engine and
// window size. Only filter predicates apply on this path: θ needs the
// input documents, which an external result no longer carries — the
// external join already enforced the paper's ≥ 1 shared pair.
func (m *Multi) Demux(engine string, windowDocs int, r Result, deliver func(string, Result)) {
	g, ok := m.groups[GroupKey{Engine: engine, WindowDocs: windowDocs}]
	if !ok {
		return
	}
	for _, q := range g.queries {
		if !matchFilters(q.spec.Filters, r.Merged) {
			continue
		}
		deliver(q.id, r)
		q.results++
	}
}

// Status reports one query's observable state.
func (m *Multi) Status(id string) (QueryStatus, bool) {
	q, ok := m.queries[id]
	if !ok {
		return QueryStatus{}, false
	}
	return QueryStatus{
		ID:          q.id,
		Spec:        q.spec,
		Group:       q.group.key.String(),
		SharedWith:  len(q.group.queries) - 1,
		DocsMatched: q.docsMatched,
		Results:     q.results,
		WindowDocs:  q.group.win.Size(),
		Windows:     q.group.windows,
	}, true
}

// All lists every query's status, sorted by id.
func (m *Multi) All() []QueryStatus {
	out := make([]QueryStatus, 0, len(m.queries))
	for id := range m.queries {
		st, _ := m.Status(id)
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of registered queries.
func (m *Multi) Len() int { return len(m.queries) }

// Groups reports the number of live window states and how many of them
// are shared by more than one query — the "are we actually sharing"
// gauges the acceptance tests assert on.
func (m *Multi) Groups() (total, shared int) {
	for _, g := range m.groups {
		total++
		if len(g.queries) > 1 {
			shared++
		}
	}
	return total, shared
}

// GroupKeys lists the live group keys (diagnostics and telemetry
// cleanup).
func (m *Multi) GroupKeys() []GroupKey {
	out := make([]GroupKey, 0, len(m.groups))
	for k := range m.groups {
		out = append(out, k)
	}
	return out
}

// ForcedTumbles sums the forced-tumble count across live groups.
func (m *Multi) ForcedTumbles() int {
	n := 0
	for _, g := range m.groups {
		n += g.forced
	}
	return n
}
