package join

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/document"
)

// This file implements the multi-query layer over the window engines:
// many standing queries evaluated against one ingested stream, sharing
// window state (for FPJ, one FP-tree) whenever their window
// configurations align. The sharing rule follows Dossinger & Michel's
// multi-query join optimization: the expensive operator state — the
// window store and its probe index — is keyed by (engine, window
// config) only, while the cheap per-query predicates (θ strength,
// attribute filters) are applied as a demultiplexing step over the
// shared probe's results. A document is therefore parsed once and
// probed once per distinct window configuration, not once per query.

// QuerySpec declares one standing query.
type QuerySpec struct {
	// Engine is the join engine of the query's window state ("FPJ"
	// default, "NLJ", "HBJ"). Queries with different engines never
	// share state.
	Engine string
	// WindowDocs > 0 tumbles the query's window automatically after
	// that many documents. 0 means the window only tumbles on an
	// explicit Tumble call (or a forced tumble at the max-window-docs
	// guard); such manual windows get private state — sharing them
	// would let one tenant's tumble evict another tenant's window.
	WindowDocs int
	// Theta in [0,1] is the query's join-strength predicate: a result
	// pair (L, R) sharing s attribute-value pairs is delivered only if
	// s >= ceil(Theta * min(|L|, |R|)). 0 keeps the paper's natural
	// join (any shared pair); 1 demands containment of the smaller
	// document's pair set. Theta never changes what is stored in the
	// window, only which shared-probe results the query receives, so
	// it composes with state sharing.
	Theta float64
	// Filters are canonical attribute-value pairs the merged result
	// document must contain for the query to receive it. Filters apply
	// to results, not to ingestion: the window state stays identical
	// across queries, which is what makes it shareable.
	Filters []document.Pair
}

// withDefaults normalises the spec.
func (s QuerySpec) withDefaults() QuerySpec {
	if s.Engine == "" {
		s.Engine = "FPJ"
	}
	out := s
	// Sort filters so equal filter sets compare equal in tests and
	// render deterministically.
	if len(s.Filters) > 0 {
		f := make([]document.Pair, len(s.Filters))
		copy(f, s.Filters)
		sort.Slice(f, func(i, j int) bool {
			if f[i].Attr != f[j].Attr {
				return f[i].Attr < f[j].Attr
			}
			return f[i].Val < f[j].Val
		})
		out.Filters = f
	}
	return out
}

// Validate rejects malformed specs.
func (s QuerySpec) Validate() error {
	if s.Engine != "" {
		if _, err := New(s.Engine); err != nil {
			return err
		}
	}
	if s.WindowDocs < 0 {
		return fmt.Errorf("join: negative window size %d", s.WindowDocs)
	}
	if s.Theta < 0 || s.Theta > 1 {
		return fmt.Errorf("join: theta %g outside [0,1]", s.Theta)
	}
	return nil
}

// GroupKey identifies the window state a query maps to. Queries whose
// keys are equal share one engine instance (for FPJ: one FP-tree).
type GroupKey struct {
	Engine     string
	WindowDocs int
	// owner is empty for shared groups; manual-window (WindowDocs 0)
	// queries carry their query id here so each gets private state.
	owner string
}

// String renders the key as a stable label, e.g. "FPJ/w1000" or
// "FPJ/manual/q3" for a private manual-window group.
func (k GroupKey) String() string {
	if k.owner != "" {
		return fmt.Sprintf("%s/manual/%s", k.Engine, k.owner)
	}
	return fmt.Sprintf("%s/w%d", k.Engine, k.WindowDocs)
}

// Shared reports whether the key denotes shareable state.
func (k GroupKey) Shared() bool { return k.owner == "" }

// groupKey derives the state key for a query.
func (s QuerySpec) groupKey(queryID string) GroupKey {
	if s.WindowDocs == 0 {
		return GroupKey{Engine: s.Engine, owner: queryID}
	}
	return GroupKey{Engine: s.Engine, WindowDocs: s.WindowDocs}
}

// standing is one registered query.
type standing struct {
	id    string
	spec  QuerySpec
	group *group

	docsMatched int64
	results     int64
}

// group is one window state and the queries subscribed to it.
type group struct {
	key     GroupKey
	win     *Windowed
	queries map[string]*standing

	inWindow int
	windows  int
	forced   int
}

// QueryStatus is the observable state of one standing query.
type QueryStatus struct {
	ID   string
	Spec QuerySpec
	// Group labels the window state the query runs on; SharedWith is
	// the number of other queries on the same state.
	Group      string
	SharedWith int
	// DocsMatched counts ingested documents that produced at least one
	// result for this query; Results counts delivered results.
	DocsMatched int64
	Results     int64
	// WindowDocs is the current fill of the group's open window;
	// Windows counts completed tumbles (including forced ones).
	WindowDocs int
	Windows    int
}

// Multi hosts many standing queries over shared window state. It is
// not safe for concurrent use — callers (core.QuerySet) serialise.
type Multi struct {
	groups  map[GroupKey]*group
	queries map[string]*standing
	// mkInstruments, when set, supplies per-group join instruments at
	// group creation (labelled by the group key).
	mkInstruments func(GroupKey) Instruments
}

// NewMulti creates an empty multi-query joiner.
func NewMulti() *Multi {
	return &Multi{
		groups:  make(map[GroupKey]*group),
		queries: make(map[string]*standing),
	}
}

// InstrumentWith installs a per-group instrument factory, applied to
// groups created after the call.
func (m *Multi) InstrumentWith(f func(GroupKey) Instruments) { m.mkInstruments = f }

// Register adds a standing query under the given id. The query either
// joins the existing group for its (engine, window) key or creates a
// new one.
func (m *Multi) Register(id string, spec QuerySpec) error {
	if id == "" {
		return fmt.Errorf("join: empty query id")
	}
	if _, dup := m.queries[id]; dup {
		return fmt.Errorf("join: query %q already registered", id)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	spec = spec.withDefaults()
	key := spec.groupKey(id)
	g, ok := m.groups[key]
	if !ok {
		eng, err := New(spec.Engine)
		if err != nil {
			return err
		}
		g = &group{key: key, win: NewWindowed(eng), queries: make(map[string]*standing)}
		if m.mkInstruments != nil {
			g.win.SetInstruments(m.mkInstruments(key))
		}
		m.groups[key] = g
	}
	q := &standing{id: id, spec: spec, group: g}
	g.queries[id] = q
	m.queries[id] = q
	return nil
}

// Unregister removes a query; the group's window state is freed when
// its last query leaves. It reports whether the id was registered.
func (m *Multi) Unregister(id string) bool {
	q, ok := m.queries[id]
	if !ok {
		return false
	}
	delete(m.queries, id)
	delete(q.group.queries, id)
	if len(q.group.queries) == 0 {
		delete(m.groups, q.group.key)
	}
	return true
}

// Ingest feeds one document to every group: each group probes its
// shared window state exactly once, then demultiplexes the results to
// its queries through their θ/filter predicates via deliver. The
// returned count is the number of forced tumbles the max-window-docs
// guard fired (0 when maxWindowDocs is 0, i.e. unbounded).
func (m *Multi) Ingest(d document.Document, maxWindowDocs int, deliver func(query string, r Result)) (forced int) {
	for _, g := range m.groups {
		forced += g.ingest(d, maxWindowDocs, deliver)
	}
	return forced
}

// ingest runs one document through one group's window.
func (g *group) ingest(d document.Document, maxWindowDocs int, deliver func(string, Result)) (forced int) {
	results := g.win.Process(d)
	if len(results) > 0 {
		// shared[i] caches the shared-pair count of results[i], filled
		// lazily: only queries with θ > 0 pay for the Classify pass.
		shared := make([]int, 0)
		for _, q := range g.queries {
			matched := 0
			for i, r := range results {
				if q.spec.Theta > 0 {
					for len(shared) <= i {
						shared = append(shared, -1)
					}
					left, ok := g.win.Doc(r.Left)
					if !ok {
						continue
					}
					if shared[i] < 0 {
						_, shared[i] = document.Classify(left, d)
					}
					need := int(math.Ceil(q.spec.Theta * float64(min(left.Len(), d.Len()))))
					if shared[i] < need {
						continue
					}
				}
				if !matchFilters(q.spec.Filters, r.Merged) {
					continue
				}
				deliver(q.id, r)
				matched++
			}
			if matched > 0 {
				q.docsMatched++
				q.results += int64(matched)
			}
		}
	}
	g.inWindow++
	switch {
	case g.key.WindowDocs > 0 && g.inWindow >= g.key.WindowDocs:
		g.tumble()
	case maxWindowDocs > 0 && g.win.Size() >= maxWindowDocs:
		// The guard against a manual window nobody tumbles (or a
		// configured window larger than the cap): evict rather than
		// grow without bound.
		g.tumble()
		g.forced++
		forced = 1
	}
	return forced
}

// matchFilters reports whether the merged result carries every filter
// pair.
func matchFilters(filters []document.Pair, merged document.Document) bool {
	for _, f := range filters {
		if !merged.Has(f) {
			return false
		}
	}
	return true
}

func (g *group) tumble() (docs, pairs int) {
	docs, pairs = g.win.Tumble()
	g.windows++
	g.inWindow = 0
	return docs, pairs
}

// Tumble closes the window of the group hosting the given query. All
// queries sharing the group observe the eviction — shared state has
// shared window boundaries (manual-window queries are private for
// exactly this reason). It reports the closed window's document and
// pair counts.
func (m *Multi) Tumble(id string) (docs, pairs int, ok bool) {
	q, found := m.queries[id]
	if !found {
		return 0, 0, false
	}
	docs, pairs = q.group.tumble()
	return docs, pairs, true
}

// Demux delivers an externally produced join result (e.g. from a
// scale-out cluster run whose Joiners own the window state) to every
// query of the shared group matching the external run's engine and
// window size. Only filter predicates apply on this path: θ needs the
// input documents, which an external result no longer carries — the
// external join already enforced the paper's ≥ 1 shared pair.
func (m *Multi) Demux(engine string, windowDocs int, r Result, deliver func(string, Result)) {
	g, ok := m.groups[GroupKey{Engine: engine, WindowDocs: windowDocs}]
	if !ok {
		return
	}
	for _, q := range g.queries {
		if !matchFilters(q.spec.Filters, r.Merged) {
			continue
		}
		deliver(q.id, r)
		q.results++
	}
}

// Status reports one query's observable state.
func (m *Multi) Status(id string) (QueryStatus, bool) {
	q, ok := m.queries[id]
	if !ok {
		return QueryStatus{}, false
	}
	return QueryStatus{
		ID:          q.id,
		Spec:        q.spec,
		Group:       q.group.key.String(),
		SharedWith:  len(q.group.queries) - 1,
		DocsMatched: q.docsMatched,
		Results:     q.results,
		WindowDocs:  q.group.win.Size(),
		Windows:     q.group.windows,
	}, true
}

// All lists every query's status, sorted by id.
func (m *Multi) All() []QueryStatus {
	out := make([]QueryStatus, 0, len(m.queries))
	for id := range m.queries {
		st, _ := m.Status(id)
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of registered queries.
func (m *Multi) Len() int { return len(m.queries) }

// Groups reports the number of live window states and how many of them
// are shared by more than one query — the "are we actually sharing"
// gauges the acceptance tests assert on.
func (m *Multi) Groups() (total, shared int) {
	for _, g := range m.groups {
		total++
		if len(g.queries) > 1 {
			shared++
		}
	}
	return total, shared
}

// GroupKeys lists the live group keys (diagnostics and telemetry
// cleanup).
func (m *Multi) GroupKeys() []GroupKey {
	out := make([]GroupKey, 0, len(m.groups))
	for k := range m.groups {
		out = append(out, k)
	}
	return out
}

// ForcedTumbles sums the forced-tumble count across live groups.
func (m *Multi) ForcedTumbles() int {
	n := 0
	for _, g := range m.groups {
		n += g.forced
	}
	return n
}
