package join

import (
	"repro/internal/document"
	"repro/internal/fptree"
)

// FPJ is the paper's FP-tree join engine: documents are stored in an
// FP-tree under the global attribute ordering and probed with
// FPTreeJoin (Sec. V).
type FPJ struct {
	tree *fptree.Tree

	// buf backs Probe/ProbeInsert results (the Engine.Probe contract
	// allows an engine-owned buffer). Tree.JoinPartners itself returns
	// caller-owned slices, so the reuse lives here, on the hot path
	// that consumes results immediately.
	buf []uint64

	pool *probePool

	// batchBufs backs ProbeInsertBatch rows when no pool is configured
	// (the serial batch fallback).
	batchBufs [][]uint64
}

// NewFPJ creates an FPJ whose attribute ordering grows by first
// appearance — suitable for streaming probe-then-insert use where no
// upfront batch statistics exist.
func NewFPJ() *FPJ {
	return &FPJ{tree: fptree.New(fptree.EmptyOrder())}
}

// NewFPJWithOrder creates an FPJ with a precomputed global attribute
// ordering, the paper's deployment mode: the ordering is computed right
// after the partitions are created and shipped to the Joiners.
func NewFPJWithOrder(order *fptree.Order) *FPJ {
	return &FPJ{tree: fptree.New(order)}
}

// NewFPJFromDocs derives the ordering from a sample batch.
func NewFPJFromDocs(sample []document.Document) *FPJ {
	return NewFPJWithOrder(fptree.NewOrderFromDocs(sample))
}

// Name implements Engine.
func (e *FPJ) Name() string { return "FPJ" }

// Insert implements Engine.
func (e *FPJ) Insert(d document.Document) { e.tree.Insert(d) }

// Probe implements Engine. The result reuses the engine's buffer.
func (e *FPJ) Probe(d document.Document) []uint64 {
	e.buf = e.tree.JoinPartnersAppend(e.buf[:0], d)
	return e.buf
}

// ProbeInsert implements Engine. The result reuses the engine's buffer.
func (e *FPJ) ProbeInsert(d document.Document) []uint64 {
	e.buf = e.tree.JoinPartnersAppend(e.buf[:0], d)
	e.tree.Insert(d)
	return e.buf
}

// Size implements Engine.
func (e *FPJ) Size() int { return e.tree.DocCount() }

// Reset implements Engine: the whole tree is evicted when the tumbling
// window closes; the attribute ordering is retained.
func (e *FPJ) Reset() {
	e.tree.Reset()
	if cap(e.buf) > maxRetainedResultBuf {
		e.buf = nil
	}
	for i, b := range e.batchBufs {
		if cap(b) > maxRetainedResultBuf {
			e.batchBufs[i] = nil
		}
	}
	if e.pool != nil {
		e.pool.releaseOversized()
	}
}

// Tree exposes the underlying FP-tree for diagnostics and tests.
func (e *FPJ) Tree() *fptree.Tree { return e.tree }

// MemBytes implements MemoryAccounter via the tree's O(1) arena
// estimate.
func (e *FPJ) MemBytes() int64 { return e.tree.MemBytes() }
