package join

import (
	"fmt"

	"repro/internal/document"
)

// spillKindPane tags sliding-pane spill envelopes in the state store.
const spillKindPane = "sliding-pane"

// slidingPane is one pane of a sliding window together with its spill
// bookkeeping. A pane is *resident* when win != nil; a *spilled* pane
// has a verified on-disk copy and may or may not also be resident (a
// reloaded pane keeps its file — sealed panes never change, so the
// file stays valid and eviction from the pinned set is free).
type slidingPane struct {
	win     *Windowed
	seq     int   // pane sequence number == spill-store window key
	spilled bool  // a verified spill file exists
	lost    bool  // reload failed (corrupt/missing file); pane degraded away
	tick    int64 // LRU stamp of the last probe touching this pane
}

// Sliding implements count-based sliding windows over the join engines
// — the extension the paper leaves as future work ("for sliding
// windows, tree updates or frequent tree evictions and rebuilds are
// required", Sec. V-A).
//
// The window of size W sliding by S documents is maintained as W/S
// panes, each backed by its own engine instance (for FPJ, its own
// FP-tree). A new document probes every live pane and is inserted into
// the current one; when the current pane fills, the oldest pane is
// evicted wholesale — the pane granularity turns the expensive
// "remove one document from an FP-tree" operation into the cheap
// whole-tree eviction the tumbling design already relies on.
//
// Every pair of documents coexisting in some window instance is
// reported exactly once (at the arrival of the later document).
//
// With a memory Governor attached (SetGovernor), sealed panes spill to
// the governor's state store when accounted bytes cross the budget:
// the pane is snapshotted through the versioned CRC envelope, verified
// by read-back, and only then released from memory. Probes reload
// spilled panes through an LRU pinned set of at most
// Governor.MaxPinned resident copies, so windows larger than RAM work
// at the price of reload I/O. A reload that fails (disk fault, CRC
// mismatch) degrades: the pane's contribution is dropped for its
// remaining lifetime and the failure counted, never panicking.
type Sliding struct {
	mk    func() Engine
	panes []*slidingPane
	size  int // W, documents per full window
	slide int // S, documents per pane

	current   int // documents in the newest pane
	processed int

	gov     *Governor
	nextSeq int
	tick    int64
	dropped int // panes degraded away by reload failure
	forced  int // panes force-evicted early at rung 3

	ins Instruments
}

// NewSliding builds a sliding window of `size` documents advancing by
// `slide`; slide must divide size. The factory provides one engine per
// pane.
func NewSliding(size, slide int, mk func() Engine) (*Sliding, error) {
	if size <= 0 || slide <= 0 || size%slide != 0 {
		return nil, fmt.Errorf("join: sliding window needs slide dividing size, got %d/%d", size, slide)
	}
	s := &Sliding{mk: mk, size: size, slide: slide}
	s.panes = append(s.panes, &slidingPane{win: NewWindowed(mk()), seq: s.nextSeq})
	s.nextSeq++
	return s, nil
}

// SetGovernor attaches a memory governor (nil detaches). Attach before
// streaming documents; the governor is consulted on every Process.
func (s *Sliding) SetGovernor(g *Governor) { s.gov = g }

// Governor returns the attached governor (nil when none).
func (s *Sliding) Governor() *Governor { return s.gov }

// SetInstruments attaches aggregate live metrics: WindowDocs and
// TreeNodes are refreshed per Process with totals across resident
// panes (unlike Windowed, where they describe one window).
func (s *Sliding) SetInstruments(ins Instruments) { s.ins = ins }

// Process matches d against every document currently in the window and
// stores it. Results are the join pairs d completes.
func (s *Sliding) Process(d document.Document) []Result {
	if s.current == s.slide {
		// Advance the window: open a new pane, evict the oldest once
		// the pane count exceeds W/S.
		s.panes = append(s.panes, &slidingPane{win: NewWindowed(s.mk()), seq: s.nextSeq})
		s.nextSeq++
		if len(s.panes) > s.size/s.slide {
			s.evictOldest()
		}
		s.current = 0
	}
	s.current++
	s.processed++
	s.tick++

	var results []Result
	// Probe the older panes without inserting, reloading spilled panes
	// through the pinned set as needed.
	last := len(s.panes) - 1
	for _, pane := range s.panes[:last] {
		if pane.win == nil {
			if pane.lost || !s.reload(pane) {
				continue
			}
		}
		pane.tick = s.tick
		results = append(results, pane.win.ProbeOnly(d)...)
	}
	// The newest pane both probes and stores.
	s.panes[last].tick = s.tick
	results = append(results, s.panes[last].win.Process(d)...)

	s.govern()
	s.updateGauges()
	return results
}

// reload brings a spilled pane back into memory, evicting the
// least-recently-used other reloaded pane when the pinned set is full.
// On failure the pane is marked lost — its documents can no longer
// contribute partners — and the governor has already counted the
// failure; the stream carries on.
func (s *Sliding) reload(pane *slidingPane) bool {
	w := NewWindowed(s.mk())
	if err := s.gov.Reload(pane.seq, spillKindPane, w); err != nil {
		pane.lost = true
		pane.spilled = false
		s.dropped++
		return false
	}
	pane.win = w
	s.enforcePinned(pane)
	return true
}

// enforcePinned drops resident copies of spilled panes beyond the
// pinned-set capacity, least recently used first. The just-reloaded
// pane is exempt — it is about to be probed.
func (s *Sliding) enforcePinned(keep *slidingPane) {
	limit := s.gov.MaxPinned()
	for {
		resident := 0
		var lru *slidingPane
		for _, p := range s.panes {
			if p == keep || p.win == nil || !p.spilled {
				continue
			}
			resident++
			if lru == nil || p.tick < lru.tick {
				lru = p
			}
		}
		if resident < limit || lru == nil {
			return
		}
		// Sealed panes never change after spilling, so the on-disk copy
		// is still valid: dropping the memory copy is free.
		lru.win = nil
	}
}

// govern runs the degradation ladder after each document: account
// resident bytes, spill sealed panes while over budget, force-evict
// the oldest pane at rung 3.
func (s *Sliding) govern() {
	if s.gov == nil {
		return
	}
	level := s.gov.Account(s.MemBytes())
	if level >= PressureSpill && s.gov.CanSpill() {
		// Spill sealed resident panes oldest-first until back under
		// budget (the newest pane is still mutable and never spills).
		for _, pane := range s.panes[:len(s.panes)-1] {
			if s.gov.Accounted() <= s.gov.Budget() {
				break
			}
			if pane.win == nil || pane.lost {
				continue
			}
			if !pane.spilled {
				if _, err := s.gov.Spill(pane.seq, spillKindPane, pane.win); err != nil {
					continue // counted by the governor; pane stays resident
				}
				pane.spilled = true
			}
			pane.win = nil
			s.gov.Account(s.MemBytes())
		}
		level = s.gov.Level()
	}
	if level >= PressureTumble {
		// Rung 3: reclaim memory now by force-evicting the oldest pane
		// that still holds a resident copy — the window shrinks early,
		// trading result completeness for survival.
		for i, pane := range s.panes[:len(s.panes)-1] {
			if pane.win == nil {
				continue
			}
			s.forced++
			s.gov.ForcedTumble()
			if pane.spilled {
				s.gov.Drop(pane.seq)
			}
			if i == 0 {
				s.evictOldest()
			} else {
				pane.win = nil
				pane.spilled = false
				pane.lost = true
			}
			s.gov.Account(s.MemBytes())
			break
		}
	}
}

// evictOldest removes pane 0. The slot is nilled before reslicing so
// the evicted pane (and its whole FP-tree) is unreachable through the
// slice's backing array — reslicing alone would keep it alive until
// the backing array itself is dropped.
func (s *Sliding) evictOldest() {
	old := s.panes[0]
	s.panes[0] = nil
	s.panes = s.panes[1:]
	if old.spilled {
		s.gov.Drop(old.seq)
	}
}

// updateGauges refreshes the aggregate window gauges.
func (s *Sliding) updateGauges() {
	if s.ins.WindowDocs != nil {
		s.ins.WindowDocs.SetInt(s.Size())
	}
	if s.ins.TreeNodes != nil {
		total := 0
		for _, pane := range s.panes {
			if pane.win == nil {
				continue
			}
			if fpj, ok := pane.win.engine.(*FPJ); ok {
				total += fpj.Tree().NodeCount()
			}
		}
		s.ins.TreeNodes.SetInt(total)
	}
}

// MemBytes implements MemoryAccounter: the sum over resident panes.
// Spilled panes cost nothing until reloaded.
func (s *Sliding) MemBytes() int64 {
	var n int64
	for _, pane := range s.panes {
		if pane.win != nil {
			n += pane.win.MemBytes()
		}
	}
	return n
}

// Size reports the number of documents currently resident in the
// window (documents of spilled or lost panes are not counted).
func (s *Sliding) Size() int {
	n := 0
	for _, pane := range s.panes {
		if pane.win != nil {
			n += pane.win.Size()
		}
	}
	return n
}

// Panes reports the live pane count (diagnostics).
func (s *Sliding) Panes() int { return len(s.panes) }

// SpilledPanes reports how many panes are currently spilled without a
// resident copy (diagnostics and tests).
func (s *Sliding) SpilledPanes() int {
	n := 0
	for _, pane := range s.panes {
		if pane.win == nil && pane.spilled {
			n++
		}
	}
	return n
}

// DroppedPanes reports how many panes were degraded away by reload
// failures over the stream's lifetime.
func (s *Sliding) DroppedPanes() int { return s.dropped }

// ForcedEvictions reports how many panes rung 3 evicted early.
func (s *Sliding) ForcedEvictions() int { return s.forced }

// ProbeOnly matches d against the stored documents of the window
// without inserting it (used by Sliding for the older panes).
func (w *Windowed) ProbeOnly(d document.Document) []Result {
	partners := w.engine.Probe(d)
	if len(partners) == 0 {
		return nil
	}
	results := make([]Result, 0, len(partners))
	for _, id := range partners {
		other, ok := w.store[id]
		if !ok {
			continue
		}
		merged := document.Merge(w.nextID, other, d)
		w.nextID++
		results = append(results, Result{Left: id, Right: d.ID, Merged: merged})
	}
	w.pairsEmitted += len(results)
	return results
}
