package join

import (
	"fmt"

	"repro/internal/document"
)

// Sliding implements count-based sliding windows over the join engines
// — the extension the paper leaves as future work ("for sliding
// windows, tree updates or frequent tree evictions and rebuilds are
// required", Sec. V-A).
//
// The window of size W sliding by S documents is maintained as W/S
// panes, each backed by its own engine instance (for FPJ, its own
// FP-tree). A new document probes every live pane and is inserted into
// the current one; when the current pane fills, the oldest pane is
// evicted wholesale — the pane granularity turns the expensive
// "remove one document from an FP-tree" operation into the cheap
// whole-tree eviction the tumbling design already relies on.
//
// Every pair of documents coexisting in some window instance is
// reported exactly once (at the arrival of the later document).
type Sliding struct {
	mk    func() Engine
	panes []*Windowed
	size  int // W, documents per full window
	slide int // S, documents per pane

	current   int // documents in the newest pane
	processed int
}

// NewSliding builds a sliding window of `size` documents advancing by
// `slide`; slide must divide size. The factory provides one engine per
// pane.
func NewSliding(size, slide int, mk func() Engine) (*Sliding, error) {
	if size <= 0 || slide <= 0 || size%slide != 0 {
		return nil, fmt.Errorf("join: sliding window needs slide dividing size, got %d/%d", size, slide)
	}
	s := &Sliding{mk: mk, size: size, slide: slide}
	s.panes = append(s.panes, NewWindowed(mk()))
	return s, nil
}

// Process matches d against every document currently in the window and
// stores it. Results are the join pairs d completes.
func (s *Sliding) Process(d document.Document) []Result {
	if s.current == s.slide {
		// Advance the window: open a new pane, evict the oldest once
		// the pane count exceeds W/S.
		s.panes = append(s.panes, NewWindowed(s.mk()))
		if len(s.panes) > s.size/s.slide {
			s.panes = s.panes[1:]
		}
		s.current = 0
	}
	s.current++
	s.processed++

	var results []Result
	// Probe the older panes without inserting.
	last := len(s.panes) - 1
	for _, pane := range s.panes[:last] {
		results = append(results, pane.ProbeOnly(d)...)
	}
	// The newest pane both probes and stores.
	results = append(results, s.panes[last].Process(d)...)
	return results
}

// Size reports the number of documents currently in the window.
func (s *Sliding) Size() int {
	n := 0
	for _, pane := range s.panes {
		n += pane.Size()
	}
	return n
}

// Panes reports the live pane count (diagnostics).
func (s *Sliding) Panes() int { return len(s.panes) }

// ProbeOnly matches d against the stored documents of the window
// without inserting it (used by Sliding for the older panes).
func (w *Windowed) ProbeOnly(d document.Document) []Result {
	partners := w.engine.Probe(d)
	if len(partners) == 0 {
		return nil
	}
	results := make([]Result, 0, len(partners))
	for _, id := range partners {
		other, ok := w.store[id]
		if !ok {
			continue
		}
		merged := document.Merge(w.nextID, other, d)
		w.nextID++
		results = append(results, Result{Left: id, Right: d.ID, Merged: merged})
	}
	w.pairsEmitted += len(results)
	return results
}
