package core

import (
	"encoding/gob"

	"repro/internal/document"
	"repro/internal/expansion"
	"repro/internal/partition"
	"repro/internal/topology"
)

// RegisterGobTypes makes every tuple payload of the core topology
// transferable over the cluster transport. Callers running the system
// in cluster mode invoke it once per process before Run.
func RegisterGobTypes() {
	gob.Register(document.Document{})
	gob.Register(&partition.Table{})
	gob.Register(partition.AssocGroup{})
	gob.Register(&expansion.Expansion{})
	gob.Register(creatorWindowMsg{})
	gob.Register(expansionMsg{})
	gob.Register(localGroupsMsg{})
	gob.Register(tableMsg{})
	gob.Register(updateMsg{})
	gob.Register(decisionMsg{})
	gob.Register(assignerStatsMsg{})
	gob.Register(joinerStatsMsg{})
	gob.Register(mergerEventMsg{})
}

// NewTopology builds the system's component graph for an external
// runtime (the multi-process worker mode of cmd/sfj-topology). The
// returned Report is populated by the collector bolt if and only if the
// collector task runs in this process.
func NewTopology(cfg Config) (*topology.Builder, *Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	report := &Report{}
	return buildTopology(cfg, report), report, nil
}

// buildTopology assembles the Fig. 2 component graph; report is
// populated by the collector bolt during the run.
func buildTopology(cfg Config, report *Report) *topology.Builder {
	b := topology.NewBuilder()
	b.MaxPending(cfg.MaxPending)
	b.Telemetry(cfg.Telemetry)
	b.SetSpout("reader", func(int) topology.Spout {
		return newReaderSpout(cfg)
	}, 1)

	b.SetBolt("creator", func(task int) topology.Bolt {
		return newCreatorBolt(cfg, task)
	}, cfg.Creators).
		ShuffleGrouping("reader", streamDocs).
		AllGrouping("reader", streamWindowEnd).
		AllGrouping("assigner", streamRepartition).
		AllGrouping("merger", streamExpansion)

	b.SetBolt("merger", func(int) topology.Bolt {
		return newMergerBolt(cfg)
	}, 1).
		GlobalGrouping("creator", streamCreatorWindow).
		GlobalGrouping("creator", streamLocalGroups).
		GlobalGrouping("assigner", streamUpdate).
		GlobalGrouping("assigner", streamRepartition)

	b.SetBolt("assigner", func(task int) topology.Bolt {
		return newAssignerBolt(cfg, task)
	}, cfg.Assigners).
		ShuffleGrouping("reader", streamDocs).
		AllGrouping("reader", streamWindowEnd).
		AllGrouping("merger", streamTable).
		AllGrouping("merger", streamResched)

	b.SetBolt("joiner", func(task int) topology.Bolt {
		return newJoinerBolt(cfg, task)
	}, cfg.M).
		DirectGrouping("assigner", streamToJoin).
		AllGrouping("assigner", streamJoinerWindow)

	b.SetBolt("collector", func(int) topology.Bolt {
		return newCollectorBolt(cfg, report)
	}, 1).
		GlobalGrouping("assigner", streamAssignerStats).
		GlobalGrouping("joiner", streamJoinerStats).
		GlobalGrouping("merger", streamMergerEvents)

	return b
}

// ClusterRun executes the system topology across the given number of
// TCP-connected workers on this host. Every tuple between components
// placed on different workers crosses a real socket; the run produces
// the same join results and statistics as the in-process Run.
//
// Note for multi-worker runs: the reader spout, the merger and the
// collector are single-task components placed by the deterministic
// round-robin placement; the collector's Report is shared because the
// workers run in this process. A multi-process deployment would ship
// the report through a sink instead (see cmd/sfj-topology).
//
// Deprecated: ClusterRun is a thin wrapper kept for compatibility; use
// NewRunner(cfg, WithWorkers(workers)).Run().
func ClusterRun(cfg Config, workers int) (*Report, error) {
	return NewRunner(cfg, WithWorkers(workers)).Run()
}
