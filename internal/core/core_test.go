package core

import (
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/join"
	"repro/internal/partition"
)

// replaySource replays a fixed document list as a generator, so a run
// can be compared against a single-node oracle over the same documents.
type replaySource struct {
	docs []document.Document
	pos  int
}

func (s *replaySource) Name() string { return "replay" }
func (s *replaySource) Window(n int) []document.Document {
	out := make([]document.Document, 0, n)
	for i := 0; i < n && s.pos < len(s.docs); i++ {
		out = append(out, s.docs[s.pos])
		s.pos++
	}
	return out
}

// oraclePairs computes the exact join result per window boundary.
func oraclePairs(docs []document.Document, windowSize int) map[join.Pair]bool {
	want := make(map[join.Pair]bool)
	for start := 0; start < len(docs); start += windowSize {
		end := start + windowSize
		if end > len(docs) {
			end = len(docs)
		}
		w := docs[start:end]
		for i := 0; i < len(w); i++ {
			for j := i + 1; j < len(w); j++ {
				if document.Joinable(w[i], w[j]) {
					p := join.Pair{LeftID: w[i].ID, RightID: w[j].ID}
					if p.LeftID > p.RightID {
						p.LeftID, p.RightID = p.RightID, p.LeftID
					}
					want[p] = true
				}
			}
		}
	}
	return want
}

// runAndCollect executes the system over the docs and returns the
// produced pair set plus the report.
func runAndCollect(t *testing.T, cfg Config, docs []document.Document) (map[join.Pair]bool, *Report) {
	t.Helper()
	var mu sync.Mutex
	got := make(map[join.Pair]bool)
	cfg.Source = &replaySource{docs: docs}
	cfg.OnResult = func(r join.Result) {
		p := join.Pair{LeftID: r.Left, RightID: r.Right}
		if p.LeftID > p.RightID {
			p.LeftID, p.RightID = p.RightID, p.LeftID
		}
		mu.Lock()
		if got[p] {
			mu.Unlock()
			t.Errorf("pair (%d,%d) produced more than once", p.LeftID, p.RightID)
			return
		}
		got[p] = true
		mu.Unlock()
	}
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Topology.Failures) > 0 {
		t.Fatalf("topology failures: %v", report.Topology.Failures)
	}
	return got, report
}

// TestSystemExactJoinServerLog is the central end-to-end test: the
// distributed system must produce exactly the single-node join result,
// each pair exactly once, on the rwData surrogate.
func TestSystemExactJoinServerLog(t *testing.T) {
	gen := datagen.NewServerLog(17)
	var docs []document.Document
	for w := 0; w < 4; w++ {
		docs = append(docs, gen.Window(120)...)
	}
	cfg := Config{M: 4, Creators: 2, Assigners: 3, WindowSize: 120, Windows: 4}
	got, report := runAndCollect(t, cfg, docs)
	want := oraclePairs(docs, 120)
	checkPairSets(t, got, want)
	if report.JoinPairs != len(want) {
		t.Errorf("report.JoinPairs = %d, want %d", report.JoinPairs, len(want))
	}
	if len(report.Run.Windows) != 4 {
		t.Errorf("windows = %d, want 4", len(report.Run.Windows))
	}
}

// TestSystemExactJoinNoBench repeats the exactness check on the diverse
// synthetic dataset with expansion enabled.
func TestSystemExactJoinNoBench(t *testing.T) {
	gen := datagen.NewNoBench(23)
	var docs []document.Document
	for w := 0; w < 3; w++ {
		docs = append(docs, gen.Window(80)...)
	}
	cfg := Config{M: 4, Creators: 2, Assigners: 2, WindowSize: 80, Windows: 3, Expansion: ExpansionAuto}
	got, _ := runAndCollect(t, cfg, docs)
	want := oraclePairs(docs, 80)
	checkPairSets(t, got, want)
}

// TestSystemExactJoinAllPartitioners: completeness must hold for the
// competitors too.
func TestSystemExactJoinAllPartitioners(t *testing.T) {
	for _, p := range []partition.Partitioner{partition.SetCover{}, partition.DisjointSets{}} {
		gen := datagen.NewServerLog(31)
		var docs []document.Document
		for w := 0; w < 3; w++ {
			docs = append(docs, gen.Window(100)...)
		}
		cfg := Config{M: 4, Creators: 2, Assigners: 2, WindowSize: 100, Windows: 3, Partitioner: p}
		got, _ := runAndCollect(t, cfg, docs)
		want := oraclePairs(docs, 100)
		if len(got) != len(want) {
			t.Errorf("%s: got %d pairs, want %d", p.Name(), len(got), len(want))
		}
	}
}

func checkPairSets(t *testing.T, got, want map[join.Pair]bool) {
	t.Helper()
	for p := range want {
		if !got[p] {
			t.Errorf("missing join pair (%d,%d)", p.LeftID, p.RightID)
		}
	}
	for p := range got {
		if !want[p] {
			t.Errorf("spurious join pair (%d,%d)", p.LeftID, p.RightID)
		}
	}
}

// TestSystemEnginesAgree: the full system produces the same result set
// regardless of the local join engine.
func TestSystemEnginesAgree(t *testing.T) {
	gen := datagen.NewServerLog(5)
	var docs []document.Document
	for w := 0; w < 2; w++ {
		docs = append(docs, gen.Window(80)...)
	}
	var results []int
	for _, eng := range []string{"FPJ", "NLJ", "HBJ"} {
		cfg := Config{M: 3, Creators: 1, Assigners: 2, WindowSize: 80, Windows: 2, Engine: eng}
		got, _ := runAndCollect(t, cfg, docs)
		results = append(results, len(got))
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Errorf("engines disagree: FPJ=%d NLJ=%d HBJ=%d", results[0], results[1], results[2])
	}
}

func TestRunStatsShape(t *testing.T) {
	cfg := Config{M: 4, WindowSize: 150, Windows: 3, Source: datagen.NewServerLog(2)}
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(report.Run.Windows); got != 3 {
		t.Fatalf("windows = %d", got)
	}
	for i, w := range report.Run.Windows {
		if w.Documents != 150 {
			t.Errorf("window %d documents = %d, want 150", i, w.Documents)
		}
		if r := w.Replication(); r < 1 || r > 4 {
			t.Errorf("window %d replication = %g out of [1,4]", i, r)
		}
		if l := w.MaxProcessingLoad(); l <= 0 || l > 1 {
			t.Errorf("window %d max load = %g", i, l)
		}
		if g := w.LoadBalance(); g < 0 || g > 1 {
			t.Errorf("window %d gini = %g", i, g)
		}
	}
	if report.TableVersions == 0 {
		t.Error("no table versions broadcast")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing Source must error")
	}
	if _, err := Run(Config{Source: datagen.NewServerLog(1), Engine: "nope"}); err == nil {
		t.Error("bad engine must error")
	}
}

func TestExpansionModeString(t *testing.T) {
	if ExpansionAuto.String() != "auto" || ExpansionOff.String() != "off" || ExpansionForced.String() != "forced" {
		t.Error("mode names")
	}
	if ExpansionMode(9).String() == "" {
		t.Error("unknown mode must render")
	}
}

func TestReportString(t *testing.T) {
	cfg := Config{M: 2, WindowSize: 50, Windows: 1, Source: datagen.NewServerLog(3)}
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.String() == "" {
		t.Error("empty report string")
	}
}

// TestDeltaUpdatesReduceBroadcasts: with updates enabled, recurring
// unseen pairs get folded into the partitions, so later windows
// broadcast less than they would without any table.
func TestDeltaUpdatesReduceBroadcasts(t *testing.T) {
	gen := datagen.NewServerLog(13)
	// A single assigner makes the δ counting global, so the test is
	// deterministic rather than dependent on which assigner sees the
	// recurring pair.
	cfg := Config{M: 4, Creators: 2, Assigners: 1, WindowSize: 300, Windows: 6, Delta: 2, Source: gen}
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := report.Run.Windows[0]
	last := report.Run.Windows[len(report.Run.Windows)-1]
	// Window 0 has no table at all: everything broadcasts.
	if first.Broadcasts != first.Documents {
		t.Errorf("window 0 broadcasts = %d, want all %d", first.Broadcasts, first.Documents)
	}
	if last.Broadcasts >= last.Documents {
		t.Errorf("last window still broadcasts everything (%d/%d)", last.Broadcasts, last.Documents)
	}
	if report.TableVersions < 2 {
		t.Errorf("TableVersions = %d; δ updates should add versions", report.TableVersions)
	}
}

func TestPipelineQuickJoin(t *testing.T) {
	p, err := NewPipeline("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessJSON([]byte(`{"User":"A","Severity":"Warning"}`)); err != nil {
		t.Fatal(err)
	}
	res, err := p.ProcessJSON([]byte(`{"User":"A","MsgId":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	if !res[0].Merged.HasAttr("MsgId") || !res[0].Merged.HasAttr("Severity") {
		t.Errorf("merged = %v", res[0].Merged)
	}
	docs, pairs := p.Tumble()
	if docs != 2 || pairs != 1 {
		t.Errorf("Tumble = %d,%d", docs, pairs)
	}
	if p.Size() != 0 {
		t.Error("window not evicted")
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := NewPipeline("bogus"); err == nil {
		t.Error("bogus engine must fail")
	}
	p, _ := NewPipeline("NLJ")
	if _, err := p.ProcessJSON([]byte(`{`)); err == nil {
		t.Error("bad JSON must fail")
	}
}

func TestPlanPartitionsAndRoute(t *testing.T) {
	gen := datagen.NewNoBench(4)
	docs := gen.Window(200)
	table, spec := PlanPartitions(docs, 8, nil, ExpansionAuto)
	if spec == nil {
		t.Fatal("NoBench must trigger expansion (Boolean attribute)")
	}
	if table.NonEmpty() < 4 {
		t.Errorf("non-empty partitions = %d", table.NonEmpty())
	}
	// Routing any sample doc reaches at least one machine.
	targets, _ := RouteDocument(table, spec, docs[0])
	if len(targets) == 0 {
		t.Error("no targets for sample document")
	}
}

// TestHashPairsRoutingExact: the related-work hash-routing baseline
// must also produce the exact join result.
func TestHashPairsRoutingExact(t *testing.T) {
	gen := datagen.NewServerLog(55)
	var docs []document.Document
	for w := 0; w < 3; w++ {
		docs = append(docs, gen.Window(100)...)
	}
	cfg := Config{M: 5, Creators: 2, Assigners: 2, WindowSize: 100, Windows: 3, Routing: HashPairsRouting}
	got, report := runAndCollect(t, cfg, docs)
	checkPairSets(t, got, oraclePairs(docs, 100))
	// Hash routing never broadcasts; replication is bounded by the
	// number of pairs per document.
	for i, w := range report.Run.Windows {
		if w.Broadcasts != 0 {
			t.Errorf("window %d: hash routing broadcast %d docs", i, w.Broadcasts)
		}
	}
}

func TestRoutingString(t *testing.T) {
	if PartitionRouting.String() != "partition" || HashPairsRouting.String() != "hash-pairs" {
		t.Error("routing names")
	}
	if Routing(9).String() == "" {
		t.Error("unknown routing must render")
	}
}
