package core

import (
	"repro/internal/document"
	"repro/internal/expansion"
	"repro/internal/partition"
	"repro/internal/topology"
)

// creatorBolt is the PartitionCreator of Fig. 2. Each task buffers its
// shuffle-grouped share of the current window; when the window is a
// computation window (the first one, or one following a θ repartition
// request) it proposes an attribute-value expansion from its sample,
// waits for the Merger's consensus decision, and then runs phase one of
// the AG algorithm (Algorithm 1) on the transformed sample, emitting
// the local association groups to the Merger.
//
// Whether window w is a computation window depends on the assigners'
// quality verdicts for window w-1, and the assigners lag behind the
// creators (they do the routing work). The creator therefore defers
// closing window w until it has collected every assigner's decision for
// window w-1; meanwhile documents of later windows keep accumulating in
// their per-window buffers.
//
// For the SC and DS competitors — which have no creator-side phase —
// the creator ships its sample documents as single-document groups; the
// Merger then runs the competitor's partitioning on the combined
// sample. This mirrors the paper's setup where the competitors are
// evaluated inside the same topology.
type creatorBolt struct {
	cfg  Config
	task int

	numAssigners int

	buffers map[int][]document.Document

	// decisions[w] is the set of assigner tasks whose verdict for
	// window w arrived; requested[w] records whether any of them asked
	// to repartition. Verdicts deduplicate by task: a recovering
	// assigner re-emits its last verdict (it may have died in flight),
	// and counting a task twice would close the next window before a
	// genuinely missing verdict arrived.
	decisions map[int]map[int]bool
	requested map[int]bool

	// pendingWend holds window-end punctuation waiting for complete
	// decisions of the preceding window, in arrival order; ckptWend
	// marks the windows whose punctuation carried a checkpoint barrier.
	pendingWend []int
	ckptWend    map[int]bool

	cp *checkpointer
}

func newCreatorBolt(cfg Config, task int) *creatorBolt {
	return &creatorBolt{
		cfg:       cfg,
		task:      task,
		buffers:   make(map[int][]document.Document),
		decisions: make(map[int]map[int]bool),
		requested: make(map[int]bool),
		ckptWend:  make(map[int]bool),
		cp:        newCheckpointer(cfg, "creator", task),
	}
}

// Prepare implements topology.Bolt.
func (b *creatorBolt) Prepare(ctx *topology.TaskContext) {
	b.numAssigners = ctx.NumTasksOf("assigner")
	if b.numAssigners == 0 {
		b.numAssigners = b.cfg.Assigners
	}
	b.cp.restore(b)
}

// Cleanup implements topology.Bolt.
func (b *creatorBolt) Cleanup() {}

// Execute implements topology.Bolt.
func (b *creatorBolt) Execute(t topology.Tuple, c topology.Collector) {
	switch t.Stream {
	case streamDocs:
		w := t.Values["window"].(int)
		d := t.Values["doc"].(document.Document)
		b.buffers[w] = append(b.buffers[w], d)
	case streamRepartition:
		msg := t.Values["msg"].(decisionMsg)
		if b.decisions[msg.Window] == nil {
			b.decisions[msg.Window] = make(map[int]bool)
		}
		b.decisions[msg.Window][msg.Task] = true
		if msg.Repartition {
			b.requested[msg.Window] = true
		}
		b.drainWend(c)
	case streamWindowEnd:
		w := t.Values["window"].(int)
		b.pendingWend = append(b.pendingWend, w)
		if _, ok := topology.CheckpointID(t); ok {
			b.ckptWend[w] = true
		}
		b.drainWend(c)
	case streamExpansion:
		msg := t.Values["msg"].(expansionMsg)
		docs := b.buffers[msg.Window]
		delete(b.buffers, msg.Window)
		transformed := msg.Spec.ApplyBatch(docs)
		c.EmitTo(streamLocalGroups, topology.Values{"msg": localGroupsMsg{
			Window: msg.Window,
			Task:   b.task,
			Groups: b.localGroups(transformed),
		}})
	}
}

// drainWend closes every pending window whose predecessor's decisions
// are complete.
func (b *creatorBolt) drainWend(c topology.Collector) {
	for len(b.pendingWend) > 0 {
		w := b.pendingWend[0]
		if w > 0 && len(b.decisions[w-1]) < b.numAssigners {
			return // verdicts for w-1 still outstanding
		}
		b.pendingWend = b.pendingWend[1:]
		b.closeWindow(w, c)
	}
}

// closeWindow reports this creator's end-of-window state to the merger,
// attaching the expansion proposal when the window must produce new
// partitions.
func (b *creatorBolt) closeWindow(w int, c topology.Collector) {
	computing := w == 0 || b.requested[w-1]
	delete(b.decisions, w-1)
	delete(b.requested, w-1)
	msg := creatorWindowMsg{Window: w, Task: b.task, Computing: computing, Checkpoint: b.ckptWend[w]}
	if computing {
		msg.Proposal = b.propose(b.buffers[w])
	} else {
		delete(b.buffers, w) // sample not needed
	}
	c.EmitTo(streamCreatorWindow, topology.Values{"msg": msg})
	// Window w is resolved at this task: snapshot at the barrier. The
	// sample buffers are deliberately not part of the snapshot — on a
	// restart the replayed stream rebuilds them — so the snapshot is
	// just the decision bookkeeping.
	if b.ckptWend[w] {
		delete(b.ckptWend, w)
		b.cp.save(w, b)
	}
}

// propose derives this creator's expansion proposal from its sample
// according to the configured mode.
func (b *creatorBolt) propose(docs []document.Document) *expansion.Expansion {
	switch b.cfg.Expansion {
	case ExpansionOff:
		return nil
	case ExpansionForced:
		return expansion.AnalyzeForced(docs, b.cfg.M)
	default:
		return expansion.Analyze(docs, b.cfg.M)
	}
}

// localGroups runs the creator-side phase of the configured
// partitioner.
func (b *creatorBolt) localGroups(docs []document.Document) []partition.AssocGroup {
	if ag, ok := b.cfg.Partitioner.(partition.AssociationGroups); ok {
		return ag.Groups(docs)
	}
	// Competitors: ship each document's pair set as one group so the
	// Merger can run the whole algorithm on the combined sample.
	groups := make([]partition.AssocGroup, 0, len(docs))
	for _, d := range docs {
		g := partition.AssocGroup{Pairs: partition.NewPairSetFromSyms(d.InternedPairs()), Load: 1, Docs: []uint64{d.ID}}
		groups = append(groups, g)
	}
	return groups
}
