package core

import (
	"fmt"

	"repro/internal/document"
	"repro/internal/expansion"
	"repro/internal/join"
	"repro/internal/partition"
	"repro/internal/telemetry"
)

// Pipeline is the single-process façade over the paper's algorithms:
// feed JSON documents in, receive natural-join results out, windows
// tumbling on demand. It is the entry point for library users who want
// the schema-free join without the scale-out topology.
//
// Pipeline is not safe for concurrent use.
type Pipeline struct {
	windowed *join.Windowed
	nextID   uint64
}

// NewPipeline creates a pipeline with the given join engine ("FPJ",
// "NLJ", "HBJ"); the empty string selects FPJ.
func NewPipeline(engine string) (*Pipeline, error) {
	if engine == "" {
		engine = "FPJ"
	}
	eng, err := join.New(engine)
	if err != nil {
		return nil, err
	}
	return &Pipeline{windowed: join.NewWindowed(eng), nextID: 1}, nil
}

// Instrument attaches live telemetry to the pipeline's joiner under the
// single-task join_* series (the same vocabulary the scale-out joiners
// publish per task). A nil registry detaches all instruments.
func (p *Pipeline) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		p.windowed.SetInstruments(join.Instruments{})
		return
	}
	p.windowed.SetInstruments(join.Instruments{
		ProbeSeconds: reg.Histogram("join_probe_seconds"),
		Results:      reg.Counter("join_results_total"),
		Duplicates:   reg.Counter("join_duplicates_total"),
		WindowDocs:   reg.Gauge("join_window_docs"),
		TreeNodes:    reg.Gauge("join_fptree_nodes"),
	})
}

// Process matches a document against the current window and stores it,
// returning all join results it produced.
func (p *Pipeline) Process(d document.Document) []join.Result {
	return p.windowed.Process(d)
}

// ProcessJSON parses one JSON object, assigns it the next document id
// and processes it.
func (p *Pipeline) ProcessJSON(data []byte) ([]join.Result, error) {
	d, err := document.Parse(p.nextID, data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p.nextID++
	return p.Process(d), nil
}

// Tumble closes the current window, evicting all stored documents, and
// reports how many documents and join pairs the window held.
func (p *Pipeline) Tumble() (docs, pairs int) { return p.windowed.Tumble() }

// Size reports the number of documents in the current window.
func (p *Pipeline) Size() int { return p.windowed.Size() }

// PlanPartitions exposes the partitioning stage as a library call: it
// computes the m partitions for a sample batch with the chosen
// algorithm and expansion mode and returns the routing table plus the
// expansion in effect (nil when none applies).
func PlanPartitions(docs []document.Document, m int, p partition.Partitioner, mode ExpansionMode) (*partition.Table, *expansion.Expansion) {
	if p == nil {
		p = partition.AssociationGroups{}
	}
	var spec *expansion.Expansion
	switch mode {
	case ExpansionOff:
	case ExpansionForced:
		spec = expansion.AnalyzeForced(docs, m)
	default:
		spec = expansion.Analyze(docs, m)
	}
	table := p.Partition(spec.ApplyBatch(docs), m)
	return table, spec
}

// RouteDocument returns the machines a document is forwarded to under
// a planned table and expansion: matching partitions, or all machines
// (broadcast=true) when the document is not fully covered or cannot
// form the synthetic attribute.
func RouteDocument(table *partition.Table, spec *expansion.Expansion, d document.Document) (targets []int, broadcast bool) {
	td, ok := spec.Apply(d)
	if !ok {
		all := make([]int, table.M)
		for i := range all {
			all[i] = i
		}
		return all, true
	}
	return table.Route(td)
}
