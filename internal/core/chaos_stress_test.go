package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/join"
	"repro/internal/topology"
)

// gateSource replays fixed documents but pauses before serving one
// window: it signals the pause and blocks until the gate opens, so a
// test can inject network faults at an instant when no tuple is in
// flight.
type gateSource struct {
	docs   []document.Document
	gateAt int // Window call index to pause before
	paused chan<- struct{}
	gate   <-chan struct{}
	call   int
	pos    int
}

func (s *gateSource) Name() string { return "gated-replay" }

func (s *gateSource) Window(n int) []document.Document {
	if s.call == s.gateAt {
		s.paused <- struct{}{}
		<-s.gate
	}
	s.call++
	out := make([]document.Document, 0, n)
	for i := 0; i < n && s.pos < len(s.docs); i++ {
		out = append(out, s.docs[s.pos])
		s.pos++
	}
	return out
}

// waitClusterQuiesce polls the workers' transport counters until
// sent == executed holds across two consecutive reads — the in-process
// mirror of the coordinator's double-probe termination argument — and
// every resend buffer is empty, so a sever injected right after finds
// nothing to replay onto a fresh connection.
func waitClusterQuiesce(t *testing.T, ws []*cluster.Worker) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	var prevSent, prevExec int64 = -1, -2
	for time.Now().Before(deadline) {
		var sent, exec int64
		unacked := 0
		for _, w := range ws {
			s, e := w.Counters()
			sent += s
			exec += e
			unacked += w.UnackedFrames()
		}
		if sent == exec && unacked == 0 && sent == prevSent && exec == prevExec {
			return
		}
		prevSent, prevExec = sent, exec
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("cluster did not quiesce at the gate")
}

// waitPeersEvicted waits until the breakage monitors have dropped every
// cached outbound connection after the sever.
func waitPeersEvicted(t *testing.T, ws []*cluster.Worker) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		live := 0
		for _, w := range ws {
			live += w.PeerConnections()
		}
		if live == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("peer connections not evicted after sever")
}

// TestClusterStressBoundedChaos drives the full Fig. 2 topology across
// four TCP workers with bounded mailboxes while every data-plane link
// runs behind a fault-injecting proxy: all links carry added latency,
// and every established connection is severed between two windows. The
// run must terminate with exact transport accounting and the same join
// result as the single-process runtime over the same documents.
func TestClusterStressBoundedChaos(t *testing.T) {
	const workers, windows, windowSize = 4, 4, 90
	gen := datagen.NewServerLog(53)
	var docs []document.Document
	for w := 0; w < windows; w++ {
		docs = append(docs, gen.Window(windowSize)...)
	}

	paused := make(chan struct{})
	gate := make(chan struct{})
	var mu sync.Mutex
	got := make(map[join.Pair]bool)
	cfg := Config{
		M: 4, Creators: 2, Assigners: 3,
		WindowSize: windowSize, Windows: windows,
		MaxPending: 64,
		Source:     &gateSource{docs: docs, gateAt: 2, paused: paused, gate: gate},
		OnResult: func(r join.Result) {
			p := join.Pair{LeftID: r.Left, RightID: r.Right}
			if p.LeftID > p.RightID {
				p.LeftID, p.RightID = p.RightID, p.LeftID
			}
			mu.Lock()
			if got[p] {
				mu.Unlock()
				t.Errorf("pair (%d,%d) duplicated", p.LeftID, p.RightID)
				return
			}
			got[p] = true
			mu.Unlock()
		},
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	RegisterGobTypes()

	coord, err := cluster.NewCoordinator(workers)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]*cluster.Worker, workers)
	proxies := make([]*cluster.ChaosProxy, workers)
	werrs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		w, err := cluster.NewWorker(i, workers, buildTopology(cfg, &Report{}), coord.Addr())
		if err != nil {
			t.Fatal(err)
		}
		addr, err := w.Listen()
		if err != nil {
			t.Fatal(err)
		}
		proxy, err := cluster.NewChaosProxy(addr)
		if err != nil {
			t.Fatal(err)
		}
		proxy.SetDelay(100 * time.Microsecond)
		w.AdvertiseAddr = proxy.Addr()
		ws[i] = w
		proxies[i] = proxy
	}
	t.Cleanup(func() {
		for _, p := range proxies {
			p.Close()
		}
	})
	for _, w := range ws {
		w := w
		go func() { werrs <- w.Run() }()
	}
	type outcome struct {
		stats topology.Stats
		err   error
	}
	result := make(chan outcome, 1)
	go func() {
		stats, err := coord.Run()
		for i := 0; i < workers; i++ {
			if werr := <-werrs; werr != nil && err == nil {
				err = werr
			}
		}
		result <- outcome{stats, err}
	}()

	// Wait for the reader to pause between windows, drain everything in
	// flight, then cut every established data-plane link.
	select {
	case <-paused:
	case <-time.After(30 * time.Second):
		t.Fatal("stream never reached the gate")
	}
	waitClusterQuiesce(t, ws)
	for _, p := range proxies {
		p.SeverAll()
	}
	waitPeersEvicted(t, ws)
	close(gate)

	var stats topology.Stats
	select {
	case r := <-result:
		if r.err != nil {
			t.Fatal(r.err)
		}
		stats = r.stats
	case <-time.After(120 * time.Second):
		t.Fatal("cluster run did not terminate")
	}
	if len(stats.Failures) != 0 {
		t.Fatalf("failures: %v", stats.Failures)
	}
	if stats.SentCopies == 0 || stats.SentCopies != stats.ExecCopies {
		t.Errorf("copies sent = %d, executed = %d", stats.SentCopies, stats.ExecCopies)
	}

	// Join-result parity: the chaos run, the single-process runtime and
	// the brute-force oracle must all agree exactly.
	localCfg := Config{
		M: 4, Creators: 2, Assigners: 3,
		WindowSize: windowSize, Windows: windows, MaxPending: 64,
	}
	localPairs, _ := runAndCollect(t, localCfg, docs)
	mu.Lock()
	defer mu.Unlock()
	checkPairSets(t, got, localPairs)
	checkPairSets(t, got, oraclePairs(docs, windowSize))
}
