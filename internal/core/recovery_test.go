package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/join"
	"repro/internal/state"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// TestClusterFailoverParity is the end-to-end acceptance test of the
// operator-state layer: a 4-worker cluster run loses one worker mid-run
// (hard kill, no cooperation), the runner re-places the topology on the
// three survivors, restores every stateful task from the last
// checkpoint cut and replays the stream — and the user-visible join
// result is exactly the single-process oracle's, each pair once.
func TestClusterFailoverParity(t *testing.T) {
	const (
		seed       = 31
		windowSize = 120
		windows    = 6
	)
	newSource := func() datagen.Generator { return datagen.NewServerLog(seed) }

	// Single-process oracle over the identical stream.
	gen := newSource()
	var docs []document.Document
	for w := 0; w < windows; w++ {
		docs = append(docs, gen.Window(windowSize)...)
	}
	want := oraclePairs(docs, windowSize)

	cfg := Config{
		M: 4, Creators: 2, Assigners: 3,
		WindowSize: windowSize, Windows: windows,
		// High θ keeps the run on its initial partitions: the kill then
		// exercises the checkpoint/restore machinery, not the
		// repartition dynamics.
		Theta: 0.9,
	}
	var mu sync.Mutex
	got := make(map[join.Pair]bool)
	cfg.OnResult = func(r join.Result) {
		p := join.Pair{LeftID: r.Left, RightID: r.Right}
		if p.LeftID > p.RightID {
			p.LeftID, p.RightID = p.RightID, p.LeftID
		}
		mu.Lock()
		if got[p] {
			mu.Unlock()
			t.Errorf("pair (%d,%d) delivered more than once", p.LeftID, p.RightID)
			return
		}
		got[p] = true
		mu.Unlock()
	}

	store := state.NewMemStore()
	reg := telemetry.NewRegistry()
	required := requiredTasks(cfg)

	// Hard-kill worker 1 of the first attempt as soon as the first
	// full checkpoint cut exists, i.e. mid-run with real state at risk.
	var arm sync.Once
	done := make(chan struct{})
	defer close(done)
	hook := func(i int, w *cluster.Worker) {
		if i != 1 {
			return
		}
		arm.Do(func() {
			go func() {
				for {
					select {
					case <-done:
						return
					case <-time.After(200 * time.Microsecond):
					}
					if state.Cut(store, required) >= 1 {
						w.Kill()
						return
					}
				}
			}()
		})
	}

	report, err := NewRunner(cfg,
		WithWorkers(4),
		WithTelemetry(reg),
		WithWorkerHook(hook),
		WithRecovery(Recovery{Store: store, NewSource: newSource}),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Restarts != 1 {
		t.Fatalf("report.Restarts = %d, want 1 (worker kill not exercised)", report.Restarts)
	}
	mu.Lock()
	defer mu.Unlock()
	checkPairSets(t, got, want)
	if report.JoinPairs != len(want) {
		t.Errorf("report.JoinPairs = %d, want %d", report.JoinPairs, len(want))
	}
	if len(report.Run.Windows) != windows {
		t.Errorf("report windows = %d, want %d", len(report.Run.Windows), windows)
	}
	snap := report.Telemetry
	if snap.Counter("checkpoint_snapshots_total") == 0 {
		t.Error("checkpoint_snapshots_total = 0, want > 0")
	}
	if snap.Counter("recovery_restores_total") == 0 {
		t.Error("recovery_restores_total = 0, want > 0")
	}
}

// TestLocalCheckpointOnly: with recovery configured, the in-process
// runtime checkpoints every window for every stateful task — the cut
// reaches the last window — without changing the run's result.
func TestLocalCheckpointOnly(t *testing.T) {
	gen := datagen.NewServerLog(17)
	var docs []document.Document
	for w := 0; w < 3; w++ {
		docs = append(docs, gen.Window(100)...)
	}
	store := state.NewMemStore()
	cfg := Config{M: 4, Creators: 2, Assigners: 2, WindowSize: 100, Windows: 3,
		Source: &replaySource{docs: docs}}
	report, err := NewRunner(cfg, WithRecovery(Recovery{Store: store})).Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(oraclePairs(docs, 100)); report.JoinPairs != want {
		t.Errorf("JoinPairs = %d, want %d", report.JoinPairs, want)
	}
	if cut := state.Cut(store, requiredTasks(cfg)); cut != 2 {
		t.Errorf("checkpoint cut = %d, want 2 (all 3 windows snapshotted)", cut)
	}
}

// TestRecoveryValidation: the option must reject unusable combinations
// before anything runs.
func TestRecoveryValidation(t *testing.T) {
	cfg := Config{Source: datagen.NewServerLog(1)}
	if _, err := NewRunner(cfg, WithRecovery(Recovery{})).Run(); err == nil {
		t.Error("WithRecovery without a Store must fail")
	}
	if _, err := NewRunner(cfg, WithWorkers(2),
		WithRecovery(Recovery{Store: state.NewMemStore()})).Run(); err == nil {
		t.Error("cluster recovery without NewSource must fail")
	}
}

// TestReaderReplaySkip: a restored reader regenerates the stream and
// resumes emission at the first window past the cut.
func TestReaderReplaySkip(t *testing.T) {
	gen := datagen.NewServerLog(3)
	var docs []document.Document
	for w := 0; w < 3; w++ {
		docs = append(docs, gen.Window(10)...)
	}
	cfg, err := Config{
		WindowSize: 10, Windows: 3,
		Source: &replaySource{docs: docs},
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cfg.recovery = &recoveryPlumb{store: state.NewMemStore(), restoreWindow: 1}
	s := newReaderSpout(cfg)
	s.Open(nil)
	c := &fakeCollector{}
	for s.NextTuple(c) {
	}
	emitted := c.byStream(streamDocs)
	if len(emitted) != 10 {
		t.Fatalf("replayed docs = %d, want only window 2's 10", len(emitted))
	}
	for _, e := range emitted {
		if w := e.values["window"].(int); w != 2 {
			t.Errorf("doc emitted for window %d, want 2", w)
		}
		if d := e.values["doc"].(document.Document); d.ID != docs[20].ID {
			// Only check the first one; IDs are sequential per source.
			break
		}
	}
	wends := c.byStream(streamWindowEnd)
	if len(wends) != 1 {
		t.Fatalf("punctuations = %d, want 1", len(wends))
	}
	barrier := topology.Tuple{Stream: streamWindowEnd, Values: wends[0].values}
	if id, ok := topology.CheckpointID(barrier); !ok || id != 2 {
		t.Errorf("punctuation checkpoint id = %d/%v, want 2", id, ok)
	}
}

// TestRunnerWrapperEquivalence pins the deprecated Run/ClusterRun
// wrappers to the Runner they delegate to: same stream, same report
// numbers.
func TestRunnerWrapperEquivalence(t *testing.T) {
	mkDocs := func() []document.Document {
		gen := datagen.NewServerLog(59)
		var docs []document.Document
		for w := 0; w < 2; w++ {
			docs = append(docs, gen.Window(90)...)
		}
		return docs
	}
	mkCfg := func() Config {
		return Config{M: 3, Creators: 2, Assigners: 2, WindowSize: 90, Windows: 2,
			Source: &replaySource{docs: mkDocs()}}
	}
	wrapped, err := Run(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewRunner(mkCfg()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.JoinPairs != direct.JoinPairs || wrapped.DocsJoined != direct.DocsJoined {
		t.Errorf("Run wrapper diverges from NewRunner: pairs %d/%d docs %d/%d",
			wrapped.JoinPairs, direct.JoinPairs, wrapped.DocsJoined, direct.DocsJoined)
	}
	cwrapped, err := ClusterRun(mkCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cdirect, err := NewRunner(mkCfg(), WithWorkers(2)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if cwrapped.JoinPairs != cdirect.JoinPairs {
		t.Errorf("ClusterRun wrapper diverges from NewRunner: pairs %d/%d",
			cwrapped.JoinPairs, cdirect.JoinPairs)
	}
	if wrapped.JoinPairs != cwrapped.JoinPairs {
		t.Errorf("local/cluster disagree: %d/%d", wrapped.JoinPairs, cwrapped.JoinPairs)
	}
}
