package core

import (
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/join"
)

// TestClusterRunMatchesOracle runs the full system across three
// TCP-connected workers and checks the exact join result.
func TestClusterRunMatchesOracle(t *testing.T) {
	gen := datagen.NewServerLog(77)
	var docs []document.Document
	for w := 0; w < 3; w++ {
		docs = append(docs, gen.Window(80)...)
	}
	var mu sync.Mutex
	got := make(map[join.Pair]bool)
	cfg := Config{
		M: 4, Creators: 2, Assigners: 2, WindowSize: 80, Windows: 3,
		Source: &replaySource{docs: docs},
		OnResult: func(r join.Result) {
			p := join.Pair{LeftID: r.Left, RightID: r.Right}
			if p.LeftID > p.RightID {
				p.LeftID, p.RightID = p.RightID, p.LeftID
			}
			mu.Lock()
			if got[p] {
				mu.Unlock()
				t.Errorf("pair (%d,%d) duplicated", p.LeftID, p.RightID)
				return
			}
			got[p] = true
			mu.Unlock()
		},
	}
	report, err := ClusterRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Topology.Failures) > 0 {
		t.Fatalf("failures: %v", report.Topology.Failures)
	}
	mu.Lock()
	defer mu.Unlock()
	checkPairSets(t, got, oraclePairs(docs, 80))
	if len(report.Run.Windows) != 3 {
		t.Errorf("windows = %d", len(report.Run.Windows))
	}
}

// TestClusterRunSingleWorker: degenerate cluster must behave like the
// in-process runtime.
func TestClusterRunSingleWorker(t *testing.T) {
	cfg := Config{M: 3, Creators: 1, Assigners: 2, WindowSize: 60, Windows: 2, Source: datagen.NewNoBench(9)}
	report, err := ClusterRun(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.JoinPairs == 0 {
		t.Error("no join pairs produced")
	}
	if len(report.Run.Windows) != 2 {
		t.Errorf("windows = %d", len(report.Run.Windows))
	}
}

// TestClusterAndLocalAgree: identical configuration and data must yield
// identical join-pair counts on both runtimes.
func TestClusterAndLocalAgree(t *testing.T) {
	mkDocs := func() []document.Document {
		gen := datagen.NewServerLog(101)
		var docs []document.Document
		for w := 0; w < 2; w++ {
			docs = append(docs, gen.Window(100)...)
		}
		return docs
	}
	baseCfg := func(docs []document.Document) Config {
		return Config{M: 4, Creators: 2, Assigners: 2, WindowSize: 100, Windows: 2, Source: &replaySource{docs: docs}}
	}
	local, err := Run(baseCfg(mkDocs()))
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := ClusterRun(baseCfg(mkDocs()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if local.JoinPairs != clustered.JoinPairs {
		t.Errorf("local pairs = %d, cluster pairs = %d", local.JoinPairs, clustered.JoinPairs)
	}
	if local.JoinPairs == 0 {
		t.Error("empty result")
	}
}
