package core

import (
	"fmt"

	"repro/internal/document"
	"repro/internal/join"
	"repro/internal/state"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// joinerBolt is the Joiner of Fig. 2: each task owns a windowed join
// engine (FPJ by default); documents arrive via direct grouping from
// the Assigners, join results are produced per tumbling window, and the
// window tumbles once every Assigner task has punctuated it.
//
// Two engineering details keep the distributed result exactly equal to
// a single-node join:
//
//   - Replication means a joinable pair can be co-located on several
//     machines. Every delivered document carries its full target list;
//     a joiner emits a pair only when it is the lowest-indexed joiner
//     in the intersection of the two documents' target lists, so each
//     pair is produced exactly once across the cluster.
//
//   - The Assigners advance through the stream independently, so a fast
//     Assigner's documents for window w+1 can arrive before a slow
//     Assigner's punctuation for window w. Such documents are buffered
//     and replayed right after the tumble.
type joinerBolt struct {
	cfg  Config
	task int

	windowed *join.Windowed
	targets  map[uint64][]int // doc id -> joiner targets, current window
	pairs    int              // deduplicated pairs this window

	// Micro-batching for the parallel probe pool: current-window
	// documents are buffered up to batchCap and probed as one batch;
	// the batch is flushed before any window punctuation is counted, so
	// tumbles and checkpoints always see fully processed state.
	batch    []pendingDoc
	batchCap int
	docsBuf  []document.Document

	current int
	pending map[int][]pendingDoc

	// Memory governance (Config.MemoryBudget): gov meters the windowed
	// engine plus the pending buffers and, under pressure, spills whole
	// pending-window buffers to disk — they are not yet join state, so
	// spilling them is correctness-neutral. spilledPend marks windows
	// with a spill file (reloaded in maybeTumble right before replay);
	// pendBytes tracks each buffered window's accounted bytes and
	// pendTotal their sum, so Account stays O(1) per document.
	gov         *join.Governor
	spilledPend map[int]bool
	pendBytes   map[int]int64
	pendTotal   int64

	// markers counts per-window punctuation from the assigners; the
	// window tumbles when all of them reported. ckptW marks windows
	// whose punctuation carried a checkpoint barrier.
	markers      map[int]int
	ckptW        map[int]bool
	numAssigners int

	cp *checkpointer

	// Live instruments (nil-safe no-ops when cfg.Telemetry is off).
	telPairs *telemetry.Counter // pairs this joiner owns and emits
}

type pendingDoc struct {
	doc     document.Document
	targets []int
}

func newJoinerBolt(cfg Config, task int) *joinerBolt {
	eng, err := join.New(cfg.Engine)
	if err != nil {
		// Config validation happens before the topology is built; an
		// unknown engine here is a programming error.
		panic(err)
	}
	b := &joinerBolt{
		cfg:         cfg,
		task:        task,
		windowed:    join.NewWindowed(eng),
		targets:     make(map[uint64][]int),
		pending:     make(map[int][]pendingDoc),
		markers:     make(map[int]int),
		ckptW:       make(map[int]bool),
		cp:          newCheckpointer(cfg, "joiner", task),
		batchCap:    cfg.ProbeBatch,
		spilledPend: make(map[int]bool),
		pendBytes:   make(map[int]int64),
	}
	fpj, _ := eng.(*join.FPJ)
	if fpj != nil && cfg.ProbeParallelism > 1 {
		fpj.SetProbeParallelism(cfg.ProbeParallelism)
	}
	if reg := cfg.Telemetry; reg != nil {
		id := fmt.Sprint(task)
		b.telPairs = reg.Counter(telemetry.Name("join_pairs_total", "task", id))
		b.windowed.SetInstruments(join.Instruments{
			ProbeSeconds: reg.Histogram(telemetry.Name("join_probe_seconds", "task", id)),
			Results:      reg.Counter(telemetry.Name("join_results_total", "task", id)),
			Duplicates:   reg.Counter(telemetry.Name("join_duplicates_total", "task", id)),
			WindowDocs:   reg.Gauge(telemetry.Name("join_window_docs", "task", id)),
			TreeNodes:    reg.Gauge(telemetry.Name("join_fptree_nodes", "task", id)),
			PoolDepth:    reg.Gauge(telemetry.Name("join_probe_pool_depth", "task", id)),
			BatchDocs:    reg.Histogram(telemetry.Name("join_probe_batch_docs", "task", id)),
		})
		if fpj != nil && cfg.ProbeParallelism > 1 {
			hists := make([]*telemetry.Histogram, cfg.ProbeParallelism)
			for wkr := range hists {
				hists[wkr] = reg.Histogram(telemetry.Name("join_probe_worker_seconds", "task", id, "worker", fmt.Sprint(wkr)))
			}
			fpj.SetWorkerProbeHistograms(hists)
		}
	}
	if cfg.MemoryBudget > 0 {
		var spill state.Store
		if cfg.SpillDir != "" {
			if fs, err := state.NewFSStore(cfg.SpillDir); err == nil {
				spill = fs
			}
			// An unusable spill dir degrades to a store-less governor:
			// pressure is still metered, relief comes from backpressure.
		}
		var ins join.GovernorInstruments
		if reg := cfg.Telemetry; reg != nil {
			id := fmt.Sprint(task)
			ins = join.GovernorInstruments{
				SpillPanes:    reg.Counter(telemetry.Name("state_spill_panes_total", "task", id)),
				SpillBytes:    reg.Counter(telemetry.Name("state_spill_bytes_total", "task", id)),
				Reloads:       reg.Counter(telemetry.Name("state_spill_reloads_total", "task", id)),
				Failures:      reg.Counter(telemetry.Name("state_spill_failures_total", "task", id)),
				ForcedTumbles: reg.Counter(telemetry.Name("state_forced_tumbles_total", "task", id)),
				Shed:          reg.Counter(telemetry.Name("state_shed_total", "task", id)),
				Pressure:      reg.Gauge(telemetry.Name("state_pressure_level", "task", id)),
				Accounted:     reg.Gauge(telemetry.Name("state_accounted_bytes", "task", id)),
			}
		}
		b.gov = join.NewGovernor(join.GovernorConfig{
			Budget: cfg.MemoryBudget,
			Store:  spill,
			Task:   "joiner-" + fmt.Sprint(task),
			Ins:    ins,
		})
	}
	return b
}

// Prepare implements topology.Bolt.
func (b *joinerBolt) Prepare(ctx *topology.TaskContext) {
	b.numAssigners = ctx.NumTasksOf("assigner")
	if b.numAssigners == 0 {
		b.numAssigners = b.cfg.Assigners
	}
	b.cp.restore(b)
}

// Cleanup implements topology.Bolt.
func (b *joinerBolt) Cleanup() {}

// Execute implements topology.Bolt.
func (b *joinerBolt) Execute(t topology.Tuple, c topology.Collector) {
	switch t.Stream {
	case streamToJoin:
		w := t.Values["window"].(int)
		p := pendingDoc{doc: t.Values["doc"].(document.Document), targets: t.Values["targets"].([]int)}
		if w == b.current {
			b.enqueue(p, c)
		} else {
			b.pending[w] = append(b.pending[w], p)
			if b.gov != nil {
				b.pendBytes[w] += pendingDocBytes(p)
				b.pendTotal += pendingDocBytes(p)
			}
		}
		b.govern()
	case streamJoinerWindow:
		// Any punctuation first drains the micro-batch, so window
		// accounting never sees buffered-but-unprobed documents.
		b.flushBatch(c)
		w := t.Values["window"].(int)
		b.markers[w]++
		if _, ok := topology.CheckpointID(t); ok {
			b.ckptW[w] = true
		}
		b.maybeTumble(c)
	}
}

// enqueue routes a current-window document through the micro-batch, or
// straight through the serial path when batching is off.
func (b *joinerBolt) enqueue(p pendingDoc, c topology.Collector) {
	if b.batchCap <= 1 {
		b.process(p, c)
		return
	}
	b.batch = append(b.batch, p)
	if len(b.batch) >= b.batchCap {
		b.flushBatch(c)
	}
}

// flushBatch probes the buffered documents as one batch and emits
// their results in arrival order — the same pairs, in the same order,
// the serial per-document path would have produced.
func (b *joinerBolt) flushBatch(c topology.Collector) {
	if len(b.batch) == 0 {
		return
	}
	b.docsBuf = b.docsBuf[:0]
	for _, p := range b.batch {
		b.targets[p.doc.ID] = p.targets
		b.docsBuf = append(b.docsBuf, p.doc)
	}
	b.batch = b.batch[:0]
	for _, res := range b.windowed.ProcessBatch(b.docsBuf) {
		b.emit(res, c)
	}
}

func (b *joinerBolt) process(p pendingDoc, c topology.Collector) {
	b.targets[p.doc.ID] = p.targets
	for _, res := range b.windowed.Process(p.doc) {
		b.emit(res, c)
	}
}

func (b *joinerBolt) emit(res join.Result, c topology.Collector) {
	if !b.ownsPair(res.Left, res.Right) {
		return
	}
	b.pairs++
	b.telPairs.Inc()
	if b.cfg.onResultWindowed != nil {
		b.cfg.onResultWindowed(b.current, res)
	} else if b.cfg.OnResult != nil {
		b.cfg.OnResult(res)
	}
	c.EmitTo(streamResults, topology.Values{
		"left":   res.Left,
		"right":  res.Right,
		"merged": res.Merged,
	})
}

// ownsPair reports whether this task is the lowest-indexed joiner
// holding both documents.
func (b *joinerBolt) ownsPair(left, right uint64) bool {
	lt, rt := b.targets[left], b.targets[right]
	i, j := 0, 0
	for i < len(lt) && j < len(rt) {
		switch {
		case lt[i] == rt[j]:
			return lt[i] == b.task // first (smallest) common target
		case lt[i] < rt[j]:
			i++
		default:
			j++
		}
	}
	// No common target should be impossible (this task holds both);
	// claim ownership defensively so the pair is not lost.
	return true
}

// maybeTumble closes the current window while all assigners have
// punctuated it, replaying buffered documents of the next window.
func (b *joinerBolt) maybeTumble(c topology.Collector) {
	for b.markers[b.current] == b.numAssigners {
		// Replayed documents of this window may still sit in the
		// micro-batch; fold them in before closing it.
		b.flushBatch(c)
		w := b.current
		ckpt := b.ckptW[w]
		delete(b.markers, w)
		delete(b.ckptW, w)
		docs, _ := b.windowed.Tumble()
		c.EmitTo(streamJoinerStats, topology.Values{"msg": joinerStatsMsg{
			Window:     w,
			Task:       b.task,
			Docs:       docs,
			Pairs:      b.pairs,
			Checkpoint: ckpt,
		}})
		b.pairs = 0
		b.targets = make(map[uint64][]int)
		b.current++
		// Snapshot at the barrier, post-tumble and pre-replay: the
		// state is "window w incorporated, next window empty"; the
		// buffered next-window documents are deliberately dropped — a
		// restart's replayed stream re-delivers them.
		if ckpt {
			b.cp.save(w, b)
		}
		for _, p := range b.takePending(b.current) {
			b.enqueue(p, c)
		}
	}
}

// pendingDocBytes estimates one buffered document's resident
// footprint: the document, its target list and the pendingDoc
// bookkeeping around them.
func pendingDocBytes(p pendingDoc) int64 {
	const perDoc = 48 // pendingDoc struct + slice headers
	return p.doc.MemBytes() + int64(len(p.targets))*8 + perDoc
}

// govern refreshes the memory governor's byte account (windowed join
// state plus buffered future-window documents) and, while pressure
// calls for it, spills whole pending-window buffers to disk, largest
// first. The current window's probe structures are never candidates —
// every arriving document probes them — so when they alone exceed the
// budget the pressure gauge rises and relief comes from MaxPending
// backpressure parking the spout.
func (b *joinerBolt) govern() {
	if b.gov == nil {
		return
	}
	level := b.gov.Account(b.windowed.MemBytes() + b.pendTotal)
	if level < join.PressureSpill || !b.gov.CanSpill() {
		return
	}
	for b.gov.Accounted() > b.gov.Budget() {
		w, ok := b.largestUnspilledPending()
		if !ok || !b.spillPending(w) {
			return
		}
	}
}

// largestUnspilledPending picks the buffered window with the most
// accounted bytes that has no spill file yet (each window spills at
// most once; later arrivals for a spilled window stay resident and
// replay after the reloaded prefix).
func (b *joinerBolt) largestUnspilledPending() (int, bool) {
	best, bestBytes := 0, int64(0)
	for w, n := range b.pendBytes {
		if n > bestBytes && !b.spilledPend[w] && len(b.pending[w]) > 0 {
			best, bestBytes = w, n
		}
	}
	return best, bestBytes > 0
}

// spillPending writes window w's buffer to the spill store and, only
// after the governor's read-back verification succeeds, releases the
// resident copy. A failed spill costs nothing but the failure counter:
// the buffer stays in memory and the documents are never at risk.
func (b *joinerBolt) spillPending(w int) bool {
	snap := pendingSnapshot{docs: b.pending[w]}
	if _, err := b.gov.Spill(w, spillKindPending, &snap); err != nil {
		return false
	}
	b.spilledPend[w] = true
	b.pendTotal -= b.pendBytes[w]
	delete(b.pendBytes, w)
	b.pending[w] = nil
	b.gov.Account(b.windowed.MemBytes() + b.pendTotal)
	return true
}

// takePending returns window w's buffered documents in arrival order —
// the spilled prefix reloaded from disk first, then whatever
// accumulated in memory after the spill — and drops all bookkeeping
// for w. A reload failure (the file corrupted at rest despite the
// write-time verification) degrades instead of crashing: the failure
// is counted, the spilled prefix is lost, the run continues.
func (b *joinerBolt) takePending(w int) []pendingDoc {
	resident := b.pending[w]
	delete(b.pending, w)
	if b.gov != nil {
		b.pendTotal -= b.pendBytes[w]
		delete(b.pendBytes, w)
	}
	if !b.spilledPend[w] {
		return resident
	}
	delete(b.spilledPend, w)
	var snap pendingSnapshot
	if err := b.gov.Reload(w, spillKindPending, &snap); err != nil {
		return resident
	}
	b.gov.Drop(w)
	return append(snap.docs, resident...)
}
