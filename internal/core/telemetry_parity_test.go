package core

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/telemetry"
)

// parityConfig is the shared workload of the telemetry parity test: the
// same stream is run once in process and once over 4 TCP workers.
func parityConfig() Config {
	return Config{
		M: 4, Creators: 2, Assigners: 2,
		WindowSize: 80, Windows: 3,
		Source: datagen.NewServerLog(21),
	}
}

// TestClusterTelemetryParity runs the same workload on the in-process
// runtime and across 4 chaos-delayed TCP workers, each worker with its
// own registry (the multi-process deployment shape), and checks that
// the per-worker scraped counters sum to the single-process picture:
// the joins, the deliveries crossing the assigner→joiner hop, and the
// transport's frames-minus-retries accounting all have to line up.
func TestClusterTelemetryParity(t *testing.T) {
	localReg := telemetry.NewRegistry()
	localReport, err := NewRunner(parityConfig(), WithTelemetry(localReg)).Run()
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	regs := make([]*telemetry.Registry, workers)
	for i := range regs {
		regs[i] = telemetry.NewRegistry()
	}
	var (
		mu      sync.Mutex
		cws     []*cluster.Worker
		scraped string
	)
	scrapeDone := make(chan struct{})
	go func() {
		// Scrape worker 0's live endpoint mid-run, as an external
		// Prometheus would: poll until the worker has bound its port,
		// then GET /metrics.
		defer close(scrapeDone)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			var w *cluster.Worker
			if len(cws) > 0 {
				w = cws[0]
			}
			mu.Unlock()
			if w != nil {
				if addr := w.ScrapeAddr(); addr != "" {
					resp, err := http.Get("http://" + addr + "/metrics")
					if err == nil {
						body, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						mu.Lock()
						scraped = string(body)
						mu.Unlock()
						return
					}
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	clusterReport, err := NewRunner(parityConfig(),
		WithWorkers(workers),
		WithWorkerTelemetry(func(i int) *telemetry.Registry { return regs[i] }),
		WithChaos(&Chaos{Delay: 200 * time.Microsecond}),
		WithWorkerHook(func(i int, w *cluster.Worker) {
			if i == 0 {
				w.MetricsAddr = "127.0.0.1:0"
			}
			mu.Lock()
			cws = append(cws, w)
			mu.Unlock()
		}),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	<-scrapeDone

	// Report.Telemetry is the merge of the four per-worker registries;
	// cross-check it against a hand-rolled merge so the sum really is
	// "what the scrapes add up to".
	snaps := make([]telemetry.Snapshot, workers)
	for i, reg := range regs {
		snaps[i] = reg.Snapshot()
		if len(snaps[i].Counters) == 0 {
			t.Errorf("worker %d registry is empty", i)
		}
	}
	merged := telemetry.Merge(snaps...)
	snap := clusterReport.Telemetry
	for series, v := range merged.Counters {
		if snap.Counters[series] != v {
			t.Errorf("Report.Telemetry[%s] = %d, scraped sum = %d",
				series, snap.Counters[series], v)
		}
	}

	// Join results: deterministic across runtimes, so the summed worker
	// counters must equal both the cluster's report and the
	// single-process snapshot.
	if clusterReport.JoinPairs != localReport.JoinPairs {
		t.Fatalf("cluster pairs = %d, local pairs = %d",
			clusterReport.JoinPairs, localReport.JoinPairs)
	}
	if got := snap.SumCounter("join_pairs_total"); got != int64(localReport.JoinPairs) {
		t.Errorf("summed join_pairs_total = %d, single-process pairs = %d",
			got, localReport.JoinPairs)
	}
	if got, want := snap.Counter("collector_join_pairs_total"),
		localReg.Snapshot().Counter("collector_join_pairs_total"); got != want {
		t.Errorf("collector_join_pairs_total = %d, single-process = %d", got, want)
	}

	// Deliveries: every (document, joiner) delivery crosses the
	// assigner→joiner hop, most over real sockets here; the assigners'
	// summed counters must agree with the joiner-side document count the
	// collector aggregated.
	if got := snap.SumCounter("partition_deliveries_total"); got != int64(clusterReport.DocsJoined) {
		t.Errorf("summed partition_deliveries_total = %d, cluster DocsJoined = %d",
			got, clusterReport.DocsJoined)
	}

	// Transport accounting. Each sendToPeer invocation spends exactly
	// one non-retry frame, so frames - retries is the number of remote
	// copies handed to the data plane; it is bounded by the total copies
	// and must be positive (4 workers cannot be colocated).
	frames := snap.SumCounter("cluster_frames_sent_total")
	retries := snap.SumCounter("cluster_send_retries_total")
	copies := snap.SumCounter("cluster_copies_sent_total")
	remote := frames - retries
	if remote <= 0 || remote > copies {
		t.Errorf("frames-retries = %d-%d = %d, want in (0, %d]", frames, retries, remote, copies)
	}
	if got := snap.SumCounter("cluster_copies_executed_total"); got != copies {
		t.Errorf("copies executed = %d, sent = %d (must drain exactly)", got, copies)
	}
	if dropped := snap.SumCounter("cluster_copies_dropped_total"); dropped != 0 {
		t.Errorf("dropped %d copies in a sever-free run", dropped)
	}
	if copies != clusterReport.Topology.SentCopies {
		t.Errorf("telemetry copies = %d, coordinator stats = %d",
			copies, clusterReport.Topology.SentCopies)
	}

	// Per-component execution counts: the worker-labelled series must
	// sum to the coordinator's per-component totals.
	for comp, want := range clusterReport.Topology.Executed {
		var got int64
		for i := 0; i < workers; i++ {
			got += snap.Counter(telemetry.Name("topology_tuples_executed_total",
				"component", comp, "worker", fmt.Sprint(i)))
		}
		if got != want {
			t.Errorf("executed[%s] = %d, coordinator = %d", comp, got, want)
		}
	}

	// The mid-run scrape must have seen real Prometheus exposition from
	// worker 0.
	mu.Lock()
	body := scraped
	mu.Unlock()
	if body == "" {
		t.Fatal("mid-run scrape of worker 0 never succeeded")
	}
	if !strings.Contains(body, "# TYPE cluster_frames_sent_total counter") ||
		!strings.Contains(body, `worker="0"`) {
		t.Errorf("scrape body missing transport series:\n%.400s", body)
	}
}
