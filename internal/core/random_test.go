package core

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/partition"
)

// TestRandomConfigsExactJoin fuzzes the whole system configuration
// space: random parallelism, window geometry, partitioner, engine,
// expansion and routing — the join result must equal the single-node
// oracle every time. This is the strongest end-to-end invariant the
// system has.
func TestRandomConfigsExactJoin(t *testing.T) {
	partitioners := []partition.Partitioner{
		partition.AssociationGroups{}, partition.SetCover{}, partition.DisjointSets{},
	}
	engines := []string{"FPJ", "NLJ", "HBJ"}
	expansions := []ExpansionMode{ExpansionAuto, ExpansionOff, ExpansionForced}
	routings := []Routing{PartitionRouting, HashPairsRouting}

	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	for round := 0; round < rounds; round++ {
		r := rand.New(rand.NewSource(int64(1000 + round)))
		windowSize := 40 + r.Intn(120)
		windows := 2 + r.Intn(3)
		var gen datagen.Generator
		if r.Intn(2) == 0 {
			gen = datagen.NewServerLog(int64(round))
		} else {
			gen = datagen.NewNoBench(int64(round))
		}
		var docs []document.Document
		for w := 0; w < windows; w++ {
			docs = append(docs, gen.Window(windowSize)...)
		}
		cfg := Config{
			M:           2 + r.Intn(5),
			Creators:    1 + r.Intn(3),
			Assigners:   1 + r.Intn(4),
			WindowSize:  windowSize,
			Windows:     windows,
			Delta:       1 + r.Intn(4),
			Theta:       0.1 + r.Float64()*0.6,
			Partitioner: partitioners[r.Intn(len(partitioners))],
			Engine:      engines[r.Intn(len(engines))],
			Expansion:   expansions[r.Intn(len(expansions))],
			Routing:     routings[r.Intn(len(routings))],
		}
		got, report := runAndCollect(t, cfg, docs)
		want := oraclePairs(docs, windowSize)
		if len(got) != len(want) {
			t.Errorf("round %d (%s/%s/%s/%s m=%d c=%d a=%d): %d pairs, want %d",
				round, cfg.Partitioner.Name(), cfg.Engine, cfg.Expansion, cfg.Routing,
				cfg.M, cfg.Creators, cfg.Assigners, len(got), len(want))
			continue
		}
		for p := range want {
			if !got[p] {
				t.Errorf("round %d: missing pair (%d,%d)", round, p.LeftID, p.RightID)
				break
			}
		}
		if report.JoinPairs != len(want) {
			t.Errorf("round %d: report.JoinPairs = %d, want %d", round, report.JoinPairs, len(want))
		}
	}
}
