package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/telemetry"
)

// TestRunProbeParallelismParity runs the full topology with the probe
// worker pool on and checks the end-to-end contract: the produced pair
// set equals both the single-node oracle and a serial-probe run over
// the same stream, and the pool telemetry series are live.
func TestRunProbeParallelismParity(t *testing.T) {
	docs := datagen.NewNoBench(21).Window(600)
	const windowSize = 150
	base := Config{M: 4, Creators: 2, Assigners: 3, WindowSize: windowSize, Windows: 4}
	want := oraclePairs(docs, windowSize)

	serialPairs, serialReport := runAndCollect(t, base, docs)
	if !reflect.DeepEqual(serialPairs, want) {
		t.Fatalf("serial run produced %d pairs, oracle has %d", len(serialPairs), len(want))
	}

	par := base
	par.ProbeParallelism = 4
	par.ProbeBatch = 16
	par.Telemetry = telemetry.NewRegistry()
	parPairs, parReport := runAndCollect(t, par, docs)
	if !reflect.DeepEqual(parPairs, want) {
		t.Fatalf("parallel-probe run produced %d pairs, oracle has %d", len(parPairs), len(want))
	}
	if parReport.JoinPairs != serialReport.JoinPairs {
		t.Fatalf("JoinPairs = %d with probe pool, %d serial", parReport.JoinPairs, serialReport.JoinPairs)
	}

	// The pool instruments must be wired through the joiner bolts.
	snap := parReport.Telemetry
	var sawDepth, sawBatch, sawWorker bool
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "join_probe_pool_depth{") && snap.Gauges[name] == 4 {
			sawDepth = true
		}
	}
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, "join_probe_batch_docs{") && h.Count > 0 {
			sawBatch = true
		}
		if strings.HasPrefix(name, "join_probe_worker_seconds{") && h.Count > 0 {
			sawWorker = true
		}
	}
	if !sawDepth {
		t.Error("no join_probe_pool_depth gauge reported the pool size")
	}
	if !sawBatch {
		t.Error("no join_probe_batch_docs histogram recorded a batch")
	}
	if !sawWorker {
		t.Error("no join_probe_worker_seconds histogram recorded a probe")
	}
}

// TestRunProbeBatchSerialEngine pins the batching path with batching on
// but the pool off, and with a non-FPJ engine: micro-batching alone
// must not change the produced pair set.
func TestRunProbeBatchSerialEngine(t *testing.T) {
	docs := datagen.NewServerLog(31).Window(400)
	const windowSize = 100
	want := oraclePairs(docs, windowSize)

	cfg := Config{M: 3, Creators: 1, Assigners: 2, WindowSize: windowSize, Windows: 4,
		ProbeBatch: 8}
	got, _ := runAndCollect(t, cfg, docs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batched serial run produced %d pairs, oracle has %d", len(got), len(want))
	}

	nlj := cfg
	nlj.Engine = "NLJ"
	nlj.ProbeParallelism = 4 // ignored by NLJ, must stay correct
	got, _ = runAndCollect(t, nlj, docs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NLJ batched run produced %d pairs, oracle has %d", len(got), len(want))
	}
}
