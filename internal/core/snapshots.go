package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/document"
	"repro/internal/expansion"
	"repro/internal/metrics"
	"repro/internal/partition"
)

// This file holds the state.Snapshotter implementations of the Fig. 2
// bolts. A snapshot is always taken at a window boundary (the
// checkpoint barrier rides the window punctuation), so everything tied
// to in-flight windows — sample buffers, routed-but-unpunctuated
// documents, deployment-barrier buffers, unresolved merger rounds — is
// deliberately absent: a restart replays the stream from the window
// after the cut and regenerates all of it. What a snapshot carries is
// exactly the state that survives window boundaries.
//
// All pair-bearing state serialises through canonical strings
// (document.Pair, partition.Table's custom gob), never through interned
// symbols: symbol values are process-local and a restored attempt may
// intern in a different order.

// assignerState is the snapshot of one assignerBolt at the close of a
// window. Per-window routing counters are zero at that point (just
// reset by finishWindow) and are not carried.
type assignerState struct {
	Version int
	Table   *partition.Table
	Spec    *expansion.Expansion
	Unseen  map[document.Pair]int

	BaselineSet  bool
	BaselineRepl float64
	BaselineGini float64
	AwaitingBase bool

	Waiting       bool
	WaitWindow    int
	PendingRepart []int

	LastDecision decisionMsg
}

// Snapshot implements state.Snapshotter.
func (b *assignerBolt) Snapshot(w io.Writer) error {
	st := assignerState{
		Version:      b.version,
		Table:        b.table,
		Spec:         b.spec,
		Unseen:       b.unseen,
		BaselineSet:  b.baselineSet,
		BaselineRepl: b.baselineRepl,
		BaselineGini: b.baselineGini,
		AwaitingBase: b.awaitingBase,
		Waiting:      b.waiting,
		WaitWindow:   b.waitWindow,
		LastDecision: b.lastDecision,
	}
	for w := range b.pendingRepart {
		st.PendingRepart = append(st.PendingRepart, w)
	}
	sort.Ints(st.PendingRepart)
	return gob.NewEncoder(w).Encode(&st)
}

// Restore implements state.Snapshotter.
func (b *assignerBolt) Restore(r io.Reader) error {
	var st assignerState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	b.version = st.Version
	b.table = st.Table
	b.spec = st.Spec
	b.unseen = st.Unseen
	if b.unseen == nil {
		b.unseen = make(map[document.Pair]int)
	}
	b.baselineSet = st.BaselineSet
	b.baselineRepl = st.BaselineRepl
	b.baselineGini = st.BaselineGini
	b.awaitingBase = st.AwaitingBase
	b.waiting = st.Waiting
	b.waitWindow = st.WaitWindow
	b.buffered = nil
	b.pendingRepart = make(map[int]bool, len(st.PendingRepart))
	for _, w := range st.PendingRepart {
		b.pendingRepart[w] = true
	}
	b.lastDecision = st.LastDecision
	return nil
}

// creatorState is the snapshot of one creatorBolt at the close of a
// window: just the verdict bookkeeping. The sample buffers and pending
// punctuation are rebuilt by the replayed stream.
type creatorState struct {
	// Decisions maps a window to the sorted set of assigner tasks whose
	// verdict arrived; Requested marks windows with a positive verdict.
	Decisions map[int][]int
	Requested map[int]bool
}

// Snapshot implements state.Snapshotter.
func (b *creatorBolt) Snapshot(w io.Writer) error {
	st := creatorState{
		Decisions: make(map[int][]int, len(b.decisions)),
		Requested: b.requested,
	}
	for win, tasks := range b.decisions {
		ts := make([]int, 0, len(tasks))
		for t := range tasks {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		st.Decisions[win] = ts
	}
	return gob.NewEncoder(w).Encode(&st)
}

// Restore implements state.Snapshotter.
func (b *creatorBolt) Restore(r io.Reader) error {
	var st creatorState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	b.decisions = make(map[int]map[int]bool, len(st.Decisions))
	for win, tasks := range st.Decisions {
		set := make(map[int]bool, len(tasks))
		for _, t := range tasks {
			set[t] = true
		}
		b.decisions[win] = set
	}
	b.requested = st.Requested
	if b.requested == nil {
		b.requested = make(map[int]bool)
	}
	b.buffers = make(map[int][]document.Document)
	b.pendingWend = nil
	b.ckptWend = make(map[int]bool)
	return nil
}

// mergerState is the snapshot of the mergerBolt at the resolution of a
// window's round. Unresolved rounds are dropped — the restored creators
// re-emit their reports for every replayed window.
type mergerState struct {
	Version     int
	Initial     bool
	LastResched int

	Table *partition.Table
	Spec  *expansion.Expansion

	LastTableWindow     int
	LastTableRecomputed bool

	Working *partition.Table
	Dirty   bool
}

// Snapshot implements state.Snapshotter.
func (b *mergerBolt) Snapshot(w io.Writer) error {
	st := mergerState{
		Version:             b.version,
		Initial:             b.initial,
		LastResched:         b.lastResched,
		Table:               b.table,
		Spec:                b.spec,
		LastTableWindow:     b.lastTableWindow,
		LastTableRecomputed: b.lastTableRecomputed,
		Working:             b.working,
		Dirty:               b.dirty,
	}
	return gob.NewEncoder(w).Encode(&st)
}

// Restore implements state.Snapshotter.
func (b *mergerBolt) Restore(r io.Reader) error {
	var st mergerState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	b.version = st.Version
	b.initial = st.Initial
	b.lastResched = st.LastResched
	b.table = st.Table
	b.spec = st.Spec
	b.lastTableWindow = st.LastTableWindow
	b.lastTableRecomputed = st.LastTableRecomputed
	b.working = st.Working
	b.dirty = st.Dirty
	b.rounds = make(map[int]*computeRound)
	return nil
}

// joinerState is the snapshot of one joinerBolt right after a tumble:
// the next window's index and the windowed engine's own snapshot
// (which serialises through internal/join's Snapshotter).
type joinerState struct {
	Current  int
	Windowed []byte
}

// Snapshot implements state.Snapshotter.
func (b *joinerBolt) Snapshot(w io.Writer) error {
	var buf bytes.Buffer
	if err := b.windowed.Snapshot(&buf); err != nil {
		return err
	}
	st := joinerState{Current: b.current, Windowed: buf.Bytes()}
	return gob.NewEncoder(w).Encode(&st)
}

// Restore implements state.Snapshotter.
func (b *joinerBolt) Restore(r io.Reader) error {
	var st joinerState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	if err := b.windowed.Restore(bytes.NewReader(st.Windowed)); err != nil {
		return err
	}
	b.current = st.Current
	b.targets = make(map[uint64][]int)
	b.pending = make(map[int][]pendingDoc)
	b.markers = make(map[int]int)
	b.ckptW = make(map[int]bool)
	b.pairs = 0
	// Spill files of the failed attempt are stale (the replayed stream
	// re-delivers every buffered document); forget them rather than
	// reload them and double-process.
	b.spilledPend = make(map[int]bool)
	b.pendBytes = make(map[int]int64)
	b.pendTotal = 0
	return nil
}

// spillKindPending tags the spill envelope of a joiner's buffered
// future-window documents (Config.MemoryBudget).
const spillKindPending = "joiner-pending"

// pendingSnapshot carries one buffered window's pendingDoc list
// through the memory governor's spill path. Documents travel in their
// symbol-aware gob form (strings on the wire), so a spill file reloads
// correctly even across a symbol epoch.
type pendingSnapshot struct {
	docs []pendingDoc
}

type pendingGob struct {
	Docs    []document.Document
	Targets [][]int
}

// Snapshot implements state.Snapshotter.
func (p *pendingSnapshot) Snapshot(w io.Writer) error {
	g := pendingGob{
		Docs:    make([]document.Document, len(p.docs)),
		Targets: make([][]int, len(p.docs)),
	}
	for i, pd := range p.docs {
		g.Docs[i] = pd.doc
		g.Targets[i] = pd.targets
	}
	return gob.NewEncoder(w).Encode(&g)
}

// Restore implements state.Snapshotter.
func (p *pendingSnapshot) Restore(r io.Reader) error {
	var g pendingGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return err
	}
	if len(g.Docs) != len(g.Targets) {
		return fmt.Errorf("core: pending spill: %d documents but %d target lists", len(g.Docs), len(g.Targets))
	}
	p.docs = make([]pendingDoc, len(g.Docs))
	for i := range g.Docs {
		p.docs[i] = pendingDoc{doc: g.Docs[i], targets: g.Targets[i]}
	}
	return nil
}

// collectorState is the snapshot of the collectorBolt at the completion
// of a window: the statistics of the completed-window prefix plus the
// merger-event accumulators.
type collectorState struct {
	TableVersions int
	Repartitions  int
	Windows       map[int]collectorWindowState
}

type collectorWindowState struct {
	Stats         metrics.WindowStats
	Repartitioned bool
	Pairs         int
	Docs          int
}

// Snapshot implements state.Snapshotter. Only completed windows are
// carried — they form a prefix of the stream, and the replay will
// regenerate every partial past the cut.
func (b *collectorBolt) Snapshot(w io.Writer) error {
	st := collectorState{
		TableVersions: b.tableVersions,
		Repartitions:  b.repartitions,
		Windows:       make(map[int]collectorWindowState),
	}
	for win, agg := range b.windows {
		if !agg.done {
			continue
		}
		st.Windows[win] = collectorWindowState{
			Stats:         *agg.stats,
			Repartitioned: agg.repartitioned,
			Pairs:         agg.pairs,
			Docs:          agg.docs,
		}
	}
	return gob.NewEncoder(w).Encode(&st)
}

// Restore implements state.Snapshotter.
func (b *collectorBolt) Restore(r io.Reader) error {
	var st collectorState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	b.tableVersions = st.TableVersions
	b.repartitions = st.Repartitions
	b.windows = make(map[int]*windowAgg, len(st.Windows))
	for win, ws := range st.Windows {
		stats := ws.Stats
		b.windows[win] = &windowAgg{
			stats:         &stats,
			repartitioned: ws.Repartitioned,
			partials:      b.cfg.Assigners,
			jdone:         b.cfg.M,
			pairs:         ws.Pairs,
			docs:          ws.Docs,
			done:          true,
		}
	}
	return nil
}
