package core

import (
	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/topology"
)

// readerSpout is the JsonReader of Fig. 2: it draws documents from a
// generator, stamps them with their window index, and emits window
// punctuation after every WindowSize documents.
type readerSpout struct {
	source     datagen.Generator
	windowSize int
	windows    int

	window int
	buf    []document.Document
	pos    int
}

func newReaderSpout(source datagen.Generator, windowSize, windows int) *readerSpout {
	return &readerSpout{source: source, windowSize: windowSize, windows: windows}
}

// Open implements topology.Spout.
func (s *readerSpout) Open(*topology.TaskContext) {}

// Close implements topology.Spout.
func (s *readerSpout) Close() {}

// NextTuple implements topology.Spout: one document (or one window
// marker) per call.
func (s *readerSpout) NextTuple(c topology.Collector) bool {
	if s.window >= s.windows {
		return false
	}
	if s.buf == nil {
		s.buf = s.source.Window(s.windowSize)
		s.pos = 0
	}
	if s.pos < len(s.buf) {
		d := s.buf[s.pos]
		s.pos++
		c.EmitTo(streamDocs, topology.Values{"doc": d, "window": s.window})
		return true
	}
	// Window exhausted: punctuate and advance.
	c.EmitTo(streamWindowEnd, topology.Values{"window": s.window})
	s.window++
	s.buf = nil
	return s.window < s.windows
}
