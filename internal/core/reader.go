package core

import (
	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/topology"
)

// readerSpout is the JsonReader of Fig. 2: it draws documents from a
// generator, stamps them with their window index, and emits window
// punctuation after every WindowSize documents.
//
// With recovery enabled the reader plays two extra roles. It is the
// checkpoint-barrier source: every window punctuation carries the
// window index as a checkpoint barrier id (topology.WithCheckpoint),
// and the annotation rides the existing punctuation streams through
// assigners to joiners, aligning every task's snapshots on window
// boundaries. And on a restart it is the replay source: the reader is
// the one stateful-looking component that is not restored — instead a
// fresh deterministic generator regenerates the stream and the reader
// discards the windows at or below the recovery cut, resuming emission
// at the first window the restored tasks have not incorporated.
type readerSpout struct {
	source     datagen.Generator
	windowSize int
	windows    int
	checkpoint bool
	skip       int // windows to regenerate and discard before emitting

	window int
	buf    []document.Document
	pos    int
}

func newReaderSpout(cfg Config) *readerSpout {
	s := &readerSpout{
		source:     cfg.Source,
		windowSize: cfg.WindowSize,
		windows:    cfg.Windows,
		checkpoint: cfg.recovery != nil,
	}
	if cfg.recovery != nil && cfg.recovery.restoreWindow >= 0 {
		s.skip = cfg.recovery.restoreWindow + 1
	}
	return s
}

// Open implements topology.Spout: on a recovery restart it fast-
// forwards the generator past the checkpointed prefix of the stream.
func (s *readerSpout) Open(*topology.TaskContext) {
	for ; s.window < s.skip && s.window < s.windows; s.window++ {
		s.source.Window(s.windowSize)
	}
}

// Close implements topology.Spout.
func (s *readerSpout) Close() {}

// AtFrontier and Frontier implement topology.Frontiered: the reader
// sits at a window frontier exactly when no window is half-emitted
// (buf is nil between the punctuation of one window and the first
// document of the next), and the frontier is the last window whose
// punctuation went out. An elastic rescale parks the reader here, so
// migrated snapshots are always cut at a window boundary.
func (s *readerSpout) AtFrontier() bool { return s.buf == nil }

// Frontier reports the last fully emitted window (-1 before the first).
func (s *readerSpout) Frontier() int { return s.window - 1 }

// NextTuple implements topology.Spout: one document (or one window
// marker) per call.
func (s *readerSpout) NextTuple(c topology.Collector) bool {
	if s.window >= s.windows {
		return false
	}
	if s.buf == nil {
		s.buf = s.source.Window(s.windowSize)
		s.pos = 0
	}
	if s.pos < len(s.buf) {
		d := s.buf[s.pos]
		s.pos++
		c.EmitTo(streamDocs, topology.Values{"doc": d, "window": s.window})
		return true
	}
	// Window exhausted: punctuate and advance. The punctuation doubles
	// as the checkpoint barrier for this window when recovery is on.
	values := topology.Values{"window": s.window}
	if s.checkpoint {
		topology.WithCheckpoint(values, s.window)
	}
	c.EmitTo(streamWindowEnd, values)
	s.window++
	s.buf = nil
	return s.window < s.windows
}
