package core

import (
	"testing"

	"repro/internal/document"
	"repro/internal/partition"
	"repro/internal/topology"
)

// fakeCollector records emissions for bolt unit tests.
type fakeCollector struct {
	emitted []emission
}

type emission struct {
	stream string
	task   int // -1 for non-direct
	values topology.Values
}

func (f *fakeCollector) Emit(v topology.Values) { f.EmitTo(topology.DefaultStream, v) }
func (f *fakeCollector) EmitTo(stream string, v topology.Values) {
	f.emitted = append(f.emitted, emission{stream: stream, task: -1, values: v})
}
func (f *fakeCollector) EmitDirect(stream string, task int, v topology.Values) {
	f.emitted = append(f.emitted, emission{stream: stream, task: task, values: v})
}

func (f *fakeCollector) byStream(stream string) []emission {
	var out []emission
	for _, e := range f.emitted {
		if e.stream == stream {
			out = append(out, e)
		}
	}
	return out
}

func docTuple(w int, d document.Document) topology.Tuple {
	return topology.Tuple{Stream: streamDocs, Values: topology.Values{"doc": d, "window": w}}
}

func wendTuple(w int) topology.Tuple {
	return topology.Tuple{Stream: streamWindowEnd, Values: topology.Values{"window": w}}
}

func testConfig() Config {
	cfg, err := Config{
		M: 3, Creators: 1, Assigners: 1, WindowSize: 4, Windows: 2,
		Source: &replaySource{},
	}.withDefaults()
	if err != nil {
		panic(err)
	}
	return cfg
}

// --- creator ---------------------------------------------------------

func TestCreatorFirstWindowComputes(t *testing.T) {
	cfg := testConfig()
	b := newCreatorBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"assigner": 1}})
	c := &fakeCollector{}
	b.Execute(docTuple(0, document.MustParse(1, `{"a":1}`)), c)
	b.Execute(wendTuple(0), c)
	got := c.byStream(streamCreatorWindow)
	if len(got) != 1 {
		t.Fatalf("creatorWindow emissions = %d", len(got))
	}
	msg := got[0].values["msg"].(creatorWindowMsg)
	if !msg.Computing || msg.Window != 0 {
		t.Errorf("first window must compute: %+v", msg)
	}
}

func TestCreatorWaitsForDecisions(t *testing.T) {
	cfg := testConfig()
	cfg.Assigners = 2
	b := newCreatorBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"assigner": 2}})
	c := &fakeCollector{}
	b.Execute(wendTuple(0), c) // window 0 needs no decisions
	if len(c.byStream(streamCreatorWindow)) != 1 {
		t.Fatal("window 0 must close immediately")
	}
	// Window 1 must wait for both assigners' verdicts on window 0.
	b.Execute(wendTuple(1), c)
	if len(c.byStream(streamCreatorWindow)) != 1 {
		t.Fatal("window 1 closed before decisions")
	}
	b.Execute(topology.Tuple{Stream: streamRepartition, Values: topology.Values{
		"msg": decisionMsg{Window: 0, Task: 0, Repartition: false},
	}}, c)
	if len(c.byStream(streamCreatorWindow)) != 1 {
		t.Fatal("window 1 closed with only one decision")
	}
	b.Execute(topology.Tuple{Stream: streamRepartition, Values: topology.Values{
		"msg": decisionMsg{Window: 0, Task: 1, Repartition: true},
	}}, c)
	got := c.byStream(streamCreatorWindow)
	if len(got) != 2 {
		t.Fatalf("window 1 did not close after all decisions: %d", len(got))
	}
	msg := got[1].values["msg"].(creatorWindowMsg)
	if !msg.Computing {
		t.Error("repartition verdict must make window 1 a computation window")
	}
}

func TestCreatorRespondsToExpansion(t *testing.T) {
	cfg := testConfig()
	b := newCreatorBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"assigner": 1}})
	c := &fakeCollector{}
	b.Execute(docTuple(0, document.MustParse(1, `{"a":1,"b":2}`)), c)
	b.Execute(wendTuple(0), c)
	b.Execute(topology.Tuple{Stream: streamExpansion, Values: topology.Values{
		"msg": expansionMsg{Window: 0, Spec: nil},
	}}, c)
	got := c.byStream(streamLocalGroups)
	if len(got) != 1 {
		t.Fatalf("localGroups emissions = %d", len(got))
	}
	msg := got[0].values["msg"].(localGroupsMsg)
	if len(msg.Groups) == 0 {
		t.Error("no groups computed from the buffered sample")
	}
	// The buffer must be released.
	if len(b.buffers) != 0 {
		t.Errorf("buffers not cleared: %v", len(b.buffers))
	}
}

func TestCreatorCompetitorShipsDocsAsGroups(t *testing.T) {
	cfg := testConfig()
	cfg.Partitioner = partition.DisjointSets{}
	b := newCreatorBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"assigner": 1}})
	c := &fakeCollector{}
	b.Execute(docTuple(0, document.MustParse(1, `{"a":1,"b":2}`)), c)
	b.Execute(docTuple(0, document.MustParse(2, `{"a":1}`)), c)
	b.Execute(wendTuple(0), c)
	b.Execute(topology.Tuple{Stream: streamExpansion, Values: topology.Values{
		"msg": expansionMsg{Window: 0, Spec: nil},
	}}, c)
	msg := c.byStream(streamLocalGroups)[0].values["msg"].(localGroupsMsg)
	if len(msg.Groups) != 2 {
		t.Fatalf("competitor groups = %d, want one per document", len(msg.Groups))
	}
	for _, g := range msg.Groups {
		if g.Load != 1 {
			t.Errorf("competitor group load = %d, want 1", g.Load)
		}
	}
}

// --- merger ----------------------------------------------------------

func TestMergerTwoRoundProtocol(t *testing.T) {
	cfg := testConfig()
	cfg.Creators = 2
	b := newMergerBolt(cfg)
	c := &fakeCollector{}
	// First creator reports; nothing happens yet.
	b.Execute(topology.Tuple{Stream: streamCreatorWindow, Values: topology.Values{
		"msg": creatorWindowMsg{Window: 0, Task: 0, Computing: true},
	}}, c)
	if len(c.byStream(streamExpansion)) != 0 {
		t.Fatal("expansion sent before all creators reported")
	}
	b.Execute(topology.Tuple{Stream: streamCreatorWindow, Values: topology.Values{
		"msg": creatorWindowMsg{Window: 0, Task: 1, Computing: true},
	}}, c)
	if len(c.byStream(streamExpansion)) != 1 {
		t.Fatal("expansion round not started")
	}
	// Local groups from both creators complete the round.
	g := partition.AssocGroup{Pairs: partition.NewPairSet(intPair2("a", 1)), Load: 2, Docs: []uint64{1, 2}}
	b.Execute(topology.Tuple{Stream: streamLocalGroups, Values: topology.Values{
		"msg": localGroupsMsg{Window: 0, Task: 0, Groups: []partition.AssocGroup{g}},
	}}, c)
	if len(c.byStream(streamTable)) != 0 {
		t.Fatal("table built before all groups arrived")
	}
	g2 := partition.AssocGroup{Pairs: partition.NewPairSet(intPair2("b", 2)), Load: 1, Docs: []uint64{3}}
	b.Execute(topology.Tuple{Stream: streamLocalGroups, Values: topology.Values{
		"msg": localGroupsMsg{Window: 0, Task: 1, Groups: []partition.AssocGroup{g2}},
	}}, c)
	tables := c.byStream(streamTable)
	if len(tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(tables))
	}
	msg := tables[0].values["msg"].(tableMsg)
	if msg.Version != 1 || msg.Window != 0 || msg.Recomputed {
		t.Errorf("initial table msg = %+v", msg)
	}
	if !msg.Table.Covers(intPair2("a", 1)) || !msg.Table.Covers(intPair2("b", 2)) {
		t.Error("table does not cover the consolidated pairs")
	}
}

func TestMergerNonComputingWindowIsQuiet(t *testing.T) {
	cfg := testConfig()
	b := newMergerBolt(cfg)
	c := &fakeCollector{}
	b.Execute(topology.Tuple{Stream: streamCreatorWindow, Values: topology.Values{
		"msg": creatorWindowMsg{Window: 1, Task: 0, Computing: false},
	}}, c)
	if len(c.emitted) != 0 {
		t.Errorf("emissions on a quiet window: %v", c.emitted)
	}
	if len(b.rounds) != 0 {
		t.Error("round state leaked")
	}
}

func TestMergerCoalescesUpdates(t *testing.T) {
	cfg := testConfig()
	b := newMergerBolt(cfg)
	c := &fakeCollector{}
	// Initial table.
	b.Execute(topology.Tuple{Stream: streamCreatorWindow, Values: topology.Values{
		"msg": creatorWindowMsg{Window: 0, Task: 0, Computing: true},
	}}, c)
	g := partition.AssocGroup{Pairs: partition.NewPairSet(intPair2("a", 1)), Load: 1, Docs: []uint64{1}}
	b.Execute(topology.Tuple{Stream: streamLocalGroups, Values: topology.Values{
		"msg": localGroupsMsg{Window: 0, Task: 0, Groups: []partition.AssocGroup{g}},
	}}, c)
	if n := len(c.byStream(streamTable)); n != 1 {
		t.Fatalf("tables = %d", n)
	}
	// Two updates: no broadcast yet.
	b.Execute(topology.Tuple{Stream: streamUpdate, Values: topology.Values{
		"msg": updateMsg{Doc: document.MustParse(9, `{"z":9}`)},
	}}, c)
	b.Execute(topology.Tuple{Stream: streamUpdate, Values: topology.Values{
		"msg": updateMsg{Doc: document.MustParse(10, `{"y":8}`)},
	}}, c)
	if n := len(c.byStream(streamTable)); n != 1 {
		t.Fatalf("updates broadcast eagerly: tables = %d", n)
	}
	// Window boundary flushes one coalesced version.
	b.Execute(topology.Tuple{Stream: streamCreatorWindow, Values: topology.Values{
		"msg": creatorWindowMsg{Window: 1, Task: 0, Computing: false},
	}}, c)
	tables := c.byStream(streamTable)
	if len(tables) != 2 {
		t.Fatalf("tables after flush = %d, want 2", len(tables))
	}
	msg := tables[1].values["msg"].(tableMsg)
	if msg.Version != 2 || msg.Window != -1 || msg.Recomputed {
		t.Errorf("flush msg = %+v", msg)
	}
	if !msg.Table.Covers(intPair2("z", 9)) || !msg.Table.Covers(intPair2("y", 8)) {
		t.Error("coalesced updates missing from the flushed table")
	}
}

func TestMergerRelaysOneRepartitionPerWindow(t *testing.T) {
	cfg := testConfig()
	b := newMergerBolt(cfg)
	c := &fakeCollector{}
	for task := 0; task < 3; task++ {
		b.Execute(topology.Tuple{Stream: streamRepartition, Values: topology.Values{
			"msg": decisionMsg{Window: 2, Task: task, Repartition: true},
		}}, c)
	}
	if n := len(c.byStream(streamResched)); n != 1 {
		t.Errorf("resched relays = %d, want 1", n)
	}
	// Negative verdicts are not relayed.
	b.Execute(topology.Tuple{Stream: streamRepartition, Values: topology.Values{
		"msg": decisionMsg{Window: 3, Task: 0, Repartition: false},
	}}, c)
	if n := len(c.byStream(streamResched)); n != 1 {
		t.Errorf("negative verdict relayed: %d", n)
	}
}

// --- assigner --------------------------------------------------------

func intPair2(a string, v int) document.Pair {
	return document.Pair{Attr: a, Val: document.EncodeInt(int64(v))}
}

func newTableMsg(version int, pairs ...document.Pair) tableMsg {
	parts := []partition.PairSet{partition.NewPairSet(pairs...), partition.NewPairSet(), partition.NewPairSet()}
	return tableMsg{Version: version, Window: 0, Table: partition.NewTable(parts), Recomputed: false}
}

func TestAssignerBroadcastsWithoutTable(t *testing.T) {
	cfg := testConfig()
	b := newAssignerBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"joiner": 3}})
	c := &fakeCollector{}
	b.Execute(docTuple(0, document.MustParse(1, `{"a":1}`)), c)
	if n := len(c.byStream(streamToJoin)); n != 3 {
		t.Errorf("deliveries = %d, want broadcast to 3", n)
	}
}

func TestAssignerRoutesWithTable(t *testing.T) {
	cfg := testConfig()
	b := newAssignerBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"joiner": 3}})
	c := &fakeCollector{}
	b.Execute(topology.Tuple{Stream: streamTable, Values: topology.Values{
		"msg": newTableMsg(1, intPair2("a", 1)),
	}}, c)
	b.Execute(docTuple(0, document.New(1, []document.Pair{intPair2("a", 1)})), c)
	got := c.byStream(streamToJoin)
	if len(got) != 1 || got[0].task != 0 {
		t.Errorf("routed to %v, want exactly task 0", got)
	}
}

func TestAssignerBarrierBuffersUntilTable(t *testing.T) {
	cfg := testConfig()
	b := newAssignerBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"joiner": 3}})
	c := &fakeCollector{}
	// Window 0 streams and ends: barrier engages (version 0).
	b.Execute(docTuple(0, document.New(1, []document.Pair{intPair2("a", 1)})), c)
	b.Execute(wendTuple(0), c)
	pre := len(c.byStream(streamToJoin))
	// Window 1 documents arrive while waiting: buffered, not routed.
	b.Execute(docTuple(1, document.New(2, []document.Pair{intPair2("a", 1)})), c)
	if n := len(c.byStream(streamToJoin)); n != pre {
		t.Fatalf("document routed through the barrier: %d > %d", n, pre)
	}
	// Table arrives: buffer drains, the doc routes to the matching
	// partition only.
	b.Execute(topology.Tuple{Stream: streamTable, Values: topology.Values{
		"msg": newTableMsg(1, intPair2("a", 1)),
	}}, c)
	got := c.byStream(streamToJoin)
	if len(got) != pre+1 {
		t.Fatalf("barrier did not drain: %d", len(got))
	}
	if got[len(got)-1].task != 0 {
		t.Errorf("drained doc routed to task %d, want 0", got[len(got)-1].task)
	}
}

func TestAssignerDeltaGate(t *testing.T) {
	cfg := testConfig()
	cfg.Delta = 2
	b := newAssignerBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"joiner": 3}})
	c := &fakeCollector{}
	b.Execute(topology.Tuple{Stream: streamTable, Values: topology.Values{
		"msg": newTableMsg(1, intPair2("a", 1)),
	}}, c)
	unseen := document.New(5, []document.Pair{intPair2("z", 7)})
	b.Execute(docTuple(0, unseen), c)
	if n := len(c.byStream(streamUpdate)); n != 0 {
		t.Fatalf("update before δ: %d", n)
	}
	unseen2 := document.New(6, []document.Pair{intPair2("z", 7)})
	b.Execute(docTuple(0, unseen2), c)
	if n := len(c.byStream(streamUpdate)); n != 1 {
		t.Fatalf("updates = %d, want 1 at δ=2", n)
	}
	// Both documents were broadcast meanwhile (uncovered pair).
	if n := len(c.byStream(streamToJoin)); n != 6 {
		t.Errorf("deliveries = %d, want 2 broadcasts x 3 joiners", n)
	}
}

func TestAssignerEmitsDecisionEveryWindow(t *testing.T) {
	cfg := testConfig()
	b := newAssignerBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"joiner": 3}})
	c := &fakeCollector{}
	b.Execute(topology.Tuple{Stream: streamTable, Values: topology.Values{
		"msg": newTableMsg(1, intPair2("a", 1)),
	}}, c)
	for w := 0; w < 3; w++ {
		b.Execute(docTuple(w, document.New(uint64(w+1), []document.Pair{intPair2("a", 1)})), c)
		b.Execute(wendTuple(w), c)
	}
	decisions := c.byStream(streamRepartition)
	if len(decisions) != 3 {
		t.Fatalf("decisions = %d, want one per window", len(decisions))
	}
	for i, e := range decisions {
		msg := e.values["msg"].(decisionMsg)
		if msg.Window != i {
			t.Errorf("decision %d for window %d", i, msg.Window)
		}
	}
}

// TestAssignerConsecutiveRepartitionBarriers is the regression test
// for the pendingRepart bookkeeping: two θ verdicts in consecutive
// windows each schedule their own computation window, and the later
// notice must not swallow the earlier window's still-pending barrier.
// (The old implementation kept a single high-water window: resched(0)
// armed the barrier for window 1, resched(1) overwrote it with window
// 2, and window 2's documents then streamed through on the stale
// table.)
func TestAssignerConsecutiveRepartitionBarriers(t *testing.T) {
	cfg := testConfig()
	b := newAssignerBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"joiner": 3}})
	c := &fakeCollector{}
	b.Execute(topology.Tuple{Stream: streamTable, Values: topology.Values{
		"msg": newTableMsg(1, intPair2("a", 1)),
	}}, c)
	b.Execute(wendTuple(0), c)
	// The merger relays repartition verdicts for windows 0 and 1
	// back-to-back (two θ triggers in consecutive windows).
	b.Execute(topology.Tuple{Stream: streamResched, Values: topology.Values{
		"msg": decisionMsg{Window: 0, Task: -1, Repartition: true},
	}}, c)
	b.Execute(topology.Tuple{Stream: streamResched, Values: topology.Values{
		"msg": decisionMsg{Window: 1, Task: -1, Repartition: true},
	}}, c)
	// Window 1 closes: its computation is pending, the barrier must
	// engage despite the later verdict.
	b.Execute(wendTuple(1), c)
	if !b.waiting {
		t.Fatal("barrier not engaged for window 1's pending recomputation")
	}
	pre := len(c.byStream(streamToJoin))
	b.Execute(docTuple(2, document.New(9, []document.Pair{intPair2("a", 1)})), c)
	if n := len(c.byStream(streamToJoin)); n != pre {
		t.Fatalf("window 2 document routed through the engaged barrier")
	}
	// Window 1's recomputed table releases the first barrier and drains;
	// window 2's pending barrier must survive the release.
	m := newTableMsg(2, intPair2("a", 1))
	m.Window = 1
	m.Recomputed = true
	b.Execute(topology.Tuple{Stream: streamTable, Values: topology.Values{"msg": m}}, c)
	if b.waiting {
		t.Fatal("barrier not released by the awaited table")
	}
	if n := len(c.byStream(streamToJoin)); n != pre+1 {
		t.Fatalf("buffered window 2 document not drained: %d", n)
	}
	b.Execute(wendTuple(2), c)
	if !b.waiting {
		t.Fatal("window 2's barrier swallowed by the earlier release")
	}
	b.Execute(docTuple(3, document.New(10, []document.Pair{intPair2("a", 1)})), c)
	if n := len(c.byStream(streamToJoin)); n != pre+1 {
		t.Fatal("window 3 document routed through the second barrier")
	}
	m2 := newTableMsg(3, intPair2("a", 1))
	m2.Window = 2
	m2.Recomputed = true
	b.Execute(topology.Tuple{Stream: streamTable, Values: topology.Values{"msg": m2}}, c)
	if b.waiting {
		t.Fatal("second barrier not released")
	}
	if len(b.pendingRepart) != 0 {
		t.Errorf("pendingRepart not drained: %v", b.pendingRepart)
	}
}

func TestAssignerStaleTableIgnored(t *testing.T) {
	cfg := testConfig()
	b := newAssignerBolt(cfg, 0)
	b.Prepare(&topology.TaskContext{Parallelism: map[string]int{"joiner": 3}})
	c := &fakeCollector{}
	b.Execute(topology.Tuple{Stream: streamTable, Values: topology.Values{
		"msg": newTableMsg(2, intPair2("a", 1)),
	}}, c)
	// A stale version must not replace the newer table.
	b.Execute(topology.Tuple{Stream: streamTable, Values: topology.Values{
		"msg": newTableMsg(1, intPair2("b", 2)),
	}}, c)
	if b.version != 2 {
		t.Errorf("version = %d, want 2", b.version)
	}
	if b.table.Covers(intPair2("b", 2)) {
		t.Error("stale table adopted")
	}
}
