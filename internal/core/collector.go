package core

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// collectorBolt is a single-instance statistics sink (not part of the
// paper's Fig. 2; the paper gathers the same measurements through
// Storm's metrics): it merges the assigners' per-window routing
// partials into global window statistics, accumulates join counters and
// merger events, and assembles the final Report during Cleanup.
//
// All counters accumulate per window inside windowAgg rather than
// directly on the Report: a window is complete once every assigner
// partial and every joiner partial for it arrived, completed windows
// form a prefix of the stream (the per-link tuple order guarantees
// window w's partials all precede window w+1's from the same task), and
// that prefix is exactly what a checkpoint snapshot captures. Only the
// merger's table-version events are not window-attributable; across a
// recovery they count actual broadcasts, including the recovery
// re-broadcast.
type collectorBolt struct {
	cfg    Config
	report *Report

	windows map[int]*windowAgg

	// Run-wide accumulators fed by merger events; copied into the
	// Report during Cleanup.
	tableVersions int
	repartitions  int

	cp *checkpointer

	// Live instruments (nil-safe no-ops when cfg.Telemetry is off):
	// global totals plus the cluster-wide replication/Gini of the last
	// completed window, computed as soon as every partial for that
	// window has arrived.
	tel struct {
		joinPairs     *telemetry.Counter
		docsJoined    *telemetry.Counter
		tableVersions *telemetry.Counter
		repartitions  *telemetry.Counter
		windowsDone   *telemetry.Counter
		replication   *telemetry.Gauge
		gini          *telemetry.Gauge
	}
}

type windowAgg struct {
	stats         *metrics.WindowStats
	repartitioned bool
	partials      int // assigner partials received
	jdone         int // joiner partials received
	pairs         int // join pairs reported for this window
	docs          int // documents the joiners incorporated
	ckpt          bool
	done          bool
}

func newCollectorBolt(cfg Config, report *Report) *collectorBolt {
	b := &collectorBolt{
		cfg:     cfg,
		report:  report,
		windows: make(map[int]*windowAgg),
		cp:      newCheckpointer(cfg, "collector", 0),
	}
	if reg := cfg.Telemetry; reg != nil {
		b.tel.joinPairs = reg.Counter("collector_join_pairs_total")
		b.tel.docsJoined = reg.Counter("collector_docs_joined_total")
		b.tel.tableVersions = reg.Counter("collector_table_versions_total")
		b.tel.repartitions = reg.Counter("collector_repartitions_total")
		b.tel.windowsDone = reg.Counter("collector_windows_completed_total")
		b.tel.replication = reg.Gauge("partition_global_replication")
		b.tel.gini = reg.Gauge("partition_global_gini")
	}
	return b
}

// Prepare implements topology.Bolt.
func (b *collectorBolt) Prepare(*topology.TaskContext) {
	b.cp.restore(b)
}

// Execute implements topology.Bolt.
func (b *collectorBolt) Execute(t topology.Tuple, _ topology.Collector) {
	switch t.Stream {
	case streamAssignerStats:
		msg := t.Values["msg"].(assignerStatsMsg)
		agg := b.window(msg.Window)
		agg.stats.Documents += msg.Documents
		agg.stats.Deliveries += msg.Deliveries
		for j, n := range msg.PerJoiner {
			if j < len(agg.stats.PerJoiner) {
				agg.stats.PerJoiner[j] += n
			}
		}
		agg.stats.Broadcasts += msg.Broadcasts
		agg.stats.Updates += msg.Updates
		if msg.Repartitioned {
			agg.repartitioned = true
		}
		if msg.Checkpoint {
			agg.ckpt = true
		}
		agg.partials++
		b.maybeComplete(msg.Window, agg)
	case streamJoinerStats:
		msg := t.Values["msg"].(joinerStatsMsg)
		agg := b.window(msg.Window)
		agg.pairs += msg.Pairs
		agg.docs += msg.Docs
		if msg.Checkpoint {
			agg.ckpt = true
		}
		agg.jdone++
		b.tel.joinPairs.Add(int64(msg.Pairs))
		b.tel.docsJoined.Add(int64(msg.Docs))
		b.maybeComplete(msg.Window, agg)
	case streamMergerEvents:
		msg := t.Values["msg"].(mergerEventMsg)
		b.tableVersions++
		b.tel.tableVersions.Inc()
		if msg.Recomputed {
			b.repartitions++
			b.tel.repartitions.Inc()
		}
	}
}

// maybeComplete fires once per window, when the last of its partials
// arrives: it publishes the live routing-quality gauges and — when the
// window carried a checkpoint barrier — snapshots the collector. The
// completed windows form a prefix of the stream, so the snapshot at
// window w holds the full, final statistics of windows 0..w.
func (b *collectorBolt) maybeComplete(w int, agg *windowAgg) {
	if agg.done || agg.partials < b.cfg.Assigners || agg.jdone < b.cfg.M {
		return
	}
	agg.done = true
	b.tel.windowsDone.Inc()
	b.tel.replication.Set(agg.stats.Replication())
	b.tel.gini.Set(agg.stats.LoadBalance())
	if agg.ckpt {
		b.cp.save(w, b)
	}
	if f := b.cfg.onWindowComplete; f != nil {
		f(w, agg.repartitioned)
	}
}

func (b *collectorBolt) window(w int) *windowAgg {
	agg, ok := b.windows[w]
	if !ok {
		agg = &windowAgg{stats: metrics.NewWindowStats(b.cfg.M)}
		b.windows[w] = agg
	}
	return agg
}

// Cleanup assembles the per-window statistics in stream order and
// copies the run-wide accumulators into the Report.
func (b *collectorBolt) Cleanup() {
	ids := make([]int, 0, len(b.windows))
	for w := range b.windows {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	for _, w := range ids {
		agg := b.windows[w]
		agg.stats.Repartitioned = agg.repartitioned
		b.report.Run.Add(agg.stats)
		b.report.JoinPairs += agg.pairs
		b.report.DocsJoined += agg.docs
	}
	b.report.TableVersions = b.tableVersions
	b.report.Repartitions = b.repartitions
	// Publish the run's headline aggregates as gauges so the final
	// snapshot (and any post-run scrape) carries them.
	b.report.Run.PublishTo(b.cfg.Telemetry)
}
