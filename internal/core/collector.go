package core

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// collectorBolt is a single-instance statistics sink (not part of the
// paper's Fig. 2; the paper gathers the same measurements through
// Storm's metrics): it merges the assigners' per-window routing
// partials into global window statistics, accumulates join counters and
// merger events, and assembles the final Report during Cleanup.
type collectorBolt struct {
	cfg    Config
	report *Report

	windows map[int]*windowAgg

	// Live instruments (nil-safe no-ops when cfg.Telemetry is off):
	// global totals plus the cluster-wide replication/Gini of the last
	// completed window, computed as soon as every assigner's partial for
	// that window has arrived.
	tel struct {
		joinPairs     *telemetry.Counter
		docsJoined    *telemetry.Counter
		tableVersions *telemetry.Counter
		repartitions  *telemetry.Counter
		windowsDone   *telemetry.Counter
		replication   *telemetry.Gauge
		gini          *telemetry.Gauge
	}
}

type windowAgg struct {
	stats         *metrics.WindowStats
	repartitioned bool
	partials      int // assigner partials received
}

func newCollectorBolt(cfg Config, report *Report) *collectorBolt {
	b := &collectorBolt{cfg: cfg, report: report, windows: make(map[int]*windowAgg)}
	if reg := cfg.Telemetry; reg != nil {
		b.tel.joinPairs = reg.Counter("collector_join_pairs_total")
		b.tel.docsJoined = reg.Counter("collector_docs_joined_total")
		b.tel.tableVersions = reg.Counter("collector_table_versions_total")
		b.tel.repartitions = reg.Counter("collector_repartitions_total")
		b.tel.windowsDone = reg.Counter("collector_windows_completed_total")
		b.tel.replication = reg.Gauge("partition_global_replication")
		b.tel.gini = reg.Gauge("partition_global_gini")
	}
	return b
}

// Prepare implements topology.Bolt.
func (b *collectorBolt) Prepare(*topology.TaskContext) {}

// Execute implements topology.Bolt.
func (b *collectorBolt) Execute(t topology.Tuple, _ topology.Collector) {
	switch t.Stream {
	case streamAssignerStats:
		msg := t.Values["msg"].(assignerStatsMsg)
		agg := b.window(msg.Window)
		agg.stats.Documents += msg.Documents
		agg.stats.Deliveries += msg.Deliveries
		for j, n := range msg.PerJoiner {
			if j < len(agg.stats.PerJoiner) {
				agg.stats.PerJoiner[j] += n
			}
		}
		agg.stats.Broadcasts += msg.Broadcasts
		agg.stats.Updates += msg.Updates
		if msg.Repartitioned {
			agg.repartitioned = true
		}
		if agg.partials++; agg.partials == b.cfg.Assigners {
			// Window complete across all assigners: publish the global
			// routing quality live, the same numbers the final Report's
			// RunStats will carry.
			b.tel.windowsDone.Inc()
			b.tel.replication.Set(agg.stats.Replication())
			b.tel.gini.Set(agg.stats.LoadBalance())
		}
	case streamJoinerStats:
		msg := t.Values["msg"].(joinerStatsMsg)
		b.report.JoinPairs += msg.Pairs
		b.report.DocsJoined += msg.Docs
		b.tel.joinPairs.Add(int64(msg.Pairs))
		b.tel.docsJoined.Add(int64(msg.Docs))
	case streamMergerEvents:
		msg := t.Values["msg"].(mergerEventMsg)
		b.report.TableVersions++
		b.tel.tableVersions.Inc()
		if msg.Recomputed {
			b.report.Repartitions++
			b.tel.repartitions.Inc()
		}
	}
}

func (b *collectorBolt) window(w int) *windowAgg {
	agg, ok := b.windows[w]
	if !ok {
		agg = &windowAgg{stats: metrics.NewWindowStats(b.cfg.M)}
		b.windows[w] = agg
	}
	return agg
}

// Cleanup assembles the per-window statistics in stream order.
func (b *collectorBolt) Cleanup() {
	ids := make([]int, 0, len(b.windows))
	for w := range b.windows {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	for _, w := range ids {
		agg := b.windows[w]
		agg.stats.Repartitioned = agg.repartitioned
		b.report.Run.Add(agg.stats)
	}
	// Publish the run's headline aggregates as gauges so the final
	// snapshot (and any post-run scrape) carries them.
	b.report.Run.PublishTo(b.cfg.Telemetry)
}
