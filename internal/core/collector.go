package core

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/topology"
)

// collectorBolt is a single-instance statistics sink (not part of the
// paper's Fig. 2; the paper gathers the same measurements through
// Storm's metrics): it merges the assigners' per-window routing
// partials into global window statistics, accumulates join counters and
// merger events, and assembles the final Report during Cleanup.
type collectorBolt struct {
	cfg    Config
	report *Report

	windows map[int]*windowAgg
}

type windowAgg struct {
	stats         *metrics.WindowStats
	repartitioned bool
}

func newCollectorBolt(cfg Config, report *Report) *collectorBolt {
	return &collectorBolt{cfg: cfg, report: report, windows: make(map[int]*windowAgg)}
}

// Prepare implements topology.Bolt.
func (b *collectorBolt) Prepare(*topology.TaskContext) {}

// Execute implements topology.Bolt.
func (b *collectorBolt) Execute(t topology.Tuple, _ topology.Collector) {
	switch t.Stream {
	case streamAssignerStats:
		msg := t.Values["msg"].(assignerStatsMsg)
		agg := b.window(msg.Window)
		agg.stats.Documents += msg.Documents
		agg.stats.Deliveries += msg.Deliveries
		for j, n := range msg.PerJoiner {
			if j < len(agg.stats.PerJoiner) {
				agg.stats.PerJoiner[j] += n
			}
		}
		agg.stats.Broadcasts += msg.Broadcasts
		agg.stats.Updates += msg.Updates
		if msg.Repartitioned {
			agg.repartitioned = true
		}
	case streamJoinerStats:
		msg := t.Values["msg"].(joinerStatsMsg)
		b.report.JoinPairs += msg.Pairs
		b.report.DocsJoined += msg.Docs
	case streamMergerEvents:
		msg := t.Values["msg"].(mergerEventMsg)
		b.report.TableVersions++
		if msg.Recomputed {
			b.report.Repartitions++
		}
	}
}

func (b *collectorBolt) window(w int) *windowAgg {
	agg, ok := b.windows[w]
	if !ok {
		agg = &windowAgg{stats: metrics.NewWindowStats(b.cfg.M)}
		b.windows[w] = agg
	}
	return agg
}

// Cleanup assembles the per-window statistics in stream order.
func (b *collectorBolt) Cleanup() {
	ids := make([]int, 0, len(b.windows))
	for w := range b.windows {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	for _, w := range ids {
		agg := b.windows[w]
		agg.stats.Repartitioned = agg.repartitioned
		b.report.Run.Add(agg.stats)
	}
}
