package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/join"
	"repro/internal/partition"
)

// ExamplePipeline joins the paper's Fig. 1 documents with the FP-tree
// engine through the single-process façade.
func ExamplePipeline() {
	p, err := core.NewPipeline("FPJ")
	if err != nil {
		log.Fatal(err)
	}
	p.ProcessJSON([]byte(`{"User":"A","Severity":"Warning"}`))
	results, _ := p.ProcessJSON([]byte(`{"User":"A","Severity":"Warning","MsgId":2}`))
	for _, r := range results {
		msgID, _ := r.Merged.Lookup("MsgId")
		fmt.Printf("d%d joins d%d, MsgId=%s\n", r.Left, r.Right, msgID)
	}
	docs, pairs := p.Tumble()
	fmt.Printf("%d documents, %d pairs\n", docs, pairs)
	// Output:
	// d1 joins d2, MsgId=2
	// 2 documents, 1 pairs
}

// ExampleRun streams two windows of synthetic server logs through the
// full scale-out topology.
func ExampleRun() {
	report, err := core.Run(core.Config{
		M:           4,
		WindowSize:  200,
		Windows:     2,
		Partitioner: partition.AssociationGroups{},
		Source:      datagen.NewServerLog(1),
		OnResult:    func(join.Result) {}, // receives every joined pair
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windows=%d joins>0=%v\n", len(report.Run.Windows), report.JoinPairs > 0)
	// Output:
	// windows=2 joins>0=true
}
