package core

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/document"
)

// TestWireFormatOptionEquivalence pins the transport knob plumbing: the
// WithWireFormat option and the Config.WireFormat field must be two
// spellings of the same thing, and the wire format must never change
// what the join computes — gob, binary and the local in-process path
// all produce the same report on the same stream.
func TestWireFormatOptionEquivalence(t *testing.T) {
	mkDocs := func() []document.Document {
		gen := datagen.NewServerLog(59)
		var docs []document.Document
		for w := 0; w < 2; w++ {
			docs = append(docs, gen.Window(90)...)
		}
		return docs
	}
	mkCfg := func() Config {
		return Config{M: 3, Creators: 2, Assigners: 2, WindowSize: 90, Windows: 2,
			Source: &replaySource{docs: mkDocs()}}
	}

	local, err := NewRunner(mkCfg()).Run()
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string]*Report{}
	for name, mk := range map[string]func() (*Report, error){
		"option=binary": func() (*Report, error) {
			return NewRunner(mkCfg(), WithWorkers(2), WithWireFormat(cluster.WireBinary)).Run()
		},
		"option=gob": func() (*Report, error) {
			return NewRunner(mkCfg(), WithWorkers(2), WithWireFormat(cluster.WireGob)).Run()
		},
		"field=binary": func() (*Report, error) {
			cfg := mkCfg()
			cfg.WireFormat = cluster.WireBinary
			return NewRunner(cfg, WithWorkers(2)).Run()
		},
		"field=gob": func() (*Report, error) {
			cfg := mkCfg()
			cfg.WireFormat = cluster.WireGob
			return NewRunner(cfg, WithWorkers(2)).Run()
		},
	} {
		rep, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		runs[name] = rep
	}
	for name, rep := range runs {
		if rep.JoinPairs != local.JoinPairs || rep.DocsJoined != local.DocsJoined {
			t.Errorf("%s diverges from local run: pairs %d/%d docs %d/%d",
				name, rep.JoinPairs, local.JoinPairs, rep.DocsJoined, local.DocsJoined)
		}
	}
	if runs["option=gob"].JoinPairs != runs["field=gob"].JoinPairs {
		t.Errorf("WithWireFormat and Config.WireFormat disagree: %d vs %d",
			runs["option=gob"].JoinPairs, runs["field=gob"].JoinPairs)
	}
}

// TestWireFormatValidation: an unknown format must be rejected up
// front with a nameable error, not discovered mid-run.
func TestWireFormatValidation(t *testing.T) {
	cfg := Config{Source: &replaySource{docs: datagen.NewServerLog(1).Window(10)}}
	cfg.WireFormat = "msgpack"
	if _, err := NewRunner(cfg).Run(); err == nil || !strings.Contains(err.Error(), "wire format") {
		t.Fatalf("unknown wire format returned %v, want a wire format error", err)
	}
	if _, err := NewRunner(cfg, WithWorkers(2)).Run(); err == nil || !strings.Contains(err.Error(), "wire format") {
		t.Fatalf("unknown wire format (cluster) returned %v, want a wire format error", err)
	}
}
