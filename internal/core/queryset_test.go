package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/join"
	"repro/internal/state"
	"repro/internal/telemetry"
)

func qdoc(t testing.TB, id uint64, js string) document.Document {
	t.Helper()
	d, err := document.Parse(id, []byte(js))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestQuerySetSharingAndTelemetry: identical window configs share one
// group, visible through the shared-tree gauges; per-query counters
// carry query labels and are dropped with the query.
func TestQuerySetSharingAndTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	qs := NewQuerySet(QuerySetConfig{Telemetry: reg})
	for _, id := range []string{"a", "b"} {
		if err := qs.Register(id, join.QuerySpec{WindowDocs: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := qs.Register("c", join.QuerySpec{WindowDocs: 50}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if g := snap.Gauge("queryset_window_groups"); g != 2 {
		t.Errorf("window groups gauge = %g, want 2", g)
	}
	if g := snap.Gauge("queryset_shared_window_groups"); g != 1 {
		t.Errorf("shared groups gauge = %g, want 1", g)
	}
	if g := snap.Gauge("queryset_queries_active"); g != 3 {
		t.Errorf("active gauge = %g, want 3", g)
	}

	// Two joining docs produce one result for a and b, delivered once
	// each; counters are labelled per query.
	var delivered []string
	qs.Ingest(qdoc(t, 1, `{"x":1,"l":"a"}`), nil)
	qs.Ingest(qdoc(t, 2, `{"x":1,"r":"b"}`), func(id string, r join.Result) {
		delivered = append(delivered, id)
	})
	if len(delivered) != 3 {
		t.Errorf("delivered to %v, want one result each for a, b, c", delivered)
	}
	snap = reg.Snapshot()
	for _, q := range []string{"a", "b", "c"} {
		name := telemetry.Name("query_results_total", "query", q)
		if snap.Counter(name) != 1 {
			t.Errorf("%s = %d, want 1", name, snap.Counter(name))
		}
		name = telemetry.Name("query_docs_matched_total", "query", q)
		if snap.Counter(name) != 1 {
			t.Errorf("%s = %d, want 1", name, snap.Counter(name))
		}
	}
	// The shared group's join series carries the group label.
	if n := snap.SumCounter("join_results_total"); n != 2 {
		t.Errorf("join_results_total sum = %d, want 2 (one per group probe)", n)
	}

	// Deleting a query retires its labelled series; deleting the last
	// query of a group retires the group's join series too.
	qs.Unregister("c")
	snap = reg.Snapshot()
	if _, ok := snap.Counters[telemetry.Name("query_results_total", "query", "c")]; ok {
		t.Error("c's counter series survived unregister")
	}
	found := false
	for name := range snap.Counters {
		if telemetry.BaseName(name) == "join_results_total" {
			found = true
		}
	}
	if !found {
		t.Error("shared group's join series vanished with c (wrong group dropped)")
	}
	if g := reg.Snapshot().Gauge("queryset_window_groups"); g != 1 {
		t.Errorf("window groups after unregister = %g, want 1", g)
	}
}

// TestQuerySetAdmission: the MaxQueries cap rejects with
// ErrTooManyQueries and counts rejections.
func TestQuerySetAdmission(t *testing.T) {
	reg := telemetry.NewRegistry()
	qs := NewQuerySet(QuerySetConfig{MaxQueries: 2, Telemetry: reg})
	if err := qs.Register("a", join.QuerySpec{}); err != nil {
		t.Fatal(err)
	}
	if err := qs.Register("b", join.QuerySpec{}); err != nil {
		t.Fatal(err)
	}
	err := qs.Register("c", join.QuerySpec{})
	if !errors.Is(err, ErrTooManyQueries) {
		t.Fatalf("err = %v, want ErrTooManyQueries", err)
	}
	if n := reg.Snapshot().Counter("queryset_queries_rejected_total"); n != 1 {
		t.Errorf("rejected counter = %d", n)
	}
	// Deleting frees a slot.
	qs.Unregister("a")
	if err := qs.Register("c", join.QuerySpec{}); err != nil {
		t.Fatal(err)
	}
}

// TestQuerySetForcedTumbleGuard: MaxWindowDocs evicts unbounded manual
// windows and surfaces it in telemetry.
func TestQuerySetForcedTumbleGuard(t *testing.T) {
	reg := telemetry.NewRegistry()
	qs := NewQuerySet(QuerySetConfig{MaxWindowDocs: 2, Telemetry: reg})
	qs.Register("q", join.QuerySpec{})
	for i := 1; i <= 5; i++ {
		qs.Ingest(qdoc(t, uint64(i), `{"k":1}`), nil)
	}
	st, _ := qs.Status("q")
	if st.Windows != 2 || st.WindowDocs != 1 {
		t.Errorf("status = %+v, want 2 forced windows and fill 1", st)
	}
	if n := reg.Snapshot().Counter("queryset_forced_tumbles_total"); n != 2 {
		t.Errorf("forced tumbles counter = %d, want 2", n)
	}
}

// TestQuerySetConcurrentLifecycle: register/ingest/unregister under
// concurrency — every surviving query sees its exact result multiset
// (run with -race).
func TestQuerySetConcurrentLifecycle(t *testing.T) {
	qs := NewQuerySet(QuerySetConfig{})
	var mu sync.Mutex
	got := make(map[string]int)
	deliver := func(id string, r join.Result) {
		mu.Lock()
		got[id]++
		mu.Unlock()
	}
	// A stable query that must observe every join result.
	if err := qs.Register("stable", join.QuerySpec{WindowDocs: 1000}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churners register and tear down throwaway queries.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("churn-%d-%d", g, i)
				if err := qs.Register(id, join.QuerySpec{WindowDocs: 1000}); err != nil {
					t.Error(err)
					return
				}
				qs.Unregister(id)
			}
		}(g)
	}
	// One ingester streams documents while the churners run. These
	// pairwise conflict on seq and share no attribute with the join
	// stream below, so they contribute zero results.
	const docs = 300
	for i := 1; i <= docs; i++ {
		qs.IngestJSON([]byte(fmt.Sprintf(`{"seq":%d}`, i)), deliver)
	}
	close(stop)
	wg.Wait()
	// A second stream that joins: all docs {"k":1} only.
	for i := 0; i < 10; i++ {
		qs.IngestJSON([]byte(`{"k":1}`), deliver)
	}
	mu.Lock()
	defer mu.Unlock()
	// The 10 identical docs pairwise join among themselves and with
	// nothing else: C(10,2) = 45 results for stable.
	if got["stable"] != 45 {
		t.Errorf("stable results = %d, want 45", got["stable"])
	}
	// No ghost results: every delivery went to a query that was
	// registered at delivery time; churners may have caught some, but
	// only under their own ids.
	for id, n := range got {
		if id != "stable" && n < 0 {
			t.Errorf("impossible count for %s: %d", id, n)
		}
	}
}

// TestRunnerQueryFanout: a Runner hosts a QuerySet — topology results
// fan out to matching standing queries through their filters.
func TestRunnerQueryFanout(t *testing.T) {
	qs := NewQuerySet(QuerySetConfig{})
	if err := qs.Register("all", join.QuerySpec{WindowDocs: 150}); err != nil {
		t.Fatal(err)
	}
	if err := qs.Register("sev", join.QuerySpec{WindowDocs: 150,
		Filters: []document.Pair{{Attr: "Severity", Val: document.EncodeString("Warning")}}}); err != nil {
		t.Fatal(err)
	}
	if err := qs.Register("off-window", join.QuerySpec{WindowDocs: 99}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := make(map[string]int)
	var direct int
	cfg := Config{M: 4, WindowSize: 150, Windows: 3, Source: datagen.NewServerLog(2),
		OnResult: func(join.Result) { mu.Lock(); direct++; mu.Unlock() }}
	report, err := NewRunner(cfg, WithQueryFanout(qs, func(id string, r join.Result) {
		mu.Lock()
		got[id]++
		mu.Unlock()
	})).Run()
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if report.JoinPairs == 0 {
		t.Fatal("run produced no pairs; fanout test vacuous")
	}
	if direct != report.JoinPairs {
		t.Errorf("OnResult fired %d times, want %d (fanout must not displace it)", direct, report.JoinPairs)
	}
	if got["all"] != report.JoinPairs {
		t.Errorf("all = %d, want every pair (%d)", got["all"], report.JoinPairs)
	}
	if got["sev"] == 0 || got["sev"] >= got["all"] {
		t.Errorf("sev = %d of %d, want non-empty strict subset", got["sev"], got["all"])
	}
	if got["off-window"] != 0 {
		t.Errorf("off-window = %d, want 0 (different window config)", got["off-window"])
	}
}

// TestQuerySetShedsOverBudget drives the degradation ladder to rung 4
// without a spill store: two private manual windows cannot both be
// relieved by the per-ingest forced tumble, so accounted bytes stay
// over 2x budget and Ingest starts refusing with ErrOverloaded.
func TestQuerySetShedsOverBudget(t *testing.T) {
	reg := telemetry.NewRegistry()
	qs := NewQuerySet(QuerySetConfig{Telemetry: reg, MemoryBudget: 1})
	// Manual windows (WindowDocs 0) are private per query: two groups.
	if err := qs.Register("a", join.QuerySpec{}); err != nil {
		t.Fatal(err)
	}
	if err := qs.Register("b", join.QuerySpec{}); err != nil {
		t.Fatal(err)
	}
	var shed, forced bool
	for i := 0; i < 20; i++ {
		err := qs.Ingest(qdoc(t, uint64(i+1), fmt.Sprintf(`{"k%d":1}`, i)), nil)
		if errors.Is(err, ErrOverloaded) {
			shed = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if qs.PressureLevel() >= join.PressureTumble {
			forced = true
		}
	}
	if !shed {
		t.Fatal("governor never shed despite 1-byte budget")
	}
	_ = forced
	snap := reg.Snapshot()
	if snap.Counter("state_shed_total") == 0 {
		t.Error("state_shed_total stayed zero")
	}
	if snap.Counter("state_forced_tumbles_total") == 0 {
		t.Error("rung 3 never fired before shedding")
	}
	if snap.Gauge("state_pressure_level") < float64(join.PressureShed) {
		t.Errorf("pressure gauge = %g, want >= %d", snap.Gauge("state_pressure_level"), int(join.PressureShed))
	}
}

// TestQuerySetSpillAndDrain: with a spill store, a tight budget moves
// window groups to disk and Tumble transparently reloads them — the
// delayed results arrive, none are lost, and spill telemetry counts.
func TestQuerySetSpillAndDrain(t *testing.T) {
	reg := telemetry.NewRegistry()
	qs := NewQuerySet(QuerySetConfig{
		Telemetry:    reg,
		MemoryBudget: 2048,
		SpillStore:   state.NewMemStore(),
	})
	if err := qs.Register("q", join.QuerySpec{}); err != nil {
		t.Fatal(err)
	}
	// Reference: the same stream through an ungoverned set.
	refQS := NewQuerySet(QuerySetConfig{})
	if err := refQS.Register("q", join.QuerySpec{}); err != nil {
		t.Fatal(err)
	}
	const n = 60
	docs := make([]document.Document, n)
	for i := range docs {
		docs[i] = qdoc(t, uint64(i+1), fmt.Sprintf(`{"shared":1,"uniq%d":%d}`, i, i))
	}
	count := func(qsrc *QuerySet) int {
		total := 0
		deliver := func(string, join.Result) { total++ }
		for _, d := range docs {
			err := qsrc.Ingest(d, deliver)
			// The admission-control contract: a shed ingest was NOT
			// applied, so the client drains pressure and retries the
			// same document — no duplicates, no loss.
			for retries := 0; errors.Is(err, ErrOverloaded) && retries < 5; retries++ {
				qsrc.DrainSpilled(deliver)
				err = qsrc.Ingest(d, deliver)
			}
			if err != nil {
				s := reg.Snapshot()
				t.Fatalf("%v (mem=%d level=%v spills=%d fails=%d reloads=%d)", err, qsrc.MemBytes(), qsrc.PressureLevel(),
					s.Counter("state_spill_panes_total"), s.Counter("state_spill_failures_total"), s.Counter("state_spill_reloads_total"))
			}
		}
		qsrc.DrainSpilled(deliver)
		if _, _, err := qsrc.Tumble("q", deliver); err != nil {
			t.Fatal(err)
		}
		return total
	}
	want := count(refQS)
	got := count(qs)
	if want == 0 {
		t.Fatal("reference produced no results; test vacuous")
	}
	if got != want {
		t.Fatalf("governed query set delivered %d results, want %d", got, want)
	}
	snap := reg.Snapshot()
	if snap.Counter("state_spill_panes_total") == 0 {
		t.Error("no group spills despite tight budget")
	}
	if snap.Counter("state_spill_reloads_total") == 0 {
		t.Error("no spilled groups reloaded")
	}
}
