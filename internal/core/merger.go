package core

import (
	"strings"

	"repro/internal/document"
	"repro/internal/expansion"
	"repro/internal/partition"
	"repro/internal/topology"
)

// mergerBolt is the single-instance Merger of Fig. 2: it consolidates
// the creators' local association groups into the global partitions,
// broadcasts partition-table versions to the Assigners, and applies
// δ-gated partition updates (Sec. VI-A).
type mergerBolt struct {
	cfg Config

	rounds      map[int]*computeRound
	version     int
	initial     bool // next recomputation is the initial creation
	lastResched int
	table       *partition.Table
	spec        *expansion.Expansion

	// lastTableWindow/lastTableRecomputed describe the most recent full
	// table broadcast (δ flushes reset lastTableWindow to -1). A
	// recovering merger needs them to re-broadcast its table with the
	// right deployment semantics — see Recover.
	lastTableWindow     int
	lastTableRecomputed bool

	cp       *checkpointer
	restored bool

	// working accumulates δ updates between broadcasts. Broadcasting a
	// fresh table clone for every single update would congest the
	// Merger — the very failure mode Sec. VI-A's δ gate exists to
	// avoid — so updates coalesce and one new version ships per window
	// boundary.
	working *partition.Table
	dirty   bool
}

// computeRound tracks the two-round protocol of one computation window:
// first every creator reports (with an expansion proposal when it is
// computing); after the merger broadcasts the consensus expansion, the
// computing creators answer with their local groups.
type computeRound struct {
	reports    int
	computing  map[int]bool
	proposals  []*expansion.Expansion
	groups     [][]partition.AssocGroup
	specSent   bool
	spec       *expansion.Expansion
	checkpoint bool
}

func newMergerBolt(cfg Config) *mergerBolt {
	return &mergerBolt{
		cfg:             cfg,
		rounds:          make(map[int]*computeRound),
		initial:         true,
		lastResched:     -1,
		lastTableWindow: -1,
		cp:              newCheckpointer(cfg, "merger", 0),
	}
}

// Prepare implements topology.Bolt.
func (b *mergerBolt) Prepare(*topology.TaskContext) {
	b.restored = b.cp.restore(b)
}

// Recover implements topology.Recoverer: a restored merger re-emits
// the control state the checkpoint cut dropped in flight.
//
// The table re-broadcast releases assigners parked at a deployment
// barrier: their snapshots are taken at the window punctuation, before
// the awaited table's separate Execute, so the cut always restores
// them pre-adoption and the original broadcast tuple is lost with the
// crashed attempt. Re-broadcasting under a fresh version is safe for
// assigners that are not waiting — the content is what the merger
// already held (δ-lineage tables only add coverage, and routing
// completeness holds under any mix of δ versions). The Recomputed flag
// is re-asserted only when the cut window itself produced the table,
// i.e. exactly when no assigner can have adopted it before its own
// snapshot.
//
// The resched re-emission covers the symmetric race for the
// repartition notice: an assigner whose snapshot predates the notice
// would otherwise miss its deployment barrier after the restart.
func (b *mergerBolt) Recover(c topology.Collector) {
	if !b.restored {
		return
	}
	if b.table != nil {
		b.version++
		c.EmitTo(streamTable, topology.Values{"msg": tableMsg{
			Version:    b.version,
			Window:     b.cp.restoreWindow,
			Table:      b.table,
			Expansion:  b.spec,
			Recomputed: b.lastTableRecomputed && b.lastTableWindow == b.cp.restoreWindow,
		}})
		c.EmitTo(streamMergerEvents, topology.Values{"msg": mergerEventMsg{Version: b.version}})
	}
	if b.lastResched >= 0 {
		c.EmitTo(streamResched, topology.Values{"msg": decisionMsg{
			Window:      b.lastResched,
			Task:        -1,
			Repartition: true,
		}})
	}
}

// Cleanup implements topology.Bolt.
func (b *mergerBolt) Cleanup() {}

// Execute implements topology.Bolt.
func (b *mergerBolt) Execute(t topology.Tuple, c topology.Collector) {
	switch t.Stream {
	case streamCreatorWindow:
		b.flushUpdates(c)
		msg := t.Values["msg"].(creatorWindowMsg)
		r := b.round(msg.Window)
		r.reports++
		if msg.Checkpoint {
			r.checkpoint = true
		}
		if msg.Computing {
			r.computing[msg.Task] = true
			r.proposals = append(r.proposals, msg.Proposal)
		}
		if r.reports == b.cfg.Creators {
			if len(r.computing) == 0 {
				delete(b.rounds, msg.Window)
				if r.checkpoint {
					b.cp.save(msg.Window, b)
				}
				return
			}
			r.spec = consensusExpansion(r.proposals)
			r.specSent = true
			c.EmitTo(streamExpansion, topology.Values{"msg": expansionMsg{Window: msg.Window, Spec: r.spec}})
		}
	case streamLocalGroups:
		msg := t.Values["msg"].(localGroupsMsg)
		r := b.round(msg.Window)
		if !r.computing[msg.Task] {
			return // late or duplicate reply
		}
		delete(r.computing, msg.Task)
		r.groups = append(r.groups, msg.Groups)
		if r.specSent && len(r.computing) == 0 {
			b.buildTable(msg.Window, r, c)
			delete(b.rounds, msg.Window)
			if r.checkpoint {
				b.cp.save(msg.Window, b)
			}
		}
	case streamUpdate:
		msg := t.Values["msg"].(updateMsg)
		b.applyUpdate(msg.Doc, c)
	case streamRepartition:
		// The creators schedule the recomputation themselves; the
		// merger forwards one positive verdict per window to the
		// assigners so they engage their deployment barriers.
		msg := t.Values["msg"].(decisionMsg)
		if msg.Repartition && msg.Window > b.lastResched {
			b.lastResched = msg.Window
			c.EmitTo(streamResched, topology.Values{"msg": msg})
		}
	}
}

func (b *mergerBolt) round(w int) *computeRound {
	r, ok := b.rounds[w]
	if !ok {
		r = &computeRound{computing: make(map[int]bool)}
		b.rounds[w] = r
	}
	return r
}

// buildTable consolidates the collected groups into m partitions and
// broadcasts the new table version.
func (b *mergerBolt) buildTable(window int, r *computeRound, c topology.Collector) {
	var table *partition.Table
	if _, isAG := b.cfg.Partitioner.(partition.AssociationGroups); isAG {
		consolidated := partition.Consolidate(r.groups)
		table = partition.AssignGroups(consolidated, b.cfg.M)
	} else {
		// Competitors run their whole algorithm on the combined sample
		// reconstructed from the single-document groups.
		var docs []document.Document
		for _, gs := range r.groups {
			for _, g := range gs {
				id := uint64(len(docs) + 1)
				if len(g.Docs) > 0 {
					id = g.Docs[0]
				}
				docs = append(docs, document.New(id, g.Pairs.Sorted()))
			}
		}
		table = b.cfg.Partitioner.Partition(docs, b.cfg.M)
	}
	b.table = table
	b.spec = r.spec
	// A full recomputation supersedes any coalesced updates.
	b.working = nil
	b.dirty = false
	b.version++
	recomputed := !b.initial
	b.lastTableWindow = window
	b.lastTableRecomputed = recomputed
	c.EmitTo(streamTable, topology.Values{"msg": tableMsg{
		Version:    b.version,
		Window:     window,
		Table:      table,
		Expansion:  r.spec,
		Recomputed: recomputed,
	}})
	c.EmitTo(streamMergerEvents, topology.Values{"msg": mergerEventMsg{
		Version:    b.version,
		Recomputed: recomputed,
		Initial:    b.initial,
	}})
	b.initial = false
}

// applyUpdate folds a δ-qualified document into the working copy of the
// partitions; the accumulated updates ship as one version per window
// boundary (flushUpdates).
func (b *mergerBolt) applyUpdate(d document.Document, c topology.Collector) {
	if b.table == nil {
		return
	}
	td, ok := b.spec.Apply(d)
	if !ok {
		// The document cannot form the synthetic attribute; it keeps
		// being broadcast by the assigners, which is already correct.
		return
	}
	if b.working == nil {
		b.working = b.table.Clone()
	}
	b.working.AddDocument(td)
	b.dirty = true
}

// flushUpdates broadcasts the coalesced δ updates, if any.
func (b *mergerBolt) flushUpdates(c topology.Collector) {
	if !b.dirty {
		return
	}
	b.table = b.working
	b.working = nil
	b.dirty = false
	b.version++
	b.lastTableWindow = -1
	b.lastTableRecomputed = false
	c.EmitTo(streamTable, topology.Values{"msg": tableMsg{
		Version:   b.version,
		Window:    -1,
		Table:     b.table,
		Expansion: b.spec,
	}})
	c.EmitTo(streamMergerEvents, topology.Values{"msg": mergerEventMsg{Version: b.version}})
}

// consensusExpansion picks the majority proposal; ties resolve to the
// lexicographically smallest component list for determinism. A nil
// proposal ("no expansion") participates in the vote.
func consensusExpansion(proposals []*expansion.Expansion) *expansion.Expansion {
	counts := make(map[string]int)
	byKey := make(map[string]*expansion.Expansion)
	for _, p := range proposals {
		key := ""
		if p != nil {
			key = strings.Join(p.Components, "\x00")
		}
		counts[key]++
		if _, ok := byKey[key]; !ok {
			byKey[key] = p
		}
	}
	bestKey, bestCount := "", -1
	for key, n := range counts {
		if n > bestCount || (n == bestCount && key < bestKey) {
			bestKey, bestCount = key, n
		}
	}
	return byKey[bestKey]
}
