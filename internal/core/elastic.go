package core

// Elastic scale-out: a Runner configured WithElastic keeps a handle to
// its live cluster attempt so the topology can grow or shrink while it
// runs. Runner.Rescale, the POST /rescale ops endpoint, and a
// WithRescalePolicy verdict all funnel into the same protocol: the
// coordinator parks the spouts at a window frontier, drains the
// pipeline, streams the moving tasks' snapshots to their new homes
// over kind=state data frames, and resumes under a new placement
// epoch — without replaying a single source document.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

// liveCluster is the mutable shared state of one cluster attempt: the
// coordinator handle plus everything a mid-run rescale must be able to
// extend — the telemetry registries merged into the final report, the
// chaos proxies closed when the attempt ends, and the error-collection
// hook for workers spawned after the attempt started.
type liveCluster struct {
	r      *Runner
	cfg    Config
	report *Report
	coord  *cluster.Coordinator

	// rescaleMu serializes rescales end to end (joiner spawn plus
	// coordinator protocol), so two concurrent Rescale calls cannot
	// interleave their joining workers.
	rescaleMu sync.Mutex
	cur       int // live worker count; owned by rescaleMu

	mu      sync.Mutex
	nextID  int // next joiner id; departed ids are never reused
	regs    []*telemetry.Registry
	proxies []*cluster.ChaosProxy
	collect func(done chan error)
}

// rescale grows or shrinks the live cluster to n workers.
func (lc *liveCluster) rescale(n int) error {
	lc.rescaleMu.Lock()
	defer lc.rescaleMu.Unlock()
	if n < 1 {
		return fmt.Errorf("core: Rescale(%d) < 1", n)
	}
	// Grow: spawn the joining workers first — each idles on its
	// handshake until the coordinator welcomes it at the quiesced
	// frontier. A joiner enters the run's error collection only once
	// the rescale succeeds; until then its fate is not the run's fate
	// (a failed rescale closes its link, and the resulting Run error
	// is dropped with it).
	var joined []chan error
	for i := lc.cur; i < n; i++ {
		done, err := lc.spawnJoiner()
		if err != nil {
			return err
		}
		joined = append(joined, done)
	}
	if err := lc.coord.Rescale(n); err != nil {
		return err
	}
	for _, done := range joined {
		lc.collect(done)
	}
	lc.cur = n
	lc.r.curWorkers.Store(int64(n))
	return nil
}

// spawnJoiner builds and starts one joining worker, outfitted exactly
// like the attempt's initial workers (telemetry, wire format, chaos
// proxy, hooks).
func (lc *liveCluster) spawnJoiner() (chan error, error) {
	r := lc.r
	lc.mu.Lock()
	id := lc.nextID
	lc.nextID++
	lc.mu.Unlock()
	wcfg := lc.cfg
	if r.workerReg != nil {
		wcfg.Telemetry = r.workerReg(id)
		if wcfg.Telemetry != nil {
			lc.mu.Lock()
			lc.regs = append(lc.regs, wcfg.Telemetry)
			lc.mu.Unlock()
		}
	}
	w, err := cluster.NewJoiningWorker(id, buildTopology(wcfg, lc.report), lc.coord.Addr())
	if err != nil {
		return nil, err
	}
	if err := r.outfitWorker(w, wcfg, id, lc); err != nil {
		return nil, err
	}
	done := make(chan error, 1)
	go func() { done <- w.Run() }()
	return done, nil
}

// Rescale changes the live cluster run to n workers: new workers join
// with migrated task state, surplus workers drain and retire — all at
// a window frontier, with zero source replay. It blocks until the
// rescale completes or fails; a failure before the cluster was touched
// (bad n, a shrink that would evict a spout) leaves the run unharmed.
// Requires WithElastic, WithWorkers, and an in-flight Run.
func (r *Runner) Rescale(n int) error {
	lc := r.live.Load()
	if lc == nil {
		return fmt.Errorf("core: Rescale: no live elastic cluster run")
	}
	return lc.rescale(n)
}

// PlacementInfo reports the live placement table (component -> task ->
// worker id) and its epoch, assembled from the running workers.
// Requires WithElastic and an in-flight Run.
func (r *Runner) PlacementInfo() (map[string][]int, uint64, error) {
	lc := r.live.Load()
	if lc == nil {
		return nil, 0, fmt.Errorf("core: PlacementInfo: no live elastic cluster run")
	}
	return lc.coord.PlacementInfo()
}

// outfitWorker applies the run options to one cluster worker — initial
// or joining: wire format, telemetry, chaos proxy, heartbeat and the
// caller's worker hook.
func (r *Runner) outfitWorker(w *cluster.Worker, wcfg Config, id int, lc *liveCluster) error {
	w.Telemetry = wcfg.Telemetry
	w.WireFormat = wcfg.WireFormat
	w.FrameBatch = wcfg.FrameBatch
	w.FrameFlushInterval = wcfg.FrameFlushInterval
	w.FrameCompress = wcfg.FrameCompress
	if r.chaos != nil {
		addr, err := w.Listen()
		if err != nil {
			return err
		}
		proxy, err := cluster.NewChaosProxy(addr)
		if err != nil {
			return err
		}
		if r.chaos.Delay > 0 {
			proxy.SetDelay(r.chaos.Delay)
		}
		w.AdvertiseAddr = proxy.Addr()
		lc.mu.Lock()
		lc.proxies = append(lc.proxies, proxy)
		lc.mu.Unlock()
		if r.chaos.OnProxy != nil {
			r.chaos.OnProxy(id, proxy)
		}
	}
	if r.heartbeat > 0 {
		w.HeartbeatInterval = r.heartbeat
	}
	if r.workerHook != nil {
		r.workerHook(id, w)
	}
	return nil
}

// opsHandler wraps the registry's scrape mux with the elastic ops
// routes:
//
//	POST /rescale?n=N     rescale the live cluster to N workers
//	GET  /debug/placement live placement table + epoch as JSON
//
// Both answer 409 while no elastic cluster run is in flight.
func (r *Runner) opsHandler(reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	mux.HandleFunc("POST /rescale", func(w http.ResponseWriter, req *http.Request) {
		n, err := strconv.Atoi(req.FormValue("n"))
		if err != nil || n < 1 {
			http.Error(w, "rescale: want form or query parameter n >= 1", http.StatusBadRequest)
			return
		}
		if err := r.Rescale(n); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintf(w, "rescaled to %d workers\n", n)
	})
	mux.HandleFunc("GET /debug/placement", func(w http.ResponseWriter, req *http.Request) {
		table, epoch, err := r.PlacementInfo()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(struct {
			Epoch uint64           `json:"epoch"`
			Table map[string][]int `json:"table"`
		}{epoch, table})
	})
	return mux
}
