package core

import (
	"fmt"
	"sort"

	"repro/internal/document"
	"repro/internal/expansion"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// assignerBolt is the Assigner of Fig. 2: a dispatcher that forwards
// documents to the Joiner tasks according to the current partition
// table (direct grouping), broadcasts documents with uncovered pairs to
// every Joiner to guarantee join completeness, requests δ-gated
// partition updates from the Merger, and triggers θ repartitioning when
// the routing quality degrades (Sec. VI-A).
type assignerBolt struct {
	cfg  Config
	task int

	table   *partition.Table
	spec    *expansion.Expansion
	version int

	// unseen counts occurrences of uncovered pairs at this task; the
	// document that makes a pair reach δ becomes an update request.
	unseen map[document.Pair]int

	// Per-window routing statistics (this task's share).
	window        int
	documents     int
	deliveries    int
	perJoiner     []int
	broadcasts    int
	updates       int
	repartitioned bool

	// Quality baseline, established on the first completed window
	// after a recomputed table (Sec. VI-A).
	baselineSet  bool
	baselineRepl float64
	baselineGini float64
	awaitingBase bool

	// Deployment barrier. The paper computes partitions upfront and
	// deploys them before the next window is routed; an in-process run
	// streams far faster than the merger round-trip, so after every
	// computation window the assigner buffers documents and window
	// punctuation until the resulting table arrives, preserving the
	// paper's deployment order.
	//
	// pendingRepart is the set of windows whose punctuation must engage
	// the barrier (a repartition was requested at the end of the
	// preceding window). It is a set, not a single high-water mark: two
	// θ verdicts in consecutive windows each schedule their own
	// computation window, and a later verdict must not swallow an
	// earlier window's still-pending barrier.
	waiting       bool
	waitWindow    int
	buffered      []topology.Tuple
	pendingRepart map[int]bool

	// lastDecision is the verdict emitted for the most recently
	// finished window, kept for the recovery re-emission (see Recover).
	lastDecision decisionMsg

	cp         *checkpointer
	numJoiners int

	// Live instruments (nil-safe no-ops when cfg.Telemetry is off):
	// routing counters plus the per-window replication and Gini gauges
	// computed at every window close.
	tel struct {
		documents   *telemetry.Counter
		deliveries  *telemetry.Counter
		broadcasts  *telemetry.Counter
		updates     *telemetry.Counter
		reparts     *telemetry.Counter
		replication *telemetry.Gauge
		gini        *telemetry.Gauge
	}
}

func newAssignerBolt(cfg Config, task int) *assignerBolt {
	b := &assignerBolt{
		cfg:           cfg,
		task:          task,
		unseen:        make(map[document.Pair]int),
		pendingRepart: make(map[int]bool),
		lastDecision:  decisionMsg{Window: -1, Task: task},
		cp:            newCheckpointer(cfg, "assigner", task),
	}
	if reg := cfg.Telemetry; reg != nil {
		id := fmt.Sprint(task)
		b.tel.documents = reg.Counter(telemetry.Name("partition_documents_total", "task", id))
		b.tel.deliveries = reg.Counter(telemetry.Name("partition_deliveries_total", "task", id))
		b.tel.broadcasts = reg.Counter(telemetry.Name("partition_broadcasts_total", "task", id))
		b.tel.updates = reg.Counter(telemetry.Name("partition_update_requests_total", "task", id))
		b.tel.reparts = reg.Counter(telemetry.Name("partition_repartition_triggers_total", "task", id))
		b.tel.replication = reg.Gauge(telemetry.Name("partition_window_replication", "task", id))
		b.tel.gini = reg.Gauge(telemetry.Name("partition_window_gini", "task", id))
	}
	return b
}

// Prepare implements topology.Bolt.
func (b *assignerBolt) Prepare(ctx *topology.TaskContext) {
	b.numJoiners = ctx.NumTasksOf("joiner")
	if b.numJoiners == 0 {
		b.numJoiners = b.cfg.M
	}
	b.perJoiner = make([]int, b.numJoiners)
	b.cp.restore(b)
}

// Recover implements topology.Recoverer: the verdict for the cut
// window was emitted just before the snapshot and may have died in
// flight with the crashed attempt, yet the creators cannot close the
// next window without every assigner's verdict — so a restored
// assigner re-emits it. Creators deduplicate verdicts by task, and the
// merger's resched high-water mark ignores verdicts it already
// relayed, so the re-emission is idempotent.
func (b *assignerBolt) Recover(c topology.Collector) {
	if b.lastDecision.Window < 0 {
		return
	}
	c.EmitTo(streamRepartition, topology.Values{"msg": b.lastDecision})
}

// Cleanup implements topology.Bolt.
func (b *assignerBolt) Cleanup() {}

// Execute implements topology.Bolt.
func (b *assignerBolt) Execute(t topology.Tuple, c topology.Collector) {
	switch t.Stream {
	case streamDocs, streamWindowEnd:
		if b.waiting {
			b.buffered = append(b.buffered, t)
			return
		}
		b.handleStreamTuple(t, c)
	case streamTable:
		b.adoptTable(t.Values["msg"].(tableMsg), c)
	case streamResched:
		// The merger relayed a repartition verdict issued at window w;
		// the creators compute at the end of window w+1, so the
		// barrier engages after that window's punctuation.
		msg := t.Values["msg"].(decisionMsg)
		b.pendingRepart[msg.Window+1] = true
	}
}

func (b *assignerBolt) handleStreamTuple(t topology.Tuple, c topology.Collector) {
	switch t.Stream {
	case streamDocs:
		b.window = t.Values["window"].(int)
		b.route(t.Values["doc"].(document.Document), c)
	case streamWindowEnd:
		w := t.Values["window"].(int)
		b.finishWindow(w, c)
		// Engage the deployment barrier after every window whose
		// sample produces a new table: the first window, and any
		// window with a pending repartition request.
		if b.version == 0 || b.pendingRepart[w] {
			b.waiting = true
			b.waitWindow = w
		}
		// The punctuation carries the checkpoint barrier: this task
		// has now fully incorporated window w, snapshot it.
		if _, ok := topology.CheckpointID(t); ok {
			b.cp.save(w, b)
		}
	}
}

// adoptTable switches to a newer partition-table version and releases
// the deployment barrier when the awaited table arrived.
func (b *assignerBolt) adoptTable(msg tableMsg, c topology.Collector) {
	if msg.Version <= b.version {
		return // stale or duplicate broadcast
	}
	b.version = msg.Version
	b.table = msg.Table
	b.spec = msg.Expansion
	if msg.Recomputed || !b.baselineSet {
		// A full (re)computation resets the quality baseline.
		b.baselineSet = false
		b.awaitingBase = true
	}
	for p := range b.unseen {
		if b.table.Covers(p) {
			delete(b.unseen, p)
		}
	}
	if b.waiting && msg.Window >= b.waitWindow {
		b.waiting = false
		for w := range b.pendingRepart {
			if w <= msg.Window {
				delete(b.pendingRepart, w)
			}
		}
		b.drain(c)
	}
}

// drain replays buffered stream tuples in arrival order; the barrier
// may re-engage mid-drain (another computation window boundary), in
// which case the remainder stays buffered.
func (b *assignerBolt) drain(c topology.Collector) {
	buf := b.buffered
	b.buffered = nil
	for i, t := range buf {
		if b.waiting {
			b.buffered = append(b.buffered, buf[i:]...)
			return
		}
		b.handleStreamTuple(t, c)
	}
}

// route forwards one document to its joiners and handles the dynamics
// around uncovered pairs.
func (b *assignerBolt) route(d document.Document, c topology.Collector) {
	b.documents++
	targets, broadcast := b.targets(d, c)
	for _, j := range targets {
		b.perJoiner[j]++
		// The full target list travels with the document so that, for
		// any pair of documents replicated to several common joiners,
		// only the lowest-indexed common joiner emits the join result —
		// the exact result is produced exactly once without a global
		// de-duplication stage.
		c.EmitDirect(streamToJoin, j, topology.Values{"doc": d, "window": b.window, "targets": targets})
	}
	b.deliveries += len(targets)
	b.tel.documents.Inc()
	b.tel.deliveries.Add(int64(len(targets)))
	if broadcast {
		b.broadcasts++
		b.tel.broadcasts.Inc()
	}
}

// targets computes the joiner task set for a document: the matching
// partitions when every (transformed) pair is covered, all joiners
// otherwise. Uncovered pairs are counted toward the δ update gate; the
// document whose pair reaches δ is sent to the Merger as an update
// request.
func (b *assignerBolt) targets(d document.Document, c topology.Collector) ([]int, bool) {
	if b.cfg.Routing == HashPairsRouting {
		return b.hashTargets(d), false
	}
	if b.table == nil {
		// No partitions yet (start of the stream): conservative
		// broadcast keeps the join complete.
		return b.allJoiners(), true
	}
	td, ok := b.spec.Apply(d)
	if !ok {
		// Missing expansion component: broadcast (Sec. VI-B).
		return b.allJoiners(), true
	}
	if uncovered := b.table.UncoveredPairs(td); len(uncovered) > 0 {
		hitDelta := false
		for _, p := range uncovered {
			b.unseen[p]++
			if b.unseen[p] == b.cfg.Delta {
				hitDelta = true
			}
		}
		if hitDelta {
			b.updates++
			b.tel.updates.Inc()
			c.EmitTo(streamUpdate, topology.Values{"msg": updateMsg{Doc: d}})
		}
		return b.allJoiners(), true
	}
	if targets := b.table.Assign(td); len(targets) > 0 {
		return targets, false
	}
	return b.allJoiners(), true
}

// finishWindow emits this task's routing statistics, evaluates the θ
// trigger, punctuates the joiners and resets per-window state.
func (b *assignerBolt) finishWindow(w int, c topology.Collector) {
	repl := 0.0
	gini := 0.0
	if b.documents > 0 {
		repl = float64(b.deliveries) / float64(b.documents)
		gini, _ = metrics.SafeGini(b.perJoiner)
	}
	b.tel.replication.Set(repl)
	b.tel.gini.Set(gini)
	if b.baselineSet && b.documents > 0 {
		// θ trigger: replication grew by more than θ relative to the
		// baseline, or the load balance worsened by more than θ.
		if metrics.RelChange(b.baselineRepl, repl) > b.cfg.Theta ||
			gini-b.baselineGini > b.cfg.Theta {
			b.repartitioned = true
			b.tel.reparts.Inc()
			// Engage the local barrier directly; the merger's relay
			// covers the peer assigners.
			b.pendingRepart[w+1] = true
		}
	} else if b.awaitingBase && b.documents > 0 {
		b.baselineRepl = repl
		b.baselineGini = gini
		b.baselineSet = true
		b.awaitingBase = false
	}
	// Every window produces an explicit verdict: the creators wait for
	// all of them before deciding whether the next window recomputes.
	b.lastDecision = decisionMsg{Window: w, Task: b.task, Repartition: b.repartitioned}
	c.EmitTo(streamRepartition, topology.Values{"msg": b.lastDecision})

	c.EmitTo(streamAssignerStats, topology.Values{"msg": assignerStatsMsg{
		Window:        w,
		Task:          b.task,
		Documents:     b.documents,
		Deliveries:    b.deliveries,
		PerJoiner:     append([]int(nil), b.perJoiner...),
		Broadcasts:    b.broadcasts,
		Updates:       b.updates,
		Repartitioned: b.repartitioned,
		Checkpoint:    b.cp != nil,
	}})
	// The joiner punctuation relays the window's checkpoint barrier
	// downstream, keeping the joiners' snapshots on the same cut.
	jwend := topology.Values{"window": w, "task": b.task}
	if b.cp != nil {
		topology.WithCheckpoint(jwend, w)
	}
	c.EmitTo(streamJoinerWindow, jwend)

	b.documents = 0
	b.deliveries = 0
	for i := range b.perJoiner {
		b.perJoiner[i] = 0
	}
	b.broadcasts = 0
	b.updates = 0
	b.repartitioned = false
}

// hashTargets implements HashPairsRouting: the joiner set is the set of
// pair hashes. Two joinable documents share a pair and therefore a
// hash target — join completeness holds without any partition table or
// table-version coordination.
func (b *assignerBolt) hashTargets(d document.Document) []int {
	seen := make(map[int]struct{}, 4)
	var out []int
	for _, p := range d.Pairs() {
		h := fnv64(p.Key()) % b.numJoiners
		if _, dup := seen[h]; !dup {
			seen[h] = struct{}{}
			out = append(out, h)
		}
	}
	sort.Ints(out)
	return out
}

// fnv64 is FNV-1a over s, reduced to a non-negative int.
func fnv64(s string) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return int(h % (1 << 31))
}

func (b *assignerBolt) allJoiners() []int {
	out := make([]int, b.numJoiners)
	for i := range out {
		out[i] = i
	}
	return out
}
