package core

import (
	"repro/internal/document"
	"repro/internal/expansion"
	"repro/internal/partition"
)

// Stream names of the topology. Documents and window markers originate
// at the reader; control messages implement the two-round partition
// protocol and the dynamics of Sec. VI-A.
const (
	// streamDocs carries documents (reader -> creators, reader ->
	// assigners; both shuffle-grouped).
	streamDocs = "docs"
	// streamWindowEnd carries window punctuation (reader -> creators
	// and assigners, all-grouped).
	streamWindowEnd = "wend"
	// streamCreatorWindow carries each creator's end-of-window report
	// (creator -> merger, global).
	streamCreatorWindow = "creatorWindow"
	// streamExpansion carries the merger's expansion decision back to
	// the creators (merger -> creators, all).
	streamExpansion = "expansion"
	// streamLocalGroups carries local association groups (creator ->
	// merger, global).
	streamLocalGroups = "localAGs"
	// streamTable carries partition-table broadcasts (merger ->
	// assigners, all).
	streamTable = "table"
	// streamUpdate carries δ-gated partition update requests
	// (assigner -> merger, global).
	streamUpdate = "update"
	// streamRepartition carries θ-triggered repartition requests
	// (assigner -> creators and merger, all).
	streamRepartition = "repartition"
	// streamResched carries the merger's notice that a recomputation
	// is scheduled (merger -> assigners, all), so every assigner
	// engages its deployment barrier for the right window.
	streamResched = "resched"
	// streamToJoin carries routed documents (assigner -> joiners,
	// direct).
	streamToJoin = "tojoin"
	// streamJoinerWindow carries window punctuation to the joiners
	// (assigner -> joiners, all).
	streamJoinerWindow = "jwend"
	// streamAssignerStats carries per-window routing statistics
	// (assigner -> collector, global).
	streamAssignerStats = "astats"
	// streamJoinerStats carries per-window join counters (joiner ->
	// collector, global).
	streamJoinerStats = "jstats"
	// streamMergerEvents carries repartition/table-version events
	// (merger -> collector, global).
	streamMergerEvents = "mevents"
	// streamResults carries join results (joiner -> optional sinks).
	streamResults = "results"
)

// creatorWindowMsg is one creator's end-of-window report. When the
// creator is in a computation round it attaches its expansion proposal
// (possibly nil) derived from its local sample.
type creatorWindowMsg struct {
	Window    int
	Task      int
	Computing bool
	Proposal  *expansion.Expansion
	// Checkpoint propagates the window's checkpoint barrier to the
	// merger, which has no direct window punctuation of its own: the
	// merger snapshots window Window once its round resolves.
	Checkpoint bool
}

// expansionMsg is the merger's consensus expansion decision for a
// computation window.
type expansionMsg struct {
	Window int
	Spec   *expansion.Expansion
}

// localGroupsMsg carries one creator's local association groups for a
// computation window.
type localGroupsMsg struct {
	Window int
	Task   int
	Groups []partition.AssocGroup
}

// tableMsg broadcasts a partition table version to the assigners.
type tableMsg struct {
	Version int
	// Window is the window whose sample produced the table; δ updates
	// carry -1.
	Window    int
	Table     *partition.Table
	Expansion *expansion.Expansion
	// Recomputed marks full recomputations (θ); δ updates keep it
	// false.
	Recomputed bool
}

// updateMsg asks the merger to fold one document's pairs into the
// current partitions (δ reached).
type updateMsg struct {
	Doc document.Document
}

// decisionMsg is one assigner's end-of-window verdict: whether the
// routing quality of window Window degraded beyond θ. Every assigner
// emits one per window; the creators must collect all of them for
// window w-1 before closing window w, because whether window w is a
// computation window depends on them. (Without this synchronisation the
// creators — which process the stream far faster than the assigners —
// would close their windows long before any repartition request could
// arrive.)
type decisionMsg struct {
	Window      int
	Task        int
	Repartition bool
}

// assignerStatsMsg is one assigner's contribution to a window's
// routing statistics.
type assignerStatsMsg struct {
	Window        int
	Task          int
	Documents     int
	Deliveries    int
	PerJoiner     []int
	Broadcasts    int
	Updates       int
	Repartitioned bool
	// Checkpoint propagates the window's checkpoint barrier to the
	// collector, which snapshots a window once every assigner and
	// joiner partial for it has arrived.
	Checkpoint bool
}

// joinerStatsMsg is one joiner's contribution to a window's join
// counters.
type joinerStatsMsg struct {
	Window     int
	Task       int
	Docs       int
	Pairs      int
	Checkpoint bool
}

// mergerEventMsg reports a table broadcast for accounting.
type mergerEventMsg struct {
	Version    int
	Recomputed bool
	Initial    bool
}
