// Package core wires the paper's complete scale-out stream-join system
// (Fig. 2): a JSON reader spout feeds PartitionCreator bolts (shuffle
// grouping) and Assigner bolts (shuffle grouping); PartitionCreators
// send their local association groups to the single Merger (global
// grouping), which consolidates them into m partitions and broadcasts
// the partition table to the Assigners (all grouping); Assigners route
// documents directly to the Joiner tasks (direct grouping) that
// evaluate the FP-tree join per tumbling window.
//
// The package also provides Pipeline, a single-process façade over the
// same algorithms for library users who do not need the topology.
package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/join"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// ExpansionMode controls the attribute-value expansion of Sec. VI-B.
type ExpansionMode int

const (
	// ExpansionAuto applies expansion when the analysis finds a
	// disabling attribute (ubiquitous, fewer than m unique values).
	ExpansionAuto ExpansionMode = iota
	// ExpansionOff never expands.
	ExpansionOff
	// ExpansionForced relaxes the ubiquity requirement to the most
	// frequent low-variety attribute; the paper forces expansion for
	// the DS competitor on the real-world data.
	ExpansionForced
)

// String names the mode.
func (m ExpansionMode) String() string {
	switch m {
	case ExpansionAuto:
		return "auto"
	case ExpansionOff:
		return "off"
	case ExpansionForced:
		return "forced"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Routing selects how the Assigners map documents to Joiners.
type Routing int

const (
	// PartitionRouting is the paper's scheme: documents go to the
	// partitions sharing one of their pairs; documents with uncovered
	// pairs are broadcast.
	PartitionRouting Routing = iota
	// HashPairsRouting is the related-work baseline the paper argues
	// against (Sec. II, "hash partitioning on several keys"): each of
	// a document's pairs is hashed to a machine and the document is
	// sent to every such machine. Join-complete without any partition
	// table, at the price of replication ≈ the number of distinct
	// pair hashes and no adaptivity to skew.
	HashPairsRouting
)

// String names the routing policy.
func (r Routing) String() string {
	switch r {
	case PartitionRouting:
		return "partition"
	case HashPairsRouting:
		return "hash-pairs"
	default:
		return fmt.Sprintf("routing(%d)", int(r))
	}
}

// Config parameterises a system run with the paper's knobs
// (Sec. VII-D).
type Config struct {
	// M is the number of partitions == Joiner tasks (paper: 5..20,
	// default 8).
	M int
	// Creators is the PartitionCreator parallelism (n in Fig. 2).
	Creators int
	// Assigners is the Assigner parallelism (paper default: 6).
	Assigners int
	// WindowSize is the number of documents per tumbling window (the
	// paper's w, a time window, maps to a count window here).
	WindowSize int
	// Windows is the number of windows to stream.
	Windows int
	// Delta is the δ threshold: an unseen attribute-value pair must
	// occur δ times before it may update the partitions (paper: 3).
	Delta int
	// Theta is the θ repartitioning threshold (paper: 0.2 / 0.6).
	Theta float64
	// Partitioner selects AG, SC or DS. Defaults to AG.
	Partitioner partition.Partitioner
	// Expansion selects the attribute-value expansion mode.
	Expansion ExpansionMode
	// Engine names the local join algorithm: FPJ (default), NLJ, HBJ.
	Engine string
	// Routing selects the Assigner policy; defaults to the paper's
	// partition-based routing.
	Routing Routing
	// ProbeParallelism is the probe worker pool size of each Joiner's
	// FPJ engine: incoming documents are micro-batched and their
	// FP-tree probes fan out across this many goroutines (the
	// read-only probe phase; inserts stay serial, so results are
	// byte-for-byte those of the serial path). <= 1 keeps the serial
	// probe loop. Only the FPJ engine parallelises; other engines
	// ignore the setting.
	ProbeParallelism int
	// ProbeBatch is the Joiner micro-batch size feeding the probe
	// pool: documents are buffered up to this count (flushed at every
	// window punctuation at the latest) and probed as one batch.
	// Defaults to 64 when ProbeParallelism > 1, else 1 (no batching).
	ProbeBatch int
	// MaxPending bounds every task mailbox to this many queued tuples
	// (0 = unbounded). A full mailbox blocks its producers, so a spout
	// outpacing the Joiners backpressures to the source instead of
	// growing queues until the process OOMs. Components on the
	// Assigner/Merger/Creator control cycle always stay unbounded —
	// see topology.Builder.MaxPending.
	MaxPending int
	// MemoryBudget bounds each Joiner's accounted window-state bytes
	// (FP-tree arena + window doc store + buffered future-window
	// documents); 0 (the default) leaves memory ungoverned. Over the
	// budget a Joiner spills its buffered future-window documents to
	// the SpillDir store and reloads them at the tumble that makes
	// their window current — correctness-neutral, since buffered
	// documents are not yet part of any join state. The current
	// window's probe structures are never spilled (every arriving
	// document probes them); when those alone exceed the budget the
	// pressure gauge rises and relief comes from MaxPending
	// backpressure parking the spout, the cluster's rung-4 shed path.
	MemoryBudget int64
	// SpillDir roots the filesystem store receiving spilled Joiner
	// buffers (one file per task and window, CRC-enveloped). Empty
	// with a MemoryBudget set means nothing can spill: the governor
	// only meters and the ladder starts at backpressure.
	SpillDir string
	// Source produces the document stream.
	Source datagen.Generator
	// OnResult, when set, receives every join result. It is called
	// from Joiner task goroutines and must be safe for concurrent use.
	OnResult func(join.Result)
	// Telemetry, when set, instruments the whole run — topology
	// executors, join engines, partitioning — into the given registry,
	// and the final Report carries its snapshot. Nil (the default) keeps
	// every instrument a no-op.
	Telemetry *telemetry.Registry
	// WireFormat selects the cluster data-plane encoding:
	// cluster.WireBinary (the default; length-prefixed varint-packed
	// frames with multi-tuple batching) or cluster.WireGob (one gob
	// envelope per tuple copy, kept for A/B measurement). Local runs
	// ignore it.
	WireFormat string
	// FrameBatch caps how many tuples one binary data frame coalesces
	// (default 32). Batching is greedy — whatever is pending travels
	// together — so it adds no latency by itself.
	FrameBatch int
	// FrameFlushInterval > 0 makes a peer sender with a non-full batch
	// wait up to this long for more tuples before flushing the frame,
	// trading bounded latency for wire density. 0 (the default) sends
	// immediately.
	FrameFlushInterval time.Duration
	// FrameCompress DEFLATE-compresses binary data frames when that
	// shrinks them; off by default.
	FrameCompress bool

	// recovery is the checkpoint/restore plumbing threaded in by the
	// Runner (WithRecovery); nil keeps checkpointing off.
	recovery *recoveryPlumb
	// onResultWindowed, when set, supersedes OnResult and additionally
	// receives the window each result belongs to — the Runner's result
	// stager needs the window to keep delivery exactly-once across a
	// recovery restart.
	onResultWindowed func(window int, res join.Result)
	// onWindowComplete, when set, fires from the collector task as each
	// window's last partial arrives, carrying the window index and its
	// θ-repartition verdict — the hook WithRescalePolicy folds into the
	// elastic machinery. It must not block the collector (a rescale
	// needs the collector still executing to reach quiescence), so any
	// heavy reaction goes to its own goroutine.
	onWindowComplete func(window int, repartitioned bool)
}

// withDefaults fills unset fields with the paper's defaults.
func (c Config) withDefaults() (Config, error) {
	if c.M <= 0 {
		c.M = 8
	}
	if c.Creators <= 0 {
		c.Creators = 2
	}
	if c.Assigners <= 0 {
		c.Assigners = 6
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 1000
	}
	if c.Windows <= 0 {
		c.Windows = 6
	}
	if c.Delta <= 0 {
		c.Delta = 3
	}
	if c.Theta <= 0 {
		c.Theta = 0.2
	}
	if c.Partitioner == nil {
		c.Partitioner = partition.AssociationGroups{}
	}
	if c.Engine == "" {
		c.Engine = "FPJ"
	}
	if c.ProbeParallelism <= 0 {
		c.ProbeParallelism = 1
	}
	if c.ProbeBatch <= 0 {
		if c.ProbeParallelism > 1 {
			c.ProbeBatch = 64
		} else {
			c.ProbeBatch = 1
		}
	}
	if c.WireFormat == "" {
		c.WireFormat = cluster.WireBinary
	}
	if !cluster.ValidWireFormat(c.WireFormat) {
		return c, fmt.Errorf("core: unknown wire format %q (want %q or %q)",
			c.WireFormat, cluster.WireBinary, cluster.WireGob)
	}
	if c.FrameBatch <= 0 {
		c.FrameBatch = 32
	}
	if _, err := join.New(c.Engine); err != nil {
		return c, err
	}
	if c.Source == nil {
		return c, fmt.Errorf("core: Config.Source is required")
	}
	return c, nil
}

// Report aggregates the outcome of a run: the paper's routing metrics
// per window, join output counts and topology counters.
type Report struct {
	// Run holds the per-window routing statistics (replication, Gini
	// load balance, maximal processing load, repartition flags).
	Run metrics.RunStats
	// JoinPairs is the total number of joined document pairs produced.
	JoinPairs int
	// DocsJoined is the total number of documents processed by
	// Joiners (equals deliveries).
	DocsJoined int
	// Repartitions counts partition recomputations after the initial
	// creation.
	Repartitions int
	// Restarts counts recovery restarts: how many times a worker died
	// and the run was re-placed and restored from the last checkpoint
	// cut (0 on a run without failover).
	Restarts int
	// TableVersions counts all partition-table broadcasts, including
	// δ-gated updates.
	TableVersions int
	// Topology carries the substrate counters.
	Topology topology.Stats
	// Telemetry is the final snapshot of Config.Telemetry (zero when
	// telemetry was off): the same series a live /metrics scrape shows.
	Telemetry telemetry.Snapshot
}

// String renders the headline numbers.
func (r *Report) String() string {
	return fmt.Sprintf("%s pairs=%d repartitions=%d tables=%d",
		r.Run.Summary(), r.JoinPairs, r.Repartitions, r.TableVersions)
}
