package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/join"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// dedupOnResult returns an OnResult sink that records normalized pairs
// and fails the test on any duplicate delivery — the exactly-once
// contract of the user-visible result stream.
func dedupOnResult(t *testing.T, mu *sync.Mutex, got map[join.Pair]bool) func(join.Result) {
	return func(r join.Result) {
		p := join.Pair{LeftID: r.Left, RightID: r.Right}
		if p.LeftID > p.RightID {
			p.LeftID, p.RightID = p.RightID, p.LeftID
		}
		mu.Lock()
		if got[p] {
			mu.Unlock()
			t.Errorf("pair (%d,%d) delivered more than once", p.LeftID, p.RightID)
			return
		}
		got[p] = true
		mu.Unlock()
	}
}

// TestClusterScheduledChaosParity drives the full Fig. 2 pipeline
// across four workers under a seeded deterministic fault schedule —
// severs, link delays and refused dials at fixed stream offsets, with
// no worker killed — and requires the exact oracle join result with
// zero dropped copies: sustained data-plane faults are absorbed by the
// seq/ack/resend layer, never surfaced to the join.
func TestClusterScheduledChaosParity(t *testing.T) {
	const workers, windows, windowSize, seed = 4, 4, 90, 7
	gen := datagen.NewServerLog(61)
	var docs []document.Document
	for w := 0; w < windows; w++ {
		docs = append(docs, gen.Window(windowSize)...)
	}

	var mu sync.Mutex
	got := make(map[join.Pair]bool)
	cfg := Config{
		M: 4, Creators: 2, Assigners: 3,
		WindowSize: windowSize, Windows: windows,
		MaxPending: 64,
		Source:     &replaySource{docs: docs},
		OnResult:   dedupOnResult(t, &mu, got),
	}

	sched := cluster.RandomSchedule(seed, 5, workers, 800)
	// On top of the seed's draw, one guaranteed all-links sever while
	// the stream is provably mid-flight.
	sched.Events = append(sched.Events, cluster.ChaosEvent{AtCopies: 300, Worker: -1, Action: cluster.ChaosSever})

	reg := telemetry.NewRegistry()
	report, err := NewRunner(cfg,
		WithWorkers(workers),
		WithTelemetry(reg),
		WithChaos(&Chaos{Schedule: &sched}),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Topology.Failures) != 0 {
		t.Fatalf("failures: %v", report.Topology.Failures)
	}
	if report.Topology.SentCopies == 0 || report.Topology.SentCopies != report.Topology.ExecCopies {
		t.Errorf("copies sent = %d, executed = %d", report.Topology.SentCopies, report.Topology.ExecCopies)
	}
	if dropped := report.Telemetry.SumCounter("cluster_copies_dropped_total"); dropped != 0 {
		t.Errorf("cluster_copies_dropped_total = %d, want 0", dropped)
	}
	if redials := report.Telemetry.SumCounter("cluster_peer_redials_total"); redials == 0 {
		t.Error("scheduled sever cut no live link (cluster_peer_redials_total = 0)")
	}
	mu.Lock()
	defer mu.Unlock()
	checkPairSets(t, got, oraclePairs(docs, windowSize))
	t.Logf("seed %d: resent=%d dedup=%d redials=%d",
		seed,
		report.Telemetry.SumCounter("cluster_resent_frames_total"),
		report.Telemetry.SumCounter("cluster_dedup_dropped_total"),
		report.Telemetry.SumCounter("cluster_peer_redials_total"))
}

// TestClusterHungWorkerRecovery wedges (not kills) a worker mid-run:
// its goroutines stop servicing the control plane while every socket
// stays open. Only the heartbeat lease can detect this. The run must
// surface it as WorkerDied, re-place the topology on the survivors,
// restore from the last checkpoint cut and still deliver the exact
// oracle result exactly once.
func TestClusterHungWorkerRecovery(t *testing.T) {
	const (
		seed       = 31
		windowSize = 120
		windows    = 6
	)
	newSource := func() datagen.Generator { return datagen.NewServerLog(seed) }
	gen := newSource()
	var docs []document.Document
	for w := 0; w < windows; w++ {
		docs = append(docs, gen.Window(windowSize)...)
	}
	want := oraclePairs(docs, windowSize)

	var mu sync.Mutex
	got := make(map[join.Pair]bool)
	cfg := Config{
		M: 4, Creators: 2, Assigners: 3,
		WindowSize: windowSize, Windows: windows,
		Theta:    0.9,
		OnResult: dedupOnResult(t, &mu, got),
	}

	store := state.NewMemStore()
	reg := telemetry.NewRegistry()
	required := requiredTasks(cfg)

	// Wedge worker 1 of the first attempt once the first full
	// checkpoint cut exists — real state at risk, nothing crashed.
	var arm sync.Once
	done := make(chan struct{})
	defer close(done)
	hook := func(i int, w *cluster.Worker) {
		if i != 1 {
			return
		}
		arm.Do(func() {
			go func() {
				for {
					select {
					case <-done:
						return
					case <-time.After(200 * time.Microsecond):
					}
					if state.Cut(store, required) >= 1 {
						w.Hang()
						return
					}
				}
			}()
		})
	}

	report, err := NewRunner(cfg,
		WithWorkers(4),
		WithTelemetry(reg),
		WithWorkerHook(hook),
		// The lease must be generous: under the race detector a healthy
		// worker's heartbeat goroutine can stall for hundreds of
		// milliseconds, and a spurious expiry before the first checkpoint
		// cut kills the run instead of recovering it.
		WithHeartbeat(20*time.Millisecond, time.Second),
		WithRecovery(Recovery{Store: store, NewSource: newSource}),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Restarts != 1 {
		t.Fatalf("report.Restarts = %d, want 1 (hung worker not detected)", report.Restarts)
	}
	mu.Lock()
	defer mu.Unlock()
	checkPairSets(t, got, want)
	if report.JoinPairs != len(want) {
		t.Errorf("report.JoinPairs = %d, want %d", report.JoinPairs, len(want))
	}
	snap := report.Telemetry
	if snap.Counter("recovery_restores_total") == 0 {
		t.Error("recovery_restores_total = 0, want > 0")
	}
	if snap.SumCounter("cluster_heartbeats_sent_total") == 0 {
		t.Error("cluster_heartbeats_sent_total = 0, want > 0")
	}
}

// pacedGen slows a generator to one window per `every`, so that faults
// scripted against the checkpoint cut land mid-run instead of racing a
// stream that finishes in single-digit milliseconds.
type pacedGen struct {
	datagen.Generator
	every time.Duration
}

func (g pacedGen) Window(n int) []document.Document {
	time.Sleep(g.every)
	return g.Generator.Window(n)
}

// TestClusterSecondFailureMidRecovery loses a worker, recovers, and
// loses another worker of the recovered placement before the run
// finishes: each failure must independently re-place, re-restore from
// the (advanced) cut and replay, converging on the exact result after
// two restarts.
func TestClusterSecondFailureMidRecovery(t *testing.T) {
	const (
		seed       = 31
		windowSize = 120
		windows    = 6
	)
	// Pace the stream: an unpaced attempt checkpoints all six windows
	// faster than a cut-polling killer can land its kill, so the cut
	// would reach the final window before the first failure and leave
	// the "second failure" nothing to interrupt.
	newSource := func() datagen.Generator {
		return pacedGen{Generator: datagen.NewServerLog(seed), every: 20 * time.Millisecond}
	}
	gen := datagen.NewServerLog(seed)
	var docs []document.Document
	for w := 0; w < windows; w++ {
		docs = append(docs, gen.Window(windowSize)...)
	}
	want := oraclePairs(docs, windowSize)

	var mu sync.Mutex
	got := make(map[join.Pair]bool)
	cfg := Config{
		M: 4, Creators: 2, Assigners: 3,
		WindowSize: windowSize, Windows: windows,
		Theta:    0.9,
		OnResult: dedupOnResult(t, &mu, got),
	}

	store := state.NewMemStore()
	required := requiredTasks(cfg)
	done := make(chan struct{})
	defer close(done)

	// Worker 1 dies in each of the first two attempts. The first kill
	// waits for the first complete checkpoint cut, so recovery has real
	// state to restore; the second fires once the recovered worker has
	// executed tuples of its own — proof it is fully registered and
	// mid-stream, with post-restore state at risk. Neither watches for
	// a specific cut value: window completions bunch up at the end of a
	// run (especially under the race detector), so a cut threshold can
	// be stale by several windows by the time a poll observes it, and a
	// kill keyed to one can miss the attempt entirely or land during
	// the next attempt's coordinator handshake.
	var attempts atomic.Int32
	hook := func(i int, w *cluster.Worker) {
		if i == 0 {
			attempts.Add(1)
		}
		if i != 1 {
			return
		}
		attempt := attempts.Load()
		if attempt > 2 {
			return
		}
		go func() {
			for {
				select {
				case <-done:
					return
				case <-time.After(200 * time.Microsecond):
				}
				if attempt == 1 {
					if state.Cut(store, required) >= 0 {
						w.Kill()
						return
					}
				} else if _, exec := w.Counters(); exec > 0 {
					w.Kill()
					return
				}
			}
		}()
	}

	report, err := NewRunner(cfg,
		WithWorkers(4),
		WithWorkerHook(hook),
		WithRecovery(Recovery{Store: store, NewSource: newSource, MaxRestarts: 3}),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Restarts != 2 {
		t.Fatalf("report.Restarts = %d, want 2 (second failure not exercised)", report.Restarts)
	}
	mu.Lock()
	defer mu.Unlock()
	checkPairSets(t, got, want)
	if report.JoinPairs != len(want) {
		t.Errorf("report.JoinPairs = %d, want %d", report.JoinPairs, len(want))
	}
}

// fsSnapshotPath mirrors FSStore's on-disk layout ('/' -> '@',
// zero-padded window file) so tests can damage snapshots directly.
func fsSnapshotPath(dir, task string, window int) string {
	return filepath.Join(dir, strings.ReplaceAll(task, "/", "@"), fmt.Sprintf("%08d.ckpt", window))
}

// TestVerifiedCutSkipsCorruptSnapshots: a snapshot with a flipped
// payload byte (CRC mismatch) or a truncated file (torn write) must be
// excluded from the recovery cut — verifiedCut falls back to the
// next-lower window where every required task's envelope is intact,
// while the listing-based state.Cut still (wrongly) reports the
// damaged window.
func TestVerifiedCutSkipsCorruptSnapshots(t *testing.T) {
	cfg := Config{M: 2, Creators: 1, Assigners: 1}
	required := requiredTasks(cfg)
	dir := t.TempDir()
	store, err := state.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		for _, task := range required {
			kind := task[:strings.IndexByte(task, '/')]
			var buf bytes.Buffer
			if err := state.WriteEnvelope(&buf, kind, []byte(fmt.Sprintf("state-%s-%d", task, w))); err != nil {
				t.Fatal(err)
			}
			if err := store.Save(task, w, buf.Bytes()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if cut := verifiedCut(store, required); cut != 2 {
		t.Fatalf("verified cut over intact snapshots = %d, want 2", cut)
	}

	// Flip the last payload byte of one task's window-2 snapshot: the
	// envelope parses but the CRC no longer matches.
	victim := fsSnapshotPath(dir, "joiner/1", 2)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xFF // inside the payload, before the 4-byte CRC
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if cut := state.Cut(store, required); cut != 2 {
		t.Fatalf("listing-based cut = %d, want 2 (corruption invisible to listings)", cut)
	}
	if cut := verifiedCut(store, required); cut != 1 {
		t.Errorf("verified cut with corrupt window-2 snapshot = %d, want fallback to 1", cut)
	}

	// Truncate a window-1 snapshot mid-envelope: a torn write. The cut
	// must fall back again.
	victim = fsSnapshotPath(dir, "merger/0", 1)
	data, err = os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if cut := verifiedCut(store, required); cut != 0 {
		t.Errorf("verified cut with torn window-1 snapshot = %d, want fallback to 0", cut)
	}

	// An empty file — the degenerate short write.
	victim = fsSnapshotPath(dir, "creator/0", 0)
	if err := os.WriteFile(victim, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if cut := verifiedCut(store, required); cut != -1 {
		t.Errorf("verified cut with no intact window = %d, want -1", cut)
	}
}

// TestVerifiedCutWrongKind: a snapshot whose envelope is intact but
// carries another component's kind (e.g. a misplaced file) must not
// satisfy the cut either.
func TestVerifiedCutWrongKind(t *testing.T) {
	cfg := Config{M: 1, Creators: 1, Assigners: 1}
	required := requiredTasks(cfg)
	store := state.NewMemStore()
	for _, task := range required {
		kind := task[:strings.IndexByte(task, '/')]
		if task == "joiner/0" {
			kind = "collector" // wrong component's state
		}
		var buf bytes.Buffer
		if err := state.WriteEnvelope(&buf, kind, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := store.Save(task, 0, buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	if cut := verifiedCut(store, required); cut != -1 {
		t.Errorf("verified cut with mis-kinded snapshot = %d, want -1", cut)
	}
}
