package core

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/telemetry"
)

// TestRunnerLocalTelemetry: the unified Runner on the in-process
// runtime must populate Report.Telemetry with numbers consistent with
// the classic Report fields.
func TestRunnerLocalTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{
		M: 4, Creators: 2, Assigners: 2,
		WindowSize: 80, Windows: 3,
		Source: datagen.NewServerLog(7),
	}
	report, err := NewRunner(cfg, WithTelemetry(reg)).Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := report.Telemetry
	if got := snap.SumCounter("join_pairs_total"); got != int64(report.JoinPairs) {
		t.Errorf("join_pairs_total = %d, report.JoinPairs = %d", got, report.JoinPairs)
	}
	if got := snap.Counter("collector_join_pairs_total"); got != int64(report.JoinPairs) {
		t.Errorf("collector_join_pairs_total = %d, report.JoinPairs = %d", got, report.JoinPairs)
	}
	if got := snap.SumCounter("partition_deliveries_total"); got != int64(report.DocsJoined) {
		t.Errorf("partition_deliveries_total = %d, report.DocsJoined = %d", got, report.DocsJoined)
	}
	// Topology executors must report per-component counters matching
	// the substrate's own accounting.
	for comp, n := range report.Topology.Executed {
		series := telemetry.Name("topology_tuples_executed_total", "component", comp)
		if got := snap.Counter(series); got != n {
			t.Errorf("%s = %d, substrate = %d", series, got, n)
		}
	}
	if got := snap.Counter("collector_windows_completed_total"); got != 3 {
		t.Errorf("windows completed = %d, want 3", got)
	}
	if snap.Gauge("partition_global_replication") <= 0 {
		t.Error("global replication gauge not set")
	}
	if snap.SumCounter("join_results_total") < int64(report.JoinPairs) {
		t.Errorf("engine results %d < owned pairs %d",
			snap.SumCounter("join_results_total"), report.JoinPairs)
	}
	if h, ok := snap.Histograms[telemetry.Name("join_probe_seconds", "task", "0")]; !ok || h.Count == 0 {
		t.Error("probe latency histogram empty for joiner task 0")
	}
}

// TestRunnerTelemetryOff: without WithTelemetry the report carries an
// empty snapshot and the run still works (nil-instrument path).
func TestRunnerTelemetryOff(t *testing.T) {
	cfg := Config{
		M: 3, Creators: 1, Assigners: 2,
		WindowSize: 50, Windows: 2,
		Source: datagen.NewServerLog(9),
	}
	report, err := NewRunner(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Telemetry.Counters) != 0 {
		t.Errorf("telemetry off must yield empty snapshot, got %d counters",
			len(report.Telemetry.Counters))
	}
	if report.JoinPairs == 0 {
		t.Error("run produced no pairs")
	}
}

// TestRunnerMetricsEndpoint scrapes the run's /metrics endpoint.
func TestRunnerMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{
		M: 3, Creators: 1, Assigners: 2,
		WindowSize: 50, Windows: 2,
		Source: datagen.NewServerLog(11),
	}
	// The endpoint closes when Run returns; grab the address via the
	// registry-backed server by serving ourselves after the run — the
	// in-run endpoint is exercised with a scrape during a cluster run in
	// the parity test. Here assert the option validates and the run
	// completes with the endpoint attached.
	if _, err := NewRunner(cfg, WithMetricsAddr("127.0.0.1:0")).Run(); err == nil {
		t.Fatal("WithMetricsAddr without telemetry must fail")
	}
	report, err := NewRunner(cfg,
		WithTelemetry(reg), WithMetricsAddr("127.0.0.1:0")).Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.JoinPairs == 0 {
		t.Error("run produced no pairs")
	}
	// Post-run, the same registry still renders for scrapes.
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "# TYPE join_pairs_total counter") {
		t.Errorf("scrape missing join counters:\n%.400s", body)
	}
}

// TestRunnerOptionValidation: cluster-only options must be rejected on
// the in-process path.
func TestRunnerOptionValidation(t *testing.T) {
	cfg := Config{Source: datagen.NewServerLog(1)}
	if _, err := NewRunner(cfg, WithChaos(&Chaos{})).Run(); err == nil {
		t.Error("WithChaos without WithWorkers must fail")
	}
	if _, err := NewRunner(cfg, WithWorkerTelemetry(func(int) *telemetry.Registry { return nil })).Run(); err == nil {
		t.Error("WithWorkerTelemetry without WithWorkers must fail")
	}
}
