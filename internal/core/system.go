package core

// Run streams the configured number of windows through the paper's
// topology on the in-process runtime and returns the collected metrics.
// The call blocks until the stream is exhausted and the topology has
// fully drained. For the TCP-distributed variant see ClusterRun.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	report := &Report{}
	topo, err := buildTopology(cfg, report).Build()
	if err != nil {
		return nil, err
	}
	report.Topology = topo.Run()
	return report, nil
}
