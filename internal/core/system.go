package core

// Run streams the configured number of windows through the paper's
// topology on the in-process runtime and returns the collected metrics.
// The call blocks until the stream is exhausted and the topology has
// fully drained.
//
// Deprecated: Run is a thin wrapper kept for compatibility; use
// NewRunner(cfg).Run(), which also covers cluster execution, telemetry
// and fault injection through options.
func Run(cfg Config) (*Report, error) {
	return NewRunner(cfg).Run()
}
