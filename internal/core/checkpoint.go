package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/join"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// recoveryPlumb is the internal checkpoint/restore plumbing the Runner
// threads into every bolt through Config. Nil means checkpointing is
// off; restoreWindow >= 0 means this attempt restores every stateful
// task from that window's snapshot before processing anything.
type recoveryPlumb struct {
	store         state.Store
	restoreWindow int
}

// requiredTasks lists the task keys whose snapshots define the
// recovery cut: every stateful component of the Fig. 2 pipeline. The
// reader is deliberately absent — it is not restored but re-created
// from a fresh deterministic generator that skips the windows already
// incorporated in the cut.
func requiredTasks(cfg Config) []string {
	var out []string
	for i := 0; i < cfg.Creators; i++ {
		out = append(out, fmt.Sprintf("creator/%d", i))
	}
	out = append(out, "merger/0")
	for i := 0; i < cfg.Assigners; i++ {
		out = append(out, fmt.Sprintf("assigner/%d", i))
	}
	for i := 0; i < cfg.M; i++ {
		out = append(out, fmt.Sprintf("joiner/%d", i))
	}
	out = append(out, "collector/0")
	return out
}

// CheckpointCut reports the recovery cut a worker failure at this
// moment would restore from — the highest window every stateful task
// of cfg's topology has snapshotted into store, with every snapshot's
// envelope verified intact — or -1 when no consistent cut exists yet.
// Exposed for tooling: the sfj-topology failover demo waits for a cut
// before injecting its fault, and operators can use it to inspect a
// checkpoint directory.
func CheckpointCut(cfg Config, store state.Store) int {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return -1
	}
	return verifiedCut(store, requiredTasks(cfg))
}

// verifiedCut is state.Cut hardened against damaged snapshots: rather
// than trusting that a (task, window) listing implies a loadable
// snapshot, it walks the windows common to every required task from
// the highest down and returns the first one where every task's
// snapshot loads and carries an intact envelope (magic, version, kind,
// CRC32). A snapshot torn by a crashed writer or corrupted at rest is
// thereby excluded from the cut — recovery falls back to the
// next-lower fully-verified window instead of panicking mid-restore.
func verifiedCut(store state.Store, required []string) int {
	if len(required) == 0 {
		return -1
	}
	common := make(map[int]int)
	for _, task := range required {
		for _, w := range store.Windows(task) {
			common[w]++
		}
	}
	candidates := make([]int, 0, len(common))
	for w, n := range common {
		if n == len(required) {
			candidates = append(candidates, w)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(candidates)))
	for _, w := range candidates {
		if cutIntact(store, required, w) {
			return w
		}
	}
	return -1
}

// cutIntact verifies every required task's snapshot at the window:
// loadable, and envelope-valid for the task's component kind (the part
// of "component/index" before the slash — the kind checkpointer.save
// wrote it under).
func cutIntact(store state.Store, required []string, window int) bool {
	for _, task := range required {
		kind := task
		if i := strings.IndexByte(task, '/'); i >= 0 {
			kind = task[:i]
		}
		data, err := store.Load(task, window)
		if err != nil {
			return false
		}
		if _, err := state.ReadEnvelope(bytes.NewReader(data), kind); err != nil {
			return false
		}
	}
	return true
}

// clearStore empties every task's snapshots: a run owns its store, and
// snapshots left over from an earlier run would poison the cut (a
// stale high-window snapshot looks like progress this run never made).
func clearStore(s state.Store) error {
	for _, task := range s.Tasks() {
		if err := s.Prune(task, -1); err != nil {
			return fmt.Errorf("core: clearing stale snapshots for %s: %w", task, err)
		}
	}
	return nil
}

// checkpointer handles one task's snapshot/restore traffic with the
// store, instrumented. A nil *checkpointer is a no-op, so bolts can
// call it unconditionally.
type checkpointer struct {
	store         state.Store
	task          string
	kind          string
	restoreWindow int

	snapshots *telemetry.Counter
	bytes     *telemetry.Gauge
	snapSecs  *telemetry.Histogram
	restores  *telemetry.Counter
	restSecs  *telemetry.Histogram
}

// newCheckpointer returns the checkpointer for one task, or nil when
// the run has no recovery plumbing.
func newCheckpointer(cfg Config, component string, task int) *checkpointer {
	rp := cfg.recovery
	if rp == nil {
		return nil
	}
	cp := &checkpointer{
		store:         rp.store,
		task:          fmt.Sprintf("%s/%d", component, task),
		kind:          component,
		restoreWindow: rp.restoreWindow,
	}
	if reg := cfg.Telemetry; reg != nil {
		cp.snapshots = reg.Counter("checkpoint_snapshots_total")
		cp.bytes = reg.Gauge("checkpoint_bytes")
		cp.snapSecs = reg.Histogram("checkpoint_snapshot_seconds")
		cp.restores = reg.Counter("recovery_restores_total")
		cp.restSecs = reg.Histogram("recovery_restore_seconds")
	}
	return cp
}

// save snapshots s as the task's state for the given completed window.
// A failure panics: the runtime's failure recorder surfaces it in the
// report, and the missing window merely caps the recovery cut.
func (cp *checkpointer) save(window int, s state.Snapshotter) {
	if cp == nil {
		return
	}
	start := time.Now()
	data, err := state.Encode(cp.kind, s)
	if err == nil {
		err = cp.store.Save(cp.task, window, data)
	}
	if err != nil {
		panic(fmt.Errorf("checkpoint %s window %d: %w", cp.task, window, err))
	}
	cp.snapshots.Inc()
	cp.bytes.SetInt(len(data))
	cp.snapSecs.Observe(time.Since(start))
}

// restore loads the task's snapshot at the recovery cut into s. It
// reports whether a restore happened (false on a fresh run or when
// checkpointing is off); a snapshot that exists but fails to decode
// panics — restoring garbage silently would corrupt the run.
func (cp *checkpointer) restore(s state.Snapshotter) bool {
	if cp == nil || cp.restoreWindow < 0 {
		return false
	}
	start := time.Now()
	data, err := cp.store.Load(cp.task, cp.restoreWindow)
	if err == nil {
		err = state.Decode(cp.kind, data, s)
	}
	if err != nil {
		panic(fmt.Errorf("restore %s window %d: %w", cp.task, cp.restoreWindow, err))
	}
	cp.restores.Inc()
	cp.restSecs.Observe(time.Since(start))
	return true
}

// resultStager defers OnResult delivery until a run commits. With
// recovery enabled a window's results may be produced, lost with a
// dead worker's attempt, and produced again by the replay; staging
// results per window and discarding everything past the recovery cut
// keeps the user-visible result stream exactly-once across restarts.
type resultStager struct {
	mu       sync.Mutex
	sink     func(join.Result)
	byWindow map[int][]join.Result
}

func newResultStager(sink func(join.Result)) *resultStager {
	return &resultStager{sink: sink, byWindow: make(map[int][]join.Result)}
}

// record stages one result under its window.
func (s *resultStager) record(window int, res join.Result) {
	s.mu.Lock()
	s.byWindow[window] = append(s.byWindow[window], res)
	s.mu.Unlock()
}

// prune drops staged results for windows past the recovery cut — the
// failed attempt's replay will regenerate them.
func (s *resultStager) prune(cut int) {
	s.mu.Lock()
	for w := range s.byWindow {
		if w > cut {
			delete(s.byWindow, w)
		}
	}
	s.mu.Unlock()
}

// flush delivers every staged result to the user's sink in window
// order. Called once, after the run completed successfully.
func (s *resultStager) flush() {
	if s.sink == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	windows := make([]int, 0, len(s.byWindow))
	for w := range s.byWindow {
		windows = append(windows, w)
	}
	sort.Ints(windows)
	for _, w := range windows {
		for _, res := range s.byWindow[w] {
			s.sink(res)
		}
	}
}
