package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/join"
	"repro/internal/telemetry"
)

// pacedSource stretches a replayed stream in time so mid-run control
// actions (rescales) have room to land before the stream runs out.
type pacedSource struct {
	inner *replaySource
	gap   time.Duration
}

func (s *pacedSource) Name() string { return "paced" }
func (s *pacedSource) Window(n int) []document.Document {
	time.Sleep(s.gap)
	return s.inner.Window(n)
}

// TestElasticRescaleChaosParity is the elastic-rescale acceptance
// test: a 3-worker cluster run grows to 5 and shrinks to 2 mid-stream
// — with every data link severed while the shrink migration streams —
// and must still produce exactly the single-node oracle's pair set,
// each pair exactly once, with zero source replay.
func TestElasticRescaleChaosParity(t *testing.T) {
	gen := datagen.NewServerLog(41)
	var docs []document.Document
	const windows, windowSize = 20, 60
	for w := 0; w < windows; w++ {
		docs = append(docs, gen.Window(windowSize)...)
	}

	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	got := make(map[join.Pair]bool)
	dups := 0

	var proxMu sync.Mutex
	proxies := make(map[int]*cluster.ChaosProxy)
	severAll := func() {
		proxMu.Lock()
		defer proxMu.Unlock()
		for _, p := range proxies {
			p.SeverAll()
		}
	}

	windowDone := make(chan int, windows)
	cfg := Config{
		M: 4, Creators: 2, Assigners: 2,
		WindowSize: windowSize, Windows: windows,
		Source: &pacedSource{inner: &replaySource{docs: docs}, gap: 10 * time.Millisecond},
		OnResult: func(res join.Result) {
			p := join.Pair{LeftID: res.Left, RightID: res.Right}
			if p.LeftID > p.RightID {
				p.LeftID, p.RightID = p.RightID, p.LeftID
			}
			mu.Lock()
			if got[p] {
				dups++
			}
			got[p] = true
			mu.Unlock()
		},
	}
	r := NewRunner(cfg,
		WithWorkers(3),
		WithElastic(),
		WithTelemetry(reg),
		WithChaos(&Chaos{OnProxy: func(id int, p *cluster.ChaosProxy) {
			proxMu.Lock()
			proxies[id] = p
			proxMu.Unlock()
		}}),
		// The policy here only reports window completions to the driver;
		// the driver issues explicit rescales so it can assert on their
		// outcomes.
		WithRescalePolicy(func(w int, _ bool) int {
			select {
			case windowDone <- w:
			default:
			}
			return 0
		}),
	)

	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		<-windowDone // at least one full window flowed on 3 workers
		if err := r.Rescale(5); err != nil {
			t.Errorf("rescale 3 -> 5: %v", err)
			return
		}
		// Shrink while an adversary severs every data link: migration
		// chunks ride the resend buffers, so the severed links must
		// replay them on the redialled connections.
		shrinkDone := make(chan error, 1)
		go func() { shrinkDone <- r.Rescale(2) }()
		severAll()
		time.Sleep(5 * time.Millisecond)
		severAll()
		if err := <-shrinkDone; err != nil {
			t.Errorf("rescale 5 -> 2: %v", err)
			return
		}
		table, epoch, err := r.PlacementInfo()
		if err != nil {
			t.Errorf("placement info: %v", err)
			return
		}
		if epoch != 2 {
			t.Errorf("epoch after two rescales = %d, want 2", epoch)
		}
		hosts := make(map[int]bool)
		for _, assign := range table {
			for _, w := range assign {
				hosts[w] = true
			}
		}
		if len(hosts) != 2 {
			t.Errorf("tasks hosted on %d workers after shrink, want 2 (table %v)", len(hosts), table)
		}
	}()

	report, err := r.Run()
	<-driverDone
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Topology.Failures) > 0 {
		t.Fatalf("topology failures: %v", report.Topology.Failures)
	}

	want := oraclePairs(docs, windowSize)
	mu.Lock()
	defer mu.Unlock()
	checkPairSets(t, got, want)
	if dups != 0 {
		t.Errorf("%d join pairs delivered more than once", dups)
	}
	if report.JoinPairs != len(want) {
		t.Errorf("report.JoinPairs = %d, want %d", report.JoinPairs, len(want))
	}

	// The whole point: elastic rescale never re-reads the source.
	if n, ok := report.Telemetry.Counters["source_replays_total"]; !ok {
		t.Error("source_replays_total not registered")
	} else if n != 0 {
		t.Errorf("source_replays_total = %d, want 0", n)
	}
	var migrations, migBytes int64
	for name, v := range report.Telemetry.Counters {
		if strings.HasPrefix(name, "cluster_migrations_total") {
			migrations += v
		}
		if strings.HasPrefix(name, "cluster_migration_bytes_total") {
			migBytes += v
		}
	}
	if migrations == 0 {
		t.Error("no task migrations recorded across two rescales")
	}
	if migBytes == 0 {
		t.Error("no migration bytes recorded")
	}
	if n := report.Telemetry.Counters["cluster_rescales_total"]; n != 2 {
		t.Errorf("cluster_rescales_total = %d, want 2", n)
	}
	if e := report.Telemetry.Gauges["cluster_epoch"]; e != 2 {
		t.Errorf("cluster_epoch gauge = %g, want 2", e)
	}
}

// TestRescalePolicyAutoGrow: the θ-fold path — a policy verdict alone
// (no explicit Rescale call) grows the cluster.
func TestRescalePolicyAutoGrow(t *testing.T) {
	gen := datagen.NewServerLog(7)
	var docs []document.Document
	const windows, windowSize = 16, 50
	for w := 0; w < windows; w++ {
		docs = append(docs, gen.Window(windowSize)...)
	}
	reg := telemetry.NewRegistry()
	var fired sync.Once
	cfg := Config{
		M: 4, Creators: 2, Assigners: 2,
		WindowSize: windowSize, Windows: windows,
		Source: &pacedSource{inner: &replaySource{docs: docs}, gap: 8 * time.Millisecond},
	}
	r := NewRunner(cfg,
		WithWorkers(2),
		WithElastic(),
		WithTelemetry(reg),
		WithRescalePolicy(func(w int, _ bool) int {
			grow := 0
			fired.Do(func() { grow = 3 })
			return grow
		}),
	)
	report, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Topology.Failures) > 0 {
		t.Fatalf("topology failures: %v", report.Topology.Failures)
	}
	want := oraclePairs(docs, windowSize)
	if report.JoinPairs != len(want) {
		t.Errorf("report.JoinPairs = %d, want %d", report.JoinPairs, len(want))
	}
	// The policy fires asynchronously; with the paced stream the grow
	// lands well before the run ends, recorded by the rescale counter.
	if n := report.Telemetry.Counters["cluster_rescales_total"]; n != 1 {
		t.Errorf("cluster_rescales_total = %d, want 1", n)
	}
}

// TestRescaleValidation: option combinations that cannot work fail
// loudly, and Rescale without a live run is a plain error.
func TestRescaleValidation(t *testing.T) {
	src := func() Config { return Config{Source: &replaySource{}} }
	if _, err := NewRunner(src(), WithElastic()).Run(); err == nil {
		t.Error("WithElastic without WithWorkers must fail")
	}
	if _, err := NewRunner(src(), WithWorkers(2),
		WithRescalePolicy(func(int, bool) int { return 0 })).Run(); err == nil {
		t.Error("WithRescalePolicy without WithElastic must fail")
	}
	r := NewRunner(src(), WithWorkers(2), WithElastic())
	if err := r.Rescale(3); err == nil {
		t.Error("Rescale before Run must fail")
	}
	if _, _, err := r.PlacementInfo(); err == nil {
		t.Error("PlacementInfo before Run must fail")
	}
}
