package core

import (
	"fmt"
	"sync"

	"repro/internal/document"
	"repro/internal/join"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// QuerySet is the concurrency-safe multi-tenant layer over
// join.Multi: a registry of standing queries evaluated against one
// ingested document stream, with window state shared across queries
// whose configurations align. It is the serving-side counterpart of
// Pipeline — where Pipeline hosts exactly one join, a QuerySet hosts
// many, with admission control and per-query telemetry — and it is
// built so a Runner can host one (WithQueryFanout) to front a
// scale-out cluster run.
//
// All methods are safe for concurrent use. Deliver callbacks run while
// the set's lock is held, so they must be quick and must not call back
// into the QuerySet.
type QuerySet struct {
	cfg QuerySetConfig

	mu      sync.Mutex
	multi   *join.Multi
	nextDoc uint64
	scratch map[string]int // per-ingest results per query, reused

	tel struct {
		groups       *telemetry.Gauge
		sharedGroups *telemetry.Gauge
		active       *telemetry.Gauge
		forced       *telemetry.Counter
		registered   *telemetry.Counter
		unregistered *telemetry.Counter
		rejected     *telemetry.Counter
	}
	// perQuery holds each query's labelled instruments plus the series
	// names to Drop when the query goes; groupSeries the same for
	// per-group join instruments.
	perQuery    map[string]*queryTel
	groupSeries map[string][]string
}

// queryTel is the per-query labelled instrument set.
type queryTel struct {
	docsMatched *telemetry.Counter
	results     *telemetry.Counter
	series      []string
}

// QuerySetConfig parameterises a QuerySet.
type QuerySetConfig struct {
	// MaxQueries caps the number of concurrently registered queries
	// (admission control); Register returns ErrTooManyQueries beyond
	// it. <= 0 defaults to 1024.
	MaxQueries int
	// MaxWindowDocs > 0 force-tumbles any window reaching that many
	// documents — the guard against a manual window nobody tumbles.
	// 0 leaves windows unbounded.
	MaxWindowDocs int
	// Telemetry, when set, receives the registry gauges
	// (queryset_window_groups, queryset_shared_window_groups,
	// queryset_queries_active), admission counters, per-query labelled
	// counters (query_docs_matched_total{query=...},
	// query_results_total{query=...}) and per-group join instruments
	// labelled by window group (join_results_total{window=...}, ...).
	Telemetry *telemetry.Registry
	// MemoryBudget > 0 bounds the accounted bytes of all window state:
	// past it the degradation ladder fires — spill (with SpillStore),
	// compressed spill, forced tumble of the largest group, and
	// finally admission shedding (Ingest returns ErrOverloaded).
	// 0 leaves memory ungoverned.
	MemoryBudget int64
	// SpillStore receives spilled window groups (rungs 1-2 of the
	// ladder). Nil with a budget set starts the ladder at forced
	// tumbling.
	SpillStore state.Store
}

// ErrTooManyQueries is returned by Register when the MaxQueries
// admission cap is reached.
var ErrTooManyQueries = fmt.Errorf("core: query admission cap reached")

// ErrOverloaded is returned by Ingest/IngestJSON while the memory
// governor is at the shed rung: accounted window state is ≥ 2× the
// budget and every cheaper degradation has been tried. Callers should
// back off and retry (sfj-serve maps it to 429).
var ErrOverloaded = fmt.Errorf("core: window state over memory budget, shedding ingest")

// NewQuerySet creates an empty query set.
func NewQuerySet(cfg QuerySetConfig) *QuerySet {
	if cfg.MaxQueries <= 0 {
		cfg.MaxQueries = 1024
	}
	qs := &QuerySet{
		cfg:         cfg,
		multi:       join.NewMulti(),
		nextDoc:     1,
		scratch:     make(map[string]int),
		perQuery:    make(map[string]*queryTel),
		groupSeries: make(map[string][]string),
	}
	if reg := cfg.Telemetry; reg != nil {
		qs.tel.groups = reg.Gauge("queryset_window_groups")
		qs.tel.sharedGroups = reg.Gauge("queryset_shared_window_groups")
		qs.tel.active = reg.Gauge("queryset_queries_active")
		qs.tel.forced = reg.Counter("queryset_forced_tumbles_total")
		qs.tel.registered = reg.Counter("queryset_queries_registered_total")
		qs.tel.unregistered = reg.Counter("queryset_queries_unregistered_total")
		qs.tel.rejected = reg.Counter("queryset_queries_rejected_total")
		qs.multi.InstrumentWith(func(key join.GroupKey) join.Instruments {
			label := key.String()
			names := []string{
				telemetry.Name("join_probe_seconds", "window", label),
				telemetry.Name("join_results_total", "window", label),
				telemetry.Name("join_duplicates_total", "window", label),
				telemetry.Name("join_window_docs", "window", label),
				telemetry.Name("join_fptree_nodes", "window", label),
			}
			qs.groupSeries[label] = names
			return join.Instruments{
				ProbeSeconds: reg.Histogram(names[0]),
				Results:      reg.Counter(names[1]),
				Duplicates:   reg.Counter(names[2]),
				WindowDocs:   reg.Gauge(names[3]),
				TreeNodes:    reg.Gauge(names[4]),
			}
		})
	}
	if cfg.MemoryBudget > 0 {
		var ins join.GovernorInstruments
		if reg := cfg.Telemetry; reg != nil {
			ins = join.GovernorInstruments{
				SpillPanes:    reg.Counter("state_spill_panes_total"),
				SpillBytes:    reg.Counter("state_spill_bytes_total"),
				Reloads:       reg.Counter("state_spill_reloads_total"),
				Failures:      reg.Counter("state_spill_failures_total"),
				ForcedTumbles: reg.Counter("state_forced_tumbles_total"),
				Shed:          reg.Counter("state_shed_total"),
				Pressure:      reg.Gauge("state_pressure_level"),
				Accounted:     reg.Gauge("state_accounted_bytes"),
			}
		}
		qs.multi.SetGovernor(join.NewGovernor(join.GovernorConfig{
			Budget: cfg.MemoryBudget,
			Store:  cfg.SpillStore,
			Task:   "queryset",
			Ins:    ins,
		}))
	}
	return qs
}

// Register adds a standing query under the given id, subject to the
// admission cap. The query shares window state with every other query
// whose (engine, window) configuration matches.
func (qs *QuerySet) Register(id string, spec join.QuerySpec) error {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if qs.multi.Len() >= qs.cfg.MaxQueries {
		qs.tel.rejected.Inc()
		return fmt.Errorf("%w (max %d)", ErrTooManyQueries, qs.cfg.MaxQueries)
	}
	if err := qs.multi.Register(id, spec); err != nil {
		qs.tel.rejected.Inc()
		return err
	}
	if reg := qs.cfg.Telemetry; reg != nil {
		names := []string{
			telemetry.Name("query_docs_matched_total", "query", id),
			telemetry.Name("query_results_total", "query", id),
		}
		qs.perQuery[id] = &queryTel{
			docsMatched: reg.Counter(names[0]),
			results:     reg.Counter(names[1]),
			series:      names,
		}
	}
	qs.tel.registered.Inc()
	qs.refreshGaugesLocked()
	return nil
}

// Unregister removes a query; once it returns, no deliver callback
// will be invoked for the id again. Freed groups take their labelled
// join series with them; the query's own labelled counters are dropped
// too.
func (qs *QuerySet) Unregister(id string) bool {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if !qs.multi.Unregister(id) {
		return false
	}
	if qt := qs.perQuery[id]; qt != nil {
		qs.cfg.Telemetry.Drop(qt.series...)
		delete(qs.perQuery, id)
	}
	qs.dropDeadGroupSeriesLocked()
	qs.tel.unregistered.Inc()
	qs.refreshGaugesLocked()
	return true
}

// dropDeadGroupSeriesLocked retires the labelled join series of groups
// that no longer exist.
func (qs *QuerySet) dropDeadGroupSeriesLocked() {
	if qs.cfg.Telemetry == nil {
		return
	}
	live := make(map[string]bool)
	for _, k := range qs.multi.GroupKeys() {
		live[k.String()] = true
	}
	for label, names := range qs.groupSeries {
		if !live[label] {
			qs.cfg.Telemetry.Drop(names...)
			delete(qs.groupSeries, label)
		}
	}
}

// refreshGaugesLocked publishes the registry-shape gauges.
func (qs *QuerySet) refreshGaugesLocked() {
	total, shared := qs.multi.Groups()
	qs.tel.groups.SetInt(total)
	qs.tel.sharedGroups.SetInt(shared)
	qs.tel.active.SetInt(qs.multi.Len())
}

// Ingest feeds one document to every query's window state: parsed
// documents are probed once per distinct window configuration and the
// results fan out to the matching queries through deliver, which runs
// under the set's lock (keep it quick, never re-enter the QuerySet).
// It returns ErrOverloaded while the memory governor is shedding.
func (qs *QuerySet) Ingest(d document.Document, deliver func(query string, r join.Result)) error {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.ingestLocked(d, deliver)
}

// IngestJSON parses one JSON document, assigns it the next document id
// and ingests it. It returns ErrOverloaded while the memory governor
// is shedding.
func (qs *QuerySet) IngestJSON(data []byte, deliver func(query string, r join.Result)) error {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	d, err := document.Parse(qs.nextDoc, data)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	qs.nextDoc++
	return qs.ingestLocked(d, deliver)
}

func (qs *QuerySet) ingestLocked(d document.Document, deliver func(string, join.Result)) error {
	if gov := qs.multi.Governor(); gov.Level() >= join.PressureShed {
		// Rung 4: refuse at admission. The document is not parsed into
		// any window, so a retried send after back-off is not a
		// duplicate.
		gov.ShedOne()
		return ErrOverloaded
	}
	clear(qs.scratch)
	forced := qs.multi.Ingest(d, qs.cfg.MaxWindowDocs, func(id string, r join.Result) {
		qs.scratch[id]++
		if deliver != nil {
			deliver(id, r)
		}
	})
	if forced > 0 {
		qs.tel.forced.Add(int64(forced))
	}
	for id, n := range qs.scratch {
		if qt := qs.perQuery[id]; qt != nil {
			qt.docsMatched.Inc()
			qt.results.Add(int64(n))
		}
	}
	return nil
}

// Demux fans one externally joined result (a cluster run's output) out
// to the queries of the shared group matching the external engine and
// window size. Filter predicates apply; θ does not (the inputs are
// gone — the external join enforced the paper's natural-join
// semantics already).
func (qs *QuerySet) Demux(engine string, windowDocs int, r join.Result, deliver func(query string, res join.Result)) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	qs.multi.Demux(engine, windowDocs, r, func(id string, res join.Result) {
		if qt := qs.perQuery[id]; qt != nil {
			qt.results.Inc()
		}
		if deliver != nil {
			deliver(id, res)
		}
	})
}

// Tumble closes the window of the group hosting the query — every
// query sharing that group observes the eviction. If the group was
// spilled, it reloads and replays its backlog first; those delayed
// results emit through deliver (nil discards them).
func (qs *QuerySet) Tumble(id string, deliver func(query string, r join.Result)) (docs, pairs int, err error) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	docs, pairs, ok := qs.multi.Tumble(id, qs.cfg.MaxWindowDocs, func(qid string, r join.Result) {
		if qt := qs.perQuery[qid]; qt != nil {
			qt.results.Inc()
		}
		if deliver != nil {
			deliver(qid, r)
		}
	})
	if !ok {
		return 0, 0, fmt.Errorf("core: unknown query %q", id)
	}
	return docs, pairs, nil
}

// DrainSpilled reloads every spilled window group and replays its
// backlog, delivering the delayed results — the final flush at
// shutdown so backlogged documents' results are not lost.
func (qs *QuerySet) DrainSpilled(deliver func(query string, r join.Result)) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	forced := qs.multi.DrainSpilled(qs.cfg.MaxWindowDocs, func(qid string, r join.Result) {
		if qt := qs.perQuery[qid]; qt != nil {
			qt.results.Inc()
		}
		if deliver != nil {
			deliver(qid, r)
		}
	})
	if forced > 0 {
		qs.tel.forced.Add(int64(forced))
	}
}

// MemBytes reports the governor's accounted window-state bytes (0 when
// memory is ungoverned).
func (qs *QuerySet) MemBytes() int64 {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.multi.MemBytes()
}

// PressureLevel reports the memory governor's current ladder rung.
func (qs *QuerySet) PressureLevel() join.PressureLevel {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.multi.Governor().Level()
}

// Status reports one query's observable state.
func (qs *QuerySet) Status(id string) (join.QueryStatus, bool) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.multi.Status(id)
}

// Queries lists every query's status, sorted by id.
func (qs *QuerySet) Queries() []join.QueryStatus {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.multi.All()
}

// Len reports the number of registered queries.
func (qs *QuerySet) Len() int {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.multi.Len()
}

// Groups reports the live window-state count and how many states are
// shared by more than one query.
func (qs *QuerySet) Groups() (total, shared int) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.multi.Groups()
}

// WithQueryFanout hosts the query set on a Runner: every join result
// the topology produces additionally fans out to the queries of the
// set's group matching the run's engine and window size, demuxed
// through their filter predicates and delivered via deliver. This is
// the bridge that lets the standing-query service front a scale-out
// cluster run instead of its in-process window state; Config.OnResult
// (when also set) keeps firing as before.
func WithQueryFanout(qs *QuerySet, deliver func(query string, res join.Result)) Option {
	return func(r *Runner) {
		prev := r.cfg.OnResult
		r.cfg.OnResult = func(res join.Result) {
			if prev != nil {
				prev(res)
			}
			// Mirror withDefaults' resolution: the closure runs after
			// defaults were applied to a copy of the config.
			engine := r.cfg.Engine
			if engine == "" {
				engine = "FPJ"
			}
			windowDocs := r.cfg.WindowSize
			if windowDocs <= 0 {
				windowDocs = 1000
			}
			qs.Demux(engine, windowDocs, res, deliver)
		}
	}
}
