package core
