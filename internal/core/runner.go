package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

// Runner is the unified entry point for executing the system: one API
// covers the in-process runtime and the TCP cluster runtime, configured
// through functional options.
//
//	report, err := core.NewRunner(cfg).Run()                          // in-process
//	report, err := core.NewRunner(cfg, core.WithWorkers(4)).Run()     // 4 TCP workers
//	report, err := core.NewRunner(cfg,
//		core.WithWorkers(4),
//		core.WithTelemetry(reg),
//		core.WithChaos(&core.Chaos{Delay: time.Millisecond}),
//	).Run()
//
// The legacy Run and ClusterRun helpers are thin wrappers over Runner.
type Runner struct {
	cfg         Config
	workers     int
	metricsAddr string
	chaos       *Chaos
	workerReg   func(worker int) *telemetry.Registry
	workerHook  func(worker int, w *cluster.Worker)
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers runs the topology across n TCP-connected in-process
// workers instead of the single-process runtime. n must be >= 1.
func WithWorkers(n int) Option {
	return func(r *Runner) { r.workers = n }
}

// WithTelemetry instruments the run into reg — topology executors,
// cluster transport, join engines and partitioning — and attaches its
// final snapshot to Report.Telemetry. Equivalent to setting
// Config.Telemetry.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(r *Runner) { r.cfg.Telemetry = reg }
}

// WithMetricsAddr serves the run's telemetry registry on addr for the
// duration of the run (Prometheus text at /metrics, JSON at
// /debug/stats). Requires WithTelemetry (or Config.Telemetry).
func WithMetricsAddr(addr string) Option {
	return func(r *Runner) { r.metricsAddr = addr }
}

// WithChaos interposes a fault-injection proxy on every worker's
// data-plane listener. Requires WithWorkers.
func WithChaos(c *Chaos) Option {
	return func(r *Runner) { r.chaos = c }
}

// WithWorkerTelemetry gives every cluster worker its own registry,
// overriding WithTelemetry for the components hosted on that worker and
// for its transport series — the multi-process deployment shape, where
// each worker scrapes separately. The per-worker snapshots are merged
// into Report.Telemetry at the end of the run.
func WithWorkerTelemetry(f func(worker int) *telemetry.Registry) Option {
	return func(r *Runner) { r.workerReg = f }
}

// WithWorkerHook exposes each cluster worker to the caller right before
// it starts — for setting MetricsAddr, retry tuning, or capturing the
// worker for mid-run inspection in tests.
func WithWorkerHook(f func(worker int, w *cluster.Worker)) Option {
	return func(r *Runner) { r.workerHook = f }
}

// Chaos configures fault injection for a cluster run: every
// worker-to-worker link runs through a cluster.ChaosProxy.
type Chaos struct {
	// Delay is added to every byte batch crossing a data-plane link.
	Delay time.Duration
	// OnProxy, when set, receives each worker's proxy right after it
	// starts, so a test can script severs and pauses mid-run.
	OnProxy func(worker int, p *cluster.ChaosProxy)
}

// NewRunner prepares a run of the system with the given configuration
// and options. Nothing executes until Run.
func NewRunner(cfg Config, opts ...Option) *Runner {
	r := &Runner{cfg: cfg}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Run executes the configured run and blocks until the stream is
// exhausted and the topology has fully drained.
func (r *Runner) Run() (*Report, error) {
	cfg, err := r.cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if r.workers < 0 {
		return nil, fmt.Errorf("core: WithWorkers(%d) < 1", r.workers)
	}
	if r.workers == 0 {
		if r.chaos != nil {
			return nil, fmt.Errorf("core: WithChaos requires WithWorkers")
		}
		if r.workerReg != nil {
			return nil, fmt.Errorf("core: WithWorkerTelemetry requires WithWorkers")
		}
		if r.workerHook != nil {
			return nil, fmt.Errorf("core: WithWorkerHook requires WithWorkers")
		}
	}
	if r.metricsAddr != "" {
		if cfg.Telemetry == nil {
			return nil, fmt.Errorf("core: WithMetricsAddr requires WithTelemetry")
		}
		srv, err := telemetry.Serve(r.metricsAddr, cfg.Telemetry)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
	}
	if r.workers == 0 {
		return r.runLocal(cfg)
	}
	return r.runCluster(cfg)
}

// runLocal executes on the in-process topology runtime.
func (r *Runner) runLocal(cfg Config) (*Report, error) {
	report := &Report{}
	topo, err := buildTopology(cfg, report).Build()
	if err != nil {
		return nil, err
	}
	report.Topology = topo.Run()
	report.Telemetry = cfg.Telemetry.Snapshot()
	return report, nil
}

// runCluster executes across TCP-connected in-process workers: the same
// plumbing as a multi-process deployment — coordinator handshake,
// gob-framed data plane, double-probe termination — without spawning
// processes. Every worker constructs the topology from the same code
// and instantiates only its placed tasks.
func (r *Runner) runCluster(cfg Config) (*Report, error) {
	RegisterGobTypes()
	coord, err := cluster.NewCoordinator(r.workers)
	if err != nil {
		return nil, err
	}
	report := &Report{}
	workers := make([]*cluster.Worker, r.workers)
	regs := make([]*telemetry.Registry, 0, r.workers+1)
	if cfg.Telemetry != nil {
		regs = append(regs, cfg.Telemetry)
	}
	var proxies []*cluster.ChaosProxy
	defer func() {
		for _, p := range proxies {
			p.Close()
		}
	}()
	for i := 0; i < r.workers; i++ {
		wcfg := cfg
		if r.workerReg != nil {
			wcfg.Telemetry = r.workerReg(i)
			if wcfg.Telemetry != nil {
				regs = append(regs, wcfg.Telemetry)
			}
		}
		w, err := cluster.NewWorker(i, r.workers, buildTopology(wcfg, report), coord.Addr())
		if err != nil {
			return nil, err
		}
		w.Telemetry = wcfg.Telemetry
		if r.chaos != nil {
			addr, err := w.Listen()
			if err != nil {
				return nil, err
			}
			proxy, err := cluster.NewChaosProxy(addr)
			if err != nil {
				return nil, err
			}
			if r.chaos.Delay > 0 {
				proxy.SetDelay(r.chaos.Delay)
			}
			w.AdvertiseAddr = proxy.Addr()
			proxies = append(proxies, proxy)
			if r.chaos.OnProxy != nil {
				r.chaos.OnProxy(i, proxy)
			}
		}
		if r.workerHook != nil {
			r.workerHook(i, w)
		}
		workers[i] = w
	}
	errs := make(chan error, r.workers)
	for _, w := range workers {
		w := w
		go func() { errs <- w.Run() }()
	}
	stats, err := coord.Run()
	for i := 0; i < r.workers; i++ {
		if werr := <-errs; werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return nil, err
	}
	report.Topology = stats
	// Merge every distinct registry's snapshot: series are disjoint
	// (each task runs on exactly one worker and transport series carry
	// worker labels), so the merge is the whole-cluster picture.
	seen := make(map[*telemetry.Registry]bool, len(regs))
	var snaps []telemetry.Snapshot
	for _, reg := range regs {
		if seen[reg] {
			continue
		}
		seen[reg] = true
		snaps = append(snaps, reg.Snapshot())
	}
	report.Telemetry = telemetry.Merge(snaps...)
	return report, nil
}
