package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// Runner is the unified entry point for executing the system: one API
// covers the in-process runtime and the TCP cluster runtime, configured
// through functional options.
//
//	report, err := core.NewRunner(cfg).Run()                          // in-process
//	report, err := core.NewRunner(cfg, core.WithWorkers(4)).Run()     // 4 TCP workers
//	report, err := core.NewRunner(cfg,
//		core.WithWorkers(4),
//		core.WithTelemetry(reg),
//		core.WithChaos(&core.Chaos{Delay: time.Millisecond}),
//	).Run()
//
// The legacy Run and ClusterRun helpers are thin wrappers over Runner.
type Runner struct {
	cfg         Config
	workers     int
	metricsAddr string
	chaos       *Chaos
	workerReg   func(worker int) *telemetry.Registry
	workerHook  func(worker int, w *cluster.Worker)
	recovery    *Recovery
	heartbeat   time.Duration
	lease       time.Duration

	// Elastic scale-out (WithElastic): live holds the in-flight cluster
	// attempt's control handle while Run executes, curWorkers tracks the
	// live worker count across rescales so a recovery restart re-places
	// onto the count the cluster actually had when it died.
	elastic       bool
	rescalePolicy func(window int, repartitioned bool) int
	live          atomic.Pointer[liveCluster]
	curWorkers    atomic.Int64
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers runs the topology across n TCP-connected in-process
// workers instead of the single-process runtime. n must be >= 1.
func WithWorkers(n int) Option {
	return func(r *Runner) { r.workers = n }
}

// WithTelemetry instruments the run into reg — topology executors,
// cluster transport, join engines and partitioning — and attaches its
// final snapshot to Report.Telemetry. Equivalent to setting
// Config.Telemetry.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(r *Runner) { r.cfg.Telemetry = reg }
}

// WithProbeParallelism sizes each Joiner's FPJ probe worker pool:
// documents are micro-batched (Config.ProbeBatch, default 64) and
// their window-tree probes run across n goroutines, with results
// merged back in arrival order. Equivalent to setting
// Config.ProbeParallelism. n <= 1 keeps the serial probe loop.
func WithProbeParallelism(n int) Option {
	return func(r *Runner) { r.cfg.ProbeParallelism = n }
}

// WithWireFormat selects the cluster data-plane encoding —
// cluster.WireBinary (the default batched binary format) or
// cluster.WireGob (for A/B measurement). Equivalent to setting
// Config.WireFormat; local runs ignore it.
func WithWireFormat(format string) Option {
	return func(r *Runner) { r.cfg.WireFormat = format }
}

// WithMemoryBudget bounds each Joiner's accounted window-state bytes,
// spilling buffered future-window documents to the WithSpillDir store
// under pressure. Equivalent to setting Config.MemoryBudget; <= 0
// leaves memory ungoverned.
func WithMemoryBudget(n int64) Option {
	return func(r *Runner) { r.cfg.MemoryBudget = n }
}

// WithSpillDir roots the Joiners' spill store. Equivalent to setting
// Config.SpillDir; only meaningful together with WithMemoryBudget.
func WithSpillDir(dir string) Option {
	return func(r *Runner) { r.cfg.SpillDir = dir }
}

// WithMetricsAddr serves the run's telemetry registry on addr for the
// duration of the run (Prometheus text at /metrics, JSON at
// /debug/stats). Requires WithTelemetry (or Config.Telemetry).
func WithMetricsAddr(addr string) Option {
	return func(r *Runner) { r.metricsAddr = addr }
}

// WithChaos interposes a fault-injection proxy on every worker's
// data-plane listener. Requires WithWorkers.
func WithChaos(c *Chaos) Option {
	return func(r *Runner) { r.chaos = c }
}

// WithElastic keeps the cluster attempt's control handle live so the
// run can be rescaled while it executes: Runner.Rescale(n) — or POST
// /rescale on the WithMetricsAddr mux — adds or removes workers with
// frontier-aligned state migration and zero source replay. Requires
// WithWorkers.
func WithElastic() Option {
	return func(r *Runner) { r.elastic = true }
}

// WithRescalePolicy folds the θ-repartition verdict into the elastic
// machinery: f runs after every completed window with that window's
// repartition flag, and a return > 0 asks the runner to rescale the
// cluster to that many workers (asynchronously — the pipeline keeps
// flowing until the rescale's frontier). A return <= 0 leaves the
// cluster alone. Requires WithElastic.
func WithRescalePolicy(f func(window int, repartitioned bool) int) Option {
	return func(r *Runner) { r.rescalePolicy = f }
}

// WithHeartbeat tunes the cluster failure detector: every worker sends
// a liveness beacon on its control plane each interval, and the
// coordinator declares a worker dead (WorkerDied, entering the
// recovery path when WithRecovery is configured) after it has been
// silent — no heartbeat, no probe reply, no frame of any kind — for
// the lease duration. This is what catches a hung worker whose
// sockets are still open: a crash surfaces reactively through the
// broken connection, a wedge only through lease expiry. The lease
// should be several multiples of the interval; a zero leaves the
// corresponding side at its default (250ms heartbeats, 10s lease).
// Requires WithWorkers.
func WithHeartbeat(interval, lease time.Duration) Option {
	return func(r *Runner) {
		r.heartbeat = interval
		r.lease = lease
	}
}

// WithWorkerTelemetry gives every cluster worker its own registry,
// overriding WithTelemetry for the components hosted on that worker and
// for its transport series — the multi-process deployment shape, where
// each worker scrapes separately. The per-worker snapshots are merged
// into Report.Telemetry at the end of the run.
func WithWorkerTelemetry(f func(worker int) *telemetry.Registry) Option {
	return func(r *Runner) { r.workerReg = f }
}

// WithWorkerHook exposes each cluster worker to the caller right before
// it starts — for setting MetricsAddr, retry tuning, or capturing the
// worker for mid-run inspection in tests.
func WithWorkerHook(f func(worker int, w *cluster.Worker)) Option {
	return func(r *Runner) { r.workerHook = f }
}

// Recovery configures the operator-state layer: every stateful task
// snapshots its state into Store at each window boundary (the
// checkpoint barrier rides the window punctuation), and a cluster run
// survives worker deaths by re-placing the topology on the surviving
// workers and restoring from the last consistent checkpoint cut.
type Recovery struct {
	// Store persists the snapshots. Required. state.NewMemStore() for
	// tests and single-host runs, state.NewFSStore(dir) for a store an
	// external tool can inspect. The run owns the store: any snapshots
	// left from an earlier run are cleared when Run starts.
	Store state.Store
	// MaxRestarts bounds how many worker deaths one run survives;
	// <= 0 defaults to workers-1 (every death survivable down to a
	// single worker).
	MaxRestarts int
	// NewSource returns a fresh generator producing the same stream as
	// Config.Source. Required for failover: the reader is not restored
	// from a snapshot — a recovering attempt re-creates it and fast-
	// forwards past the windows already incorporated in the cut, which
	// needs the stream to be reproducible from the start. When Config.
	// Source is nil, NewSource() also provides the first attempt's
	// source.
	NewSource func() datagen.Generator
}

// WithRecovery enables checkpointing (and, for cluster runs, worker
// failover) for the run.
func WithRecovery(rec Recovery) Option {
	return func(r *Runner) { r.recovery = &rec }
}

// Chaos configures fault injection for a cluster run: every
// worker-to-worker link runs through a cluster.ChaosProxy.
type Chaos struct {
	// Delay is added to every byte batch crossing a data-plane link.
	Delay time.Duration
	// OnProxy, when set, receives each worker's proxy right after it
	// starts, so a test can script severs and pauses mid-run.
	OnProxy func(worker int, p *cluster.ChaosProxy)
	// Schedule, when set, drives a deterministic seeded fault script
	// against the proxies for the duration of every cluster attempt:
	// severs, link delays and refused dials fire at fixed offsets of
	// the cluster-wide dispatched-copy count, so a given seed replays
	// the identical fault sequence (see cluster.RandomSchedule). The
	// schedule restarts from its first event on each recovery attempt.
	Schedule *cluster.ChaosSchedule
}

// NewRunner prepares a run of the system with the given configuration
// and options. Nothing executes until Run.
func NewRunner(cfg Config, opts ...Option) *Runner {
	r := &Runner{cfg: cfg}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Run executes the configured run and blocks until the stream is
// exhausted and the topology has fully drained.
func (r *Runner) Run() (*Report, error) {
	if r.recovery != nil {
		if r.recovery.Store == nil {
			return nil, fmt.Errorf("core: WithRecovery requires Recovery.Store")
		}
		if r.workers > 0 && r.recovery.NewSource == nil {
			return nil, fmt.Errorf("core: worker failover requires Recovery.NewSource (the reader replays the stream from a fresh generator)")
		}
		if r.cfg.Source == nil && r.recovery.NewSource != nil {
			r.cfg.Source = r.recovery.NewSource()
		}
	}
	cfg, err := r.cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if r.workers < 0 {
		return nil, fmt.Errorf("core: WithWorkers(%d) < 1", r.workers)
	}
	if r.workers == 0 {
		if r.chaos != nil {
			return nil, fmt.Errorf("core: WithChaos requires WithWorkers")
		}
		if r.workerReg != nil {
			return nil, fmt.Errorf("core: WithWorkerTelemetry requires WithWorkers")
		}
		if r.workerHook != nil {
			return nil, fmt.Errorf("core: WithWorkerHook requires WithWorkers")
		}
		if r.heartbeat != 0 || r.lease != 0 {
			return nil, fmt.Errorf("core: WithHeartbeat requires WithWorkers")
		}
		if r.elastic {
			return nil, fmt.Errorf("core: WithElastic requires WithWorkers")
		}
	}
	if r.rescalePolicy != nil && !r.elastic {
		return nil, fmt.Errorf("core: WithRescalePolicy requires WithElastic")
	}
	if r.metricsAddr != "" {
		if cfg.Telemetry == nil {
			return nil, fmt.Errorf("core: WithMetricsAddr requires WithTelemetry")
		}
		srv, err := telemetry.ServeHandler(r.metricsAddr, r.opsHandler(cfg.Telemetry))
		if err != nil {
			return nil, err
		}
		defer srv.Close()
	}
	if r.workers == 0 {
		return r.runLocal(cfg)
	}
	// Register the replay counter eagerly: a run that never replays the
	// source still exposes it at 0, so "no replay happened" is a
	// checkable fact rather than a missing series.
	if cfg.Telemetry != nil {
		cfg.Telemetry.Counter("source_replays_total")
	}
	if r.rescalePolicy != nil {
		policy := r.rescalePolicy
		cfg.onWindowComplete = func(window int, repartitioned bool) {
			if n := policy(window, repartitioned); n > 0 {
				// Asynchronously: the collector task must keep executing
				// for the rescale's quiescence probe to settle.
				go func() { _ = r.Rescale(n) }()
			}
		}
	}
	return r.runCluster(cfg)
}

// runLocal executes on the in-process topology runtime. With recovery
// configured the run checkpoints (useful for producing a store a later
// cluster run can inspect) but never restores — there is no worker to
// lose.
func (r *Runner) runLocal(cfg Config) (*Report, error) {
	if r.recovery != nil {
		if err := clearStore(r.recovery.Store); err != nil {
			return nil, err
		}
		cfg.recovery = &recoveryPlumb{store: r.recovery.Store, restoreWindow: -1}
	}
	report := &Report{}
	topo, err := buildTopology(cfg, report).Build()
	if err != nil {
		return nil, err
	}
	report.Topology = topo.Run()
	report.Telemetry = cfg.Telemetry.Snapshot()
	return report, nil
}

// runCluster executes across TCP-connected in-process workers. Without
// recovery it is a single attempt; with recovery it loops: when a
// worker dies mid-run, the topology is re-placed across the survivors
// and every stateful task restores from the last checkpoint cut — the
// highest window every required task snapshotted. Snapshots above the
// cut are pruned before the restart (attempts must not mix), the
// staged join results past the cut are discarded (the replay
// regenerates them), and the reader replays the stream from a fresh
// generator, skipping the windows the cut already incorporated.
func (r *Runner) runCluster(cfg Config) (*Report, error) {
	if r.recovery == nil {
		return r.runClusterAttempt(cfg, r.workers)
	}
	maxRestarts := r.recovery.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = r.workers - 1
	}
	if err := clearStore(r.recovery.Store); err != nil {
		return nil, err
	}
	stager := newResultStager(cfg.OnResult)
	workers := r.workers
	restarts := 0
	restoreFrom := -1
	for {
		acfg := cfg
		acfg.OnResult = nil
		acfg.onResultWindowed = stager.record
		acfg.recovery = &recoveryPlumb{store: r.recovery.Store, restoreWindow: restoreFrom}
		if restoreFrom >= 0 {
			acfg.Source = r.recovery.NewSource()
			// The one path that re-reads the stream: recovery after a
			// worker death. Elastic rescales never come through here.
			if cfg.Telemetry != nil {
				cfg.Telemetry.Counter("source_replays_total").Inc()
			}
		}
		report, err := r.runClusterAttempt(acfg, workers)
		if err == nil {
			report.Restarts = restarts
			stager.flush()
			return report, nil
		}
		// A rescale may have changed the worker count since the attempt
		// started; restart from the count the cluster actually had.
		workers = int(r.curWorkers.Load())
		var wd *cluster.WorkerDied
		if !errors.As(err, &wd) || restarts >= maxRestarts || workers <= 1 {
			return nil, err
		}
		// The verified cut skips any window whose snapshots are torn or
		// corrupt (bad envelope, CRC mismatch): recovery restores from the
		// highest fully-intact window rather than panicking mid-restore.
		cut := verifiedCut(r.recovery.Store, requiredTasks(cfg))
		if cut < 0 {
			return nil, fmt.Errorf("core: worker died before the first checkpoint cut completed: %w", err)
		}
		// Drop every snapshot above the cut: the next attempt snapshots
		// those windows again, and mixing attempts would let a stale
		// high-window snapshot (with e.g. a diverged table-version
		// counter) into a later cut.
		for _, task := range r.recovery.Store.Tasks() {
			if perr := r.recovery.Store.Prune(task, cut); perr != nil {
				return nil, fmt.Errorf("core: pruning %s above window %d: %w", task, cut, perr)
			}
		}
		stager.prune(cut)
		restoreFrom = cut
		workers--
		restarts++
	}
}

// collectWorkers owns the attempt's worker-error bookkeeping: every
// started worker (initial or a joiner whose rescale succeeded) hands
// its result channel to collect, and wait blocks until all collected
// workers exited, returning the first error.
type collectWorkers struct {
	wg    sync.WaitGroup
	mu    sync.Mutex
	first error
}

func (c *collectWorkers) collect(done chan error) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if e := <-done; e != nil {
			c.mu.Lock()
			if c.first == nil {
				c.first = e
			}
			c.mu.Unlock()
		}
	}()
}

func (c *collectWorkers) wait() error {
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.first
}

// runClusterAttempt is one placement of the topology across the given
// number of workers: the same plumbing as a multi-process deployment —
// coordinator handshake, gob-framed data plane, double-probe
// termination — without spawning processes. Every worker constructs
// the topology from the same code and instantiates only its placed
// tasks.
func (r *Runner) runClusterAttempt(cfg Config, nworkers int) (*Report, error) {
	RegisterGobTypes()
	coord, err := cluster.NewCoordinator(nworkers)
	if err != nil {
		return nil, err
	}
	if r.lease > 0 {
		coord.LeaseTimeout = r.lease
	}
	coord.Telemetry = cfg.Telemetry
	report := &Report{}
	r.curWorkers.Store(int64(nworkers))
	lc := &liveCluster{r: r, cfg: cfg, report: report, coord: coord, cur: nworkers, nextID: nworkers}
	if cfg.Telemetry != nil {
		lc.regs = append(lc.regs, cfg.Telemetry)
	}
	defer func() {
		lc.mu.Lock()
		proxies := append([]*cluster.ChaosProxy(nil), lc.proxies...)
		lc.mu.Unlock()
		for _, p := range proxies {
			p.Close()
		}
	}()
	workers := make([]*cluster.Worker, nworkers)
	for i := 0; i < nworkers; i++ {
		wcfg := cfg
		if r.workerReg != nil {
			wcfg.Telemetry = r.workerReg(i)
			if wcfg.Telemetry != nil {
				lc.regs = append(lc.regs, wcfg.Telemetry)
			}
		}
		w, err := cluster.NewWorker(i, nworkers, buildTopology(wcfg, report), coord.Addr())
		if err != nil {
			return nil, err
		}
		if err := r.outfitWorker(w, wcfg, i, lc); err != nil {
			return nil, err
		}
		workers[i] = w
	}
	if r.chaos != nil && r.chaos.Schedule != nil {
		// The script drives the attempt's initial proxies and counters;
		// joiners spawned by later rescales are outside its model.
		scriptProxies := append([]*cluster.ChaosProxy(nil), lc.proxies...)
		stop := make(chan struct{})
		schedDone := make(chan struct{})
		go func() {
			defer close(schedDone)
			r.chaos.Schedule.Run(scriptProxies, func() int64 {
				var sent int64
				for _, w := range workers {
					s, _ := w.Counters()
					sent += s
				}
				return sent
			}, stop)
		}()
		// Stop the script before the deferred proxy close (defers are
		// LIFO), so a pending counter-action never races a closing proxy.
		defer func() {
			close(stop)
			<-schedDone
		}()
	}
	var cw collectWorkers
	lc.collect = cw.collect
	for _, w := range workers {
		w := w
		done := make(chan error, 1)
		go func() { done <- w.Run() }()
		cw.collect(done)
	}
	if r.elastic {
		r.live.Store(lc)
		defer r.live.Store(nil)
	}
	stats, err := coord.Run()
	if werr := cw.wait(); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return nil, err
	}
	report.Topology = stats
	// Merge every distinct registry's snapshot: series are disjoint
	// (each task runs on exactly one worker and transport series carry
	// worker labels), so the merge is the whole-cluster picture.
	lc.mu.Lock()
	regs := append([]*telemetry.Registry(nil), lc.regs...)
	lc.mu.Unlock()
	seen := make(map[*telemetry.Registry]bool, len(regs))
	var snaps []telemetry.Snapshot
	for _, reg := range regs {
		if seen[reg] {
			continue
		}
		seen[reg] = true
		snaps = append(snaps, reg.Snapshot())
	}
	report.Telemetry = telemetry.Merge(snaps...)
	return report, nil
}
