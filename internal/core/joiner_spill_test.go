package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/partition"
	"repro/internal/telemetry"
)

// TestJoinerPendingSpillParity runs a cluster topology whose joiners
// are memory-governed with a budget so small every buffered
// future-window document spills to disk, and checks the join output is
// still exactly the oracle's. The joiners' pending buffers (documents
// racing ahead of the frontier under multiple assigners) are the only
// spillable state on the cluster path — the current window's probe
// structures never leave memory — so parity here proves the spill and
// reload legs are correctness-neutral end to end.
func TestJoinerPendingSpillParity(t *testing.T) {
	const windowSize = 60
	gen := datagen.NewServerLog(7)
	var docs []document.Document
	for w := 0; w < 3; w++ {
		docs = append(docs, gen.Window(windowSize)...)
	}
	reg := telemetry.NewRegistry()
	cfg := Config{
		M:            3,
		Creators:     2,
		Assigners:    3, // racing assigners keep the pending buffers busy
		WindowSize:   windowSize,
		Windows:      3,
		Delta:        2,
		Theta:        0.3,
		Partitioner:  partition.AssociationGroups{},
		Engine:       "FPJ",
		MemoryBudget: 1, // every pending buffer is over budget: spill it all
		SpillDir:     t.TempDir(),
		Telemetry:    reg,
	}
	got, report := runAndCollect(t, cfg, docs)
	want := oraclePairs(docs, windowSize)
	if len(got) != len(want) {
		t.Errorf("governed topology produced %d pairs, oracle %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing pair (%d,%d)", p.LeftID, p.RightID)
		}
	}
	for p := range got {
		if !want[p] {
			t.Errorf("extra pair (%d,%d)", p.LeftID, p.RightID)
		}
	}
	snap := report.Telemetry
	if snap.SumCounter("state_spill_panes_total") == 0 {
		t.Error("no pending buffers spilled despite the 1-byte budget")
	}
	if snap.SumCounter("state_spill_reloads_total") == 0 {
		t.Error("no spilled pending buffers reloaded")
	}
	if snap.SumCounter("state_spill_failures_total") != 0 {
		t.Errorf("%d spill failures on a healthy filesystem",
			snap.SumCounter("state_spill_failures_total"))
	}
}
