package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.Add(2)
	g.SetInt(3)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tuples_total")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if r.Counter("tuples_total") != c {
		t.Error("same name must resolve to the same counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("lat_seconds")
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Millisecond)
	if h.Count() != 3 {
		t.Errorf("hist count = %d", h.Count())
	}
	if h.Sum() != time.Millisecond+200*time.Nanosecond {
		t.Errorf("hist sum = %s", h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["lat_seconds"]
	var total int64
	for _, b := range hs.Buckets {
		total += b
	}
	if total != 3 {
		t.Errorf("bucket total = %d, want 3", total)
	}
}

func TestDrop(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("q_total", "query", "a")).Inc()
	r.Counter(Name("q_total", "query", "b")).Inc()
	r.Gauge(Name("depth", "query", "a")).Set(7)
	r.Histogram(Name("lat_seconds", "query", "a")).Observe(time.Millisecond)

	r.Drop(Name("q_total", "query", "a"), Name("depth", "query", "a"), Name("lat_seconds", "query", "a"))
	snap := r.Snapshot()
	if _, ok := snap.Counters[Name("q_total", "query", "a")]; ok {
		t.Error("dropped counter series still present")
	}
	if _, ok := snap.Gauges[Name("depth", "query", "a")]; ok {
		t.Error("dropped gauge series still present")
	}
	if _, ok := snap.Histograms[Name("lat_seconds", "query", "a")]; ok {
		t.Error("dropped histogram series still present")
	}
	if snap.Counter(Name("q_total", "query", "b")) != 1 {
		t.Error("sibling series lost by Drop")
	}
	// A re-created series starts fresh rather than resurrecting state.
	if v := r.Counter(Name("q_total", "query", "a")).Value(); v != 0 {
		t.Errorf("recreated series = %d, want 0", v)
	}
	// Nil registry and unknown names are no-ops.
	var nilReg *Registry
	nilReg.Drop("anything")
	r.Drop("never_registered")
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total")
			h := r.Histogram("h_seconds")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.ObserveNS(int64(j))
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Errorf("gauge = %g, want 8000", got)
	}
	if got := r.Histogram("h_seconds").Count(); got != 8000 {
		t.Errorf("hist count = %d, want 8000", got)
	}
}

func TestNameAndBaseName(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Errorf("Name = %q", got)
	}
	got := Name("x_total", "component", "joiner", "task", "3")
	want := `x_total{component="joiner",task="3"}`
	if got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
	if BaseName(got) != "x_total" {
		t.Errorf("BaseName = %q", BaseName(got))
	}
}

func TestSnapshotSumAndDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("join_results_total", "task", "0")).Add(3)
	r.Counter(Name("join_results_total", "task", "1")).Add(4)
	r.Gauge("g").Set(9)
	r.Histogram("h").ObserveNS(10)
	prev := r.Snapshot()
	if got := prev.SumCounter("join_results_total"); got != 7 {
		t.Errorf("SumCounter = %d, want 7", got)
	}

	r.Counter(Name("join_results_total", "task", "0")).Add(5)
	r.Histogram("h").ObserveNS(20)
	diff := r.Snapshot().Diff(prev)
	if got := diff.Counter(Name("join_results_total", "task", "0")); got != 5 {
		t.Errorf("diff counter = %d, want 5", got)
	}
	if got := diff.Counter(Name("join_results_total", "task", "1")); got != 0 {
		t.Errorf("diff counter = %d, want 0", got)
	}
	if got := diff.Histograms["h"].Count; got != 1 {
		t.Errorf("diff hist count = %d, want 1", got)
	}
	if got := diff.Gauge("g"); got != 9 {
		t.Errorf("diff gauge = %g, want 9 (gauges pass through)", got)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("frames_total", "peer", "1")).Add(2)
	r.Gauge("depth").Set(3)
	r.Histogram(Name("lat_seconds", "component", "joiner")).Observe(300 * time.Nanosecond)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		`frames_total{peer="1"} 2`,
		"# TYPE depth gauge",
		"depth 3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{component="joiner",le="+Inf"} 1`,
		`lat_seconds_count{component="joiner"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("docs_total").Add(11)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "docs_total 11") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counter("docs_total") != 11 {
		t.Errorf("/debug/stats counter = %d", snap.Counter("docs_total"))
	}
}
