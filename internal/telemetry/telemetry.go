// Package telemetry is the repository's low-overhead metrics runtime:
// atomic counters, gauges and log-bucketed latency histograms held in a
// named registry, scraped live over HTTP (Prometheus text and JSON) or
// captured as a Snapshot for reports and tests.
//
// Design constraints, in order:
//
//   - Zero cost when off. Every instrument is nil-safe: a nil *Registry
//     hands out nil instruments, and Add/Set/Observe on a nil receiver
//     is a single predictable branch. Hot paths keep unconditional
//     instrument calls instead of sprinkling `if telemetry != nil`.
//   - One atomic op per event when on. Instruments are resolved by name
//     once (at task construction) and then touched lock-free; the
//     registry lock is only taken at resolution and scrape time.
//   - Live and post-hoc views share one vocabulary. The same series
//     names appear in /metrics scrapes, /debug/stats JSON, and the
//     Report.Telemetry snapshot, so a test can assert against the
//     numbers an operator would see on a dashboard.
//
// Series are identified by a full name that may embed Prometheus-style
// labels, e.g. `join_results_total{task="3"}`; Name composes them
// deterministically.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are safe on a nil receiver (no-ops).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value. The zero value is
// ready to use; all methods are safe on a nil receiver (no-ops).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// SetInt stores an integer value; a convenience for depth/size gauges.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Add adjusts the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFrom(old)+delta)) {
			return
		}
	}
}

// Value reports the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFrom(g.bits.Load())
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// histBuckets is the number of log2 buckets: bucket i counts
// observations v (in nanoseconds) with 2^(i-1) <= v < 2^i, i.e.
// bits.Len64(v) == i. 2^48 ns ≈ 78 hours, far beyond any latency the
// system can observe in one run.
const histBuckets = 48

// Histogram is a log2-bucketed latency histogram: one atomic add per
// observation, exact count and sum, bucketed distribution for
// percentile estimates. All methods are safe on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(int64(d)) }

// ObserveNS records one observation in nanoseconds.
func (h *Histogram) ObserveNS(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the accumulated observation time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// snapshot captures the histogram's state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNS: h.sum.Load()}
	top := 0
	var buckets [histBuckets]int64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		if buckets[i] != 0 {
			top = i + 1
		}
	}
	s.Buckets = append([]int64(nil), buckets[:top]...)
	return s
}

// Registry is a named set of instruments. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is a valid "telemetry
// off" registry: it hands out nil instruments and empty snapshots.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter resolves (creating on first use) the named counter. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge resolves (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram resolves (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Drop removes the named series from the registry: they disappear from
// future scrapes and snapshots. Instruments already handed out keep
// working (they are plain atomics) but are no longer visible — the
// intended use is retiring the per-query labelled series of a deleted
// standing query, whose instruments are dropped along with the query.
// Re-resolving a dropped name later starts a fresh series from zero.
func (r *Registry) Drop(names ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		delete(r.counters, name)
		delete(r.gauges, name)
		delete(r.hists, name)
	}
}

// Name composes a series name from a base metric name and label
// key/value pairs: Name("x_total", "component", "joiner") yields
// `x_total{component="joiner"}`. Labels render in the order given;
// callers pass them in a fixed order so the same series always gets
// the same name.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// BaseName strips the label part off a series name.
func BaseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// Snapshot is a point-in-time copy of every series in a registry. It
// marshals to the JSON served at /debug/stats and rides on
// core.Report.Telemetry so tests consume the same numbers a live
// scrape would show.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the captured state of one histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	// Buckets[i] counts observations v with bits.Len64(v) == i, i.e.
	// v in [2^(i-1), 2^i) nanoseconds; trailing zero buckets are
	// trimmed.
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot captures every series. A nil registry yields the zero
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// Counter reads one counter series from the snapshot (0 when absent).
func (s Snapshot) Counter(series string) int64 { return s.Counters[series] }

// Gauge reads one gauge series from the snapshot (0 when absent).
func (s Snapshot) Gauge(series string) float64 { return s.Gauges[series] }

// SumCounter sums every counter series with the given base name across
// all label combinations — e.g. SumCounter("join_results_total") adds
// up the per-task series.
func (s Snapshot) SumCounter(base string) int64 {
	var sum int64
	for name, v := range s.Counters {
		if BaseName(name) == base {
			sum += v
		}
	}
	return sum
}

// Diff returns this snapshot minus prev: counters and histogram
// counts/sums subtract (series absent from prev pass through), gauges
// keep their current value. Use it to carve one window or one request
// out of cumulative counters.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		p := prev.Histograms[k]
		d := HistogramSnapshot{Count: v.Count - p.Count, SumNS: v.SumNS - p.SumNS}
		d.Buckets = append([]int64(nil), v.Buckets...)
		for i := range p.Buckets {
			if i < len(d.Buckets) {
				d.Buckets[i] -= p.Buckets[i]
			}
		}
		out.Histograms[k] = d
	}
	return out
}

// Merge combines snapshots from separate registries (e.g. one per
// cluster worker) into the whole-system view: counters and histogram
// counts/sums/buckets add up; a gauge takes the last non-zero value
// seen, which is exact when the snapshots' series are disjoint.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			if v != 0 || out.Gauges[k] == 0 {
				out.Gauges[k] = v
			}
		}
		for k, v := range s.Histograms {
			m := out.Histograms[k]
			m.Count += v.Count
			m.SumNS += v.SumNS
			if len(v.Buckets) > len(m.Buckets) {
				m.Buckets = append(m.Buckets, make([]int64, len(v.Buckets)-len(m.Buckets))...)
			}
			for i, n := range v.Buckets {
				m.Buckets[i] += n
			}
			out.Histograms[k] = m
		}
	}
	return out
}

// Series lists every series name in the snapshot, sorted.
func (s Snapshot) Series() []string {
	out := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k := range s.Counters {
		out = append(out, k)
	}
	for k := range s.Gauges {
		out = append(out, k)
	}
	for k := range s.Histograms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
