package telemetry

import (
	"testing"
	"time"
)

// The instrument micro-benches document the per-operation budget the
// hot paths pay: an atomic add when telemetry is on, one nil check when
// it is off.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.SetInt(i)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i)&0xffff + 1)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 64; i++ {
		reg.Counter(Name("bench_total", "task", string(rune('a'+i%26)))).Add(int64(i))
		reg.Histogram(Name("bench_seconds", "task", string(rune('a'+i%26)))).Observe(time.Duration(i + 1))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := reg.Snapshot(); len(s.Counters) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
