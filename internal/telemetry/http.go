package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders every series in the Prometheus text
// exposition format, sorted by series name so scrapes are
// deterministic. Histograms render with log2 bucket bounds converted
// to seconds.
func (r *Registry) WritePrometheus(w io.Writer) {
	s := r.Snapshot()
	s.WritePrometheus(w)
}

// WritePrometheus renders the snapshot in the Prometheus text format.
func (s Snapshot) WritePrometheus(w io.Writer) {
	typed := make(map[string]string)
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k := range s.Counters {
		typed[BaseName(k)] = "counter"
		names = append(names, k)
	}
	for k := range s.Gauges {
		typed[BaseName(k)] = "gauge"
		names = append(names, k)
	}
	for k := range s.Histograms {
		typed[BaseName(k)] = "histogram"
		names = append(names, k)
	}
	sort.Strings(names)
	seenType := make(map[string]bool)
	for _, name := range names {
		base := BaseName(name)
		if !seenType[base] {
			seenType[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, typed[base])
		}
		switch typed[base] {
		case "counter":
			fmt.Fprintf(w, "%s %d\n", name, s.Counters[name])
		case "gauge":
			fmt.Fprintf(w, "%s %g\n", name, s.Gauges[name])
		case "histogram":
			writePromHistogram(w, name, s.Histograms[name])
		}
	}
}

// writePromHistogram renders one histogram series: cumulative buckets
// with le bounds in seconds, then sum and count.
func writePromHistogram(w io.Writer, series string, h HistogramSnapshot) {
	base, labels := splitSeries(series)
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", base, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", base, labels, le)
	}
	plain := func(suffix string) string {
		if labels == "" {
			return base + suffix
		}
		return base + suffix + "{" + labels + "}"
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if n == 0 {
			continue
		}
		// Bucket i holds observations < 2^i nanoseconds.
		le := float64(int64(1)<<uint(i)) / 1e9
		fmt.Fprintf(w, "%s %d\n", withLE(fmt.Sprintf("%g", le)), cum)
	}
	fmt.Fprintf(w, "%s %d\n", withLE("+Inf"), h.Count)
	fmt.Fprintf(w, "%s %g\n", plain("_sum"), float64(h.SumNS)/1e9)
	fmt.Fprintf(w, "%s %d\n", plain("_count"), h.Count)
}

// splitSeries separates `base{a="b"}` into base and inner labels
// (`a="b"`; empty for bare names).
func splitSeries(series string) (base, labels string) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, ""
	}
	return series[:i], strings.TrimSuffix(series[i+1:], "}")
}

// Handler serves the registry over HTTP:
//
//	GET /metrics      Prometheus text exposition
//	GET /debug/stats  JSON snapshot
//	GET /healthz      liveness
//
// Mount it on its own port (Serve) or under an existing mux.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Server is a running scrape endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr reports the bound listen address.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the endpoint. Safe on nil.
func (s *Server) Close() {
	if s == nil {
		return
	}
	_ = s.srv.Close()
}

// Serve exposes the registry's Handler on addr (e.g. "127.0.0.1:0" for
// an ephemeral port) in a background goroutine and returns the running
// endpoint. The caller closes it when the run ends.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, r.Handler())
}

// ServeHandler is Serve for an arbitrary handler — callers that extend
// the metrics mux with extra routes (an ops endpoint next to /metrics)
// mount the combined handler here and get the same timeout hygiene.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	// A scrape endpoint must not let one stalled client pin a
	// connection (and its handler goroutine) forever: bound the whole
	// request read, the response write and idle keep-alives, not just
	// the header read.
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
