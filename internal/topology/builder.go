package topology

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// SpoutFactory builds one spout instance per task.
type SpoutFactory func(task int) Spout

// BoltFactory builds one bolt instance per task.
type BoltFactory func(task int) Bolt

// subscription is one inbound edge of a bolt.
type subscription struct {
	source   string
	stream   string
	grouping GroupingKind
	fields   []string // for Fields grouping
}

type componentDecl struct {
	id          string
	parallelism int
	spout       SpoutFactory
	bolt        BoltFactory
	subs        []subscription
	// tick > 0 requests periodic tick tuples (see ticks.go).
	tick time.Duration
	// maxPending, when set, overrides the builder default mailbox
	// capacity for this component (0 = unbounded).
	maxPending *int
}

// Builder assembles a topology declaratively, mirroring Storm's
// TopologyBuilder.
type Builder struct {
	order      []string
	components map[string]*componentDecl
	err        error

	// ackTimeout > 0 enables guaranteed message processing (see
	// EnableAcking).
	ackTimeout time.Duration

	// maxPending is the default mailbox capacity (0 = unbounded).
	maxPending int

	// telemetry, when set, instruments the built runtime (see
	// Builder.Telemetry).
	telemetry *telemetry.Registry
}

// NewBuilder creates an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{components: make(map[string]*componentDecl)}
}

func (b *Builder) add(id string, parallelism int) *componentDecl {
	if b.err != nil {
		return &componentDecl{}
	}
	if parallelism < 1 {
		b.err = fmt.Errorf("topology: component %q parallelism %d < 1", id, parallelism)
		return &componentDecl{}
	}
	if _, dup := b.components[id]; dup {
		b.err = fmt.Errorf("topology: duplicate component id %q", id)
		return &componentDecl{}
	}
	c := &componentDecl{id: id, parallelism: parallelism}
	b.components[id] = c
	b.order = append(b.order, id)
	return c
}

// SetSpout declares a spout component with the given parallelism.
func (b *Builder) SetSpout(id string, f SpoutFactory, parallelism int) {
	c := b.add(id, parallelism)
	c.spout = f
}

// BoltDecl allows chaining grouping declarations onto a bolt.
type BoltDecl struct {
	b *Builder
	c *componentDecl
}

// SetBolt declares a bolt component with the given parallelism.
func (b *Builder) SetBolt(id string, f BoltFactory, parallelism int) *BoltDecl {
	c := b.add(id, parallelism)
	c.bolt = f
	return &BoltDecl{b: b, c: c}
}

func (d *BoltDecl) sub(source, stream string, g GroupingKind, fields ...string) *BoltDecl {
	d.c.subs = append(d.c.subs, subscription{source: source, stream: stream, grouping: g, fields: fields})
	return d
}

// ShuffleGrouping subscribes to source's stream with shuffle grouping.
func (d *BoltDecl) ShuffleGrouping(source string, stream ...string) *BoltDecl {
	return d.sub(source, streamOf(stream), Shuffle)
}

// FieldsGrouping subscribes with fields grouping on the given fields of
// the source's default stream.
func (d *BoltDecl) FieldsGrouping(source string, fields ...string) *BoltDecl {
	return d.sub(source, DefaultStream, Fields, fields...)
}

// FieldsGroupingOn subscribes with fields grouping on a named stream.
func (d *BoltDecl) FieldsGroupingOn(source, stream string, fields ...string) *BoltDecl {
	return d.sub(source, stream, Fields, fields...)
}

// AllGrouping subscribes with all grouping (every task receives every
// tuple).
func (d *BoltDecl) AllGrouping(source string, stream ...string) *BoltDecl {
	return d.sub(source, streamOf(stream), All)
}

// DirectGrouping subscribes with direct grouping: the producer selects
// the receiving task via EmitDirect.
func (d *BoltDecl) DirectGrouping(source string, stream ...string) *BoltDecl {
	return d.sub(source, streamOf(stream), Direct)
}

// GlobalGrouping routes the whole stream to task 0.
func (d *BoltDecl) GlobalGrouping(source string, stream ...string) *BoltDecl {
	return d.sub(source, streamOf(stream), Global)
}

// MaxPending bounds every task mailbox to n queued tuples; a producer
// delivering into a full mailbox blocks until the consumer drains it,
// so overload backpressures upstream to the spouts instead of growing
// queues without limit. n = 0 (the default) keeps mailboxes unbounded.
//
// Deadlock carve-out: components that lie on a directed cycle of the
// subscription graph (e.g. the paper's Assigner<->Merger control loop)
// always keep unbounded mailboxes regardless of this setting — a
// bounded cycle could block on itself. Their traffic is low-rate
// control-plane state, so boundedness matters only on the acyclic
// data path.
func (b *Builder) MaxPending(n int) *Builder {
	if n < 0 {
		b.err = fmt.Errorf("topology: MaxPending %d < 0", n)
		return b
	}
	b.maxPending = n
	return b
}

// MaxPending overrides the builder-wide mailbox capacity for this bolt
// (0 = unbounded). Components on a feedback cycle stay unbounded even
// with an explicit override.
func (d *BoltDecl) MaxPending(n int) *BoltDecl {
	if n < 0 {
		d.b.err = fmt.Errorf("topology: component %q MaxPending %d < 0", d.c.id, n)
		return d
	}
	n2 := n
	d.c.maxPending = &n2
	return d
}

// Telemetry instruments the built runtime with live metrics in reg:
// per-component executed/emitted tuple counters and execute-latency
// histograms, per-task mailbox depth gauges, and blocked-on-
// backpressure time per component. A nil registry (the default) keeps
// every instrument a no-op.
func (b *Builder) Telemetry(reg *telemetry.Registry) *Builder {
	b.telemetry = reg
	return b
}

func streamOf(stream []string) string {
	if len(stream) == 0 {
		return DefaultStream
	}
	return stream[0]
}

// cycleComponents returns the components that lie on a directed cycle
// of the subscription graph (tuple flow: source -> subscriber). These
// are the control-plane feedback loops that must keep unbounded
// mailboxes; bounding a cycle could deadlock it against itself.
func (b *Builder) cycleComponents() map[string]bool {
	succ := make(map[string][]string, len(b.order))
	for _, id := range b.order {
		for _, s := range b.components[id].subs {
			succ[s.source] = append(succ[s.source], id)
		}
	}
	onCycle := make(map[string]bool)
	for _, id := range b.order {
		// id is on a cycle iff it is reachable from its own successors.
		stack := append([]string(nil), succ[id]...)
		seen := make(map[string]bool)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == id {
				onCycle[id] = true
				break
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, succ[n]...)
		}
	}
	return onCycle
}

// resolvedCapacities maps every component to its effective mailbox
// capacity: 0 (unbounded) on a feedback cycle, else the component
// override, else the builder default.
func (b *Builder) resolvedCapacities() map[string]int {
	onCycle := b.cycleComponents()
	out := make(map[string]int, len(b.order))
	for _, id := range b.order {
		c := b.components[id]
		switch {
		case onCycle[id]:
			out[id] = 0
		case c.maxPending != nil:
			out[id] = *c.maxPending
		default:
			out[id] = b.maxPending
		}
	}
	return out
}

// validate checks structural integrity before building the runtime.
func (b *Builder) validate() error {
	if b.err != nil {
		return b.err
	}
	for _, id := range b.order {
		c := b.components[id]
		if c.spout == nil && c.bolt == nil {
			return fmt.Errorf("topology: component %q has no implementation", id)
		}
		for _, s := range c.subs {
			src, ok := b.components[s.source]
			if !ok {
				return fmt.Errorf("topology: %q subscribes to unknown component %q", id, s.source)
			}
			if src == c {
				return fmt.Errorf("topology: %q subscribes to itself", id)
			}
			if s.grouping == Fields && len(s.fields) == 0 {
				return fmt.Errorf("topology: %q fields grouping on %q without fields", id, s.source)
			}
		}
	}
	return nil
}
