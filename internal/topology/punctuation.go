package topology

// Checkpoint-barrier punctuation. The runtime's window punctuation
// (e.g. the core pipeline's end-of-window tuples) already flows along
// every data edge; a checkpoint barrier is a new punctuation kind that
// rides the same tuples instead of introducing a second control
// stream: the producer annotates an existing punctuation tuple with a
// barrier id, and every stateful consumer that completes the
// punctuated unit snapshots its state for that id before moving on.
// Because the annotation travels with (and orders against) the window
// boundary itself, the snapshots of all tasks align on a consistent
// cut without any global pause.

// FieldCheckpoint is the reserved tuple field carrying the checkpoint
// barrier id on a punctuation tuple.
const FieldCheckpoint = "checkpoint!"

// WithCheckpoint annotates a punctuation tuple's values with a
// checkpoint barrier id and returns the same map.
func WithCheckpoint(values map[string]any, id int) map[string]any {
	values[FieldCheckpoint] = id
	return values
}

// CheckpointID extracts the checkpoint barrier id from a punctuation
// tuple; ok is false when the tuple carries no barrier.
func CheckpointID(t Tuple) (id int, ok bool) {
	v, present := t.Values[FieldCheckpoint]
	if !present {
		return 0, false
	}
	id, ok = v.(int)
	return id, ok
}

// Recoverer is implemented by bolts that restore from a checkpoint. A
// restored bolt cannot emit during Prepare (no collector exists yet),
// so both runtimes call Recover exactly once after Prepare and before
// the first Execute, handing the bolt its collector to re-emit
// whatever downstream state the checkpoint cut dropped (e.g. a
// routing-table broadcast or a window decision).
type Recoverer interface {
	Recover(c Collector)
}
