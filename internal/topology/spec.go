package topology

// The Spec types expose a topology's declarative structure so that an
// alternative runtime (the TCP cluster runtime in internal/cluster) can
// execute the same component graph with the same grouping semantics.

// SubscriptionSpec describes one inbound edge of a component.
type SubscriptionSpec struct {
	Source   string
	Stream   string
	Grouping GroupingKind
	Fields   []string
}

// ComponentSpec describes one declared component.
type ComponentSpec struct {
	ID          string
	Parallelism int
	IsSpout     bool
	Subs        []SubscriptionSpec
	// MaxPending is the resolved mailbox capacity for the component's
	// tasks (0 = unbounded). Components on a feedback cycle are always
	// 0 — see Builder.MaxPending.
	MaxPending int
}

// Spec returns the declared components in declaration order, after
// validation. The factories are retrieved separately via SpoutFactory
// and BoltFactory so that a hosting runtime instantiates only the tasks
// placed on it.
func (b *Builder) Spec() ([]ComponentSpec, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	out := make([]ComponentSpec, 0, len(b.order))
	capacities := b.resolvedCapacities()
	for _, id := range b.order {
		c := b.components[id]
		spec := ComponentSpec{
			ID:          id,
			Parallelism: c.parallelism,
			IsSpout:     c.spout != nil,
			MaxPending:  capacities[id],
		}
		for _, s := range c.subs {
			spec.Subs = append(spec.Subs, SubscriptionSpec{
				Source:   s.source,
				Stream:   s.stream,
				Grouping: s.grouping,
				Fields:   append([]string(nil), s.fields...),
			})
		}
		out = append(out, spec)
	}
	return out, nil
}

// SpoutFactory returns the spout factory of a component, or nil.
func (b *Builder) SpoutFactory(id string) SpoutFactory {
	if c, ok := b.components[id]; ok {
		return c.spout
	}
	return nil
}

// BoltFactory returns the bolt factory of a component, or nil.
func (b *Builder) BoltFactory(id string) BoltFactory {
	if c, ok := b.components[id]; ok {
		return c.bolt
	}
	return nil
}
