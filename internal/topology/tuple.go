// Package topology is a from-scratch stream-processing substrate
// modelled on Apache Storm's programming primitives, which the paper's
// system is built on: topologies of spouts and bolts connected by
// stream subscriptions with shuffle, fields, all and direct groupings
// (paper Sec. III-B). Components are executed as one goroutine per
// task; tuples flow through per-task unbounded mailboxes, preserving
// per-edge FIFO order.
//
// Unlike Storm's bounded transfer buffers, mailboxes are unbounded:
// the paper's topology contains a feedback edge (Assigner -> Merger for
// partition updates, Merger -> Assigner for new partition tables), and
// unbounded mailboxes make the cycle deadlock-free while keeping
// delivery order per edge. Shutdown uses quiescence detection: once all
// spouts are exhausted and no tuple is queued or executing, the
// topology stops.
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultStream is the stream id used when none is specified.
const DefaultStream = "default"

// Values is the named-value payload of a tuple, Storm's "list of named
// values".
type Values map[string]any

// Tuple is the unit of data flowing between components.
type Tuple struct {
	// Stream is the named stream the tuple was emitted on.
	Stream string
	// Source is the emitting component id.
	Source string
	// SourceTask is the emitting task index within the component.
	SourceTask int
	// Values carries the payload.
	Values Values

	// anchors/ackID implement guaranteed message processing (see
	// acking.go); unset when acking is disabled. Unexported: the TCP
	// cluster transport deliberately does not ship them.
	anchors []uint64
	ackID   uint64
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	keys := make([]string, 0, len(t.Values))
	for k := range t.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s[%d]{", t.Source, t.Stream, t.SourceTask)
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", k, t.Values[k])
	}
	b.WriteByte('}')
	return b.String()
}

// GroupingKind enumerates Storm's stream groupings used by the paper.
type GroupingKind int

const (
	// Shuffle distributes tuples evenly across the subscriber's tasks
	// (round-robin per producer).
	Shuffle GroupingKind = iota
	// Fields routes tuples with equal values of the grouping fields to
	// the same task.
	Fields
	// All replicates every tuple to every task of the subscriber.
	All
	// Direct lets the producer choose the receiving task explicitly
	// via Collector.EmitDirect.
	Direct
	// Global routes every tuple to task 0 of the subscriber (used for
	// the single-instance Merger).
	Global
)

// String names the grouping.
func (g GroupingKind) String() string {
	switch g {
	case Shuffle:
		return "shuffle"
	case Fields:
		return "fields"
	case All:
		return "all"
	case Direct:
		return "direct"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("grouping(%d)", int(g))
	}
}

// TaskContext identifies a running task and its surroundings.
type TaskContext struct {
	// Component is the component id from the builder.
	Component string
	// Task is this task's index in [0, NumTasks).
	Task int
	// NumTasks is the component's parallelism.
	NumTasks int
	// Parallelism maps component ids to task counts; runtimes outside
	// this package (the TCP cluster runtime) populate it directly.
	Parallelism map[string]int

	topo *runtime
}

// NumTasksOf reports the parallelism of another component (0 if
// unknown); the Assigner uses it to direct-route to Joiner tasks.
func (c *TaskContext) NumTasksOf(component string) int {
	if c.topo != nil {
		if comp, ok := c.topo.components[component]; ok {
			return comp.parallelism
		}
		return 0
	}
	return c.Parallelism[component]
}

// Spout is a stream source. NextTuple emits zero or more tuples and
// returns false when the source is exhausted; it is called repeatedly
// from the task's own goroutine.
type Spout interface {
	Open(ctx *TaskContext)
	NextTuple(c Collector) bool
	Close()
}

// Bolt processes tuples and optionally emits new ones.
type Bolt interface {
	Prepare(ctx *TaskContext)
	Execute(t Tuple, c Collector)
	Cleanup()
}

// Collector emits tuples into the topology, routing them to all
// subscribers of the (component, stream) pair according to their
// groupings.
type Collector interface {
	// Emit sends values on the default stream.
	Emit(v Values)
	// EmitTo sends values on a named stream.
	EmitTo(stream string, v Values)
	// EmitDirect sends values on a named stream to one specific task
	// of each direct-grouped subscriber.
	EmitDirect(stream string, task int, v Values)
}
