package topology

import (
	"sync"
	"time"
)

// Tick tuples, modelled on Storm's topology.tick.tuple.freq: a
// component can ask the runtime to inject periodic system tuples into
// every one of its tasks, which is how Storm topologies drive
// time-based behaviour (the paper's windows are time-based). Tick
// tuples arrive on TickStream with a "tick" sequence number and share
// the task's mailbox, so they are serialised with normal tuples.
//
// Tickers run while the topology's spouts are still producing and stop
// once the sources are exhausted, so a finite run still terminates.

// TickStream is the stream id tick tuples arrive on.
const TickStream = "__tick"

// TickSource is the pseudo component id carried by tick tuples.
const TickSource = "__system"

// TickEvery asks the runtime to deliver a tick tuple to every task of
// the component at the given interval.
func (d *BoltDecl) TickEvery(interval time.Duration) *BoltDecl {
	if interval <= 0 {
		d.b.err = errTickInterval(d.c.id)
		return d
	}
	d.c.tick = interval
	return d
}

type errTickInterval string

func (e errTickInterval) Error() string {
	return "topology: component " + string(e) + " tick interval must be positive"
}

// startTickers launches one ticker per ticking component; the returned
// stop function halts them and waits for the goroutines.
func (rt *runtime) startTickers() (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range rt.order {
		comp := rt.components[id]
		if comp.decl.tick <= 0 {
			continue
		}
		wg.Add(1)
		go func(comp *component, interval time.Duration) {
			defer wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			seq := 0
			for {
				select {
				case <-done:
					return
				case <-ticker.C:
					seq++
					for _, box := range comp.boxes {
						t := Tuple{
							Stream: TickStream,
							Source: TickSource,
							Values: Values{"tick": seq},
						}
						rt.pending.Add(1)
						if !box.put(t) {
							rt.pending.Add(-1)
						}
					}
				}
			}
		}(comp, comp.decl.tick)
	}
	return func() {
		close(done)
		wg.Wait()
	}
}
