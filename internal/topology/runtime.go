package topology

import (
	"fmt"

	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// mailbox is a FIFO queue with blocking receive and, when capacity is
// positive, blocking send: a producer delivering into a full mailbox
// waits until the consumer drains it, which propagates backpressure
// upstream hop by hop until the spout itself slows down. Capacity 0
// keeps the historical unbounded behaviour. Components on a feedback
// cycle (the paper's Assigner<->Merger loop) are always built
// unbounded — see Builder.MaxPending.
type mailbox struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []Tuple
	capacity int // 0 = unbounded
	peak     int // high-water mark of len(buf), for tests/metrics
	closed   bool

	// Optional live instruments (nil-safe no-ops when telemetry is
	// off): queue depth, and time producers spent blocked on a full
	// mailbox.
	depth       *telemetry.Gauge
	blockedNS   *telemetry.Counter
	blockedPuts *telemetry.Counter
}

func newMailbox(capacity int) *mailbox {
	m := &mailbox{capacity: capacity}
	m.notEmpty = sync.NewCond(&m.mu)
	m.notFull = sync.NewCond(&m.mu)
	return m
}

// put appends t, blocking while the mailbox is at capacity. It reports
// whether the tuple was accepted; false means the mailbox closed.
func (m *mailbox) put(t Tuple) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.capacity > 0 && len(m.buf) >= m.capacity && !m.closed {
		// Only a put that actually blocks pays for the clock reads.
		var start time.Time
		if m.blockedNS != nil {
			start = time.Now()
			m.blockedPuts.Inc()
		}
		for m.capacity > 0 && len(m.buf) >= m.capacity && !m.closed {
			m.notFull.Wait()
		}
		if m.blockedNS != nil {
			m.blockedNS.Add(int64(time.Since(start)))
		}
	}
	if m.closed {
		return false
	}
	m.buf = append(m.buf, t)
	if len(m.buf) > m.peak {
		m.peak = len(m.buf)
	}
	m.depth.SetInt(len(m.buf))
	m.notEmpty.Signal()
	return true
}

func (m *mailbox) get() (Tuple, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.buf) == 0 && !m.closed {
		m.notEmpty.Wait()
	}
	if len(m.buf) == 0 {
		return Tuple{}, false
	}
	t := m.buf[0]
	m.buf = m.buf[1:]
	m.depth.SetInt(len(m.buf))
	m.notFull.Signal()
	return t, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.notEmpty.Broadcast()
	m.notFull.Broadcast()
	m.mu.Unlock()
}

// peakLen reports the mailbox's high-water mark.
func (m *mailbox) peakLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// edge is a resolved subscription: the target tasks' mailboxes plus the
// grouping.
type edge struct {
	target   string
	grouping GroupingKind
	fields   []string
	boxes    []*mailbox
	rr       atomic.Uint64 // round-robin cursor for shuffle
}

type component struct {
	id          string
	parallelism int
	decl        *componentDecl
	boxes       []*mailbox
	// edges by stream id.
	edges map[string][]*edge

	// Live instruments, resolved once at Build (nil when telemetry is
	// off): executed/emitted tuple counters and execute latency.
	telExec *telemetry.Counter
	telEmit *telemetry.Counter
	telLat  *telemetry.Histogram
}

// Stats aggregates per-component counters after a run.
type Stats struct {
	// Emitted counts delivered tuple copies per emitting component: an
	// emission on a stream with no subscribers, or a copy dropped at a
	// closed mailbox, does not count, so Emitted matches what the
	// downstream components actually received.
	Emitted  map[string]int64
	Executed map[string]int64
	// SentCopies and ExecCopies aggregate the cluster transport's
	// per-copy accounting (copies routed into the data plane, and
	// copies executed or compensated after a drop). They are equal at a
	// clean termination and zero for in-process runs.
	SentCopies int64
	ExecCopies int64
	// Failures records panics recovered in task goroutines
	// ("component[task]: message"). A failed tuple is dropped and the
	// task keeps running; a failed spout stops emitting.
	Failures []string
	// Latency profiles each bolt component's Execute durations.
	Latency map[string]LatencySummary
}

// runtime executes a built topology.
type runtime struct {
	components map[string]*component
	order      []string

	pending  atomic.Int64 // tuples queued or executing
	emitted  map[string]*atomic.Int64
	executed map[string]*atomic.Int64

	acker   *acker // nil unless Builder.EnableAcking was called
	latency *latencyRecorder

	failMu   sync.Mutex
	failures []string
}

// recordFailure appends a recovered panic to the run's failure list.
func (rt *runtime) recordFailure(component string, task int, v any) {
	rt.failMu.Lock()
	rt.failures = append(rt.failures, fmt.Sprintf("%s[%d]: %v", component, task, v))
	rt.failMu.Unlock()
}

// Topology is a runnable instance built from a Builder.
type Topology struct {
	rt *runtime
}

// Build validates and assembles the topology.
func (b *Builder) Build() (*Topology, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	rt := &runtime{
		components: make(map[string]*component),
		order:      b.order,
		emitted:    make(map[string]*atomic.Int64),
		executed:   make(map[string]*atomic.Int64),
	}
	if b.ackTimeout > 0 {
		rt.acker = newAcker(b.ackTimeout)
	}
	rt.latency = newLatencyRecorder()
	capacities := b.resolvedCapacities()
	for _, id := range b.order {
		decl := b.components[id]
		comp := &component{
			id:          id,
			parallelism: decl.parallelism,
			decl:        decl,
			edges:       make(map[string][]*edge),
		}
		if reg := b.telemetry; reg != nil {
			comp.telExec = reg.Counter(telemetry.Name("topology_tuples_executed_total", "component", id))
			comp.telEmit = reg.Counter(telemetry.Name("topology_tuples_emitted_total", "component", id))
			comp.telLat = reg.Histogram(telemetry.Name("topology_execute_seconds", "component", id))
		}
		for i := 0; i < decl.parallelism; i++ {
			box := newMailbox(capacities[id])
			if reg := b.telemetry; reg != nil {
				box.depth = reg.Gauge(telemetry.Name("topology_mailbox_depth", "component", id, "task", fmt.Sprint(i)))
				box.blockedNS = reg.Counter(telemetry.Name("topology_backpressure_blocked_ns_total", "component", id))
				box.blockedPuts = reg.Counter(telemetry.Name("topology_backpressure_blocked_puts_total", "component", id))
			}
			comp.boxes = append(comp.boxes, box)
		}
		rt.components[id] = comp
		rt.emitted[id] = &atomic.Int64{}
		rt.executed[id] = &atomic.Int64{}
	}
	// Resolve subscriptions into outbound edges on the sources.
	for _, id := range b.order {
		decl := b.components[id]
		for _, s := range decl.subs {
			src := rt.components[s.source]
			tgt := rt.components[id]
			src.edges[s.stream] = append(src.edges[s.stream], &edge{
				target:   id,
				grouping: s.grouping,
				fields:   s.fields,
				boxes:    tgt.boxes,
			})
		}
	}
	return &Topology{rt: rt}, nil
}

// collector routes emissions of one task. roots holds the acking
// anchors of the tuple currently being executed (bolts) or of the
// reliable emission in progress (spouts); ackQ is set for reliable
// spout tasks.
type collector struct {
	rt   *runtime
	comp *component
	task int

	roots []uint64
	ackQ  *spoutAckQueue
}

func (c *collector) Emit(v Values) { c.EmitTo(DefaultStream, v) }

func (c *collector) EmitTo(stream string, v Values) {
	c.emitAnchored(stream, v, c.roots)
}

// EmitReliable implements ReliableCollector for spout tasks.
func (c *collector) EmitReliable(msgID uint64, v Values) {
	c.EmitReliableTo(DefaultStream, msgID, v)
}

// EmitReliableTo implements ReliableCollector for spout tasks.
func (c *collector) EmitReliableTo(stream string, msgID uint64, v Values) {
	if c.rt.acker == nil || c.ackQ == nil {
		c.EmitTo(stream, v)
		return
	}
	root := c.rt.acker.newRoot(c.ackQ, msgID)
	c.emitAnchored(stream, v, []uint64{root})
	// A stream without subscribers delivers no copies: the tuple tree
	// is vacuously complete and must ack immediately rather than stall
	// into a timeout Fail.
	c.rt.acker.completeIfEmpty(root)
}

func (c *collector) emitAnchored(stream string, v Values, roots []uint64) {
	t := Tuple{Stream: stream, Source: c.comp.id, SourceTask: c.task, Values: v}
	var delivered int64
	for _, e := range c.comp.edges[stream] {
		for _, i := range TargetTasks(e.grouping, e.fields, v, len(e.boxes), &e.rr) {
			if c.deliver(e.boxes[i], t, roots) {
				delivered++
			}
		}
	}
	c.rt.emitted[c.comp.id].Add(delivered)
	c.comp.telEmit.Add(delivered)
}

func (c *collector) EmitDirect(stream string, task int, v Values) {
	t := Tuple{Stream: stream, Source: c.comp.id, SourceTask: c.task, Values: v}
	var delivered int64
	for _, e := range c.comp.edges[stream] {
		if e.grouping != Direct {
			continue
		}
		if task < 0 || task >= len(e.boxes) {
			panic(fmt.Sprintf("topology: EmitDirect task %d out of range for %s (%d tasks)", task, e.target, len(e.boxes)))
		}
		if c.deliver(e.boxes[task], t, c.roots) {
			delivered++
		}
	}
	c.rt.emitted[c.comp.id].Add(delivered)
	c.comp.telEmit.Add(delivered)
}

// deliver routes one tuple copy into a mailbox (blocking while the
// target is at capacity) and reports whether the copy was accepted.
func (c *collector) deliver(box *mailbox, t Tuple, roots []uint64) bool {
	if a := c.rt.acker; a != nil && len(roots) > 0 {
		t.anchors = roots
		t.ackID = a.tupleID()
		a.anchor(roots, t.ackID)
	}
	c.rt.pending.Add(1)
	if !box.put(t) {
		c.rt.pending.Add(-1)
		if a := c.rt.acker; a != nil && t.ackID != 0 {
			// Delivery to a closed mailbox: balance the anchor so the
			// tree can still complete.
			a.ack(t.anchors, t.ackID)
		}
		return false
	}
	return true
}

// Run executes the topology to completion: spouts run until exhausted,
// then the runtime waits for quiescence (no queued or executing tuples)
// and shuts all tasks down. It returns the run statistics.
func (t *Topology) Run() Stats {
	rt := t.rt
	var spoutWG, boltWG sync.WaitGroup

	// Start bolts first so mailboxes drain from the beginning.
	for _, id := range rt.order {
		comp := rt.components[id]
		if comp.decl.bolt == nil {
			continue
		}
		for i := 0; i < comp.parallelism; i++ {
			boltWG.Add(1)
			go func(comp *component, task int) {
				defer boltWG.Done()
				bolt := comp.decl.bolt(task)
				ctx := &TaskContext{Component: comp.id, Task: task, NumTasks: comp.parallelism, topo: rt}
				bolt.Prepare(ctx)
				col := &collector{rt: rt, comp: comp, task: task}
				if rec, ok := bolt.(Recoverer); ok {
					rec.Recover(col)
				}
				for {
					tuple, ok := comp.boxes[task].get()
					if !ok {
						break
					}
					col.roots = tuple.anchors
					start := time.Now()
					execute(rt, comp, task, bolt, tuple, col)
					elapsed := time.Since(start)
					rt.latency.observe(comp.id, elapsed)
					comp.telLat.Observe(elapsed)
					comp.telExec.Inc()
					col.roots = nil
					if rt.acker != nil && tuple.ackID != 0 {
						rt.acker.ack(tuple.anchors, tuple.ackID)
					}
					rt.executed[comp.id].Add(1)
					rt.pending.Add(-1)
				}
				bolt.Cleanup()
			}(comp, i)
		}
	}

	for _, id := range rt.order {
		comp := rt.components[id]
		if comp.decl.spout == nil {
			continue
		}
		for i := 0; i < comp.parallelism; i++ {
			spoutWG.Add(1)
			go func(comp *component, task int) {
				defer spoutWG.Done()
				spout := comp.decl.spout(task)
				ctx := &TaskContext{Component: comp.id, Task: task, NumTasks: comp.parallelism, topo: rt}
				spout.Open(ctx)
				col := &collector{rt: rt, comp: comp, task: task}
				reliable, isReliable := spout.(ReliableSpout)
				if rt.acker != nil && isReliable {
					col.ackQ = &spoutAckQueue{}
					runReliableSpout(rt, comp, task, reliable, col)
				} else {
					for nextTuple(rt, comp, task, spout, col) {
					}
				}
				spout.Close()
			}(comp, i)
		}
	}

	stopTickers := rt.startTickers()
	spoutWG.Wait()
	stopTickers()
	// Quiescence: wait until no tuple is queued or executing. The
	// pending counter is incremented at delivery and decremented after
	// execution, so pending == 0 once spouts stopped means the DAG (and
	// any feedback cycle) has fully drained. Bounded mailboxes keep
	// this correct: a producer blocked in put has already counted the
	// copy it is delivering (and, for bolts, still holds the count of
	// the tuple it is executing), so pending stays positive until the
	// consumer drains the box and the producer finishes.
	for rt.pending.Load() != 0 {
		time.Sleep(200 * time.Microsecond)
	}
	for _, id := range rt.order {
		for _, box := range rt.components[id].boxes {
			box.close()
		}
	}
	boltWG.Wait()
	if rt.acker != nil {
		rt.acker.close()
	}

	stats := Stats{Emitted: make(map[string]int64), Executed: make(map[string]int64)}
	for id := range rt.components {
		stats.Emitted[id] = rt.emitted[id].Load()
		stats.Executed[id] = rt.executed[id].Load()
	}
	stats.Failures = rt.failures
	stats.Latency = rt.latency.summaries()
	return stats
}

// execute runs one bolt invocation, recovering panics so a poisoned
// tuple cannot take the topology down.
func execute(rt *runtime, comp *component, task int, bolt Bolt, tuple Tuple, col Collector) {
	defer func() {
		if r := recover(); r != nil {
			rt.recordFailure(comp.id, task, r)
		}
	}()
	bolt.Execute(tuple, col)
}

// runReliableSpout drives a reliable spout: Ack/Fail callbacks are
// delivered between NextTuple calls in the spout's own goroutine, and
// the task stays alive — even after the source is exhausted — until
// every emitted tuple tree has completed or failed.
func runReliableSpout(rt *runtime, comp *component, task int, spout ReliableSpout, col *collector) {
	exhausted := false
	for {
		outstanding, failed := col.ackQ.drain(spout)
		if failed > 0 {
			// A failed tuple tree may be replayed: give NextTuple
			// another chance even after the source reported exhaustion.
			exhausted = false
		}
		if exhausted {
			if outstanding == 0 {
				return
			}
			time.Sleep(500 * time.Microsecond)
			continue
		}
		if !nextTuple(rt, comp, task, spout, col) {
			exhausted = true
		}
	}
}

// nextTuple runs one spout invocation; a panicking spout stops
// emitting but the rest of the topology drains normally.
func nextTuple(rt *runtime, comp *component, task int, spout Spout, col Collector) (more bool) {
	defer func() {
		if r := recover(); r != nil {
			rt.recordFailure(comp.id, task, r)
			more = false
		}
	}()
	return spout.NextTuple(col)
}
