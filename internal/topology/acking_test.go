package topology

import (
	"sync"
	"testing"
	"time"
)

// reliableSpout emits n tuples with message ids 1..n and records
// acks/fails.
type reliableSpout struct {
	n, next int
	mu      sync.Mutex
	acked   map[uint64]int
	failed  map[uint64]int
	replay  []uint64
	// replayOnFail re-emits failed tuples once.
	replayOnFail bool
}

func newReliableSpout(n int, replay bool) *reliableSpout {
	return &reliableSpout{
		n:            n,
		acked:        make(map[uint64]int),
		failed:       make(map[uint64]int),
		replayOnFail: replay,
	}
}

func (s *reliableSpout) Open(*TaskContext) {}
func (s *reliableSpout) Close()            {}

func (s *reliableSpout) NextTuple(c Collector) bool {
	rc, ok := c.(ReliableCollector)
	if !ok {
		panic("collector is not reliable")
	}
	s.mu.Lock()
	if len(s.replay) > 0 {
		id := s.replay[0]
		s.replay = s.replay[1:]
		s.mu.Unlock()
		rc.EmitReliable(id, Values{"v": int(id)})
		return true
	}
	s.mu.Unlock()
	if s.next >= s.n {
		return false
	}
	s.next++
	rc.EmitReliable(uint64(s.next), Values{"v": s.next})
	return true
}

func (s *reliableSpout) Ack(msgID uint64) {
	s.mu.Lock()
	s.acked[msgID]++
	s.mu.Unlock()
}

func (s *reliableSpout) Fail(msgID uint64) {
	s.mu.Lock()
	s.failed[msgID]++
	if s.replayOnFail && s.failed[msgID] == 1 {
		s.replay = append(s.replay, msgID)
	}
	s.mu.Unlock()
}

func (s *reliableSpout) counts() (acked, failed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.acked), len(s.failed)
}

func TestAckingAllTuplesAcked(t *testing.T) {
	spout := newReliableSpout(50, false)
	b := NewBuilder()
	b.EnableAcking(5 * time.Second)
	b.SetSpout("src", func(int) Spout { return spout }, 1)
	// Two-stage chain: the tuple tree spans both bolts.
	b.SetBolt("mid", func(int) Bolt {
		return boltFunc(func(tp Tuple, c Collector) { c.Emit(tp.Values) })
	}, 2).ShuffleGrouping("src")
	sink, _, _ := newSinkFactory()
	b.SetBolt("sink", sink, 2).ShuffleGrouping("mid")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	acked, failed := spout.counts()
	if acked != 50 || failed != 0 {
		t.Errorf("acked=%d failed=%d, want 50/0", acked, failed)
	}
}

func TestAckingFansOutAndCompletes(t *testing.T) {
	spout := newReliableSpout(20, false)
	b := NewBuilder()
	b.EnableAcking(5 * time.Second)
	b.SetSpout("src", func(int) Spout { return spout }, 1)
	// All-grouping: each spout tuple fans out to 3 copies, each copy
	// emits 2 more tuples downstream — a 9-node tuple tree.
	b.SetBolt("fan", func(int) Bolt {
		return boltFunc(func(tp Tuple, c Collector) {
			c.Emit(tp.Values)
			c.Emit(tp.Values)
		})
	}, 3).AllGrouping("src")
	sink, _, _ := newSinkFactory()
	b.SetBolt("sink", sink, 2).ShuffleGrouping("fan")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	acked, failed := spout.counts()
	if acked != 20 || failed != 0 {
		t.Errorf("acked=%d failed=%d, want 20/0", acked, failed)
	}
}

// stallBolt drops one specific tuple's processing time past the acking
// timeout by sleeping; the tree must fail and the spout may replay it.
func TestAckingTimeoutFailsAndReplays(t *testing.T) {
	spout := newReliableSpout(5, true)
	var slept sync.Once
	b := NewBuilder()
	b.EnableAcking(400 * time.Millisecond)
	b.SetSpout("src", func(int) Spout { return spout }, 1)
	b.SetBolt("slow", func(int) Bolt {
		return boltFunc(func(tp Tuple, c Collector) {
			if tp.Values["v"].(int) == 3 {
				// Stall only the first delivery of tuple 3, long
				// enough that everything queued behind it times out;
				// the replays emitted around the expiry are processed
				// shortly after the stall ends, well within a fresh
				// timeout, so they succeed.
				slept.Do(func() { time.Sleep(700 * time.Millisecond) })
			}
			c.Emit(tp.Values)
		})
	}, 1).ShuffleGrouping("src")
	sink, _, _ := newSinkFactory()
	b.SetBolt("sink", sink, 1).ShuffleGrouping("slow")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	spout.mu.Lock()
	defer spout.mu.Unlock()
	if spout.failed[3] == 0 {
		t.Error("tuple 3 did not fail despite exceeding the timeout")
	}
	if spout.acked[3] == 0 {
		t.Error("replayed tuple 3 was not acked")
	}
	for id := uint64(1); id <= 5; id++ {
		if id != 3 && spout.acked[id] == 0 {
			t.Errorf("tuple %d not acked", id)
		}
	}
}

func TestAckingDisabledIsTransparent(t *testing.T) {
	// Without EnableAcking, a reliable spout still runs; EmitReliable
	// degrades to a plain emit and no callbacks fire.
	spout := newReliableSpout(10, false)
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return spout }, 1)
	sink, mu, got := newSinkFactory()
	b.SetBolt("sink", sink, 1).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	mu.Lock()
	n := len(got[0])
	mu.Unlock()
	if n != 10 {
		t.Errorf("delivered %d tuples, want 10", n)
	}
	acked, failed := spout.counts()
	if acked != 0 || failed != 0 {
		t.Errorf("callbacks fired without acking enabled: %d/%d", acked, failed)
	}
}

func TestAckingUnreliableSpoutCoexists(t *testing.T) {
	// An acking-enabled topology still runs plain spouts.
	b := NewBuilder()
	b.EnableAcking(time.Second)
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 10} }, 1)
	sink, mu, got := newSinkFactory()
	b.SetBolt("sink", sink, 1).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	mu.Lock()
	defer mu.Unlock()
	if len(got[0]) != 10 {
		t.Errorf("delivered %d, want 10", len(got[0]))
	}
}

func TestEnableAckingDefaultTimeout(t *testing.T) {
	b := NewBuilder()
	b.EnableAcking(0)
	if b.ackTimeout != 30*time.Second {
		t.Errorf("default timeout = %v", b.ackTimeout)
	}
}

// noSubSpout emits one reliable tuple on a stream nobody subscribes to.
type noSubSpout struct {
	fired bool
	mu    sync.Mutex
	acked []uint64
}

func (s *noSubSpout) Open(*TaskContext) {}
func (s *noSubSpout) Close()            {}
func (s *noSubSpout) NextTuple(c Collector) bool {
	if s.fired {
		return false
	}
	s.fired = true
	c.(ReliableCollector).EmitReliableTo("orphan", 1, Values{"v": 1})
	return true
}
func (s *noSubSpout) Ack(id uint64) {
	s.mu.Lock()
	s.acked = append(s.acked, id)
	s.mu.Unlock()
}
func (s *noSubSpout) Fail(uint64) {}

func TestAckingNoSubscribersCompletesImmediately(t *testing.T) {
	spout := &noSubSpout{}
	b := NewBuilder()
	b.EnableAcking(10 * time.Second) // run must not wait for this
	b.SetSpout("src", func(int) Spout { return spout }, 1)
	// A bolt must exist for the builder, but it subscribes elsewhere.
	b.SetBolt("sink", func(int) Bolt { return boltFunc(func(Tuple, Collector) {}) }, 1).
		ShuffleGrouping("src") // default stream, not "orphan"
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { topo.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run stalled on an unsubscribed reliable emission")
	}
	spout.mu.Lock()
	defer spout.mu.Unlock()
	if len(spout.acked) != 1 || spout.acked[0] != 1 {
		t.Errorf("acked = %v, want [1]", spout.acked)
	}
}
