package topology

import (
	"sync"
	"testing"
)

func TestCheckpointAnnotationRoundTrip(t *testing.T) {
	values := Values{"window": 3}
	if _, ok := CheckpointID(Tuple{Values: values}); ok {
		t.Fatal("unannotated tuple must carry no barrier")
	}
	WithCheckpoint(values, 3)
	id, ok := CheckpointID(Tuple{Values: values})
	if !ok || id != 3 {
		t.Fatalf("CheckpointID = %d/%v, want 3/true", id, ok)
	}
	// The annotation must not disturb the payload fields.
	if values["window"] != 3 {
		t.Error("payload field clobbered by the annotation")
	}
}

// barrierSpout emits n annotated punctuation tuples.
type barrierSpout struct{ n, next int }

func (s *barrierSpout) Open(*TaskContext) {}
func (s *barrierSpout) Close()            {}
func (s *barrierSpout) NextTuple(c Collector) bool {
	if s.next >= s.n {
		return false
	}
	c.Emit(WithCheckpoint(Values{"window": s.next}, s.next))
	s.next++
	return s.next < s.n
}

// recoveringBolt records the order of Recover relative to Execute and
// forwards what it sees.
type recoveringBolt struct {
	mu        *sync.Mutex
	recovered *bool
	barriers  *[]int
	fail      func(string)
}

func (b *recoveringBolt) Prepare(*TaskContext) {}
func (b *recoveringBolt) Cleanup()             {}
func (b *recoveringBolt) Recover(c Collector) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(*b.barriers) > 0 {
		b.fail("Recover called after Execute")
	}
	*b.recovered = true
	// Re-emission during Recover must reach downstream consumers.
	c.Emit(Values{"v": -1})
}
func (b *recoveringBolt) Execute(t Tuple, c Collector) {
	id, ok := CheckpointID(t)
	if !ok {
		b.fail("barrier annotation lost in transit")
		return
	}
	b.mu.Lock()
	*b.barriers = append(*b.barriers, id)
	b.mu.Unlock()
	c.Emit(Values{"v": id})
}

// TestRecovererRunsBeforeFirstExecute: the runtime must call Recover
// exactly once, after Prepare and before any Execute, and the
// collector it hands out must deliver downstream.
func TestRecovererRunsBeforeFirstExecute(t *testing.T) {
	mu := &sync.Mutex{}
	recovered := false
	var barriers []int
	fail := func(msg string) { t.Error(msg) }

	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &barrierSpout{n: 4} }, 1)
	b.SetBolt("mid", func(int) Bolt {
		return &recoveringBolt{mu: mu, recovered: &recovered, barriers: &barriers, fail: fail}
	}, 1).AllGrouping("src")
	sink, smu, got := newSinkFactory()
	b.SetBolt("sink", sink, 1).AllGrouping("mid")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()

	mu.Lock()
	defer mu.Unlock()
	if !recovered {
		t.Fatal("Recover never called")
	}
	if len(barriers) != 4 {
		t.Fatalf("barriers executed = %v, want 4", barriers)
	}
	smu.Lock()
	defer smu.Unlock()
	// 4 forwarded barriers + 1 re-emission from Recover.
	if n := len(got[0]); n != 5 {
		t.Errorf("sink received %d tuples, want 5 (Recover re-emission included)", n)
	}
}
