package topology

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// TargetTasks computes the receiving task indexes of one emission for a
// non-direct grouping. The round-robin cursor rr is shared per edge for
// shuffle grouping. Both the in-process runtime and the TCP cluster
// runtime route through this function, so grouping semantics cannot
// diverge.
func TargetTasks(g GroupingKind, fields []string, v Values, nTasks int, rr *atomic.Uint64) []int {
	switch g {
	case Shuffle:
		// Reduce in uint64 before narrowing: converting the raw cursor
		// to int first goes negative once it exceeds MaxInt64, and a
		// negative modulus would panic the task with a bad index.
		return []int{int((rr.Add(1) - 1) % uint64(nTasks))}
	case Fields:
		return []int{FieldsHash(fields, v) % nTasks}
	case All:
		out := make([]int, nTasks)
		for i := range out {
			out[i] = i
		}
		return out
	case Global:
		return []int{0}
	case Direct:
		return nil // direct targets come from EmitDirect only
	default:
		panic(fmt.Sprintf("topology: unknown grouping %v", g))
	}
}

// FieldsHash hashes the grouping fields of a tuple deterministically.
func FieldsHash(fields []string, v Values) int {
	h := fnv.New64a()
	for _, f := range fields {
		fmt.Fprintf(h, "%v\x00", v[f])
	}
	return int(h.Sum64() % uint64(1<<31))
}
