package topology

// Frontiered is implemented by spouts that can report whether they sit
// on a window frontier — the instant between emitting one window's
// punctuation and the next window's first tuple. The cluster runtime's
// elastic rescale pauses spouts only at a frontier, so every stateful
// bolt downstream is exactly at its post-window state (the state its
// Snapshotter was designed to capture) when task state is streamed to
// a new home.
//
// A spout that does not implement Frontiered is paused between any two
// NextTuple calls and reports no frontier; rescale still works, but the
// migrated snapshots then rely on the spout having no notion of
// windows at all.
type Frontiered interface {
	// AtFrontier reports whether the spout is between windows right
	// now: the next NextTuple call would begin a new window.
	AtFrontier() bool
	// Frontier is the index of the last fully emitted window (-1 before
	// the first window completes). Only meaningful while AtFrontier.
	Frontier() int
}
