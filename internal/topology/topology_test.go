package topology

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// intSpout emits n integers then stops.
type intSpout struct {
	n, next int
	stream  string
}

func (s *intSpout) Open(*TaskContext) {}
func (s *intSpout) Close()            {}
func (s *intSpout) NextTuple(c Collector) bool {
	if s.next >= s.n {
		return false
	}
	stream := s.stream
	if stream == "" {
		stream = DefaultStream
	}
	c.EmitTo(stream, Values{"v": s.next})
	s.next++
	return true
}

// sinkBolt records which task received which values.
type sinkBolt struct {
	mu   *sync.Mutex
	got  map[int][]int // task -> values
	task int
}

func newSinkFactory() (BoltFactory, *sync.Mutex, map[int][]int) {
	mu := &sync.Mutex{}
	got := make(map[int][]int)
	return func(task int) Bolt {
		return &sinkBolt{mu: mu, got: got, task: task}
	}, mu, got
}

func (b *sinkBolt) Prepare(*TaskContext) {}
func (b *sinkBolt) Cleanup()             {}
func (b *sinkBolt) Execute(t Tuple, _ Collector) {
	b.mu.Lock()
	b.got[b.task] = append(b.got[b.task], t.Values["v"].(int))
	b.mu.Unlock()
}

func TestShuffleGroupingEvenAndLossless(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 100} }, 1)
	sink, mu, got := newSinkFactory()
	b.SetBolt("sink", sink, 4).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for task, vs := range got {
		total += len(vs)
		// Round-robin: exactly 25 each.
		if len(vs) != 25 {
			t.Errorf("task %d received %d tuples, want 25", task, len(vs))
		}
	}
	if total != 100 {
		t.Errorf("total = %d, want 100 (no loss, no duplication)", total)
	}
	if stats.Executed["sink"] != 100 {
		t.Errorf("stats.Executed = %d", stats.Executed["sink"])
	}
}

func TestFieldsGroupingConsistent(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 200} }, 1)
	mu := &sync.Mutex{}
	byKey := make(map[int]map[int]bool) // key -> set of receiving tasks
	b.SetBolt("sink", func(task int) Bolt {
		return boltFunc(func(tp Tuple, _ Collector) {
			v := tp.Values["v"].(int)
			key := v % 10
			mu.Lock()
			if byKey[key] == nil {
				byKey[key] = make(map[int]bool)
			}
			byKey[key][task] = true
			mu.Unlock()
		})
	}, 5).FieldsGroupingOn("src", DefaultStream, "key")
	// The spout emits field "v"; wrap it to add a "key" field instead:
	// simpler to re-declare the spout emitting both fields.
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = topo
	// Rebuild with a proper key field.
	b2 := NewBuilder()
	b2.SetSpout("src", func(int) Spout { return &keyedSpout{n: 200} }, 1)
	b2.SetBolt("sink", func(task int) Bolt {
		return boltFunc(func(tp Tuple, _ Collector) {
			key := tp.Values["key"].(int)
			mu.Lock()
			if byKey[key] == nil {
				byKey[key] = make(map[int]bool)
			}
			byKey[key][task] = true
			mu.Unlock()
		})
	}, 5).FieldsGrouping("src", "key")
	topo2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo2.Run()
	mu.Lock()
	defer mu.Unlock()
	for key, tasks := range byKey {
		if len(tasks) != 1 {
			t.Errorf("key %d reached %d tasks; fields grouping must be consistent", key, len(tasks))
		}
	}
	if len(byKey) != 10 {
		t.Errorf("saw %d keys, want 10", len(byKey))
	}
}

type keyedSpout struct{ n, next int }

func (s *keyedSpout) Open(*TaskContext) {}
func (s *keyedSpout) Close()            {}
func (s *keyedSpout) NextTuple(c Collector) bool {
	if s.next >= s.n {
		return false
	}
	c.Emit(Values{"key": s.next % 10, "v": s.next})
	s.next++
	return true
}

// boltFunc adapts a function to the Bolt interface.
type boltFunc func(t Tuple, c Collector)

func (f boltFunc) Prepare(*TaskContext)         {}
func (f boltFunc) Cleanup()                     {}
func (f boltFunc) Execute(t Tuple, c Collector) { f(t, c) }

func TestAllGroupingReplicates(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 10} }, 1)
	sink, mu, got := newSinkFactory()
	b.SetBolt("sink", sink, 3).AllGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	mu.Lock()
	defer mu.Unlock()
	for task := 0; task < 3; task++ {
		if len(got[task]) != 10 {
			t.Errorf("task %d received %d tuples, want 10 (all grouping)", task, len(got[task]))
		}
	}
}

func TestGlobalGroupingSingleTask(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 20} }, 1)
	sink, mu, got := newSinkFactory()
	b.SetBolt("sink", sink, 4).GlobalGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	mu.Lock()
	defer mu.Unlock()
	if len(got[0]) != 20 {
		t.Errorf("task 0 received %d, want 20", len(got[0]))
	}
	for task := 1; task < 4; task++ {
		if len(got[task]) != 0 {
			t.Errorf("task %d received %d, want 0", task, len(got[task]))
		}
	}
}

// directSpout emits each value directly to task v % 3.
type directSpout struct{ n, next int }

func (s *directSpout) Open(*TaskContext) {}
func (s *directSpout) Close()            {}
func (s *directSpout) NextTuple(c Collector) bool {
	if s.next >= s.n {
		return false
	}
	c.EmitDirect(DefaultStream, s.next%3, Values{"v": s.next})
	s.next++
	return true
}

func TestDirectGrouping(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &directSpout{n: 30} }, 1)
	sink, mu, got := newSinkFactory()
	b.SetBolt("sink", sink, 3).DirectGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	mu.Lock()
	defer mu.Unlock()
	for task := 0; task < 3; task++ {
		if len(got[task]) != 10 {
			t.Errorf("task %d received %d, want 10", task, len(got[task]))
		}
		for _, v := range got[task] {
			if v%3 != task {
				t.Errorf("task %d received v=%d", task, v)
			}
		}
	}
}

func TestMultiStageChain(t *testing.T) {
	// src -> double -> sink; double multiplies by 2.
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 50} }, 1)
	b.SetBolt("double", func(int) Bolt {
		return boltFunc(func(t Tuple, c Collector) {
			c.Emit(Values{"v": t.Values["v"].(int) * 2})
		})
	}, 2).ShuffleGrouping("src")
	sink, mu, got := newSinkFactory()
	b.SetBolt("sink", sink, 1).ShuffleGrouping("double")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	mu.Lock()
	defer mu.Unlock()
	if len(got[0]) != 50 {
		t.Fatalf("sink received %d, want 50", len(got[0]))
	}
	sum := 0
	for _, v := range got[0] {
		sum += v
	}
	if want := 2 * (49 * 50 / 2); sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

// TestFeedbackCycleTerminates exercises the Assigner<->Merger shape: a
// bolt that occasionally sends a tuple back upstream must not deadlock
// or run forever.
func TestFeedbackCycleTerminates(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 40} }, 1)
	// "merger" receives feedback and emits a control tuple downstream.
	b.SetBolt("merger", func(int) Bolt {
		return boltFunc(func(tp Tuple, c Collector) {
			if tp.Source == "assigner" {
				c.EmitTo("control", Values{"v": -1})
			}
		})
	}, 1).ShuffleGrouping("assigner", "feedback")
	mu := &sync.Mutex{}
	var controls, data int
	b.SetBolt("assigner", func(int) Bolt {
		return boltFunc(func(tp Tuple, c Collector) {
			mu.Lock()
			defer mu.Unlock()
			if tp.Stream == "control" {
				controls++
				return
			}
			data++
			if v := tp.Values["v"].(int); v%10 == 0 {
				c.EmitTo("feedback", Values{"v": v})
			}
		})
	}, 2).ShuffleGrouping("src").AllGrouping("merger", "control")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run() // must terminate
	mu.Lock()
	defer mu.Unlock()
	if data != 40 {
		t.Errorf("data tuples = %d, want 40", data)
	}
	if controls != 4*2 { // 4 feedback tuples, control all-grouped to 2 tasks
		t.Errorf("control tuples = %d, want 8", controls)
	}
}

func TestBuilderValidation(t *testing.T) {
	cases := []func(*Builder){
		func(b *Builder) { b.SetSpout("s", func(int) Spout { return &intSpout{} }, 0) },
		func(b *Builder) {
			b.SetSpout("s", func(int) Spout { return &intSpout{} }, 1)
			b.SetSpout("s", func(int) Spout { return &intSpout{} }, 1)
		},
		func(b *Builder) {
			b.SetSpout("s", func(int) Spout { return &intSpout{} }, 1)
			b.SetBolt("b", func(int) Bolt { return boltFunc(func(Tuple, Collector) {}) }, 1).ShuffleGrouping("nope")
		},
		func(b *Builder) {
			b.SetSpout("s", func(int) Spout { return &intSpout{} }, 1)
			b.SetBolt("b", func(int) Bolt { return boltFunc(func(Tuple, Collector) {}) }, 1).FieldsGrouping("s")
		},
	}
	for i, setup := range cases {
		b := NewBuilder()
		setup(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: Build succeeded, want error", i)
		}
	}
}

func TestTaskContextNumTasksOf(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 1} }, 1)
	var observed int
	mu := &sync.Mutex{}
	b.SetBolt("sink", func(task int) Bolt {
		return &ctxBolt{mu: mu, observed: &observed}
	}, 3).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	mu.Lock()
	defer mu.Unlock()
	if observed != 3 {
		t.Errorf("NumTasksOf(sink) = %d, want 3", observed)
	}
}

type ctxBolt struct {
	mu       *sync.Mutex
	observed *int
}

func (b *ctxBolt) Prepare(ctx *TaskContext) {
	b.mu.Lock()
	*b.observed = ctx.NumTasksOf("sink")
	b.mu.Unlock()
}
func (b *ctxBolt) Cleanup()                 {}
func (b *ctxBolt) Execute(Tuple, Collector) {}

func TestTupleString(t *testing.T) {
	tp := Tuple{Stream: "s", Source: "c", Values: Values{"b": 2, "a": 1}}
	s := tp.String()
	if s != "c/s[0]{a=1, b=2}" {
		t.Errorf("String = %q", s)
	}
}

func TestGroupingKindString(t *testing.T) {
	names := map[GroupingKind]string{
		Shuffle: "shuffle", Fields: "fields", All: "all", Direct: "direct", Global: "global",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %s", int(k), k.String())
		}
	}
	if GroupingKind(99).String() == "" {
		t.Error("unknown grouping must still render")
	}
}

func TestSpoutParallelism(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(task int) Spout { return &intSpout{n: 10} }, 3)
	sink, mu, got := newSinkFactory()
	b.SetBolt("sink", sink, 1).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	mu.Lock()
	defer mu.Unlock()
	if len(got[0]) != 30 {
		t.Errorf("received %d, want 30 (3 spout tasks x 10)", len(got[0]))
	}
}

func TestEmitDirectOutOfRangeIsIsolated(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &badDirectSpout{} }, 1)
	sink, _, _ := newSinkFactory()
	b.SetBolt("sink", sink, 2).DirectGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run() // must not crash the process
	if len(stats.Failures) != 1 {
		t.Fatalf("Failures = %v, want exactly one recorded panic", stats.Failures)
	}
}

// panicBolt fails on one poisoned value; the rest of the stream must
// still be processed.
func TestBoltPanicIsolation(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 10} }, 1)
	mu := &sync.Mutex{}
	processed := 0
	b.SetBolt("sink", func(int) Bolt {
		return boltFunc(func(tp Tuple, _ Collector) {
			if tp.Values["v"].(int) == 5 {
				panic("poisoned tuple")
			}
			mu.Lock()
			processed++
			mu.Unlock()
		})
	}, 1).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	mu.Lock()
	defer mu.Unlock()
	if processed != 9 {
		t.Errorf("processed = %d, want 9", processed)
	}
	if len(stats.Failures) != 1 {
		t.Errorf("Failures = %v", stats.Failures)
	}
}

type badDirectSpout struct{ fired bool }

func (s *badDirectSpout) Open(*TaskContext) {}
func (s *badDirectSpout) Close()            {}
func (s *badDirectSpout) NextTuple(c Collector) bool {
	if s.fired {
		return false
	}
	s.fired = true
	c.EmitDirect(DefaultStream, 7, Values{"v": 1})
	return true
}

func TestStatsCounters(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 5} }, 1)
	b.SetBolt("mid", func(int) Bolt {
		return boltFunc(func(t Tuple, c Collector) { c.Emit(t.Values) })
	}, 1).ShuffleGrouping("src")
	sink, _, _ := newSinkFactory()
	b.SetBolt("sink", sink, 1).ShuffleGrouping("mid")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	if stats.Emitted["src"] != 5 || stats.Executed["mid"] != 5 || stats.Executed["sink"] != 5 {
		t.Errorf("stats = %+v", stats)
	}
}

func ExampleBuilder() {
	b := NewBuilder()
	b.SetSpout("numbers", func(int) Spout { return &intSpout{n: 3} }, 1)
	b.SetBolt("print", func(int) Bolt {
		return boltFunc(func(t Tuple, _ Collector) {
			fmt.Println(t.Values["v"])
		})
	}, 1).ShuffleGrouping("numbers")
	topo, _ := b.Build()
	topo.Run()
	// Output:
	// 0
	// 1
	// 2
}

func TestStatsLatency(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 40} }, 1)
	sink, _, _ := newSinkFactory()
	b.SetBolt("sink", sink, 2).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	lat, ok := stats.Latency["sink"]
	if !ok {
		t.Fatal("no latency summary for sink")
	}
	if lat.Count != 40 {
		t.Errorf("latency count = %d, want 40", lat.Count)
	}
	if lat.Avg < 0 || lat.Max < lat.P50 {
		t.Errorf("inconsistent summary: %+v", lat)
	}
	if lat.String() == "" {
		t.Error("empty summary string")
	}
}

func TestTickTuplesDelivered(t *testing.T) {
	b := NewBuilder()
	// A slow spout keeps the topology alive long enough for ticks.
	b.SetSpout("src", func(int) Spout { return &slowSpout{n: 4, delay: 30 * time.Millisecond} }, 1)
	mu := &sync.Mutex{}
	ticks, data := 0, 0
	b.SetBolt("sink", func(int) Bolt {
		return boltFunc(func(tp Tuple, _ Collector) {
			mu.Lock()
			if tp.Stream == TickStream {
				if tp.Source != TickSource {
					t.Errorf("tick source = %s", tp.Source)
				}
				ticks++
			} else {
				data++
			}
			mu.Unlock()
		})
	}, 2).ShuffleGrouping("src").TickEvery(10 * time.Millisecond)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	mu.Lock()
	defer mu.Unlock()
	if data != 4 {
		t.Errorf("data tuples = %d", data)
	}
	// ~120ms of runtime at 10ms ticks to 2 tasks: expect several.
	if ticks < 4 {
		t.Errorf("ticks = %d, want several", ticks)
	}
}

type slowSpout struct {
	n, next int
	delay   time.Duration
}

func (s *slowSpout) Open(*TaskContext) {}
func (s *slowSpout) Close()            {}
func (s *slowSpout) NextTuple(c Collector) bool {
	if s.next >= s.n {
		return false
	}
	time.Sleep(s.delay)
	c.Emit(Values{"v": s.next})
	s.next++
	return true
}

func TestTickIntervalValidation(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 1} }, 1)
	sink, _, _ := newSinkFactory()
	b.SetBolt("sink", sink, 1).ShuffleGrouping("src").TickEvery(0)
	if _, err := b.Build(); err == nil {
		t.Error("zero tick interval must fail the build")
	}
}
