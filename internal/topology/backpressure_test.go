package topology

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBoundedMailboxBackpressure drives a spout that emits far faster
// than the sink drains (the sink sleeps per tuple) through a capacity
// of 64: the resident queue must never exceed the bound, yet the run
// still terminates with exact accounting.
func TestBoundedMailboxBackpressure(t *testing.T) {
	const n, capacity = 2000, 64
	b := NewBuilder()
	b.MaxPending(capacity)
	b.SetSpout("src", func(int) Spout { return &intSpout{n: n} }, 1)
	var executed atomic.Int64
	b.SetBolt("sink", func(int) Bolt {
		return boltFunc(func(Tuple, Collector) {
			// Drain ~10x slower than the spout emits.
			time.Sleep(20 * time.Microsecond)
			executed.Add(1)
		})
	}, 2).ShuffleGrouping("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	if got := executed.Load(); got != n {
		t.Errorf("executed = %d, want %d", got, n)
	}
	if stats.Emitted["src"] != n || stats.Executed["sink"] != n {
		t.Errorf("stats = %+v", stats)
	}
	for _, box := range topo.rt.components["sink"].boxes {
		if peak := box.peakLen(); peak > capacity {
			t.Errorf("peak queue length %d exceeds capacity %d", peak, capacity)
		}
	}
}

// pingBolt forwards each tuple to the feedback stream until its hop
// budget is spent, exercising a bounded topology with a control cycle.
type pingBolt struct{ stream string }

func (p pingBolt) Prepare(*TaskContext) {}
func (p pingBolt) Cleanup()             {}
func (p pingBolt) Execute(t Tuple, c Collector) {
	hops := t.Values["hops"].(int)
	if hops <= 0 {
		return
	}
	c.EmitTo(p.stream, Values{"hops": hops - 1})
}

// TestCycleComponentsStayUnbounded: MaxPending must not bound the
// mailboxes of components on a feedback cycle — a bounded cycle could
// deadlock against itself — while acyclic components keep the bound.
func TestCycleComponentsStayUnbounded(t *testing.T) {
	b := NewBuilder()
	b.MaxPending(1)
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 50} }, 1)
	// ping <-> pong form the control cycle; sink hangs off ping.
	b.SetBolt("ping", func(int) Bolt { return pingBolt{stream: "fwd"} }, 1).
		ShuffleGrouping("src").
		ShuffleGrouping("pong", "back")
	b.SetBolt("pong", func(int) Bolt { return pingBolt{stream: "back"} }, 1).
		ShuffleGrouping("ping", "fwd")
	b.SetBolt("sink", func(int) Bolt { return boltFunc(func(Tuple, Collector) {}) }, 1).
		ShuffleGrouping("src")

	spec, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"src": 1, "ping": 0, "pong": 0, "sink": 1}
	for _, comp := range spec {
		if comp.MaxPending != want[comp.ID] {
			t.Errorf("MaxPending[%s] = %d, want %d", comp.ID, comp.MaxPending, want[comp.ID])
		}
	}

	// The run must terminate: tuples bounce ping->pong->ping until the
	// hop budget is spent. With a bounded cycle this would deadlock.
	spoutVals := func() *Builder {
		b2 := NewBuilder()
		b2.MaxPending(1)
		b2.SetSpout("src", func(int) Spout { return &hopSpout{n: 50, hops: 6} }, 1)
		b2.SetBolt("ping", func(int) Bolt { return pingBolt{stream: "fwd"} }, 1).
			ShuffleGrouping("src").
			ShuffleGrouping("pong", "back")
		b2.SetBolt("pong", func(int) Bolt { return pingBolt{stream: "back"} }, 1).
			ShuffleGrouping("ping", "fwd")
		return b2
	}
	topo, err := spoutVals().Build()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Stats, 1)
	go func() { done <- topo.Run() }()
	select {
	case stats := <-done:
		if len(stats.Failures) != 0 {
			t.Errorf("failures: %v", stats.Failures)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cyclic topology with MaxPending(1) did not terminate")
	}
}

// hopSpout emits n tuples carrying a feedback hop budget.
type hopSpout struct{ n, next, hops int }

func (s *hopSpout) Open(*TaskContext) {}
func (s *hopSpout) Close()            {}
func (s *hopSpout) NextTuple(c Collector) bool {
	if s.next >= s.n {
		return false
	}
	c.Emit(Values{"hops": s.hops})
	s.next++
	return true
}

// TestBoltMaxPendingOverride: a per-component override beats the
// builder default.
func TestBoltMaxPendingOverride(t *testing.T) {
	b := NewBuilder()
	b.MaxPending(8)
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 1} }, 1)
	sink, _, _ := newSinkFactory()
	b.SetBolt("wide", sink, 1).ShuffleGrouping("src").MaxPending(0)
	b.SetBolt("narrow", sink, 1).ShuffleGrouping("src").MaxPending(2)
	spec, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"src": 8, "wide": 0, "narrow": 2}
	for _, comp := range spec {
		if comp.MaxPending != want[comp.ID] {
			t.Errorf("MaxPending[%s] = %d, want %d", comp.ID, comp.MaxPending, want[comp.ID])
		}
	}
	if err := NewBuilder().MaxPending(-1).validate(); err == nil {
		t.Error("negative MaxPending must fail validation")
	}
}

// TestShuffleCursorOverflow seeds the round-robin cursor near the
// int64 boundary: the modulo must be computed in uint64, or the index
// goes negative and panics the receiving task (regression test).
func TestShuffleCursorOverflow(t *testing.T) {
	var rr atomic.Uint64
	rr.Store(math.MaxInt64 - 2)
	const nTasks = 3
	seen := make(map[int]bool)
	for i := 0; i < 8; i++ {
		targets := TargetTasks(Shuffle, nil, Values{}, nTasks, &rr)
		if len(targets) != 1 {
			t.Fatalf("targets = %v", targets)
		}
		if targets[0] < 0 || targets[0] >= nTasks {
			t.Fatalf("cursor overflow produced index %d", targets[0])
		}
		seen[targets[0]] = true
	}
	if len(seen) != nTasks {
		t.Errorf("round-robin across the boundary hit %d of %d tasks", len(seen), nTasks)
	}
}

// TestEmittedCountsDeliveries: emissions on streams nobody subscribes
// to must not inflate the emitted counter, and an All-grouping copy
// counts once per receiving task.
func TestEmittedCountsDeliveries(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func(int) Spout { return &intSpout{n: 5, stream: "nowhere"} }, 1)
	sink, _, _ := newSinkFactory()
	b.SetBolt("sink", sink, 2).ShuffleGrouping("src") // default stream: never fed
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if stats := topo.Run(); stats.Emitted["src"] != 0 {
		t.Errorf("emitted = %d for subscriber-less emissions, want 0", stats.Emitted["src"])
	}

	b2 := NewBuilder()
	b2.SetSpout("src", func(int) Spout { return &intSpout{n: 5} }, 1)
	var mu sync.Mutex
	got := 0
	b2.SetBolt("all", func(int) Bolt {
		return boltFunc(func(Tuple, Collector) { mu.Lock(); got++; mu.Unlock() })
	}, 3).AllGrouping("src")
	topo2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := topo2.Run()
	if stats.Emitted["src"] != 15 {
		t.Errorf("emitted = %d, want 15 delivered copies", stats.Emitted["src"])
	}
	mu.Lock()
	defer mu.Unlock()
	if got != 15 {
		t.Errorf("received = %d, want 15", got)
	}
}
