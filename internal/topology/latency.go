package topology

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// latencyRecorder collects per-component execute latencies with a
// bounded reservoir per component, cheap enough to stay on by default.
type latencyRecorder struct {
	mu      sync.Mutex
	samples map[string]*reservoir
}

const reservoirSize = 512

// reservoir keeps a fixed-size sample of observations plus exact
// count/sum so averages stay exact while percentiles are approximate.
type reservoir struct {
	count int64
	sum   time.Duration
	max   time.Duration
	buf   []time.Duration
}

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{samples: make(map[string]*reservoir)}
}

func (l *latencyRecorder) observe(component string, d time.Duration) {
	l.mu.Lock()
	r := l.samples[component]
	if r == nil {
		r = &reservoir{}
		l.samples[component] = r
	}
	r.count++
	r.sum += d
	if d > r.max {
		r.max = d
	}
	if len(r.buf) < reservoirSize {
		r.buf = append(r.buf, d)
	} else {
		// Deterministic stride replacement keeps a spread of the
		// stream without PRNG state.
		r.buf[int(r.count)%reservoirSize] = d
	}
	l.mu.Unlock()
}

// LatencySummary describes one component's execute-latency profile.
type LatencySummary struct {
	Count int64
	Avg   time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// String renders the summary compactly.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d avg=%s p50=%s p99=%s max=%s", s.Count, s.Avg, s.P50, s.P99, s.Max)
}

func (l *latencyRecorder) summaries() map[string]LatencySummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]LatencySummary, len(l.samples))
	for comp, r := range l.samples {
		s := LatencySummary{Count: r.count, Max: r.max}
		if r.count > 0 {
			s.Avg = time.Duration(int64(r.sum) / r.count)
		}
		if len(r.buf) > 0 {
			sorted := make([]time.Duration, len(r.buf))
			copy(sorted, r.buf)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			s.P50 = percentile(sorted, 0.50)
			s.P99 = percentile(sorted, 0.99)
		}
		out[comp] = s
	}
	return out
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
