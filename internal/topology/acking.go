package topology

import (
	"sync"
	"time"
)

// Guaranteed message processing, modelled on Storm's acker (the paper
// relies on Storm's "fault tolerance, guaranteed message delivery"
// promises, Sec. III-B).
//
// A reliable spout emits tuples with a message id. Every downstream
// tuple a bolt emits while processing is anchored to the originating
// spout tuples; the acker tracks, per spout tuple, the XOR of all
// anchored tuple ids. Delivering a copy XORs its id in, completing its
// execution XORs it out — the running value returns to zero exactly
// when the whole tuple tree has been processed, at which point the
// spout's Ack callback fires. A tuple tree that does not complete
// within the timeout fails, and the spout may replay it.
//
// Ack and Fail are delivered inside the spout's own goroutine, between
// NextTuple calls, matching Storm's single-threaded spout contract.
// Acking is a per-topology opt-in (Builder.EnableAcking) and is
// in-process: the TCP cluster runtime does not propagate anchors.

// ReliableSpout is a Spout that wants completion callbacks for the
// tuples it emits via ReliableCollector.EmitReliable. After a Fail
// delivery, NextTuple is invoked again even if it previously returned
// false, so the spout can replay the failed tuple.
type ReliableSpout interface {
	Spout
	// Ack reports that the tuple tree rooted at msgID was fully
	// processed.
	Ack(msgID uint64)
	// Fail reports that the tuple tree rooted at msgID did not
	// complete within the acking timeout. The spout may re-emit it.
	Fail(msgID uint64)
}

// ReliableCollector is implemented by the in-process runtime's
// collector; reliable spouts type-assert it in NextTuple.
type ReliableCollector interface {
	Collector
	// EmitReliable emits on the default stream with completion
	// tracking under msgID.
	EmitReliable(msgID uint64, v Values)
	// EmitReliableTo emits on a named stream with completion tracking.
	EmitReliableTo(stream string, msgID uint64, v Values)
}

// ackerEntry tracks one spout tuple's tree.
type ackerEntry struct {
	task     *spoutAckQueue
	msgID    uint64
	val      uint64 // XOR of delivered-but-unacked tuple ids
	deadline time.Time
	started  bool // at least one tuple delivered
}

// spoutAckQueue carries completion callbacks to the owning spout's
// goroutine.
type spoutAckQueue struct {
	mu    sync.Mutex
	acks  []uint64
	fails []uint64
	// outstanding counts unresolved roots of this spout task.
	outstanding int
}

func (q *spoutAckQueue) push(msgID uint64, failed bool) {
	q.mu.Lock()
	if failed {
		q.fails = append(q.fails, msgID)
	} else {
		q.acks = append(q.acks, msgID)
	}
	q.outstanding--
	q.mu.Unlock()
}

// drain delivers queued callbacks to the spout; it returns the number
// of still-outstanding roots and how many failures were delivered (a
// failure may make an exhausted spout want to re-emit).
func (q *spoutAckQueue) drain(s ReliableSpout) (outstanding, failed int) {
	q.mu.Lock()
	acks, fails := q.acks, q.fails
	q.acks, q.fails = nil, nil
	outstanding = q.outstanding
	q.mu.Unlock()
	for _, id := range acks {
		s.Ack(id)
	}
	for _, id := range fails {
		s.Fail(id)
	}
	return outstanding, len(fails)
}

func (q *spoutAckQueue) addRoot() {
	q.mu.Lock()
	q.outstanding++
	q.mu.Unlock()
}

// acker is the topology-wide tracker.
type acker struct {
	mu       sync.Mutex
	pending  map[uint64]*ackerEntry // rootID -> entry
	nextRoot uint64
	nextID   uint64
	timeout  time.Duration
	stop     chan struct{}
	stopOnce sync.Once
}

func newAcker(timeout time.Duration) *acker {
	a := &acker{
		pending: make(map[uint64]*ackerEntry),
		timeout: timeout,
		stop:    make(chan struct{}),
	}
	go a.expireLoop()
	return a
}

// newRoot registers a fresh spout tuple tree.
func (a *acker) newRoot(q *spoutAckQueue, msgID uint64) uint64 {
	a.mu.Lock()
	a.nextRoot++
	root := a.nextRoot
	a.pending[root] = &ackerEntry{
		task:     q,
		msgID:    msgID,
		deadline: time.Now().Add(a.timeout),
	}
	a.mu.Unlock()
	q.addRoot()
	return root
}

// tupleID mints a unique id for one delivered tuple copy.
func (a *acker) tupleID() uint64 {
	a.mu.Lock()
	a.nextID++
	id := a.nextID
	a.mu.Unlock()
	return id
}

// anchor XORs a delivered copy into its roots.
func (a *acker) anchor(roots []uint64, tupleID uint64) {
	a.mu.Lock()
	for _, r := range roots {
		if e, ok := a.pending[r]; ok {
			e.val ^= tupleID
			e.started = true
		}
	}
	a.mu.Unlock()
}

// ack XORs a completed copy out of its roots, firing completions.
func (a *acker) ack(roots []uint64, tupleID uint64) {
	var completed []*ackerEntry
	a.mu.Lock()
	for _, r := range roots {
		e, ok := a.pending[r]
		if !ok {
			continue
		}
		e.val ^= tupleID
		if e.val == 0 && e.started {
			delete(a.pending, r)
			completed = append(completed, e)
		}
	}
	a.mu.Unlock()
	for _, e := range completed {
		e.task.push(e.msgID, false)
	}
}

// completeIfEmpty acks a root whose emission delivered no copies at
// all (no subscribers on the stream): the empty tuple tree is complete.
func (a *acker) completeIfEmpty(root uint64) {
	a.mu.Lock()
	e, ok := a.pending[root]
	if ok && !e.started {
		delete(a.pending, root)
	} else {
		e = nil
	}
	a.mu.Unlock()
	if e != nil {
		e.task.push(e.msgID, false)
	}
}

// expireLoop fails tuple trees that outlive the timeout.
func (a *acker) expireLoop() {
	ticker := time.NewTicker(a.timeout / 4)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case now := <-ticker.C:
			var failed []*ackerEntry
			a.mu.Lock()
			for root, e := range a.pending {
				if now.After(e.deadline) {
					delete(a.pending, root)
					failed = append(failed, e)
				}
			}
			a.mu.Unlock()
			for _, e := range failed {
				e.task.push(e.msgID, true)
			}
		}
	}
}

func (a *acker) close() { a.stopOnce.Do(func() { close(a.stop) }) }

// EnableAcking turns on guaranteed message processing for the topology
// with the given completion timeout (Storm's topology.message.timeout).
func (b *Builder) EnableAcking(timeout time.Duration) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	b.ackTimeout = timeout
}
