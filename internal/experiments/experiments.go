// Package experiments regenerates every table and figure of the
// paper's evaluation (Section VII): Figs. 6–8 sweep the partitioning
// algorithms over the number of partitions m and the window size w on
// both datasets; Fig. 9 sweeps the repartitioning threshold θ; Fig. 10
// measures the "ideal execution" on a stabilised stream; Fig. 11 times
// the local join algorithms.
//
// Absolute numbers differ from the paper (different hardware, synthetic
// stand-ins for the proprietary data); the shapes — which algorithm
// wins, by roughly what factor, and where behaviour crosses over — are
// the reproduction target. EXPERIMENTS.md records both sides.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/telemetry"
)

// Scale sizes the experiments. The paper streams 46M documents over a
// cluster; Full is sized for a single development machine and Quick for
// the test suite.
type Scale struct {
	// DocsPerWindowUnit maps the paper's window length w (minutes) to
	// documents: windowSize = w * DocsPerWindowUnit.
	DocsPerWindowUnit int
	// Windows is the number of windows streamed per run (the first
	// window is warm-up: no partitions exist yet and everything is
	// broadcast; it is excluded from the averages).
	Windows int
	// FPJDocs are the document counts of Fig. 11a/b (paper: 100k,
	// 300k, 500k).
	FPJDocs []int
	// BaselineDocs are the document counts of Fig. 11c/d (paper: 10k,
	// 30k, 50k).
	BaselineDocs []int
	// Seed makes every figure reproducible.
	Seed int64
}

// FullScale approximates the paper's setup at 1/10 of the document
// counts, suitable for a single machine.
func FullScale() Scale {
	return Scale{
		DocsPerWindowUnit: 200,
		Windows:           8,
		FPJDocs:           []int{10000, 30000, 50000},
		BaselineDocs:      []int{1000, 3000, 5000},
		Seed:              42,
	}
}

// QuickScale keeps the sweeps cheap enough for go test.
func QuickScale() Scale {
	return Scale{
		DocsPerWindowUnit: 50,
		Windows:           4,
		FPJDocs:           []int{500, 1000},
		BaselineDocs:      []int{200, 400},
		Seed:              42,
	}
}

// Figure is one reproduced plot: rows (x-axis points) by series (the
// plotted algorithms).
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []string
	Rows   []Row
}

// Row is one x-axis point.
type Row struct {
	Label  string
	Values map[string]float64
}

// Render prints the figure as an aligned text table, one row per x
// point and one column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  (y = %s)\n", f.YLabel)
	fmt.Fprintf(&b, "  %-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%12s", s)
	}
	b.WriteByte('\n')
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-12s", r.Label)
		for _, s := range f.Series {
			if v, ok := r.Values[s]; ok {
				fmt.Fprintf(&b, "%12.3f", v)
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// point is the outcome of one system run.
type point struct {
	repl, gini, maxLoad, repartPct float64
}

// runKey memoises system runs shared between Figs. 6, 7 and 8.
type runKey struct {
	dataset string
	algo    string
	m, w    int
	theta   float64
	ideal   bool
}

var (
	runMu    sync.Mutex
	runCache = map[string]map[runKey]point{}
)

// expansionFor reproduces the paper's configuration matrix: on nbData
// every algorithm uses attribute-value expansion (the Boolean
// attribute); on rwData only DS needs it, forced (Sec. VII-E).
func expansionFor(dataset, algo string) core.ExpansionMode {
	if dataset == "nbData" {
		return core.ExpansionAuto // the Boolean attribute triggers it
	}
	if algo == "DS" {
		return core.ExpansionForced
	}
	return core.ExpansionAuto // finds no disabling attribute on rwData
}

// runSystem executes one configuration and summarises the post-warm-up
// windows.
func runSystem(key runKey, sc Scale) (point, error) {
	runMu.Lock()
	cache := runCache[scaleID(sc)]
	if cache == nil {
		cache = make(map[runKey]point)
		runCache[scaleID(sc)] = cache
	}
	if p, ok := cache[key]; ok {
		runMu.Unlock()
		return p, nil
	}
	runMu.Unlock()

	var source datagen.Generator
	gen, ok := datagen.ByName(key.dataset, sc.Seed)
	if !ok {
		return point{}, fmt.Errorf("experiments: unknown dataset %q", key.dataset)
	}
	source = gen
	windowSize := key.w * sc.DocsPerWindowUnit
	if key.ideal {
		// Sec. VII-E.4: freeze one window, replay it with a small
		// trickle of unseen documents.
		if sl, ok := gen.(*datagen.ServerLog); ok {
			sl.DriftRate = 0.02
		}
		source = datagen.NewIdeal(gen, windowSize, windowSize/50)
	}
	partitioner, err := partition.ByName(key.algo)
	if err != nil {
		return point{}, err
	}
	cfg := core.Config{
		M:           key.m,
		Creators:    2,
		Assigners:   6,
		WindowSize:  windowSize,
		Windows:     sc.Windows,
		Theta:       key.theta,
		Partitioner: partitioner,
		Expansion:   expansionFor(key.dataset, key.algo),
		Source:      source,
	}
	// Run with telemetry attached: the snapshot cross-checks the
	// report's headline counters, so every experiment doubles as an
	// end-to-end consistency test of the instrumentation.
	report, err := core.NewRunner(cfg, core.WithTelemetry(telemetry.NewRegistry())).Run()
	if err != nil {
		return point{}, err
	}
	if got := report.Telemetry.SumCounter("join_pairs_total"); got != int64(report.JoinPairs) {
		return point{}, fmt.Errorf("experiments: telemetry join_pairs_total=%d disagrees with report.JoinPairs=%d", got, report.JoinPairs)
	}
	if got := report.Telemetry.SumCounter("partition_deliveries_total"); got != int64(report.DocsJoined) {
		return point{}, fmt.Errorf("experiments: telemetry partition_deliveries_total=%d disagrees with report.DocsJoined=%d", got, report.DocsJoined)
	}
	p := summarise(report, key.m)
	runMu.Lock()
	cache[key] = p
	runMu.Unlock()
	return p, nil
}

func scaleID(sc Scale) string {
	return fmt.Sprintf("%d/%d/%d", sc.DocsPerWindowUnit, sc.Windows, sc.Seed)
}

// summarise averages the post-warm-up windows. Window 0 runs without
// any partitions (pure broadcast) and is excluded, mirroring the
// paper's setup where partitions are computed upfront.
func summarise(report *core.Report, m int) point {
	var rs metrics.RunStats
	windows := report.Run.Windows
	if len(windows) > 1 {
		windows = windows[1:]
	}
	for _, w := range windows {
		rs.Add(w)
	}
	return point{
		repl:      rs.AvgReplication(),
		gini:      rs.AvgLoadBalance(),
		maxLoad:   rs.AvgMaxProcessingLoad(),
		repartPct: rs.RepartitionRate(),
	}
}

var algos = []string{"AG", "SC", "DS"}

// partitionSweep runs Figs. 6–8's m sweep (a/c variants).
func partitionSweep(dataset string, sc Scale, metric func(point) float64, id, title, ylabel string) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, XLabel: "partitions", YLabel: ylabel, Series: algos}
	for _, m := range []int{5, 8, 10, 20} {
		row := Row{Label: fmt.Sprintf("m=%d", m), Values: map[string]float64{}}
		for _, algo := range algos {
			p, err := runSystem(runKey{dataset: dataset, algo: algo, m: m, w: 6, theta: 0.2}, sc)
			if err != nil {
				return nil, err
			}
			row.Values[algo] = metric(p)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// windowSweep runs Figs. 6–8's w sweep (b/d variants).
func windowSweep(dataset string, sc Scale, metric func(point) float64, id, title, ylabel string) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, XLabel: "window", YLabel: ylabel, Series: algos}
	for _, w := range []int{3, 6, 9} {
		row := Row{Label: fmt.Sprintf("w=%d", w), Values: map[string]float64{}}
		for _, algo := range algos {
			p, err := runSystem(runKey{dataset: dataset, algo: algo, m: 8, w: w, theta: 0.2}, sc)
			if err != nil {
				return nil, err
			}
			row.Values[algo] = metric(p)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

func replOf(p point) float64    { return p.repl }
func giniOf(p point) float64    { return p.gini }
func maxLoadOf(p point) float64 { return p.maxLoad }

// Figure6 reproduces the replication plots: variant a (m sweep,
// rwData), b (w sweep, rwData), c (m sweep, nbData), d (w sweep,
// nbData).
func Figure6(variant string, sc Scale) (*Figure, error) {
	return sweepFigure("6", variant, sc, replOf, "Replication (avg)")
}

// Figure7 reproduces the load-balance (Gini) plots.
func Figure7(variant string, sc Scale) (*Figure, error) {
	return sweepFigure("7", variant, sc, giniOf, "Load Balance (Gini)")
}

// Figure8 reproduces the maximal processing load plots.
func Figure8(variant string, sc Scale) (*Figure, error) {
	return sweepFigure("8", variant, sc, maxLoadOf, "Max Processing Load (avg)")
}

func sweepFigure(num, variant string, sc Scale, metric func(point) float64, ylabel string) (*Figure, error) {
	id := num + variant
	switch variant {
	case "a":
		return partitionSweep("rwData", sc, metric, id, "varying partitions (rwData), w=6 θ=0.2", ylabel)
	case "b":
		return windowSweep("rwData", sc, metric, id, "varying window (rwData), m=8 θ=0.2", ylabel)
	case "c":
		return partitionSweep("nbData", sc, metric, id, "varying partitions (nbData), w=6 θ=0.2", ylabel)
	case "d":
		return windowSweep("nbData", sc, metric, id, "varying window (nbData), m=8 θ=0.2", ylabel)
	default:
		return nil, fmt.Errorf("experiments: figure %s has variants a-d, got %q", num, variant)
	}
}

// Figure9 reproduces the repartition-percentage plots: variant a
// (rwData) and b (nbData), θ ∈ {0.2, 0.6}, m=8, w=6.
func Figure9(variant string, sc Scale) (*Figure, error) {
	dataset := map[string]string{"a": "rwData", "b": "nbData"}[variant]
	if dataset == "" {
		return nil, fmt.Errorf("experiments: figure 9 has variants a/b, got %q", variant)
	}
	fig := &Figure{
		ID:     "9" + variant,
		Title:  fmt.Sprintf("repartitions varying threshold (%s), m=8 w=6", dataset),
		XLabel: "threshold",
		YLabel: "Repartitions (%)",
		Series: algos,
	}
	for _, theta := range []float64{0.2, 0.6} {
		row := Row{Label: fmt.Sprintf("θ=%.1f", theta), Values: map[string]float64{}}
		for _, algo := range algos {
			p, err := runSystem(runKey{dataset: dataset, algo: algo, m: 8, w: 6, theta: theta}, sc)
			if err != nil {
				return nil, err
			}
			row.Values[algo] = p.repartPct
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure10 reproduces the ideal execution: variant a (replication), b
// (load balance), c (max processing load), sweeping m ∈ {5, 10, 20}
// over the stabilised rwData-derived stream.
func Figure10(variant string, sc Scale) (*Figure, error) {
	var metric func(point) float64
	var ylabel string
	switch variant {
	case "a":
		metric, ylabel = replOf, "Replication (avg)"
	case "b":
		metric, ylabel = giniOf, "Load Balance (Gini)"
	case "c":
		metric, ylabel = maxLoadOf, "Max Processing Load (avg)"
	default:
		return nil, fmt.Errorf("experiments: figure 10 has variants a-c, got %q", variant)
	}
	fig := &Figure{
		ID:     "10" + variant,
		Title:  "ideal execution (stabilised rwData), w=6 θ=0.2",
		XLabel: "partitions",
		YLabel: ylabel,
		Series: algos,
	}
	for _, m := range []int{5, 10, 20} {
		row := Row{Label: fmt.Sprintf("m=%d", m), Values: map[string]float64{}}
		for _, algo := range algos {
			p, err := runSystem(runKey{dataset: "rwData", algo: algo, m: m, w: 6, theta: 0.2, ideal: true}, sc)
			if err != nil {
				return nil, err
			}
			row.Values[algo] = metric(p)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// All regenerates every figure at the given scale, in paper order.
func All(sc Scale) ([]*Figure, error) {
	var out []*Figure
	for _, num := range []string{"6", "7", "8"} {
		for _, v := range []string{"a", "b", "c", "d"} {
			fig, err := sweepFigureByNum(num, v, sc)
			if err != nil {
				return nil, err
			}
			out = append(out, fig)
		}
	}
	for _, v := range []string{"a", "b"} {
		fig, err := Figure9(v, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	for _, v := range []string{"a", "b", "c"} {
		fig, err := Figure10(v, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	for _, v := range []string{"a", "b", "c", "d"} {
		fig, err := Figure11(v, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

func sweepFigureByNum(num, variant string, sc Scale) (*Figure, error) {
	switch num {
	case "6":
		return Figure6(variant, sc)
	case "7":
		return Figure7(variant, sc)
	case "8":
		return Figure8(variant, sc)
	default:
		return nil, fmt.Errorf("experiments: unknown figure %s", num)
	}
}

// ByID regenerates one figure by its id ("6a", "9b", "11d", ...).
func ByID(id string, sc Scale) (*Figure, error) {
	if len(id) < 2 {
		return nil, fmt.Errorf("experiments: bad figure id %q", id)
	}
	num, variant := id[:len(id)-1], id[len(id)-1:]
	switch num {
	case "6", "7", "8":
		return sweepFigureByNum(num, variant, sc)
	case "9":
		return Figure9(variant, sc)
	case "10":
		return Figure10(variant, sc)
	case "11":
		return Figure11(variant, sc)
	default:
		return nil, fmt.Errorf("experiments: unknown figure id %q", id)
	}
}

// IDs lists all reproducible figure ids in paper order.
func IDs() []string {
	var out []string
	for _, num := range []string{"6", "7", "8"} {
		for _, v := range []string{"a", "b", "c", "d"} {
			out = append(out, num+v)
		}
	}
	out = append(out, "9a", "9b", "10a", "10b", "10c")
	out = append(out, "11a", "11b", "11c", "11d")
	sort.Strings(out) // stable listing for help output
	return out
}
