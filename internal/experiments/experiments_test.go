package experiments

import (
	"strings"
	"testing"
)

// quick scale for all tests; the cache keeps the suite fast across the
// figure tests sharing runs.
var sc = QuickScale()

func TestFigure6Replication(t *testing.T) {
	for _, v := range []string{"a", "c"} {
		fig, err := Figure6(v, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Rows) != 4 {
			t.Fatalf("fig6%s rows = %d", v, len(fig.Rows))
		}
		for _, row := range fig.Rows {
			for _, algo := range algos {
				r := row.Values[algo]
				if r < 1 || r > 20 {
					t.Errorf("fig6%s %s %s replication = %g out of [1,m]", v, row.Label, algo, r)
				}
			}
		}
	}
}

// TestFigure6Shape checks the paper's qualitative claims on the m
// sweep: DS has the best replication, AG close, SC approaches the
// worst case (every document to almost every machine).
func TestFigure6Shape(t *testing.T) {
	fig, err := Figure6("a", sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		ag, sc_, ds := row.Values["AG"], row.Values["SC"], row.Values["DS"]
		if ds > ag {
			t.Errorf("%s: DS (%.2f) should not replicate more than AG (%.2f)", row.Label, ds, ag)
		}
		if sc_ < ag {
			t.Errorf("%s: SC (%.2f) should replicate at least as much as AG (%.2f)", row.Label, sc_, ag)
		}
	}
	// SC at m=20 approaches worst case.
	last := fig.Rows[len(fig.Rows)-1]
	if last.Values["SC"] < last.Values["AG"]*1.5 {
		t.Errorf("m=20: SC (%.2f) should be far worse than AG (%.2f)", last.Values["SC"], last.Values["AG"])
	}
}

func TestFigure7Gini(t *testing.T) {
	fig, err := Figure7("a", sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		for _, algo := range algos {
			g := row.Values[algo]
			if g < 0 || g > 1 {
				t.Errorf("%s %s gini = %g out of [0,1]", row.Label, algo, g)
			}
		}
	}
}

// TestFigure8Shape: SC balances via replication, so its maximal
// processing load stays near 1 while AG's falls with more partitions.
func TestFigure8Shape(t *testing.T) {
	fig, err := Figure8("a", sc)
	if err != nil {
		t.Fatal(err)
	}
	first, last := fig.Rows[0], fig.Rows[len(fig.Rows)-1]
	if last.Values["AG"] >= first.Values["AG"] {
		t.Errorf("AG max load should fall with m: m=5 %.3f vs m=20 %.3f",
			first.Values["AG"], last.Values["AG"])
	}
	for _, row := range fig.Rows {
		if row.Values["SC"] < 0.5 {
			t.Errorf("%s: SC max load %.3f unexpectedly low; should stay near 1", row.Label, row.Values["SC"])
		}
		if l := row.Values["AG"]; l <= 0 || l > 1 {
			t.Errorf("%s: AG max load %g out of (0,1]", row.Label, l)
		}
	}
}

func TestFigure9Repartitions(t *testing.T) {
	fig, err := Figure9("b", sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		for _, algo := range algos {
			p := row.Values[algo]
			if p < 0 || p > 100 {
				t.Errorf("%s %s repartitions = %g%%", row.Label, algo, p)
			}
		}
	}
}

func TestFigure10Ideal(t *testing.T) {
	fig, err := Figure10("a", sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// On the stabilised stream AG replication stays moderate (the
	// paper's Fig. 10a shows a few copies even at m=20) and well below
	// SC's near-worst-case.
	for _, row := range fig.Rows {
		ag, sc_ := row.Values["AG"], row.Values["SC"]
		if ag > 8 {
			t.Errorf("%s: ideal AG replication = %.2f, want moderate", row.Label, ag)
		}
		if ag > sc_ {
			t.Errorf("%s: ideal AG (%.2f) should beat SC (%.2f)", row.Label, ag, sc_)
		}
	}
}

func TestFigure11FPJ(t *testing.T) {
	fig, err := Figure11("a", sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		if row.Values["Creation"] < 0 || row.Values["Join"] < 0 {
			t.Errorf("negative time in %v", row)
		}
	}
}

func TestFigure11Baselines(t *testing.T) {
	for _, v := range []string{"c", "d"} {
		fig, err := Figure11(v, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Rows) != len(sc.BaselineDocs) {
			t.Fatalf("rows = %d", len(fig.Rows))
		}
		for _, row := range fig.Rows {
			if row.Values["NLJ"] <= 0 || row.Values["HBJ"] <= 0 {
				t.Errorf("fig11%s %s: nonpositive times %v", v, row.Label, row.Values)
			}
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Fatalf("len(IDs) = %d, want 21", len(ids))
	}
	fig, err := ByID("9a", sc)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "9a" {
		t.Errorf("fig.ID = %s", fig.ID)
	}
	for _, bad := range []string{"", "5a", "6z", "12a", "x"} {
		if _, err := ByID(bad, sc); err == nil {
			t.Errorf("ByID(%q) must fail", bad)
		}
	}
}

func TestRenderFormat(t *testing.T) {
	fig := &Figure{
		ID: "6a", Title: "t", XLabel: "x", YLabel: "y",
		Series: []string{"AG", "SC"},
		Rows: []Row{
			{Label: "m=5", Values: map[string]float64{"AG": 1.5}},
		},
	}
	out := fig.Render()
	if !strings.Contains(out, "Figure 6a") || !strings.Contains(out, "m=5") {
		t.Errorf("render = %q", out)
	}
	if !strings.Contains(out, "1.500") || !strings.Contains(out, "-") {
		t.Errorf("missing values/placeholders: %q", out)
	}
}

func TestExpansionFor(t *testing.T) {
	if expansionFor("nbData", "AG").String() != "auto" {
		t.Error("nbData must auto-expand")
	}
	if expansionFor("rwData", "DS").String() != "forced" {
		t.Error("rwData DS must force expansion")
	}
	if expansionFor("rwData", "AG").String() != "auto" {
		t.Error("rwData AG is auto (no disabling attribute fires)")
	}
}

func TestRenderChart(t *testing.T) {
	fig := &Figure{
		ID: "6a", Title: "test", YLabel: "Replication",
		Series: []string{"AG", "SC", "DS"},
		Rows: []Row{
			{Label: "m=5", Values: map[string]float64{"AG": 2.0, "SC": 5.0, "DS": 1.5}},
			{Label: "m=8", Values: map[string]float64{"AG": 3.0, "SC": 8.0}},
		},
	}
	out := fig.RenderChart()
	if !strings.Contains(out, "m=5") || !strings.Contains(out, "█") {
		t.Errorf("chart = %q", out)
	}
	// The maximum (SC at m=8) must render the longest bar.
	lines := strings.Split(out, "\n")
	maxBars, scBars := 0, 0
	for _, l := range lines {
		n := strings.Count(l, "█")
		if n > maxBars {
			maxBars = n
		}
		if strings.Contains(l, "SC") && strings.Contains(l, "8.000") {
			scBars = n
		}
	}
	if scBars != maxBars {
		t.Errorf("SC@m=8 bar (%d) is not the longest (%d)", scBars, maxBars)
	}
	// All-zero figures render a placeholder.
	empty := &Figure{ID: "x", Series: []string{"A"}, Rows: []Row{{Label: "r", Values: map[string]float64{"A": 0}}}}
	if !strings.Contains(empty.RenderChart(), "all values zero") {
		t.Error("zero chart placeholder missing")
	}
}

func TestWindowSweepVariants(t *testing.T) {
	for _, id := range []string{"6b", "7d", "8b"} {
		fig, err := ByID(id, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Rows) != 3 {
			t.Fatalf("%s rows = %d, want 3 (w=3,6,9)", id, len(fig.Rows))
		}
		for _, row := range fig.Rows {
			for _, algo := range algos {
				if _, ok := row.Values[algo]; !ok {
					t.Errorf("%s %s missing %s", id, row.Label, algo)
				}
			}
		}
	}
}

func TestFullScaleShape(t *testing.T) {
	fs := FullScale()
	if fs.DocsPerWindowUnit <= QuickScale().DocsPerWindowUnit {
		t.Error("full scale must exceed quick scale")
	}
	if len(fs.FPJDocs) != 3 || len(fs.BaselineDocs) != 3 {
		t.Error("full scale must carry the paper's three sizes")
	}
}
