package experiments

import (
	"fmt"
	"strings"
)

// RenderChart draws the figure as horizontal ASCII bars, one block per
// (row, series) combination — a terminal-friendly approximation of the
// paper's grouped bar plots.
func (f *Figure) RenderChart() string {
	const barWidth = 46

	max := 0.0
	for _, r := range f.Rows {
		for _, s := range f.Series {
			if v, ok := r.Values[s]; ok && v > max {
				max = v
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  (x = %s)\n", f.YLabel)
	if max == 0 {
		b.WriteString("  (all values zero)\n")
		return b.String()
	}
	labelWidth := 0
	for _, s := range f.Series {
		if len(s) > labelWidth {
			labelWidth = len(s)
		}
	}
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %s\n", r.Label)
		for _, s := range f.Series {
			v, ok := r.Values[s]
			if !ok {
				continue
			}
			n := int(v / max * barWidth)
			if v > 0 && n == 0 {
				n = 1
			}
			fmt.Fprintf(&b, "    %-*s │%s%s %0.3f\n",
				labelWidth, s,
				strings.Repeat("█", n),
				strings.Repeat(" ", barWidth-n),
				v)
		}
	}
	return b.String()
}
