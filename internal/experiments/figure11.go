package experiments

import (
	"fmt"
	"time"

	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/join"
)

// Figure11 reproduces the local join execution times (Sec. VII-E.5):
//
//	a: FPJ creation + join time on rwData (paper: 100k/300k/500k docs)
//	b: FPJ creation + join time on nbData
//	c: NLJ vs HBJ on rwData (paper: 10k/30k/50k docs)
//	d: NLJ vs HBJ on nbData
//
// The join runs entirely on one node, outside the topology, exactly as
// in the paper. Expected shapes: FPJ processes 10x more documents in a
// small fraction of the baselines' time; NLJ beats HBJ on rwData (hot
// pairs create long posting lists) while HBJ beats NLJ on nbData
// (diverse pairs keep buckets short).
func Figure11(variant string, sc Scale) (*Figure, error) {
	switch variant {
	case "a", "b":
		return figure11FPJ(variant, sc)
	case "c", "d":
		return figure11Baselines(variant, sc)
	default:
		return nil, fmt.Errorf("experiments: figure 11 has variants a-d, got %q", variant)
	}
}

func dataset11(variant string) string {
	if variant == "a" || variant == "c" {
		return "rwData"
	}
	return "nbData"
}

func figure11FPJ(variant string, sc Scale) (*Figure, error) {
	ds := dataset11(variant)
	fig := &Figure{
		ID:     "11" + variant,
		Title:  fmt.Sprintf("FPTreeJoin (%s)", ds),
		XLabel: "documents",
		YLabel: "Execution Time (seconds)",
		Series: []string{"Creation", "Join"},
	}
	for _, n := range sc.FPJDocs {
		docs, err := materialise(ds, n, sc.Seed)
		if err != nil {
			return nil, err
		}
		creation, joinTime := TimeFPJ(docs)
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("%dk", n/1000),
			Values: map[string]float64{
				"Creation": creation.Seconds(),
				"Join":     joinTime.Seconds(),
			},
		})
	}
	return fig, nil
}

func figure11Baselines(variant string, sc Scale) (*Figure, error) {
	ds := dataset11(variant)
	fig := &Figure{
		ID:     "11" + variant,
		Title:  fmt.Sprintf("competitor approaches (%s)", ds),
		XLabel: "documents",
		YLabel: "Execution Time (seconds)",
		Series: []string{"NLJ", "HBJ"},
	}
	for _, n := range sc.BaselineDocs {
		docs, err := materialise(ds, n, sc.Seed)
		if err != nil {
			return nil, err
		}
		row := Row{Label: fmt.Sprintf("%dk", n/1000), Values: map[string]float64{}}
		if n < 1000 {
			row.Label = fmt.Sprintf("%d", n)
		}
		for _, name := range []string{"NLJ", "HBJ"} {
			eng, err := join.New(name)
			if err != nil {
				return nil, err
			}
			row.Values[name] = TimeBatch(eng, docs).Seconds()
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

func materialise(dataset string, n int, seed int64) ([]document.Document, error) {
	gen, ok := datagen.ByName(dataset, seed)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown dataset %q", dataset)
	}
	return gen.Window(n), nil
}

// TimeFPJ measures the two phases of the FP-tree join separately, as
// the paper's stacked bars report them: tree creation (attribute
// ordering + inserts) and the join (one probe per document).
func TimeFPJ(docs []document.Document) (creation, joinTime time.Duration) {
	start := time.Now()
	eng := join.NewFPJFromDocs(docs)
	for _, d := range docs {
		eng.Insert(d)
	}
	creation = time.Since(start)

	start = time.Now()
	for _, d := range docs {
		eng.Probe(d)
	}
	joinTime = time.Since(start)
	return creation, joinTime
}

// TimeBatch measures a full probe-and-insert batch join on the engine.
func TimeBatch(eng join.Engine, docs []document.Document) time.Duration {
	start := time.Now()
	join.Batch(eng, docs)
	return time.Since(start)
}
