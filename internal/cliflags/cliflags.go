// Package cliflags holds flag blocks shared between the sfj commands,
// so deployment scripts carry one flag vocabulary and validation lives
// in one place.
package cliflags

import (
	"flag"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Transport is the cluster data-plane configuration shared by
// sfj-serve and sfj-topology: wire encoding and frame coalescing.
type Transport struct {
	// WireFormat is the data-plane encoding: binary (varint-packed
	// batched frames, the default) or gob (one envelope per tuple, for
	// A/B measurement).
	WireFormat string
	// FrameBatch caps how many tuples coalesce into one binary frame.
	FrameBatch int
	// FrameFlushInterval is how long a peer sender waits to fill a
	// frame before flushing (0 = send whatever is pending immediately).
	FrameFlushInterval time.Duration
	// FrameCompress DEFLATE-compresses binary frames when that shrinks
	// them.
	FrameCompress bool
}

// RegisterTransport registers the transport flag block on fs with the
// shared defaults and returns the destination struct, populated after
// fs.Parse.
func RegisterTransport(fs *flag.FlagSet) *Transport {
	t := &Transport{}
	fs.StringVar(&t.WireFormat, "wire-format", cluster.WireBinary,
		"cluster data-plane encoding: binary (varint-packed batched frames, the default) or gob (one envelope per tuple, for A/B measurement)")
	fs.IntVar(&t.FrameBatch, "frame-batch", 32,
		"max tuples coalesced into one binary data frame")
	fs.DurationVar(&t.FrameFlushInterval, "frame-flush-interval", 0,
		"how long a peer sender waits to fill a frame before flushing (0 = send whatever is pending immediately)")
	fs.BoolVar(&t.FrameCompress, "frame-compress", false,
		"DEFLATE-compress binary data frames when that shrinks them")
	return t
}

// Validate checks the parsed values; the returned error is phrased for
// direct printing to a command's stderr.
func (t *Transport) Validate() error {
	if !cluster.ValidWireFormat(t.WireFormat) {
		return fmt.Errorf("unknown -wire-format %q (want %s or %s)", t.WireFormat, cluster.WireBinary, cluster.WireGob)
	}
	if t.FrameBatch <= 0 {
		return fmt.Errorf("-frame-batch must be positive, got %d", t.FrameBatch)
	}
	if t.FrameFlushInterval < 0 {
		return fmt.Errorf("-frame-flush-interval must not be negative, got %s", t.FrameFlushInterval)
	}
	return nil
}

// ApplyTo copies the transport configuration into a run config.
func (t *Transport) ApplyTo(cfg *core.Config) {
	cfg.WireFormat = t.WireFormat
	cfg.FrameBatch = t.FrameBatch
	cfg.FrameFlushInterval = t.FrameFlushInterval
	cfg.FrameCompress = t.FrameCompress
}

// String renders the configuration the way the commands print it at
// startup.
func (t *Transport) String() string {
	return fmt.Sprintf("wire-format=%s frame-batch=%d frame-flush-interval=%s frame-compress=%v",
		t.WireFormat, t.FrameBatch, t.FrameFlushInterval, t.FrameCompress)
}

// ByteSize is a flag.Value for byte counts: a plain integer or one
// with a K/M/G suffix (KB/MB/GB and KiB/MiB/GiB also accepted, all
// powers of 1024) — "64M", "2G", "512K", "1048576".
type ByteSize int64

// byteSuffixes in match order: longest first so "KiB" is not read as
// a bare trailing "B".
var byteSuffixes = []struct {
	suffix string
	mult   int64
}{
	{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
	{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
	{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
	{"B", 1},
}

// ParseByteSize parses a human-readable byte count.
func ParseByteSize(s string) (int64, error) {
	trimmed := strings.TrimSpace(s)
	upper := strings.ToUpper(trimmed)
	mult := int64(1)
	for _, e := range byteSuffixes {
		if strings.HasSuffix(upper, e.suffix) {
			mult = e.mult
			trimmed = strings.TrimSpace(trimmed[:len(trimmed)-len(e.suffix)])
			break
		}
	}
	n, err := strconv.ParseInt(trimmed, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q (want an integer, optionally K/M/G-suffixed)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("byte size %q must not be negative", s)
	}
	if mult > 1 && n > math.MaxInt64/mult {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n * mult, nil
}

// Set implements flag.Value.
func (b *ByteSize) Set(s string) error {
	n, err := ParseByteSize(s)
	if err != nil {
		return err
	}
	*b = ByteSize(n)
	return nil
}

// String implements flag.Value, rendering with the largest exact
// binary suffix.
func (b *ByteSize) String() string {
	if b == nil || *b == 0 {
		return "0"
	}
	n := int64(*b)
	switch {
	case n%(1<<30) == 0:
		return strconv.FormatInt(n>>30, 10) + "G"
	case n%(1<<20) == 0:
		return strconv.FormatInt(n>>20, 10) + "M"
	case n%(1<<10) == 0:
		return strconv.FormatInt(n>>10, 10) + "K"
	default:
		return strconv.FormatInt(n, 10)
	}
}

// Int64 is the parsed byte count.
func (b ByteSize) Int64() int64 { return int64(b) }
