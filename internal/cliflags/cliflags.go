// Package cliflags holds flag blocks shared between the sfj commands,
// so deployment scripts carry one flag vocabulary and validation lives
// in one place.
package cliflags

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Transport is the cluster data-plane configuration shared by
// sfj-serve and sfj-topology: wire encoding and frame coalescing.
type Transport struct {
	// WireFormat is the data-plane encoding: binary (varint-packed
	// batched frames, the default) or gob (one envelope per tuple, for
	// A/B measurement).
	WireFormat string
	// FrameBatch caps how many tuples coalesce into one binary frame.
	FrameBatch int
	// FrameFlushInterval is how long a peer sender waits to fill a
	// frame before flushing (0 = send whatever is pending immediately).
	FrameFlushInterval time.Duration
	// FrameCompress DEFLATE-compresses binary frames when that shrinks
	// them.
	FrameCompress bool
}

// RegisterTransport registers the transport flag block on fs with the
// shared defaults and returns the destination struct, populated after
// fs.Parse.
func RegisterTransport(fs *flag.FlagSet) *Transport {
	t := &Transport{}
	fs.StringVar(&t.WireFormat, "wire-format", cluster.WireBinary,
		"cluster data-plane encoding: binary (varint-packed batched frames, the default) or gob (one envelope per tuple, for A/B measurement)")
	fs.IntVar(&t.FrameBatch, "frame-batch", 32,
		"max tuples coalesced into one binary data frame")
	fs.DurationVar(&t.FrameFlushInterval, "frame-flush-interval", 0,
		"how long a peer sender waits to fill a frame before flushing (0 = send whatever is pending immediately)")
	fs.BoolVar(&t.FrameCompress, "frame-compress", false,
		"DEFLATE-compress binary data frames when that shrinks them")
	return t
}

// Validate checks the parsed values; the returned error is phrased for
// direct printing to a command's stderr.
func (t *Transport) Validate() error {
	if !cluster.ValidWireFormat(t.WireFormat) {
		return fmt.Errorf("unknown -wire-format %q (want %s or %s)", t.WireFormat, cluster.WireBinary, cluster.WireGob)
	}
	if t.FrameBatch <= 0 {
		return fmt.Errorf("-frame-batch must be positive, got %d", t.FrameBatch)
	}
	if t.FrameFlushInterval < 0 {
		return fmt.Errorf("-frame-flush-interval must not be negative, got %s", t.FrameFlushInterval)
	}
	return nil
}

// ApplyTo copies the transport configuration into a run config.
func (t *Transport) ApplyTo(cfg *core.Config) {
	cfg.WireFormat = t.WireFormat
	cfg.FrameBatch = t.FrameBatch
	cfg.FrameFlushInterval = t.FrameFlushInterval
	cfg.FrameCompress = t.FrameCompress
}

// String renders the configuration the way the commands print it at
// startup.
func (t *Transport) String() string {
	return fmt.Sprintf("wire-format=%s frame-batch=%d frame-flush-interval=%s frame-compress=%v",
		t.WireFormat, t.FrameBatch, t.FrameFlushInterval, t.FrameCompress)
}
