package cliflags

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func TestRegisterTransportDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tr := RegisterTransport(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if tr.WireFormat != cluster.WireBinary || tr.FrameBatch != 32 ||
		tr.FrameFlushInterval != 0 || tr.FrameCompress {
		t.Errorf("defaults = %+v", tr)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
}

func TestTransportParseAndApply(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tr := RegisterTransport(fs)
	args := []string{"-wire-format", "gob", "-frame-batch", "64",
		"-frame-flush-interval", "5ms", "-frame-compress"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var cfg core.Config
	tr.ApplyTo(&cfg)
	if cfg.WireFormat != cluster.WireGob || cfg.FrameBatch != 64 ||
		cfg.FrameFlushInterval.Milliseconds() != 5 || !cfg.FrameCompress {
		t.Errorf("applied = %+v", cfg)
	}
	for _, want := range []string{"wire-format=gob", "frame-batch=64", "frame-flush-interval=5ms", "frame-compress=true"} {
		if !strings.Contains(tr.String(), want) {
			t.Errorf("String() = %q missing %q", tr.String(), want)
		}
	}
}

func TestTransportValidate(t *testing.T) {
	for _, bad := range []Transport{
		{WireFormat: "nope", FrameBatch: 32},
		{WireFormat: cluster.WireBinary, FrameBatch: 0},
		{WireFormat: cluster.WireBinary, FrameBatch: 32, FrameFlushInterval: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v validated", bad)
		}
	}
}
