package cliflags

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func TestRegisterTransportDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tr := RegisterTransport(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if tr.WireFormat != cluster.WireBinary || tr.FrameBatch != 32 ||
		tr.FrameFlushInterval != 0 || tr.FrameCompress {
		t.Errorf("defaults = %+v", tr)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
}

func TestTransportParseAndApply(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tr := RegisterTransport(fs)
	args := []string{"-wire-format", "gob", "-frame-batch", "64",
		"-frame-flush-interval", "5ms", "-frame-compress"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var cfg core.Config
	tr.ApplyTo(&cfg)
	if cfg.WireFormat != cluster.WireGob || cfg.FrameBatch != 64 ||
		cfg.FrameFlushInterval.Milliseconds() != 5 || !cfg.FrameCompress {
		t.Errorf("applied = %+v", cfg)
	}
	for _, want := range []string{"wire-format=gob", "frame-batch=64", "frame-flush-interval=5ms", "frame-compress=true"} {
		if !strings.Contains(tr.String(), want) {
			t.Errorf("String() = %q missing %q", tr.String(), want)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"0":       0,
		"1048576": 1 << 20,
		"512K":    512 << 10,
		"64M":     64 << 20,
		"2G":      2 << 30,
		"64MB":    64 << 20,
		"64MiB":   64 << 20,
		"64m":     64 << 20,
		"128B":    128,
		" 8M ":    8 << 20,
	}
	for in, want := range good {
		got, err := ParseByteSize(in)
		if err != nil {
			t.Errorf("ParseByteSize(%q): %v", in, err)
		} else if got != want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "M", "-1K", "1.5G", "64X", "9999999999G"} {
		if n, err := ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q) = %d, want error", bad, n)
		}
	}
}

func TestByteSizeFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var budget ByteSize
	fs.Var(&budget, "memory-budget", "")
	if err := fs.Parse([]string{"-memory-budget", "64M"}); err != nil {
		t.Fatal(err)
	}
	if budget.Int64() != 64<<20 {
		t.Errorf("parsed = %d, want %d", budget.Int64(), 64<<20)
	}
	if s := budget.String(); s != "64M" {
		t.Errorf("String() = %q, want 64M", s)
	}
	for val, want := range map[ByteSize]string{0: "0", 1 << 30: "1G", 3 << 10: "3K", 1000: "1000"} {
		v := val
		if got := v.String(); got != want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(val), got, want)
		}
	}
}

func TestTransportValidate(t *testing.T) {
	for _, bad := range []Transport{
		{WireFormat: "nope", FrameBatch: 32},
		{WireFormat: cluster.WireBinary, FrameBatch: 0},
		{WireFormat: cluster.WireBinary, FrameBatch: 32, FrameFlushInterval: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v validated", bad)
		}
	}
}
