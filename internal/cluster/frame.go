// Package cluster is the distributed runtime for topologies: the same
// component graph executed by internal/topology in one process runs
// here across multiple worker processes connected over TCP. A
// coordinator collects worker registrations, distributes the address
// book, detects global termination by double-probing monotonic
// send/execute counters, and gathers the final statistics.
//
// Wire format: the control plane (coordinator handshake, probes,
// heartbeats) carries a gob stream of envelope values — gob's
// self-describing streams provide the framing, and every connection is
// written by at most one mutex-guarded encoder. The data plane speaks
// the length-prefixed binary batched format from wire.go by default,
// with this gob encoding selectable per run (WireGob) for A/B
// measurement; both implement wireConn.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/topology"
)

// frameKind discriminates envelope payloads.
type frameKind uint8

const (
	frameHello frameKind = iota + 1
	frameStart
	frameTuple
	frameProbe
	frameProbeReply
	frameStop
	frameDone
	// frameAbort tells a worker to abandon the run immediately (a peer
	// worker died); the worker tears its tasks down without the usual
	// quiescence protocol and Run returns ErrAborted.
	frameAbort
	// frameHeartbeat is a worker -> coordinator liveness beacon on the
	// control plane; any frame refreshes the worker's lease, heartbeats
	// exist so an idle worker still proves it is scheduled and serving.
	frameHeartbeat
	// frameAck is a receiver -> sender cumulative acknowledgement on the
	// data plane, written back on the inbound connection: every data
	// frame with DataSeq <= AckSeq has been delivered (or deduplicated)
	// and may leave the sender's resend buffer.
	frameAck

	// Elastic-rescale control plane (coordinator <-> workers). The
	// protocol is pause -> quiesce -> loads -> rescale (migrate) ->
	// resume, with retire closing out a departing worker; see
	// rescale.go for the full timeline.
	framePause        // coordinator -> workers: park spouts at the window frontier
	framePaused       // worker -> coordinator: spouts parked, Window = frontier
	frameLoads        // coordinator -> workers: report hosted tasks + live loads
	frameLoadsReply   // worker -> coordinator: Loads payload
	frameRescale      // coordinator -> workers: epoch, moves, addresses, departing set
	frameRescaleReady // worker -> coordinator: migrations in/out complete, buffers drained
	frameResume       // coordinator -> survivors: swap done, unpark spouts, retire departed peers
	frameRetire       // coordinator -> departing worker: send final stats and exit

	// frameState is the data-plane migration frame: one chunk of a
	// moving task's state.Snapshotter envelope, sequenced through the
	// same per-peer resend buffers as tuples — so a sever mid-migration
	// replays the chunks instead of losing them.
	frameState
)

// envelope is the single wire message type; unused fields stay at their
// zero values (gob omits them).
type envelope struct {
	Kind frameKind

	// frameHello: worker registration. Joining marks a late worker
	// dialling into a live run (elastic grow); it idles until a rescale
	// welcomes it with an epoch-stamped placement table.
	WorkerID int
	DataAddr string
	Joining  bool

	// frameStart: coordinator -> workers address book. Table/Epoch/
	// Workers are set only for late joiners, which cannot derive the
	// current placement from (spec, worker count) — it may already have
	// been reshaped by earlier rescales.
	Addresses map[int]string
	Table     map[string][]int

	// Elastic rescale. Epoch stamps frameRescale (the successor epoch)
	// and frameState (the epoch the migration belongs to); Workers is
	// the successor worker count; Moves the migration plan; Departing
	// the worker ids leaving the cluster (on frameRescale and
	// frameResume, where survivors retire the departed peer links);
	// Loads the frameLoadsReply payload; Window the frontier a paused
	// worker reports (framePaused) and the frontier a state chunk was
	// cut at (frameState).
	Epoch     uint64
	Workers   int
	Moves     []Move
	Departing []int
	Loads     []TaskLoad
	Window    int

	// frameState: one chunk of a migrating task's snapshot envelope,
	// destined for (TargetComp, TargetTask); StateLast marks the final
	// chunk, after which the receiver restores and installs the task.
	StateData []byte
	StateLast bool

	// frameTuple: data-plane delivery. Dict is the wire-dictionary
	// delta: the attr/val strings first referenced by this frame's
	// dictionary-encoded documents, in reference order (see dict.go).
	TargetComp string
	TargetTask int
	Tuple      topology.Tuple
	Dict       []string

	// Reliable delivery (frameTuple / frameAck). FromWorker names the
	// sending worker (so the receiver keys its dedup cursor and routes
	// piggybacked acks; -1 on frames that predate a worker identity).
	// DataSeq is the per peer-pair monotonic data sequence number (1-
	// based; 0 marks an unsequenced frame, delivered without dedup).
	// AckSeq is the cumulative ack — on frameAck it is the payload, on
	// frameTuple it piggybacks the sender's receive-side cursor for the
	// destination worker.
	FromWorker int
	DataSeq    uint64
	AckSeq     uint64

	// frameProbe / frameProbeReply: termination detection.
	Seq        int
	SpoutsDone bool
	Sent       int64
	Executed   int64

	// frameDone: final per-worker statistics.
	Stats topology.Stats
}

// wireConn is a data-plane connection: a codec over one socket. Both
// the gob conn and the binary binConn implement it, so the reliable-
// delivery machinery (resend buffers, ack loops, dedup cursors) is
// format-agnostic. send/sendBatch are safe for concurrent use; recv is
// owned by a single reading goroutine.
type wireConn interface {
	send(*envelope) error
	// sendBatch writes a contiguous run of sequenced tuple envelopes —
	// one wire frame on the binary format, a frame per member on gob.
	// An error poisons the connection: the caller must evict it and
	// replay on a successor.
	sendBatch([]*envelope) error
	recv() (*envelope, error)
	close()
}

// conn wraps a net.Conn with a mutex-guarded gob encoder and a decoder,
// plus the connection-scoped wire dictionaries (dict.go): sendDict maps
// strings already shipped on this connection to their ids, recvDict is
// the receiving mirror. Both start empty on every (re)dial.
type conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	mu  sync.Mutex

	sendDict map[string]uint32 // guarded by mu
	recvDict []string          // owned by the single reading goroutine

	// Optional wire-dictionary instruments (nil-safe no-ops): hits are
	// strings resolved from the connection dictionary, misses are
	// strings shipped in a frame's Dict delta.
	dictHits   *telemetry.Counter
	dictMisses *telemetry.Counter
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// countingConn counts bytes crossing a data-plane socket into telemetry
// counters; with nil counters it is a transparent wrapper.
type countingConn struct {
	net.Conn
	sent  *telemetry.Counter
	recvd *telemetry.Counter
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recvd.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// send writes one envelope; safe for concurrent use. Tuple frames are
// dictionary-encoded against this connection's dictionary on the way
// out (the envelope itself is never mutated).
func (c *conn) send(e *envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Kind == frameTuple {
		e = c.encodeTupleLocked(e)
	}
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("cluster: send %d: %w", e.Kind, err)
	}
	return nil
}

// sendBatch writes each envelope as its own gob frame; gob has no
// multi-tuple framing, which is exactly the A/B difference the binary
// format exists to measure.
func (c *conn) sendBatch(es []*envelope) error {
	for _, e := range es {
		if err := c.send(e); err != nil {
			return err
		}
	}
	return nil
}

// recv reads one envelope; the caller owns the read side. Tuple frames
// have their dictionary-encoded documents restored before delivery.
func (c *conn) recv() (*envelope, error) {
	var e envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, err
	}
	if e.Kind == frameTuple {
		if err := c.decodeTuple(&e); err != nil {
			return nil, err
		}
	}
	return &e, nil
}

func (c *conn) close() { _ = c.raw.Close() }

// setDeadline bounds both read and write on the underlying socket; the
// zero time clears the bound. A deadline hit surfaces as a send/recv
// error, turning a silently hung peer into an actionable failure.
func (c *conn) setDeadline(t time.Time) { _ = c.raw.SetDeadline(t) }

// setWriteDeadline bounds only writes — for connections whose read
// side is owned by a long-lived reader goroutine that must not be
// poisoned by a read deadline.
func (c *conn) setWriteDeadline(t time.Time) { _ = c.raw.SetWriteDeadline(t) }

// Register makes a concrete type transferable inside tuple Values.
// Packages that define tuple payload types call this from an init
// function or a setup hook before any cluster run.
func Register(v any) { gob.Register(v) }

func init() {
	// Builtin payload shapes used across the repository's topologies.
	Register([]int{})
	Register(map[string]any{})
}
