package cluster

// Binary wire format: the data plane's hand-rolled replacement for gob
// envelopes (ROADMAP item 5). Each connection carries a stream of
// length-prefixed frames; a data frame coalesces many tuples and ships
// the connection's dictionary delta as a compact binary section, so
// interned documents travel as columnar varint-packed reference arrays
// instead of self-describing gob maps. The control plane (coordinator
// handshake, probes, heartbeats) stays on gob — it is low-rate and
// benefits from gob's evolvability; only worker<->worker tuple/ack
// traffic takes this path.
//
// Connection preamble (dialer -> acceptor, once, before any frame):
//
//	"SFJW" magic (4 bytes) | version (1 byte)
//
// Frame layout (both directions after the preamble):
//
//	uvarint frameLen            // length of everything that follows
//	byte    kind                // 1 = data, 2 = ack
//	byte    flags               // bit0: payload is DEFLATE-compressed
//	payload [frameLen-2]byte
//
// Data payload (uncompressed form):
//
//	varint  fromWorker
//	uvarint ackSeq              // piggybacked cumulative ack, 0 = none
//	uvarint nDict               // dictionary delta: first-use strings,
//	nDict × { uvarint len, bytes }  // in reference order
//	uvarint nTuples
//	uvarint firstSeq            // member i carries DataSeq firstSeq+i
//	nTuples × member
//
// Member:
//
//	uvarint targetComp ref | varint targetTask | uvarint stream ref
//	uvarint source ref     | varint sourceTask | uvarint nValues
//	nValues × { uvarint key ref, byte tag, value payload }
//
// Documents (tag 1) are columnar: all attr refs then all val refs, so
// runs of shared attribute ids varint-pack tightly. Value strings are
// inlined rather than dictionary-encoded — values can be unbounded-
// cardinality, and the per-connection dictionary must not grow without
// bound. Any payload type outside the fast set falls back to a
// length-prefixed gob blob (tag 10), keeping the format total over
// everything gob could carry.
//
// Ack payload: varint workerID | uvarint ackSeq.
//
// Reliable-delivery semantics are untouched: a batch is a contiguous
// slice of one peer's resend buffer, so member sequence numbers are
// implicit (firstSeq+i), the receiver dedups per member on DataSeq, and
// replays after a sever re-encode against the fresh connection's empty
// dictionary exactly as on the gob path.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"repro/internal/document"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Wire format names accepted by Worker.WireFormat and core.Config.
const (
	// WireGob keeps the data plane on gob envelopes — the pre-binary
	// encoding, retained for A/B measurement.
	WireGob = "gob"
	// WireBinary is the length-prefixed varint-packed batched format
	// described above (the default).
	WireBinary = "binary"
)

// ValidWireFormat reports whether s names a known wire format ("" means
// the default and is valid).
func ValidWireFormat(s string) bool {
	return s == "" || s == WireGob || s == WireBinary
}

const (
	binWireMagic   = "SFJW"
	binWireVersion = 1

	binKindData = 1
	binKindAck  = 2
	// binKindState carries one chunk of a migrating task's snapshot
	// envelope (elastic rescale). State frames are sequenced like data
	// frames — they occupy DataSeq slots in the per-peer stream and are
	// acked, deduplicated and replayed identically — but always travel
	// one to a frame: a multi-megabyte snapshot chunk has nothing to
	// gain from coalescing with tuples, and keeping the kinds
	// homogeneous per frame keeps the columnar tuple layout untouched.
	binKindState = 3

	binFlagCompressed = 1

	// maxBinFrame bounds a frame a decoder will accept; anything larger
	// is treated as stream corruption rather than allocated.
	maxBinFrame = 64 << 20
	// compressMin is the smallest payload worth running through DEFLATE.
	compressMin = 512
)

var errTruncatedFrame = errors.New("cluster: truncated binary frame")

// Value type tags inside a member.
const (
	tagNil      = 0
	tagDoc      = 1
	tagString   = 2
	tagInt      = 3
	tagInt64    = 4
	tagUint64   = 5
	tagFloat64  = 6
	tagTrue     = 7
	tagFalse    = 8
	tagIntSlice = 9
	tagGob      = 10
)

// binConn is the binary-format data-plane connection. Like the gob
// conn it owns a per-connection wire dictionary on each side (empty on
// every (re)dial), a mutex-guarded write path, and a single-goroutine
// read path; unlike gob it writes one socket frame per batch and hands
// decoded batch members to recv one at a time.
type binConn struct {
	raw net.Conn
	br  *bufio.Reader
	mu  sync.Mutex // guards the write path and sendDict

	compress bool
	pre      []byte // preamble prepended to the first write (dialer side)
	wantPre  bool   // preamble expected before the first frame (acceptor)

	sendDict map[string]uint32 // guarded by mu
	recvDict []string          // owned by the reading goroutine

	// pending holds decoded batch members not yet returned by recv.
	pending []*envelope

	// Write-side scratch (guarded by mu) and read-side scratch (owned by
	// the reading goroutine); reused across frames.
	members []byte
	payload []byte
	frame   []byte
	delta   []string
	rbuf    []byte
	zbuf    bytes.Buffer
	zw      *flate.Writer

	// Cumulative pre/post-compression byte totals for the ratio gauge.
	rawTotal, compTotal uint64

	// Optional instruments (nil-safe no-ops).
	dictHits, dictMisses      *telemetry.Counter
	wireSentData, wireSentAck *telemetry.Counter
	wireRecvData, wireRecvAck *telemetry.Counter
	batchDocs                 *telemetry.Histogram
	rawBytes, compBytes       *telemetry.Counter
	compRatio                 *telemetry.Gauge
}

// newBinConn wraps a data-plane socket in the binary codec. The dialer
// side announces itself with the magic preamble; the acceptor verifies
// it before the first frame.
func newBinConn(raw net.Conn, dialer, compress bool) *binConn {
	c := &binConn{
		raw:      raw,
		br:       bufio.NewReaderSize(raw, 32<<10),
		compress: compress,
	}
	if dialer {
		c.pre = append([]byte(binWireMagic), binWireVersion)
	} else {
		c.wantPre = true
	}
	return c
}

func (c *binConn) close() { _ = c.raw.Close() }

// send writes one envelope as its own frame. Only data-plane kinds
// travel on a binary connection; the control plane stays on gob.
func (c *binConn) send(e *envelope) error {
	switch e.Kind {
	case frameTuple:
		return c.sendBatch([]*envelope{e})
	case frameAck:
		c.mu.Lock()
		defer c.mu.Unlock()
		p := c.payload[:0]
		p = binary.AppendVarint(p, int64(e.WorkerID))
		p = binary.AppendUvarint(p, e.AckSeq)
		c.payload = p
		return c.writeFrameLocked(binKindAck, p)
	case frameState:
		return c.sendState(e)
	default:
		return fmt.Errorf("cluster: frame kind %d not carried on the binary data plane", e.Kind)
	}
}

// sendBatch coalesces a contiguous run of sequenced tuple envelopes
// into one wire frame. Members must carry consecutive DataSeq values
// (the resend buffer guarantees this); their sequence travels as a
// single firstSeq. Envelopes are never mutated — the dictionary encode
// emits fresh bytes, so the resend buffer's raw strings re-encode
// cleanly against a fresh connection after a sever.
func (c *binConn) sendBatch(es []*envelope) error {
	if len(es) == 0 {
		return nil
	}
	if es[0].Kind == frameState {
		// State chunks never coalesce; the sender splits batches at kind
		// boundaries, so a state envelope arrives here only alone.
		if len(es) != 1 {
			return errors.New("cluster: state frames cannot batch")
		}
		return c.sendState(es[0])
	}
	for i := 1; i < len(es); i++ {
		if es[i].DataSeq != es[0].DataSeq+uint64(i) {
			return fmt.Errorf("cluster: wire batch sequence gap at member %d", i)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sendDict == nil {
		c.sendDict = make(map[string]uint32)
	}
	delta := c.delta[:0]
	m := c.members[:0]
	var err error
	for _, e := range es {
		if m, err = c.appendMember(m, e, &delta); err != nil {
			c.delta, c.members = delta[:0], m[:0]
			return err
		}
	}
	p := c.payload[:0]
	p = binary.AppendVarint(p, int64(es[0].FromWorker))
	p = binary.AppendUvarint(p, es[0].AckSeq)
	p = binary.AppendUvarint(p, uint64(len(delta)))
	for _, s := range delta {
		p = binary.AppendUvarint(p, uint64(len(s)))
		p = append(p, s...)
	}
	p = binary.AppendUvarint(p, uint64(len(es)))
	p = binary.AppendUvarint(p, es[0].DataSeq)
	p = append(p, m...)
	c.delta, c.members, c.payload = delta, m, p
	c.batchDocs.ObserveNS(int64(len(es)))
	return c.writeFrameLocked(binKindData, p)
}

// sendState writes one migration state chunk as its own frame. The
// target identifiers travel as raw length-prefixed strings rather than
// dictionary refs: state frames are rare (a handful per rescale), and
// keeping them dictionary-free means a replay after a sever needs no
// encoder state beyond the bytes in the resend buffer.
//
// State payload (uncompressed form):
//
//	varint  fromWorker | uvarint ackSeq | uvarint dataSeq
//	uvarint epoch      | varint window  | byte last
//	uvarint len(targetComp) | bytes | varint targetTask
//	uvarint len(stateData)  | bytes
func (c *binConn) sendState(e *envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.payload[:0]
	p = binary.AppendVarint(p, int64(e.FromWorker))
	p = binary.AppendUvarint(p, e.AckSeq)
	p = binary.AppendUvarint(p, e.DataSeq)
	p = binary.AppendUvarint(p, e.Epoch)
	p = binary.AppendVarint(p, int64(e.Window))
	if e.StateLast {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	p = binary.AppendUvarint(p, uint64(len(e.TargetComp)))
	p = append(p, e.TargetComp...)
	p = binary.AppendVarint(p, int64(e.TargetTask))
	p = binary.AppendUvarint(p, uint64(len(e.StateData)))
	p = append(p, e.StateData...)
	c.payload = p
	return c.writeFrameLocked(binKindState, p)
}

// writeFrameLocked frames and writes one payload (compressing data
// payloads when enabled and profitable) in a single socket write. The
// caller holds c.mu. Any error poisons the connection: the sender
// evicts it and replays on a successor, so a half-written frame can
// never desynchronise the stream.
func (c *binConn) writeFrameLocked(kind byte, payload []byte) error {
	flags := byte(0)
	body := payload
	if c.compress && (kind == binKindData || kind == binKindState) && len(payload) >= compressMin {
		if z, ok := c.deflateLocked(payload); ok {
			c.rawTotal += uint64(len(payload))
			c.compTotal += uint64(len(z))
			c.rawBytes.Add(int64(len(payload)))
			c.compBytes.Add(int64(len(z)))
			c.compRatio.Set(float64(c.rawTotal) / float64(c.compTotal))
			body = z
			flags |= binFlagCompressed
		}
	}
	f := c.frame[:0]
	if len(c.pre) > 0 {
		f = append(f, c.pre...)
		c.pre = nil
	}
	f = binary.AppendUvarint(f, uint64(len(body))+2)
	f = append(f, kind, flags)
	f = append(f, body...)
	c.frame = f
	if _, err := c.raw.Write(f); err != nil {
		return fmt.Errorf("cluster: wire send: %w", err)
	}
	switch kind {
	case binKindData:
		c.wireSentData.Add(int64(len(f)))
	case binKindAck:
		c.wireSentAck.Add(int64(len(f)))
	}
	return nil
}

// deflateLocked compresses p into the connection's reusable buffer,
// reporting false when compression fails or does not shrink the
// payload (the frame then travels uncompressed).
func (c *binConn) deflateLocked(p []byte) ([]byte, bool) {
	c.zbuf.Reset()
	if c.zw == nil {
		zw, err := flate.NewWriter(&c.zbuf, flate.BestSpeed)
		if err != nil {
			return nil, false
		}
		c.zw = zw
	} else {
		c.zw.Reset(&c.zbuf)
	}
	if _, err := c.zw.Write(p); err != nil {
		return nil, false
	}
	if err := c.zw.Close(); err != nil {
		return nil, false
	}
	if c.zbuf.Len() >= len(p) {
		return nil, false
	}
	return c.zbuf.Bytes(), true
}

func (c *binConn) appendMember(m []byte, e *envelope, delta *[]string) ([]byte, error) {
	m = binary.AppendUvarint(m, uint64(c.refLocked(e.TargetComp, delta)))
	m = binary.AppendVarint(m, int64(e.TargetTask))
	m = binary.AppendUvarint(m, uint64(c.refLocked(e.Tuple.Stream, delta)))
	m = binary.AppendUvarint(m, uint64(c.refLocked(e.Tuple.Source, delta)))
	m = binary.AppendVarint(m, int64(e.Tuple.SourceTask))
	m = binary.AppendUvarint(m, uint64(len(e.Tuple.Values)))
	var err error
	for k, v := range e.Tuple.Values {
		m = binary.AppendUvarint(m, uint64(c.refLocked(k, delta)))
		if m, err = c.appendValue(m, v, delta); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// refLocked resolves a string to its dictionary id, assigning the next
// dense id and recording it in the frame's delta on first use. Same
// contract as the gob path's refLocked: state advances only with the
// connection, and a failed send evicts the whole connection.
func (c *binConn) refLocked(s string, delta *[]string) uint32 {
	if id, ok := c.sendDict[s]; ok {
		c.dictHits.Inc()
		return id
	}
	c.dictMisses.Inc()
	id := uint32(len(c.sendDict))
	c.sendDict[s] = id
	*delta = append(*delta, s)
	return id
}

func (c *binConn) appendValue(m []byte, v any, delta *[]string) ([]byte, error) {
	switch v := v.(type) {
	case nil:
		return append(m, tagNil), nil
	case document.Document:
		m = append(m, tagDoc)
		pairs := v.Pairs()
		m = binary.AppendUvarint(m, v.ID)
		m = binary.AppendUvarint(m, uint64(len(pairs)))
		for _, p := range pairs {
			m = binary.AppendUvarint(m, uint64(c.refLocked(p.Attr, delta)))
		}
		for _, p := range pairs {
			m = binary.AppendUvarint(m, uint64(c.refLocked(p.Val, delta)))
		}
		return m, nil
	case string:
		m = append(m, tagString)
		m = binary.AppendUvarint(m, uint64(len(v)))
		return append(m, v...), nil
	case int:
		m = append(m, tagInt)
		return binary.AppendVarint(m, int64(v)), nil
	case int64:
		m = append(m, tagInt64)
		return binary.AppendVarint(m, v), nil
	case uint64:
		m = append(m, tagUint64)
		return binary.AppendUvarint(m, v), nil
	case float64:
		m = append(m, tagFloat64)
		return binary.LittleEndian.AppendUint64(m, math.Float64bits(v)), nil
	case bool:
		if v {
			return append(m, tagTrue), nil
		}
		return append(m, tagFalse), nil
	case []int:
		m = append(m, tagIntSlice)
		m = binary.AppendUvarint(m, uint64(len(v)))
		for _, n := range v {
			m = binary.AppendVarint(m, int64(n))
		}
		return m, nil
	default:
		// Anything else rides as a self-contained gob blob, so every
		// payload type the gob format carried still travels (the type
		// must be Register-ed, exactly as before).
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
			return nil, fmt.Errorf("cluster: wire value encode: %w", err)
		}
		m = append(m, tagGob)
		m = binary.AppendUvarint(m, uint64(buf.Len()))
		return append(m, buf.Bytes()...), nil
	}
}

// recv returns the next decoded envelope, reading and unpacking frames
// as needed; batch members come out one at a time in order, each with
// its implicit DataSeq, so the reliable-delivery read loop is untouched
// by batching.
func (c *binConn) recv() (*envelope, error) {
	for len(c.pending) == 0 {
		if err := c.readFrame(); err != nil {
			return nil, err
		}
	}
	e := c.pending[0]
	c.pending[0] = nil
	c.pending = c.pending[1:]
	return e, nil
}

func (c *binConn) readFrame() error {
	if c.wantPre {
		var pre [len(binWireMagic) + 1]byte
		if _, err := io.ReadFull(c.br, pre[:]); err != nil {
			return err
		}
		if string(pre[:len(binWireMagic)]) != binWireMagic {
			return fmt.Errorf("cluster: bad wire preamble %q", pre[:])
		}
		if pre[len(binWireMagic)] != binWireVersion {
			return fmt.Errorf("cluster: wire version %d not supported", pre[len(binWireMagic)])
		}
		c.wantPre = false
	}
	ln, err := binary.ReadUvarint(c.br)
	if err != nil {
		return err
	}
	if ln < 2 || ln > maxBinFrame {
		return fmt.Errorf("cluster: wire frame length %d out of range", ln)
	}
	if uint64(cap(c.rbuf)) < ln {
		c.rbuf = make([]byte, ln)
	}
	buf := c.rbuf[:ln]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	kind, flags := buf[0], buf[1]
	payload := buf[2:]
	if flags&binFlagCompressed != 0 {
		if payload, err = c.inflate(payload); err != nil {
			return err
		}
	}
	switch kind {
	case binKindData:
		c.wireRecvData.Add(int64(ln) + int64(uvarintLen(ln)))
		return c.readData(payload)
	case binKindAck:
		c.wireRecvAck.Add(int64(ln) + int64(uvarintLen(ln)))
		return c.readAck(payload)
	case binKindState:
		c.wireRecvData.Add(int64(ln) + int64(uvarintLen(ln)))
		return c.readState(payload)
	default:
		return fmt.Errorf("cluster: unknown wire frame kind %d", kind)
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (c *binConn) inflate(p []byte) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(p))
	out, err := io.ReadAll(io.LimitReader(zr, maxBinFrame+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: wire inflate: %w", err)
	}
	if len(out) > maxBinFrame {
		return nil, fmt.Errorf("cluster: inflated frame exceeds %d bytes", maxBinFrame)
	}
	return out, nil
}

func (c *binConn) readAck(payload []byte) error {
	r := wireReader{b: payload}
	from, err := r.varint()
	if err != nil {
		return err
	}
	seq, err := r.uvarint()
	if err != nil {
		return err
	}
	c.pending = append(c.pending, &envelope{Kind: frameAck, WorkerID: int(from), AckSeq: seq})
	return nil
}

func (c *binConn) readState(payload []byte) error {
	r := wireReader{b: payload}
	from, err := r.varint()
	if err != nil {
		return err
	}
	ackSeq, err := r.uvarint()
	if err != nil {
		return err
	}
	dataSeq, err := r.uvarint()
	if err != nil {
		return err
	}
	epoch, err := r.uvarint()
	if err != nil {
		return err
	}
	window, err := r.varint()
	if err != nil {
		return err
	}
	last, err := r.byte()
	if err != nil {
		return err
	}
	cl, err := r.uvarint()
	if err != nil {
		return err
	}
	comp, err := r.take(cl)
	if err != nil {
		return err
	}
	task, err := r.varint()
	if err != nil {
		return err
	}
	dl, err := r.uvarint()
	if err != nil {
		return err
	}
	data, err := r.take(dl)
	if err != nil {
		return err
	}
	if r.rem() != 0 {
		return fmt.Errorf("cluster: %d trailing bytes after wire state frame", r.rem())
	}
	c.pending = append(c.pending, &envelope{
		Kind:       frameState,
		FromWorker: int(from),
		AckSeq:     ackSeq,
		DataSeq:    dataSeq,
		Epoch:      epoch,
		Window:     int(window),
		StateLast:  last != 0,
		TargetComp: string(comp),
		TargetTask: int(task),
		StateData:  append([]byte(nil), data...),
	})
	return nil
}

func (c *binConn) readData(payload []byte) error {
	r := wireReader{b: payload}
	from, err := r.varint()
	if err != nil {
		return err
	}
	ackSeq, err := r.uvarint()
	if err != nil {
		return err
	}
	ndict, err := r.uvarint()
	if err != nil {
		return err
	}
	if ndict > uint64(r.rem()) {
		return errTruncatedFrame
	}
	for i := uint64(0); i < ndict; i++ {
		sl, err := r.uvarint()
		if err != nil {
			return err
		}
		b, err := r.take(sl)
		if err != nil {
			return err
		}
		c.recvDict = append(c.recvDict, string(b))
	}
	ntuples, err := r.uvarint()
	if err != nil {
		return err
	}
	if ntuples == 0 || ntuples > uint64(r.rem()) {
		return fmt.Errorf("cluster: wire frame tuple count %d out of range", ntuples)
	}
	firstSeq, err := r.uvarint()
	if err != nil {
		return err
	}
	if ntuples > 1 && firstSeq == 0 {
		return errors.New("cluster: multi-tuple wire frame without sequence")
	}
	for i := uint64(0); i < ntuples; i++ {
		e, err := c.readMember(&r)
		if err != nil {
			return err
		}
		e.FromWorker = int(from)
		if firstSeq > 0 {
			e.DataSeq = firstSeq + i
		}
		if i == 0 {
			e.AckSeq = ackSeq
		}
		c.pending = append(c.pending, e)
	}
	if r.rem() != 0 {
		return fmt.Errorf("cluster: %d trailing bytes after wire frame", r.rem())
	}
	return nil
}

func (c *binConn) readMember(r *wireReader) (*envelope, error) {
	comp, err := c.readRef(r)
	if err != nil {
		return nil, err
	}
	task, err := r.varint()
	if err != nil {
		return nil, err
	}
	stream, err := c.readRef(r)
	if err != nil {
		return nil, err
	}
	source, err := c.readRef(r)
	if err != nil {
		return nil, err
	}
	srcTask, err := r.varint()
	if err != nil {
		return nil, err
	}
	nvals, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nvals > uint64(r.rem())+1 {
		return nil, errTruncatedFrame
	}
	e := &envelope{
		Kind:       frameTuple,
		TargetComp: comp,
		TargetTask: int(task),
		Tuple: topology.Tuple{
			Stream:     stream,
			Source:     source,
			SourceTask: int(srcTask),
		},
	}
	if nvals > 0 {
		e.Tuple.Values = make(topology.Values, nvals)
		for i := uint64(0); i < nvals; i++ {
			k, err := c.readRef(r)
			if err != nil {
				return nil, err
			}
			v, err := c.readValue(r)
			if err != nil {
				return nil, err
			}
			e.Tuple.Values[k] = v
		}
	}
	return e, nil
}

func (c *binConn) readRef(r *wireReader) (string, error) {
	ref, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if ref >= uint64(len(c.recvDict)) {
		return "", fmt.Errorf("cluster: wire dictionary ref %d out of range (%d known)", ref, len(c.recvDict))
	}
	return c.recvDict[ref], nil
}

func (c *binConn) readValue(r *wireReader) (any, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagDoc:
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		np, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if np > uint64(r.rem()) {
			return nil, errTruncatedFrame
		}
		pairs := make([]document.Pair, np)
		for i := range pairs {
			if pairs[i].Attr, err = c.readRef(r); err != nil {
				return nil, err
			}
		}
		for i := range pairs {
			if pairs[i].Val, err = c.readRef(r); err != nil {
				return nil, err
			}
		}
		// Send side emitted the document's sorted-unique pair list, so
		// FromSorted takes its verified fast path (and falls back to the
		// full construction on a corrupt payload).
		return document.FromSorted(id, pairs), nil
	case tagString:
		sl, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(sl)
		if err != nil {
			return nil, err
		}
		return string(b), nil
	case tagInt:
		v, err := r.varint()
		return int(v), err
	case tagInt64:
		return r.varint()
	case tagUint64:
		return r.uvarint()
	case tagFloat64:
		b, err := r.take(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
	case tagTrue:
		return true, nil
	case tagFalse:
		return false, nil
	case tagIntSlice:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.rem()) {
			return nil, errTruncatedFrame
		}
		out := make([]int, n)
		for i := range out {
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			out[i] = int(v)
		}
		return out, nil
	case tagGob:
		bl, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(bl)
		if err != nil {
			return nil, err
		}
		var v any
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
			return nil, fmt.Errorf("cluster: wire value decode: %w", err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("cluster: unknown wire value tag %d", tag)
	}
}

// wireReader is a bounds-checked cursor over one frame's payload; every
// read reports truncation as an error instead of panicking, so a
// corrupt frame kills only its connection.
type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) rem() int { return len(r.b) - r.off }

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errTruncatedFrame
	}
	r.off += n
	return v, nil
}

func (r *wireReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, errTruncatedFrame
	}
	r.off += n
	return v, nil
}

func (r *wireReader) take(n uint64) ([]byte, error) {
	if n > uint64(r.rem()) {
		return nil, errTruncatedFrame
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *wireReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errTruncatedFrame
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}
