package cluster

import (
	"fmt"

	"repro/internal/topology"
)

// Placement maps every (component, task) to a worker. It is computed
// deterministically from the topology spec and the worker count, so the
// coordinator and every worker derive the same mapping without shipping
// it.
type Placement struct {
	workers int
	byTask  map[string][]int // component -> task index -> worker id
}

// NewPlacement distributes tasks round-robin across workers, component
// by component in declaration order — the same strategy Storm's even
// scheduler uses.
func NewPlacement(spec []topology.ComponentSpec, workers int) (*Placement, error) {
	if workers < 1 {
		return nil, fmt.Errorf("cluster: placement needs >= 1 worker, got %d", workers)
	}
	p := &Placement{workers: workers, byTask: make(map[string][]int)}
	next := 0
	for _, comp := range spec {
		assign := make([]int, comp.Parallelism)
		for i := range assign {
			assign[i] = next % workers
			next++
		}
		p.byTask[comp.ID] = assign
	}
	return p, nil
}

// WorkerFor returns the worker hosting a task.
func (p *Placement) WorkerFor(component string, task int) int {
	assign, ok := p.byTask[component]
	if !ok || task < 0 || task >= len(assign) {
		panic(fmt.Sprintf("cluster: no placement for %s[%d]", component, task))
	}
	return assign[task]
}

// TasksOn lists the tasks of a component hosted by the given worker.
func (p *Placement) TasksOn(component string, worker int) []int {
	var out []int
	for task, w := range p.byTask[component] {
		if w == worker {
			out = append(out, task)
		}
	}
	return out
}

// Workers reports the worker count.
func (p *Placement) Workers() int { return p.workers }
