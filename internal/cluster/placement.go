package cluster

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Placement maps every (component, task) to a worker. It started life
// as a static table derived identically by every participant; with
// elastic rescale it is now a versioned, immutable routing table: each
// rescale produces a *new* Placement with the epoch advanced, and the
// workers swap it in with a single atomic pointer store — the routing
// hot path pays one atomic load, never a lock. In-flight tuples framed
// under an older epoch that land on a worker no longer hosting their
// task are re-routed through the current table instead of being
// misdelivered (see Worker.deliverLocal).
type Placement struct {
	epoch   uint64
	workers int              // live worker count (not necessarily max id + 1)
	byTask  map[string][]int // component -> task index -> worker id
}

// Move relocates one task to a new home; a rescale is a set of moves
// applied atomically under the next epoch.
type Move struct {
	Comp string
	Task int
	From int
	To   int
}

func (m Move) String() string {
	return fmt.Sprintf("%s[%d]: %d->%d", m.Comp, m.Task, m.From, m.To)
}

// NewPlacement distributes tasks round-robin across workers 0..n-1,
// component by component in declaration order — the same strategy
// Storm's even scheduler uses. Epoch 0.
func NewPlacement(spec []topology.ComponentSpec, workers int) (*Placement, error) {
	if workers < 1 {
		return nil, fmt.Errorf("cluster: placement needs >= 1 worker, got %d", workers)
	}
	p := &Placement{workers: workers, byTask: make(map[string][]int)}
	next := 0
	for _, comp := range spec {
		assign := make([]int, comp.Parallelism)
		for i := range assign {
			assign[i] = next % workers
			next++
		}
		p.byTask[comp.ID] = assign
	}
	return p, nil
}

// PlacementAt reconstructs a placement received over the wire: the
// epoch-stamped table a late-joining worker is handed instead of
// deriving epoch 0 from (spec, workers).
func PlacementAt(epoch uint64, workers int, table map[string][]int) *Placement {
	byTask := make(map[string][]int, len(table))
	for comp, assign := range table {
		byTask[comp] = append([]int(nil), assign...)
	}
	return &Placement{epoch: epoch, workers: workers, byTask: byTask}
}

// Apply produces the successor placement: a deep copy with the moves
// applied, the worker count updated and the epoch advanced to the
// given value. The receiver is never mutated — callers holding the old
// epoch keep routing consistently until they swap. A move whose From
// does not match the current table is rejected: it means two rescales
// raced, and applying it would silently fork the routing state.
func (p *Placement) Apply(epoch uint64, workers int, moves []Move) (*Placement, error) {
	if epoch <= p.epoch {
		return nil, fmt.Errorf("cluster: placement epoch %d not after %d", epoch, p.epoch)
	}
	next := PlacementAt(epoch, workers, p.byTask)
	for _, m := range moves {
		assign, ok := next.byTask[m.Comp]
		if !ok || m.Task < 0 || m.Task >= len(assign) {
			return nil, fmt.Errorf("cluster: move %s targets an unknown task", m)
		}
		if assign[m.Task] != m.From {
			return nil, fmt.Errorf("cluster: move %s but task is on worker %d", m, assign[m.Task])
		}
		assign[m.Task] = m.To
	}
	return next, nil
}

// Epoch is the placement's version; every rescale advances it.
func (p *Placement) Epoch() uint64 { return p.epoch }

// WorkerFor returns the worker hosting a task.
func (p *Placement) WorkerFor(component string, task int) int {
	assign, ok := p.byTask[component]
	if !ok || task < 0 || task >= len(assign) {
		panic(fmt.Sprintf("cluster: no placement for %s[%d]", component, task))
	}
	return assign[task]
}

// Lookup is WorkerFor without the panic — for paths (stale-epoch
// re-routing) where a malformed frame must degrade to a recorded drop,
// not a crashed read loop.
func (p *Placement) Lookup(component string, task int) (int, bool) {
	assign, ok := p.byTask[component]
	if !ok || task < 0 || task >= len(assign) {
		return 0, false
	}
	return assign[task], true
}

// TasksOn lists the tasks of a component hosted by the given worker.
func (p *Placement) TasksOn(component string, worker int) []int {
	var out []int
	for task, w := range p.byTask[component] {
		if w == worker {
			out = append(out, task)
		}
	}
	return out
}

// Workers reports the live worker count.
func (p *Placement) Workers() int { return p.workers }

// Table deep-copies the assignment table — the wire representation a
// coordinator ships to late joiners and /debug/placement renders.
func (p *Placement) Table() map[string][]int {
	out := make(map[string][]int, len(p.byTask))
	for comp, assign := range p.byTask {
		out[comp] = append([]int(nil), assign...)
	}
	return out
}

// WorkerIDs lists the distinct worker ids the table references,
// ascending. After a shrink the set need not be contiguous.
func (p *Placement) WorkerIDs() []int {
	seen := make(map[int]bool)
	for _, assign := range p.byTask {
		for _, w := range assign {
			seen[w] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for w := range seen {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	return ids
}
