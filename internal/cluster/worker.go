package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/topology"
)

// ErrKilled is returned by Run on a worker that was hard-killed via
// Kill; ErrAborted on a worker told by the coordinator to abandon the
// run because a peer died.
var (
	ErrKilled  = errors.New("cluster: worker killed")
	ErrAborted = errors.New("cluster: run aborted")
)

// mailbox is the worker-local FIFO queue (semantics identical to the
// in-process runtime's mailbox): blocking receive, and blocking send
// when a positive capacity is set. A readLoop blocked on a full
// mailbox stops reading its socket, so TCP flow control pushes the
// backpressure to the remote sender.
type mailbox struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []topology.Tuple
	capacity int // 0 = unbounded
	peak     int // high-water mark of len(buf), for tests/metrics
	closed   bool

	// Optional live instruments (nil-safe no-ops when telemetry is
	// off), mirroring the in-process runtime's mailbox.
	depth       *telemetry.Gauge
	blockedNS   *telemetry.Counter
	blockedPuts *telemetry.Counter
}

func newMailbox(capacity int) *mailbox {
	m := &mailbox{capacity: capacity}
	m.notEmpty = sync.NewCond(&m.mu)
	m.notFull = sync.NewCond(&m.mu)
	return m
}

// put appends t, blocking while the mailbox is at capacity. It reports
// whether the tuple was accepted; false means the mailbox closed.
func (m *mailbox) put(t topology.Tuple) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.capacity > 0 && len(m.buf) >= m.capacity && !m.closed {
		// Only a put that actually blocks pays for the clock reads.
		var start time.Time
		if m.blockedNS != nil {
			start = time.Now()
			m.blockedPuts.Inc()
		}
		for m.capacity > 0 && len(m.buf) >= m.capacity && !m.closed {
			m.notFull.Wait()
		}
		if m.blockedNS != nil {
			m.blockedNS.Add(int64(time.Since(start)))
		}
	}
	if m.closed {
		return false
	}
	m.buf = append(m.buf, t)
	if len(m.buf) > m.peak {
		m.peak = len(m.buf)
	}
	m.depth.SetInt(len(m.buf))
	m.notEmpty.Signal()
	return true
}

func (m *mailbox) get() (topology.Tuple, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.buf) == 0 && !m.closed {
		m.notEmpty.Wait()
	}
	if len(m.buf) == 0 {
		return topology.Tuple{}, false
	}
	t := m.buf[0]
	m.buf = m.buf[1:]
	m.depth.SetInt(len(m.buf))
	m.notFull.Signal()
	return t, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.notEmpty.Broadcast()
	m.notFull.Broadcast()
	m.mu.Unlock()
}

// peakLen reports the mailbox's high-water mark.
func (m *mailbox) peakLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// peer is one outbound data-plane connection slot. Its mutex
// serialises dial/send/heal per peer, so a slow or unreachable worker
// delays only the tuples routed to it — dispatches to other peers
// proceed in parallel.
type peer struct {
	mu sync.Mutex
	c  *conn
	// dialled counts successful dials on this slot; dials after the
	// first are redials of a broken link.
	dialled int
	// backoff mirrors the current retry backoff in seconds while a send
	// to this peer is healing (0 when healthy); nil when telemetry is
	// off.
	backoff *telemetry.Gauge
}

// outEdge is one outbound subscription resolved against the placement.
type outEdge struct {
	target   string
	nTasks   int
	grouping topology.GroupingKind
	fields   []string
	rr       atomic.Uint64
}

// Worker hosts the tasks placed on it and exchanges tuples with its
// peers over TCP. Every worker process (or goroutine in tests)
// constructs the same topology Builder from code; only the tasks the
// placement assigns to this worker are instantiated locally.
type Worker struct {
	id        int
	builder   *topology.Builder
	spec      []topology.ComponentSpec
	specByID  map[string]topology.ComponentSpec
	placement *Placement
	coordAddr string

	// BindAddr is the data-plane listen address. It defaults to an
	// ephemeral loopback port; set it to an externally routable
	// "host:port" before Run for a multi-host deployment.
	BindAddr string
	// AdvertiseAddr, when set, is registered with the coordinator in
	// place of the listener's own address — for deployments where peers
	// must dial through a NAT mapping or proxy.
	AdvertiseAddr string

	// DialTimeout bounds every outbound dial (peers and coordinator).
	DialTimeout time.Duration
	// SendRetries is how many times a failed peer send is retried on a
	// freshly dialled connection before the tuple copy is dropped and
	// compensated. Waits between attempts grow exponentially from
	// RetryBackoff to RetryBackoffMax, with jitter.
	SendRetries     int
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration

	// Telemetry, when set before Run, instruments the worker's transport
	// and tasks: frames/bytes sent, dictionary hit rate, redials,
	// per-peer backoff state, mailbox depth, and per-component
	// executed/emitted counts. Series carry a worker="<id>" label so
	// scrapes from different workers stay distinguishable after
	// aggregation. Nil (the default) keeps every instrument a no-op.
	Telemetry *telemetry.Registry
	// MetricsAddr, when set before Run, serves Telemetry on that address
	// (Prometheus text at /metrics, JSON at /debug/stats) for the whole
	// run. Use "127.0.0.1:0" for an ephemeral port; ScrapeAddr reports
	// the bound address.
	MetricsAddr string

	listener  net.Listener
	addresses map[int]string
	peers     map[int]*peer
	peersMu   sync.Mutex

	// killed flips once on Kill or frameAbort; lifeMu guards the
	// listener and control connection handles Kill needs to close from
	// another goroutine.
	killed atomic.Bool
	lifeMu sync.Mutex
	ctrl   *conn

	// boxes holds mailboxes for locally hosted bolt tasks:
	// component -> task -> mailbox (nil when not hosted here).
	boxes map[string][]*mailbox
	// edges holds the outbound routing of locally hosted components:
	// component -> stream -> edges.
	edges map[string]map[string][]*outEdge

	sent       atomic.Int64
	executed   atomic.Int64
	spoutsLeft atomic.Int64

	emitted   map[string]*atomic.Int64
	execCount map[string]*atomic.Int64
	failMu    sync.Mutex
	failures  []string

	boltWG  sync.WaitGroup
	spoutWG sync.WaitGroup

	// Transport instruments resolved once from Telemetry at Run start
	// (all nil when telemetry is off).
	tel struct {
		framesSent  *telemetry.Counter
		sendRetries *telemetry.Counter
		dials       *telemetry.Counter
		redials     *telemetry.Counter
		dictHits    *telemetry.Counter
		dictMisses  *telemetry.Counter
		bytesSent   *telemetry.Counter
		bytesRecv   *telemetry.Counter
		copies      *telemetry.Counter
		copiesDone  *telemetry.Counter
		dropped     *telemetry.Counter
		exec        map[string]*telemetry.Counter
		emit        map[string]*telemetry.Counter
	}
	metricsSrv atomic.Pointer[telemetry.Server]
}

// NewWorker prepares a worker for the given topology and cluster size.
// The placement is derived from (spec, workers); every participant must
// use the same builder code and worker count.
func NewWorker(id, workers int, b *topology.Builder, coordAddr string) (*Worker, error) {
	spec, err := b.Spec()
	if err != nil {
		return nil, err
	}
	placement, err := NewPlacement(spec, workers)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		id:        id,
		builder:   b,
		spec:      spec,
		specByID:  make(map[string]topology.ComponentSpec),
		placement: placement,
		coordAddr: coordAddr,
		peers:     make(map[int]*peer),
		boxes:     make(map[string][]*mailbox),
		edges:     make(map[string]map[string][]*outEdge),
		emitted:   make(map[string]*atomic.Int64),
		execCount: make(map[string]*atomic.Int64),

		DialTimeout:     2 * time.Second,
		SendRetries:     4,
		RetryBackoff:    5 * time.Millisecond,
		RetryBackoffMax: 250 * time.Millisecond,
	}
	for _, comp := range spec {
		w.specByID[comp.ID] = comp
		w.emitted[comp.ID] = &atomic.Int64{}
		w.execCount[comp.ID] = &atomic.Int64{}
	}
	// Resolve outbound edges for every component (any local task may
	// emit on any of its streams).
	for _, comp := range spec {
		for _, sub := range comp.Subs {
			src := w.edges[sub.Source]
			if src == nil {
				src = make(map[string][]*outEdge)
				w.edges[sub.Source] = src
			}
			src[sub.Stream] = append(src[sub.Stream], &outEdge{
				target:   comp.ID,
				nTasks:   comp.Parallelism,
				grouping: sub.Grouping,
				fields:   sub.Fields,
			})
		}
	}
	// Local mailboxes for hosted bolt tasks; the capacity resolved by
	// the builder (default / override / feedback-cycle carve-out)
	// applies identically on every worker.
	for _, comp := range spec {
		if b.BoltFactory(comp.ID) == nil {
			continue
		}
		boxes := make([]*mailbox, comp.Parallelism)
		for _, task := range placement.TasksOn(comp.ID, id) {
			boxes[task] = newMailbox(comp.MaxPending)
		}
		w.boxes[comp.ID] = boxes
	}
	return w, nil
}

// Listen binds the data-plane listener ahead of Run and returns its
// address, so a caller can learn where the worker accepts peer traffic
// before the run starts — e.g. to interpose a fault-injection proxy
// and advertise the proxy's address instead (AdvertiseAddr). Run calls
// Listen itself when the caller did not.
func (w *Worker) Listen() (string, error) {
	w.lifeMu.Lock()
	defer w.lifeMu.Unlock()
	if w.listener != nil {
		return w.listener.Addr().String(), nil
	}
	bind := w.BindAddr
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return "", fmt.Errorf("cluster: worker %d listen: %w", w.id, err)
	}
	w.listener = ln
	return ln.Addr().String(), nil
}

// Kill hard-stops the worker from another goroutine, simulating a
// process crash: the data-plane listener, control connection, task
// mailboxes and peer links all close immediately, with no quiescence
// handshake. The coordinator observes the dead control plane on its
// next probe and aborts the surviving workers. Run returns ErrKilled.
func (w *Worker) Kill() {
	w.kill()
	w.lifeMu.Lock()
	if w.ctrl != nil {
		w.ctrl.close()
	}
	w.lifeMu.Unlock()
}

// kill performs the shared teardown of Kill and frameAbort: flip the
// killed flag, stop accepting peer traffic, close the task mailboxes so
// bolts drain out, and drop the peer links. It never waits — callers
// that need quiescence call drainTasks afterwards.
func (w *Worker) kill() {
	if !w.killed.CompareAndSwap(false, true) {
		return
	}
	w.lifeMu.Lock()
	if w.listener != nil {
		w.listener.Close()
	}
	w.lifeMu.Unlock()
	for _, boxes := range w.boxes {
		for _, box := range boxes {
			if box != nil {
				box.close()
			}
		}
	}
	w.peersMu.Lock()
	for _, p := range w.peers {
		p.mu.Lock()
		if p.c != nil {
			p.c.close()
			p.c = nil
		}
		p.mu.Unlock()
	}
	w.peersMu.Unlock()
}

// drainTasks waits for the local task goroutines to wind down after a
// kill/abort. Spouts observe the killed flag on their next NextTuple
// and bolts exit once their closed mailboxes drain; peer sends fail
// fast (bounded retries) and compensate, so this terminates promptly.
func (w *Worker) drainTasks() {
	w.spoutWG.Wait()
	w.boltWG.Wait()
}

// initTelemetry resolves the worker's transport instruments and
// attaches mailbox instruments to the hosted task queues. Called once
// at the start of Run; a nil Telemetry leaves everything a no-op.
func (w *Worker) initTelemetry() {
	reg := w.Telemetry
	if reg == nil {
		return
	}
	id := fmt.Sprint(w.id)
	w.tel.framesSent = reg.Counter(telemetry.Name("cluster_frames_sent_total", "worker", id))
	w.tel.sendRetries = reg.Counter(telemetry.Name("cluster_send_retries_total", "worker", id))
	w.tel.dials = reg.Counter(telemetry.Name("cluster_peer_dials_total", "worker", id))
	w.tel.redials = reg.Counter(telemetry.Name("cluster_peer_redials_total", "worker", id))
	w.tel.dictHits = reg.Counter(telemetry.Name("cluster_dict_hits_total", "worker", id))
	w.tel.dictMisses = reg.Counter(telemetry.Name("cluster_dict_misses_total", "worker", id))
	w.tel.bytesSent = reg.Counter(telemetry.Name("cluster_bytes_sent_total", "worker", id))
	w.tel.bytesRecv = reg.Counter(telemetry.Name("cluster_bytes_received_total", "worker", id))
	w.tel.copies = reg.Counter(telemetry.Name("cluster_copies_sent_total", "worker", id))
	w.tel.copiesDone = reg.Counter(telemetry.Name("cluster_copies_executed_total", "worker", id))
	w.tel.dropped = reg.Counter(telemetry.Name("cluster_copies_dropped_total", "worker", id))
	w.tel.exec = make(map[string]*telemetry.Counter, len(w.spec))
	w.tel.emit = make(map[string]*telemetry.Counter, len(w.spec))
	for _, comp := range w.spec {
		// Same base names as the in-process runtime, so a cross-worker
		// SumCounter matches a single-process run's totals.
		w.tel.exec[comp.ID] = reg.Counter(telemetry.Name("topology_tuples_executed_total", "component", comp.ID, "worker", id))
		w.tel.emit[comp.ID] = reg.Counter(telemetry.Name("topology_tuples_emitted_total", "component", comp.ID, "worker", id))
	}
	for compID, boxes := range w.boxes {
		for task, box := range boxes {
			if box == nil {
				continue
			}
			box.depth = reg.Gauge(telemetry.Name("cluster_mailbox_depth", "worker", id, "component", compID, "task", fmt.Sprint(task)))
			box.blockedNS = reg.Counter(telemetry.Name("cluster_backpressure_blocked_ns_total", "worker", id, "component", compID))
			box.blockedPuts = reg.Counter(telemetry.Name("cluster_backpressure_blocked_puts_total", "worker", id, "component", compID))
		}
	}
}

// ScrapeAddr reports the bound address of the worker's metrics endpoint
// ("" until Run starts one via MetricsAddr).
func (w *Worker) ScrapeAddr() string { return w.metricsSrv.Load().Addr() }

// Run connects to the coordinator, serves the data plane and executes
// the local tasks until the coordinator signals stop. It blocks for the
// whole run.
func (w *Worker) Run() error {
	w.initTelemetry()
	if w.MetricsAddr != "" {
		srv, err := telemetry.Serve(w.MetricsAddr, w.Telemetry)
		if err != nil {
			return err
		}
		w.metricsSrv.Store(srv)
		defer srv.Close()
	}
	dataAddr, err := w.Listen()
	if err != nil {
		return err
	}
	if w.AdvertiseAddr != "" {
		dataAddr = w.AdvertiseAddr
	}
	go w.acceptLoop()
	defer w.listener.Close()

	raw, err := net.DialTimeout("tcp", w.coordAddr, w.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: worker %d dial coordinator: %w", w.id, err)
	}
	coord := newConn(raw)
	defer coord.close()
	w.lifeMu.Lock()
	w.ctrl = coord
	killed := w.killed.Load()
	w.lifeMu.Unlock()
	if killed { // Kill raced the dial
		coord.close()
		return ErrKilled
	}
	if err := coord.send(&envelope{Kind: frameHello, WorkerID: w.id, DataAddr: dataAddr}); err != nil {
		return err
	}
	start, err := coord.recv()
	if err != nil || start.Kind != frameStart {
		return fmt.Errorf("cluster: worker %d handshake failed: %v", w.id, err)
	}
	w.addresses = start.Addresses

	w.startTasks()

	// Control loop: answer probes until stop.
	for {
		e, err := coord.recv()
		if err != nil {
			if w.killed.Load() {
				w.drainTasks()
				return ErrKilled
			}
			return fmt.Errorf("cluster: worker %d control: %w", w.id, err)
		}
		switch e.Kind {
		case frameAbort:
			w.kill()
			w.drainTasks()
			return ErrAborted
		case frameProbe:
			reply := &envelope{
				Kind:       frameProbeReply,
				WorkerID:   w.id,
				Seq:        e.Seq,
				SpoutsDone: w.spoutsLeft.Load() == 0,
				Sent:       w.sent.Load(),
				Executed:   w.executed.Load(),
			}
			if err := coord.send(reply); err != nil {
				return err
			}
		case frameStop:
			w.shutdown()
			return coord.send(&envelope{Kind: frameDone, WorkerID: w.id, Stats: w.stats()})
		}
	}
}

// startTasks launches the locally hosted bolt and spout tasks.
func (w *Worker) startTasks() {
	parallelism := make(map[string]int, len(w.spec))
	for _, comp := range w.spec {
		parallelism[comp.ID] = comp.Parallelism
	}
	for _, comp := range w.spec {
		comp := comp
		if bf := w.builder.BoltFactory(comp.ID); bf != nil {
			for _, task := range w.placement.TasksOn(comp.ID, w.id) {
				w.boltWG.Add(1)
				go w.runBolt(comp, task, bf(task), parallelism)
			}
		}
		if sf := w.builder.SpoutFactory(comp.ID); sf != nil {
			for _, task := range w.placement.TasksOn(comp.ID, w.id) {
				w.spoutsLeft.Add(1)
				w.spoutWG.Add(1)
				go w.runSpout(comp, task, sf(task), parallelism)
			}
		}
	}
}

func (w *Worker) runBolt(comp topology.ComponentSpec, task int, bolt topology.Bolt, parallelism map[string]int) {
	defer w.boltWG.Done()
	ctx := &topology.TaskContext{Component: comp.ID, Task: task, NumTasks: comp.Parallelism, Parallelism: parallelism}
	bolt.Prepare(ctx)
	col := &workerCollector{w: w, comp: comp.ID, task: task}
	if rec, ok := bolt.(topology.Recoverer); ok {
		rec.Recover(col)
	}
	box := w.boxes[comp.ID][task]
	for {
		tuple, ok := box.get()
		if !ok {
			break
		}
		w.safeExecute(comp.ID, task, bolt, tuple, col)
		w.execCount[comp.ID].Add(1)
		w.executed.Add(1)
		w.tel.exec[comp.ID].Inc()
		w.tel.copiesDone.Inc()
	}
	bolt.Cleanup()
}

func (w *Worker) runSpout(comp topology.ComponentSpec, task int, spout topology.Spout, parallelism map[string]int) {
	defer w.spoutWG.Done()
	defer w.spoutsLeft.Add(-1)
	ctx := &topology.TaskContext{Component: comp.ID, Task: task, NumTasks: comp.Parallelism, Parallelism: parallelism}
	spout.Open(ctx)
	col := &workerCollector{w: w, comp: comp.ID, task: task}
	for !w.killed.Load() && w.safeNext(comp.ID, task, spout, col) {
	}
	spout.Close()
}

func (w *Worker) safeExecute(comp string, task int, bolt topology.Bolt, tuple topology.Tuple, col topology.Collector) {
	defer func() {
		if r := recover(); r != nil {
			w.recordFailure(comp, task, r)
		}
	}()
	bolt.Execute(tuple, col)
}

func (w *Worker) safeNext(comp string, task int, spout topology.Spout, col topology.Collector) (more bool) {
	defer func() {
		if r := recover(); r != nil {
			w.recordFailure(comp, task, r)
			more = false
		}
	}()
	return spout.NextTuple(col)
}

func (w *Worker) recordFailure(comp string, task int, v any) {
	w.failMu.Lock()
	w.failures = append(w.failures, fmt.Sprintf("%s[%d]@w%d: %v", comp, task, w.id, v))
	w.failMu.Unlock()
}

// acceptLoop serves inbound peer connections on the data plane.
func (w *Worker) acceptLoop() {
	for {
		raw, err := w.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go w.readLoop(newConn(countingConn{Conn: raw, sent: w.tel.bytesSent, recvd: w.tel.bytesRecv}))
	}
}

func (w *Worker) readLoop(c *conn) {
	defer c.close()
	for {
		e, err := c.recv()
		if err != nil {
			return
		}
		if e.Kind != frameTuple {
			continue
		}
		w.deliverLocal(e.TargetComp, e.TargetTask, e.Tuple)
	}
}

// deliverLocal puts a tuple into a hosted mailbox and reports whether
// it was accepted. A malformed frame (negative or out-of-range task)
// or a delivery to a closed mailbox compensates the sender's sent
// counter so termination detection stays exact; a bad task index is
// recorded as a failure instead of panicking the read loop.
func (w *Worker) deliverLocal(comp string, task int, t topology.Tuple) bool {
	boxes := w.boxes[comp]
	if task < 0 || task >= len(boxes) || boxes[task] == nil {
		w.recordFailure(comp, task, "tuple for task not hosted here")
		w.executed.Add(1) // compensate sender's count
		w.tel.copiesDone.Inc()
		w.tel.dropped.Inc()
		return false
	}
	if !boxes[task].put(t) {
		w.executed.Add(1)
		w.tel.copiesDone.Inc()
		w.tel.dropped.Inc()
		return false
	}
	return true
}

// peerFor returns the connection slot for a worker, creating it on
// first use. The global peersMu guards only the map; dialling and
// sending happen under the slot's own lock, so one unreachable peer
// never blocks dispatches to the others.
func (w *Worker) peerFor(id int) *peer {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	p, ok := w.peers[id]
	if !ok {
		p = &peer{}
		if w.Telemetry != nil {
			p.backoff = w.Telemetry.Gauge(telemetry.Name("cluster_peer_backoff_seconds",
				"worker", fmt.Sprint(w.id), "peer", fmt.Sprint(id)))
		}
		w.peers[id] = p
	}
	return p
}

// sendToPeer delivers one envelope to a peer worker, dialling lazily
// with a timeout. A broken cached connection is evicted and redialled
// with capped exponential backoff plus jitter; after SendRetries
// failed heal attempts the error is returned and the caller falls
// back to drop-and-compensate.
func (w *Worker) sendToPeer(id int, e *envelope) error {
	addr, ok := w.addresses[id]
	if !ok {
		return fmt.Errorf("cluster: no address for worker %d", id)
	}
	p := w.peerFor(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	backoff := w.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= w.SendRetries; attempt++ {
		w.tel.framesSent.Inc()
		if attempt > 0 {
			w.tel.sendRetries.Inc()
			p.backoff.Set(backoff.Seconds())
			time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff)+1)))
			backoff *= 2
			if backoff > w.RetryBackoffMax {
				backoff = w.RetryBackoffMax
			}
		}
		if p.c == nil {
			raw, err := net.DialTimeout("tcp", addr, w.DialTimeout)
			if err != nil {
				lastErr = fmt.Errorf("cluster: dial worker %d: %w", id, err)
				continue
			}
			w.tel.dials.Inc()
			if p.dialled++; p.dialled > 1 {
				w.tel.redials.Inc()
			}
			p.c = newConn(countingConn{Conn: raw, sent: w.tel.bytesSent, recvd: w.tel.bytesRecv})
			p.c.dictHits, p.c.dictMisses = w.tel.dictHits, w.tel.dictMisses
			go monitorPeer(p, p.c)
		}
		if err := p.c.send(e); err != nil {
			// Evict the poisoned connection; the next attempt (or the
			// next dispatch) redials from scratch.
			p.c.close()
			p.c = nil
			lastErr = err
			continue
		}
		p.backoff.Set(0)
		return nil
	}
	return lastErr
}

// monitorPeer watches an outbound data-plane connection for breakage.
// Peers never send envelopes back on these links, so recv returning
// means the link died (or the peer shut down): the cached connection
// is evicted proactively instead of waiting for a dispatch to write
// into a dead socket — TCP acknowledges the first such write locally,
// which would lose the tuple without any observable error.
func monitorPeer(p *peer, c *conn) {
	_, _ = c.recv() // blocks until the link breaks
	p.mu.Lock()
	if p.c == c {
		c.close()
		p.c = nil
	}
	p.mu.Unlock()
}

// dispatch routes one tuple copy to (comp, task), local or remote, and
// reports whether the copy was delivered (for a remote copy: handed to
// a healthy connection). The sent counter is incremented exactly once
// per copy; a dropped copy compensates executed so termination is
// still reached.
func (w *Worker) dispatch(comp string, task int, t topology.Tuple) bool {
	w.sent.Add(1)
	w.tel.copies.Inc()
	target := w.placement.WorkerFor(comp, task)
	if target == w.id {
		return w.deliverLocal(comp, task, t)
	}
	err := w.sendToPeer(target, &envelope{Kind: frameTuple, TargetComp: comp, TargetTask: task, Tuple: t})
	if err != nil {
		w.recordFailure(comp, task, err)
		w.executed.Add(1) // compensate so termination is still reached
		w.tel.copiesDone.Inc()
		w.tel.dropped.Inc()
		return false
	}
	return true
}

// shutdown stops local tasks after the coordinator declared global
// quiescence.
func (w *Worker) shutdown() {
	w.spoutWG.Wait() // spouts are already exhausted at this point
	for _, boxes := range w.boxes {
		for _, box := range boxes {
			if box != nil {
				box.close()
			}
		}
	}
	w.boltWG.Wait()
	w.peersMu.Lock()
	for _, p := range w.peers {
		p.mu.Lock()
		if p.c != nil {
			p.c.close()
			p.c = nil
		}
		p.mu.Unlock()
	}
	w.peersMu.Unlock()
}

// PeerConnections reports how many outbound peer connections are
// currently cached and believed healthy — after a network fault the
// breakage monitors drive this back to zero until the next dispatch
// redials.
func (w *Worker) PeerConnections() int {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	n := 0
	for _, p := range w.peers {
		p.mu.Lock()
		if p.c != nil {
			n++
		}
		p.mu.Unlock()
	}
	return n
}

// Counters exposes the worker's transport accounting: copies routed
// into the data plane and copies executed or compensated. They are
// equal exactly when nothing is queued, executing, or in flight.
func (w *Worker) Counters() (sent, executed int64) {
	return w.sent.Load(), w.executed.Load()
}

func (w *Worker) stats() topology.Stats {
	s := topology.Stats{Emitted: make(map[string]int64), Executed: make(map[string]int64)}
	for id := range w.emitted {
		s.Emitted[id] = w.emitted[id].Load()
		s.Executed[id] = w.execCount[id].Load()
	}
	s.SentCopies, s.ExecCopies = w.Counters()
	w.failMu.Lock()
	s.Failures = append(s.Failures, w.failures...)
	w.failMu.Unlock()
	return s
}

// workerCollector routes emissions of one local task across the
// cluster.
type workerCollector struct {
	w    *Worker
	comp string
	task int
}

// Emit implements topology.Collector.
func (c *workerCollector) Emit(v topology.Values) { c.EmitTo(topology.DefaultStream, v) }

// EmitTo implements topology.Collector. Emitted counts delivered
// copies, mirroring the in-process runtime: emissions without a
// subscriber or copies dropped by the transport do not count.
func (c *workerCollector) EmitTo(stream string, v topology.Values) {
	t := topology.Tuple{Stream: stream, Source: c.comp, SourceTask: c.task, Values: v}
	var delivered int64
	for _, e := range c.w.edges[c.comp][stream] {
		for _, task := range topology.TargetTasks(e.grouping, e.fields, v, e.nTasks, &e.rr) {
			if c.w.dispatch(e.target, task, t) {
				delivered++
			}
		}
	}
	c.w.emitted[c.comp].Add(delivered)
	c.w.tel.emit[c.comp].Add(delivered)
}

// EmitDirect implements topology.Collector.
func (c *workerCollector) EmitDirect(stream string, task int, v topology.Values) {
	t := topology.Tuple{Stream: stream, Source: c.comp, SourceTask: c.task, Values: v}
	var delivered int64
	for _, e := range c.w.edges[c.comp][stream] {
		if e.grouping != topology.Direct {
			continue
		}
		if task < 0 || task >= e.nTasks {
			panic(fmt.Sprintf("cluster: EmitDirect task %d out of range for %s (%d tasks)", task, e.target, e.nTasks))
		}
		if c.w.dispatch(e.target, task, t) {
			delivered++
		}
	}
	c.w.emitted[c.comp].Add(delivered)
	c.w.tel.emit[c.comp].Add(delivered)
}
