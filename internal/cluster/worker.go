package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/state"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// ErrKilled is returned by Run on a worker that was hard-killed via
// Kill; ErrAborted on a worker told by the coordinator to abandon the
// run because a peer died.
var (
	ErrKilled  = errors.New("cluster: worker killed")
	ErrAborted = errors.New("cluster: run aborted")
)

// errPeerClosed is the only way a reliable peer send fails: the worker
// is shutting down (killed, aborted, or stopped) and will never deliver
// the frame. The dispatcher compensates so termination is still
// reached.
var errPeerClosed = errors.New("cluster: peer slot closed")

// mailbox is the worker-local FIFO queue (semantics identical to the
// in-process runtime's mailbox): blocking receive, and blocking send
// when a positive capacity is set. A readLoop blocked on a full
// mailbox stops reading its socket, so TCP flow control pushes the
// backpressure to the remote sender.
type mailbox struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []topology.Tuple
	capacity int // 0 = unbounded
	peak     int // high-water mark of len(buf), for tests/metrics
	closed   bool

	// Optional live instruments (nil-safe no-ops when telemetry is
	// off), mirroring the in-process runtime's mailbox.
	depth       *telemetry.Gauge
	blockedNS   *telemetry.Counter
	blockedPuts *telemetry.Counter
}

func newMailbox(capacity int) *mailbox {
	m := &mailbox{capacity: capacity}
	m.notEmpty = sync.NewCond(&m.mu)
	m.notFull = sync.NewCond(&m.mu)
	return m
}

// put appends t, blocking while the mailbox is at capacity. It reports
// whether the tuple was accepted; false means the mailbox closed.
func (m *mailbox) put(t topology.Tuple) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.capacity > 0 && len(m.buf) >= m.capacity && !m.closed {
		// Only a put that actually blocks pays for the clock reads.
		var start time.Time
		if m.blockedNS != nil {
			start = time.Now()
			m.blockedPuts.Inc()
		}
		for m.capacity > 0 && len(m.buf) >= m.capacity && !m.closed {
			m.notFull.Wait()
		}
		if m.blockedNS != nil {
			m.blockedNS.Add(int64(time.Since(start)))
		}
	}
	if m.closed {
		return false
	}
	m.buf = append(m.buf, t)
	if len(m.buf) > m.peak {
		m.peak = len(m.buf)
	}
	m.depth.SetInt(len(m.buf))
	m.notEmpty.Signal()
	return true
}

func (m *mailbox) get() (topology.Tuple, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.buf) == 0 && !m.closed {
		m.notEmpty.Wait()
	}
	if len(m.buf) == 0 {
		return topology.Tuple{}, false
	}
	t := m.buf[0]
	m.buf = m.buf[1:]
	m.depth.SetInt(len(m.buf))
	m.notFull.Signal()
	return t, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.notEmpty.Broadcast()
	m.notFull.Broadcast()
	m.mu.Unlock()
}

// peakLen reports the mailbox's high-water mark.
func (m *mailbox) peakLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// taskHandle is the live-control handle of one hosted bolt task: the
// bolt instance (a migration snapshots it after its loop exits), its
// mailbox, and a done channel the loop closes on exit. moved tells the
// loop to exit without Cleanup — the operator is relocating, not
// shutting down.
type taskHandle struct {
	bolt  topology.Bolt
	box   *mailbox
	done  chan struct{}
	moved atomic.Bool
}

// peer is one outbound data-plane link slot, now a reliable-delivery
// queue: dispatchers append frames (blocking while the bounded resend
// buffer is full), a dedicated sender goroutine writes them in
// sequence order, and frames leave the buffer only when the receiver's
// cumulative ack covers them — so a severed link replays everything
// unacknowledged on the fresh connection instead of dropping it. The
// mutex serialises queue state, dial and send per peer; a slow or
// unreachable worker delays only the tuples routed to it.
type peer struct {
	mu      sync.Mutex
	notFull *sync.Cond // dispatchers wait here while buf is at capacity
	work    *sync.Cond // the sender goroutine waits here for frames
	c       wireConn
	// dialled counts successful dials on this slot; dials after the
	// first are redials of a broken link.
	dialled int
	// closed flips when the worker shuts down: blocked dispatchers and
	// the sender goroutine wake and give up.
	closed bool

	// Reliable-delivery state, guarded by mu. buf holds the frames with
	// DataSeq in (acked, nextSeq], oldest first: buf[0].DataSeq ==
	// acked+1. sentTo is the highest sequence written to the current
	// connection; eviction resets it to acked so the next connection
	// replays the whole unacknowledged suffix. maxSent is the all-time
	// high-water mark, distinguishing first sends from resends.
	buf     []*envelope
	nextSeq uint64
	acked   uint64
	sentTo  uint64
	maxSent uint64

	// rng provides the retry-backoff jitter, seeded per (worker, peer)
	// pair so chaos runs under a fixed seed reproduce their timing.
	rng *rand.Rand
	// backoff mirrors the current retry backoff in seconds while a send
	// to this peer is healing (0 when healthy); nil when telemetry is
	// off.
	backoff *telemetry.Gauge
}

// inbound is the receive-side reliable-delivery state for one sending
// peer. It persists across that peer's connections: delivered is the
// cumulative dedup cursor (a replayed frame at or below it is dropped),
// acked is how far the sender has been told, and c is the freshest
// inbound connection — where acks are written back. The mutex also
// serialises check-and-deliver across connections, so a straggler read
// on a dying link and the replay on its successor cannot race or
// reorder one sender's frames.
type inbound struct {
	mu        sync.Mutex
	c         wireConn
	delivered uint64
	acked     uint64
	// needAck forces a re-ack even when delivered == acked: set when a
	// duplicate arrives or the sender shows up on a fresh connection —
	// both mean an earlier ack may have died with the old link.
	needAck bool
}

// outEdge is one outbound subscription resolved against the placement.
type outEdge struct {
	target   string
	nTasks   int
	grouping topology.GroupingKind
	fields   []string
	rr       atomic.Uint64
}

// Worker hosts the tasks placed on it and exchanges tuples with its
// peers over TCP. Every worker process (or goroutine in tests)
// constructs the same topology Builder from code; only the tasks the
// placement assigns to this worker are instantiated locally.
type Worker struct {
	id        int
	builder   *topology.Builder
	spec      []topology.ComponentSpec
	specByID  map[string]topology.ComponentSpec
	coordAddr string

	// placement is the versioned routing table, swapped wholesale on a
	// rescale; the dispatch hot path pays exactly one atomic load.
	// joining marks a worker that dials into a live run and receives
	// its table from the coordinator instead of deriving epoch 0.
	placement atomic.Pointer[Placement]
	joining   bool

	// BindAddr is the data-plane listen address. It defaults to an
	// ephemeral loopback port; set it to an externally routable
	// "host:port" before Run for a multi-host deployment.
	BindAddr string
	// AdvertiseAddr, when set, is registered with the coordinator in
	// place of the listener's own address — for deployments where peers
	// must dial through a NAT mapping or proxy.
	AdvertiseAddr string

	// DialTimeout bounds every outbound dial (peers and coordinator).
	DialTimeout time.Duration
	// SendRetries is retained for configuration compatibility but no
	// longer bounds data-plane delivery: frames are retried with backoff
	// until the receiver acknowledges them or the run ends. Dropping
	// after N attempts would reintroduce the at-most-once hole the
	// resend buffer exists to close.
	SendRetries int
	// RetryBackoff and RetryBackoffMax shape the capped exponential
	// backoff (with seeded jitter) between redial/resend attempts.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// ResendBuffer caps how many unacknowledged frames one peer link
	// buffers for replay; a dispatcher hitting the cap blocks, turning a
	// long outage into backpressure instead of unbounded memory.
	ResendBuffer int
	// AckInterval is the receiver's idle ack timer: cumulative acks are
	// piggybacked on reverse-direction data frames and forced out at
	// least this often, bounding how long a sender's buffer stays full
	// on a quiet link.
	AckInterval time.Duration
	// AckEvery is the receiver's inline ack threshold: a cumulative ack
	// is written immediately after this many deliveries since the last
	// one, without waiting for the idle timer.
	AckEvery int
	// HeartbeatInterval is how often the worker beats on its control
	// plane so the coordinator's lease sees it alive even when idle;
	// <= 0 disables heartbeats.
	HeartbeatInterval time.Duration
	// RandSeed seeds the per-peer backoff jitter generators. 0 (the
	// default) derives a fixed seed from the worker id, so two runs with
	// identical configuration draw identical jitter — the property the
	// deterministic chaos schedules rely on.
	RandSeed int64

	// WireFormat selects the data-plane encoding: WireBinary (the
	// default; length-prefixed varint-packed frames with multi-tuple
	// batching, see wire.go) or WireGob (one gob envelope per frame,
	// kept for A/B measurement). Every worker in a run must use the
	// same format — the same uniformity the shared builder code already
	// requires.
	WireFormat string
	// FrameBatch caps how many tuples one binary data frame coalesces
	// (NewWorker defaults it to 32; <= 0 means no batching). Batching
	// is natural/greedy: whatever is pending when the sender drains the
	// queue travels together, adding no latency.
	FrameBatch int
	// FrameFlushInterval > 0 opts into latency-for-density trading: a
	// sender with a non-full batch waits up to this long for more
	// dispatches before flushing the frame. 0 (the default) sends
	// immediately.
	FrameFlushInterval time.Duration
	// FrameCompress DEFLATE-compresses binary data frames when the
	// payload shrinks; useful on wide-area links, off by default.
	FrameCompress bool

	// Telemetry, when set before Run, instruments the worker's transport
	// and tasks: frames/bytes sent, dictionary hit rate, redials,
	// per-peer backoff state, mailbox depth, and per-component
	// executed/emitted counts. Series carry a worker="<id>" label so
	// scrapes from different workers stay distinguishable after
	// aggregation. Nil (the default) keeps every instrument a no-op.
	Telemetry *telemetry.Registry
	// MetricsAddr, when set before Run, serves Telemetry on that address
	// (Prometheus text at /metrics, JSON at /debug/stats) for the whole
	// run. Use "127.0.0.1:0" for an ephemeral port; ScrapeAddr reports
	// the bound address.
	MetricsAddr string

	listener net.Listener
	// addrs is the copy-on-write peer address book: rescales publish a
	// fresh map; readers (dispatch, peer senders) never lock.
	addrs   atomic.Pointer[map[int]string]
	peers   map[int]*peer
	peersMu sync.Mutex

	// inbound tracks receive-side dedup/ack state per sending peer.
	inbound   map[int]*inbound
	inboundMu sync.Mutex

	// killed flips once on Kill or frameAbort; lifeMu guards the
	// listener and control connection handles Kill needs to close from
	// another goroutine. hung simulates a wedged process (Hang).
	killed atomic.Bool
	hung   atomic.Bool
	lifeMu sync.Mutex
	ctrl   *conn

	// peersClosed marks that closePeers ran: peer slots created after
	// it (by a dispatcher racing shutdown) are born closed. stop ends
	// the worker's auxiliary goroutines (ack ticker, heartbeats);
	// senderWG tracks the per-peer sender goroutines.
	peersClosed atomic.Bool
	stop        chan struct{}
	stopOnce    sync.Once
	senderWG    sync.WaitGroup

	// boxes holds the mailbox slots for every bolt task (full
	// parallelism per component, nil pointer when the task is not
	// hosted here). Slots are atomic so a migration can install or
	// evict a mailbox while the read loop races a stale-epoch frame.
	boxes map[string][]atomic.Pointer[mailbox]
	// edges holds the outbound routing of locally hosted components:
	// component -> stream -> edges.
	edges map[string]map[string][]*outEdge

	// tasks mirrors boxes with the live bolt handles a migration needs
	// (the bolt instance to snapshot, its loop's done channel).
	// stopping, set under tasksMu before boltWG.Wait, keeps a racing
	// migration install from Add-ing to a waited-on WaitGroup.
	tasksMu  sync.Mutex
	tasks    map[string][]*taskHandle
	stopping bool

	// taskExec counts executions per bolt task on this worker — the
	// load signal behind frameLoadsReply and the planner's hottest-
	// first ordering.
	taskExec map[string][]atomic.Int64

	// Spout parking (framePause). parked spouts wait on pauseCond;
	// frontier is the highest window a parked Frontiered spout
	// reported.
	pauseMu   sync.Mutex
	pauseCond *sync.Cond
	pauseWant bool
	parked    int
	frontier  int

	// Inbound migration assembly: partial snapshots by task, the set
	// installed since the current rescale began, and the cond
	// handleRescale waits on.
	migMu     sync.Mutex
	migCond   *sync.Cond
	migIn     map[taskKey][]byte
	installed map[taskKey]bool

	sent       atomic.Int64
	executed   atomic.Int64
	spoutsLeft atomic.Int64

	emitted   map[string]*atomic.Int64
	execCount map[string]*atomic.Int64
	failMu    sync.Mutex
	failures  []string

	boltWG  sync.WaitGroup
	spoutWG sync.WaitGroup

	// Transport instruments resolved once from Telemetry at Run start
	// (all nil when telemetry is off).
	tel struct {
		framesSent  *telemetry.Counter
		sendRetries *telemetry.Counter
		dials       *telemetry.Counter
		redials     *telemetry.Counter
		dictHits    *telemetry.Counter
		dictMisses  *telemetry.Counter
		bytesSent   *telemetry.Counter
		bytesRecv   *telemetry.Counter
		copies      *telemetry.Counter
		copiesDone  *telemetry.Counter
		dropped     *telemetry.Counter
		acksSent    *telemetry.Counter
		acksRecv    *telemetry.Counter
		resent      *telemetry.Counter
		dedup       *telemetry.Counter
		heartbeats  *telemetry.Counter
		buffered    *telemetry.Gauge
		// Binary wire-format instruments: framed bytes by frame kind,
		// the per-frame batch-size histogram, and compression totals.
		wireSentData *telemetry.Counter
		wireSentAck  *telemetry.Counter
		wireRecvData *telemetry.Counter
		wireRecvAck  *telemetry.Counter
		batchDocs    *telemetry.Histogram
		wireRaw      *telemetry.Counter
		wireComp     *telemetry.Counter
		compRatio    *telemetry.Gauge
		// Elastic-rescale instruments: tasks and snapshot bytes
		// migrated off/onto this worker.
		migOut      *telemetry.Counter
		migOutBytes *telemetry.Counter
		migIn       *telemetry.Counter
		migInBytes  *telemetry.Counter
		exec        map[string]*telemetry.Counter
		emit        map[string]*telemetry.Counter
	}
	metricsSrv atomic.Pointer[telemetry.Server]
}

// NewWorker prepares a worker for the given topology and cluster size.
// The placement is derived from (spec, workers); every participant must
// use the same builder code and worker count.
func NewWorker(id, workers int, b *topology.Builder, coordAddr string) (*Worker, error) {
	w, err := newWorker(id, b, coordAddr)
	if err != nil {
		return nil, err
	}
	placement, err := NewPlacement(w.spec, workers)
	if err != nil {
		return nil, err
	}
	w.placement.Store(placement)
	return w, nil
}

// NewJoiningWorker prepares a worker that joins an already-running
// cluster for an elastic grow: it registers with a Joining hello and
// idles until a rescale welcomes it with the live epoch-stamped
// placement table (it cannot derive the table from (spec, workers) —
// earlier rescales may have reshaped it). It hosts no tasks until
// migrations stream some in.
func NewJoiningWorker(id int, b *topology.Builder, coordAddr string) (*Worker, error) {
	w, err := newWorker(id, b, coordAddr)
	if err != nil {
		return nil, err
	}
	w.joining = true
	return w, nil
}

func newWorker(id int, b *topology.Builder, coordAddr string) (*Worker, error) {
	spec, err := b.Spec()
	if err != nil {
		return nil, err
	}
	w := &Worker{
		id:        id,
		builder:   b,
		spec:      spec,
		specByID:  make(map[string]topology.ComponentSpec),
		coordAddr: coordAddr,
		peers:     make(map[int]*peer),
		inbound:   make(map[int]*inbound),
		boxes:     make(map[string][]atomic.Pointer[mailbox]),
		tasks:     make(map[string][]*taskHandle),
		taskExec:  make(map[string][]atomic.Int64),
		migIn:     make(map[taskKey][]byte),
		installed: make(map[taskKey]bool),
		edges:     make(map[string]map[string][]*outEdge),
		emitted:   make(map[string]*atomic.Int64),
		execCount: make(map[string]*atomic.Int64),
		stop:      make(chan struct{}),
		frontier:  -1,

		DialTimeout:       2 * time.Second,
		SendRetries:       4,
		RetryBackoff:      5 * time.Millisecond,
		RetryBackoffMax:   250 * time.Millisecond,
		ResendBuffer:      1024,
		AckInterval:       2 * time.Millisecond,
		AckEvery:          64,
		HeartbeatInterval: 250 * time.Millisecond,
		WireFormat:        WireBinary,
		FrameBatch:        32,
	}
	w.pauseCond = sync.NewCond(&w.pauseMu)
	w.migCond = sync.NewCond(&w.migMu)
	for _, comp := range spec {
		w.specByID[comp.ID] = comp
		w.emitted[comp.ID] = &atomic.Int64{}
		w.execCount[comp.ID] = &atomic.Int64{}
	}
	// Resolve outbound edges for every component (any local task may
	// emit on any of its streams).
	for _, comp := range spec {
		for _, sub := range comp.Subs {
			src := w.edges[sub.Source]
			if src == nil {
				src = make(map[string][]*outEdge)
				w.edges[sub.Source] = src
			}
			src[sub.Stream] = append(src[sub.Stream], &outEdge{
				target:   comp.ID,
				nTasks:   comp.Parallelism,
				grouping: sub.Grouping,
				fields:   sub.Fields,
			})
		}
	}
	// Full-parallelism slot arrays for every bolt component: mailboxes
	// and handles are installed per hosted task at start (and by
	// migrations later), but the arrays themselves never resize — a
	// migration swaps one atomic pointer.
	for _, comp := range spec {
		if b.BoltFactory(comp.ID) == nil {
			continue
		}
		w.boxes[comp.ID] = make([]atomic.Pointer[mailbox], comp.Parallelism)
		w.tasks[comp.ID] = make([]*taskHandle, comp.Parallelism)
		w.taskExec[comp.ID] = make([]atomic.Int64, comp.Parallelism)
	}
	return w, nil
}

// Listen binds the data-plane listener ahead of Run and returns its
// address, so a caller can learn where the worker accepts peer traffic
// before the run starts — e.g. to interpose a fault-injection proxy
// and advertise the proxy's address instead (AdvertiseAddr). Run calls
// Listen itself when the caller did not.
func (w *Worker) Listen() (string, error) {
	w.lifeMu.Lock()
	defer w.lifeMu.Unlock()
	if w.listener != nil {
		return w.listener.Addr().String(), nil
	}
	bind := w.BindAddr
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return "", fmt.Errorf("cluster: worker %d listen: %w", w.id, err)
	}
	w.listener = ln
	return ln.Addr().String(), nil
}

// Kill hard-stops the worker from another goroutine, simulating a
// process crash: the data-plane listener, control connection, task
// mailboxes and peer links all close immediately, with no quiescence
// handshake. The coordinator observes the dead control plane on its
// next probe and aborts the surviving workers. Run returns ErrKilled.
func (w *Worker) Kill() {
	w.kill()
	w.lifeMu.Lock()
	if w.ctrl != nil {
		w.ctrl.close()
	}
	w.lifeMu.Unlock()
}

// Hang simulates a wedged worker process for tests: heartbeats stop
// and every control frame is swallowed unanswered, while the data
// plane and the local tasks keep running — the failure mode a crash
// can't produce and socket errors can't surface. The coordinator's
// lease expires, the worker is declared dead (WorkerDied) and the
// run enters the same recovery path as a hard kill.
func (w *Worker) Hang() { w.hung.Store(true) }

// kill performs the shared teardown of Kill and frameAbort: flip the
// killed flag, stop accepting peer traffic, close the task mailboxes so
// bolts drain out, and drop the peer links. It never waits — callers
// that need quiescence call drainTasks afterwards.
func (w *Worker) kill() {
	if !w.killed.CompareAndSwap(false, true) {
		return
	}
	w.lifeMu.Lock()
	if w.listener != nil {
		w.listener.Close()
	}
	w.lifeMu.Unlock()
	w.tasksMu.Lock()
	w.stopping = true
	w.tasksMu.Unlock()
	w.closeBoxes()
	// Wake anything parked or waiting on a migration: both conds
	// re-check the killed flag.
	w.pauseMu.Lock()
	w.pauseCond.Broadcast()
	w.pauseMu.Unlock()
	w.migMu.Lock()
	w.migCond.Broadcast()
	w.migMu.Unlock()
	w.closePeers()
	w.stopAux()
}

// closeBoxes closes every installed task mailbox so bolt loops drain
// out and exit.
func (w *Worker) closeBoxes() {
	for _, slots := range w.boxes {
		for i := range slots {
			if box := slots[i].Load(); box != nil {
				box.close()
			}
		}
	}
}

// closePeers marks every peer slot closed, dropping its connection and
// waking blocked dispatchers and the sender goroutine so both give up.
// The peersClosed flag makes slots created afterwards (a dispatcher
// racing shutdown) born closed, so no sender goroutine outlives the
// worker.
func (w *Worker) closePeers() {
	w.peersClosed.Store(true)
	w.peersMu.Lock()
	for _, p := range w.peers {
		p.mu.Lock()
		p.closed = true
		if p.c != nil {
			p.c.close()
			p.c = nil
		}
		p.notFull.Broadcast()
		p.work.Broadcast()
		p.mu.Unlock()
	}
	w.peersMu.Unlock()
}

// stopAux ends the worker's auxiliary goroutines (ack ticker,
// heartbeats); idempotent.
func (w *Worker) stopAux() {
	w.stopOnce.Do(func() { close(w.stop) })
}

// drainTasks waits for the local task goroutines to wind down after a
// kill/abort. Spouts observe the killed flag on their next NextTuple
// and bolts exit once their closed mailboxes drain; peer sends fail
// fast (the closed slots reject frames) and compensate, so this
// terminates promptly.
func (w *Worker) drainTasks() {
	w.spoutWG.Wait()
	w.boltWG.Wait()
}

// initTelemetry resolves the worker's transport instruments and
// attaches mailbox instruments to the hosted task queues. Called once
// at the start of Run; a nil Telemetry leaves everything a no-op.
func (w *Worker) initTelemetry() {
	reg := w.Telemetry
	if reg == nil {
		return
	}
	id := fmt.Sprint(w.id)
	w.tel.framesSent = reg.Counter(telemetry.Name("cluster_frames_sent_total", "worker", id))
	w.tel.sendRetries = reg.Counter(telemetry.Name("cluster_send_retries_total", "worker", id))
	w.tel.dials = reg.Counter(telemetry.Name("cluster_peer_dials_total", "worker", id))
	w.tel.redials = reg.Counter(telemetry.Name("cluster_peer_redials_total", "worker", id))
	w.tel.dictHits = reg.Counter(telemetry.Name("cluster_dict_hits_total", "worker", id))
	w.tel.dictMisses = reg.Counter(telemetry.Name("cluster_dict_misses_total", "worker", id))
	w.tel.bytesSent = reg.Counter(telemetry.Name("cluster_bytes_sent_total", "worker", id))
	w.tel.bytesRecv = reg.Counter(telemetry.Name("cluster_bytes_received_total", "worker", id))
	w.tel.copies = reg.Counter(telemetry.Name("cluster_copies_sent_total", "worker", id))
	w.tel.copiesDone = reg.Counter(telemetry.Name("cluster_copies_executed_total", "worker", id))
	w.tel.dropped = reg.Counter(telemetry.Name("cluster_copies_dropped_total", "worker", id))
	w.tel.acksSent = reg.Counter(telemetry.Name("cluster_acks_sent_total", "worker", id))
	w.tel.acksRecv = reg.Counter(telemetry.Name("cluster_acks_received_total", "worker", id))
	w.tel.resent = reg.Counter(telemetry.Name("cluster_resent_frames_total", "worker", id))
	w.tel.dedup = reg.Counter(telemetry.Name("cluster_dedup_dropped_total", "worker", id))
	w.tel.heartbeats = reg.Counter(telemetry.Name("cluster_heartbeats_sent_total", "worker", id))
	w.tel.buffered = reg.Gauge(telemetry.Name("cluster_resend_buffered", "worker", id))
	// Binary framing layer: bytes as framed on the wire split by frame
	// kind (cluster_bytes_* above counts raw socket bytes regardless of
	// format), tuples per data frame, and DEFLATE totals + ratio when
	// FrameCompress is on. cluster_frames_sent_total keeps counting per
	// batch *member* on both formats, so the frames−retries == remote
	// copies invariant holds independent of batching.
	w.tel.wireSentData = reg.Counter(telemetry.Name("cluster_wire_bytes_sent_total", "kind", "data", "worker", id))
	w.tel.wireSentAck = reg.Counter(telemetry.Name("cluster_wire_bytes_sent_total", "kind", "ack", "worker", id))
	w.tel.wireRecvData = reg.Counter(telemetry.Name("cluster_wire_bytes_received_total", "kind", "data", "worker", id))
	w.tel.wireRecvAck = reg.Counter(telemetry.Name("cluster_wire_bytes_received_total", "kind", "ack", "worker", id))
	w.tel.batchDocs = reg.Histogram(telemetry.Name("cluster_frame_batch_docs", "worker", id))
	w.tel.wireRaw = reg.Counter(telemetry.Name("cluster_wire_raw_bytes_total", "worker", id))
	w.tel.wireComp = reg.Counter(telemetry.Name("cluster_wire_compressed_bytes_total", "worker", id))
	w.tel.compRatio = reg.Gauge(telemetry.Name("cluster_wire_compression_ratio", "worker", id))
	w.tel.migOut = reg.Counter(telemetry.Name("cluster_migrations_total", "direction", "out", "worker", id))
	w.tel.migOutBytes = reg.Counter(telemetry.Name("cluster_migration_bytes_total", "direction", "out", "worker", id))
	w.tel.migIn = reg.Counter(telemetry.Name("cluster_migrations_total", "direction", "in", "worker", id))
	w.tel.migInBytes = reg.Counter(telemetry.Name("cluster_migration_bytes_total", "direction", "in", "worker", id))
	w.tel.exec = make(map[string]*telemetry.Counter, len(w.spec))
	w.tel.emit = make(map[string]*telemetry.Counter, len(w.spec))
	for _, comp := range w.spec {
		// Same base names as the in-process runtime, so a cross-worker
		// SumCounter matches a single-process run's totals.
		w.tel.exec[comp.ID] = reg.Counter(telemetry.Name("topology_tuples_executed_total", "component", comp.ID, "worker", id))
		w.tel.emit[comp.ID] = reg.Counter(telemetry.Name("topology_tuples_emitted_total", "component", comp.ID, "worker", id))
	}
}

// attachBoxTelemetry instruments one task mailbox at creation time —
// mailboxes are now born at task start (or migration install), after
// initTelemetry has run.
func (w *Worker) attachBoxTelemetry(compID string, task int, box *mailbox) {
	reg := w.Telemetry
	if reg == nil {
		return
	}
	id := fmt.Sprint(w.id)
	box.depth = reg.Gauge(telemetry.Name("cluster_mailbox_depth", "worker", id, "component", compID, "task", fmt.Sprint(task)))
	box.blockedNS = reg.Counter(telemetry.Name("cluster_backpressure_blocked_ns_total", "worker", id, "component", compID))
	box.blockedPuts = reg.Counter(telemetry.Name("cluster_backpressure_blocked_puts_total", "worker", id, "component", compID))
}

// ScrapeAddr reports the bound address of the worker's metrics endpoint
// ("" until Run starts one via MetricsAddr).
func (w *Worker) ScrapeAddr() string { return w.metricsSrv.Load().Addr() }

// Run connects to the coordinator, serves the data plane and executes
// the local tasks until the coordinator signals stop. It blocks for the
// whole run.
func (w *Worker) Run() error {
	if !ValidWireFormat(w.WireFormat) {
		return fmt.Errorf("cluster: unknown wire format %q (want %q or %q)", w.WireFormat, WireBinary, WireGob)
	}
	w.initTelemetry()
	if w.MetricsAddr != "" {
		srv, err := telemetry.Serve(w.MetricsAddr, w.Telemetry)
		if err != nil {
			return err
		}
		w.metricsSrv.Store(srv)
		defer srv.Close()
	}
	dataAddr, err := w.Listen()
	if err != nil {
		return err
	}
	if w.AdvertiseAddr != "" {
		dataAddr = w.AdvertiseAddr
	}
	go w.acceptLoop()
	defer w.listener.Close()
	// Whatever way Run exits, close the peer slots and stop the
	// auxiliary goroutines, then wait for the per-peer senders — they
	// hold no resources a later run could trip on, but tests inspect
	// telemetry the moment Run returns.
	defer func() {
		w.closePeers()
		w.stopAux()
		w.senderWG.Wait()
	}()
	go w.ackTicker()

	raw, err := net.DialTimeout("tcp", w.coordAddr, w.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: worker %d dial coordinator: %w", w.id, err)
	}
	coord := newConn(raw)
	defer coord.close()
	w.lifeMu.Lock()
	w.ctrl = coord
	killed := w.killed.Load()
	w.lifeMu.Unlock()
	if killed { // Kill raced the dial
		coord.close()
		return ErrKilled
	}
	if err := coord.send(&envelope{Kind: frameHello, WorkerID: w.id, DataAddr: dataAddr, Joining: w.joining}); err != nil {
		return err
	}
	start, err := coord.recv()
	if err != nil || start.Kind != frameStart {
		return fmt.Errorf("cluster: worker %d handshake failed: %v", w.id, err)
	}
	addrs := make(map[int]string, len(start.Addresses))
	for id, a := range start.Addresses {
		addrs[id] = a
	}
	w.addrs.Store(&addrs)
	if w.joining {
		// A late joiner is welcomed with the live epoch-stamped table
		// (the first rescale it participates in arrives right after).
		w.placement.Store(PlacementAt(start.Epoch, start.Workers, start.Table))
	}

	go w.heartbeatLoop(coord)
	w.startTasks()

	// Control loop: answer probes until stop.
	for {
		e, err := coord.recv()
		if err != nil {
			if w.killed.Load() {
				w.drainTasks()
				return ErrKilled
			}
			// The control link died under us — the coordinator is gone,
			// or it expired this worker's lease and cut the link. Tear
			// the tasks down and drain before returning: leaving them
			// running would leak goroutines past Run.
			w.kill()
			w.drainTasks()
			return fmt.Errorf("cluster: worker %d control: %w", w.id, err)
		}
		if w.hung.Load() {
			continue // a wedged process answers nothing (see Hang)
		}
		switch e.Kind {
		case frameAbort:
			w.kill()
			w.drainTasks()
			return ErrAborted
		case frameProbe:
			reply := &envelope{
				Kind:       frameProbeReply,
				WorkerID:   w.id,
				Seq:        e.Seq,
				SpoutsDone: w.spoutsLeft.Load() == 0,
				Sent:       w.sent.Load(),
				Executed:   w.executed.Load(),
			}
			if err := coord.send(reply); err != nil {
				return err
			}
		case frameStop:
			w.shutdown()
			return coord.send(&envelope{Kind: frameDone, WorkerID: w.id, Stats: w.stats()})
		case framePause:
			// Reply from a goroutine: spouts may take a while to reach
			// their frontier, and the control loop must keep answering
			// probes and aborts meanwhile.
			go func() {
				f := w.requestPause()
				_ = coord.send(&envelope{Kind: framePaused, WorkerID: w.id, Window: f})
			}()
		case frameLoads:
			if err := coord.send(&envelope{Kind: frameLoadsReply, WorkerID: w.id, Loads: w.taskLoads()}); err != nil {
				return err
			}
		case frameRescale:
			go w.handleRescale(coord, e)
		case frameResume:
			w.retirePeers(e.Departing)
			w.resumeSpouts()
		case frameRetire:
			// This worker is leaving the cluster: all its tasks have
			// migrated away and its resend buffers are drained, so the
			// normal quiescent shutdown applies.
			w.shutdown()
			w.dropOwnPeerSeries()
			return coord.send(&envelope{Kind: frameDone, WorkerID: w.id, Stats: w.stats()})
		}
	}
}

// startTasks launches the locally hosted bolt and spout tasks. A
// joining worker hosts nothing until a rescale migrates tasks in.
func (w *Worker) startTasks() {
	parallelism := make(map[string]int, len(w.spec))
	for _, comp := range w.spec {
		parallelism[comp.ID] = comp.Parallelism
	}
	pl := w.placement.Load()
	for _, comp := range w.spec {
		comp := comp
		if bf := w.builder.BoltFactory(comp.ID); bf != nil {
			for _, task := range pl.TasksOn(comp.ID, w.id) {
				w.startBolt(comp, task, bf(task), parallelism, nil)
			}
		}
		if sf := w.builder.SpoutFactory(comp.ID); sf != nil {
			for _, task := range pl.TasksOn(comp.ID, w.id) {
				w.spoutsLeft.Add(1)
				w.spoutWG.Add(1)
				go w.runSpout(comp, task, sf(task), parallelism)
			}
		}
	}
}

// startBolt installs one bolt task (mailbox slot + handle) and starts
// its loop. restore is nil on a normal start; a migration install
// passes the streamed snapshot (possibly empty for a stateless bolt),
// which replaces the Recover pass. Returns false when the worker is
// already stopping.
func (w *Worker) startBolt(comp topology.ComponentSpec, task int, bolt topology.Bolt, parallelism map[string]int, restore []byte) bool {
	w.tasksMu.Lock()
	if w.stopping {
		w.tasksMu.Unlock()
		return false
	}
	box := newMailbox(comp.MaxPending)
	w.attachBoxTelemetry(comp.ID, task, box)
	h := &taskHandle{bolt: bolt, box: box, done: make(chan struct{})}
	w.tasks[comp.ID][task] = h
	w.boxes[comp.ID][task].Store(box)
	w.boltWG.Add(1)
	w.tasksMu.Unlock()
	go w.boltLoop(comp, task, h, parallelism, restore)
	return true
}

func (w *Worker) boltLoop(comp topology.ComponentSpec, task int, h *taskHandle, parallelism map[string]int, restore []byte) {
	defer w.boltWG.Done()
	defer close(h.done)
	ctx := &topology.TaskContext{Component: comp.ID, Task: task, NumTasks: comp.Parallelism, Parallelism: parallelism}
	h.bolt.Prepare(ctx)
	col := &workerCollector{w: w, comp: comp.ID, task: task}
	if restore != nil {
		// Migrated-in task: rebuild from the streamed snapshot and skip
		// Recover — nothing crashed, so re-emitting the last recovery
		// decisions would duplicate them downstream.
		if s, ok := h.bolt.(state.Snapshotter); ok && len(restore) > 0 {
			if err := state.Decode(comp.ID, restore, s); err != nil {
				w.recordFailure(comp.ID, task, err)
			}
		}
	} else if rec, ok := h.bolt.(topology.Recoverer); ok {
		rec.Recover(col)
	}
	for {
		tuple, ok := h.box.get()
		if !ok {
			break
		}
		w.safeExecute(comp.ID, task, h.bolt, tuple, col)
		w.execCount[comp.ID].Add(1)
		w.taskExec[comp.ID][task].Add(1)
		w.executed.Add(1)
		w.tel.exec[comp.ID].Inc()
		w.tel.copiesDone.Inc()
	}
	if !h.moved.Load() {
		h.bolt.Cleanup()
	}
}

func (w *Worker) runSpout(comp topology.ComponentSpec, task int, spout topology.Spout, parallelism map[string]int) {
	defer w.spoutWG.Done()
	defer func() {
		w.spoutsLeft.Add(-1)
		// A spout exhausting itself while a pause gathers counts as
		// parked; wake the waiter so it re-checks the tally.
		w.pauseMu.Lock()
		w.pauseCond.Broadcast()
		w.pauseMu.Unlock()
	}()
	ctx := &topology.TaskContext{Component: comp.ID, Task: task, NumTasks: comp.Parallelism, Parallelism: parallelism}
	spout.Open(ctx)
	col := &workerCollector{w: w, comp: comp.ID, task: task}
	for !w.killed.Load() {
		w.pausePoint(spout)
		if w.killed.Load() || !w.safeNext(comp.ID, task, spout, col) {
			break
		}
	}
	spout.Close()
}

func (w *Worker) safeExecute(comp string, task int, bolt topology.Bolt, tuple topology.Tuple, col topology.Collector) {
	defer func() {
		if r := recover(); r != nil {
			w.recordFailure(comp, task, r)
		}
	}()
	bolt.Execute(tuple, col)
}

func (w *Worker) safeNext(comp string, task int, spout topology.Spout, col topology.Collector) (more bool) {
	defer func() {
		if r := recover(); r != nil {
			w.recordFailure(comp, task, r)
			more = false
		}
	}()
	return spout.NextTuple(col)
}

func (w *Worker) recordFailure(comp string, task int, v any) {
	w.failMu.Lock()
	w.failures = append(w.failures, fmt.Sprintf("%s[%d]@w%d: %v", comp, task, w.id, v))
	w.failMu.Unlock()
}

// wireFormat resolves the data-plane encoding ("" means the default).
func (w *Worker) wireFormat() string {
	if w.WireFormat == "" {
		return WireBinary
	}
	return w.WireFormat
}

// frameBatch resolves the per-frame tuple cap (<= 0 disables batching).
func (w *Worker) frameBatch() int {
	if w.FrameBatch <= 0 {
		return 1
	}
	return w.FrameBatch
}

// newDataConn wraps a data-plane socket in the configured codec, with
// byte counting underneath and the codec's instruments attached. The
// dialer side of a binary connection announces itself with the wire
// preamble; dial direction is irrelevant to gob.
func (w *Worker) newDataConn(raw net.Conn, dialer bool) wireConn {
	cc := countingConn{Conn: raw, sent: w.tel.bytesSent, recvd: w.tel.bytesRecv}
	if w.wireFormat() == WireGob {
		c := newConn(cc)
		c.dictHits, c.dictMisses = w.tel.dictHits, w.tel.dictMisses
		return c
	}
	c := newBinConn(cc, dialer, w.FrameCompress)
	c.dictHits, c.dictMisses = w.tel.dictHits, w.tel.dictMisses
	c.wireSentData, c.wireSentAck = w.tel.wireSentData, w.tel.wireSentAck
	c.wireRecvData, c.wireRecvAck = w.tel.wireRecvData, w.tel.wireRecvAck
	c.batchDocs = w.tel.batchDocs
	c.rawBytes, c.compBytes, c.compRatio = w.tel.wireRaw, w.tel.wireComp, w.tel.compRatio
	return c
}

// acceptLoop serves inbound peer connections on the data plane.
func (w *Worker) acceptLoop() {
	for {
		raw, err := w.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go w.readLoop(w.newDataConn(raw, false))
	}
}

func (w *Worker) readLoop(c wireConn) {
	defer c.close()
	for {
		e, err := c.recv()
		if err != nil {
			return
		}
		if e.Kind != frameTuple && e.Kind != frameState {
			continue
		}
		// A piggybacked cumulative ack rides on reverse-direction data
		// traffic: it acknowledges frames we sent to e.FromWorker on our
		// outbound link to it.
		if e.AckSeq > 0 {
			if p := w.peerIfAny(e.FromWorker); p != nil {
				w.advanceAcked(p, e.AckSeq)
			}
		}
		if e.DataSeq == 0 {
			// Unsequenced frame (no reliable-delivery state): deliver as
			// is. Kept for robustness; every current sender sequences.
			if e.Kind == frameTuple {
				w.deliverLocal(e.TargetComp, e.TargetTask, e.Tuple)
			}
			continue
		}
		in := w.inboundFor(e.FromWorker)
		in.mu.Lock()
		if in.c != c {
			// The sender showed up on a fresh connection: any ack written
			// to the old one may have died with it, so re-ack even if our
			// cursor says the sender already knows.
			in.c = c
			in.needAck = true
		}
		if e.DataSeq <= in.delivered {
			// Replay of a frame that already made it — the ack got lost,
			// not the data. Drop the duplicate (exactly-once in effect)
			// and make sure a fresh ack goes out so the sender's resend
			// buffer drains.
			w.tel.dedup.Inc()
			in.needAck = true
			in.mu.Unlock()
			continue
		}
		if e.DataSeq != in.delivered+1 {
			// Impossible under the protocol: per-connection sequences
			// ascend and a replay starts at acked+1 <= delivered+1.
			// Record it and deliver anyway — wedging the link on a
			// corrupted counter would be worse than a gap.
			w.recordFailure(e.TargetComp, e.TargetTask,
				fmt.Sprintf("sequence gap from worker %d: got %d after %d", e.FromWorker, e.DataSeq, in.delivered))
		}
		in.delivered = e.DataSeq
		// Deliver while holding in.mu: the cursor update and the mailbox
		// put must be atomic per sender, or a straggler read on a dying
		// connection could reorder against the replay on its successor.
		// Migration state chunks take the same cursor (a replay after a
		// sever must not re-install half a snapshot).
		if e.Kind == frameState {
			w.acceptStateChunk(e)
		} else {
			w.deliverLocal(e.TargetComp, e.TargetTask, e.Tuple)
		}
		if in.delivered-in.acked >= uint64(w.AckEvery) {
			w.sendAckLocked(in)
		}
		in.mu.Unlock()
	}
}

// inboundFor returns the receive-side state for one sending peer,
// creating it on first contact.
func (w *Worker) inboundFor(id int) *inbound {
	w.inboundMu.Lock()
	defer w.inboundMu.Unlock()
	in, ok := w.inbound[id]
	if !ok {
		in = &inbound{}
		w.inbound[id] = in
	}
	return in
}

// deliveredTo reports the cumulative delivery cursor for frames from
// the given peer — the value piggybacked as AckSeq on data frames
// flowing the other way.
func (w *Worker) deliveredTo(id int) uint64 {
	in := w.inboundFor(id)
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.delivered
}

// notePiggyback records that a cumulative ack up to seq was handed to
// the transport on a data frame, so the idle timer stops re-sending
// dedicated acks for the same ground. If the frame dies on the wire its
// connection dies with it, the sender replays, and the duplicates force
// a fresh ack — the optimism self-corrects.
func (w *Worker) notePiggyback(id int, seq uint64) {
	if seq == 0 {
		return
	}
	in := w.inboundFor(id)
	in.mu.Lock()
	if seq > in.acked {
		in.acked = seq
	}
	in.mu.Unlock()
}

// sendAckLocked writes a cumulative ack covering everything delivered
// from this sender, on the sender's freshest inbound connection. The
// caller holds in.mu. A write failure is ignored: the link is dying,
// the sender will replay on its successor, and the duplicates will
// force a new ack.
func (w *Worker) sendAckLocked(in *inbound) {
	if in.c == nil || (!in.needAck && in.delivered <= in.acked) {
		return
	}
	if err := in.c.send(&envelope{Kind: frameAck, WorkerID: w.id, AckSeq: in.delivered}); err != nil {
		return
	}
	in.acked = in.delivered
	in.needAck = false
	w.tel.acksSent.Inc()
}

// ackTicker is the idle ack timer: every AckInterval it flushes a
// cumulative ack to any sender with deliveries the piggyback and
// inline paths have not yet acknowledged.
func (w *Worker) ackTicker() {
	if w.AckInterval <= 0 {
		return
	}
	t := time.NewTicker(w.AckInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.inboundMu.Lock()
			ins := make([]*inbound, 0, len(w.inbound))
			for _, in := range w.inbound {
				ins = append(ins, in)
			}
			w.inboundMu.Unlock()
			for _, in := range ins {
				in.mu.Lock()
				w.sendAckLocked(in)
				in.mu.Unlock()
			}
		}
	}
}

// heartbeatLoop beats on the control plane every HeartbeatInterval so
// the coordinator's lease sees the worker alive even when its tasks
// are idle. A hung worker (Hang) stops beating without any socket
// breaking — exactly the silence the lease timeout exists to catch.
func (w *Worker) heartbeatLoop(coord *conn) {
	if w.HeartbeatInterval <= 0 {
		return
	}
	t := time.NewTicker(w.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if w.hung.Load() {
				continue
			}
			if coord.send(&envelope{Kind: frameHeartbeat, WorkerID: w.id}) != nil {
				return
			}
			w.tel.heartbeats.Inc()
		}
	}
}

// deliverLocal puts a tuple into a hosted mailbox and reports whether
// it was accepted. A tuple for a task that moved away in a rescale
// (framed under a stale epoch, or replayed after a sever) is re-routed
// through the current placement instead of being misdelivered — the
// copy was counted once at its origin, so the forward does not touch
// the sent counter. A genuinely malformed frame or a delivery to a
// closed mailbox compensates the sender's sent counter so termination
// detection stays exact; a bad task index is recorded as a failure
// instead of panicking the read loop.
func (w *Worker) deliverLocal(comp string, task int, t topology.Tuple) bool {
	slots := w.boxes[comp]
	var box *mailbox
	if task >= 0 && task < len(slots) {
		box = slots[task].Load()
	}
	if box == nil {
		if target, ok := w.placement.Load().Lookup(comp, task); ok && target != w.id {
			if w.sendToPeer(target, &envelope{Kind: frameTuple, TargetComp: comp, TargetTask: task, Tuple: t}) == nil {
				return true
			}
		}
		w.recordFailure(comp, task, "tuple for task not hosted here")
		w.executed.Add(1) // compensate sender's count
		w.tel.copiesDone.Inc()
		w.tel.dropped.Inc()
		return false
	}
	if !box.put(t) {
		w.executed.Add(1)
		w.tel.copiesDone.Inc()
		w.tel.dropped.Inc()
		return false
	}
	return true
}

// peerFor returns the reliable-delivery slot for a worker, creating it
// (and its sender goroutine) on first use. The global peersMu guards
// only the map; queueing, dialling and sending happen under the slot's
// own lock, so one unreachable peer never blocks dispatches to the
// others.
func (w *Worker) peerFor(id int) *peer {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	p, ok := w.peers[id]
	if !ok {
		p = &peer{rng: rand.New(rand.NewSource(w.peerSeed(id)))}
		p.notFull = sync.NewCond(&p.mu)
		p.work = sync.NewCond(&p.mu)
		if w.Telemetry != nil {
			p.backoff = w.Telemetry.Gauge(telemetry.Name("cluster_peer_backoff_seconds",
				"worker", fmt.Sprint(w.id), "peer", fmt.Sprint(id)))
		}
		if w.peersClosed.Load() {
			p.closed = true
		}
		w.peers[id] = p
		if !p.closed {
			w.senderWG.Add(1)
			go w.runPeerSender(id, p)
		}
	}
	return p
}

// peerIfAny returns the slot for a worker without creating one — the
// read loop uses it to route piggybacked acks, which must not conjure
// a sender for a peer this worker never dispatches to.
func (w *Worker) peerIfAny(id int) *peer {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	return w.peers[id]
}

// peerSeed derives the deterministic jitter seed for one peer link
// from the worker's RandSeed (or a fixed default) and both endpoint
// ids — distinct per ordered pair, reproducible across runs.
func (w *Worker) peerSeed(id int) int64 {
	seed := w.RandSeed
	if seed == 0 {
		seed = 1
	}
	return seed*1000003 + int64(w.id)*8191 + int64(id)
}

// sendToPeer hands one data frame to the peer's reliable-delivery
// queue: the frame gets the next per-pair sequence number and sits in
// the resend buffer until the receiver's cumulative ack covers it. The
// call blocks while the buffer is at capacity (backpressure, not
// loss) and fails only when the worker is shutting down — the one case
// left for the caller's drop-and-compensate path.
func (w *Worker) sendToPeer(id int, e *envelope) error {
	if _, ok := (*w.addrs.Load())[id]; !ok {
		return fmt.Errorf("cluster: no address for worker %d", id)
	}
	p := w.peerFor(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed && w.ResendBuffer > 0 && len(p.buf) >= w.ResendBuffer {
		p.notFull.Wait()
	}
	if p.closed {
		return errPeerClosed
	}
	p.nextSeq++
	e.FromWorker = w.id
	e.DataSeq = p.nextSeq
	p.buf = append(p.buf, e)
	w.tel.buffered.Add(1)
	p.work.Signal()
	return nil
}

// runPeerSender is the per-peer writer goroutine: it dials lazily with
// capped exponential backoff plus seeded jitter, writes buffered
// frames in sequence order, and on any connection failure evicts the
// link and replays the unacknowledged suffix on the next one. Frames
// are retried until acked or the worker shuts down — transient severs
// degrade latency, never correctness; only lease expiry at the
// coordinator escalates to checkpoint recovery.
func (w *Worker) runPeerSender(id int, p *peer) {
	defer w.senderWG.Done()
	backoff := w.RetryBackoff
	for {
		p.mu.Lock()
		for !p.closed && p.sentTo >= p.nextSeq {
			p.work.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		if p.c == nil {
			addr := (*w.addrs.Load())[id]
			p.mu.Unlock() // never hold the slot across a dial
			raw, derr := net.DialTimeout("tcp", addr, w.DialTimeout)
			p.mu.Lock()
			if p.closed {
				if derr == nil {
					raw.Close()
				}
				p.mu.Unlock()
				return
			}
			if derr != nil {
				backoff = w.retryPause(p, backoff) // unlocks p.mu
				continue
			}
			w.tel.dials.Inc()
			if p.dialled++; p.dialled > 1 {
				w.tel.redials.Inc()
			}
			c := w.newDataConn(raw, true)
			p.c = c
			// Replay everything unacknowledged on the fresh link. The
			// buffered envelopes hold raw strings (the dictionary encode
			// copies at write time), so the resends are re-encoded
			// against the new connection's empty dictionary.
			p.sentTo = p.acked
			go w.ackLoop(p, c)
		}
		if p.sentTo >= p.nextSeq { // an ack outran the queue meanwhile
			p.mu.Unlock()
			continue
		}
		if w.FrameFlushInterval > 0 {
			w.awaitBatchLocked(p)
			if p.closed {
				p.mu.Unlock()
				return
			}
			if p.c == nil || p.sentTo >= p.nextSeq {
				p.mu.Unlock()
				continue // the link was evicted or an ack drained the queue
			}
		}
		// Batch the pending suffix, capped at FrameBatch. The buffer is a
		// contiguous sequence run (buf[i].DataSeq == acked+1+i), so the
		// batch members carry consecutive sequence numbers — the property
		// the binary format's implicit firstSeq+i encoding relies on.
		lo := p.sentTo - p.acked
		hi := p.nextSeq - p.acked
		if limit := lo + uint64(w.frameBatch()); hi > limit {
			hi = limit
		}
		batch := p.buf[lo:hi]
		// Frames of different kinds never share a wire frame: a
		// migration state chunk travels alone, and a run of tuples ends
		// at the first state chunk queued behind it.
		if batch[0].Kind == frameState {
			batch = batch[:1]
		} else {
			for i := 1; i < len(batch); i++ {
				if batch[i].Kind != frameTuple {
					batch = batch[:i]
					break
				}
			}
		}
		ack := w.deliveredTo(id) // piggyback our receive cursor
		for _, e := range batch {
			e.AckSeq = ack
			// Per batch *member* accounting, so frames−retries still
			// equals delivered remote copies regardless of batching.
			w.tel.framesSent.Inc()
			if e.DataSeq <= p.maxSent {
				w.tel.resent.Inc()
			} else {
				p.maxSent = e.DataSeq
			}
		}
		c := p.c
		if err := c.sendBatch(batch); err != nil {
			c.close()
			p.c = nil
			backoff = w.retryPause(p, backoff) // unlocks p.mu
			continue
		}
		p.sentTo = batch[len(batch)-1].DataSeq
		p.backoff.Set(0)
		p.mu.Unlock()
		backoff = w.RetryBackoff
		w.notePiggyback(id, ack)
	}
}

// awaitBatchLocked implements the opt-in flush interval: with a live
// connection and a non-full batch pending, wait up to
// FrameFlushInterval for more dispatches so frames travel fuller —
// trading bounded latency for wire density. The caller holds p.mu (the
// wait releases it); wakes early when the batch fills, the link dies,
// or the worker shuts down.
func (w *Worker) awaitBatchLocked(p *peer) {
	deadline := time.Now().Add(w.FrameFlushInterval)
	timer := time.AfterFunc(w.FrameFlushInterval, func() {
		p.mu.Lock()
		p.work.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	for !p.closed && p.c != nil &&
		p.nextSeq-p.sentTo < uint64(w.frameBatch()) && time.Now().Before(deadline) {
		p.work.Wait()
	}
}

// retryPause records a failed attempt and sleeps the current backoff
// plus jitter, releasing p.mu first (acks must keep flowing while the
// sender waits). It returns the next backoff. The caller holds p.mu.
func (w *Worker) retryPause(p *peer, backoff time.Duration) time.Duration {
	w.tel.sendRetries.Inc()
	p.backoff.Set(backoff.Seconds())
	jitter := time.Duration(p.rng.Int63n(int64(backoff) + 1))
	p.mu.Unlock()
	time.Sleep(backoff + jitter)
	next := backoff * 2
	if next > w.RetryBackoffMax {
		next = w.RetryBackoffMax
	}
	return next
}

// ackLoop owns the read side of one outbound connection: the receiver
// writes cumulative acks back on it. An ack releases the covered
// prefix of the resend buffer; a read error means the link died, so
// the loop evicts it and wakes the sender to redial and replay — even
// when no new dispatch would have touched the peer again.
func (w *Worker) ackLoop(p *peer, c wireConn) {
	for {
		e, err := c.recv()
		if err != nil {
			p.mu.Lock()
			if p.c == c {
				c.close()
				p.c = nil
				p.sentTo = p.acked
				p.work.Signal()
			}
			p.mu.Unlock()
			return
		}
		if e.Kind != frameAck {
			continue
		}
		w.tel.acksRecv.Inc()
		w.advanceAcked(p, e.AckSeq)
	}
}

// advanceAcked applies a cumulative ack to a peer's resend buffer,
// releasing the covered prefix and waking dispatchers blocked on a
// full buffer. Stale and duplicate acks are no-ops.
func (w *Worker) advanceAcked(p *peer, seq uint64) {
	p.mu.Lock()
	if seq > p.acked {
		if seq > p.nextSeq {
			seq = p.nextSeq // corrupt ack; never release unsent frames
		}
		n := seq - p.acked
		w.tel.buffered.Add(-float64(n))
		p.buf = p.buf[n:]
		p.acked = seq
		if p.sentTo < seq {
			p.sentTo = seq
		}
		p.notFull.Broadcast()
	}
	p.mu.Unlock()
}

// dispatch routes one tuple copy to (comp, task), local or remote, and
// reports whether the copy was accepted (for a remote copy: sequenced
// into the peer's resend buffer, which guarantees delivery while the
// run lives). The sent counter is incremented exactly once per copy —
// resends never re-count. A copy refused because the worker is
// shutting down compensates executed so abort termination is still
// reached.
func (w *Worker) dispatch(comp string, task int, t topology.Tuple) bool {
	w.sent.Add(1)
	w.tel.copies.Inc()
	// One atomic load: the epoch-consistency cost on the routing hot
	// path is this pointer read, nothing more.
	target := w.placement.Load().WorkerFor(comp, task)
	if target == w.id {
		return w.deliverLocal(comp, task, t)
	}
	err := w.sendToPeer(target, &envelope{Kind: frameTuple, TargetComp: comp, TargetTask: task, Tuple: t})
	if err != nil {
		w.recordFailure(comp, task, err)
		w.executed.Add(1) // compensate so termination is still reached
		w.tel.copiesDone.Inc()
		w.tel.dropped.Inc()
		return false
	}
	return true
}

// shutdown stops local tasks after the coordinator declared global
// quiescence. Quiescence (sent == executed, twice) implies every
// buffered frame has been delivered and executed, so closing the peer
// slots here can never strand a tuple — at most it discards resend
// copies whose acks were still in flight.
func (w *Worker) shutdown() {
	w.spoutWG.Wait() // spouts are already exhausted at this point
	w.tasksMu.Lock()
	w.stopping = true // no migration may install a task past this point
	w.tasksMu.Unlock()
	w.closeBoxes()
	w.boltWG.Wait()
	w.closePeers()
	w.stopAux()
}

// PeerConnections reports how many outbound peer connections are
// currently cached and believed healthy — after a network fault the
// ack loops evict the dead links, driving this back to zero until a
// pending or new frame makes the sender redial.
func (w *Worker) PeerConnections() int {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	n := 0
	for _, p := range w.peers {
		p.mu.Lock()
		if p.c != nil {
			n++
		}
		p.mu.Unlock()
	}
	return n
}

// UnackedFrames reports how many data frames sit in this worker's
// resend buffers awaiting a peer's cumulative ack. Zero means every
// dispatched copy is known delivered — the transport-level analogue of
// quiescence, and the condition under which a sever leaves nothing to
// replay.
func (w *Worker) UnackedFrames() int {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	n := 0
	for _, p := range w.peers {
		p.mu.Lock()
		n += len(p.buf)
		p.mu.Unlock()
	}
	return n
}

// Counters exposes the worker's transport accounting: copies routed
// into the data plane and copies executed or compensated. They are
// equal exactly when nothing is queued, executing, or in flight.
func (w *Worker) Counters() (sent, executed int64) {
	return w.sent.Load(), w.executed.Load()
}

func (w *Worker) stats() topology.Stats {
	s := topology.Stats{Emitted: make(map[string]int64), Executed: make(map[string]int64)}
	for id := range w.emitted {
		s.Emitted[id] = w.emitted[id].Load()
		s.Executed[id] = w.execCount[id].Load()
	}
	s.SentCopies, s.ExecCopies = w.Counters()
	w.failMu.Lock()
	s.Failures = append(s.Failures, w.failures...)
	w.failMu.Unlock()
	return s
}

// workerCollector routes emissions of one local task across the
// cluster.
type workerCollector struct {
	w    *Worker
	comp string
	task int
}

// Emit implements topology.Collector.
func (c *workerCollector) Emit(v topology.Values) { c.EmitTo(topology.DefaultStream, v) }

// EmitTo implements topology.Collector. Emitted counts delivered
// copies, mirroring the in-process runtime: emissions without a
// subscriber or copies dropped by the transport do not count.
func (c *workerCollector) EmitTo(stream string, v topology.Values) {
	t := topology.Tuple{Stream: stream, Source: c.comp, SourceTask: c.task, Values: v}
	var delivered int64
	for _, e := range c.w.edges[c.comp][stream] {
		for _, task := range topology.TargetTasks(e.grouping, e.fields, v, e.nTasks, &e.rr) {
			if c.w.dispatch(e.target, task, t) {
				delivered++
			}
		}
	}
	c.w.emitted[c.comp].Add(delivered)
	c.w.tel.emit[c.comp].Add(delivered)
}

// EmitDirect implements topology.Collector.
func (c *workerCollector) EmitDirect(stream string, task int, v topology.Values) {
	t := topology.Tuple{Stream: stream, Source: c.comp, SourceTask: c.task, Values: v}
	var delivered int64
	for _, e := range c.w.edges[c.comp][stream] {
		if e.grouping != topology.Direct {
			continue
		}
		if task < 0 || task >= e.nTasks {
			panic(fmt.Sprintf("cluster: EmitDirect task %d out of range for %s (%d tasks)", task, e.target, e.nTasks))
		}
		if c.w.dispatch(e.target, task, t) {
			delivered++
		}
	}
	c.w.emitted[c.comp].Add(delivered)
	c.w.tel.emit[c.comp].Add(delivered)
}
