package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/topology"
)

// mailbox is the worker-local unbounded FIFO queue (semantics identical
// to the in-process runtime's mailbox).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []topology.Tuple
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(t topology.Tuple) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.buf = append(m.buf, t)
	m.cond.Signal()
	return true
}

func (m *mailbox) get() (topology.Tuple, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.buf) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.buf) == 0 {
		return topology.Tuple{}, false
	}
	t := m.buf[0]
	m.buf = m.buf[1:]
	return t, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// outEdge is one outbound subscription resolved against the placement.
type outEdge struct {
	target   string
	nTasks   int
	grouping topology.GroupingKind
	fields   []string
	rr       atomic.Uint64
}

// Worker hosts the tasks placed on it and exchanges tuples with its
// peers over TCP. Every worker process (or goroutine in tests)
// constructs the same topology Builder from code; only the tasks the
// placement assigns to this worker are instantiated locally.
type Worker struct {
	id        int
	builder   *topology.Builder
	spec      []topology.ComponentSpec
	specByID  map[string]topology.ComponentSpec
	placement *Placement
	coordAddr string

	// BindAddr is the data-plane listen address. It defaults to an
	// ephemeral loopback port; set it to an externally routable
	// "host:port" before Run for a multi-host deployment.
	BindAddr string

	listener  net.Listener
	addresses map[int]string
	peers     map[int]*conn
	peersMu   sync.Mutex

	// boxes holds mailboxes for locally hosted bolt tasks:
	// component -> task -> mailbox (nil when not hosted here).
	boxes map[string][]*mailbox
	// edges holds the outbound routing of locally hosted components:
	// component -> stream -> edges.
	edges map[string]map[string][]*outEdge

	sent       atomic.Int64
	executed   atomic.Int64
	spoutsLeft atomic.Int64

	emitted   map[string]*atomic.Int64
	execCount map[string]*atomic.Int64
	failMu    sync.Mutex
	failures  []string

	boltWG  sync.WaitGroup
	spoutWG sync.WaitGroup
}

// NewWorker prepares a worker for the given topology and cluster size.
// The placement is derived from (spec, workers); every participant must
// use the same builder code and worker count.
func NewWorker(id, workers int, b *topology.Builder, coordAddr string) (*Worker, error) {
	spec, err := b.Spec()
	if err != nil {
		return nil, err
	}
	placement, err := NewPlacement(spec, workers)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		id:        id,
		builder:   b,
		spec:      spec,
		specByID:  make(map[string]topology.ComponentSpec),
		placement: placement,
		coordAddr: coordAddr,
		peers:     make(map[int]*conn),
		boxes:     make(map[string][]*mailbox),
		edges:     make(map[string]map[string][]*outEdge),
		emitted:   make(map[string]*atomic.Int64),
		execCount: make(map[string]*atomic.Int64),
	}
	for _, comp := range spec {
		w.specByID[comp.ID] = comp
		w.emitted[comp.ID] = &atomic.Int64{}
		w.execCount[comp.ID] = &atomic.Int64{}
	}
	// Resolve outbound edges for every component (any local task may
	// emit on any of its streams).
	for _, comp := range spec {
		for _, sub := range comp.Subs {
			src := w.edges[sub.Source]
			if src == nil {
				src = make(map[string][]*outEdge)
				w.edges[sub.Source] = src
			}
			src[sub.Stream] = append(src[sub.Stream], &outEdge{
				target:   comp.ID,
				nTasks:   comp.Parallelism,
				grouping: sub.Grouping,
				fields:   sub.Fields,
			})
		}
	}
	// Local mailboxes for hosted bolt tasks.
	for _, comp := range spec {
		if b.BoltFactory(comp.ID) == nil {
			continue
		}
		boxes := make([]*mailbox, comp.Parallelism)
		for _, task := range placement.TasksOn(comp.ID, id) {
			boxes[task] = newMailbox()
		}
		w.boxes[comp.ID] = boxes
	}
	return w, nil
}

// Run connects to the coordinator, serves the data plane and executes
// the local tasks until the coordinator signals stop. It blocks for the
// whole run.
func (w *Worker) Run() error {
	bind := w.BindAddr
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return fmt.Errorf("cluster: worker %d listen: %w", w.id, err)
	}
	w.listener = ln
	go w.acceptLoop()
	defer ln.Close()

	raw, err := net.Dial("tcp", w.coordAddr)
	if err != nil {
		return fmt.Errorf("cluster: worker %d dial coordinator: %w", w.id, err)
	}
	coord := newConn(raw)
	defer coord.close()
	if err := coord.send(&envelope{Kind: frameHello, WorkerID: w.id, DataAddr: ln.Addr().String()}); err != nil {
		return err
	}
	start, err := coord.recv()
	if err != nil || start.Kind != frameStart {
		return fmt.Errorf("cluster: worker %d handshake failed: %v", w.id, err)
	}
	w.addresses = start.Addresses

	w.startTasks()

	// Control loop: answer probes until stop.
	for {
		e, err := coord.recv()
		if err != nil {
			return fmt.Errorf("cluster: worker %d control: %w", w.id, err)
		}
		switch e.Kind {
		case frameProbe:
			reply := &envelope{
				Kind:       frameProbeReply,
				WorkerID:   w.id,
				Seq:        e.Seq,
				SpoutsDone: w.spoutsLeft.Load() == 0,
				Sent:       w.sent.Load(),
				Executed:   w.executed.Load(),
			}
			if err := coord.send(reply); err != nil {
				return err
			}
		case frameStop:
			w.shutdown()
			return coord.send(&envelope{Kind: frameDone, WorkerID: w.id, Stats: w.stats()})
		}
	}
}

// startTasks launches the locally hosted bolt and spout tasks.
func (w *Worker) startTasks() {
	parallelism := make(map[string]int, len(w.spec))
	for _, comp := range w.spec {
		parallelism[comp.ID] = comp.Parallelism
	}
	for _, comp := range w.spec {
		comp := comp
		if bf := w.builder.BoltFactory(comp.ID); bf != nil {
			for _, task := range w.placement.TasksOn(comp.ID, w.id) {
				w.boltWG.Add(1)
				go w.runBolt(comp, task, bf(task), parallelism)
			}
		}
		if sf := w.builder.SpoutFactory(comp.ID); sf != nil {
			for _, task := range w.placement.TasksOn(comp.ID, w.id) {
				w.spoutsLeft.Add(1)
				w.spoutWG.Add(1)
				go w.runSpout(comp, task, sf(task), parallelism)
			}
		}
	}
}

func (w *Worker) runBolt(comp topology.ComponentSpec, task int, bolt topology.Bolt, parallelism map[string]int) {
	defer w.boltWG.Done()
	ctx := &topology.TaskContext{Component: comp.ID, Task: task, NumTasks: comp.Parallelism, Parallelism: parallelism}
	bolt.Prepare(ctx)
	col := &workerCollector{w: w, comp: comp.ID, task: task}
	box := w.boxes[comp.ID][task]
	for {
		tuple, ok := box.get()
		if !ok {
			break
		}
		w.safeExecute(comp.ID, task, bolt, tuple, col)
		w.execCount[comp.ID].Add(1)
		w.executed.Add(1)
	}
	bolt.Cleanup()
}

func (w *Worker) runSpout(comp topology.ComponentSpec, task int, spout topology.Spout, parallelism map[string]int) {
	defer w.spoutWG.Done()
	defer w.spoutsLeft.Add(-1)
	ctx := &topology.TaskContext{Component: comp.ID, Task: task, NumTasks: comp.Parallelism, Parallelism: parallelism}
	spout.Open(ctx)
	col := &workerCollector{w: w, comp: comp.ID, task: task}
	for w.safeNext(comp.ID, task, spout, col) {
	}
	spout.Close()
}

func (w *Worker) safeExecute(comp string, task int, bolt topology.Bolt, tuple topology.Tuple, col topology.Collector) {
	defer func() {
		if r := recover(); r != nil {
			w.recordFailure(comp, task, r)
		}
	}()
	bolt.Execute(tuple, col)
}

func (w *Worker) safeNext(comp string, task int, spout topology.Spout, col topology.Collector) (more bool) {
	defer func() {
		if r := recover(); r != nil {
			w.recordFailure(comp, task, r)
			more = false
		}
	}()
	return spout.NextTuple(col)
}

func (w *Worker) recordFailure(comp string, task int, v any) {
	w.failMu.Lock()
	w.failures = append(w.failures, fmt.Sprintf("%s[%d]@w%d: %v", comp, task, w.id, v))
	w.failMu.Unlock()
}

// acceptLoop serves inbound peer connections on the data plane.
func (w *Worker) acceptLoop() {
	for {
		raw, err := w.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go w.readLoop(newConn(raw))
	}
}

func (w *Worker) readLoop(c *conn) {
	defer c.close()
	for {
		e, err := c.recv()
		if err != nil {
			return
		}
		if e.Kind != frameTuple {
			continue
		}
		w.deliverLocal(e.TargetComp, e.TargetTask, e.Tuple)
	}
}

// deliverLocal puts a tuple into a hosted mailbox; a delivery to a
// closed mailbox compensates the sender's sent counter so termination
// detection stays exact.
func (w *Worker) deliverLocal(comp string, task int, t topology.Tuple) {
	boxes := w.boxes[comp]
	if task >= len(boxes) || boxes[task] == nil {
		w.recordFailure(comp, task, "tuple for task not hosted here")
		w.executed.Add(1) // compensate sender's count
		return
	}
	if !boxes[task].put(t) {
		w.executed.Add(1)
	}
}

// peer returns (dialling lazily) the outbound connection to a worker.
func (w *Worker) peer(id int) (*conn, error) {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	if c, ok := w.peers[id]; ok {
		return c, nil
	}
	addr, ok := w.addresses[id]
	if !ok {
		return nil, fmt.Errorf("cluster: no address for worker %d", id)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial worker %d: %w", id, err)
	}
	c := newConn(raw)
	w.peers[id] = c
	return c, nil
}

// dispatch routes one tuple copy to (comp, task), local or remote. The
// sent counter is incremented exactly once per copy.
func (w *Worker) dispatch(comp string, task int, t topology.Tuple) {
	w.sent.Add(1)
	target := w.placement.WorkerFor(comp, task)
	if target == w.id {
		w.deliverLocal(comp, task, t)
		return
	}
	c, err := w.peer(target)
	if err == nil {
		err = c.send(&envelope{Kind: frameTuple, TargetComp: comp, TargetTask: task, Tuple: t})
	}
	if err != nil {
		w.recordFailure(comp, task, err)
		w.executed.Add(1) // compensate so termination is still reached
	}
}

// shutdown stops local tasks after the coordinator declared global
// quiescence.
func (w *Worker) shutdown() {
	w.spoutWG.Wait() // spouts are already exhausted at this point
	for _, boxes := range w.boxes {
		for _, box := range boxes {
			if box != nil {
				box.close()
			}
		}
	}
	w.boltWG.Wait()
	w.peersMu.Lock()
	for _, c := range w.peers {
		c.close()
	}
	w.peersMu.Unlock()
}

func (w *Worker) stats() topology.Stats {
	s := topology.Stats{Emitted: make(map[string]int64), Executed: make(map[string]int64)}
	for id := range w.emitted {
		s.Emitted[id] = w.emitted[id].Load()
		s.Executed[id] = w.execCount[id].Load()
	}
	w.failMu.Lock()
	s.Failures = append(s.Failures, w.failures...)
	w.failMu.Unlock()
	return s
}

// workerCollector routes emissions of one local task across the
// cluster.
type workerCollector struct {
	w    *Worker
	comp string
	task int
}

// Emit implements topology.Collector.
func (c *workerCollector) Emit(v topology.Values) { c.EmitTo(topology.DefaultStream, v) }

// EmitTo implements topology.Collector.
func (c *workerCollector) EmitTo(stream string, v topology.Values) {
	t := topology.Tuple{Stream: stream, Source: c.comp, SourceTask: c.task, Values: v}
	for _, e := range c.w.edges[c.comp][stream] {
		for _, task := range topology.TargetTasks(e.grouping, e.fields, v, e.nTasks, &e.rr) {
			c.w.dispatch(e.target, task, t)
		}
	}
	c.w.emitted[c.comp].Add(1)
}

// EmitDirect implements topology.Collector.
func (c *workerCollector) EmitDirect(stream string, task int, v topology.Values) {
	t := topology.Tuple{Stream: stream, Source: c.comp, SourceTask: c.task, Values: v}
	for _, e := range c.w.edges[c.comp][stream] {
		if e.grouping != topology.Direct {
			continue
		}
		if task < 0 || task >= e.nTasks {
			panic(fmt.Sprintf("cluster: EmitDirect task %d out of range for %s (%d tasks)", task, e.target, e.nTasks))
		}
		c.w.dispatch(e.target, task, t)
	}
	c.w.emitted[c.comp].Add(1)
}
