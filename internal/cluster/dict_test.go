package cluster

import (
	"net"
	"reflect"
	"testing"

	"repro/internal/document"
	"repro/internal/topology"
)

func dictDoc(id uint64, pairs ...string) document.Document {
	ps := make([]document.Pair, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		ps = append(ps, document.Pair{Attr: pairs[i], Val: document.EncodeString(pairs[i+1])})
	}
	return document.New(id, ps)
}

func tupleFrame(vals topology.Values) *envelope {
	return &envelope{
		Kind:       frameTuple,
		TargetComp: "join",
		TargetTask: 1,
		Tuple:      topology.Tuple{Stream: "docs", Source: "reader", Values: vals},
	}
}

// TestWireDictDelta drives the encoder/decoder pair directly: the first
// frame referencing a string ships it in the delta, later frames
// reference it by id with an empty delta (the repeated-window case),
// and frames without documents pass through untouched (the
// empty-dictionary case).
func TestWireDictDelta(t *testing.T) {
	sender, receiver := &conn{}, &conn{}
	d := dictDoc(7, "user", "alice", "host", "web-1")

	// Frame 1: every distinct string is new.
	e1 := sender.encodeTupleLocked(tupleFrame(topology.Values{"doc": d, "window": 3}))
	if len(e1.Dict) != 4 {
		t.Fatalf("first frame delta = %v, want the 4 distinct strings", e1.Dict)
	}
	if _, ok := e1.Tuple.Values["doc"].(wireDoc); !ok {
		t.Fatalf("doc value not dictionary-encoded: %T", e1.Tuple.Values["doc"])
	}
	if w := e1.Tuple.Values["window"]; w != 3 {
		t.Errorf("non-document value altered: %v", w)
	}
	if err := receiver.decodeTuple(e1); err != nil {
		t.Fatal(err)
	}
	got, ok := e1.Tuple.Values["doc"].(document.Document)
	if !ok || !got.Equal(d) || got.ID != d.ID {
		t.Fatalf("decoded doc = %v, want %v", got, d)
	}

	// Frame 2: same strings again -> empty delta, still decodable.
	d2 := dictDoc(8, "user", "alice", "host", "web-1")
	e2 := sender.encodeTupleLocked(tupleFrame(topology.Values{"doc": d2, "window": 4}))
	if len(e2.Dict) != 0 {
		t.Fatalf("repeated-window delta = %v, want empty", e2.Dict)
	}
	if err := receiver.decodeTuple(e2); err != nil {
		t.Fatal(err)
	}
	if got := e2.Tuple.Values["doc"].(document.Document); !got.Equal(d2) || got.ID != d2.ID {
		t.Fatalf("decoded doc = %v, want %v", got, d2)
	}

	// Frame 3: one new string among known ones.
	d3 := dictDoc(9, "user", "bob", "host", "web-1")
	e3 := sender.encodeTupleLocked(tupleFrame(topology.Values{"doc": d3}))
	if len(e3.Dict) != 1 {
		t.Fatalf("incremental delta = %v, want exactly the new string", e3.Dict)
	}
	if err := receiver.decodeTuple(e3); err != nil {
		t.Fatal(err)
	}
	if got := e3.Tuple.Values["doc"].(document.Document); !got.Equal(d3) {
		t.Fatalf("decoded doc = %v, want %v", got, d3)
	}

	// Empty-dictionary case: a tuple without documents is not rewritten
	// and decodes as a no-op even on a connection that never built a
	// dictionary.
	fresh := &conn{}
	plain := tupleFrame(topology.Values{"count": 42})
	if enc := fresh.encodeTupleLocked(plain); enc != plain {
		t.Error("document-free tuple must pass through without copying")
	}
	if err := (&conn{}).decodeTuple(plain); err != nil {
		t.Fatal(err)
	}
	if plain.Tuple.Values["count"] != 42 {
		t.Errorf("document-free tuple altered: %v", plain.Tuple.Values)
	}
}

// TestWireDictEnvelopeNotMutated checks the copy-on-write contract: the
// original envelope must keep its plain document so local delivery and
// retries on other connections see unencoded values.
func TestWireDictEnvelopeNotMutated(t *testing.T) {
	c := &conn{}
	d := dictDoc(1, "a", "x")
	orig := tupleFrame(topology.Values{"doc": d})
	enc := c.encodeTupleLocked(orig)
	if enc == orig {
		t.Fatal("encoder must copy envelopes carrying documents")
	}
	if _, ok := orig.Tuple.Values["doc"].(document.Document); !ok {
		t.Fatalf("original envelope mutated: %T", orig.Tuple.Values["doc"])
	}
}

// TestWireDictBadRef checks that a corrupt frame (reference beyond the
// dictionary) surfaces as an error instead of a silent wrong document.
func TestWireDictBadRef(t *testing.T) {
	c := &conn{}
	e := tupleFrame(topology.Values{"doc": wireDoc{ID: 1, Refs: []uint32{99, 100}}})
	if err := c.decodeTuple(e); err == nil {
		t.Fatal("out-of-range dictionary ref must fail decoding")
	}
	odd := tupleFrame(topology.Values{"doc": wireDoc{ID: 1, Refs: []uint32{0}}})
	if err := c.decodeTuple(odd); err == nil {
		t.Fatal("odd ref count must fail decoding")
	}
}

// TestWireDictGobRoundTrip round-trips dictionary-encoded frames
// through real gob streams over a socket pair, including a second
// frame reusing the first frame's dictionary entries.
func TestWireDictGobRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	sender, receiver := newConn(a), newConn(b)
	defer sender.close()
	defer receiver.close()

	docs := []document.Document{
		dictDoc(1, "user", "alice", "host", "web-1"),
		dictDoc(2, "user", "alice", "region", "eu"),
		dictDoc(3), // empty document
	}
	errCh := make(chan error, 1)
	go func() {
		for i, d := range docs {
			if err := sender.send(tupleFrame(topology.Values{"doc": d, "window": i})); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i, want := range docs {
		e, err := receiver.recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got, ok := e.Tuple.Values["doc"].(document.Document)
		if !ok {
			t.Fatalf("frame %d: doc arrived as %T", i, e.Tuple.Values["doc"])
		}
		if !got.Equal(want) || got.ID != want.ID {
			t.Fatalf("frame %d: got %v want %v", i, got, want)
		}
		if !reflect.DeepEqual(e.Tuple.Values["window"], i) {
			t.Errorf("frame %d: window = %v", i, e.Tuple.Values["window"])
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
