package cluster

import (
	"encoding/gob"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/topology"
)

// windowSpout emits sequential ints in fixed-size windows and reports
// window frontiers, so an elastic rescale can park it between windows.
type windowSpout struct {
	windows, perWindow int
	gap                time.Duration

	window, pos int
}

func (s *windowSpout) Open(*topology.TaskContext) {}
func (s *windowSpout) Close()                     {}
func (s *windowSpout) AtFrontier() bool           { return s.pos == 0 }
func (s *windowSpout) Frontier() int              { return s.window - 1 }
func (s *windowSpout) NextTuple(c topology.Collector) bool {
	if s.window >= s.windows {
		return false
	}
	if s.pos == 0 && s.gap > 0 {
		time.Sleep(s.gap)
	}
	c.Emit(topology.Values{"v": s.window*s.perWindow + s.pos})
	s.pos++
	if s.pos == s.perWindow {
		s.pos = 0
		s.window++
	}
	return s.window < s.windows
}

// migrBolt records every executed value in a shared map (exactly-once
// check) and counts executions in its own state; migration must carry
// the count to the task's new home, where Cleanup folds it into the
// shared total — without state transfer the moved task's pre-move
// count would be lost.
type migrBolt struct {
	mu    *sync.Mutex
	seen  map[int]int
	final *int

	count int
}

func (b *migrBolt) Prepare(*topology.TaskContext) {}
func (b *migrBolt) Execute(t topology.Tuple, _ topology.Collector) {
	v := t.Values["v"].(int)
	b.mu.Lock()
	b.seen[v]++
	b.mu.Unlock()
	b.count++
}
func (b *migrBolt) Cleanup() {
	b.mu.Lock()
	*b.final += b.count
	b.mu.Unlock()
}
func (b *migrBolt) Snapshot(w io.Writer) error { return gob.NewEncoder(w).Encode(b.count) }
func (b *migrBolt) Restore(r io.Reader) error  { return gob.NewDecoder(r).Decode(&b.count) }

// TestElasticRescaleGrowShrink runs a live cluster through a grow
// (2 -> 3, with a joining worker) and a shrink (3 -> 1) mid-stream:
// every value must be executed exactly once, the migrated bolts'
// internal counters must survive their moves, and the final statistics
// must balance.
func TestElasticRescaleGrowShrink(t *testing.T) {
	const windows, perWindow = 80, 25
	const n = windows * perWindow
	mu := &sync.Mutex{}
	seen := make(map[int]int)
	final := 0
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout {
			return &windowSpout{windows: windows, perWindow: perWindow, gap: time.Millisecond}
		}, 1)
		b.SetBolt("sink", func(int) topology.Bolt {
			return &migrBolt{mu: mu, seen: seen, final: &final}
		}, 4).ShuffleGrouping("src")
		return b
	}
	coord, err := NewCoordinator(2)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 3)
	for i := 0; i < 2; i++ {
		w, err := NewWorker(i, 2, makeBuilder(), coord.Addr())
		if err != nil {
			t.Fatal(err)
		}
		go func() { errs <- w.Run() }()
	}
	var stats topology.Stats
	var runErr error
	finished := make(chan struct{})
	go func() {
		stats, runErr = coord.Run()
		close(finished)
	}()

	// Grow 2 -> 3: the joiner idles on its handshake until welcomed.
	j, err := NewJoiningWorker(2, makeBuilder(), coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	go func() { errs <- j.Run() }()
	if err := coord.Rescale(3); err != nil {
		t.Fatalf("rescale 2 -> 3: %v", err)
	}
	table, epoch, err := coord.PlacementInfo()
	if err != nil {
		t.Fatalf("placement info: %v", err)
	}
	if epoch != 1 {
		t.Errorf("epoch after grow = %d, want 1", epoch)
	}
	hosts := make(map[int]bool)
	for _, assign := range table {
		for _, w := range assign {
			hosts[w] = true
		}
	}
	if len(hosts) != 3 {
		t.Errorf("tasks hosted on %d workers after grow, want 3 (table %v)", len(hosts), table)
	}

	// Shrink 3 -> 1: workers 1 and 2 drain, migrate out, and retire;
	// worker 0 keeps the (pinned) spout and inherits every sink task.
	if err := coord.Rescale(1); err != nil {
		t.Fatalf("rescale 3 -> 1: %v", err)
	}
	table, epoch, err = coord.PlacementInfo()
	if err != nil {
		t.Fatalf("placement info: %v", err)
	}
	if epoch != 2 {
		t.Errorf("epoch after shrink = %d, want 2", epoch)
	}
	for comp, assign := range table {
		for task, w := range assign {
			if w != 0 {
				t.Errorf("%s[%d] on worker %d after shrink to 1", comp, task, w)
			}
		}
	}

	<-finished
	if runErr != nil {
		t.Fatalf("coordinator: %v", runErr)
	}
	for i := 0; i < 3; i++ {
		if werr := <-errs; werr != nil {
			t.Errorf("worker: %v", werr)
		}
	}
	if len(stats.Failures) != 0 {
		t.Fatalf("failures: %v", stats.Failures)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Errorf("distinct values executed = %d, want %d", len(seen), n)
	}
	for v, times := range seen {
		if times != 1 {
			t.Errorf("value %d executed %d times", v, times)
		}
	}
	if final != n {
		t.Errorf("migrated state total = %d, want %d (bolt state lost in a move)", final, n)
	}
	if stats.Executed["sink"] != n {
		t.Errorf("executed = %d, want %d", stats.Executed["sink"], n)
	}
	if stats.SentCopies != stats.ExecCopies {
		t.Errorf("copies sent = %d, executed = %d", stats.SentCopies, stats.ExecCopies)
	}
}

// TestRescaleShrinkRejectsPinned: a shrink that would have to evict a
// spout-hosting worker fails before the cluster is touched.
func TestRescaleShrinkRejectsPinned(t *testing.T) {
	mu := &sync.Mutex{}
	seen := make(map[int]int)
	final := 0
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		// Two spout tasks -> round-robin pins both workers.
		b.SetSpout("src", func(int) topology.Spout {
			return &windowSpout{windows: 40, perWindow: 10, gap: time.Millisecond}
		}, 2)
		b.SetBolt("sink", func(int) topology.Bolt {
			return &migrBolt{mu: mu, seen: seen, final: &final}
		}, 2).ShuffleGrouping("src")
		return b
	}
	coord, err := NewCoordinator(2)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		w, err := NewWorker(i, 2, makeBuilder(), coord.Addr())
		if err != nil {
			t.Fatal(err)
		}
		go func() { errs <- w.Run() }()
	}
	finished := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = coord.Run()
		close(finished)
	}()
	if err := coord.Rescale(1); err == nil {
		t.Error("shrink evicting a spout worker must fail")
	}
	<-finished
	if runErr != nil {
		t.Fatalf("benign rescale failure must not hurt the run: %v", runErr)
	}
	for i := 0; i < 2; i++ {
		if werr := <-errs; werr != nil {
			t.Errorf("worker: %v", werr)
		}
	}
}

// TestPlacementApply: epoch-stamped successor placements.
func TestPlacementApply(t *testing.T) {
	spec := []topology.ComponentSpec{
		{ID: "a", Parallelism: 3},
		{ID: "b", Parallelism: 2},
	}
	p, err := NewPlacement(spec, 2) // a: 0,1,0  b: 1,0
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", p.Epoch())
	}
	next, err := p.Apply(1, 3, []Move{{Comp: "a", Task: 2, From: 0, To: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != 1 || next.Workers() != 3 {
		t.Errorf("epoch/workers = %d/%d", next.Epoch(), next.Workers())
	}
	if got := next.WorkerFor("a", 2); got != 2 {
		t.Errorf("moved task on worker %d, want 2", got)
	}
	if got := p.WorkerFor("a", 2); got != 0 {
		t.Errorf("original placement mutated: a[2] on %d", got)
	}
	if _, err := next.Apply(1, 3, nil); err == nil {
		t.Error("non-increasing epoch must fail")
	}
	if _, err := next.Apply(2, 3, []Move{{Comp: "a", Task: 0, From: 9, To: 1}}); err == nil {
		t.Error("move with stale From must fail")
	}
	if _, err := next.Apply(2, 3, []Move{{Comp: "zz", Task: 0, From: 0, To: 1}}); err == nil {
		t.Error("move of unknown component must fail")
	}
}

// TestPlanMoves: departing workers are fully evacuated, the rebalance
// only moves a task when it strictly narrows the spread, and the plan
// is deterministic.
func TestPlanMoves(t *testing.T) {
	loads := []TaskLoad{
		{Comp: "src", Task: 0, Worker: 0, Load: 0, Movable: false},
		{Comp: "sink", Task: 0, Worker: 0, Load: 100, Movable: true},
		{Comp: "sink", Task: 1, Worker: 1, Load: 90, Movable: true},
		{Comp: "sink", Task: 2, Worker: 2, Load: 80, Movable: true},
		{Comp: "sink", Task: 3, Worker: 2, Load: 10, Movable: true},
	}
	// Shrink: worker 2 departs; both its tasks must move to survivors.
	moves := PlanMoves(loads, map[int]bool{2: true}, []int{0, 1})
	evacuated := map[int]bool{}
	for _, m := range moves {
		if m.From == 2 {
			evacuated[m.Task] = true
			if m.To != 0 && m.To != 1 {
				t.Errorf("move %s targets a departing or unknown worker", m)
			}
		}
	}
	if !evacuated[2] || !evacuated[3] {
		t.Errorf("departing worker not fully evacuated: %v", moves)
	}
	// Grow: an empty worker 3 joins; some load must shift to it, and
	// nothing may move between equally-loaded survivors for nothing.
	grow := PlanMoves(loads, nil, []int{0, 1, 2, 3})
	toNew := 0
	for _, m := range grow {
		if m.From == m.To {
			t.Errorf("no-op move %s", m)
		}
		if m.To == 3 {
			toNew++
		}
	}
	if toNew == 0 {
		t.Errorf("grow plan sends nothing to the new worker: %v", grow)
	}
	// Determinism.
	again := PlanMoves(loads, nil, []int{0, 1, 2, 3})
	if len(again) != len(grow) {
		t.Fatalf("plan not deterministic: %v vs %v", grow, again)
	}
	for i := range grow {
		if grow[i] != again[i] {
			t.Errorf("plan not deterministic at %d: %v vs %v", i, grow[i], again[i])
		}
	}
	// Balanced input, no departures: no moves at all.
	if m := PlanMoves([]TaskLoad{
		{Comp: "s", Task: 0, Worker: 0, Load: 10, Movable: true},
		{Comp: "s", Task: 1, Worker: 1, Load: 10, Movable: true},
	}, nil, []int{0, 1}); len(m) != 0 {
		t.Errorf("balanced cluster produced moves: %v", m)
	}
}

// TestStateFrameBinaryRoundTrip: kind=state frames survive the binary
// wire format — sequenced, chunk payload intact, never batched with
// tuples.
func TestStateFrameBinaryRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca := newBinConn(a, true, false)
	cb := newBinConn(b, false, false)
	defer ca.close()
	defer cb.close()
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	want := &envelope{
		Kind: frameState, FromWorker: 1, DataSeq: 42, AckSeq: 7,
		Epoch: 3, Window: 11, TargetComp: "sink", TargetTask: 2,
		StateData: payload, StateLast: true,
	}
	go func() {
		if err := ca.send(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := cb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != frameState || got.FromWorker != 1 || got.DataSeq != 42 || got.AckSeq != 7 {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Epoch != 3 || got.Window != 11 || got.TargetComp != "sink" || got.TargetTask != 2 || !got.StateLast {
		t.Errorf("state header mismatch: %+v", got)
	}
	if string(got.StateData) != string(payload) {
		t.Errorf("payload mismatch: %d bytes vs %d", len(got.StateData), len(payload))
	}
	// A batch mixing state with anything is a programming error the
	// wire layer must reject rather than corrupt.
	if err := ca.sendBatch([]*envelope{want, want}); err == nil {
		t.Error("multi-frame state batch must fail")
	}
}
