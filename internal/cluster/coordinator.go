package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/topology"
)

// WorkerDied reports that a worker's control plane failed mid-run —
// the process crashed, was killed, or partitioned away. The
// coordinator aborts the surviving workers before returning it, so a
// caller holding checkpoints can re-place the dead worker's tasks and
// restart from the last consistent cut (errors.As to detect).
type WorkerDied struct {
	Worker int
	Err    error
}

func (e *WorkerDied) Error() string {
	return fmt.Sprintf("cluster: worker %d died: %v", e.Worker, e.Err)
}

func (e *WorkerDied) Unwrap() error { return e.Err }

// Coordinator accepts worker registrations, distributes the address
// book, detects global termination and collects the final statistics.
//
// Termination detection uses the classic double-probe argument over
// monotonic counters: when all spouts are exhausted, the global number
// of delivered tuple copies equals the global number of executed
// tuples, and two consecutive probe rounds observe identical values,
// no tuple can be queued, executing, or in flight on any wire.
type Coordinator struct {
	workers int
	ln      net.Listener

	// ProbeTimeout bounds every probe round (and the final stop/done
	// exchange) per worker connection: a worker that stops answering
	// its control plane fails the run instead of hanging it. The
	// worker's control loop replies from a dedicated goroutine even
	// while its data plane is backpressured, so the default of 30s only
	// trips on a genuinely dead or partitioned worker. Zero disables
	// the bound.
	ProbeTimeout time.Duration
}

// NewCoordinator listens for the given number of workers on a loopback
// port; Addr reports where.
func NewCoordinator(workers int) (*Coordinator, error) {
	return NewCoordinatorOn("127.0.0.1:0", workers)
}

// NewCoordinatorOn listens on an explicit address — an externally
// routable "host:port" for multi-host deployments.
func NewCoordinatorOn(addr string, workers int) (*Coordinator, error) {
	if workers < 1 {
		return nil, fmt.Errorf("cluster: coordinator needs >= 1 worker")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	return &Coordinator{workers: workers, ln: ln, ProbeTimeout: 30 * time.Second}, nil
}

// Addr is the coordinator's control address for workers to dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Run orchestrates one topology execution and returns the merged
// statistics. It blocks until the cluster has terminated.
func (c *Coordinator) Run() (topology.Stats, error) {
	defer c.ln.Close()
	conns := make(map[int]*conn, c.workers)
	addresses := make(map[int]string, c.workers)
	for len(conns) < c.workers {
		raw, err := c.ln.Accept()
		if err != nil {
			return topology.Stats{}, fmt.Errorf("cluster: accept: %w", err)
		}
		cn := newConn(raw)
		hello, err := cn.recv()
		if err != nil || hello.Kind != frameHello {
			cn.close()
			return topology.Stats{}, fmt.Errorf("cluster: bad hello: %v", err)
		}
		if _, dup := conns[hello.WorkerID]; dup {
			cn.close()
			return topology.Stats{}, fmt.Errorf("cluster: duplicate worker id %d", hello.WorkerID)
		}
		conns[hello.WorkerID] = cn
		addresses[hello.WorkerID] = hello.DataAddr
	}
	defer func() {
		for _, cn := range conns {
			cn.close()
		}
	}()

	for _, cn := range conns {
		if err := cn.send(&envelope{Kind: frameStart, Addresses: addresses}); err != nil {
			return topology.Stats{}, err
		}
	}

	// Probe until two consecutive identical quiescent snapshots.
	var prevSent, prevExec int64 = -1, -2
	for seq := 0; ; seq++ {
		sent, exec, done, err := c.probe(conns, seq)
		if err != nil {
			c.abortSurvivors(conns, err)
			return topology.Stats{}, err
		}
		if done && sent == exec && sent == prevSent && exec == prevExec {
			break
		}
		prevSent, prevExec = sent, exec
		if !done || sent != exec {
			prevSent, prevExec = -1, -2 // only count quiescent snapshots
			time.Sleep(time.Millisecond)
		}
	}

	// Stop everyone and merge their statistics.
	merged := topology.Stats{Emitted: make(map[string]int64), Executed: make(map[string]int64)}
	ids := make([]int, 0, len(conns))
	for id := range conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	c.setDeadlines(conns)
	defer c.clearDeadlines(conns)
	for _, id := range ids {
		if err := conns[id].send(&envelope{Kind: frameStop}); err != nil {
			wd := &WorkerDied{Worker: id, Err: err}
			c.abortSurvivors(conns, wd)
			return merged, wd
		}
	}
	for _, id := range ids {
		done, err := c.await(conns[id], frameDone)
		if err != nil {
			wd := &WorkerDied{Worker: id, Err: err}
			c.abortSurvivors(conns, wd)
			return merged, wd
		}
		for comp, n := range done.Stats.Emitted {
			merged.Emitted[comp] += n
		}
		for comp, n := range done.Stats.Executed {
			merged.Executed[comp] += n
		}
		merged.SentCopies += done.Stats.SentCopies
		merged.ExecCopies += done.Stats.ExecCopies
		merged.Failures = append(merged.Failures, done.Stats.Failures...)
	}
	return merged, nil
}

// setDeadlines arms the control-plane timeout on every worker
// connection; clearDeadlines disarms it between rounds.
func (c *Coordinator) setDeadlines(conns map[int]*conn) {
	if c.ProbeTimeout <= 0 {
		return
	}
	deadline := time.Now().Add(c.ProbeTimeout)
	for _, cn := range conns {
		cn.setDeadline(deadline)
	}
}

func (c *Coordinator) clearDeadlines(conns map[int]*conn) {
	if c.ProbeTimeout <= 0 {
		return
	}
	for _, cn := range conns {
		cn.setDeadline(time.Time{})
	}
}

// abortSurvivors tells every worker except the one named by a
// WorkerDied error (when err is one) to abandon the run, best-effort:
// survivors must not hang in the quiescence protocol waiting for
// tuples a dead peer will never deliver.
func (c *Coordinator) abortSurvivors(conns map[int]*conn, err error) {
	dead := -1
	var wd *WorkerDied
	if errors.As(err, &wd) {
		dead = wd.Worker
	}
	for id, cn := range conns {
		if id == dead {
			continue
		}
		_ = cn.send(&envelope{Kind: frameAbort})
	}
}

// probe runs one synchronous probe round under the control-plane
// timeout. A send or reply failure is attributed to the worker whose
// control connection broke and surfaces as *WorkerDied.
func (c *Coordinator) probe(conns map[int]*conn, seq int) (sent, exec int64, done bool, err error) {
	c.setDeadlines(conns)
	defer c.clearDeadlines(conns)
	done = true
	for id, cn := range conns {
		if err := cn.send(&envelope{Kind: frameProbe, Seq: seq}); err != nil {
			return 0, 0, false, &WorkerDied{Worker: id, Err: err}
		}
	}
	for id, cn := range conns {
		reply, err := c.await(cn, frameProbeReply)
		if err != nil {
			return 0, 0, false, &WorkerDied{Worker: id, Err: err}
		}
		sent += reply.Sent
		exec += reply.Executed
		if !reply.SpoutsDone {
			done = false
		}
	}
	return sent, exec, done, nil
}

// await reads envelopes until one of the expected kind arrives.
func (c *Coordinator) await(cn *conn, kind frameKind) (*envelope, error) {
	for {
		e, err := cn.recv()
		if err != nil {
			return nil, fmt.Errorf("cluster: await %d: %w", kind, err)
		}
		if e.Kind == kind {
			return e, nil
		}
	}
}

// Run executes a topology across n in-process workers communicating
// over TCP loopback — the same plumbing as a multi-process deployment,
// exercised without spawning processes. makeBuilder is invoked once per
// worker, mirroring how each worker process constructs the topology
// from the same code.
func Run(makeBuilder func() *topology.Builder, workers int) (topology.Stats, error) {
	coord, err := NewCoordinator(workers)
	if err != nil {
		return topology.Stats{}, err
	}
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(i, workers, makeBuilder(), coord.Addr())
		if err != nil {
			return topology.Stats{}, err
		}
		go func() { errs <- w.Run() }()
	}
	stats, err := coord.Run()
	if err != nil {
		return stats, err
	}
	for i := 0; i < workers; i++ {
		if werr := <-errs; werr != nil {
			return stats, werr
		}
	}
	return stats, nil
}
