package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/topology"
)

// WorkerDied reports that a worker's control plane failed mid-run —
// the process crashed, was killed, partitioned away, or went silent
// past its heartbeat lease. The coordinator aborts the surviving
// workers before returning it, so a caller holding checkpoints can
// re-place the dead worker's tasks and restart from the last
// consistent cut (errors.As to detect).
type WorkerDied struct {
	Worker int
	Err    error
}

func (e *WorkerDied) Error() string {
	return fmt.Sprintf("cluster: worker %d died: %v", e.Worker, e.Err)
}

func (e *WorkerDied) Unwrap() error { return e.Err }

// Coordinator accepts worker registrations, distributes the address
// book, detects global termination and collects the final statistics.
//
// Termination detection uses the classic double-probe argument over
// monotonic counters: when all spouts are exhausted, the global number
// of delivered tuple copies equals the global number of executed
// tuples, and two consecutive probe rounds observe identical values,
// no tuple can be queued, executing, or in flight on any wire.
//
// Failure detection is two-layered. Reactively, each worker connection
// has a dedicated reader goroutine, so a broken control socket surfaces
// immediately as WorkerDied. Proactively, every frame a worker sends —
// probe replies and the periodic heartbeats — refreshes its lease; a
// worker silent longer than LeaseTimeout is declared dead even though
// its sockets are still open, which is how a hung (not crashed)
// process is caught.
type Coordinator struct {
	workers int
	ln      net.Listener

	// ProbeTimeout bounds every probe round (and the final stop/done
	// exchange) per worker connection: a worker that stops answering
	// its control plane fails the run instead of hanging it. The
	// worker's control loop replies from a dedicated goroutine even
	// while its data plane is backpressured, so the default of 30s only
	// trips on a genuinely dead or partitioned worker. Zero disables
	// the bound.
	ProbeTimeout time.Duration

	// LeaseTimeout is the heartbeat suspicion window: a worker whose
	// control plane stays silent — no heartbeat, no probe reply, no
	// frame of any kind — for longer than this is declared dead
	// (WorkerDied) even with its sockets healthy. It should be several
	// multiples of the workers' HeartbeatInterval. Zero disables lease
	// expiry; socket errors and ProbeTimeout still apply.
	LeaseTimeout time.Duration

	// Telemetry, when set, receives the coordinator's rescale series
	// (cluster_rescales_total, cluster_epoch, rescale_duration_seconds).
	Telemetry *telemetry.Registry

	// Elastic rescale. Control requests (Rescale, PlacementInfo) are
	// serviced by the Run goroutine between probe rounds — every
	// control exchange shares the per-link awaitFrame machinery, so
	// they must all run on one goroutine. joinCh carries late workers
	// accepted by acceptJoiners; finished closes when Run returns so
	// requesters never block on a dead loop.
	rescaleCh chan *rescaleReq
	infoCh    chan *infoReq
	joinCh    chan *workerLink
	finished  chan struct{}

	// epoch is the live placement epoch (0 until the first rescale);
	// baseStats folds retired workers' final counters into every later
	// probe sum and the final merge, preserving the global
	// sent == executed invariant across departures. lastTable mirrors
	// the table the most recent rescale installed. All three are owned
	// by the Run goroutine.
	epoch     uint64
	baseStats topology.Stats
	lastTable map[string][]int
}

// workerLink is the coordinator's per-worker control state: the
// connection, a reader goroutine forwarding protocol replies, and the
// lease clock. readErr is set before inbox closes, so a receiver that
// observes the close also observes the error.
type workerLink struct {
	id       int
	c        *conn
	inbox    chan *envelope
	addr     string       // the worker's data-plane address
	lastBeat atomic.Int64 // unix nanos of the last frame from this worker
	readErr  error
}

// read pumps the connection: every arriving frame refreshes the lease,
// and protocol replies (probe replies, final stats) are forwarded to
// the round-trip logic. The inbox is never closed with frames
// outstanding the coordinator still awaits, because the protocol has
// at most one reply in flight per worker.
func (l *workerLink) read() {
	for {
		e, err := l.c.recv()
		if err != nil {
			l.readErr = err
			close(l.inbox)
			return
		}
		l.lastBeat.Store(time.Now().UnixNano())
		switch e.Kind {
		case frameProbeReply, frameDone, framePaused, frameLoadsReply, frameRescaleReady:
			l.inbox <- e
		}
	}
}

// NewCoordinator listens for the given number of workers on a loopback
// port; Addr reports where.
func NewCoordinator(workers int) (*Coordinator, error) {
	return NewCoordinatorOn("127.0.0.1:0", workers)
}

// NewCoordinatorOn listens on an explicit address — an externally
// routable "host:port" for multi-host deployments.
func NewCoordinatorOn(addr string, workers int) (*Coordinator, error) {
	if workers < 1 {
		return nil, fmt.Errorf("cluster: coordinator needs >= 1 worker")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	return &Coordinator{
		workers:      workers,
		ln:           ln,
		ProbeTimeout: 30 * time.Second,
		LeaseTimeout: 10 * time.Second,
		rescaleCh:    make(chan *rescaleReq),
		infoCh:       make(chan *infoReq),
		joinCh:       make(chan *workerLink, 8),
		finished:     make(chan struct{}),
	}, nil
}

// Addr is the coordinator's control address for workers to dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Run orchestrates one topology execution and returns the merged
// statistics. It blocks until the cluster has terminated.
func (c *Coordinator) Run() (topology.Stats, error) {
	defer c.ln.Close()
	defer func() {
		// Wake any Rescale/PlacementInfo callers and shed queued
		// joiners — the run is over.
		close(c.finished)
		for {
			select {
			case j := <-c.joinCh:
				j.c.close()
			default:
				return
			}
		}
	}()
	links := make(map[int]*workerLink, c.workers)
	addresses := make(map[int]string, c.workers)
	for len(links) < c.workers {
		raw, err := c.ln.Accept()
		if err != nil {
			return topology.Stats{}, fmt.Errorf("cluster: accept: %w", err)
		}
		cn := newConn(raw)
		hello, err := cn.recv()
		if err != nil || hello.Kind != frameHello {
			cn.close()
			return topology.Stats{}, fmt.Errorf("cluster: bad hello: %v", err)
		}
		if hello.Joining {
			// An elastic joiner racing the initial handshake must not
			// steal an initial worker's slot: queue it for the first
			// rescale like any other late joiner.
			l := &workerLink{id: hello.WorkerID, c: cn, inbox: make(chan *envelope, 4), addr: hello.DataAddr}
			l.lastBeat.Store(time.Now().UnixNano())
			select {
			case c.joinCh <- l:
			default:
				cn.close()
			}
			continue
		}
		if _, dup := links[hello.WorkerID]; dup {
			cn.close()
			return topology.Stats{}, fmt.Errorf("cluster: duplicate worker id %d", hello.WorkerID)
		}
		l := &workerLink{id: hello.WorkerID, c: cn, inbox: make(chan *envelope, 4), addr: hello.DataAddr}
		l.lastBeat.Store(time.Now().UnixNano())
		links[hello.WorkerID] = l
		addresses[hello.WorkerID] = hello.DataAddr
	}
	defer func() {
		for _, l := range links {
			l.c.close()
		}
	}()
	for _, l := range links {
		go l.read()
	}
	go c.acceptJoiners()

	for id, l := range links {
		if err := c.sendCtl(l, &envelope{Kind: frameStart, Addresses: addresses}); err != nil {
			wd := &WorkerDied{Worker: id, Err: err}
			c.abortSurvivors(links, wd)
			return topology.Stats{}, wd
		}
	}

	// Probe until two consecutive identical quiescent snapshots,
	// servicing queued control requests (rescale, placement queries)
	// between rounds — all control exchanges share awaitFrame, so they
	// are serialized on this goroutine.
	var prevSent, prevExec int64 = -1, -2
	for seq := 0; ; seq++ {
	service:
		for {
			select {
			case req := <-c.rescaleCh:
				err, fatal := c.doRescale(req.n, links, addresses)
				req.err = err
				close(req.done)
				if fatal {
					c.abortSurvivors(links, err)
					return topology.Stats{}, err
				}
				prevSent, prevExec = -1, -2 // the counter base moved
			case req := <-c.infoCh:
				loads, err := c.collectLoads(links)
				if err == nil {
					req.table, req.err = tableFromLoads(loads)
				} else {
					req.err = err
				}
				req.epoch = c.epoch
				close(req.done)
				var wd *WorkerDied
				if errors.As(req.err, &wd) {
					c.abortSurvivors(links, req.err)
					return topology.Stats{}, req.err
				}
			default:
				break service
			}
		}
		sent, exec, done, err := c.probe(links, seq)
		if err != nil {
			c.abortSurvivors(links, err)
			return topology.Stats{}, err
		}
		// Retired workers' counters keep counting via the folded base:
		// global sent == executed holds across departures.
		sent += c.baseStats.SentCopies
		exec += c.baseStats.ExecCopies
		if done && sent == exec && sent == prevSent && exec == prevExec {
			break
		}
		prevSent, prevExec = sent, exec
		if !done || sent != exec {
			prevSent, prevExec = -1, -2 // only count quiescent snapshots
			time.Sleep(time.Millisecond)
		}
	}

	// Stop everyone and merge their statistics, starting from the
	// folded base of any workers retired by earlier rescales.
	merged := topology.Stats{Emitted: make(map[string]int64), Executed: make(map[string]int64)}
	for comp, n := range c.baseStats.Emitted {
		merged.Emitted[comp] += n
	}
	for comp, n := range c.baseStats.Executed {
		merged.Executed[comp] += n
	}
	merged.SentCopies += c.baseStats.SentCopies
	merged.ExecCopies += c.baseStats.ExecCopies
	merged.Failures = append(merged.Failures, c.baseStats.Failures...)
	ids := make([]int, 0, len(links))
	for id := range links {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := c.sendCtl(links[id], &envelope{Kind: frameStop}); err != nil {
			wd := &WorkerDied{Worker: id, Err: err}
			c.abortSurvivors(links, wd)
			return merged, wd
		}
	}
	for _, id := range ids {
		done, err := c.awaitFrame(links[id], frameDone)
		if err != nil {
			wd := &WorkerDied{Worker: id, Err: err}
			c.abortSurvivors(links, wd)
			return merged, wd
		}
		for comp, n := range done.Stats.Emitted {
			merged.Emitted[comp] += n
		}
		for comp, n := range done.Stats.Executed {
			merged.Executed[comp] += n
		}
		merged.SentCopies += done.Stats.SentCopies
		merged.ExecCopies += done.Stats.ExecCopies
		merged.Failures = append(merged.Failures, done.Stats.Failures...)
	}
	return merged, nil
}

// sendCtl writes one control frame under a write-only deadline (the
// read side belongs to the link's reader goroutine and must not be
// poisoned by a read deadline).
func (c *Coordinator) sendCtl(l *workerLink, e *envelope) error {
	if c.ProbeTimeout > 0 {
		l.c.setWriteDeadline(time.Now().Add(c.ProbeTimeout))
		defer l.c.setWriteDeadline(time.Time{})
	}
	return l.c.send(e)
}

// abortSurvivors tells every worker except the one named by a
// WorkerDied error (when err is one) to abandon the run, best-effort:
// survivors must not hang in the quiescence protocol waiting for
// tuples a dead peer will never deliver.
func (c *Coordinator) abortSurvivors(links map[int]*workerLink, err error) {
	dead := -1
	var wd *WorkerDied
	if errors.As(err, &wd) {
		dead = wd.Worker
	}
	for id, l := range links {
		if id == dead {
			continue
		}
		_ = c.sendCtl(l, &envelope{Kind: frameAbort})
	}
}

// probe runs one probe round. A send failure, reader error, probe
// timeout or lease expiry is attributed to the worker whose control
// plane faulted and surfaces as *WorkerDied.
func (c *Coordinator) probe(links map[int]*workerLink, seq int) (sent, exec int64, done bool, err error) {
	done = true
	for id, l := range links {
		if err := c.sendCtl(l, &envelope{Kind: frameProbe, Seq: seq}); err != nil {
			return 0, 0, false, &WorkerDied{Worker: id, Err: err}
		}
	}
	for id, l := range links {
		reply, err := c.awaitFrame(l, frameProbeReply)
		if err != nil {
			return 0, 0, false, &WorkerDied{Worker: id, Err: err}
		}
		sent += reply.Sent
		exec += reply.Executed
		if !reply.SpoutsDone {
			done = false
		}
	}
	return sent, exec, done, nil
}

// awaitFrame waits for the next frame of the expected kind from one
// worker, bounded by ProbeTimeout and, independently, by the worker's
// heartbeat lease — so a hung worker that swallows probes without its
// socket breaking still fails fast, at lease granularity rather than
// the full probe timeout.
func (c *Coordinator) awaitFrame(l *workerLink, kind frameKind) (*envelope, error) {
	var timeout <-chan time.Time
	if c.ProbeTimeout > 0 {
		tm := time.NewTimer(c.ProbeTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	tick := time.NewTicker(c.leaseTick())
	defer tick.Stop()
	for {
		select {
		case e, ok := <-l.inbox:
			if !ok {
				return nil, fmt.Errorf("cluster: await %d: %w", kind, l.readErr)
			}
			if e.Kind == kind {
				return e, nil
			}
		case <-tick.C:
			if c.LeaseTimeout > 0 {
				silent := time.Since(time.Unix(0, l.lastBeat.Load()))
				if silent > c.LeaseTimeout {
					return nil, fmt.Errorf("cluster: lease expired: silent for %v (> %v) without a heartbeat", silent.Round(time.Millisecond), c.LeaseTimeout)
				}
			}
		case <-timeout:
			return nil, fmt.Errorf("cluster: timeout after %v awaiting frame %d", c.ProbeTimeout, kind)
		}
	}
}

// leaseTick is how often awaitFrame re-checks the lease clock.
func (c *Coordinator) leaseTick() time.Duration {
	if c.LeaseTimeout <= 0 {
		return time.Hour // effectively never; the select still works
	}
	d := c.LeaseTimeout / 4
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Run executes a topology across n in-process workers communicating
// over TCP loopback — the same plumbing as a multi-process deployment,
// exercised without spawning processes. makeBuilder is invoked once per
// worker, mirroring how each worker process constructs the topology
// from the same code.
func Run(makeBuilder func() *topology.Builder, workers int) (topology.Stats, error) {
	coord, err := NewCoordinator(workers)
	if err != nil {
		return topology.Stats{}, err
	}
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(i, workers, makeBuilder(), coord.Addr())
		if err != nil {
			return topology.Stats{}, err
		}
		go func() { errs <- w.Run() }()
	}
	stats, err := coord.Run()
	if err != nil {
		return stats, err
	}
	for i := 0; i < workers; i++ {
		if werr := <-errs; werr != nil {
			return stats, werr
		}
	}
	return stats, nil
}
