package cluster

import (
	"fmt"

	"repro/internal/document"
	"repro/internal/topology"
)

// Wire dictionary: every data-plane connection carries its own string
// dictionary, built incrementally on both ends. The sender replaces
// each document in a tuple with a wireDoc referencing attr/val strings
// by dense uint32 id, shipping each distinct string exactly once (in
// the envelope's Dict delta, the frame that first references it); the
// receiver extends its mirror dictionary from the delta and rebuilds
// the documents. Scoping the dictionary to the connection — not to the
// global symbol tables — keeps the wire format self-contained: a
// severed and redialled connection starts from an empty dictionary on
// both ends, so chaos-induced reconnects can never desynchronise ids,
// and the two processes' symbol tables are free to intern in different
// orders.

// wireDoc is the dictionary-encoded form of a document.Document inside
// a frameTuple: Refs holds the pairs as alternating attr,val
// dictionary references, in the document's sorted-unique pair order.
type wireDoc struct {
	ID   uint64
	Refs []uint32
}

func init() { Register(wireDoc{}) }

// encodeTupleLocked rewrites every document payload of a frameTuple
// into its dictionary-encoded form, collecting newly seen strings into
// the envelope's Dict delta. Envelopes without document payloads pass
// through untouched. The caller must hold c.mu; the dictionary state
// advances only on this connection, and a failed send evicts the whole
// connection, so sender and receiver can never disagree.
//
// The envelope and its Values map are copied, never mutated — this is
// the contract the reliable-delivery layer's resend path relies on:
// the peer's resend buffer holds the *raw* envelope (plain strings,
// no dictionary references), so a frame replayed after a sever is
// re-encoded here against the fresh connection's empty dictionary. A
// buffered frame that kept its first encoding would reference ids the
// new connection never shipped.
func (c *conn) encodeTupleLocked(e *envelope) *envelope {
	docs := 0
	for _, v := range e.Tuple.Values {
		if _, ok := v.(document.Document); ok {
			docs++
		}
	}
	if docs == 0 {
		return e
	}
	if c.sendDict == nil {
		c.sendDict = make(map[string]uint32)
	}
	var delta []string
	vals := make(topology.Values, len(e.Tuple.Values))
	for k, v := range e.Tuple.Values {
		if d, ok := v.(document.Document); ok {
			vals[k] = c.encodeDocLocked(d, &delta)
		} else {
			vals[k] = v
		}
	}
	ne := *e
	ne.Tuple.Values = vals
	ne.Dict = delta
	return &ne
}

func (c *conn) encodeDocLocked(d document.Document, delta *[]string) wireDoc {
	pairs := d.Pairs()
	refs := make([]uint32, 0, 2*len(pairs))
	for _, p := range pairs {
		refs = append(refs, c.refLocked(p.Attr, delta), c.refLocked(p.Val, delta))
	}
	return wireDoc{ID: d.ID, Refs: refs}
}

func (c *conn) refLocked(s string, delta *[]string) uint32 {
	if id, ok := c.sendDict[s]; ok {
		c.dictHits.Inc()
		return id
	}
	c.dictMisses.Inc()
	id := uint32(len(c.sendDict))
	c.sendDict[s] = id
	*delta = append(*delta, s)
	return id
}

// decodeTuple extends the receive-side dictionary with the frame's
// delta and restores every wireDoc payload to a document.Document.
// Only the connection's single reading goroutine calls this.
func (c *conn) decodeTuple(e *envelope) error {
	c.recvDict = append(c.recvDict, e.Dict...)
	e.Dict = nil
	for k, v := range e.Tuple.Values {
		wd, ok := v.(wireDoc)
		if !ok {
			continue
		}
		d, err := c.decodeDoc(wd)
		if err != nil {
			return err
		}
		e.Tuple.Values[k] = d
	}
	return nil
}

func (c *conn) decodeDoc(w wireDoc) (document.Document, error) {
	if len(w.Refs)%2 != 0 {
		return document.Document{}, fmt.Errorf("cluster: wire doc %d has odd ref count %d", w.ID, len(w.Refs))
	}
	pairs := make([]document.Pair, len(w.Refs)/2)
	for i := range pairs {
		a, err := c.dictStr(w.Refs[2*i])
		if err != nil {
			return document.Document{}, err
		}
		v, err := c.dictStr(w.Refs[2*i+1])
		if err != nil {
			return document.Document{}, err
		}
		pairs[i] = document.Pair{Attr: a, Val: v}
	}
	// The pairs were produced from a Document's sorted-unique pair list
	// on the send side, so FromSorted takes its verified fast path; a
	// corrupted payload falls back to the full New construction.
	return document.FromSorted(w.ID, pairs), nil
}

func (c *conn) dictStr(ref uint32) (string, error) {
	if int(ref) >= len(c.recvDict) {
		return "", fmt.Errorf("cluster: wire dictionary ref %d out of range (%d known)", ref, len(c.recvDict))
	}
	return c.recvDict[ref], nil
}
